// Citations: paper citation connection patterns over an archived
// bibliography (one of the motivating applications in the paper's
// introduction). The example also contrasts the DP and DPS optimizers on
// the same query, printing both plans, per-step traces, and I/O counters.
//
//	go run ./examples/citations
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fastmatch"
)

func main() {
	g := buildCitationGraph(11, 300)
	eng, err := fastmatch.NewEngine(g, fastmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Println(eng.Stats())

	// A survey transitively citing a systems paper that builds on a theory
	// result, with a dataset used along the way — a 4-label citation
	// connection pattern.
	p := fastmatch.MustPattern("survey->systems; systems->theory; systems->dataset")

	for _, algo := range []fastmatch.Algorithm{fastmatch.DP, fastmatch.DPS} {
		eng.ResetIOStats()
		res, plan, traces, err := eng.ExplainAnalyze(p, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s: %d matches, %d logical page accesses\n",
			algo, res.Len(), eng.IOStats().Logical())
		fmt.Print(plan)
		for i, tr := range traces {
			fmt.Printf("  step %d %-9s rows=%-7d io=%-7d %.2fms\n",
				i+1, tr.Step.Kind, tr.Rows, tr.IO, tr.ElapsedMS)
		}
	}
}

// buildCitationGraph synthesises a citation DAG: papers only cite older
// papers, in four research-area labels. Surveys cite broadly, systems
// papers cite theory and datasets, and so on.
func buildCitationGraph(seed int64, n int) *fastmatch.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := fastmatch.NewGraphBuilder()
	labels := []string{"theory", "dataset", "systems", "survey"}
	// Older papers first; label mix shifts over time (theory early,
	// surveys late).
	ids := make([]fastmatch.NodeID, n)
	for i := 0; i < n; i++ {
		var label string
		switch {
		case i < n/4:
			label = labels[rng.Intn(2)] // theory, dataset
		case i < 3*n/4:
			label = labels[rng.Intn(3)]
		default:
			label = labels[1+rng.Intn(3)]
		}
		ids[i] = b.AddNode(label)
	}
	for i := 1; i < n; i++ {
		refs := 1 + rng.Intn(4)
		for r := 0; r < refs; r++ {
			b.AddEdge(ids[i], ids[rng.Intn(i)]) // cite an older paper
		}
	}
	return b.Build()
}
