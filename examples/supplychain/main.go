// Supply chain: the paper's introductory example. Over a business
// relationship graph, find every (Supplier, Retailer, Wholeseller, Bank)
// such that the supplier directly or indirectly supplies both the retailer
// and the wholeseller, and all of them receive services from the same bank.
//
//	go run ./examples/supplychain
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fastmatch"
)

func main() {
	g, names := buildSupplyGraph(42)
	eng, err := fastmatch.NewEngine(g, fastmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Println(eng.Stats())

	// Supplier ⇝ Retailer, Supplier ⇝ Wholeseller (supplies, possibly
	// through intermediaries), Bank ⇝ all three (provides services,
	// possibly through subsidiaries).
	query := "supplier->retailer; supplier->wholeseller; " +
		"bank->supplier; bank->retailer; bank->wholeseller"
	res, plan, traces, err := eng.ExplainAnalyze(fastmatch.MustPattern(query), fastmatch.DPS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	for i, tr := range traces {
		fmt.Printf("  step %d %-9s rows=%-6d io=%-6d %.2fms\n", i+1, tr.Step.Kind, tr.Rows, tr.IO, tr.ElapsedMS)
	}
	res.SortRows()
	fmt.Printf("%d supplier/retailer/wholeseller/bank constellations, e.g.:\n", res.Len())
	for i, row := range res.Rows {
		if i == 5 {
			break
		}
		fmt.Printf("  %s supplies %s and %s; all banked by %s\n",
			names[row[0]], names[row[1]], names[row[2]], names[row[3]])
	}
}

// buildSupplyGraph synthesises a layered trade network: banks serve holding
// companies that own suppliers; suppliers sell through distributors to
// retailers and wholesellers.
func buildSupplyGraph(seed int64) (*fastmatch.Graph, map[fastmatch.NodeID]string) {
	rng := rand.New(rand.NewSource(seed))
	b := fastmatch.NewGraphBuilder()
	names := map[fastmatch.NodeID]string{}
	mk := func(label, name string) fastmatch.NodeID {
		id := b.AddNode(label)
		names[id] = name
		return id
	}

	const nBanks, nHoldings, nSuppliers, nDistributors, nRetailers, nWholesellers = 4, 8, 20, 12, 30, 15

	banks := make([]fastmatch.NodeID, nBanks)
	for i := range banks {
		banks[i] = mk("bank", fmt.Sprintf("Bank-%c", 'A'+i))
	}
	holdings := make([]fastmatch.NodeID, nHoldings)
	for i := range holdings {
		holdings[i] = mk("holding", fmt.Sprintf("Holding-%d", i))
		b.AddEdge(banks[rng.Intn(nBanks)], holdings[i]) // bank serves holding
	}
	suppliers := make([]fastmatch.NodeID, nSuppliers)
	for i := range suppliers {
		suppliers[i] = mk("supplier", fmt.Sprintf("Supplier-%d", i))
		b.AddEdge(holdings[rng.Intn(nHoldings)], suppliers[i]) // holding owns supplier
		if rng.Intn(3) == 0 {
			b.AddEdge(banks[rng.Intn(nBanks)], suppliers[i]) // direct banking
		}
	}
	distributors := make([]fastmatch.NodeID, nDistributors)
	for i := range distributors {
		distributors[i] = mk("distributor", fmt.Sprintf("Distributor-%d", i))
		b.AddEdge(suppliers[rng.Intn(nSuppliers)], distributors[i])
		if rng.Intn(2) == 0 {
			b.AddEdge(suppliers[rng.Intn(nSuppliers)], distributors[i])
		}
	}
	for i := 0; i < nRetailers; i++ {
		r := mk("retailer", fmt.Sprintf("Retailer-%d", i))
		b.AddEdge(distributors[rng.Intn(nDistributors)], r)
		b.AddEdge(banks[rng.Intn(nBanks)], r)
	}
	for i := 0; i < nWholesellers; i++ {
		w := mk("wholeseller", fmt.Sprintf("Wholeseller-%d", i))
		b.AddEdge(distributors[rng.Intn(nDistributors)], w)
		b.AddEdge(banks[rng.Intn(nBanks)], w)
	}
	return b.Build(), names
}
