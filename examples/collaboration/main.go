// Collaboration: research collaboration patterns over an academic graph.
// Labs contain groups, groups contain researchers, researchers author
// papers, papers appear at venues, and projects fund groups or researchers.
// Find, for example, every (lab, researcher, paper, venue) where someone in
// a lab published — directly or through students — a paper that ended up at
// a given venue, plus the project money trail behind it.
//
//	go run ./examples/collaboration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fastmatch"
)

func main() {
	g, names := buildAcademicGraph(7)
	eng, err := fastmatch.NewEngine(g, fastmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Println(eng.Stats())

	queries := []struct {
		title string
		q     string
	}{
		{
			"lab members reaching venues",
			"lab->researcher; researcher->paper; paper->venue",
		},
		{
			"projects funding work that reached a venue",
			"project->researcher; researcher->paper; paper->venue; project->venue",
		},
		{
			"co-funded collaboration: two funded parties on one paper trail",
			"project->researcher; project->group; researcher->paper; group->paper",
		},
	}
	for _, q := range queries {
		p, err := fastmatch.ParsePattern(q.q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.QueryPattern(p, fastmatch.DPS)
		if err != nil {
			log.Fatal(err)
		}
		res.SortRows()
		fmt.Printf("\n%s — %q: %d matches\n", q.title, q.q, res.Len())
		for i, row := range res.Rows {
			if i == 3 {
				break
			}
			fmt.Print(" ")
			for j, v := range row {
				fmt.Printf(" %s=%s", p.Nodes[res.Cols[j]], names[v])
			}
			fmt.Println()
		}
	}
}

// buildAcademicGraph synthesises the academic world described above;
// advisor→student edges create multi-hop "through students" paths, and a
// couple of mutual-collaboration edges create cycles (handled by the SCC
// condensation inside the engine).
func buildAcademicGraph(seed int64) (*fastmatch.Graph, map[fastmatch.NodeID]string) {
	rng := rand.New(rand.NewSource(seed))
	b := fastmatch.NewGraphBuilder()
	names := map[fastmatch.NodeID]string{}
	mk := func(label, name string) fastmatch.NodeID {
		id := b.AddNode(label)
		names[id] = name
		return id
	}

	const nLabs, nGroups, nResearchers, nPapers, nVenues, nProjects = 3, 9, 40, 60, 6, 10

	labs := make([]fastmatch.NodeID, nLabs)
	for i := range labs {
		labs[i] = mk("lab", fmt.Sprintf("Lab-%d", i))
	}
	groups := make([]fastmatch.NodeID, nGroups)
	for i := range groups {
		groups[i] = mk("group", fmt.Sprintf("Group-%d", i))
		b.AddEdge(labs[rng.Intn(nLabs)], groups[i])
	}
	researchers := make([]fastmatch.NodeID, nResearchers)
	for i := range researchers {
		researchers[i] = mk("researcher", fmt.Sprintf("R%02d", i))
		b.AddEdge(groups[rng.Intn(nGroups)], researchers[i])
		if i > 0 && rng.Intn(2) == 0 {
			// Advisor relationship: an earlier researcher mentors this one.
			b.AddEdge(researchers[rng.Intn(i)], researchers[i])
		}
	}
	// A couple of mutual collaborations (cycles).
	for k := 0; k < 3; k++ {
		i, j := rng.Intn(nResearchers), rng.Intn(nResearchers)
		if i != j {
			b.AddEdge(researchers[i], researchers[j])
			b.AddEdge(researchers[j], researchers[i])
		}
	}
	venues := make([]fastmatch.NodeID, nVenues)
	for i := range venues {
		venues[i] = mk("venue", fmt.Sprintf("Venue-%d", i))
	}
	for i := 0; i < nPapers; i++ {
		p := mk("paper", fmt.Sprintf("Paper-%03d", i))
		nAuthors := 1 + rng.Intn(3)
		for a := 0; a < nAuthors; a++ {
			b.AddEdge(researchers[rng.Intn(nResearchers)], p)
		}
		b.AddEdge(p, venues[rng.Intn(nVenues)])
	}
	for i := 0; i < nProjects; i++ {
		pr := mk("project", fmt.Sprintf("Project-%d", i))
		b.AddEdge(pr, groups[rng.Intn(nGroups)])
		b.AddEdge(pr, researchers[rng.Intn(nResearchers)])
		if rng.Intn(2) == 0 {
			b.AddEdge(pr, venues[rng.Intn(nVenues)]) // sponsors a venue
		}
	}
	return b.Build(), names
}
