// Dynamic: incremental reachability over a growing dependency graph.
// A build system's package graph gains edges as developers add imports;
// the oracle answers "does A (transitively) depend on B?" after every
// insertion without recomputing the 2-hop labeling from scratch — the
// cover update problem referenced by the paper.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fastmatch"
)

func main() {
	// Seed graph: a layered package universe (app → lib → core) with
	// within-layer utility edges.
	rng := rand.New(rand.NewSource(3))
	b := fastmatch.NewGraphBuilder()
	const perLayer = 40
	layers := [3]string{"app", "lib", "core"}
	var ids [3][]fastmatch.NodeID
	for li, label := range layers {
		for i := 0; i < perLayer; i++ {
			ids[li] = append(ids[li], b.AddNode(label))
		}
	}
	for li := 0; li < 2; li++ {
		for _, u := range ids[li] {
			// Each package imports 1–3 from the next layer down.
			for k := 1 + rng.Intn(3); k > 0; k-- {
				b.AddEdge(u, ids[li+1][rng.Intn(perLayer)])
			}
		}
	}
	g := b.Build()

	oracle := fastmatch.NewReachabilityOracle(g)
	fmt.Printf("initial: %d nodes, %d edges, %d label entries\n",
		g.NumNodes(), g.NumEdges(), oracle.LabelEntries())

	app0, core0 := ids[0][0], ids[2][0]
	fmt.Printf("app[0] depends on core[0]? %v\n", oracle.Reaches(app0, core0))

	// Developers add imports over time; some create new transitive
	// dependencies, some are redundant, one would create a cycle between
	// two libs (mutual imports — the oracle handles it).
	inserts := [][2]fastmatch.NodeID{
		{ids[1][0], ids[2][0]}, // lib[0] → core[0]
		{ids[0][0], ids[1][0]}, // app[0] → lib[0]: now app[0] ⇝ core[0]?
		{ids[1][3], ids[1][7]},
		{ids[1][7], ids[1][3]}, // mutual libs → cycle
		{ids[0][0], ids[1][0]}, // duplicate import: no new labels
	}
	for _, e := range inserts {
		added := oracle.InsertEdge(e[0], e[1])
		fmt.Printf("insert %3d -> %3d: %3d new label entries (total %d)\n",
			e[0], e[1], len(added), oracle.LabelEntries())
	}
	if !oracle.Reaches(app0, core0) {
		log.Fatal("app[0] should now reach core[0]")
	}
	fmt.Printf("app[0] depends on core[0]? %v\n", oracle.Reaches(app0, core0))
	fmt.Printf("lib cycle members reach each other? %v\n",
		oracle.Reaches(ids[1][3], ids[1][7]) && oracle.Reaches(ids[1][7], ids[1][3]))

	// Heavier churn: 500 random imports, verifying a sample against a
	// from-scratch oracle at the end.
	type edge struct{ u, v fastmatch.NodeID }
	var history []edge
	for i := 0; i < 500; i++ {
		u := fastmatch.NodeID(rng.Intn(g.NumNodes()))
		v := fastmatch.NodeID(rng.Intn(g.NumNodes()))
		oracle.InsertEdge(u, v)
		history = append(history, edge{u, v})
	}
	// Rebuild ground truth from scratch.
	b2 := fastmatch.NewGraphBuilder()
	for v := fastmatch.NodeID(0); int(v) < g.NumNodes(); v++ {
		b2.AddNode(g.LabelNameOf(v))
	}
	for v := fastmatch.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, w := range g.Successors(v) {
			b2.AddEdge(v, w)
		}
	}
	for _, e := range history {
		b2.AddEdge(e.u, e.v)
	}
	fresh := fastmatch.NewReachabilityOracle(b2.Build())
	for trial := 0; trial < 2000; trial++ {
		u := fastmatch.NodeID(rng.Intn(g.NumNodes()))
		v := fastmatch.NodeID(rng.Intn(g.NumNodes()))
		if oracle.Reaches(u, v) != fresh.Reaches(u, v) {
			log.Fatalf("incremental and fresh oracles disagree on (%d,%d)", u, v)
		}
	}
	fmt.Printf("after 500 more inserts: %d label entries; 2000 sampled answers match a fresh oracle\n",
		oracle.LabelEntries())
}
