// Quickstart: build a small labeled graph, index it, and run a pattern.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fastmatch"
)

func main() {
	// The data graph of the paper's Figure 1(a): labels A–E.
	b := fastmatch.NewGraphBuilder()
	ids := map[string]fastmatch.NodeID{}
	node := func(name, label string) {
		ids[name] = b.AddNode(label)
	}
	node("a0", "A")
	for _, n := range []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6"} {
		node(n, "B")
	}
	for _, n := range []string{"c0", "c1", "c2", "c3"} {
		node(n, "C")
	}
	for _, n := range []string{"d0", "d1", "d2", "d3", "d4", "d5"} {
		node(n, "D")
	}
	for _, n := range []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"} {
		node(n, "E")
	}
	for _, e := range [][2]string{
		{"a0", "b3"}, {"a0", "b4"}, {"a0", "b5"}, {"a0", "c0"},
		{"b3", "c2"}, {"b4", "c2"}, {"b5", "c3"}, {"b6", "c3"},
		{"b0", "c1"}, {"b1", "c1"}, {"b2", "c1"}, {"b1", "c3"},
		{"c0", "d0"}, {"c0", "d1"}, {"c0", "e0"},
		{"c1", "d2"}, {"c1", "d3"}, {"c1", "e7"},
		{"c2", "e2"}, {"c3", "d4"}, {"c3", "d5"},
		{"d0", "e0"}, {"d2", "e1"}, {"d4", "e3"}, {"e4", "e5"},
	} {
		b.AddEdge(ids[e[0]], ids[e[1]])
	}

	// Index: 2-hop cover, base tables, W-table, cluster-based R-join index.
	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Println(eng.Stats())

	// The pattern of Figure 1(b): find (a, c, b, d, e) with a ⇝ c, b ⇝ c,
	// c ⇝ d and d ⇝ e, where ⇝ is reachability over any number of edges.
	res, err := eng.Query("A->C; B->C; C->D; D->E")
	if err != nil {
		log.Fatal(err)
	}
	res.SortRows()
	fmt.Printf("%d matches for A->C; B->C; C->D; D->E\n", res.Len())
	for _, row := range res.Rows {
		fmt.Printf("  A=%d C=%d B=%d D=%d E=%d\n", row[0], row[1], row[2], row[3], row[4])
	}

	// Inspect the plan the DPS optimizer chose.
	p, err := fastmatch.ParsePattern("A->C; B->C; C->D; D->E")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := eng.Explain(p, fastmatch.DPS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
}
