package fastmatch_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"fastmatch"
	"fastmatch/internal/exec"
	"fastmatch/internal/workload"
	"fastmatch/internal/xmark"
)

// TestErrClosed: after Close, every Engine entry point fails with the typed
// ErrClosed sentinel, and Close stays idempotent.
func TestErrClosed(t *testing.T) {
	d := xmark.Generate(xmark.Config{Nodes: 400, Seed: 3, DAG: true})
	eng, err := fastmatch.NewEngine(d.Graph, fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := eng.Parallel(fastmatch.ServeConfig{})
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	p := fastmatch.MustPattern("site->regions")
	if _, err := eng.QueryPattern(p, fastmatch.DPS); !errors.Is(err, fastmatch.ErrClosed) {
		t.Fatalf("QueryPattern after Close: %v", err)
	}
	if _, err := eng.Query("site->regions"); !errors.Is(err, fastmatch.ErrClosed) {
		t.Fatalf("Query after Close: %v", err)
	}
	if _, err := eng.Explain(p, fastmatch.DP); !errors.Is(err, fastmatch.ErrClosed) {
		t.Fatalf("Explain after Close: %v", err)
	}
	if _, _, _, err := eng.ExplainAnalyze(p, fastmatch.DPS); !errors.Is(err, fastmatch.ErrClosed) {
		t.Fatalf("ExplainAnalyze after Close: %v", err)
	}
	if _, err := eng.Reaches(0, 1); !errors.Is(err, fastmatch.ErrClosed) {
		t.Fatalf("Reaches after Close: %v", err)
	}
	if _, err := svc.Query(context.Background(), "site->regions", ""); !errors.Is(err, fastmatch.ErrClosed) {
		t.Fatalf("Service query after Close: %v", err)
	}
}

// TestParallelQueries is the concurrency stress test: 8 goroutines issue
// mixed path/tree patterns against one engine — memory-backed and
// file-backed — and every result must equal the naive matcher's. Run under
// -race this exercises the sharded buffer pool, the code cache, the stats
// memos, and per-query scratch heaps.
func TestParallelQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := xmark.Generate(xmark.Config{Nodes: 2500, Seed: 7, DAG: true})
	g := d.Graph

	var batteries []workload.Workload
	batteries = append(batteries, workload.Paths()[:4]...)
	batteries = append(batteries, workload.Trees()[:4]...)

	type expectation struct {
		w    workload.Workload
		rows [][]fastmatch.NodeID
	}
	want := make([]expectation, len(batteries))
	for i, w := range batteries {
		naive, err := exec.NaiveMatch(g, w.Pattern)
		if err != nil {
			t.Fatalf("%s naive: %v", w.Name, err)
		}
		naive.SortRows()
		want[i] = expectation{w: w, rows: naive.Rows}
	}

	engines := map[string]fastmatch.Options{
		"memory": {},
		"file":   {Path: filepath.Join(t.TempDir(), "stress.fgmdb")},
	}
	for name, opt := range engines {
		t.Run(name, func(t *testing.T) {
			eng, err := fastmatch.NewEngine(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			const workers = 8
			const itersPerWorker = 6
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					algos := []fastmatch.Algorithm{fastmatch.DP, fastmatch.DPS, fastmatch.DPSMerged}
					for i := 0; i < itersPerWorker; i++ {
						e := want[(worker+3*i)%len(want)]
						res, err := eng.QueryPattern(e.w.Pattern, algos[(worker+i)%len(algos)])
						if err != nil {
							errc <- err
							return
						}
						res.SortRows()
						if !reflect.DeepEqual(res.Rows, e.rows) {
							errc <- errors.New(e.w.Name + ": parallel result differs from naive matcher")
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
		})
	}
}

// TestServiceParallel drives the serving layer end to end with more
// clients than execution slots: all queries succeed (the queue absorbs the
// burst), results stay correct, and the stats add up.
func TestServiceParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := xmark.Generate(xmark.Config{Nodes: 2000, Seed: 11, DAG: true})
	eng, err := fastmatch.NewEngine(d.Graph, fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	svc := eng.Parallel(fastmatch.ServeConfig{
		MaxInFlight:  4,
		QueueTimeout: 30 * time.Second, // absorb, don't shed: correctness run
	})

	batteries := workload.Paths()[:3]
	want := make(map[string][][]fastmatch.NodeID, len(batteries))
	for _, w := range batteries {
		naive, err := exec.NaiveMatch(d.Graph, w.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		naive.SortRows()
		want[w.Name] = naive.Rows
	}

	const clients = 12
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			w := batteries[client%len(batteries)]
			res, err := svc.QueryPattern(context.Background(), w.Pattern, fastmatch.DPS)
			if err != nil {
				errc <- err
				return
			}
			rows := append([][]fastmatch.NodeID(nil), res.Rows...)
			sortRows(rows)
			if !reflect.DeepEqual(rows, want[w.Name]) {
				errc <- errors.New(w.Name + ": served result differs from naive matcher")
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Queries != clients || st.Errors != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PlanCacheHits+st.PlanCacheMisses != clients {
		t.Fatalf("plan cache accounted %d lookups, want %d", st.PlanCacheHits+st.PlanCacheMisses, clients)
	}
	if st.PlanCacheMisses > int64(len(batteries)) {
		t.Fatalf("%d plan cache misses for %d distinct patterns", st.PlanCacheMisses, len(batteries))
	}
}

func sortRows(rows [][]fastmatch.NodeID) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && lessRow(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func lessRow(a, b []fastmatch.NodeID) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}
