package fastmatch_test

import (
	"reflect"
	"runtime"
	"testing"

	"fastmatch"
	"fastmatch/internal/xmark"
)

// TestBuildParallelismQueryEquivalence is the end-to-end acceptance check
// for the parallel build pipeline: engines built at BuildParallelism 1, 2,
// and GOMAXPROCS answer a battery of pattern queries with byte-identical
// results (same rows, same order after the deterministic sort both
// algorithms apply). Run under -race by `make verify`.
func TestBuildParallelismQueryEquivalence(t *testing.T) {
	d := xmark.Generate(xmark.Config{Nodes: 4000, Seed: 5})
	queries := []string{
		"site->regions; regions->item",
		"open_auction->bidder; bidder->personref",
		"item->name; item->incategory; incategory->category",
		"open_auction->item; closed_auction->item; item->category",
	}
	degrees := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		degrees = append(degrees, p)
	}

	type key struct {
		q    string
		algo fastmatch.Algorithm
	}
	var ref map[key][][]fastmatch.NodeID
	for _, workers := range degrees {
		eng, err := fastmatch.NewEngine(d.Graph, fastmatch.Options{BuildParallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[key][][]fastmatch.NodeID)
		for _, q := range queries {
			p, err := fastmatch.ParsePattern(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []fastmatch.Algorithm{fastmatch.DP, fastmatch.DPS} {
				res, err := eng.QueryPattern(p, algo)
				if err != nil {
					t.Fatalf("workers=%d %q: %v", workers, q, err)
				}
				got[key{q, algo}] = res.Rows
			}
		}
		eng.Close()
		if ref == nil {
			ref = got
			continue
		}
		for k, rows := range got {
			if !reflect.DeepEqual(ref[k], rows) {
				t.Errorf("workers=%d: query %q (%v) returned %d rows differing from serial build's %d",
					workers, k.q, k.algo, len(rows), len(ref[k]))
			}
		}
	}
}
