// Command fgmbench regenerates the paper's tables and figures (Section 6)
// on the scaled-down XMark-substitute datasets. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured discussion.
//
// Usage:
//
//	fgmbench -exp all                # every experiment
//	fgmbench -exp table2             # one experiment
//	fgmbench -exp fig6a -mult 0.5    # half-size datasets
//	fgmbench -exp rjoin              # operator micros + BENCH_rjoin.json
//	fgmbench -list                   # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fastmatch/internal/bench"
)

var experimentIDs = []string{
	"table2", "fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b", "fig7c", "iocost",
	"ablation-order", "ablation-wcache", "ablation-pool", "ablation-merged", "ablation-naive",
	"rjoin", "build",
}

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment ID or \"all\"")
		mult = flag.Float64("mult", 1.0, "dataset size multiplier (1.0 = 20K–100K node ladder)")
		seed = flag.Int64("seed", 1, "data generation seed")
		reps = flag.Int("reps", 2, "timed repetitions per query (minimum reported)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		out  = flag.String("out", "", "machine-readable output path for -exp rjoin / build (default BENCH_<exp>.json)")
		bp   = flag.Int("build-parallelism", 0, "workers for experiment database builds (0/1 = serial, -1 = GOMAXPROCS)")
	)
	flag.Parse()
	if *list {
		for _, id := range experimentIDs {
			fmt.Println(id)
		}
		return
	}
	// Stamp every text artifact with the machine context: worker-degree
	// sweeps and build parallelism read differently on 1 CPU than on 16.
	fmt.Println(bench.CurrentEnv())

	r := bench.NewRunner(*mult, *seed)
	r.Reps = *reps
	r.BuildParallelism = *bp
	defer r.Close()

	if *exp == "ablations" {
		reports, err := r.Ablations()
		for _, rep := range reports {
			rep.Print(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "all" {
		reports, err := r.All()
		for _, rep := range reports {
			rep.Print(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "rjoin" || *exp == "build" {
		// These micros also emit a machine-readable file so bench-compare
		// and CI can diff runs without parsing the table.
		var (
			rep     *bench.Report
			results any
			n       int
			err     error
		)
		if *exp == "rjoin" {
			var rows []bench.RJoinResult
			rep, rows, err = r.RJoinMicro()
			results, n = rows, len(rows)
		} else {
			var rows []bench.BuildResult
			rep, rows, err = r.BuildMicro()
			results, n = rows, len(rows)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		path := *out
		if path == "" {
			path = "BENCH_" + *exp + ".json"
		}
		// The envelope carries the measurement environment next to the rows.
		envelope := struct {
			Env     bench.Env `json:"env"`
			Results any       `json:"results"`
		}{bench.CurrentEnv(), results}
		data, err := json.MarshalIndent(envelope, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, n)
		return
	}
	rep, err := r.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgmbench:", err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}
