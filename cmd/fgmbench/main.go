// Command fgmbench regenerates the paper's tables and figures (Section 6)
// on the scaled-down XMark-substitute datasets. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured discussion.
//
// Usage:
//
//	fgmbench -exp all                # every experiment
//	fgmbench -exp table2             # one experiment
//	fgmbench -exp fig6a -mult 0.5    # half-size datasets
//	fgmbench -exp rjoin              # operator micros + BENCH_rjoin.json
//	fgmbench -exp wcoj               # WCOJ vs binary joins + BENCH_wcoj.json
//	fgmbench -exp reach              # reachability-index backends + BENCH_reach.json
//	fgmbench -exp wcoj -compare BENCH_wcoj.json  # fail on >10% WCOJ regression
//	fgmbench -list                   # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fastmatch/internal/bench"
)

var experimentIDs = []string{
	"table2", "fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b", "fig7c", "iocost",
	"ablation-order", "ablation-wcache", "ablation-pool", "ablation-merged", "ablation-naive",
	"rjoin", "build", "wcoj", "fastpath", "reach",
}

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment ID or \"all\"")
		mult = flag.Float64("mult", 1.0, "dataset size multiplier (1.0 = 20K–100K node ladder)")
		seed = flag.Int64("seed", 1, "data generation seed")
		reps = flag.Int("reps", 2, "timed repetitions per query (minimum reported)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		out  = flag.String("out", "", "machine-readable output path for -exp rjoin / build / wcoj (default BENCH_<exp>.json)")
		bp   = flag.Int("build-parallelism", 0, "workers for experiment database builds (0/1 = serial, -1 = GOMAXPROCS)")
		cmp  = flag.String("compare", "", "for -exp wcoj / fastpath: committed BENCH_<exp>.json to guard against; exit non-zero on a >10% regression")
	)
	flag.Parse()
	if *list {
		for _, id := range experimentIDs {
			fmt.Println(id)
		}
		return
	}
	// Stamp every text artifact with the machine context: worker-degree
	// sweeps and build parallelism read differently on 1 CPU than on 16.
	fmt.Println(bench.CurrentEnv())

	r := bench.NewRunner(*mult, *seed)
	r.Reps = *reps
	r.BuildParallelism = *bp
	defer r.Close()

	if *exp == "ablations" {
		reports, err := r.Ablations()
		for _, rep := range reports {
			rep.Print(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "all" {
		reports, err := r.All()
		for _, rep := range reports {
			rep.Print(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "rjoin" || *exp == "build" || *exp == "wcoj" || *exp == "fastpath" || *exp == "reach" {
		// These micros also emit a machine-readable file so bench-compare
		// and CI can diff runs without parsing the table.
		var (
			rep       *bench.Report
			results   any
			wcojRows  []bench.WCOJResult
			fpRows    []bench.FastpathResult
			reachRows []bench.ReachResult
			n         int
			err       error
		)
		switch *exp {
		case "rjoin":
			var rows []bench.RJoinResult
			rep, rows, err = r.RJoinMicro()
			results, n = rows, len(rows)
		case "build":
			var rows []bench.BuildResult
			rep, rows, err = r.BuildMicro()
			results, n = rows, len(rows)
		case "wcoj":
			rep, wcojRows, err = r.WCOJMicro()
			results, n = wcojRows, len(wcojRows)
		case "fastpath":
			rep, fpRows, err = r.FastpathMicro()
			results, n = fpRows, len(fpRows)
		case "reach":
			rep, reachRows, err = r.ReachMicro()
			results, n = reachRows, len(reachRows)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		path := *out
		if path == "" {
			path = "BENCH_" + *exp + ".json"
		}
		// The envelope carries the measurement environment next to the rows.
		envelope := struct {
			Env     bench.Env `json:"env"`
			Results any       `json:"results"`
		}{bench.CurrentEnv(), results}
		data, err := json.MarshalIndent(envelope, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fgmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, n)
		if *exp == "wcoj" && *cmp != "" {
			if err := compareWCOJ(*cmp, wcojRows); err != nil {
				fmt.Fprintln(os.Stderr, "fgmbench:", err)
				os.Exit(1)
			}
			fmt.Printf("no WCOJ regression vs %s\n", *cmp)
		}
		if *exp == "fastpath" && *cmp != "" {
			if err := compareFastpath(*cmp, fpRows); err != nil {
				fmt.Fprintln(os.Stderr, "fgmbench:", err)
				os.Exit(1)
			}
			fmt.Printf("no fast-path regression vs %s\n", *cmp)
		}
		if *exp == "reach" && *cmp != "" {
			if err := compareReach(*cmp, reachRows); err != nil {
				fmt.Fprintln(os.Stderr, "fgmbench:", err)
				os.Exit(1)
			}
			fmt.Printf("no reach-backend regression vs %s\n", *cmp)
		}
		return
	}
	rep, err := r.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fgmbench:", err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}

// compareWCOJ guards against multiway-join performance regressions: each
// cyclic query's forced-WCOJ time in head must stay within 10% of the
// committed baseline (plus a 1ms absolute grace, so sub-millisecond timer
// noise cannot fail a build). Queries present only on one side are
// ignored — adding or renaming workloads is not a regression.
func compareWCOJ(basePath string, head []bench.WCOJResult) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var envelope struct {
		Results []bench.WCOJResult `json:"results"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	base := make(map[string]bench.WCOJResult, len(envelope.Results))
	for _, b := range envelope.Results {
		base[b.Name] = b
	}
	var failures []string
	for _, h := range head {
		b, ok := base[h.Name]
		if !ok {
			continue
		}
		if allowed := b.WCOJMS*1.10 + 1.0; h.WCOJMS > allowed {
			failures = append(failures, fmt.Sprintf(
				"%s: wcoj %.2fms vs baseline %.2fms (allowed %.2fms)",
				h.Name, h.WCOJMS, b.WCOJMS, allowed))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("WCOJ regression vs %s:\n  %s", basePath, strings.Join(failures, "\n  "))
	}
	return nil
}

// compareFastpath guards the tiered router's benefit: each battery entry's
// tiered time in head must stay within 10% of the committed baseline (plus
// the same 1ms absolute grace as compareWCOJ, since the battery is
// microsecond-scale). Entries present only on one side are ignored.
func compareFastpath(basePath string, head []bench.FastpathResult) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var envelope struct {
		Results []bench.FastpathResult `json:"results"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	base := make(map[string]bench.FastpathResult, len(envelope.Results))
	for _, b := range envelope.Results {
		base[b.Name] = b
	}
	var failures []string
	for _, h := range head {
		b, ok := base[h.Name]
		if !ok {
			continue
		}
		if allowed := b.TieredMS*1.10 + 1.0; h.TieredMS > allowed {
			failures = append(failures, fmt.Sprintf(
				"%s: tiered %.3fms vs baseline %.3fms (allowed %.3fms)",
				h.Name, h.TieredMS, b.TieredMS, allowed))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("fast-path regression vs %s:\n  %s", basePath, strings.Join(failures, "\n  "))
	}
	return nil
}

// compareReach guards each backend's end-to-end query time against the
// committed baseline with the same 10% + 1ms tolerance as the other micro
// guards. Backends present only on one side are ignored — registering a
// new backend is not a regression.
func compareReach(basePath string, head []bench.ReachResult) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var envelope struct {
		Results []bench.ReachResult `json:"results"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	base := make(map[string]bench.ReachResult, len(envelope.Results))
	for _, b := range envelope.Results {
		base[b.Backend+"/"+b.Dataset] = b
	}
	var failures []string
	for _, h := range head {
		b, ok := base[h.Backend+"/"+h.Dataset]
		if !ok {
			continue
		}
		if allowed := b.QueryMS*1.10 + 1.0; h.QueryMS > allowed {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: query %.2fms vs baseline %.2fms (allowed %.2fms)",
				h.Backend, h.Dataset, h.QueryMS, b.QueryMS, allowed))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("reach-backend regression vs %s:\n  %s", basePath, strings.Join(failures, "\n  "))
	}
	return nil
}
