// Command fgmatch builds a graph database over a data graph and evaluates
// graph pattern queries against it.
//
// Usage:
//
//	fgmatch -graph data.fgm -query "A->C; B->C; C->D"
//	fgmatch -graph data.fgm -query "..." -algo dp -explain
//	fgmatch -graph data.fgm -query "..." -analyze -limit 5
//	fgmatch -graph data.fgm -stats
//	fgmatch -db grown.fdb -repack packed.fdb
//
// The graph file uses the text format written by fgmgen. Results print one
// match per line as label=nodeID pairs. -repack is an offline maintenance
// mode: it rewrites a persisted database (typically fragmented by edge
// inserts) into the dense bulk-loaded layout at a new path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fastmatch"
	"fastmatch/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fgmatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath   = flag.String("graph", "", "data graph file (text format; required)")
		query       = flag.String("query", "", "pattern, e.g. \"A->C; B->C\"")
		algo        = flag.String("algo", "dps", "optimizer: dp, dps, dpsmerged, or wcoj (forced multiway join)")
		explain     = flag.Bool("explain", false, "print the chosen plan (operator kinds, variable order, cost estimates) instead of running it")
		analyze     = flag.Bool("analyze", false, "run and print per-step rows/IO/time")
		stats       = flag.Bool("stats", false, "print index statistics")
		limit       = flag.Int("limit", 20, "max result rows to print (0 = all)")
		budgetRows  = flag.Int("budget-rows", 0, "kill the query once an intermediate table exceeds this many rows (0 = unbounded)")
		budgetBytes = flag.Int64("budget-bytes", 0, "kill the query once intermediate results exceed this many bytes (0 = unbounded)")
		pool        = flag.Int("pool", 0, "buffer pool bytes (default 1 MB)")
		buildPar    = flag.Int("build-parallelism", 0, "index-build workers (0/1 = serial, -1 = GOMAXPROCS)")
		reachIndex  = flag.String("reach-index", "", "reachability-index backend: "+strings.Join(fastmatch.ReachBackends(), ", ")+" (default twohop)")
		dot         = flag.String("dot", "", "write the data graph in Graphviz DOT format to this file and exit")
		dotMax      = flag.Int("dotmax", 200, "max nodes in -dot output (0 = all)")
		dbPath      = flag.String("db", "", "persisted database file (for -repack)")
		repack      = flag.String("repack", "", "rewrite the -db database into a dense bulk-loaded file at this path and exit")
	)
	flag.Parse()
	if *repack != "" {
		if *dbPath == "" {
			return fmt.Errorf("-repack requires -db")
		}
		return runRepack(*dbPath, *repack)
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.ReadText(f)
	f.Close()
	if err != nil {
		return err
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		return graph.WriteDOT(f, g, *dotMax)
	}

	eng, err := fastmatch.NewEngine(g, fastmatch.Options{PoolBytes: *pool, BuildParallelism: *buildPar, ReachIndex: *reachIndex})
	if err != nil {
		return err
	}
	defer eng.Close()

	if *stats {
		fmt.Println(eng.Stats())
		if *query == "" {
			return nil
		}
	}
	if *query == "" {
		return fmt.Errorf("-query is required (or use -stats)")
	}

	p, err := fastmatch.ParsePattern(*query)
	if err != nil {
		return err
	}
	var algorithm fastmatch.Algorithm
	switch *algo {
	case "dp":
		algorithm = fastmatch.DP
	case "dps":
		algorithm = fastmatch.DPS
	case "dpsmerged":
		algorithm = fastmatch.DPSMerged
	case "wcoj":
		algorithm = fastmatch.WCOJ
	default:
		return fmt.Errorf("unknown -algo %q (want dp, dps, dpsmerged, or wcoj)", *algo)
	}

	if *explain {
		plan, err := eng.Explain(p, algorithm)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}

	var res *fastmatch.Result
	if *analyze {
		var plan *fastmatch.Plan
		var traces []fastmatch.StepTrace
		res, plan, traces, err = eng.ExplainAnalyze(p, algorithm)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		for i, tr := range traces {
			fmt.Printf("  step %d %-9s rows=%-8d io=%-8d workers=%-2d chits=%-6d %.2fms",
				i+1, tr.Step.Kind, tr.Rows, tr.IO, tr.Workers, tr.CenterCacheHits, tr.ElapsedMS)
			if tr.Seeks > 0 || tr.IterNexts > 0 {
				fmt.Printf(" seeks=%d nexts=%d", tr.Seeks, tr.IterNexts)
			}
			if tr.Tier != 0 && tr.Tier != 3 {
				fmt.Printf(" tier=%d index=%q", tr.Tier, tr.FastIndex)
			}
			fmt.Println()
		}
	} else if *budgetRows > 0 || *budgetBytes > 0 {
		b := &fastmatch.Budget{MaxTableRows: *budgetRows, MaxBytes: *budgetBytes}
		res, err = eng.QueryPatternBudget(context.Background(), p, algorithm, b)
		if err != nil {
			return err
		}
	} else {
		res, err = eng.QueryPattern(p, algorithm)
		if err != nil {
			return err
		}
	}

	res.SortRows()
	fmt.Printf("%d matches\n", res.Len())
	for i, row := range res.Rows {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more)\n", res.Len()-i)
			break
		}
		for j, v := range row {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%d", p.Nodes[res.Cols[j]], v)
		}
		fmt.Println()
	}
	return nil
}

// runRepack rewrites src into the bulk layout at dst and reports the file
// size change.
func runRepack(src, dst string) error {
	before, err := os.Stat(src)
	if err != nil {
		return err
	}
	if err := fastmatch.Repack(src, dst); err != nil {
		return err
	}
	after, err := os.Stat(dst)
	if err != nil {
		return err
	}
	fmt.Printf("repacked %s (%d bytes) -> %s (%d bytes)\n", src, before.Size(), dst, after.Size())
	return nil
}
