// Package cmd_test runs the command-line tools end to end via `go run`,
// checking the generate → query pipeline and the bench harness dispatch.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = ".." // module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestGenerateThenQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.fgm")

	out := run(t, "run", "./cmd/fgmgen", "-nodes", "2500", "-seed", "5", "-out", graphPath)
	if !strings.Contains(out, "nodes") {
		t.Fatalf("fgmgen output: %q", out)
	}
	if st, err := os.Stat(graphPath); err != nil || st.Size() == 0 {
		t.Fatalf("graph file not written: %v", err)
	}

	out = run(t, "run", "./cmd/fgmatch", "-graph", graphPath, "-stats",
		"-query", "site->regions; regions->item", "-limit", "2")
	if !strings.Contains(out, "matches") || !strings.Contains(out, "engine{") {
		t.Fatalf("fgmatch output: %q", out)
	}

	out = run(t, "run", "./cmd/fgmatch", "-graph", graphPath,
		"-query", "person->profile; profile->interest", "-algo", "dp", "-explain")
	if !strings.Contains(out, "DP plan") {
		t.Fatalf("explain output: %q", out)
	}

	out = run(t, "run", "./cmd/fgmatch", "-graph", graphPath,
		"-query", "person->profile; profile->interest", "-analyze", "-limit", "1")
	if !strings.Contains(out, "step 1") {
		t.Fatalf("analyze output: %q", out)
	}
}

func TestBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := run(t, "run", "./cmd/fgmbench", "-list")
	for _, id := range []string{"table2", "fig5a", "fig7c", "iocost", "ablation-merged"} {
		if !strings.Contains(out, id) {
			t.Fatalf("fgmbench -list missing %s:\n%s", id, out)
		}
	}
	// One tiny real experiment through the CLI.
	out = run(t, "run", "./cmd/fgmbench", "-exp", "table2", "-mult", "0.05")
	if !strings.Contains(out, "table2") || !strings.Contains(out, "100M") {
		t.Fatalf("table2 output: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/fgmatch", "-query", "A->B")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("fgmatch without -graph should fail, got: %s", out)
	}
	cmd = exec.Command("go", "run", "./cmd/fgmbench", "-exp", "nope")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment should fail, got: %s", out)
	}
}
