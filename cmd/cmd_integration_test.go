// Package cmd_test runs the command-line tools end to end via `go run`,
// checking the generate → query pipeline, the bench harness dispatch, and
// the query server over a real socket.
package cmd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fastmatch"
)

func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = ".." // module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestGenerateThenQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.fgm")

	out := run(t, "run", "./cmd/fgmgen", "-nodes", "2500", "-seed", "5", "-out", graphPath)
	if !strings.Contains(out, "nodes") {
		t.Fatalf("fgmgen output: %q", out)
	}
	if st, err := os.Stat(graphPath); err != nil || st.Size() == 0 {
		t.Fatalf("graph file not written: %v", err)
	}

	out = run(t, "run", "./cmd/fgmatch", "-graph", graphPath, "-stats",
		"-query", "site->regions; regions->item", "-limit", "2")
	if !strings.Contains(out, "matches") || !strings.Contains(out, "engine{") {
		t.Fatalf("fgmatch output: %q", out)
	}

	out = run(t, "run", "./cmd/fgmatch", "-graph", graphPath,
		"-query", "person->profile; profile->interest", "-algo", "dp", "-explain")
	if !strings.Contains(out, "DP plan") {
		t.Fatalf("explain output: %q", out)
	}

	out = run(t, "run", "./cmd/fgmatch", "-graph", graphPath,
		"-query", "person->profile; profile->interest", "-analyze", "-limit", "1")
	if !strings.Contains(out, "step 1") {
		t.Fatalf("analyze output: %q", out)
	}
}

// TestServeQuery boots fgmserve on a real TCP socket, queries it over
// HTTP, checks load shedding answers 429 and per-request deadlines answer
// 504, and shuts it down gracefully with SIGTERM.
func TestServeQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.fgm")
	// Big enough that the heavy pattern runs tens of milliseconds — past
	// the runtime's preemption quantum, so concurrent requests genuinely
	// overlap at the admission gate even on a single-CPU machine.
	run(t, "run", "./cmd/fgmgen", "-nodes", "20000", "-seed", "7", "-out", graphPath)

	// Build a real binary (not `go run`) so signals reach the server.
	bin := filepath.Join(dir, "fgmserve")
	run(t, "build", "-o", bin, "./cmd/fgmserve")

	// One execution slot and a queue timeout shorter than a heavy query:
	// a concurrent burst must be shed, not absorbed.
	cmd := exec.Command(bin, "-graph", graphPath, "-addr", "127.0.0.1:0",
		"-max-inflight", "1", "-queue-timeout", "1ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server prints "listening on 127.0.0.1:PORT" once ready.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			base = "http://" + strings.TrimSpace(addr)
			break
		}
	}
	if base == "" {
		t.Fatalf("server never reported its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Post(base+"/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	// Incremental edge insert over HTTP: a duplicate pair in one batch must
	// come back as 1 applied + 1 duplicate (or 2 duplicates if the generator
	// already placed the edge), and queries keep working afterwards.
	resp, err = client.Post(base+"/insert", "application/json",
		bytes.NewReader([]byte(`{"edges": [[0, 1], [0, 1]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	var ir struct {
		Applied    int `json:"applied"`
		Duplicates int `json:"duplicates"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ir.Applied+ir.Duplicates != 2 {
		t.Fatalf("insert: status %d, result %+v", resp.StatusCode, ir)
	}

	// Incremental edge delete over HTTP: removing the just-inserted edge
	// and repeating the pair in one batch must come back as 1 applied +
	// 1 no-op, and queries keep working afterwards.
	resp, err = client.Post(base+"/delete", "application/json",
		bytes.NewReader([]byte(`{"edges": [[0, 1], [0, 1]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Applied int `json:"applied"`
		Noops   int `json:"noops"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || dr.Applied != 1 || dr.Noops != 1 {
		t.Fatalf("delete: status %d, result %+v", resp.StatusCode, dr)
	}

	resp, body := post(`{"pattern": "site->regions; regions->item", "limit": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr struct {
		Cols     []string  `json:"cols"`
		Rows     [][]int64 `json:"rows"`
		RowCount int       `json:"row_count"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if qr.RowCount == 0 || len(qr.Cols) != 3 {
		t.Fatalf("response: %s", body)
	}

	// Client errors map to 400.
	if resp, body = post(`{"pattern": "site->x"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown label: %d %s", resp.StatusCode, body)
	}
	const heavy = `"person->profile; profile->interest; person->watches; site->person"`

	// Load shedding: burst 12 concurrent heavy queries at the single
	// execution slot; whatever is not absorbed within the 1ms queue timeout
	// must be shed with 429, never an error. Scheduling can delay overlap,
	// so allow a few rounds before declaring shedding broken.
	type out struct {
		status int
		body   string
	}
	shed := false
	for round := 0; round < 3 && !shed; round++ {
		results := make(chan out, 12)
		for i := 0; i < 12; i++ {
			// No t.Fatal in these goroutines: report failures as status 0.
			go func() {
				resp, err := client.Post(base+"/query", "application/json",
					bytes.NewReader([]byte(`{"pattern": `+heavy+`}`)))
				if err != nil {
					results <- out{0, err.Error()}
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				results <- out{resp.StatusCode, string(b)}
			}()
		}
		counts := map[int]int{}
		for i := 0; i < 12; i++ {
			r := <-results
			if r.status != http.StatusOK && r.status != http.StatusTooManyRequests {
				t.Fatalf("burst: unexpected %d: %s", r.status, r.body)
			}
			counts[r.status]++
		}
		if counts[http.StatusOK] == 0 {
			t.Fatalf("burst: no query succeeded: %v", counts)
		}
		shed = counts[http.StatusTooManyRequests] > 0
	}
	if !shed {
		t.Fatal("burst: nothing was shed with 429 in 3 rounds")
	}
	// A rejected client that backs off must succeed once the burst drains.
	resp, body = post(`{"pattern": ` + heavy + `, "limit": 1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst query: %d %s", resp.StatusCode, body)
	}

	var stats struct {
		Queries  int64 `json:"queries"`
		InFlight int   `json:"in_flight"`
	}
	resp, err = client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries < 1 {
		t.Fatalf("stats: %+v", stats)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}

	// Deadline honoring: a server whose default per-query budget (-timeout)
	// is already elapsed by execution's first context poll answers 504 to
	// every query. This is deterministic, unlike racing a real clock. The
	// same instance runs -readonly, so every mutating endpoint must
	// answer 403.
	slow := exec.Command(bin, "-graph", graphPath, "-addr", "127.0.0.1:0", "-timeout", "1ns", "-readonly")
	slowOut, err := slow.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	slow.Stderr = os.Stderr
	if err := slow.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		slow.Process.Signal(syscall.SIGTERM)
		slow.Wait()
	}()
	base = ""
	sc = bufio.NewScanner(slowOut)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			base = "http://" + strings.TrimSpace(addr)
			break
		}
	}
	if base == "" {
		t.Fatalf("slow server never reported its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, slowOut)
	resp, body = post(`{"pattern": ` + heavy + `}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline: %d %s, want 504", resp.StatusCode, body)
	}
	for _, path := range []string{"/insert", "/delete"} {
		resp, err = client.Post(base+path, "application/json",
			bytes.NewReader([]byte(`{"edges": [[0, 1]]}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("readonly %s: status %d, want 403", path, resp.StatusCode)
		}
	}
}

func TestBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := run(t, "run", "./cmd/fgmbench", "-list")
	for _, id := range []string{"table2", "fig5a", "fig7c", "iocost", "ablation-merged"} {
		if !strings.Contains(out, id) {
			t.Fatalf("fgmbench -list missing %s:\n%s", id, out)
		}
	}
	// One tiny real experiment through the CLI.
	out = run(t, "run", "./cmd/fgmbench", "-exp", "table2", "-mult", "0.05")
	if !strings.Contains(out, "table2") || !strings.Contains(out, "100M") {
		t.Fatalf("table2 output: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/fgmatch", "-query", "A->B")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("fgmatch without -graph should fail, got: %s", out)
	}
	cmd = exec.Command("go", "run", "./cmd/fgmbench", "-exp", "nope")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment should fail, got: %s", out)
	}
}

// TestRepackCLI persists a database, fragments it with inserts, and checks
// `fgmatch -db ... -repack ...` produces a byte-stable bulk-loaded copy.
func TestRepackCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "src.fdb")

	b := fastmatch.NewGraphBuilder()
	var nodes []fastmatch.NodeID
	for i := 0; i < 60; i++ {
		nodes = append(nodes, b.AddNode(string(rune('A'+i%3))))
	}
	for i := 0; i+1 < 40; i++ {
		b.AddEdge(nodes[i], nodes[i+1])
	}
	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{Path: src})
	if err != nil {
		t.Fatal(err)
	}
	for i := 40; i+1 < 60; i++ {
		if _, err := eng.InsertEdge(nodes[i], nodes[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	p1 := filepath.Join(dir, "p1.fdb")
	p2 := filepath.Join(dir, "p2.fdb")
	out := run(t, "run", "./cmd/fgmatch", "-db", src, "-repack", p1)
	if !strings.Contains(out, "repacked") {
		t.Fatalf("repack output: %q", out)
	}
	run(t, "run", "./cmd/fgmatch", "-db", src, "-repack", p2)
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("repack output is not byte-stable across runs")
	}

	packed, err := fastmatch.OpenEngine(p1, fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer packed.Close()
	ok, err := packed.Reaches(nodes[40], nodes[59])
	if err != nil || !ok {
		t.Fatalf("repacked database lost inserted edges: ok=%v err=%v", ok, err)
	}
}
