// Command fgmgen generates XMark-substitute data graphs in the text graph
// format (see internal/graph's WriteText).
//
// Usage:
//
//	fgmgen -nodes 20000 -seed 1 -out data.fgm
//	fgmgen -factor 0.01 -dag -out dag.fgm     # acyclic, for TSD-style use
//
// Exactly one of -nodes or -factor must be positive. -factor follows the
// paper's XMark scale (1.0 ≈ 1.67M nodes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/xmark"

	// Register the reachability backends selectable with -reach-index.
	_ "fastmatch/internal/pll"
	_ "fastmatch/internal/twohop"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 0, "approximate node budget")
		factor  = flag.Float64("factor", 0, "XMark scale factor (1.0 ≈ 1.67M nodes)")
		seed    = flag.Int64("seed", 0, "generator seed")
		dag     = flag.Bool("dag", false, "generate an acyclic graph (references point to later documents)")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("cover-stats", false, "also compute the reachability index and print its statistics to stderr")
		par     = flag.Int("build-parallelism", 0, "index-computation workers for -cover-stats (0/1 = serial, -1 = GOMAXPROCS)")
		backend = flag.String("reach-index", "", "reachability-index backend for -cover-stats: "+strings.Join(reach.Names(), ", ")+" (default twohop)")
	)
	flag.Parse()
	if (*nodes <= 0) == (*factor <= 0) {
		fmt.Fprintln(os.Stderr, "fgmgen: set exactly one of -nodes or -factor")
		os.Exit(2)
	}
	d := xmark.Generate(xmark.Config{
		Nodes:  *nodes,
		Factor: *factor,
		Seed:   *seed,
		DAG:    *dag,
	})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteText(w, d.Graph); err != nil {
		fmt.Fprintln(os.Stderr, "fgmgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fgmgen: %d docs, %d nodes, %d edges, %d labels\n",
		d.Docs, d.Graph.NumNodes(), d.Graph.NumEdges(), d.Graph.Labels().Len())
	if *stats {
		b, err := reach.Lookup(*backend)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgmgen:", err)
			os.Exit(2)
		}
		start := time.Now()
		idx := b.Build(d.Graph, reach.Options{Parallelism: *par})
		fmt.Fprintf(os.Stderr, "fgmgen: %v (computed in %s, %d workers)\n",
			idx.Stats(), time.Since(start).Round(time.Millisecond), *par)
	}
}
