// Command fgmserve builds a graph database over a data graph and serves
// pattern queries over HTTP with bounded concurrency.
//
// Usage:
//
//	fgmserve -graph data.fgm -addr :8080
//	fgmserve -graph data.fgm -addr :8080 -max-inflight 16 -queue-timeout 50ms
//
// Endpoints:
//
//	POST /query   — {"pattern": "A->B; B->C", "algorithm": "dps", "timeout_ms": 500, "limit": 10}
//	POST /insert  — {"edges": [[4, 17], [4, 21]]}: incremental edge inserts
//	POST /delete  — {"edges": [[4, 17]]}: incremental edge deletes
//	GET  /stats   — metrics snapshot (queries, cache hits, rejections, latency quantiles, I/O)
//	GET  /healthz — liveness
//
// Overloaded requests are shed with 429 and a Retry-After header; requests
// past their deadline answer 504; queries killed by the -max-table-rows /
// -max-intermediate-bytes resource budgets answer 422; request bodies over
// -max-request-bytes answer 413; with -readonly every mutating endpoint
// answers 403. Inserts and deletes maintain the index in place (no
// rebuild) and are atomic with respect to concurrent queries.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fastmatch"
	"fastmatch/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fgmserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath    = flag.String("graph", "", "data graph file (text format; required)")
		addr         = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		pool         = flag.Int("pool", 0, "buffer pool bytes (default 1 MB)")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently executing queries (default 8)")
		queueTimeout = flag.Duration("queue-timeout", 0, "max wait for an execution slot before 429 (default 100ms)")
		planCache    = flag.Int("plancache", 0, "plan cache entries (default 256; -1 disables)")
		algo         = flag.String("algo", "dps", "default optimizer: dp, dps, or dps-merged")
		timeout      = flag.Duration("timeout", 0, "default per-query timeout (0 = none)")
		parallelism  = flag.Int("parallelism", 0, "intra-query operator workers (0 = GOMAXPROCS, 1 = serial)")
		maxTableRows = flag.Int("max-table-rows", 0, "per-query intermediate-table row budget (0 = unbounded; exceeding answers 422)")
		maxIMBytes   = flag.Int64("max-intermediate-bytes", 0, "per-query intermediate-result byte budget (0 = unbounded; exceeding answers 422)")
		maxReqBytes  = flag.Int64("max-request-bytes", 0, "max /query request body bytes (default 1 MB; larger answers 413)")
		buildPar     = flag.Int("build-parallelism", 0, "index-build workers (0/1 = serial, -1 = GOMAXPROCS)")
		reachIndex   = flag.String("reach-index", "", "reachability-index backend: "+strings.Join(fastmatch.ReachBackends(), ", ")+" (default twohop)")
		readonly     = flag.Bool("readonly", false, "reject every mutating endpoint (POST /insert, /delete) with 403; the graph stays immutable")
		noFastPath   = flag.Bool("no-fastpath", false, "disable tiered fast-path execution; every query runs the full operator pipeline")
	)
	flag.Parse()
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.ReadText(f)
	f.Close()
	if err != nil {
		return err
	}

	defaultAlgo := fastmatch.DPS
	switch *algo {
	case "dp":
		defaultAlgo = fastmatch.DP
	case "dps":
		defaultAlgo = fastmatch.DPS
	case "dps-merged", "dpsmerged":
		defaultAlgo = fastmatch.DPSMerged
	default:
		return fmt.Errorf("unknown -algo %q (want dp, dps, or dps-merged)", *algo)
	}

	build := time.Now()
	eng, err := fastmatch.NewEngine(g, fastmatch.Options{PoolBytes: *pool, BuildParallelism: *buildPar, ReachIndex: *reachIndex})
	if err != nil {
		return err
	}
	defer eng.Close()
	fmt.Printf("indexed %s in %v\n", eng.Stats(), time.Since(build).Round(time.Millisecond))

	svc := eng.Parallel(fastmatch.ServeConfig{
		MaxInFlight:          *maxInFlight,
		QueueTimeout:         *queueTimeout,
		PlanCacheSize:        *planCache,
		DefaultAlgorithm:     defaultAlgo,
		DefaultTimeout:       *timeout,
		QueryParallelism:     *parallelism,
		MaxTableRows:         *maxTableRows,
		MaxIntermediateBytes: *maxIMBytes,
		MaxRequestBytes:      *maxReqBytes,
		ReadOnly:             *readonly,
		NoFastPath:           *noFastPath,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The integration test parses this line to find the chosen port.
	fmt.Printf("listening on %s\n", ln.Addr())

	// -readonly is enforced inside the server's own mutating-route
	// registry (every writer endpoint is wired through one guard), not by
	// matching paths out here where a new route could be forgotten.
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("shutting down on %v\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
