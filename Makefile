GO ?= go

.PHONY: build test test-short test-cover test-fuzz-smoke test-race-stress verify bench bench-wcoj bench-fastpath bench-reach bench-baseline bench-compare clean

# Benchmarks covered by bench-baseline/bench-compare: the sorted-set
# kernels and the parallel operator suite — the hot paths a perf PR must
# not regress.
BENCH_PKGS   = ./internal/gdb ./internal/rjoin
BENCH_FILTER = 'BenchmarkIntersect|BenchmarkOperatorParallel'
BENCH_BASE   = bench-baseline.txt

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# test-fuzz-smoke runs each fuzz target's coverage-guided engine for a
# short budget ($(FUZZTIME) per target) on top of the seeded corpus, so
# the differential edge-insert harness and the 2-hop delta invariants get
# fresh random sequences on every verify run, not just the checked-in
# seeds. Bump FUZZTIME for a deeper soak (e.g. FUZZTIME=10m).
FUZZTIME ?= 30s
test-fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzEdgeInsertDifferential -fuzztime $(FUZZTIME) .
	$(GO) test -run XXX -fuzz FuzzEdgeDeleteDifferential -fuzztime $(FUZZTIME) .
	$(GO) test -run XXX -fuzz FuzzReachCrossBackend -fuzztime $(FUZZTIME) .
	$(GO) test -run XXX -fuzz FuzzFastPathDifferential -fuzztime $(FUZZTIME) .
	$(GO) test -run XXX -fuzz FuzzIncrementalInsert -fuzztime $(FUZZTIME) ./internal/reach
	$(GO) test -run XXX -fuzz FuzzIncrementalDelete -fuzztime $(FUZZTIME) ./internal/reach
	$(GO) test -run XXX -fuzz FuzzLeapfrogMultiwayIntersect -fuzztime $(FUZZTIME) ./internal/gdb

# test-cover enforces a per-package statement-coverage floor on the
# reachability-index packages: the generic labeling core and registry, and
# both backends. These packages carry the correctness story for every
# graph code the engine stores, so untested lines there are disallowed
# rather than discouraged.
COVER_FLOOR ?= 80
COVER_PKGS   = ./internal/reach ./internal/pll ./internal/twohop
test-cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover $$pkg); echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported" >&2; exit 1; fi; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f+0) }' || \
			{ echo "$$pkg: coverage $$pct% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }; \
	done

# test-race-stress repeats the MVCC snapshot-epoch stress tests under the
# race detector: concurrent insert batches against lock-free readers
# (prefix consistency, epoch retirement) and the stalled-writer
# no-reader-blocking probe. The full -race suite runs them once; the
# elevated count shakes out more interleavings.
test-race-stress:
	$(GO) test -race -count=3 -run 'TestConcurrentInsertQueryConsistency' .
	$(GO) test -race -count=3 -run 'TestInsertDoesNotBlockReaders|TestPinnedEpochOutlivesPublish|TestBatchPublishesOneEpoch' ./internal/gdb
	$(GO) test -race -count=3 -run 'TestConcurrentInsertAndQueryPrefixConsistency|TestConcurrentMutateAndQueryPrefixConsistency' ./internal/server
	$(GO) test -race -count=3 ./internal/epoch

# verify is the gating tier: vet plus the full suite under the race
# detector, so concurrency regressions in the query-serving path cannot
# land silently, then the coverage floor on the reachability packages, the
# MVCC stress smoke, and a fuzz smoke over the incremental-maintenance
# harnesses.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) test-cover
	$(MAKE) test-race-stress
	$(MAKE) test-fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/fgmbench -exp rjoin -out BENCH_rjoin.json
	$(GO) run ./cmd/fgmbench -exp build -out BENCH_build.json
	$(GO) run ./cmd/fgmbench -exp wcoj -out BENCH_wcoj.json
	$(GO) run ./cmd/fgmbench -exp fastpath -out BENCH_fastpath.json
	$(GO) run ./cmd/fgmbench -exp reach -out BENCH_reach.json

# bench-wcoj measures the worst-case-optimal multiway join against the
# binary pipeline on the cyclic workload battery and refreshes the
# committed BENCH_wcoj.json baseline.
bench-wcoj:
	$(GO) run ./cmd/fgmbench -exp wcoj -out BENCH_wcoj.json

# bench-fastpath measures the tiered execution router against the forced
# full pipeline on the fast-path battery and refreshes the committed
# BENCH_fastpath.json baseline.
bench-fastpath:
	$(GO) run ./cmd/fgmbench -exp fastpath -out BENCH_fastpath.json

# bench-reach compares the registered reachability-index backends (build
# time, labeling size, probe and query latency) and refreshes the
# committed BENCH_reach.json baseline.
bench-reach:
	$(GO) run ./cmd/fgmbench -exp reach -out BENCH_reach.json

# bench-baseline records the kernel benchmarks (10 runs, for benchstat
# confidence intervals) into $(BENCH_BASE); run it on the commit you want
# to compare against, then run bench-compare on your change.
bench-baseline:
	$(GO) test -run XXX -bench $(BENCH_FILTER) -benchmem -count 10 $(BENCH_PKGS) | tee $(BENCH_BASE)

# bench-compare reruns the same benchmarks and diffs them against the
# stored baseline with benchstat when it is installed (golang.org/x/perf);
# without benchstat it leaves both files for manual inspection. Each named
# BENCH_*.json guard runs only when its baseline is committed — a missing
# baseline skips that guard (with a note) instead of failing, so partial
# checkouts and fresh experiment IDs don't break the target.
bench-compare:
	@test -f $(BENCH_BASE) || { echo "no $(BENCH_BASE); run 'make bench-baseline' on the base commit first" >&2; exit 1; }
	$(GO) test -run XXX -bench $(BENCH_FILTER) -benchmem -count 10 $(BENCH_PKGS) | tee bench-head.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASE) bench-head.txt; \
	else \
		echo "benchstat not installed; compare $(BENCH_BASE) vs bench-head.txt by hand" >&2; \
	fi
	@for exp in wcoj fastpath reach; do \
		if [ -f BENCH_$$exp.json ]; then \
			$(GO) run ./cmd/fgmbench -exp $$exp -out bench-$$exp-head.json -compare BENCH_$$exp.json || exit 1; \
		else \
			echo "no BENCH_$$exp.json baseline; skipping $$exp guard (run 'make bench-$$exp' to record one)"; \
		fi; \
	done

clean:
	$(GO) clean ./...
