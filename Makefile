GO ?= go

.PHONY: build test test-short verify bench clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# verify is the gating tier: vet plus the full suite under the race
# detector, so concurrency regressions in the query-serving path cannot
# land silently.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
