package fastmatch_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// wcojRandomGraph builds a labeled random digraph for the differential
// battery (labels A..E, possibly cyclic).
func wcojRandomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nlabels; i++ {
		b.Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// wcojBattery is the connected pattern battery for the WCOJ differential:
// paths, trees, triangles, a diamond, and a 4-clique. Every pattern is
// connected, so the forced full-pattern WCOJ plan exists for each.
var wcojBattery = []string{
	"A->B",
	"A->B; B->C",
	"A->B; A->C",
	"A->C; B->C",
	"A->B; B->C; A->C",
	"A->B; B->C; C->A",
	"A->B; B->C; C->D; A->D",
	"A->B; A->C; B->D; C->D",
	"A->B; A->C; A->D; B->C; B->D; C->D",
	"A->C; B->C; C->D; D->E",
	"A->B; B->C; C->D; D->E; A->E; B->D",
}

// TestWCOJDifferential: on random graphs, the forced full-pattern WCOJ
// plan returns exactly the DP and DPS result sets for every battery
// pattern, and its own row order is identical at worker degrees 1 and 4
// (the determinism contract). Run under -race this also exercises the
// parallel enumeration for data races.
func TestWCOJDifferential(t *testing.T) {
	// Edge densities sit near the giant-SCC threshold (m ≈ n): dense
	// enough for non-trivial cycles and closure, sparse enough that the
	// 5-node battery patterns do not explode into millions of rows.
	for _, gc := range []struct {
		seed int64
		n, m int
	}{
		{41, 100, 130},
		{42, 140, 190},
		{43, 80, 120},
	} {
		totalRows := 0
		g := wcojRandomGraph(gc.seed, gc.n, gc.m, 5)
		db, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		ctx := context.Background()

		for _, ps := range wcojBattery {
			p := pattern.MustParse(ps)

			want, err := exec.Query(db, p, exec.DP)
			if err != nil {
				t.Fatalf("seed %d %q DP: %v", gc.seed, ps, err)
			}
			want.SortRows()
			totalRows += want.Len()
			dps, err := exec.Query(db, p, exec.DPS)
			if err != nil {
				t.Fatalf("seed %d %q DPS: %v", gc.seed, ps, err)
			}
			dps.SortRows()
			if !reflect.DeepEqual(want.Rows, dps.Rows) {
				t.Fatalf("seed %d %q: DP and DPS disagree (%d vs %d rows)",
					gc.seed, ps, want.Len(), dps.Len())
			}

			plan, err := exec.BuildPlan(db, p, exec.WCOJ)
			if err != nil {
				t.Fatalf("seed %d %q: WCOJ plan: %v", gc.seed, ps, err)
			}
			var prev [][]graph.NodeID
			for _, workers := range []int{1, 4} {
				res, err := exec.RunContextConfig(ctx, db, plan, exec.RunConfig{Workers: workers})
				if err != nil {
					t.Fatalf("seed %d %q workers=%d: %v", gc.seed, ps, workers, err)
				}
				if prev != nil && !reflect.DeepEqual(res.Rows, prev) {
					t.Fatalf("seed %d %q: WCOJ row order differs between worker degrees",
						gc.seed, ps)
				}
				prev = res.Rows

				// The WCOJ table's columns follow the variable order; remap
				// to pattern-node order before comparing result sets.
				cols := make([]int, p.NumNodes())
				for i := range cols {
					cols[i] = i
				}
				norm := rjoin.NewTable(cols...)
				for _, row := range res.Rows {
					nr := make([]graph.NodeID, len(row))
					for i, col := range res.Cols {
						nr[col] = row[i]
					}
					norm.Rows = append(norm.Rows, nr)
				}
				norm.SortRows()
				if !reflect.DeepEqual(norm.Rows, want.Rows) {
					t.Fatalf("seed %d %q workers=%d: WCOJ %d rows != DP %d rows",
						gc.seed, ps, workers, res.Len(), want.Len())
				}
			}
		}
		if totalRows == 0 {
			t.Fatalf("seed %d: whole battery empty — graph too sparse to prove anything", gc.seed)
		}
	}
}
