package fastmatch_test

import (
	"fmt"

	"fastmatch"
)

// Example builds a tiny supply graph and finds every (company, person,
// project) chain connected by reachability.
func Example() {
	b := fastmatch.NewGraphBuilder()
	acme := b.AddNode("company")
	dept := b.AddNode("dept")
	ana := b.AddNode("person")
	bob := b.AddNode("person")
	proj := b.AddNode("project")
	b.AddEdge(acme, dept)
	b.AddEdge(dept, ana)
	b.AddEdge(dept, bob)
	b.AddEdge(ana, proj)

	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	res, err := eng.Query("company->person; person->project")
	if err != nil {
		panic(err)
	}
	res.SortRows()
	for _, row := range res.Rows {
		fmt.Printf("company=%d person=%d project=%d\n", row[0], row[1], row[2])
	}
	// Output:
	// company=0 person=2 project=4
}

// ExampleEngine_Explain shows plan inspection: the DPS optimizer interleaves
// R-semijoins with the joins.
func ExampleEngine_Explain() {
	b := fastmatch.NewGraphBuilder()
	x := b.AddNode("A")
	y := b.AddNode("B")
	z := b.AddNode("C")
	b.AddEdge(x, y)
	b.AddEdge(y, z)
	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	p, err := fastmatch.ParsePattern("A->B; B->C")
	if err != nil {
		panic(err)
	}
	plan, err := eng.Explain(p, fastmatch.DP)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Algorithm, len(plan.Steps) > 0)
	// Output:
	// DP true
}

// ExampleReachabilityOracle answers reachability over a growing graph.
func ExampleReachabilityOracle() {
	b := fastmatch.NewGraphBuilder()
	u := b.AddNode("pkg")
	v := b.AddNode("pkg")
	w := b.AddNode("pkg")
	b.AddEdge(u, v)

	oracle := fastmatch.NewReachabilityOracle(b.Build())
	fmt.Println(oracle.Reaches(u, w))
	oracle.InsertEdge(v, w)
	fmt.Println(oracle.Reaches(u, w))
	// Output:
	// false
	// true
}

// ExampleParsePattern shows the pattern syntax.
func ExampleParsePattern() {
	p, err := fastmatch.ParsePattern("supplier->retailer; bank->supplier; bank->retailer")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.NumNodes(), p.NumEdges(), p.IsTree())
	// Output:
	// 3 3 false
}
