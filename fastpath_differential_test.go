package fastmatch_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// fastpathRandomGraph builds a labeled random digraph for the tiered-router
// differential (labels A..E, possibly cyclic), plus one isolated Z-labeled
// node: Z participates in no edge, so any pattern touching Z is provably
// empty and must route to the tier-2 prefilter.
func fastpathRandomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nlabels; i++ {
		b.Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	b.AddNode("Z")
	return b.Build()
}

// fastpathBattery spans the router's decision space: shapes the classifier
// admits to tier 1 (single edges, stars), shapes it must reject to tier 3
// (paths, cycles, cliques), and signature-refuted patterns for tier 2.
var fastpathBattery = []string{
	"A->B",
	"B->A",
	"A->B; A->C",
	"A->C; B->C",
	"A->B; A->C; A->D",
	"A->B; B->C",
	"A->B; B->C; C->A",
	"A->B; A->C; B->D; C->D",
	"A->Z",
	"Z->A; A->B",
}

// TestFastPathTierClassification pins the router's guarantees that do not
// depend on cost estimates: a single-edge pattern always classifies tier 1
// (every planner head shape for one edge is admitted), a pattern with a
// signature-refuted edge always short-circuits to tier 2, and a cyclic
// pattern — whose plans need a Selection or a multi-edge WCOJ core — always
// falls through to tier 3.
func TestFastPathTierClassification(t *testing.T) {
	g := fastpathRandomGraph(41, 100, 130, 5)
	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	snap, release := db.Pin()
	defer release()

	cases := []struct {
		text string
		tier int
	}{
		{"A->B", 1},
		{"B->A", 1},
		{"A->Z", 2},
		{"Z->A; A->B", 2},
		{"A->B; B->C; C->A", 3},
	}
	for _, algo := range []exec.Algorithm{exec.DP, exec.DPS, exec.DPSMerged, exec.WCOJ} {
		for _, c := range cases {
			plan, err := exec.BuildPlanSnapConfig(snap, pattern.MustParse(c.text), algo, exec.PlanConfig{})
			if err != nil {
				t.Fatalf("%v %q: %v", algo, c.text, err)
			}
			if plan.Tier() != c.tier {
				t.Errorf("%v %q: tier %d, want %d", algo, c.text, plan.Tier(), c.tier)
			}
			forced, err := exec.BuildPlanSnapConfig(snap, pattern.MustParse(c.text), algo, exec.PlanConfig{NoFastPath: true})
			if err != nil {
				t.Fatalf("%v %q forced: %v", algo, c.text, err)
			}
			if forced.Tier() != 3 {
				t.Errorf("%v %q: NoFastPath plan routed to tier %d", algo, c.text, forced.Tier())
			}
		}
	}
}

// TestFastPathDifferential is the tiered router's result-identical proof on
// random graphs: for every battery pattern, every planner, and worker
// degrees 1 and 4, the tier-routed execution must return exactly the rows of
// the forced tier-3 pipeline in exactly its order. Run under -race this also
// exercises the fast-path epoch memos against the parallel reference
// pipeline's readers.
func TestFastPathDifferential(t *testing.T) {
	ctx := context.Background()
	for _, gc := range []struct {
		seed int64
		n, m int
	}{
		{41, 100, 130},
		{42, 140, 190},
		{43, 80, 120},
	} {
		g := fastpathRandomGraph(gc.seed, gc.n, gc.m, 5)
		db, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		snap, release := db.Pin()
		defer release()

		totalRows, tier1Seen := 0, false
		for _, ps := range fastpathBattery {
			p := pattern.MustParse(ps)
			for _, algo := range []exec.Algorithm{exec.DP, exec.DPS, exec.DPSMerged, exec.WCOJ} {
				tiered, err := exec.BuildPlanSnapConfig(snap, p, algo, exec.PlanConfig{})
				if err != nil {
					t.Fatalf("seed %d %q %v: %v", gc.seed, ps, algo, err)
				}
				got, err := exec.RunSnapConfig(ctx, snap, tiered, exec.RunConfig{})
				if err != nil {
					t.Fatalf("seed %d %q %v tiered: %v", gc.seed, ps, algo, err)
				}
				totalRows += got.Len()
				if tiered.Tier() == 1 {
					tier1Seen = true
				}
				forcedPlan, err := exec.BuildPlanSnapConfig(snap, p, algo, exec.PlanConfig{NoFastPath: true})
				if err != nil {
					t.Fatalf("seed %d %q %v forced plan: %v", gc.seed, ps, algo, err)
				}
				for _, workers := range []int{1, 4} {
					want, err := exec.RunSnapConfig(ctx, snap, forcedPlan, exec.RunConfig{Workers: workers})
					if err != nil {
						t.Fatalf("seed %d %q %v workers=%d forced: %v", gc.seed, ps, algo, workers, err)
					}
					if !reflect.DeepEqual(got.Cols, want.Cols) {
						t.Fatalf("seed %d %q %v workers=%d: cols %v vs %v",
							gc.seed, ps, algo, workers, got.Cols, want.Cols)
					}
					if !reflect.DeepEqual(got.Rows, want.Rows) {
						t.Fatalf("seed %d %q %v workers=%d: tier-%d result (%d rows) differs from forced tier-3 (%d rows)",
							gc.seed, ps, algo, workers, tiered.Tier(), got.Len(), want.Len())
					}
				}
			}
		}
		if totalRows == 0 {
			t.Fatalf("seed %d: whole battery empty — graph too sparse to prove anything", gc.seed)
		}
		if !tier1Seen {
			t.Fatalf("seed %d: no battery pattern classified tier 1", gc.seed)
		}
	}
}

// TestFastPathBudgetIdentity: the budget and limit semantics on tier-1
// answers are those of the forced pipeline at one worker — same truncation
// prefix, same Truncated flag, same typed kills, same byte accounting.
func TestFastPathBudgetIdentity(t *testing.T) {
	ctx := context.Background()
	g := fastpathRandomGraph(42, 140, 190, 5)
	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	snap, release := db.Pin()
	defer release()

	for _, ps := range []string{"A->B", "A->B; A->C"} {
		p := pattern.MustParse(ps)
		tiered, err := exec.BuildPlanSnapConfig(snap, p, exec.DPS, exec.PlanConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if tiered.Tier() != 1 {
			t.Fatalf("%q: tier %d, want 1 (battery assumption)", ps, tiered.Tier())
		}
		forced, err := exec.BuildPlanSnapConfig(snap, p, exec.DPS, exec.PlanConfig{NoFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		full, err := exec.RunSnapConfig(ctx, snap, forced, exec.RunConfig{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if full.Len() < 3 {
			t.Fatalf("%q: only %d rows — graph too sparse for truncation sweeps", ps, full.Len())
		}

		// Result-row limits: identical prefixes and Truncated flags.
		for _, limit := range []int{1, 2, full.Len() - 1, full.Len(), full.Len() + 10} {
			bt := &rjoin.Budget{ResultRows: limit}
			bf := &rjoin.Budget{ResultRows: limit}
			got, err := exec.RunSnapConfig(ctx, snap, tiered, exec.RunConfig{Budget: bt})
			if err != nil {
				t.Fatalf("%q limit=%d tiered: %v", ps, limit, err)
			}
			want, err := exec.RunSnapConfig(ctx, snap, forced, exec.RunConfig{Workers: 1, Budget: bf})
			if err != nil {
				t.Fatalf("%q limit=%d forced: %v", ps, limit, err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("%q limit=%d: tiered prefix (%d rows) differs from forced (%d rows)",
					ps, limit, got.Len(), want.Len())
			}
			if bt.Truncated() != bf.Truncated() {
				t.Fatalf("%q limit=%d: Truncated %v vs forced %v", ps, limit, bt.Truncated(), bf.Truncated())
			}
			if wantTrunc := full.Len() > limit; bt.Truncated() != wantTrunc {
				t.Fatalf("%q limit=%d: Truncated=%v, want %v", ps, limit, bt.Truncated(), wantTrunc)
			}
		}

		// Typed kills: both modes must fail with the same sentinel.
		for _, tc := range []struct {
			name   string
			budget func() *rjoin.Budget
			want   error
		}{
			{"rows", func() *rjoin.Budget { return &rjoin.Budget{MaxTableRows: 2} }, rjoin.ErrRowLimit},
			{"bytes", func() *rjoin.Budget { return &rjoin.Budget{MaxBytes: 16} }, rjoin.ErrBudgetExceeded},
		} {
			if _, err := exec.RunSnapConfig(ctx, snap, tiered, exec.RunConfig{Budget: tc.budget()}); !errors.Is(err, tc.want) {
				t.Fatalf("%q %s tiered: got %v, want %v", ps, tc.name, err, tc.want)
			}
			if _, err := exec.RunSnapConfig(ctx, snap, forced, exec.RunConfig{Workers: 1, Budget: tc.budget()}); !errors.Is(err, tc.want) {
				t.Fatalf("%q %s forced: got %v, want %v", ps, tc.name, err, tc.want)
			}
		}

		// Unconstrained accounting: the fast path charges exactly what the
		// serial pipeline charges (the skipped spill was never
		// budget-charged), so the counters agree too.
		bt, bf := &rjoin.Budget{}, &rjoin.Budget{}
		if _, err := exec.RunSnapConfig(ctx, snap, tiered, exec.RunConfig{Budget: bt}); err != nil {
			t.Fatal(err)
		}
		if _, err := exec.RunSnapConfig(ctx, snap, forced, exec.RunConfig{Workers: 1, Budget: bf}); err != nil {
			t.Fatal(err)
		}
		if bt.Bytes() != bf.Bytes() || bt.PeakRows() != bf.PeakRows() {
			t.Fatalf("%q: tiered accounting (bytes=%d peak=%d) differs from forced (bytes=%d peak=%d)",
				ps, bt.Bytes(), bt.PeakRows(), bf.Bytes(), bf.PeakRows())
		}
	}
}

// FuzzFastPathDifferential lets the fuzzer choose the graph and the pattern:
// whatever the topology, the tier-routed result must match the forced
// tier-3 pipeline row for row, in order, for every planner.
func FuzzFastPathDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(120))
	f.Add(int64(7), uint8(3), uint8(200))
	f.Add(int64(42), uint8(8), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, pick uint8, density uint8) {
		ps := fastpathBattery[int(pick)%len(fastpathBattery)]
		p := pattern.MustParse(ps)
		n := 60
		m := 20 + int(density)%121 // 20..140 edges
		g := fastpathRandomGraph(seed, n, m, 5)
		db, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		snap, release := db.Pin()
		defer release()
		ctx := context.Background()
		for _, algo := range []exec.Algorithm{exec.DP, exec.DPS, exec.WCOJ} {
			tiered, err := exec.BuildPlanSnapConfig(snap, p, algo, exec.PlanConfig{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := exec.RunSnapConfig(ctx, snap, tiered, exec.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			forced, err := exec.BuildPlanSnapConfig(snap, p, algo, exec.PlanConfig{NoFastPath: true})
			if err != nil {
				t.Fatal(err)
			}
			want, err := exec.RunSnapConfig(ctx, snap, forced, exec.RunConfig{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("%q %v: tier-%d result (%d rows) differs from forced tier-3 (%d rows)",
					ps, algo, tiered.Tier(), got.Len(), want.Len())
			}
		}
	})
}
