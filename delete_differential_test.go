package fastmatch_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"fastmatch"
	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/workload"
	"fastmatch/internal/xmark"
)

// The deletion half of the differential harness: an incrementally
// maintained database fed a mixed insert/delete stream must stay
// query-equivalent to a from-scratch rebuild over the same mutated graph —
// DP, DPS, and WCOJ at worker degrees 1 and 4, plus sampled reachability —
// at every checkpoint. This is the correctness story for the over-delete/
// re-insert repair path (2-hop removal deltas → base tables → cluster
// index → W-table retraction); see DESIGN.md.

// pickPresentEdge returns a uniformly-ish random present edge of g, or
// ok=false when g has none.
func pickPresentEdge(g *graph.Graph, rng *rand.Rand) (u, v graph.NodeID, ok bool) {
	n := g.NumNodes()
	for tries := 0; tries < 4*n; tries++ {
		c := graph.NodeID(rng.Intn(n))
		if succ := g.Successors(c); len(succ) > 0 {
			return c, succ[rng.Intn(len(succ))], true
		}
	}
	return 0, 0, false
}

// TestDifferentialMixedStreamMatchesRebuild is the deterministic seeded
// run: ≥200 mixed edge inserts and deletes on an XMark-derived graph,
// differentially tested against from-scratch rebuilds at four checkpoints.
func TestDifferentialMixedStreamMatchesRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, backend := range reach.Names() {
		t.Run(backend, func(t *testing.T) {
			d := xmark.Generate(xmark.Config{Nodes: 2500, Seed: 17})
			g := d.Graph
			inc, err := gdb.Build(g, gdb.Options{ReachIndex: backend})
			if err != nil {
				t.Fatal(err)
			}
			defer inc.Close()

			rng := rand.New(rand.NewSource(103))
			cur := g
			n := g.NumNodes()
			deletes := 0
			const ops = 240
			for i := 1; i <= ops; i++ {
				if rng.Intn(3) == 0 { // ~1/3 deletes keeps the graph from draining
					u, v, ok := pickPresentEdge(cur, rng)
					if !ok {
						t.Fatalf("op %d: graph ran out of edges", i)
					}
					st, err := inc.ApplyEdgeDelete(u, v)
					if err != nil {
						t.Fatalf("op %d delete %d->%d: %v", i, u, v, err)
					}
					if st.Missing {
						t.Fatalf("op %d: delete of present edge %d->%d reported Missing", i, u, v)
					}
					cur = cur.WithoutEdge(u, v)
					deletes++
				} else {
					u := graph.NodeID(rng.Intn(n))
					v := graph.NodeID(rng.Intn(n))
					st, err := inc.ApplyEdgeInsert(u, v)
					if err != nil {
						t.Fatalf("op %d insert %d->%d: %v", i, u, v, err)
					}
					if !st.Duplicate {
						cur = cur.WithEdge(u, v)
					}
				}
				if i%60 == 0 {
					compareDatabases(t, inc, cur, rng, "mixed checkpoint")
				}
			}
			if deletes < 40 {
				t.Fatalf("stream held only %d deletes; not a meaningful mixed workload", deletes)
			}
		})
	}
}

// TestEngineDeleteEdge drives the public API end to end: DeleteEdge shrinks
// query results, reports absent edges as no-ops, and classifies bad
// endpoints.
func TestEngineDeleteEdge(t *testing.T) {
	b := fastmatch.NewGraphBuilder()
	var as, bs []fastmatch.NodeID
	for i := 0; i < 4; i++ {
		as = append(as, b.AddNode("A"))
	}
	for i := 0; i < 4; i++ {
		bs = append(bs, b.AddNode("B"))
	}
	b.AddEdge(as[0], bs[0])
	b.AddEdge(as[1], bs[1])
	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Query("A->B")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("seed query: %d rows, want 2", len(res.Rows))
	}
	st, err := eng.DeleteEdge(as[0], bs[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Missing || st.RemovedLabelEntries == 0 {
		t.Fatalf("delete stats %+v", st)
	}
	if ok, err := eng.Reaches(as[0], bs[0]); err != nil || ok {
		t.Fatalf("Reaches after delete = %v, %v", ok, err)
	}
	res, err = eng.Query("A->B")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("post-delete query: %d rows, want 1", len(res.Rows))
	}
	// Deleting again is a no-op, not an error.
	if st, err := eng.DeleteEdge(as[0], bs[0]); err != nil || !st.Missing {
		t.Fatalf("repeat delete: %+v, %v", st, err)
	}
	if _, err := eng.DeleteEdge(0, 1000); !errors.Is(err, fastmatch.ErrBadDelete) {
		t.Fatalf("bad endpoint: err = %v, want ErrBadDelete", err)
	}
	// Delete + reinsert restores the original result set.
	if _, err := eng.InsertEdge(as[0], bs[0]); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Query("A->B")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-reinsert query: %d rows, want 2", len(res.Rows))
	}
	if err := eng.Sync(); err != nil { // in-memory: no-op
		t.Fatal(err)
	}
}

// FuzzEdgeDeleteDifferential lets the fuzzer choose a mixed insert/delete
// sequence on a small XMark graph: whatever the sequence — including
// deletes of absent edges and delete/reinsert churn — the incrementally
// maintained database must agree with a from-scratch rebuild on a pattern
// query at worker degrees 1 and 4 and on sampled reachability.
func FuzzEdgeDeleteDifferential(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x01, 0x02, 0x81, 0x01, 0x02})
	f.Add(int64(7), []byte{0xff, 0xee, 0x10, 0x20, 0x30, 0x40, 0x95, 0x66, 0x04})
	f.Add(int64(42), []byte{0x80, 0x00, 0x01, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) < 3 || len(data) > 60 {
			t.Skip()
		}
		d := xmark.Generate(xmark.Config{Nodes: 100, Seed: seed % 8})
		g := d.Graph
		n := g.NumNodes()
		for _, backend := range reach.Names() {
			inc, err := gdb.Build(g, gdb.Options{ReachIndex: backend})
			if err != nil {
				t.Fatal(err)
			}
			cur := g
			hasEdge := func(u, v graph.NodeID) bool {
				for _, w := range cur.Successors(u) {
					if w == v {
						return true
					}
				}
				return false
			}
			for i := 0; i+2 < len(data); i += 3 {
				del := data[i]&0x80 != 0
				u := graph.NodeID(int(data[i+1]) % n)
				v := graph.NodeID(int(data[i+2]) % n)
				if del {
					st, err := inc.ApplyEdgeDelete(u, v)
					if err != nil {
						t.Fatalf("%s: delete %d->%d: %v", backend, u, v, err)
					}
					if st.Missing != !hasEdge(u, v) {
						t.Fatalf("%s: delete %d->%d: Missing=%v but edge present=%v",
							backend, u, v, st.Missing, hasEdge(u, v))
					}
					if !st.Missing {
						cur = cur.WithoutEdge(u, v)
					}
				} else {
					st, err := inc.ApplyEdgeInsert(u, v)
					if err != nil {
						t.Fatalf("%s: insert %d->%d: %v", backend, u, v, err)
					}
					if !st.Duplicate {
						cur = cur.WithEdge(u, v)
					}
				}
			}
			rebuilt, err := gdb.Build(cur, gdb.Options{ReachIndex: backend})
			if err != nil {
				t.Fatal(err)
			}
			p := workload.Paths()[0].Pattern // site->regions; regions->item
			for _, workers := range []int{1, 4} {
				got := sortedRows(t, inc, p, exec.DPS, workers)
				want := sortedRows(t, rebuilt, p, exec.DPS, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: workers=%d: incremental %d rows, rebuild %d rows",
						backend, workers, len(got), len(want))
				}
			}
			rng := rand.New(rand.NewSource(int64(len(data))))
			for i := 0; i < 60; i++ {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				gi, err := inc.Reaches(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if want := graph.Reaches(cur, u, v); gi != want {
					t.Fatalf("%s: Reaches(%d,%d) = %v, BFS says %v", backend, u, v, gi, want)
				}
			}
			rebuilt.Close()
			inc.Close()
		}
	})
}
