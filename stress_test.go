package fastmatch_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fastmatch"
)

// TestConcurrentInsertQueryConsistency runs a writer growing a reachability
// chain against readers issuing Reaches probes and pattern queries, with no
// synchronisation between them beyond a published watermark. It checks the
// MVCC prefix-consistency contract: a reader that starts after the writer
// confirmed k chain edges must observe all k of them (epochs are published
// atomically, in insert order), and per-reader query results never shrink
// (epochs only move forward). Run with -race to also prove the read path is
// data-race free against concurrent copy-on-write inserts.
func TestConcurrentInsertQueryConsistency(t *testing.T) {
	const chainLen = 48 // nodes in the growing chain

	b := fastmatch.NewGraphBuilder()
	chain := make([]fastmatch.NodeID, chainLen)
	for i := range chain {
		if i%2 == 0 {
			chain[i] = b.AddNode("A")
		} else {
			chain[i] = b.AddNode("B")
		}
	}
	// One seed edge so every label pair has a match before the writer starts.
	seedA, seedB := b.AddNode("A"), b.AddNode("B")
	b.AddEdge(seedA, seedB)

	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// watermark holds how many chain edges the writer has published:
	// after watermark = w, edges chain[0]→chain[1] … chain[w-1]→chain[w]
	// are all visible to any snapshot pinned from now on.
	var watermark atomic.Int64
	var writerDone atomic.Bool
	errc := make(chan error, 8)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		const batch = 3
		for lo := 0; lo < chainLen-1; lo += batch {
			var edges [][2]fastmatch.NodeID
			for i := lo; i < lo+batch && i < chainLen-1; i++ {
				edges = append(edges, [2]fastmatch.NodeID{chain[i], chain[i+1]})
			}
			if _, err := eng.InsertEdges(edges); err != nil {
				errc <- fmt.Errorf("insert batch at %d: %w", lo, err)
				return
			}
			watermark.Store(int64(lo + len(edges)))
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastRows := -1
			for {
				done := writerDone.Load()
				// Load the watermark BEFORE pinning (via the query/Reaches
				// call): the snapshot we then read is at least as new as
				// the w published edges, so all of them must be visible.
				w := int(watermark.Load())
				if w > 0 {
					ok, err := eng.Reaches(chain[0], chain[w])
					if err != nil {
						errc <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
					if !ok {
						errc <- fmt.Errorf("reader %d: chain[0] does not reach chain[%d] after watermark %d", r, w, w)
						return
					}
				}
				res, err := eng.Query("A->B")
				if err != nil {
					errc <- fmt.Errorf("reader %d query: %w", r, err)
					return
				}
				if res.Len() < lastRows {
					errc <- fmt.Errorf("reader %d: result shrank from %d to %d rows", r, lastRows, res.Len())
					return
				}
				lastRows = res.Len()
				if done {
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Idle again: only the manager's base pin of the current epoch remains,
	// and every superseded snapshot has been retired.
	st := eng.EpochStats()
	if st.Pinned != 1 {
		t.Fatalf("pinned epochs when idle = %d, want 1", st.Pinned)
	}
	if st.Current == 0 {
		t.Fatal("no epoch was ever published")
	}
	if st.Retired != st.Current {
		t.Fatalf("retired = %d, want %d (every superseded epoch reclaimed)", st.Retired, st.Current)
	}

	// The final graph holds the whole chain.
	ok, err := eng.Reaches(chain[0], chain[chainLen-1])
	if err != nil || !ok {
		t.Fatalf("full chain reachability: ok=%v err=%v", ok, err)
	}
}
