package fastmatch_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"fastmatch"
	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/reach"
	"fastmatch/internal/rjoin"
	"fastmatch/internal/workload"
	"fastmatch/internal/xmark"
)

// The differential harness: an incrementally maintained database
// (ApplyEdgeInsert per edge) must be query-equivalent to a database built
// from scratch over the same mutated graph — identical DP and DPS result
// rows on the paper's pattern workloads at worker degrees 1 and 4, and
// identical Reaches answers on sampled node pairs. This is the correctness
// story for the whole incremental-maintenance path (label deltas → base
// tables → cluster index → W-table); see DESIGN.md. The whole harness is
// parameterized over every registered reachability backend: the engine
// consumes any labeling through the same delta stream, so each backend
// must survive the identical battery.

// diffWorkloads is the pattern battery both databases answer.
func diffWorkloads() []workload.Workload {
	var ws []workload.Workload
	ws = append(ws, workload.Paths()[:6]...)
	ws = append(ws, workload.Trees()[:3]...)
	ws = append(ws, workload.Graphs5B()[:2]...)
	return ws
}

// sortedRows plans and runs p at the given worker degree, returning
// canonically sorted rows.
func sortedRows(t testing.TB, db *gdb.DB, p *pattern.Pattern, algo exec.Algorithm, workers int) [][]graph.NodeID {
	t.Helper()
	plan, err := exec.BuildPlan(db, p, algo)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	tab, err := exec.RunContextConfig(context.Background(), db, plan, exec.RunConfig{Workers: workers})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tab.SortRows()
	return tab.Rows
}

// sortedRowsNormalized runs p like sortedRows but first remaps the result
// columns to pattern-node order. WCOJ tables follow the plan's variable
// order, which may differ between two databases whose statistics diverged
// (the incremental cover is not the from-scratch cover), so raw rows are
// not directly comparable.
func sortedRowsNormalized(t testing.TB, db *gdb.DB, p *pattern.Pattern, algo exec.Algorithm, workers int) [][]graph.NodeID {
	t.Helper()
	plan, err := exec.BuildPlan(db, p, algo)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	res, err := exec.RunContextConfig(context.Background(), db, plan, exec.RunConfig{Workers: workers})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	cols := make([]int, p.NumNodes())
	for i := range cols {
		cols[i] = i
	}
	norm := rjoin.NewTable(cols...)
	for _, row := range res.Rows {
		nr := make([]graph.NodeID, len(row))
		for i, col := range res.Cols {
			nr[col] = row[i]
		}
		norm.Rows = append(norm.Rows, nr)
	}
	norm.SortRows()
	return norm.Rows
}

// compareDatabases asserts inc (incrementally maintained) and a fresh
// rebuild over g — with the same reachability backend — agree on the full
// battery: DP, DPS, and the forced full-pattern WCOJ plan, each at worker
// degrees 1 and 4, plus sampled reachability.
func compareDatabases(t *testing.T, inc *gdb.DB, g *graph.Graph, rng *rand.Rand, tag string) {
	t.Helper()
	rebuilt, err := gdb.Build(g, gdb.Options{ReachIndex: inc.ReachBackend()})
	if err != nil {
		t.Fatalf("%s: rebuild: %v", tag, err)
	}
	defer rebuilt.Close()

	for _, w := range diffWorkloads() {
		for _, algo := range []exec.Algorithm{exec.DP, exec.DPS} {
			for _, workers := range []int{1, 4} {
				got := sortedRows(t, inc, w.Pattern, algo, workers)
				want := sortedRows(t, rebuilt, w.Pattern, algo, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: %s %s workers=%d: incremental %d rows, rebuild %d rows",
						tag, w.Name, algo, workers, len(got), len(want))
				}
			}
		}
		// Every battery pattern is connected, so the forced WCOJ plan
		// exists; its column order depends on per-database statistics, so
		// compare in normalized pattern-node order.
		for _, workers := range []int{1, 4} {
			got := sortedRowsNormalized(t, inc, w.Pattern, exec.WCOJ, workers)
			want := sortedRowsNormalized(t, rebuilt, w.Pattern, exec.WCOJ, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: %s wcoj workers=%d: incremental %d rows, rebuild %d rows",
					tag, w.Name, workers, len(got), len(want))
			}
		}
	}

	// The incrementally maintained fan-signature table must equal a
	// from-scratch recomputation over its own epoch's cluster index: dead
	// centers dropped, zeroed pairs deleted, fan masses exact. (The
	// rebuilt database's table is NOT a valid oracle — the signature
	// summarizes the index structure, and an incrementally repaired 2-hop
	// cover legitimately differs from a fresh one in redundant-but-sound
	// entries.) Both databases are held to the same invariant.
	for _, c := range []struct {
		name string
		db   *gdb.DB
	}{{"incremental", inc}, {"rebuilt", rebuilt}} {
		snap, release := c.db.Pin()
		sig := snap.Signature()
		if sig == nil {
			release()
			t.Fatalf("%s: %s snapshot lost its fan signature", tag, c.name)
		}
		oracle, err := snap.ComputeSignature()
		if err != nil {
			release()
			t.Fatalf("%s: %s ComputeSignature: %v", tag, c.name, err)
		}
		release()
		if !sig.Equal(oracle) {
			t.Fatalf("%s: %s maintained signature (%d pairs) != recomputed (%d pairs)",
				tag, c.name, sig.NumPairs(), oracle.NumPairs())
		}
	}

	n := g.NumNodes()
	for i := 0; i < 200; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		gi, err := inc.Reaches(u, v)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := rebuilt.Reaches(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if gi != gr || gi != graph.Reaches(g, u, v) {
			t.Fatalf("%s: Reaches(%d,%d): incremental %v, rebuild %v, BFS %v",
				tag, u, v, gi, gr, graph.Reaches(g, u, v))
		}
	}
}

// TestDifferentialEdgeInsertsMatchRebuild is the deterministic seeded run:
// ≥200 random edge inserts on an XMark-derived graph, differentially
// tested against from-scratch rebuilds at four checkpoints.
func TestDifferentialEdgeInsertsMatchRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, backend := range reach.Names() {
		t.Run(backend, func(t *testing.T) {
			d := xmark.Generate(xmark.Config{Nodes: 2500, Seed: 11})
			g := d.Graph
			inc, err := gdb.Build(g, gdb.Options{ReachIndex: backend})
			if err != nil {
				t.Fatal(err)
			}
			defer inc.Close()

			rng := rand.New(rand.NewSource(101))
			cur := g
			n := g.NumNodes()
			const inserts = 220
			for i := 1; i <= inserts; i++ {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				st, err := inc.ApplyEdgeInsert(u, v)
				if err != nil {
					t.Fatalf("insert %d (%d->%d): %v", i, u, v, err)
				}
				if !st.Duplicate {
					cur = cur.WithEdge(u, v)
				}
				if i%55 == 0 {
					compareDatabases(t, inc, cur, rng, "checkpoint")
				}
			}
		})
	}
}

// TestEngineInsertEdge drives the public API end to end: InsertEdge grows
// query results, reports duplicates, and classifies bad endpoints.
func TestEngineInsertEdge(t *testing.T) {
	b := fastmatch.NewGraphBuilder()
	var as, bs []fastmatch.NodeID
	for i := 0; i < 4; i++ {
		as = append(as, b.AddNode("A"))
	}
	for i := 0; i < 4; i++ {
		bs = append(bs, b.AddNode("B"))
	}
	b.AddEdge(as[0], bs[0])
	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Query("A->B")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("seed query: %d rows, want 1", len(res.Rows))
	}
	st, err := eng.InsertEdge(as[1], bs[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicate || st.LabelEntries == 0 {
		t.Fatalf("insert stats %+v", st)
	}
	if ok, err := eng.Reaches(as[1], bs[1]); err != nil || !ok {
		t.Fatalf("Reaches after insert = %v, %v", ok, err)
	}
	res, err = eng.Query("A->B")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-insert query: %d rows, want 2", len(res.Rows))
	}
	if st, err := eng.InsertEdge(as[1], bs[1]); err != nil || !st.Duplicate {
		t.Fatalf("duplicate insert: %+v, %v", st, err)
	}
	if _, err := eng.InsertEdge(0, 1000); !errors.Is(err, fastmatch.ErrBadInsert) {
		t.Fatalf("bad endpoint: err = %v, want ErrBadInsert", err)
	}
	if err := eng.Sync(); err != nil { // in-memory: no-op
		t.Fatal(err)
	}
}

// FuzzEdgeInsertDifferential lets the fuzzer choose the insert sequence on
// a small XMark graph: whatever the sequence, the incrementally maintained
// database must agree with a from-scratch rebuild on a pattern query and
// on sampled reachability.
func FuzzEdgeInsertDifferential(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x02, 0x03, 0x04})
	f.Add(int64(7), []byte{0xff, 0xee, 0x10, 0x20, 0x30, 0x40, 0x55, 0x66})
	f.Add(int64(42), []byte{0x00, 0x00, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) < 2 || len(data) > 40 {
			t.Skip()
		}
		d := xmark.Generate(xmark.Config{Nodes: 100, Seed: seed % 8})
		g := d.Graph
		n := g.NumNodes()
		for _, backend := range reach.Names() {
			inc, err := gdb.Build(g, gdb.Options{ReachIndex: backend})
			if err != nil {
				t.Fatal(err)
			}
			cur := g
			for i := 0; i+1 < len(data); i += 2 {
				u := graph.NodeID(int(data[i]) % n)
				v := graph.NodeID(int(data[i+1]) % n)
				st, err := inc.ApplyEdgeInsert(u, v)
				if err != nil {
					t.Fatalf("%s: insert %d->%d: %v", backend, u, v, err)
				}
				if !st.Duplicate {
					cur = cur.WithEdge(u, v)
				}
			}
			rebuilt, err := gdb.Build(cur, gdb.Options{ReachIndex: backend})
			if err != nil {
				t.Fatal(err)
			}
			p := workload.Paths()[0].Pattern // site->regions; regions->item
			for _, workers := range []int{1, 4} {
				got := sortedRows(t, inc, p, exec.DPS, workers)
				want := sortedRows(t, rebuilt, p, exec.DPS, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: workers=%d: incremental %d rows, rebuild %d rows",
						backend, workers, len(got), len(want))
				}
			}
			rng := rand.New(rand.NewSource(int64(len(data))))
			for i := 0; i < 60; i++ {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				gi, err := inc.Reaches(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if want := graph.Reaches(cur, u, v); gi != want {
					t.Fatalf("%s: Reaches(%d,%d) = %v, BFS says %v", backend, u, v, gi, want)
				}
			}
			rebuilt.Close()
			inc.Close()
		}
	})
}
