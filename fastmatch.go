// Package fastmatch is a graph pattern matching engine for large directed
// node-labeled graphs, implementing Cheng, Yu, Ding, Yu and Wang, "Fast
// Graph Pattern Matching" (ICDE 2008).
//
// Given a data graph and a pattern — a small directed graph whose nodes are
// labels and whose edges are reachability conditions X→Y — the engine finds
// every tuple of data nodes matching all conditions. Internally it builds a
// 2-hop reachability cover, stores per-label base tables with graph codes
// in a paged storage engine, and answers patterns as sequences of R-joins
// and R-semijoins over a cluster-based R-join index, ordered by a dynamic
// programming optimizer (the paper's DP and DPS algorithms).
//
// Quick start:
//
//	b := fastmatch.NewGraphBuilder()
//	alice := b.AddNode("person")
//	paper := b.AddNode("paper")
//	b.AddEdge(alice, paper)
//	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
//	defer eng.Close()
//	res, err := eng.Query("person->paper")
//	for _, row := range res.Rows { ... }
//
// See the examples directory for complete programs and DESIGN.md for the
// paper-to-code map.
package fastmatch

import (
	"context"
	"fmt"
	"net/http"

	"fastmatch/internal/epoch"
	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/pattern"
	"fastmatch/internal/reach"
	"fastmatch/internal/rjoin"
	"fastmatch/internal/server"
	"fastmatch/internal/storage"
)

// ErrClosed is returned by Engine and Service methods called after Close.
var ErrClosed = gdb.ErrClosed

// ErrOverloaded is returned (wrapped in a *server.OverloadError) when a
// Service sheds a query under admission control; match with errors.Is.
var ErrOverloaded = server.ErrOverloaded

// ErrRowLimit and ErrBudgetExceeded are the typed resource-governor
// failures: a query exceeded its Budget's intermediate-row or byte
// allowance and was killed mid-execution. Match with errors.Is.
var (
	ErrRowLimit       = rjoin.ErrRowLimit
	ErrBudgetExceeded = rjoin.ErrBudgetExceeded
)

// Budget is a per-query resource governor: a result-row limit (pushed
// into plan execution, so rows past it are never materialised) and hard
// caps on intermediate table rows and bytes that kill a runaway query
// with ErrRowLimit / ErrBudgetExceeded. The zero value imposes no
// bounds. A Budget is single-use: it also accumulates the query's
// accounting (Bytes, PeakRows, Truncated), so pass a fresh one per query.
type Budget = rjoin.Budget

// NodeID identifies a node of a data graph.
type NodeID = graph.NodeID

// Label identifies a node label.
type Label = graph.Label

// Graph is an immutable directed node-labeled data graph.
type Graph = graph.Graph

// GraphBuilder incrementally constructs a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// Pattern is a parsed graph pattern: nodes are labels, edges are
// reachability conditions.
type Pattern = pattern.Pattern

// ParsePattern parses the pattern syntax "A->B; B->C; ...".
func ParsePattern(s string) (*Pattern, error) { return pattern.Parse(s) }

// MustPattern is ParsePattern that panics on error, for fixed patterns.
func MustPattern(s string) *Pattern { return pattern.MustParse(s) }

// Result is a query result: Cols holds pattern-node indexes (in pattern
// order) and Rows the matching data-node tuples.
type Result = rjoin.Table

// Plan is an optimized execution plan (inspect via its String method).
type Plan = optimizer.Plan

// Algorithm selects the plan-selection strategy.
type Algorithm = exec.Algorithm

const (
	// DP optimizes R-join order only (the paper's Section 4.1).
	DP = exec.DP
	// DPS interleaves R-joins with R-semijoins (Section 4.2); the default
	// and usually the fastest.
	DPS = exec.DPS
	// DPSMerged is DPS over a reduced status space (B_in and B_out merged
	// — the paper's O(3^n) variant): faster planning, slightly coarser
	// plans.
	DPSMerged = exec.DPSMerged
	// WCOJ forces a single worst-case-optimal multiway R-join over the
	// whole pattern (leapfrog intersection in one global variable order).
	// The DP/DPS planners already consider WCOJ steps for cyclic cores and
	// pick them when cheaper; forcing the full-pattern form exists for
	// benchmarking and differential testing. Requires a connected pattern.
	WCOJ = exec.WCOJ
)

// IOStats reports page-level I/O counters of the engine's buffer pool.
type IOStats = storage.IOStats

// Options configures NewEngine.
type Options struct {
	// Path stores the database in a page file; empty keeps it in memory.
	Path string
	// PoolBytes sizes the buffer pool (default 1 MB, the paper's setting).
	PoolBytes int
	// CodeCacheEntries bounds the working cache of decoded graph codes
	// (default 65536; negative disables).
	CodeCacheEntries int
	// Parallelism is the intra-query parallelism degree: each R-join /
	// R-semijoin operator partitions its work (HPSJ's center list, the
	// other operators' row ranges) across up to this many goroutines.
	// <= 0 selects GOMAXPROCS; 1 forces the serial reference path. Results
	// are identical, row for row, at every degree.
	Parallelism int
	// BuildParallelism is the worker count for NewEngine's index build:
	// batched 2-hop labeling, code encoding, and the sharded cover
	// inversion all fan out across this many goroutines. 0 or 1 builds
	// serially (the reference path, byte-identical to previous versions),
	// n > 1 uses n workers, < 0 uses GOMAXPROCS. Query results are
	// identical at every setting. Ignored by OpenEngine (nothing is
	// rebuilt).
	BuildParallelism int
	// ReachIndex names the reachability-index backend that computes the
	// graph codes the engine is built on. Empty selects the default
	// ("twohop", the paper's SCC-condensed 2-hop cover); "pll" selects
	// pruned landmark labeling over the raw digraph. See ReachBackends for
	// the registered names. Query results are identical under every
	// backend; only index size and build/query cost differ. For OpenEngine
	// the stored database's backend wins, and a non-empty mismatching
	// ReachIndex is an error.
	ReachIndex string
}

// ReachBackends lists the registered reachability-index backend names,
// sorted; any of them is a valid Options.ReachIndex.
func ReachBackends() []string { return reach.Names() }

// Engine is a queryable graph database built from a data graph. Build
// once, query many times. Methods are safe for concurrent use and queries
// execute in parallel: the storage engine's buffer pool and caches use
// sharded locks and every query spills intermediate results to a private
// scratch area, so no global mutex serialises the read path. (The paper's
// executor is single-threaded; see DESIGN.md for how the concurrent read
// path maps onto it.) For serving with admission control, a plan cache,
// and metrics, wrap the engine with Parallel.
type Engine struct {
	db *gdb.DB
	// parallelism is the per-query operator worker degree (Options.Parallelism).
	parallelism int
}

// NewEngine indexes g: it computes the 2-hop cover, writes base tables,
// the W-table and the cluster-based R-join index, and returns a queryable
// engine. With a non-empty Options.Path the database (including the graph)
// is persisted and can later be reattached with OpenEngine.
func NewEngine(g *Graph, opt Options) (*Engine, error) {
	db, err := gdb.Build(g, gdb.Options{
		Path:             opt.Path,
		PoolBytes:        opt.PoolBytes,
		CodeCacheEntries: opt.CodeCacheEntries,
		BuildParallelism: opt.BuildParallelism,
		ReachIndex:       opt.ReachIndex,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{db: db, parallelism: opt.Parallelism}, nil
}

// OpenEngine reattaches to a database previously created by NewEngine with
// the same path, without recomputing the 2-hop cover or any index.
// opt.Path is ignored (the argument path wins).
func OpenEngine(path string, opt Options) (*Engine, error) {
	db, err := gdb.Open(path, gdb.Options{
		PoolBytes:        opt.PoolBytes,
		CodeCacheEntries: opt.CodeCacheEntries,
		ReachIndex:       opt.ReachIndex,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{db: db, parallelism: opt.Parallelism}, nil
}

// Close releases the engine's storage. Close is idempotent; afterwards
// every query method returns ErrClosed.
func (e *Engine) Close() error { return e.db.Close() }

// Graph returns the underlying data graph.
func (e *Engine) Graph() *Graph { return e.db.Graph() }

// Query parses and evaluates a pattern with the DPS optimizer.
func (e *Engine) Query(patternText string) (*Result, error) {
	return e.QueryContext(context.Background(), patternText)
}

// QueryContext is Query honouring ctx: the query is abandoned mid-join
// (returning ctx's error) once the context is cancelled or past its
// deadline.
func (e *Engine) QueryContext(ctx context.Context, patternText string) (*Result, error) {
	p, err := ParsePattern(patternText)
	if err != nil {
		return nil, err
	}
	return e.QueryPatternContext(ctx, p, DPS)
}

// QueryPattern evaluates a parsed pattern with the chosen optimizer.
func (e *Engine) QueryPattern(p *Pattern, algo Algorithm) (*Result, error) {
	return e.QueryPatternContext(context.Background(), p, algo)
}

// QueryPatternContext is QueryPattern honouring ctx for cancellation and
// deadlines.
func (e *Engine) QueryPatternContext(ctx context.Context, p *Pattern, algo Algorithm) (*Result, error) {
	plan, err := e.plan(p, algo)
	if err != nil {
		return nil, err
	}
	return exec.RunContextConfig(ctx, e.db, plan, exec.RunConfig{Workers: e.parallelism})
}

// QueryPatternBudget is QueryPatternContext under a resource budget: b's
// result-row limit is pushed into execution (check b.Truncated() for a
// cut result) and its row/byte caps kill the query with ErrRowLimit /
// ErrBudgetExceeded. b may be nil for an unbudgeted run; a non-nil b must
// be fresh (it accumulates this query's accounting).
func (e *Engine) QueryPatternBudget(ctx context.Context, p *Pattern, algo Algorithm, b *Budget) (*Result, error) {
	plan, err := e.plan(p, algo)
	if err != nil {
		return nil, err
	}
	return exec.RunContextConfig(ctx, e.db, plan, exec.RunConfig{Workers: e.parallelism, Budget: b})
}

// plan is the single bind-then-optimize step shared by every query and
// explain path.
func (e *Engine) plan(p *Pattern, algo Algorithm) (*Plan, error) {
	if e.db.Closed() {
		return nil, ErrClosed
	}
	return exec.BuildPlan(e.db, p, algo)
}

// Explain returns the plan the optimizer would choose, without running it.
func (e *Engine) Explain(p *Pattern, algo Algorithm) (*Plan, error) {
	return e.plan(p, algo)
}

// ExplainAnalyze runs a plan and returns the result together with per-step
// actual row counts, I/O, and timings.
func (e *Engine) ExplainAnalyze(p *Pattern, algo Algorithm) (*Result, *Plan, []exec.StepTrace, error) {
	return e.ExplainAnalyzeContext(context.Background(), p, algo)
}

// ExplainAnalyzeContext is ExplainAnalyze honouring ctx.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, p *Pattern, algo Algorithm) (*Result, *Plan, []exec.StepTrace, error) {
	plan, err := e.plan(p, algo)
	if err != nil {
		return nil, nil, nil, err
	}
	res, traces, err := exec.RunWithTraceConfig(ctx, e.db, plan, true, exec.RunConfig{Workers: e.parallelism})
	if err != nil {
		return nil, nil, nil, err
	}
	return res, plan, traces, nil
}

// StepTrace reports one executed plan step (see ExplainAnalyze).
type StepTrace = exec.StepTrace

// Reaches reports u ⇝ v using the engine's 2-hop graph codes. The lookup
// pins one snapshot epoch, so it never blocks on (or is torn by) a
// concurrent InsertEdge.
func (e *Engine) Reaches(u, v NodeID) (bool, error) {
	return e.db.Reaches(u, v)
}

// CoverDelta records one reachability-label entry changed by an edge
// insert or delete: Center joined (Removed false) or left (Removed true)
// L_out(Node) (Out true) or L_in(Node) (Out false).
type CoverDelta = reach.LabelDelta

// EdgeInsertStats summarises what one InsertEdge changed in the index.
type EdgeInsertStats = gdb.EdgeInsertStats

// ErrBadInsert is returned by InsertEdge when an endpoint lies outside the
// graph's node range; match with errors.Is.
var ErrBadInsert = gdb.ErrBadInsert

// InsertEdge adds the edge u→v to the data graph and incrementally repairs
// every index structure — the 2-hop codes in the base tables, the
// cluster-based R-join index, and the W-table — with point updates, no
// rebuild (see DESIGN.md, "Incremental maintenance" and "Snapshot
// epochs"). Queries are never blocked: the repaired index is prepared on
// private copy-on-write pages and published as a new snapshot epoch, while
// in-flight queries keep reading the epoch they pinned.
//
// Inserting an edge that already exists is a cheap no-op (Stats.Duplicate).
// For a file-backed engine the update is in-memory until Sync.
func (e *Engine) InsertEdge(u, v NodeID) (EdgeInsertStats, error) {
	return e.db.ApplyEdgeInsert(u, v)
}

// InsertEdges applies a batch of edge inserts with ONE snapshot publish at
// the end, so readers see either none or all of the batch and the
// per-publish overhead is amortised. The returned slice holds per-edge
// stats in order; on error it covers the successfully applied prefix,
// which stays applied.
func (e *Engine) InsertEdges(edges [][2]NodeID) ([]EdgeInsertStats, error) {
	return e.db.ApplyEdgeInserts(edges)
}

// EdgeDeleteStats summarises what one DeleteEdge changed in the index.
type EdgeDeleteStats = gdb.EdgeDeleteStats

// ErrBadDelete is returned by DeleteEdge when an endpoint lies outside the
// graph's node range; match with errors.Is.
var ErrBadDelete = gdb.ErrBadDelete

// DeleteEdge removes the edge u→v from the data graph and incrementally
// repairs every index structure with point updates, no rebuild: stale
// 2-hop label entries (those whose every support path used the edge) are
// removed, entries for pairs that stay reachable are re-added, subclusters
// shrink (centers whose subclusters empty are dropped), and W-table rows
// that lost their last center are retracted (see DESIGN.md, "Incremental
// maintenance"). Like inserts, the repaired index is prepared on private
// copy-on-write pages and published as a new snapshot epoch; queries are
// never blocked.
//
// Deleting an edge that is not present is a cheap no-op (Stats.Missing)
// publishing no epoch. For a file-backed engine the update is in-memory
// until Sync.
func (e *Engine) DeleteEdge(u, v NodeID) (EdgeDeleteStats, error) {
	return e.db.ApplyEdgeDelete(u, v)
}

// DeleteEdges applies a batch of edge deletes with ONE snapshot publish at
// the end (none if the batch changed nothing). The returned slice holds
// per-edge stats in order; on error it covers the successfully applied
// prefix, which stays applied.
func (e *Engine) DeleteEdges(edges [][2]NodeID) ([]EdgeDeleteStats, error) {
	return e.db.ApplyEdgeDeletes(edges)
}

// EpochStats reports the snapshot-epoch bookkeeping: the current epoch
// number, how many epochs are live (pinned by in-flight reads), the age of
// the oldest live epoch, and how many superseded epochs have been retired.
type EpochStats = epoch.Stats

// EpochStats returns the engine's snapshot-epoch counters. Pinned returns
// to 1 when no reads are in flight — a persistently higher value means a
// reader is holding an old epoch (and its pages) alive.
func (e *Engine) EpochStats() EpochStats { return e.db.EpochStats() }

// Sync persists any InsertEdge updates of a file-backed engine to its page
// file and manifest; it is a no-op for in-memory engines.
func (e *Engine) Sync() error { return e.db.Sync() }

// Repack rewrites the persisted database at src into a fresh file at dst
// with every index bulk-loaded: edge inserts fragment the page file
// (half-full B+-tree split pages, stale copy-on-write page versions),
// and repacking restores the dense layout Build produces. It runs offline
// — src is only read, dst is replaced — and deterministically: repacking
// the same source twice yields byte-identical output. src and dst must
// differ.
func Repack(src, dst string) error { return gdb.Repack(src, dst, gdb.Options{}) }

// IOStats returns the accumulated buffer pool counters.
func (e *Engine) IOStats() IOStats {
	return e.db.IOStats()
}

// ResetIOStats zeroes the counters (e.g. after the build, before a
// measured query).
func (e *Engine) ResetIOStats() {
	e.db.ResetIOStats()
}

// Stats summarises the engine's index structures.
type Stats struct {
	// Nodes and Edges describe the data graph.
	Nodes, Edges int
	// Labels is |Σ|.
	Labels int
	// CoverSize is the 2-hop cover size |H|.
	CoverSize int
	// CoverRatio is |H|/|V|.
	CoverRatio float64
	// Centers is the number of centers in the cluster-based R-join index.
	Centers int
	// SizeBytes is the on-disk size of the database.
	SizeBytes int
}

// Stats reports index statistics.
func (e *Engine) Stats() Stats {
	g := e.db.Graph()
	s := Stats{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		Labels:    g.Labels().Len(),
		CoverSize: e.db.CoverSize(),
		Centers:   e.db.NumCenters(),
		SizeBytes: e.db.SizeBytes(),
	}
	if s.Nodes > 0 {
		s.CoverRatio = float64(s.CoverSize) / float64(s.Nodes)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("engine{|V|=%d |E|=%d |Σ|=%d |H|=%d (%.2f/node) centers=%d disk=%dKB}",
		s.Nodes, s.Edges, s.Labels, s.CoverSize, s.CoverRatio, s.Centers, s.SizeBytes/1024)
}

// CoverStats exposes the full reachability-index statistics of the active
// backend. The second return is false for an engine reattached with
// OpenEngine (only the index's size is persisted; see Stats).
func (e *Engine) CoverStats() (reach.Stats, bool) {
	idx := e.db.Index()
	if idx == nil {
		return reach.Stats{}, false
	}
	return idx.Stats(), true
}

// ReachBackend reports the name of the reachability-index backend the
// engine's graph codes were computed by ("twohop", "pll", ...). For an
// engine reattached with OpenEngine this is the backend recorded in the
// manifest.
func (e *Engine) ReachBackend() string { return e.db.ReachBackend() }

// Service is a concurrent query server over one engine: a bounded worker
// pool (admission control with queue timeout), an LRU plan cache keyed by
// canonical pattern form, and per-server metrics. Obtain one with
// Engine.Parallel; expose it over HTTP with Serve or Service.Handler.
type Service = server.Server

// ServeConfig tunes a Service (see the field docs in internal/server); the
// zero value selects the defaults (8 in-flight, 100ms queue timeout, a
// 256-entry plan cache).
type ServeConfig = server.Config

// ServiceStats is a point-in-time snapshot of a Service's counters.
type ServiceStats = server.Stats

// ServiceResult is one Service query's answer.
type ServiceResult = server.Result

// Parallel wraps the engine in a Service for concurrent serving. The
// engine must stay open for the service's lifetime; closing the engine
// makes the service answer ErrClosed (and its HTTP health check 503).
// When cfg.QueryParallelism is unset the engine's Options.Parallelism
// carries over.
func (e *Engine) Parallel(cfg ServeConfig) *Service {
	if cfg.QueryParallelism == 0 {
		cfg.QueryParallelism = e.parallelism
	}
	return server.New(e.db, cfg)
}

// Serve runs the engine's HTTP query API on addr until the listener fails
// (it blocks, like http.ListenAndServe). Endpoints: POST /query,
// GET /stats, GET /healthz — see cmd/fgmserve and the README.
func Serve(addr string, e *Engine, cfg ServeConfig) error {
	return http.ListenAndServe(addr, e.Parallel(cfg).Handler())
}
