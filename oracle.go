package fastmatch

import (
	"sync"

	"fastmatch/internal/twohop"
)

// ReachabilityOracle answers u ⇝ v questions over a graph that changes by
// edge insertions and deletions, maintaining a 2-hop labeling
// incrementally (the update problem of the paper's reference [24]; deletes
// use over-delete/re-insert repair). Unlike Engine — which is built over a
// snapshot and repairs its persistent index through
// InsertEdge/DeleteEdge — the oracle keeps only the labeling and answers
// reachability; pattern matching goes through an Engine.
//
// Methods are safe for concurrent use.
type ReachabilityOracle struct {
	mu  sync.Mutex
	inc *twohop.Incremental
}

// NewReachabilityOracle builds the initial labeling for g. Later edge
// insertions and deletions go through InsertEdge/DeleteEdge and do not
// affect g itself.
func NewReachabilityOracle(g *Graph) *ReachabilityOracle {
	cover := twohop.Compute(g, twohop.Options{})
	return &ReachabilityOracle{inc: twohop.NewIncremental(cover)}
}

// Reaches reports u ⇝ v under all insertions and deletions so far.
func (o *ReachabilityOracle) Reaches(u, v NodeID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.Reaches(u, v)
}

// InsertEdge adds the edge u→v and repairs the labeling, returning the
// label entries added (nil when the edge creates no new reachability).
func (o *ReachabilityOracle) InsertEdge(u, v NodeID) []CoverDelta {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.InsertEdge(u, v)
}

// DeleteEdge removes one occurrence of the edge u→v and repairs the
// labeling by over-delete/re-insert, returning the label entries removed
// (Removed true) and re-added. Deleting an absent edge is a no-op
// returning nil.
func (o *ReachabilityOracle) DeleteEdge(u, v NodeID) []CoverDelta {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.DeleteEdge(u, v)
}

// LabelEntries returns the current 2-hop labeling size |H|.
func (o *ReachabilityOracle) LabelEntries() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.Size()
}
