package fastmatch

import (
	"fmt"
	"sync"

	"fastmatch/internal/reach"

	// Register the built-in backends for NewReachabilityOracleBackend.
	_ "fastmatch/internal/pll"
	_ "fastmatch/internal/twohop"
)

// ReachabilityOracle answers u ⇝ v questions over a graph that changes by
// edge insertions and deletions, maintaining a reachability labeling
// incrementally (the update problem of the paper's reference [24]; deletes
// use over-delete/re-insert repair). Unlike Engine — which is built over a
// snapshot and repairs its persistent index through
// InsertEdge/DeleteEdge — the oracle keeps only the labeling and answers
// reachability; pattern matching goes through an Engine.
//
// Methods are safe for concurrent use.
type ReachabilityOracle struct {
	mu      sync.Mutex
	backend string
	inc     *reach.Incremental
}

// NewReachabilityOracle builds the initial labeling for g with the default
// reachability backend. Later edge insertions and deletions go through
// InsertEdge/DeleteEdge and do not affect g itself.
func NewReachabilityOracle(g *Graph) *ReachabilityOracle {
	o, err := NewReachabilityOracleBackend(g, "")
	if err != nil {
		panic(err) // unreachable: the default backend is always registered
	}
	return o
}

// NewReachabilityOracleBackend is NewReachabilityOracle with an explicit
// reachability backend ("twohop", "pll", ...; empty selects the default —
// see ReachBackends). It errors only on an unknown backend name.
func NewReachabilityOracleBackend(g *Graph, backend string) (*ReachabilityOracle, error) {
	b, err := reach.Lookup(backend)
	if err != nil {
		return nil, fmt.Errorf("fastmatch: reachability oracle: %w", err)
	}
	idx := b.Build(g, reach.Options{})
	return &ReachabilityOracle{backend: b.Name(), inc: reach.NewIncremental(idx)}, nil
}

// Backend reports the name of the reachability backend the oracle's
// labeling was built by.
func (o *ReachabilityOracle) Backend() string { return o.backend }

// Reaches reports u ⇝ v under all insertions and deletions so far.
func (o *ReachabilityOracle) Reaches(u, v NodeID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.Reaches(u, v)
}

// InsertEdge adds the edge u→v and repairs the labeling, returning the
// label entries added (nil when the edge creates no new reachability).
func (o *ReachabilityOracle) InsertEdge(u, v NodeID) []CoverDelta {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.InsertEdge(u, v)
}

// DeleteEdge removes one occurrence of the edge u→v and repairs the
// labeling by over-delete/re-insert, returning the label entries removed
// (Removed true) and re-added. Deleting an absent edge is a no-op
// returning nil.
func (o *ReachabilityOracle) DeleteEdge(u, v NodeID) []CoverDelta {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.DeleteEdge(u, v)
}

// LabelEntries returns the current labeling size |H|.
func (o *ReachabilityOracle) LabelEntries() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.Size()
}
