package fastmatch

import (
	"sync"

	"fastmatch/internal/twohop"
)

// ReachabilityOracle answers u ⇝ v questions over a graph that grows by
// edge insertions, maintaining a 2-hop labeling incrementally (the update
// problem of the paper's reference [24]). Unlike Engine — which is built
// once over an immutable graph — the oracle accepts InsertEdge at any time.
// It answers reachability only; pattern matching over a changed graph
// requires rebuilding an Engine.
//
// Methods are safe for concurrent use.
type ReachabilityOracle struct {
	mu  sync.Mutex
	inc *twohop.Incremental
}

// NewReachabilityOracle builds the initial labeling for g. Later edge
// insertions go through InsertEdge and do not affect g itself.
func NewReachabilityOracle(g *Graph) *ReachabilityOracle {
	cover := twohop.Compute(g, twohop.Options{})
	return &ReachabilityOracle{inc: twohop.NewIncremental(cover)}
}

// Reaches reports u ⇝ v under all insertions so far.
func (o *ReachabilityOracle) Reaches(u, v NodeID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.Reaches(u, v)
}

// InsertEdge adds the edge u→v and repairs the labeling, returning the
// label entries added (nil when the edge creates no new reachability).
func (o *ReachabilityOracle) InsertEdge(u, v NodeID) []CoverDelta {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.InsertEdge(u, v)
}

// LabelEntries returns the current 2-hop labeling size |H|.
func (o *ReachabilityOracle) LabelEntries() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inc.Size()
}
