package fastmatch_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fastmatch"
	"fastmatch/internal/xmark"
)

// paperEngine builds an engine over the Figure 1 data graph.
func paperEngine(t testing.TB) (*fastmatch.Engine, map[string]fastmatch.NodeID) {
	t.Helper()
	b := fastmatch.NewGraphBuilder()
	ids := map[string]fastmatch.NodeID{}
	add := func(name, label string) { ids[name] = b.AddNode(label) }
	add("a0", "A")
	for _, n := range []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6"} {
		add(n, "B")
	}
	for _, n := range []string{"c0", "c1", "c2", "c3"} {
		add(n, "C")
	}
	for _, n := range []string{"d0", "d1", "d2", "d3", "d4", "d5"} {
		add(n, "D")
	}
	for _, n := range []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"} {
		add(n, "E")
	}
	for _, e := range [][2]string{
		{"a0", "b3"}, {"a0", "b4"}, {"a0", "b5"}, {"a0", "c0"},
		{"b3", "c2"}, {"b4", "c2"}, {"b5", "c3"}, {"b6", "c3"},
		{"b0", "c1"}, {"b1", "c1"}, {"b2", "c1"}, {"b1", "c3"},
		{"c0", "d0"}, {"c0", "d1"}, {"c0", "e0"},
		{"c1", "d2"}, {"c1", "d3"}, {"c1", "e7"},
		{"c2", "e2"}, {"c3", "d4"}, {"c3", "d5"},
		{"d0", "e0"}, {"d2", "e1"}, {"d4", "e3"}, {"e4", "e5"},
	} {
		b.AddEdge(ids[e[0]], ids[e[1]])
	}
	eng, err := fastmatch.NewEngine(b.Build(), fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng, ids
}

func TestEngineQueryPaperPattern(t *testing.T) {
	eng, ids := paperEngine(t)
	// The pattern of Figure 1(b).
	res, err := eng.Query("A->C; B->C; C->D; D->E")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("paper pattern should match")
	}
	// Every row must satisfy all four conditions (checked via Reaches).
	for _, row := range res.Rows {
		for _, cond := range [][2]int{{0, 1}, {2, 1}, {1, 3}, {3, 4}} {
			ok, err := eng.Reaches(row[cond[0]], row[cond[1]])
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("row %v violates condition %v", row, cond)
			}
		}
	}
	// One known match from the graph: a0 ⇝ c3 (via b5), b1 ⇝ c3, c3 ⇝ d4,
	// d4 ⇝ e3.
	found := false
	for _, row := range res.Rows {
		if row[0] == ids["a0"] && row[1] == ids["c3"] && row[2] == ids["b1"] &&
			row[3] == ids["d4"] && row[4] == ids["e3"] {
			found = true
		}
	}
	if !found {
		t.Fatal("expected match (a0, c3, b1, d4, e3) not present")
	}
}

func TestEngineDPMatchesDPS(t *testing.T) {
	eng, _ := paperEngine(t)
	p, err := fastmatch.ParsePattern("A->C; B->C; C->D")
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.QueryPattern(p, fastmatch.DP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.QueryPattern(p, fastmatch.DPS)
	if err != nil {
		t.Fatal(err)
	}
	a.SortRows()
	b.SortRows()
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("DP %d rows != DPS %d rows", a.Len(), b.Len())
	}
}

func TestEngineExplain(t *testing.T) {
	eng, _ := paperEngine(t)
	p, _ := fastmatch.ParsePattern("A->C; B->C; C->D; D->E")
	for _, algo := range []fastmatch.Algorithm{fastmatch.DP, fastmatch.DPS} {
		plan, err := eng.Explain(p, algo)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan.String(), "->") {
			t.Fatalf("unhelpful plan: %s", plan)
		}
	}
	res, plan, traces, err := eng.ExplainAnalyze(p, fastmatch.DPS)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || plan == nil || len(traces) != len(plan.Steps) {
		t.Fatalf("ExplainAnalyze: res=%v traces=%d steps=%d", res, len(traces), len(plan.Steps))
	}
}

func TestEngineStats(t *testing.T) {
	eng, _ := paperEngine(t)
	st := eng.Stats()
	if st.Nodes != 26 || st.Edges != 25 || st.Labels != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CoverSize <= 0 || st.Centers <= 0 || st.SizeBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty String")
	}
	cs, ok := eng.CoverStats()
	if !ok || cs.Size != st.CoverSize {
		t.Fatal("CoverStats disagrees with Stats")
	}
}

func TestEngineFileBacked(t *testing.T) {
	d := xmark.Generate(xmark.Config{Nodes: 3000, Seed: 1})
	path := filepath.Join(t.TempDir(), "engine.pages")
	eng, err := fastmatch.NewEngine(d.Graph, fastmatch.Options{Path: path, PoolBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Query("site->regions; regions->item")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected matches on xmark data")
	}
	if eng.IOStats().Logical() == 0 {
		t.Fatal("expected counted I/O")
	}
	eng.ResetIOStats()
	if eng.IOStats().Logical() != 0 {
		t.Fatal("ResetIOStats did not reset")
	}
}

func TestEngineQueryErrors(t *testing.T) {
	eng, _ := paperEngine(t)
	if _, err := eng.Query("not a pattern"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := eng.Query("A->Z"); err == nil {
		t.Fatal("expected unknown-label error")
	}
}

func TestOpenEngineRoundTrip(t *testing.T) {
	d := xmark.Generate(xmark.Config{Nodes: 3000, Seed: 2})
	path := filepath.Join(t.TempDir(), "engine.pages")
	eng, err := fastmatch.NewEngine(d.Graph, fastmatch.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	const q = "person->profile; profile->interest; interest->category"
	want, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want.SortRows()
	st := eng.Stats()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := fastmatch.OpenEngine(path, fastmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	got, err := eng2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got.SortRows()
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("reopened engine: %d rows, want %d", got.Len(), want.Len())
	}
	st2 := eng2.Stats()
	if st2.Nodes != st.Nodes || st2.Edges != st.Edges || st2.CoverSize != st.CoverSize || st2.Centers != st.Centers {
		t.Fatalf("stats changed after reopen: %+v vs %+v", st2, st)
	}
	if _, ok := eng2.CoverStats(); ok {
		t.Fatal("opened engine should not expose a cover object")
	}
}

func TestEngineConcurrentQueries(t *testing.T) {
	eng, _ := paperEngine(t)
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 25; i++ {
				q := "A->C; B->C; C->D"
				if w%2 == 0 {
					q = "C->D; D->E"
				}
				res, err := eng.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Len() == 0 {
					errs <- fmt.Errorf("worker %d: empty result", w)
					return
				}
				if _, err := eng.Reaches(0, 1); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReachabilityOracle(t *testing.T) {
	b := fastmatch.NewGraphBuilder()
	var ids []fastmatch.NodeID
	for i := 0; i < 6; i++ {
		ids = append(ids, b.AddNode("pkg"))
	}
	b.AddEdge(ids[0], ids[1])
	b.AddEdge(ids[1], ids[2])
	o := fastmatch.NewReachabilityOracle(b.Build())
	if !o.Reaches(ids[0], ids[2]) || o.Reaches(ids[2], ids[0]) {
		t.Fatal("seed reachability wrong")
	}
	if o.LabelEntries() < 0 {
		t.Fatal("negative labeling size")
	}
	if added := o.InsertEdge(ids[2], ids[3]); len(added) == 0 {
		t.Fatal("new edge should add labels")
	}
	if !o.Reaches(ids[0], ids[3]) {
		t.Fatal("transitive update missing")
	}
	if added := o.InsertEdge(ids[0], ids[3]); len(added) != 0 {
		t.Fatal("redundant edge should add nothing")
	}
}
