// Top-level benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 6), driving the same harness as cmd/fgmbench.
// Each benchmark runs its full experiment and reports the headline metric
// as a custom unit, so `go test -bench=. -benchmem` regenerates every
// artifact. Set FGM_BENCH_MULT to scale the datasets (default 0.25 here to
// keep `go test -bench=.` affordable; cmd/fgmbench defaults to 1.0).
package fastmatch_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"

	"fastmatch"
	"fastmatch/internal/bench"
	"fastmatch/internal/workload"
	"fastmatch/internal/xmark"
)

func benchMult() float64 {
	if s := os.Getenv("FGM_BENCH_MULT"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.25
}

// runExperiment executes one experiment per benchmark iteration, reporting
// row count so regressions in coverage are visible.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := bench.NewRunner(benchMult(), 1)
	defer r.Close()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rep, err := r.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(rep.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTable2 regenerates Table 2 (dataset and 2-hop cover statistics).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig5a regenerates Figure 5(a): TSD vs INT-DP vs DP, 9 paths.
func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5b regenerates Figure 5(b): TSD vs INT-DP vs DP, 9 trees.
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig6a regenerates Figure 6(a): DP vs DPS, |Vq|=4 battery A.
func BenchmarkFig6a(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6b regenerates Figure 6(b): DP vs DPS, |Vq|=4 battery B.
func BenchmarkFig6b(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig6c regenerates Figure 6(c): DP vs DPS, |Vq|=5 battery A.
func BenchmarkFig6c(b *testing.B) { runExperiment(b, "fig6c") }

// BenchmarkFig6d regenerates Figure 6(d): DP vs DPS, |Vq|=5 battery B.
func BenchmarkFig6d(b *testing.B) { runExperiment(b, "fig6d") }

// BenchmarkFig7a regenerates Figure 7(a): scalability, path pattern.
func BenchmarkFig7a(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates Figure 7(b): scalability, tree pattern.
func BenchmarkFig7b(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkFig7c regenerates Figure 7(c): scalability, graph pattern.
func BenchmarkFig7c(b *testing.B) { runExperiment(b, "fig7c") }

// BenchmarkIOCost regenerates the Section 6.2 I/O comparison.
func BenchmarkIOCost(b *testing.B) { runExperiment(b, "iocost") }

// BenchmarkParallelQuery measures query throughput through the serving
// layer at 1, 4, and 8 workers, with and without the plan cache. Workers
// rotate through a mix of path and tree patterns, so the cached variant
// also measures plan-cache contention, not just a single hot entry. The
// sequential/parallel ratio shows read-path scaling (on multi-core
// hardware; a single-CPU machine pins all variants to one core), and the
// cache=off column isolates the cost of re-planning every query.
func BenchmarkParallelQuery(b *testing.B) {
	d := xmark.Generate(xmark.Config{Nodes: 6000, Seed: 7, DAG: true})
	eng, err := fastmatch.NewEngine(d.Graph, fastmatch.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	// Mix shapes: short paths and trees (execution-dominated) plus larger
	// graph patterns, whose DP/DPS planning cost — exponential in pattern
	// size — is what the plan cache saves.
	var mix []workload.Workload
	mix = append(mix, workload.Paths()[:3]...)
	mix = append(mix, workload.Trees()[:3]...)
	mix = append(mix, workload.Graphs5B()...)
	var patterns []*fastmatch.Pattern
	for _, w := range mix {
		patterns = append(patterns, w.Pattern)
	}

	for _, workers := range []int{1, 4, 8} {
		for _, cache := range []bool{true, false} {
			name := fmt.Sprintf("workers=%d/cache=%v", workers, cache)
			b.Run(name, func(b *testing.B) {
				size := 0
				if !cache {
					size = -1
				}
				svc := eng.Parallel(fastmatch.ServeConfig{
					MaxInFlight:   workers,
					PlanCacheSize: size,
				})
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
				// Warm the buffer pool and code cache (shared across
				// sub-benchmarks) so the first variant isn't charged the
				// cold-start I/O; the plan cache itself stays cold.
				for _, p := range patterns {
					if _, err := eng.QueryPattern(p, fastmatch.DPS); err != nil {
						b.Fatal(err)
					}
				}
				var next atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					ctx := context.Background()
					for pb.Next() {
						p := patterns[int(next.Add(1))%len(patterns)]
						if _, err := svc.QueryPattern(ctx, p, fastmatch.DPS); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.StopTimer()
				st := svc.Stats()
				if st.Queries > 0 {
					b.ReportMetric(float64(st.PlanCacheHits)/float64(st.Queries), "cachehit/op")
				}
			})
		}
	}
}
