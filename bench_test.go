// Top-level benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 6), driving the same harness as cmd/fgmbench.
// Each benchmark runs its full experiment and reports the headline metric
// as a custom unit, so `go test -bench=. -benchmem` regenerates every
// artifact. Set FGM_BENCH_MULT to scale the datasets (default 0.25 here to
// keep `go test -bench=.` affordable; cmd/fgmbench defaults to 1.0).
package fastmatch_test

import (
	"os"
	"strconv"
	"testing"

	"fastmatch/internal/bench"
)

func benchMult() float64 {
	if s := os.Getenv("FGM_BENCH_MULT"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.25
}

// runExperiment executes one experiment per benchmark iteration, reporting
// row count so regressions in coverage are visible.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := bench.NewRunner(benchMult(), 1)
	defer r.Close()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rep, err := r.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(rep.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTable2 regenerates Table 2 (dataset and 2-hop cover statistics).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig5a regenerates Figure 5(a): TSD vs INT-DP vs DP, 9 paths.
func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5b regenerates Figure 5(b): TSD vs INT-DP vs DP, 9 trees.
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig6a regenerates Figure 6(a): DP vs DPS, |Vq|=4 battery A.
func BenchmarkFig6a(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6b regenerates Figure 6(b): DP vs DPS, |Vq|=4 battery B.
func BenchmarkFig6b(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig6c regenerates Figure 6(c): DP vs DPS, |Vq|=5 battery A.
func BenchmarkFig6c(b *testing.B) { runExperiment(b, "fig6c") }

// BenchmarkFig6d regenerates Figure 6(d): DP vs DPS, |Vq|=5 battery B.
func BenchmarkFig6d(b *testing.B) { runExperiment(b, "fig6d") }

// BenchmarkFig7a regenerates Figure 7(a): scalability, path pattern.
func BenchmarkFig7a(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates Figure 7(b): scalability, tree pattern.
func BenchmarkFig7b(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkFig7c regenerates Figure 7(c): scalability, graph pattern.
func BenchmarkFig7c(b *testing.B) { runExperiment(b, "fig7c") }

// BenchmarkIOCost regenerates the Section 6.2 I/O comparison.
func BenchmarkIOCost(b *testing.B) { runExperiment(b, "iocost") }
