package fastmatch_test

import (
	"math/rand"
	"reflect"
	"testing"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/reach"
	"fastmatch/internal/xmark"
)

// Cross-backend equivalence: every registered reachability backend is a
// different algorithm producing a different labeling over the same graph,
// but all of them must answer the same questions — all-pairs Reaches, and
// identical result rows from an engine built on their codes. A divergence
// here is a backend correctness bug by construction (one of them
// contradicts BFS).

// crossGraphs is the graph battery: random digraphs in several density
// regimes (cycle-heavy, sparse, disconnected) plus an XMark-derived graph.
func crossGraphs() map[string]*graph.Graph {
	random := func(seed int64, n, m, nlabels int) *graph.Graph {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder()
		labels := make([]graph.Label, nlabels)
		for i := range labels {
			labels[i] = b.Intern(string(rune('A' + i)))
		}
		for i := 0; i < n; i++ {
			b.AddNodeLabel(labels[rng.Intn(nlabels)])
		}
		for i := 0; i < m; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		return b.Build()
	}
	return map[string]*graph.Graph{
		"dense-cyclic": random(21, 200, 800, 3),
		"sparse":       random(22, 300, 330, 4),
		"disconnected": random(23, 250, 120, 2),
		"xmark":        xmark.Generate(xmark.Config{Nodes: 600, Seed: 5}).Graph,
	}
}

// TestReachCrossBackendAgreement builds every registered backend over each
// battery graph and asserts all-pairs Reaches agreement (anchored to BFS
// truth via the first backend's Verify).
func TestReachCrossBackendAgreement(t *testing.T) {
	names := reach.Names()
	if len(names) < 2 {
		t.Fatalf("expected at least two registered backends, have %v", names)
	}
	for gname, g := range crossGraphs() {
		t.Run(gname, func(t *testing.T) {
			idxs := make([]reach.Index, len(names))
			for i, name := range names {
				b, err := reach.Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				idxs[i] = b.Build(g, reach.Options{})
			}
			// Anchor: the first backend against BFS truth; the rest against
			// the first (transitively all against truth, without paying the
			// O(|V|²·BFS) verify per backend).
			if err := idxs[0].Verify(); err != nil {
				t.Fatalf("%s: %v", names[0], err)
			}
			n := g.NumNodes()
			for u := graph.NodeID(0); int(u) < n; u++ {
				for v := graph.NodeID(0); int(v) < n; v++ {
					want := idxs[0].Reaches(u, v)
					for i := 1; i < len(idxs); i++ {
						if got := idxs[i].Reaches(u, v); got != want {
							t.Fatalf("Reaches(%d,%d): %s says %v, %s says %v",
								u, v, names[i], got, names[0], want)
						}
					}
				}
			}
		})
	}
}

// TestReachCrossBackendQueries builds one engine per backend over the same
// XMark graph and asserts identical sorted result rows on the pattern
// battery, DP and DPS at worker degrees 1 and 4.
func TestReachCrossBackendQueries(t *testing.T) {
	g := xmark.Generate(xmark.Config{Nodes: 1200, Seed: 9}).Graph
	names := reach.Names()
	dbs := make([]*gdb.DB, len(names))
	for i, name := range names {
		db, err := gdb.Build(g, gdb.Options{ReachIndex: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer db.Close()
		if db.ReachBackend() != name {
			t.Fatalf("built %q, engine reports %q", name, db.ReachBackend())
		}
		dbs[i] = db
	}
	for _, w := range diffWorkloads() {
		for _, algo := range []exec.Algorithm{exec.DP, exec.DPS} {
			for _, workers := range []int{1, 4} {
				want := sortedRows(t, dbs[0], w.Pattern, algo, workers)
				for i := 1; i < len(dbs); i++ {
					got := sortedRows(t, dbs[i], w.Pattern, algo, workers)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s %s workers=%d: %s returned %d rows, %s returned %d",
							w.Name, algo, workers, names[i], len(got), names[0], len(want))
					}
				}
			}
		}
	}
}

// FuzzReachCrossBackend lets the fuzzer shape the graph: whatever digraph
// the bytes encode, every registered backend must agree with BFS truth on
// all pairs, and an engine built from each backend's codes must return the
// same rows for a fixed two-edge pattern.
func FuzzReachCrossBackend(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x02, 0x02, 0x03, 0x03, 0x01})
	f.Add(int64(5), []byte{0x00, 0x01, 0x10, 0x11, 0x22, 0x08})
	f.Add(int64(9), []byte{0xff, 0xfe, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) < 2 || len(data) > 64 {
			t.Skip()
		}
		const n = 48
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder()
		labels := []graph.Label{b.Intern("A"), b.Intern("B"), b.Intern("C")}
		for i := 0; i < n; i++ {
			b.AddNodeLabel(labels[rng.Intn(len(labels))])
		}
		for i := 0; i+1 < len(data); i += 2 {
			b.AddEdge(graph.NodeID(int(data[i])%n), graph.NodeID(int(data[i+1])%n))
		}
		g := b.Build()

		names := reach.Names()
		idxs := make([]reach.Index, len(names))
		for i, name := range names {
			bk, err := reach.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			idxs[i] = bk.Build(g, reach.Options{})
			if err := idxs[i].Verify(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for u := graph.NodeID(0); int(u) < n; u++ {
			for v := graph.NodeID(0); int(v) < n; v++ {
				want := idxs[0].Reaches(u, v)
				for i := 1; i < len(idxs); i++ {
					if got := idxs[i].Reaches(u, v); got != want {
						t.Fatalf("Reaches(%d,%d): %s says %v, %s says %v",
							u, v, names[i], got, names[0], want)
					}
				}
			}
		}

		p := pattern.MustParse("A->B; B->C")
		var want [][]graph.NodeID
		for i, name := range names {
			db, err := gdb.Build(g, gdb.Options{ReachIndex: name})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rows := sortedRows(t, db, p, exec.DPS, 1)
			db.Close()
			if i == 0 {
				want = rows
			} else if !reflect.DeepEqual(rows, want) {
				t.Fatalf("query rows: %s returned %d, %s returned %d",
					name, len(rows), names[0], len(want))
			}
		}
	})
}
