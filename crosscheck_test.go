package fastmatch_test

import (
	"reflect"
	"testing"

	"fastmatch/internal/baseline/igmj"
	"fastmatch/internal/baseline/twigstackd"
	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/rjoin"
	"fastmatch/internal/workload"
	"fastmatch/internal/xmark"
)

// TestAllSystemsAgree is the repository's acceptance test: on an
// XMark-substitute DAG, every implemented system — the naive matcher, the
// R-join engine under DP, DPS, and DPS-merged plans, TwigStackD, and
// INT-DP/IGMJ — returns the identical result set for every path and tree
// workload of Figure 5 (TSD only supports twigs, which is why this runs on
// the path/tree batteries).
func TestAllSystemsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := xmark.Generate(xmark.Config{Nodes: 6000, Seed: 9, DAG: true})
	g := d.Graph

	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tsd, err := twigstackd.BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := igmj.BuildIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	var batteries []workload.Workload
	batteries = append(batteries, workload.Paths()...)
	batteries = append(batteries, workload.Trees()...)

	for _, w := range batteries {
		want, err := exec.NaiveMatch(g, w.Pattern)
		if err != nil {
			t.Fatalf("%s naive: %v", w.Name, err)
		}
		want.SortRows()

		results := map[string]*rjoin.Table{}
		for _, algo := range []exec.Algorithm{exec.DP, exec.DPS, exec.DPSMerged} {
			res, err := exec.Query(db, w.Pattern, algo)
			if err != nil {
				t.Fatalf("%s %s: %v", w.Name, algo, err)
			}
			results[algo.String()] = res
		}
		tsdRes, err := twigstackd.Match(tsd, w.Pattern)
		if err != nil {
			t.Fatalf("%s TSD: %v", w.Name, err)
		}
		results["TSD"] = tsdRes

		snap, release := db.Pin()
		bind, err := optimizer.Bind(snap, w.Pattern)
		release()
		if err != nil {
			t.Fatalf("%s bind: %v", w.Name, err)
		}
		// IGMJ executes binary R-join plans only; keep WCOJ steps out.
		igmjParams := optimizer.DefaultCostParams()
		igmjParams.NoWCOJ = true
		dpPlan, err := optimizer.OptimizeDP(bind, igmjParams)
		if err != nil {
			t.Fatalf("%s DP plan: %v", w.Name, err)
		}
		intdp, err := igmj.Run(ig, dpPlan)
		if err != nil {
			t.Fatalf("%s INT-DP: %v", w.Name, err)
		}
		results["INT-DP"] = intdp

		for name, res := range results {
			res.SortRows()
			if !reflect.DeepEqual(res.Rows, want.Rows) {
				t.Fatalf("%s: %s returned %d rows, naive %d — result sets differ",
					w.Name, name, res.Len(), want.Len())
			}
		}
	}
}

// TestAllSystemsAgreeCyclic repeats the agreement check on cyclic data for
// the systems that support general digraphs (everything except TSD), over
// the graph-pattern batteries.
func TestAllSystemsAgreeCyclic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := xmark.Generate(xmark.Config{Nodes: 6000, Seed: 10})
	g := d.Graph
	if graph.IsDAG(g) {
		t.Fatal("expected cyclic data")
	}

	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ig, err := igmj.BuildIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	var batteries []workload.Workload
	batteries = append(batteries, workload.Graphs4A()...)
	batteries = append(batteries, workload.Graphs5B()...)

	for _, w := range batteries {
		want, err := exec.NaiveMatch(g, w.Pattern)
		if err != nil {
			t.Fatalf("%s naive: %v", w.Name, err)
		}
		want.SortRows()
		for _, algo := range []exec.Algorithm{exec.DP, exec.DPS, exec.DPSMerged} {
			res, err := exec.Query(db, w.Pattern, algo)
			if err != nil {
				t.Fatalf("%s %s: %v", w.Name, algo, err)
			}
			res.SortRows()
			if !reflect.DeepEqual(res.Rows, want.Rows) {
				t.Fatalf("%s: %s differs from naive (%d vs %d rows)", w.Name, algo, res.Len(), want.Len())
			}
		}
		snap, release := db.Pin()
		bind, err := optimizer.Bind(snap, w.Pattern)
		release()
		if err != nil {
			t.Fatal(err)
		}
		// IGMJ executes binary R-join plans only; keep WCOJ steps out.
		igmjParams := optimizer.DefaultCostParams()
		igmjParams.NoWCOJ = true
		dpPlan, err := optimizer.OptimizeDP(bind, igmjParams)
		if err != nil {
			t.Fatal(err)
		}
		intdp, err := igmj.Run(ig, dpPlan)
		if err != nil {
			t.Fatalf("%s INT-DP: %v", w.Name, err)
		}
		intdp.SortRows()
		if !reflect.DeepEqual(intdp.Rows, want.Rows) {
			t.Fatalf("%s: INT-DP differs from naive (%d vs %d rows)", w.Name, intdp.Len(), want.Len())
		}
	}
}
