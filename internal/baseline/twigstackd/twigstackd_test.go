package twigstackd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fastmatch/internal/exec"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
)

// randomDAG builds a random DAG: edges only from lower to higher IDs.
func randomDAG(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nlabels; i++ {
		b.Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	b.SetDedupEdges(true)
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build()
}

func TestBuildIndexRejectsCycles(t *testing.T) {
	b := graph.NewBuilder()
	u := b.AddNode("X")
	v := b.AddNode("Y")
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	if _, err := BuildIndex(b.Build()); err == nil {
		t.Fatal("expected error for cyclic graph")
	}
}

func TestIntervalsAreTreeConsistent(t *testing.T) {
	g := randomDAG(1, 60, 120, 4)
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	// Every node's interval nests within its spanning-tree parent's.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		p := ix.parent[v]
		if p == graph.InvalidNode {
			continue
		}
		if !(ix.s[p] < ix.s[v] && ix.e[v] < ix.e[p]) {
			t.Fatalf("interval of %d not nested in parent %d", v, p)
		}
	}
}

// TestReachesMatchesBFS: interval + SSPI reachability equals ground truth.
func TestReachesMatchesBFS(t *testing.T) {
	check := func(seed int64) bool {
		g := randomDAG(seed, 40, 80, 3)
		ix, err := BuildIndex(g)
		if err != nil {
			return false
		}
		m := ix.Matcher()
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
				if m.Reaches(u, v) != graph.Reaches(g, u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorsSemantics(t *testing.T) {
	g := randomDAG(2, 50, 100, 3)
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	m := ix.Matcher()
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		anc := m.Ancestors(v)
		seen := map[graph.NodeID]bool{}
		for _, u := range anc {
			if u == v {
				t.Fatalf("Ancestors(%d) contains self", v)
			}
			if !graph.Reaches(g, u, v) {
				t.Fatalf("Ancestors(%d) contains non-ancestor %d", v, u)
			}
			seen[u] = true
		}
		// Completeness.
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			if u != v && graph.Reaches(g, u, v) && !seen[u] {
				t.Fatalf("Ancestors(%d) missing %d", v, u)
			}
		}
	}
	if m.PoolSize() == 0 {
		t.Fatal("pool should be populated after Ancestors calls")
	}
}

var tsdPatterns = []string{
	"A->B",
	"A->B; B->C",
	"A->B; B->C; C->D",
	"A->B; A->C",
	"A->B; B->C; B->D",
	"A->B; A->C; C->D; C->E",
}

// TestMatchEqualsNaive: TSD results equal the naive matcher on random DAGs
// for paths and twigs.
func TestMatchEqualsNaive(t *testing.T) {
	check := func(seed int64) bool {
		g := randomDAG(seed, 50, 90, 5)
		ix, err := BuildIndex(g)
		if err != nil {
			return false
		}
		for _, ps := range tsdPatterns {
			p := pattern.MustParse(ps)
			got, err := Match(ix, p)
			if err != nil {
				return false
			}
			want, err := exec.NaiveMatch(g, p)
			if err != nil {
				return false
			}
			want.SortRows()
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Logf("seed %d pattern %s: tsd %d rows, naive %d rows", seed, ps, got.Len(), want.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchRejectsGraphPatterns(t *testing.T) {
	g := randomDAG(3, 30, 50, 3)
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Match(ix, pattern.MustParse("A->B; B->C; A->C")); err == nil {
		t.Fatal("expected error for non-twig pattern")
	}
	if _, err := Match(ix, pattern.MustParse("A->Z")); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

// TestDensityDegradation: the buffered closure pool grows superlinearly
// with density — the degradation the paper reports for TSD.
func TestDensityDegradation(t *testing.T) {
	sparse := randomDAG(4, 300, 330, 3)
	dense := randomDAG(4, 300, 2400, 3)
	ixS, err := BuildIndex(sparse)
	if err != nil {
		t.Fatal(err)
	}
	ixD, err := BuildIndex(dense)
	if err != nil {
		t.Fatal(err)
	}
	mS, mD := ixS.Matcher(), ixD.Matcher()
	for v := graph.NodeID(0); int(v) < 300; v++ {
		mS.Ancestors(v)
		mD.Ancestors(v)
	}
	if mD.PoolSize() < 4*mS.PoolSize() {
		t.Fatalf("dense pool %d not ≫ sparse pool %d", mD.PoolSize(), mS.PoolSize())
	}
}

func BenchmarkMatchSparse(b *testing.B) {
	g := randomDAG(5, 2000, 2400, 5)
	ix, err := BuildIndex(g)
	if err != nil {
		b.Fatal(err)
	}
	p := pattern.MustParse("A->B; B->C")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Match(ix, p); err != nil {
			b.Fatal(err)
		}
	}
}
