// Package twigstackd reconstructs the TSD baseline of Section 5.1 — the
// TwigStackD algorithm of Chen, Gupta and Kurul (stack-based pattern
// matching on DAGs) — to the level of detail the paper gives:
//
//   - a spanning forest of the DAG with an interval [s, e] per node, so
//     tree reachability is interval containment (the machinery TwigStack
//     uses over XML trees);
//   - SSPI, the Surrogate and Surplus Predecessor Index: for every node,
//     its predecessors through non-tree ("remaining") edges;
//   - pattern matching that finds spanning-tree matches through intervals
//     and completes DAG-only matches by chasing SSPI predecessor closures,
//     buffering every node that can possibly take part in a solution.
//
// The predecessor-closure buffering is exactly the behaviour the paper
// identifies as TSD's weakness: it "performs well for very sparse DAGs",
// but "degrades noticeably when the DAG becomes dense, due to the high
// overhead of accessing edge transitive closures". Results are exact.
//
// TSD supports directed acyclic data graphs and path/tree patterns (twigs),
// matching its use in the paper's Figure 5 experiments.
package twigstackd

import (
	"fmt"
	"sort"

	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// Index is the interval + SSPI encoding of a DAG.
type Index struct {
	g *graph.Graph
	// s, e: the spanning-forest interval of each node; u is a tree ancestor
	// of v iff s[u] ≤ s[v] and e[v] ≤ e[u].
	s, e []int32
	// parent is the spanning-forest parent (InvalidNode for roots).
	parent []graph.NodeID
	// sspi[v] lists v's predecessors through non-tree edges.
	sspi [][]graph.NodeID
}

// Matcher holds one query evaluation's buffer pool of predecessor
// closures. TwigStackD buffers, per query, every node that can possibly
// take part in a solution; the pool is NOT shared across queries, which is
// the overhead the paper's Figure 5 measures.
type Matcher struct {
	ix *Index
	// anc memoizes predecessor closures for this query: anc[v] is the
	// sorted set of all u ≠ v with u ⇝ v.
	anc [][]graph.NodeID
}

// Matcher starts a fresh query evaluation (an empty buffer pool).
func (ix *Index) Matcher() *Matcher {
	return &Matcher{ix: ix, anc: make([][]graph.NodeID, ix.g.NumNodes())}
}

// BuildIndex encodes g. It fails unless g is a DAG (TwigStackD's domain).
func BuildIndex(g *graph.Graph) (*Index, error) {
	if !graph.IsDAG(g) {
		return nil, fmt.Errorf("twigstackd: data graph is not a DAG")
	}
	n := g.NumNodes()
	ix := &Index{
		g:      g,
		s:      make([]int32, n),
		e:      make([]int32, n),
		parent: make([]graph.NodeID, n),
		sspi:   make([][]graph.NodeID, n),
	}
	for i := range ix.parent {
		ix.parent[i] = graph.InvalidNode
	}

	// Depth-first spanning forest: first tree edge reaching a node wins;
	// other edges become SSPI entries.
	visited := make([]bool, n)
	var clock int32
	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		visited[v] = true
		ix.s[v] = clock
		clock++
		for _, w := range ix.g.Successors(v) {
			if !visited[w] {
				ix.parent[w] = v
				dfs(w)
			} else {
				ix.sspi[w] = append(ix.sspi[w], v)
			}
		}
		ix.e[v] = clock
		clock++
	}
	// Roots first (nodes with no predecessors), then any stragglers.
	for v := graph.NodeID(0); int(v) < n; v++ {
		if g.InDegree(v) == 0 && !visited[v] {
			dfs(v)
		}
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		if !visited[v] {
			dfs(v)
		}
	}
	return ix, nil
}

// treeAncestor reports interval containment (u is v, or a spanning-tree
// ancestor of v).
func (ix *Index) treeAncestor(u, v graph.NodeID) bool {
	return ix.s[u] <= ix.s[v] && ix.e[v] <= ix.e[u]
}

// Ancestors returns the full predecessor closure of v (all u ≠ v with
// u ⇝ v), computed as Anc(v) = Anc(parent(v)) ∪ parent(v) ∪
// ⋃_{p ∈ SSPI(v)} (Anc(p) ∪ p), buffered in this query's pool. The slice
// is sorted and must not be modified.
func (m *Matcher) Ancestors(v graph.NodeID) []graph.NodeID {
	if m.anc[v] != nil {
		return m.anc[v]
	}
	set := make(map[graph.NodeID]struct{})
	add := func(p graph.NodeID) {
		set[p] = struct{}{}
		for _, a := range m.Ancestors(p) {
			set[a] = struct{}{}
		}
	}
	ix := m.ix
	if p := ix.parent[v]; p != graph.InvalidNode {
		add(p)
	}
	for _, p := range ix.sspi[v] {
		add(p)
	}
	out := make([]graph.NodeID, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if out == nil {
		out = []graph.NodeID{} // mark computed
	}
	m.anc[v] = out
	return out
}

// Reaches reports u ⇝ v: interval containment for spanning-tree paths, the
// SSPI predecessor closure otherwise.
func (m *Matcher) Reaches(u, v graph.NodeID) bool {
	if m.ix.treeAncestor(u, v) {
		return true
	}
	anc := m.Ancestors(v)
	i := sort.Search(len(anc), func(i int) bool { return anc[i] >= u })
	return i < len(anc) && anc[i] == u
}

// PoolSize reports how many closure entries this query has buffered (a
// measure of TSD's memory overhead, exposed for the experiments).
func (m *Matcher) PoolSize() int {
	total := 0
	for _, a := range m.anc {
		total += len(a)
	}
	return total
}

// Match evaluates a path or tree pattern and returns all matches, columns
// in pattern-node order.
func Match(ix *Index, p *pattern.Pattern) (*rjoin.Table, error) {
	if !p.IsTree() && !p.IsPath() {
		return nil, fmt.Errorf("twigstackd: only path and tree (twig) patterns are supported")
	}
	g := ix.g
	labels := make([]graph.Label, p.NumNodes())
	for i, name := range p.Nodes {
		labels[i] = g.Labels().Lookup(name)
		if labels[i] == graph.InvalidLabel {
			return nil, fmt.Errorf("twigstackd: label %q not in data graph", name)
		}
	}

	// Find the pattern root.
	root := -1
	for i := 0; i < p.NumNodes(); i++ {
		if len(p.InEdges(i)) == 0 {
			root = i
		}
	}

	// Candidate adjacency per pattern edge: for each child candidate y,
	// every parent candidate x with x ⇝ y. Built by scanning each child
	// extent's predecessor closure (the per-query buffering phase), then
	// inverted.
	m := ix.Matcher()
	adj := make([]map[graph.NodeID][]graph.NodeID, p.NumEdges())
	for ei, e := range p.Edges {
		adj[ei] = make(map[graph.NodeID][]graph.NodeID)
		for _, y := range g.Extent(labels[e.To]) {
			for _, a := range m.Ancestors(y) {
				if g.LabelOf(a) == labels[e.From] {
					adj[ei][a] = append(adj[ei][a], y)
				}
			}
		}
	}

	// Bottom-up pruning: a candidate for X survives only if every child
	// edge X→Y has at least one surviving child candidate.
	surviving := make([]map[graph.NodeID]bool, p.NumNodes())
	var prune func(node int)
	prune = func(node int) {
		surviving[node] = make(map[graph.NodeID]bool)
		children := p.OutEdges(node)
		for _, ei := range children {
			prune(p.Edges[ei].To)
		}
		for _, x := range g.Extent(labels[node]) {
			ok := true
			for _, ei := range children {
				found := false
				for _, y := range adj[ei][x] {
					if surviving[p.Edges[ei].To][y] {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				surviving[node][x] = true
			}
		}
	}
	prune(root)

	// Top-down enumeration of full matches.
	cols := make([]int, p.NumNodes())
	for i := range cols {
		cols[i] = i
	}
	out := rjoin.NewTable(cols...)
	assign := make([]graph.NodeID, p.NumNodes())

	order := topDownOrder(p, root)
	var rec func(step int)
	rec = func(step int) {
		if step == len(order) {
			row := make([]graph.NodeID, len(assign))
			copy(row, assign)
			out.Rows = append(out.Rows, row)
			return
		}
		node := order[step]
		if node == root {
			for x := range surviving[root] {
				assign[root] = x
				rec(step + 1)
			}
			return
		}
		ei := p.InEdges(node)[0]
		parent := p.Edges[ei].From
		for _, y := range adj[ei][assign[parent]] {
			if surviving[node][y] {
				assign[node] = y
				rec(step + 1)
			}
		}
	}
	rec(0)
	out.SortRows()
	return out, nil
}

// topDownOrder lists pattern nodes root-first so each node's parent is
// assigned before it.
func topDownOrder(p *pattern.Pattern, root int) []int {
	order := []int{root}
	for i := 0; i < len(order); i++ {
		for _, ei := range p.OutEdges(order[i]) {
			order = append(order, p.Edges[ei].To)
		}
	}
	return order
}
