// Package igmj implements the INT-DP baseline of Section 5.2: the IGMJ
// sort-merge R-join of Wang et al. over the multi-interval reachability
// code of Agrawal, Borgida and Jagadish.
//
// Construction: condense strongly connected components to a DAG G′, build a
// spanning forest of G′, assign each component a postorder number, and give
// every component an interval set I(c) — its spanning-tree interval plus
// the (merged) intervals of its non-tree successors, propagated in reverse
// topological order. Then u ⇝ v iff po(comp(v)) stabs I(comp(u)).
//
// For each label X, the index persists through the storage engine:
//
//	Xlist: one (s, e, x) entry per interval of each x ∈ ext(X),
//	       sorted by s ascending then e descending;
//	Ylist: one (po, y) entry per y ∈ ext(X), sorted by po ascending.
//
// IGMJ joins a sorted interval list against a sorted postorder list in one
// merge pass. Joining a temporal table requires re-sorting its bound column
// first — the extra cost the paper's Section 5.2 highlights — whereas the
// cluster-based R-join index never sorts.
package igmj

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/rjoin"
	"fastmatch/internal/storage"
)

// Interval is a closed postorder range [S, E].
type Interval struct{ S, E int32 }

// Index is a built multi-interval reachability index.
type Index struct {
	g     *graph.Graph
	scc   *graph.SCC
	po    []int32      // per component: postorder number
	ivals [][]Interval // per component: disjoint intervals, sorted by S

	pool  *storage.BufferPool
	heap  *storage.HeapFile
	xlist map[graph.Label]storage.RID
	ylist map[graph.Label]storage.RID
}

// BuildIndex encodes g and persists the per-label join lists. poolBytes ≤ 0
// selects the default 1 MB buffer pool.
func BuildIndex(g *graph.Graph, poolBytes int) (*Index, error) {
	if poolBytes <= 0 {
		poolBytes = storage.DefaultPoolBytes
	}
	scc := graph.NewSCC(g)
	nc := scc.NumComponents()
	ix := &Index{
		g:     g,
		scc:   scc,
		po:    make([]int32, nc),
		ivals: make([][]Interval, nc),
		pool:  storage.NewBufferPool(storage.NewMemPager(), poolBytes),
		xlist: make(map[graph.Label]storage.RID),
		ylist: make(map[graph.Label]storage.RID),
	}
	ix.heap = storage.NewHeapFile(ix.pool)

	ix.assignPostorder()
	ix.propagateIntervals()
	if err := ix.buildLists(); err != nil {
		return nil, err
	}
	return ix, nil
}

// assignPostorder numbers components by a postorder DFS over a spanning
// forest of the condensation, and records each component's spanning-tree
// interval as its first interval.
func (ix *Index) assignPostorder() {
	nc := ix.scc.NumComponents()
	visited := make([]bool, nc)
	var clock int32
	low := make([]int32, nc)

	var dfs func(c int32)
	dfs = func(c int32) {
		visited[c] = true
		low[c] = clock
		for _, d := range ix.scc.CondSuccessors(c) {
			if !visited[d] {
				dfs(d)
			}
		}
		ix.po[c] = clock
		clock++
		if low[c] > ix.po[c] {
			low[c] = ix.po[c]
		}
		ix.ivals[c] = []Interval{{low[c], ix.po[c]}}
	}
	// Condensation roots first (components with no predecessors).
	for c := int32(0); int(c) < nc; c++ {
		if len(ix.scc.CondPredecessors(c)) == 0 && !visited[c] {
			dfs(c)
		}
	}
	for c := int32(0); int(c) < nc; c++ {
		if !visited[c] {
			dfs(c)
		}
	}
}

// propagateIntervals adds every successor's intervals in reverse
// topological order (component IDs ascending — Tarjan numbers components
// reverse-topologically, so successors have smaller IDs).
func (ix *Index) propagateIntervals() {
	for c := int32(0); int(c) < ix.scc.NumComponents(); c++ {
		merged := ix.ivals[c]
		for _, d := range ix.scc.CondSuccessors(c) {
			merged = append(merged, ix.ivals[d]...)
		}
		ix.ivals[c] = mergeIntervals(merged)
	}
}

// mergeIntervals sorts and coalesces overlapping or adjacent intervals.
func mergeIntervals(in []Interval) []Interval {
	if len(in) <= 1 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i].S < in[j].S })
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.S <= last.E+1 {
			if iv.E > last.E {
				last.E = iv.E
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// xEntry is one Xlist element.
type xEntry struct {
	s, e int32
	node graph.NodeID
}

// yEntry is one Ylist element.
type yEntry struct {
	po   int32
	node graph.NodeID
}

func (ix *Index) buildLists() error {
	for l := graph.Label(0); int(l) < ix.g.Labels().Len(); l++ {
		var xs []xEntry
		var ys []yEntry
		for _, v := range ix.g.Extent(l) {
			c := ix.scc.Comp[v]
			for _, iv := range ix.ivals[c] {
				xs = append(xs, xEntry{iv.S, iv.E, v})
			}
			ys = append(ys, yEntry{ix.po[c], v})
		}
		sortXEntries(xs)
		sort.Slice(ys, func(i, j int) bool { return ys[i].po < ys[j].po })
		xrid, err := ix.heap.Insert(encodeXList(xs))
		if err != nil {
			return err
		}
		yrid, err := ix.heap.Insert(encodeYList(ys))
		if err != nil {
			return err
		}
		ix.xlist[l] = xrid
		ix.ylist[l] = yrid
	}
	return ix.pool.FlushAll()
}

func sortXEntries(xs []xEntry) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].s != xs[j].s {
			return xs[i].s < xs[j].s
		}
		return xs[i].e > xs[j].e
	})
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// IOStats returns the buffer pool counters.
func (ix *Index) IOStats() storage.IOStats { return ix.pool.Stats() }

// ResetIOStats zeroes the counters.
func (ix *Index) ResetIOStats() { ix.pool.ResetStats() }

// Intervals returns the interval set of v's component (aliases storage).
func (ix *Index) Intervals(v graph.NodeID) []Interval { return ix.ivals[ix.scc.Comp[v]] }

// Postorder returns po(comp(v)).
func (ix *Index) Postorder(v graph.NodeID) int32 { return ix.po[ix.scc.Comp[v]] }

// Reaches reports u ⇝ v by stabbing u's intervals with v's postorder.
func (ix *Index) Reaches(u, v graph.NodeID) bool {
	if ix.scc.Comp[u] == ix.scc.Comp[v] {
		return true
	}
	return stab(ix.ivals[ix.scc.Comp[u]], ix.po[ix.scc.Comp[v]])
}

func stab(ivals []Interval, po int32) bool {
	lo, hi := 0, len(ivals)
	for lo < hi {
		mid := (lo + hi) / 2
		if ivals[mid].E < po {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ivals) && ivals[lo].S <= po
}

// eHeap is a min-heap of active x entries ordered by interval end.
type eHeap []xEntry

func (h eHeap) Len() int            { return len(h) }
func (h eHeap) Less(i, j int) bool  { return h[i].e < h[j].e }
func (h eHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eHeap) Push(x interface{}) { *h = append(*h, x.(xEntry)) }
func (h *eHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mergeJoin is the IGMJ single-scan merge of a sorted interval list against
// a sorted postorder list, emitting every (x, y) with po(y) inside an
// interval of x.
func mergeJoin(xs []xEntry, ys []yEntry, emit func(x, y graph.NodeID)) {
	var active eHeap
	i := 0
	for _, ye := range ys {
		for i < len(xs) && xs[i].s <= ye.po {
			heap.Push(&active, xs[i])
			i++
		}
		for active.Len() > 0 && active[0].e < ye.po {
			heap.Pop(&active)
		}
		for _, xe := range active {
			emit(xe.node, ye.node)
		}
	}
}

// Join computes the base-table R-join T_X ⋈_{X→Y} T_Y with IGMJ, reading
// both persisted lists through the buffer pool.
func (ix *Index) Join(c rjoin.Cond) (*rjoin.Table, error) {
	xs, err := ix.readXList(c.FromLabel)
	if err != nil {
		return nil, err
	}
	ys, err := ix.readYList(c.ToLabel)
	if err != nil {
		return nil, err
	}
	out := rjoin.NewTable(c.FromNode, c.ToNode)
	mergeJoin(xs, ys, func(x, y graph.NodeID) {
		out.Rows = append(out.Rows, []graph.NodeID{x, y})
	})
	return out, nil
}

// JoinTemporal joins a temporal table against a base table. The temporal
// side's distinct bound values must be extracted and sorted first — IGMJ's
// per-join sorting cost.
func (ix *Index) JoinTemporal(t *rjoin.Table, c rjoin.Cond) (*rjoin.Table, error) {
	hasFrom, hasTo := t.HasCol(c.FromNode), t.HasCol(c.ToNode)
	switch {
	case hasFrom && hasTo:
		return ix.selection(t, c)
	case hasFrom:
		return ix.joinForward(t, c)
	case hasTo:
		return ix.joinReverse(t, c)
	default:
		return nil, fmt.Errorf("igmj: condition %v has no side bound in %v", c, t.Cols)
	}
}

func (ix *Index) joinForward(t *rjoin.Table, c rjoin.Cond) (*rjoin.Table, error) {
	col := t.ColIndex(c.FromNode)
	rowsByX := make(map[graph.NodeID][]int)
	for ri, row := range t.Rows {
		rowsByX[row[col]] = append(rowsByX[row[col]], ri)
	}
	// Build and sort the temporal interval list (the resorting step).
	var xs []xEntry
	for x := range rowsByX {
		for _, iv := range ix.Intervals(x) {
			xs = append(xs, xEntry{iv.S, iv.E, x})
		}
	}
	sortXEntries(xs)
	ys, err := ix.readYList(c.ToLabel)
	if err != nil {
		return nil, err
	}
	out := rjoin.NewTable(append(append([]int(nil), t.Cols...), c.ToNode)...)
	mergeJoin(xs, ys, func(x, y graph.NodeID) {
		for _, ri := range rowsByX[x] {
			row := t.Rows[ri]
			nr := make([]graph.NodeID, len(row)+1)
			copy(nr, row)
			nr[len(row)] = y
			out.Rows = append(out.Rows, nr)
		}
	})
	return out, nil
}

func (ix *Index) joinReverse(t *rjoin.Table, c rjoin.Cond) (*rjoin.Table, error) {
	col := t.ColIndex(c.ToNode)
	rowsByY := make(map[graph.NodeID][]int)
	for ri, row := range t.Rows {
		rowsByY[row[col]] = append(rowsByY[row[col]], ri)
	}
	var ys []yEntry
	for y := range rowsByY {
		ys = append(ys, yEntry{ix.Postorder(y), y})
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i].po < ys[j].po })
	xs, err := ix.readXList(c.FromLabel)
	if err != nil {
		return nil, err
	}
	out := rjoin.NewTable(append(append([]int(nil), t.Cols...), c.FromNode)...)
	mergeJoin(xs, ys, func(x, y graph.NodeID) {
		for _, ri := range rowsByY[y] {
			row := t.Rows[ri]
			nr := make([]graph.NodeID, len(row)+1)
			copy(nr, row)
			nr[len(row)] = x
			out.Rows = append(out.Rows, nr)
		}
	})
	return out, nil
}

func (ix *Index) selection(t *rjoin.Table, c rjoin.Cond) (*rjoin.Table, error) {
	fi, ti := t.ColIndex(c.FromNode), t.ColIndex(c.ToNode)
	out := rjoin.NewTable(t.Cols...)
	for _, row := range t.Rows {
		if ix.Reaches(row[fi], row[ti]) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Run executes a DP plan (R-joins and selections only) with IGMJ operators:
// the INT-DP strategy of Section 6. Plans containing semijoin or fetch
// steps are rejected — IGMJ has no filter/fetch decomposition.
func Run(ix *Index, plan *optimizer.Plan) (*rjoin.Table, error) {
	var t *rjoin.Table
	for si, s := range plan.Steps {
		var err error
		switch s.Kind {
		case optimizer.StepHPSJ:
			if t != nil {
				return nil, fmt.Errorf("igmj: step %d: join of two base tables mid-plan", si+1)
			}
			t, err = ix.Join(plan.Binding.Conds[s.Edges[0]])
		case optimizer.StepJoinFilterFetch:
			if t == nil {
				return nil, fmt.Errorf("igmj: step %d without temporal table", si+1)
			}
			t, err = ix.JoinTemporal(t, plan.Binding.Conds[s.Edges[0]])
		case optimizer.StepSelection:
			if t == nil {
				return nil, fmt.Errorf("igmj: step %d without temporal table", si+1)
			}
			t, err = ix.selection(t, plan.Binding.Conds[s.Edges[0]])
		default:
			return nil, fmt.Errorf("igmj: unsupported step kind %v (INT-DP runs DP plans only)", s.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("igmj: step %d: %w", si+1, err)
		}
		// Materialise through storage — INT-DP's temporal tables are
		// disk-resident too (same accounting as the R-join engine).
		if err := ix.spill(t); err != nil {
			return nil, fmt.Errorf("igmj: step %d: spill: %w", si+1, err)
		}
	}
	if t == nil {
		return nil, fmt.Errorf("igmj: empty plan")
	}
	nodes := make([]int, plan.Binding.Pattern.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return t.Project(nodes)
}

// spill round-trips a temporal table through the heap (see exec's spill).
func (ix *Index) spill(t *rjoin.Table) error {
	if t == nil || len(t.Rows) == 0 {
		return nil
	}
	rid, err := ix.heap.Insert(t.EncodeRows())
	if err != nil {
		return err
	}
	data, err := ix.heap.Read(rid)
	if err != nil {
		return err
	}
	return t.DecodeRows(data)
}

// List persistence: flat records of fixed-width entries.

func encodeXList(xs []xEntry) []byte {
	b := make([]byte, 4+12*len(xs))
	binary.LittleEndian.PutUint32(b, uint32(len(xs)))
	for i, e := range xs {
		o := 4 + 12*i
		binary.LittleEndian.PutUint32(b[o:], uint32(e.s))
		binary.LittleEndian.PutUint32(b[o+4:], uint32(e.e))
		binary.LittleEndian.PutUint32(b[o+8:], uint32(e.node))
	}
	return b
}

func (ix *Index) readXList(l graph.Label) ([]xEntry, error) {
	rid, ok := ix.xlist[l]
	if !ok {
		return nil, nil
	}
	b, err := ix.heap.Read(rid)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(b)
	out := make([]xEntry, n)
	for i := range out {
		o := 4 + 12*i
		out[i] = xEntry{
			s:    int32(binary.LittleEndian.Uint32(b[o:])),
			e:    int32(binary.LittleEndian.Uint32(b[o+4:])),
			node: graph.NodeID(binary.LittleEndian.Uint32(b[o+8:])),
		}
	}
	return out, nil
}

func encodeYList(ys []yEntry) []byte {
	b := make([]byte, 4+8*len(ys))
	binary.LittleEndian.PutUint32(b, uint32(len(ys)))
	for i, e := range ys {
		o := 4 + 8*i
		binary.LittleEndian.PutUint32(b[o:], uint32(e.po))
		binary.LittleEndian.PutUint32(b[o+4:], uint32(e.node))
	}
	return b
}

func (ix *Index) readYList(l graph.Label) ([]yEntry, error) {
	rid, ok := ix.ylist[l]
	if !ok {
		return nil, nil
	}
	b, err := ix.heap.Read(rid)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(b)
	out := make([]yEntry, n)
	for i := range out {
		o := 4 + 8*i
		out[i] = yEntry{
			po:   int32(binary.LittleEndian.Uint32(b[o:])),
			node: graph.NodeID(binary.LittleEndian.Uint32(b[o+4:])),
		}
	}
	return out, nil
}
