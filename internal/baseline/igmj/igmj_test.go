package igmj

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// randomGraph builds a random digraph (cycles allowed — IGMJ handles them
// via condensation).
func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nlabels; i++ {
		b.Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func TestReachesMatchesBFS(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 35, 70, 3)
		ix, err := BuildIndex(g, 0)
		if err != nil {
			return false
		}
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
				if ix.Reaches(u, v) != graph.Reaches(g, u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalsDisjointSorted(t *testing.T) {
	g := randomGraph(1, 80, 160, 4)
	ix, err := BuildIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		ivals := ix.Intervals(v)
		for i, iv := range ivals {
			if iv.S > iv.E {
				t.Fatalf("node %d interval %d inverted: %+v", v, i, iv)
			}
			if i > 0 && ivals[i-1].E+1 >= iv.S {
				t.Fatalf("node %d intervals overlap or touch: %v", v, ivals)
			}
		}
	}
}

func TestMergeIntervals(t *testing.T) {
	// Overlapping and adjacent ranges coalesce; gaps are kept.
	in := []Interval{{5, 7}, {1, 2}, {3, 4}, {20, 22}, {6, 9}, {12, 12}}
	got := mergeIntervals(in)
	want := []Interval{{1, 9}, {12, 12}, {20, 22}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeIntervals = %v, want %v", got, want)
	}
	if out := mergeIntervals(nil); len(out) != 0 {
		t.Fatal("empty merge should be empty")
	}
}

// TestJoinMatchesTruth: the IGMJ base-table join equals BFS ground truth.
func TestJoinMatchesTruth(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed^0xBEE, 35, 70, 3)
		ix, err := BuildIndex(g, 0)
		if err != nil {
			return false
		}
		for x := graph.Label(0); int(x) < g.Labels().Len(); x++ {
			for y := graph.Label(0); int(y) < g.Labels().Len(); y++ {
				if x == y {
					continue
				}
				got, err := ix.Join(rjoin.Cond{FromNode: 0, ToNode: 1, FromLabel: x, ToLabel: y})
				if err != nil {
					return false
				}
				seen := map[[2]graph.NodeID]bool{}
				for _, r := range got.Rows {
					p := [2]graph.NodeID{r[0], r[1]}
					if seen[p] {
						return false // duplicate pair
					}
					seen[p] = true
				}
				for _, u := range g.Extent(x) {
					for _, v := range g.Extent(y) {
						if seen[[2]graph.NodeID{u, v}] != graph.Reaches(g, u, v) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// buildBoth builds a gdb database (for DP planning) and an IGMJ index over
// the same graph.
func buildBoth(t testing.TB, g *graph.Graph) (*gdb.DB, *Index) {
	t.Helper()
	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ix, err := BuildIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return db, ix
}

// sparseGraph builds block trees with even→odd cross links (bounded
// reachability) for plan-execution tests.
func sparseGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nlabels; i++ {
		b.Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	const block = 40
	nBlocks := (n + block - 1) / block
	for i := 0; i < n; i++ {
		start := (i / block) * block
		if i == start {
			continue
		}
		b.AddEdge(graph.NodeID(start+rng.Intn(i-start)), graph.NodeID(i))
	}
	for i := 0; i < m-n && nBlocks > 1; i++ {
		eb := rng.Intn((nBlocks+1)/2) * 2
		ob := rng.Intn(nBlocks/2)*2 + 1
		u := eb*block + rng.Intn(block)
		v := ob*block + rng.Intn(block)
		if u < n && v < n {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Build()
}

var intdpPatterns = []string{
	"A->B",
	"A->B; B->C",
	"A->C; B->C",
	"A->B; B->C; A->C",
	"A->C; B->C; C->D; D->E",
}

// TestRunMatchesNaive: INT-DP (DP plan + IGMJ operators) equals the naive
// matcher and the DP/R-join engine.
func TestRunMatchesNaive(t *testing.T) {
	g := sparseGraph(7, 200, 260, 5)
	db, ix := buildBoth(t, g)
	snap, release := db.Pin()
	defer release()
	for _, ps := range intdpPatterns {
		p := pattern.MustParse(ps)
		bind, err := optimizer.Bind(snap, p)
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		// IGMJ executes binary R-join plans only; keep WCOJ steps out.
		igmjParams := optimizer.DefaultCostParams()
		igmjParams.NoWCOJ = true
		plan, err := optimizer.OptimizeDP(bind, igmjParams)
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		got, err := Run(ix, plan)
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		want, err := exec.NaiveMatch(g, p)
		if err != nil {
			t.Fatal(err)
		}
		got.SortRows()
		want.SortRows()
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("%s: INT-DP %d rows != naive %d rows", ps, got.Len(), want.Len())
		}
	}
}

func TestRunRejectsDPSPlans(t *testing.T) {
	g := sparseGraph(8, 120, 150, 5)
	db, ix := buildBoth(t, g)
	snap, release := db.Pin()
	defer release()
	bind, err := optimizer.Bind(snap, pattern.MustParse("A->C; B->C"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := optimizer.OptimizeDPS(bind, optimizer.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	hasSemi := false
	for _, s := range plan.Steps {
		if s.Kind == optimizer.StepSemijoinGroup {
			hasSemi = true
		}
	}
	if !hasSemi {
		t.Skip("DPS plan happens to contain no semijoin steps")
	}
	if _, err := Run(ix, plan); err == nil {
		t.Fatal("expected error running DPS plan with IGMJ")
	}
}

func TestIOCounted(t *testing.T) {
	g := sparseGraph(9, 200, 260, 5)
	_, ix := buildBoth(t, g)
	ix.ResetIOStats()
	if _, err := ix.Join(rjoin.Cond{FromNode: 0, ToNode: 1,
		FromLabel: g.Labels().Lookup("A"), ToLabel: g.Labels().Lookup("B")}); err != nil {
		t.Fatal(err)
	}
	if ix.IOStats().Logical() == 0 {
		t.Fatal("IGMJ join should read lists through the pool")
	}
}

func TestStab(t *testing.T) {
	ivals := []Interval{{1, 3}, {6, 8}, {10, 10}}
	cases := map[int32]bool{0: false, 1: true, 3: true, 4: false, 6: true, 8: true, 9: false, 10: true, 11: false}
	for po, want := range cases {
		if stab(ivals, po) != want {
			t.Fatalf("stab(%d) = %v, want %v", po, !want, want)
		}
	}
	if stab(nil, 5) {
		t.Fatal("stab on empty intervals should be false")
	}
}

func BenchmarkIGMJJoin(b *testing.B) {
	g := sparseGraph(10, 3000, 3900, 5)
	ix, err := BuildIndex(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	c := rjoin.Cond{FromNode: 0, ToNode: 1,
		FromLabel: g.Labels().Lookup("A"), ToLabel: g.Labels().Lookup("B")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Join(c); err != nil {
			b.Fatal(err)
		}
	}
}

// TestJoinTemporalForward: joining a temporal table on the From side (the
// resort-then-merge path) agrees with per-row reachability.
func TestJoinTemporalForward(t *testing.T) {
	g := sparseGraph(11, 200, 260, 5)
	ix, err := BuildIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	al := g.Labels().Lookup("A")
	bl := g.Labels().Lookup("B")
	tbl := rjoin.NewTable(0)
	for i, x := range g.Extent(al) {
		if i%2 == 0 { // a strict subset, so the resort path differs from Join
			tbl.Rows = append(tbl.Rows, []graph.NodeID{x})
		}
	}
	got, err := ix.JoinTemporal(tbl, rjoin.Cond{FromNode: 0, ToNode: 1, FromLabel: al, ToLabel: bl})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]graph.NodeID]bool{}
	for _, r := range got.Rows {
		seen[[2]graph.NodeID{r[0], r[1]}] = true
	}
	for _, row := range tbl.Rows {
		for _, y := range g.Extent(bl) {
			if seen[[2]graph.NodeID{row[0], y}] != graph.Reaches(g, row[0], y) {
				t.Fatalf("forward temporal join wrong for (%d,%d)", row[0], y)
			}
		}
	}
	if ix.Graph() != g {
		t.Fatal("Graph accessor wrong")
	}
	// No side bound → error.
	if _, err := ix.JoinTemporal(rjoin.NewTable(7), rjoin.Cond{FromNode: 0, ToNode: 1, FromLabel: al, ToLabel: bl}); err == nil {
		t.Fatal("expected error for unbound condition")
	}
}

// TestJoinTemporalReverse: joining on the To side (postorder resort path).
func TestJoinTemporalReverse(t *testing.T) {
	g := sparseGraph(12, 200, 260, 5)
	ix, err := BuildIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	al := g.Labels().Lookup("A")
	bl := g.Labels().Lookup("B")
	tbl := rjoin.NewTable(1)
	for i, y := range g.Extent(bl) {
		if i%3 == 0 {
			tbl.Rows = append(tbl.Rows, []graph.NodeID{y})
		}
	}
	got, err := ix.JoinTemporal(tbl, rjoin.Cond{FromNode: 0, ToNode: 1, FromLabel: al, ToLabel: bl})
	if err != nil {
		t.Fatal(err)
	}
	// Columns are [to, from] after a reverse join.
	seen := map[[2]graph.NodeID]bool{}
	for _, r := range got.Rows {
		seen[[2]graph.NodeID{r[1], r[0]}] = true
	}
	for _, row := range tbl.Rows {
		for _, x := range g.Extent(al) {
			if seen[[2]graph.NodeID{x, row[0]}] != graph.Reaches(g, x, row[0]) {
				t.Fatalf("reverse temporal join wrong for (%d,%d)", x, row[0])
			}
		}
	}
}
