package pll_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pll"
	"fastmatch/internal/reach"
)

func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	labels := make([]graph.Label, nlabels)
	for i := range labels {
		labels[i] = b.Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddNodeLabel(labels[rng.Intn(nlabels)])
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func chainGraph(n int) *graph.Graph {
	b := graph.NewBuilder()
	l := b.Intern("A")
	for i := 0; i < n; i++ {
		b.AddNodeLabel(l)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

// bfsClosure computes the full reachability closure by BFS from every node.
func bfsClosure(g *graph.Graph) [][]bool {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		seen[s] = true
		queue := []graph.NodeID{graph.NodeID(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Successors(u) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		reach[s] = seen
	}
	return reach
}

// TestVerifyAgainstBFS: Reaches agrees with BFS truth on every pair, on
// cyclic random graphs, a DAG-ish sparse graph, and a chain.
func TestVerifyAgainstBFS(t *testing.T) {
	graphs := []*graph.Graph{
		randomGraph(1, 120, 360, 3), // cycle-heavy
		randomGraph(2, 150, 170, 4), // sparse
		chainGraph(40),
	}
	for gi, g := range graphs {
		idx := pll.Compute(g, reach.Options{})
		if err := idx.Verify(); err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		truth := bfsClosure(g)
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if got := idx.Reaches(graph.NodeID(u), graph.NodeID(v)); got != truth[u][v] {
					t.Fatalf("graph %d: Reaches(%d,%d)=%v, BFS %v", gi, u, v, got, truth[u][v])
				}
			}
		}
	}
}

// TestLabelMinimality spot-checks the pruned-BFS invariant: a compact
// entry c ∈ In(v) survives pruning only when no strictly higher-ranked
// vertex h lies between them (c ⇝ h ⇝ v, h ≠ c) — such an h was labeled
// first and its labels would have pruned c's BFS at v. Symmetrically for
// Out. In particular the top-ranked vertex's own compact lists are empty.
func TestLabelMinimality(t *testing.T) {
	for _, seed := range []int64{3, 4, 5} {
		g := randomGraph(seed, 60, 150, 3)
		idx := pll.Compute(g, reach.Options{})
		truth := bfsClosure(g)

		// Recompute the build's degree rank: (din+1)(dout+1) desc, id asc.
		n := g.NumNodes()
		rank := make([]int, n)
		{
			order := make([]graph.NodeID, 0, n)
			for v := 0; v < n; v++ {
				order = append(order, graph.NodeID(v))
			}
			score := func(v graph.NodeID) int64 {
				return int64(g.InDegree(v)+1) * int64(g.OutDegree(v)+1)
			}
			for i := 1; i < len(order); i++ { // insertion sort, stable
				for j := i; j > 0 && score(order[j]) > score(order[j-1]); j-- {
					order[j], order[j-1] = order[j-1], order[j]
				}
			}
			for r, v := range order {
				rank[v] = r
			}
		}

		for v := 0; v < n; v++ {
			for _, c := range idx.In(graph.NodeID(v)) {
				if !truth[c][v] {
					t.Fatalf("seed %d: unsound entry %d ∈ In(%d)", seed, c, v)
				}
				for h := 0; h < n; h++ {
					if h != int(c) && rank[h] < rank[c] && truth[c][h] && truth[h][v] {
						t.Fatalf("seed %d: redundant entry %d ∈ In(%d): higher-ranked %d between", seed, c, v, h)
					}
				}
			}
			for _, c := range idx.Out(graph.NodeID(v)) {
				if !truth[v][c] {
					t.Fatalf("seed %d: unsound entry %d ∈ Out(%d)", seed, c, v)
				}
				for h := 0; h < n; h++ {
					if h != int(c) && rank[h] < rank[c] && truth[v][h] && truth[h][c] {
						t.Fatalf("seed %d: redundant entry %d ∈ Out(%d): higher-ranked %d between", seed, c, v, h)
					}
				}
			}
		}

		// The top-ranked vertex is labeled first: nothing can prune it, and
		// nothing else may appear in its compact lists.
		top := 0
		for v := 1; v < n; v++ {
			if rank[v] < rank[top] {
				top = v
			}
		}
		if len(idx.In(graph.NodeID(top)))+len(idx.Out(graph.NodeID(top))) != 0 {
			t.Fatalf("seed %d: top-ranked vertex %d has non-empty compact labels In=%v Out=%v",
				seed, top, idx.In(graph.NodeID(top)), idx.Out(graph.NodeID(top)))
		}
	}
}

// TestDeterministicAcrossParallelism: at every parallelism degree the
// build is deterministic (two builds agree entry for entry), and every
// degree answers Reaches identically to the serial build.
func TestDeterministicAcrossParallelism(t *testing.T) {
	g := randomGraph(6, 200, 600, 3)
	serial := pll.Compute(g, reach.Options{})
	for _, workers := range []int{1, 2, 3, 4, 8} {
		a := pll.Compute(g, reach.Options{Parallelism: workers})
		b := pll.Compute(g, reach.Options{Parallelism: workers})
		for v := 0; v < g.NumNodes(); v++ {
			if !reflect.DeepEqual(a.In(graph.NodeID(v)), b.In(graph.NodeID(v))) ||
				!reflect.DeepEqual(a.Out(graph.NodeID(v)), b.Out(graph.NodeID(v))) {
				t.Fatalf("workers=%d: two builds disagree at node %d", workers, v)
			}
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for u := 0; u < g.NumNodes(); u += 3 {
			for v := 0; v < g.NumNodes(); v += 3 {
				if a.Reaches(graph.NodeID(u), graph.NodeID(v)) != serial.Reaches(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("workers=%d: Reaches(%d,%d) differs from serial", workers, u, v)
				}
			}
		}
	}
}

// TestStats checks the derived statistics against directly computed values.
func TestStats(t *testing.T) {
	g := chainGraph(10)
	idx := pll.Compute(g, reach.Options{})
	st := idx.Stats()
	if st.Backend != pll.BackendName {
		t.Fatalf("Backend = %q", st.Backend)
	}
	if st.Nodes != 10 || st.Edges != 9 {
		t.Fatalf("|V|=%d |E|=%d", st.Nodes, st.Edges)
	}
	if st.Components != 10 {
		t.Fatalf("chain has 10 trivial SCCs, got %d", st.Components)
	}
	size := 0
	maxIn, maxOut := 0, 0
	for v := 0; v < 10; v++ {
		size += len(idx.In(graph.NodeID(v))) + len(idx.Out(graph.NodeID(v)))
		maxIn = max(maxIn, len(idx.In(graph.NodeID(v))))
		maxOut = max(maxOut, len(idx.Out(graph.NodeID(v))))
	}
	if st.Size != size || st.Size != idx.Size() {
		t.Fatalf("Size=%d, recounted %d, idx.Size %d", st.Size, size, idx.Size())
	}
	if st.MaxIn != maxIn || st.MaxOut != maxOut {
		t.Fatalf("MaxIn/MaxOut = %d/%d, recounted %d/%d", st.MaxIn, st.MaxOut, maxIn, maxOut)
	}
	if st.Ratio != float64(size)/10 {
		t.Fatalf("Ratio = %v", st.Ratio)
	}
	if st.String() == "" {
		t.Fatal("empty Stats string")
	}
}

// TestRegistered: the package registers itself under "pll" and the
// registry round-trips Build/Dynamic through the interface.
func TestRegistered(t *testing.T) {
	b, err := reach.Lookup(pll.BackendName)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != pll.BackendName {
		t.Fatalf("Name = %q", b.Name())
	}
	g := chainGraph(6)
	idx := b.Build(g, reach.Options{})
	if idx.Backend() != pll.BackendName {
		t.Fatalf("Backend = %q", idx.Backend())
	}
	dyn := b.Dynamic(idx)
	if !dyn.Reaches(0, 5) || dyn.Reaches(5, 0) {
		t.Fatal("dynamic wrapper answers wrong")
	}
	dyn.InsertEdge(5, 0)
	if !dyn.Reaches(5, 0) {
		t.Fatal("insert through dynamic wrapper lost")
	}
}

// TestPersistOpenPersistByteStable: a gdb database built on the PLL
// backend persists, reopens under the same backend (recorded in the
// manifest), and re-persists byte-identically — page file and manifest.
func TestPersistOpenPersistByteStable(t *testing.T) {
	g := randomGraph(7, 150, 400, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "pll.fdb")

	db, err := gdb.Build(g, gdb.Options{Path: path, ReachIndex: pll.BackendName})
	if err != nil {
		t.Fatal(err)
	}
	if db.ReachBackend() != pll.BackendName {
		t.Fatalf("built backend = %q", db.ReachBackend())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	page1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	man1, err := os.ReadFile(path + ".manifest")
	if err != nil {
		t.Fatal(err)
	}

	re, err := gdb.Open(path, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.ReachBackend() != pll.BackendName {
		t.Fatalf("reopened backend = %q", re.ReachBackend())
	}
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	page2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	man2, err := os.ReadFile(path + ".manifest")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(page1, page2) {
		t.Fatal("page file changed across persist→open→persist")
	}
	if !reflect.DeepEqual(man1, man2) {
		t.Fatalf("manifest changed across persist→open→persist:\n%s\nvs\n%s", man1, man2)
	}

	// Opening under a mismatching explicit backend must refuse.
	if _, err := gdb.Open(path, gdb.Options{ReachIndex: "twohop"}); err == nil {
		t.Fatal("open with mismatching -reach-index should fail")
	}
}
