// Package pll implements pruned-landmark labeling (PLL) over the raw
// digraph — the Akiba-style alternative reachability backend ("pll") from
// the Zhang/Bonifati/Özsu survey (PAPERS.md), registered with the reach
// registry at init.
//
// Where the twohop backend condenses strongly connected components first
// and labels component representatives, PLL labels the vertices of the
// graph directly, in degree-rank order: vertices are ranked by
// (in-degree+1)·(out-degree+1) descending (ties broken by ascending node
// ID, so the order — and with it the labeling — is deterministic), and
// each vertex in turn runs a forward and a backward pruned BFS through
// reach.PrunedLabeling, the same labeling core the twohop backend uses.
// Correctness on cyclic digraphs follows the standard landmark argument:
// for any u ⇝ v, the highest-ranked vertex w on a u→v path was not pruned
// away when it was processed — any label pair that could have pruned the
// BFS at u or v would itself certify w ∈ out(u) resp. w ∈ in(v) — so
// out(u) ∩ in(v) ∋ w.
//
// Skipping the condensation trades index size on cycle-heavy graphs (every
// member of an SCC carries its own labels) for a simpler build with no SCC
// pass and per-vertex granularity; BENCH_reach.json records how the
// trade-off lands per dataset. The labels follow the same compact
// convention as every backend: the node itself is removed, full codes add
// it back, and Reaches applies the convention.
package pll

import (
	"runtime"
	"slices"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
)

// BackendName is the name this package registers with the reach registry.
const BackendName = "pll"

// Index is a computed PLL labeling for a graph. It is immutable after
// Compute and safe for concurrent readers. It implements reach.Index.
type Index struct {
	g *graph.Graph

	// in[v] / out[v]: compact per-node landmark lists, sorted ascending by
	// NodeID, excluding v itself.
	in  [][]graph.NodeID
	out [][]graph.NodeID

	size int // Σ_v |in(v)| + |out(v)| (compact entries)
}

// Compute builds a PLL labeling for g. opt.Parallelism follows the same
// convention as the twohop backend: ≤ 1 serial, n > 1 workers, < 0
// GOMAXPROCS; the labeling is deterministic for a fixed (graph, workers)
// pair.
func Compute(g *graph.Graph, opt reach.Options) *Index {
	n := g.NumNodes()
	order, rank := degreeOrder(g)

	workers := opt.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rawIn, rawOut := reach.PrunedLabeling(n, g.Successors, g.Predecessors, order, rank, workers)

	idx := &Index{
		g:   g,
		in:  make([][]graph.NodeID, n),
		out: make([][]graph.NodeID, n),
	}
	// Materialise compact lists: drop the vertex itself (PrunedLabeling
	// always assigns v to its own labels), sort ascending.
	for v := 0; v < n; v++ {
		idx.in[v] = compactList(rawIn[v], graph.NodeID(v))
		idx.out[v] = compactList(rawOut[v], graph.NodeID(v))
		idx.size += len(idx.in[v]) + len(idx.out[v])
	}
	return idx
}

// degreeOrder ranks vertices by (in-degree+1)·(out-degree+1) descending,
// stable by ascending node ID.
func degreeOrder(g *graph.Graph) (order []graph.NodeID, rank []int32) {
	n := g.NumNodes()
	order = make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	score := make([]int64, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		score[v] = int64(g.InDegree(v)+1) * int64(g.OutDegree(v)+1)
	}
	slices.SortStableFunc(order, func(a, b graph.NodeID) int {
		switch {
		case score[a] > score[b]:
			return -1
		case score[a] < score[b]:
			return 1
		default:
			return 0
		}
	})
	rank = make([]int32, n)
	for r, v := range order {
		rank[v] = int32(r)
	}
	return order, rank
}

// compactList drops self and sorts ascending.
func compactList(l []graph.NodeID, self graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(l))
	for _, w := range l {
		if w == self {
			continue
		}
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}

// Backend returns the registered backend name, "pll".
func (x *Index) Backend() string { return BackendName }

// Graph returns the graph this index labels.
func (x *Index) Graph() *graph.Graph { return x.g }

// In returns the compact L_in(v), sorted ascending, excluding v. The
// slice aliases internal storage.
func (x *Index) In(v graph.NodeID) []graph.NodeID { return x.in[v] }

// Out returns the compact L_out(v), sorted ascending, excluding v. The
// slice aliases internal storage.
func (x *Index) Out(v graph.NodeID) []graph.NodeID { return x.out[v] }

// Size returns the labeling size |H| counting compact entries.
func (x *Index) Size() int { return x.size }

// Reaches reports u ⇝ v using the full graph codes
// out(u) = Out(u) ∪ {u}, in(v) = In(v) ∪ {v}.
func (x *Index) Reaches(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	if intersectSorted(x.out[u], x.in[v]) {
		return true
	}
	if containsSorted(x.in[v], u) {
		return true
	}
	return containsSorted(x.out[u], v)
}

func intersectSorted(a, b []graph.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func containsSorted(a []graph.NodeID, v graph.NodeID) bool {
	_, found := slices.BinarySearch(a, v)
	return found
}

// Stats computes summary statistics. The SCC count is recomputed on
// demand — the build itself never condenses.
func (x *Index) Stats() reach.Stats {
	s := reach.Stats{
		Backend:    BackendName,
		Nodes:      x.g.NumNodes(),
		Edges:      x.g.NumEdges(),
		Components: graph.NewSCC(x.g).NumComponents(),
		Size:       x.size,
	}
	if s.Nodes > 0 {
		s.Ratio = float64(s.Size) / float64(s.Nodes)
	}
	for v := range x.in {
		if len(x.in[v]) > s.MaxIn {
			s.MaxIn = len(x.in[v])
		}
		if len(x.out[v]) > s.MaxOut {
			s.MaxOut = len(x.out[v])
		}
	}
	return s
}

// Verify exhaustively checks the labeling against BFS reachability on
// every node pair.
func (x *Index) Verify() error { return reach.VerifyIndex(x) }

// backend adapts this package to the reach.Backend interface.
type backend struct{}

func init() { reach.Register(backend{}) }

func (backend) Name() string { return BackendName }

func (backend) Build(g *graph.Graph, opt reach.Options) reach.Index { return Compute(g, opt) }

func (backend) Dynamic(idx reach.Index) reach.Dynamic { return reach.NewIncremental(idx) }

func (backend) DynamicFromLabels(g *graph.Graph, in, out [][]graph.NodeID) reach.Dynamic {
	return reach.NewIncrementalFromLabels(g, in, out)
}
