package twohop

import (
	"slices"

	"fastmatch/internal/graph"
)

// Incremental maintains a 2-hop reachability labeling under edge
// insertions — the 2-hop cover update problem the paper cites as [24]
// (Schenkel et al., ICDE'05). It seeds from a computed Cover and keeps the
// invariant that u ⇝ v iff out(u) ∩ in(v) ≠ ∅ (with the compact self
// convention) after every InsertEdge.
//
// The update strategy for a new edge (u, v) follows the classic
// center-insertion argument: every newly reachable pair (x, y) decomposes
// as x ⇝ u → v ⇝ y, so electing u as a center and adding
//
//	u ∈ out(x) for every x with x ⇝ u
//	u ∈ in(y)  for every y with v ⇝ y
//
// restores the cover. If v ⇝ u held before the insertion the labeling is
// already complete (the edge closes a cycle whose pairs were reachable),
// and membership checks skip entries that already exist, so repeated or
// redundant insertions are cheap.
//
// Deletions are out of scope, as in [24]'s incremental part: they require
// recomputation in general.
type Incremental struct {
	fwd, rev [][]graph.NodeID
	in, out  [][]graph.NodeID
	size     int
}

// NewIncremental seeds an updatable labeling from a computed cover and its
// graph's adjacency.
func NewIncremental(c *Cover) *Incremental {
	g := c.Graph()
	n := g.NumNodes()
	inc := &Incremental{
		fwd:  make([][]graph.NodeID, n),
		rev:  make([][]graph.NodeID, n),
		in:   make([][]graph.NodeID, n),
		out:  make([][]graph.NodeID, n),
		size: c.Size(),
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		inc.fwd[v] = append([]graph.NodeID(nil), g.Successors(v)...)
		inc.rev[v] = append([]graph.NodeID(nil), g.Predecessors(v)...)
		inc.in[v] = append([]graph.NodeID(nil), c.In(v)...)
		inc.out[v] = append([]graph.NodeID(nil), c.Out(v)...)
	}
	return inc
}

// NumNodes returns the number of nodes.
func (inc *Incremental) NumNodes() int { return len(inc.fwd) }

// Size returns the current labeling size |H| (compact entries).
func (inc *Incremental) Size() int { return inc.size }

// In returns the compact L_in(v) (sorted; aliases internal storage).
func (inc *Incremental) In(v graph.NodeID) []graph.NodeID { return inc.in[v] }

// Out returns the compact L_out(v) (sorted; aliases internal storage).
func (inc *Incremental) Out(v graph.NodeID) []graph.NodeID { return inc.out[v] }

// Reaches reports u ⇝ v under all insertions so far.
func (inc *Incremental) Reaches(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	if intersectSorted(inc.out[u], inc.in[v]) {
		return true
	}
	if containsSorted(inc.in[v], u) {
		return true
	}
	return containsSorted(inc.out[u], v)
}

// InsertEdge adds the edge u→v and repairs the labeling. It returns the
// number of label entries added (0 when the edge adds no new reachability).
func (inc *Incremental) InsertEdge(u, v graph.NodeID) int {
	alreadyReachable := inc.Reaches(u, v)
	inc.fwd[u] = append(inc.fwd[u], v)
	inc.rev[v] = append(inc.rev[v], u)
	if alreadyReachable {
		return 0 // no new pairs: x ⇝ u ⇝ v ⇝ y held before
	}
	added := 0
	// u becomes a center: into out(x) for all x reaching u…
	for _, x := range inc.bfs(inc.rev, u) {
		if x != u && insertSortedInPlace(&inc.out[x], u) {
			added++
		}
	}
	// …and into in(y) for all y reachable from v.
	for _, y := range inc.bfs(inc.fwd, v) {
		if y != u && insertSortedInPlace(&inc.in[y], u) {
			added++
		}
	}
	inc.size += added
	return added
}

// bfs returns all nodes reachable from start over adj (including start).
func (inc *Incremental) bfs(adj [][]graph.NodeID, start graph.NodeID) []graph.NodeID {
	visited := make(map[graph.NodeID]struct{}, 64)
	visited[start] = struct{}{}
	queue := []graph.NodeID{start}
	for i := 0; i < len(queue); i++ {
		for _, w := range adj[queue[i]] {
			if _, ok := visited[w]; !ok {
				visited[w] = struct{}{}
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// insertSortedInPlace inserts v into the sorted slice if absent, reporting
// whether an insertion happened.
func insertSortedInPlace(s *[]graph.NodeID, v graph.NodeID) bool {
	sl := *s
	i, found := slices.BinarySearch(sl, v)
	if found {
		return false
	}
	sl = append(sl, 0)
	copy(sl[i+1:], sl[i:])
	sl[i] = v
	*s = sl
	return true
}
