package twohop

import (
	"slices"

	"fastmatch/internal/graph"
)

// Incremental maintains a 2-hop reachability labeling under edge
// insertions — the 2-hop cover update problem the paper cites as [24]
// (Schenkel et al., ICDE'05). It seeds from a computed Cover and keeps the
// invariant that u ⇝ v iff out(u) ∩ in(v) ≠ ∅ (with the compact self
// convention) after every InsertEdge.
//
// The update strategy for a new edge (u, v) follows the classic
// center-insertion argument: every newly reachable pair (x, y) decomposes
// as x ⇝ u → v ⇝ y, so electing u as a center and adding
//
//	u ∈ out(x) for every x with x ⇝ u
//	u ∈ in(y)  for every y with v ⇝ y
//
// restores the cover. If v ⇝ u held before the insertion the labeling is
// already complete (the edge closes a cycle whose pairs were reachable),
// and membership checks skip entries that already exist, so repeated or
// redundant insertions are cheap.
//
// Deletions are out of scope, as in [24]'s incremental part: they require
// recomputation in general.
type Incremental struct {
	fwd, rev [][]graph.NodeID
	in, out  [][]graph.NodeID
	size     int
}

// NewIncremental seeds an updatable labeling from a computed cover and its
// graph's adjacency.
func NewIncremental(c *Cover) *Incremental {
	g := c.Graph()
	n := g.NumNodes()
	inc := &Incremental{
		fwd:  make([][]graph.NodeID, n),
		rev:  make([][]graph.NodeID, n),
		in:   make([][]graph.NodeID, n),
		out:  make([][]graph.NodeID, n),
		size: c.Size(),
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		inc.fwd[v] = append([]graph.NodeID(nil), g.Successors(v)...)
		inc.rev[v] = append([]graph.NodeID(nil), g.Predecessors(v)...)
		inc.in[v] = append([]graph.NodeID(nil), c.In(v)...)
		inc.out[v] = append([]graph.NodeID(nil), c.Out(v)...)
	}
	return inc
}

// NewIncrementalFromLabels seeds an updatable labeling from g's adjacency
// and already-materialised compact label lists (sorted ascending, excluding
// the node itself) — the form stored in the graph database's base tables,
// so a reattached database can resume incremental maintenance without the
// original Cover object. The label slices are copied.
func NewIncrementalFromLabels(g *graph.Graph, in, out [][]graph.NodeID) *Incremental {
	n := g.NumNodes()
	if len(in) != n || len(out) != n {
		panic("twohop: NewIncrementalFromLabels: label lists do not match graph size")
	}
	inc := &Incremental{
		fwd: make([][]graph.NodeID, n),
		rev: make([][]graph.NodeID, n),
		in:  make([][]graph.NodeID, n),
		out: make([][]graph.NodeID, n),
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		inc.fwd[v] = append([]graph.NodeID(nil), g.Successors(v)...)
		inc.rev[v] = append([]graph.NodeID(nil), g.Predecessors(v)...)
		inc.in[v] = append([]graph.NodeID(nil), in[v]...)
		inc.out[v] = append([]graph.NodeID(nil), out[v]...)
		inc.size += len(in[v]) + len(out[v])
	}
	return inc
}

// LabelDelta records one label entry added by InsertEdge: Center joined the
// compact L_out(Node) (Out true) or L_in(Node) (Out false). The delta set
// is exactly what an index built on top of the labeling (base-table codes,
// cluster index, W-table) must absorb to stay consistent.
type LabelDelta struct {
	Node   graph.NodeID
	Center graph.NodeID
	Out    bool
}

// NumNodes returns the number of nodes.
func (inc *Incremental) NumNodes() int { return len(inc.fwd) }

// Size returns the current labeling size |H| (compact entries).
func (inc *Incremental) Size() int { return inc.size }

// In returns the compact L_in(v) (sorted; aliases internal storage).
func (inc *Incremental) In(v graph.NodeID) []graph.NodeID { return inc.in[v] }

// Out returns the compact L_out(v) (sorted; aliases internal storage).
func (inc *Incremental) Out(v graph.NodeID) []graph.NodeID { return inc.out[v] }

// Reaches reports u ⇝ v under all insertions so far.
func (inc *Incremental) Reaches(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	if intersectSorted(inc.out[u], inc.in[v]) {
		return true
	}
	if containsSorted(inc.in[v], u) {
		return true
	}
	return containsSorted(inc.out[u], v)
}

// InsertEdge adds the edge u→v and repairs the labeling. It returns the
// label entries added, in deterministic order (out-side entries in BFS
// order from u over predecessors, then in-side entries in BFS order from v
// over successors); nil when the edge adds no new reachability. The count
// of new entries is len of the returned set.
func (inc *Incremental) InsertEdge(u, v graph.NodeID) []LabelDelta {
	alreadyReachable := inc.Reaches(u, v)
	inc.fwd[u] = append(inc.fwd[u], v)
	inc.rev[v] = append(inc.rev[v], u)
	if alreadyReachable {
		return nil // no new pairs: x ⇝ u ⇝ v ⇝ y held before
	}
	var deltas []LabelDelta
	// u becomes a center: into out(x) for all x reaching u…
	for _, x := range inc.bfs(inc.rev, u) {
		if x != u && insertSortedInPlace(&inc.out[x], u) {
			deltas = append(deltas, LabelDelta{Node: x, Center: u, Out: true})
		}
	}
	// …and into in(y) for all y reachable from v.
	for _, y := range inc.bfs(inc.fwd, v) {
		if y != u && insertSortedInPlace(&inc.in[y], u) {
			deltas = append(deltas, LabelDelta{Node: y, Center: u, Out: false})
		}
	}
	inc.size += len(deltas)
	return deltas
}

// bfs returns all nodes reachable from start over adj (including start).
func (inc *Incremental) bfs(adj [][]graph.NodeID, start graph.NodeID) []graph.NodeID {
	visited := make(map[graph.NodeID]struct{}, 64)
	visited[start] = struct{}{}
	queue := []graph.NodeID{start}
	for i := 0; i < len(queue); i++ {
		for _, w := range adj[queue[i]] {
			if _, ok := visited[w]; !ok {
				visited[w] = struct{}{}
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// insertSortedInPlace inserts v into the sorted slice if absent, reporting
// whether an insertion happened.
func insertSortedInPlace(s *[]graph.NodeID, v graph.NodeID) bool {
	sl := *s
	i, found := slices.BinarySearch(sl, v)
	if found {
		return false
	}
	sl = append(sl, 0)
	copy(sl[i+1:], sl[i:])
	sl[i] = v
	*s = sl
	return true
}
