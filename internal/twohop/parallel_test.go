package twohop

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"fastmatch/internal/graph"
)

// parallelDegrees is the worker-count grid the crosscheck suite exercises,
// per the acceptance criteria: serial, 2, and GOMAXPROCS.
func parallelDegrees() []int {
	ds := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		ds = append(ds, p)
	}
	return ds
}

// TestParallelCoverValidAndEquivalent is the core batched-labeling contract:
// at every worker degree the cover passes Verify, answers every Reaches pair
// identically to the serial cover, and stays within the size-inflation
// budget. Run with -race to also check the concurrent phase is data-race
// free.
func TestParallelCoverValidAndEquivalent(t *testing.T) {
	cases := []struct {
		name          string
		seed          int64
		n, m, nlabels int
	}{
		{"sparse", 1, 300, 450, 3},
		{"dense", 2, 200, 1200, 4},
		{"cyclic", 3, 150, 600, 2},
		{"tiny", 4, 8, 12, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := randomGraph(c.seed, c.n, c.m, c.nlabels)
			serial := Compute(g, Options{})
			for _, workers := range parallelDegrees() {
				t.Run(fmt.Sprint(workers), func(t *testing.T) {
					par := Compute(g, Options{Parallelism: workers})
					if err := par.Verify(); err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					for u := 0; u < g.NumNodes(); u++ {
						for v := 0; v < g.NumNodes(); v++ {
							uu, vv := graph.NodeID(u), graph.NodeID(v)
							if got, want := par.Reaches(uu, vv), serial.Reaches(uu, vv); got != want {
								t.Fatalf("workers=%d: Reaches(%d,%d)=%v, serial says %v", workers, u, v, got, want)
							}
						}
					}
					if workers == 1 {
						// Parallelism 1 selects the serial reference path:
						// the labeling must be identical entry for entry.
						if !reflect.DeepEqual(par.in, serial.in) || !reflect.DeepEqual(par.out, serial.out) {
							t.Fatalf("Parallelism=1 cover differs from serial cover")
						}
						if par.size != serial.size {
							t.Fatalf("Parallelism=1 size %d != serial %d", par.size, serial.size)
						}
					}
					if lim := serial.Size() + serial.Size()/6; par.Size() > lim && serial.Size() > 50 {
						t.Errorf("workers=%d: cover size %d exceeds 1.15x serial %d", workers, par.Size(), serial.Size())
					}
				})
			}
		})
	}
}

// TestParallelCoverDeterministic: the batched cover is a pure function of
// (graph, order, workers) — goroutine scheduling must not leak into the
// result.
func TestParallelCoverDeterministic(t *testing.T) {
	g := randomGraph(7, 250, 900, 3)
	for _, workers := range []int{2, 4} {
		a := Compute(g, Options{Parallelism: workers})
		for trial := 0; trial < 3; trial++ {
			b := Compute(g, Options{Parallelism: workers})
			if !reflect.DeepEqual(a.in, b.in) || !reflect.DeepEqual(a.out, b.out) {
				t.Fatalf("workers=%d: two runs produced different covers", workers)
			}
		}
	}
}

// TestParallelChain exercises the deep-graph shape where pruning matters
// most: on a path the serial cover is linear in n, and the batched cover
// must stay close.
func TestParallelChain(t *testing.T) {
	g := chainGraph(200)
	serial := Compute(g, Options{})
	for _, workers := range parallelDegrees() {
		par := Compute(g, Options{Parallelism: workers})
		if err := par.Verify(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if lim := serial.Size() * 2; par.Size() > lim {
			t.Errorf("workers=%d: chain cover %d vs serial %d", workers, par.Size(), serial.Size())
		}
	}
}

// TestBuildWorkers pins the Parallelism resolution rules.
func TestBuildWorkers(t *testing.T) {
	if got := buildWorkers(0); got != 1 {
		t.Fatalf("buildWorkers(0) = %d", got)
	}
	if got := buildWorkers(1); got != 1 {
		t.Fatalf("buildWorkers(1) = %d", got)
	}
	if got := buildWorkers(5); got != 5 {
		t.Fatalf("buildWorkers(5) = %d", got)
	}
	if got := buildWorkers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("buildWorkers(-1) = %d", got)
	}
}
