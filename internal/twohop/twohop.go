// Package twohop computes 2-hop reachability covers and labelings for
// directed graphs (Cohen et al., SODA'02; the paper's reference [17]),
// playing the role of the fast 2-hop computation of the authors' EDBT'06
// algorithm (reference [15]). It is the default reach.Index backend
// ("twohop"), registered with the reach registry at init.
//
// A 2-hop cover H = {S(U_w, w, V_w), ...} assigns every node v a label
// L(v) = (L_in(v), L_out(v)) such that u ⇝ v iff L_out(u) ∩ L_in(v) ≠ ∅,
// where the label entries are *centers* w: w ∈ L_out(u) means u ⇝ w, and
// w ∈ L_in(v) means w ⇝ v.
//
// We compute the cover with pruned landmark labeling over the strongly-
// connected-component condensation: components are processed as landmark
// centers in a configurable rank order; a forward (backward) pruned BFS from
// center w adds w to L_in (L_out) of every component whose reachability
// from (to) w is not already answerable from previously assigned labels.
// The labeling core itself (serial reference construction and the
// batch-parallel construction with serial reconciliation) lives in
// reach.PrunedLabeling, shared with the pll backend. Every valid 2-hop
// cover supports the same R-join semantics; this construction keeps
// |H|/|V| in the small-constant band the paper reports.
//
// Following Example 3.1 of the paper, the labels returned by In and Out are
// "compact": the node itself is removed. Full graph codes are
// in(v) = In(v) ∪ {v} and out(v) = Out(v) ∪ {v}; Reaches applies that
// convention, and so do the cluster index and W-table built on top.
package twohop

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
)

// BackendName is the name this package registers with the reach registry.
const BackendName = "twohop"

// CenterOrder selects the landmark processing order, which determines cover
// size (not correctness).
type CenterOrder int

const (
	// OrderDegreeProduct ranks components by (in-degree+1)·(out-degree+1)
	// of the condensation, descending — high-coverage centers first.
	// This is the default and produces the smallest covers.
	OrderDegreeProduct CenterOrder = iota
	// OrderTopological processes components in topological order.
	OrderTopological
	// OrderRandom processes components in seeded random order.
	OrderRandom
)

func (o CenterOrder) String() string {
	switch o {
	case OrderDegreeProduct:
		return "degree-product"
	case OrderTopological:
		return "topological"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("CenterOrder(%d)", int(o))
	}
}

// Options configures cover computation.
type Options struct {
	// Order is the landmark order (default OrderDegreeProduct).
	Order CenterOrder
	// Seed seeds OrderRandom.
	Seed int64
	// Parallelism is the number of workers that process landmark centers in
	// rank-ordered batches: within a batch the forward/backward pruned BFS
	// pairs run concurrently against the labels committed by earlier
	// batches, then a serial reconciliation pass re-prunes entries made
	// redundant by same-batch centers (see DESIGN.md). 0 or 1 selects the
	// serial reference construction — its cover is byte-identical to what
	// previous versions computed. n > 1 uses n workers; < 0 uses
	// GOMAXPROCS. Parallel covers are always valid (Verify-clean) and
	// deterministic for a fixed degree, but contain slightly more entries
	// than the serial cover (redundancies a serial build would have pruned
	// by not expanding past covered frontiers).
	Parallelism int
}

// buildWorkers resolves Options.Parallelism to a worker count.
func buildWorkers(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p <= 1 {
		return 1
	}
	return p
}

// Cover is a computed 2-hop reachability labeling for a graph.
// It is immutable after Compute and safe for concurrent readers.
// It implements reach.Index.
type Cover struct {
	g   *graph.Graph
	scc *graph.SCC

	// rep[c] is the representative node (center identity) of component c.
	rep []graph.NodeID
	// compOf[w] is the component a representative identifies, or -1 when w
	// is not a representative.
	compOf []int32

	// in[v] / out[v]: compact per-node center lists, sorted ascending by
	// center NodeID, excluding v itself.
	in  [][]graph.NodeID
	out [][]graph.NodeID

	size int // Σ_v |in(v)| + |out(v)| (compact entries), the cover size |H|
}

// Compute builds a 2-hop cover for g.
func Compute(g *graph.Graph, opt Options) *Cover {
	scc := graph.NewSCC(g)
	nc := scc.NumComponents()

	rep := make([]graph.NodeID, nc)
	for c := 0; c < nc; c++ {
		m := scc.Members(int32(c))
		best := m[0]
		for _, v := range m[1:] {
			if v < best {
				best = v
			}
		}
		rep[c] = best
	}

	order := centerOrder(scc, opt)
	rank := make([]int32, nc)
	for r, c := range order {
		rank[c] = int32(r)
	}

	workers := buildWorkers(opt.Parallelism)
	compIn, compOut := reach.PrunedLabeling(nc, scc.CondSuccessors, scc.CondPredecessors, order, rank, workers)

	cov := &Cover{
		g:      g,
		scc:    scc,
		rep:    rep,
		compOf: make([]int32, g.NumNodes()),
		in:     make([][]graph.NodeID, g.NumNodes()),
		out:    make([][]graph.NodeID, g.NumNodes()),
	}
	for i := range cov.compOf {
		cov.compOf[i] = -1
	}
	for c := 0; c < nc; c++ {
		cov.compOf[rep[c]] = int32(c)
	}

	// Materialise compact per-node lists: map component labels to
	// representative node IDs, drop the node itself, sort ascending. The
	// per-node work is independent, so with workers > 1 it runs over node
	// ranges concurrently (sizes summed after the join — the result does not
	// depend on the worker count).
	materialize := func(lo, hi int) int {
		sz := 0
		for v := lo; v < hi; v++ {
			c := scc.Comp[v]
			cov.in[v] = nodeList(compIn[c], rep, graph.NodeID(v))
			cov.out[v] = nodeList(compOut[c], rep, graph.NodeID(v))
			sz += len(cov.in[v]) + len(cov.out[v])
		}
		return sz
	}
	n := g.NumNodes()
	if workers <= 1 || n < 2*workers {
		cov.size = materialize(0, n)
	} else {
		sizes := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sizes[w] = materialize(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, s := range sizes {
			cov.size += s
		}
	}
	return cov
}

// nodeList converts a component-ID label list to a sorted compact NodeID
// list excluding self.
func nodeList(comps []int32, rep []graph.NodeID, self graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(comps))
	for _, c := range comps {
		w := rep[c]
		if w == self {
			continue
		}
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}

func centerOrder(scc *graph.SCC, opt Options) []int32 {
	nc := scc.NumComponents()
	order := make([]int32, nc)
	for i := range order {
		order[i] = int32(i)
	}
	switch opt.Order {
	case OrderTopological:
		return scc.TopoOrder()
	case OrderRandom:
		rng := rand.New(rand.NewSource(opt.Seed))
		rng.Shuffle(nc, func(i, j int) { order[i], order[j] = order[j], order[i] })
		return order
	default: // OrderDegreeProduct
		score := make([]int64, nc)
		for c := int32(0); c < int32(nc); c++ {
			din := int64(len(scc.CondPredecessors(c)))
			dout := int64(len(scc.CondSuccessors(c)))
			score[c] = (din + 1) * (dout + 1) * int64(len(scc.Members(c)))
		}
		slices.SortStableFunc(order, func(a, b int32) int {
			switch {
			case score[a] > score[b]:
				return -1
			case score[a] < score[b]:
				return 1
			default:
				return 0
			}
		})
		return order
	}
}

// Backend returns the registered backend name, "twohop".
func (c *Cover) Backend() string { return BackendName }

// Graph returns the graph this cover labels.
func (c *Cover) Graph() *graph.Graph { return c.g }

// In returns the compact L_in(v): every center w ≠ v with w ⇝ v that the
// cover assigned to v, sorted ascending. The slice aliases internal storage.
func (c *Cover) In(v graph.NodeID) []graph.NodeID { return c.in[v] }

// Out returns the compact L_out(v): every center w ≠ v with v ⇝ w that the
// cover assigned to v, sorted ascending. The slice aliases internal storage.
func (c *Cover) Out(v graph.NodeID) []graph.NodeID { return c.out[v] }

// Size returns the 2-hop cover size |H| = Σ_v (|L_in(v)| + |L_out(v)|)
// counting compact entries.
func (c *Cover) Size() int { return c.size }

// IsCenter reports whether w is a center (a component representative), and
// if so which component it represents.
func (c *Cover) IsCenter(w graph.NodeID) bool { return c.compOf[w] >= 0 }

// Reaches reports u ⇝ v using the full graph codes
// out(u) = Out(u) ∪ {u}, in(v) = In(v) ∪ {v}.
func (c *Cover) Reaches(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	// out(u) ∩ in(v): merge the sorted compact lists, then account for the
	// implicit self entries: u ∈ out(u) matters iff u ∈ In(v); v ∈ in(v)
	// matters iff v ∈ Out(u).
	if intersectSorted(c.out[u], c.in[v]) {
		return true
	}
	if containsSorted(c.in[v], u) {
		return true
	}
	return containsSorted(c.out[u], v)
}

func intersectSorted(a, b []graph.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func containsSorted(a []graph.NodeID, x graph.NodeID) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// Stats is the shared per-backend index summary.
type Stats = reach.Stats

// Stats computes summary statistics.
func (c *Cover) Stats() Stats {
	s := Stats{
		Backend:    BackendName,
		Nodes:      c.g.NumNodes(),
		Edges:      c.g.NumEdges(),
		Components: c.scc.NumComponents(),
		Size:       c.size,
	}
	if s.Nodes > 0 {
		s.Ratio = float64(s.Size) / float64(s.Nodes)
	}
	for v := range c.in {
		if len(c.in[v]) > s.MaxIn {
			s.MaxIn = len(c.in[v])
		}
		if len(c.out[v]) > s.MaxOut {
			s.MaxOut = len(c.out[v])
		}
	}
	return s
}

// Verify exhaustively checks that the cover agrees with BFS reachability on
// every node pair of its graph, returning the first disagreement. It is
// O(|V|²·|V+E|) — a debugging and acceptance tool for small graphs, also
// usable on an Incremental labeling via its own Reaches.
func (c *Cover) Verify() error { return reach.VerifyIndex(c) }

// Incremental, LabelDelta and the incremental-repair machinery are shared
// across backends; see fastmatch/internal/reach. The aliases keep the
// historical twohop names working.
type (
	Incremental = reach.Incremental
	LabelDelta  = reach.LabelDelta
)

// NewIncremental seeds an updatable labeling from a computed cover and its
// graph's adjacency.
func NewIncremental(c *Cover) *Incremental { return reach.NewIncremental(c) }

// NewIncrementalFromLabels seeds an updatable labeling from g's adjacency
// and already-materialised compact label lists; see
// reach.NewIncrementalFromLabels.
func NewIncrementalFromLabels(g *graph.Graph, in, out [][]graph.NodeID) *Incremental {
	return reach.NewIncrementalFromLabels(g, in, out)
}

// backend adapts this package to the reach.Backend interface.
type backend struct{}

func init() { reach.Register(backend{}) }

func (backend) Name() string { return BackendName }

func (backend) Build(g *graph.Graph, opt reach.Options) reach.Index {
	return Compute(g, Options{Seed: opt.Seed, Parallelism: opt.Parallelism})
}

func (backend) Dynamic(idx reach.Index) reach.Dynamic { return reach.NewIncremental(idx) }

func (backend) DynamicFromLabels(g *graph.Graph, in, out [][]graph.NodeID) reach.Dynamic {
	return reach.NewIncrementalFromLabels(g, in, out)
}
