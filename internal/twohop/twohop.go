// Package twohop computes 2-hop reachability covers and labelings for
// directed graphs (Cohen et al., SODA'02; the paper's reference [17]),
// playing the role of the fast 2-hop computation of the authors' EDBT'06
// algorithm (reference [15]).
//
// A 2-hop cover H = {S(U_w, w, V_w), ...} assigns every node v a label
// L(v) = (L_in(v), L_out(v)) such that u ⇝ v iff L_out(u) ∩ L_in(v) ≠ ∅,
// where the label entries are *centers* w: w ∈ L_out(u) means u ⇝ w, and
// w ∈ L_in(v) means w ⇝ v.
//
// We compute the cover with pruned landmark labeling over the strongly-
// connected-component condensation: components are processed as landmark
// centers in a configurable rank order; a forward (backward) pruned BFS from
// center w adds w to L_in (L_out) of every component whose reachability
// from (to) w is not already answerable from previously assigned labels.
// Every valid 2-hop cover supports the same R-join semantics; this
// construction keeps |H|/|V| in the small-constant band the paper reports.
//
// Following Example 3.1 of the paper, the labels returned by In and Out are
// "compact": the node itself is removed. Full graph codes are
// in(v) = In(v) ∪ {v} and out(v) = Out(v) ∪ {v}; Reaches applies that
// convention, and so do the cluster index and W-table built on top.
package twohop

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"fastmatch/internal/graph"
)

// CenterOrder selects the landmark processing order, which determines cover
// size (not correctness).
type CenterOrder int

const (
	// OrderDegreeProduct ranks components by (in-degree+1)·(out-degree+1)
	// of the condensation, descending — high-coverage centers first.
	// This is the default and produces the smallest covers.
	OrderDegreeProduct CenterOrder = iota
	// OrderTopological processes components in topological order.
	OrderTopological
	// OrderRandom processes components in seeded random order.
	OrderRandom
)

func (o CenterOrder) String() string {
	switch o {
	case OrderDegreeProduct:
		return "degree-product"
	case OrderTopological:
		return "topological"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("CenterOrder(%d)", int(o))
	}
}

// Options configures cover computation.
type Options struct {
	// Order is the landmark order (default OrderDegreeProduct).
	Order CenterOrder
	// Seed seeds OrderRandom.
	Seed int64
	// Parallelism is the number of workers that process landmark centers in
	// rank-ordered batches: within a batch the forward/backward pruned BFS
	// pairs run concurrently against the labels committed by earlier
	// batches, then a serial reconciliation pass re-prunes entries made
	// redundant by same-batch centers (see DESIGN.md). 0 or 1 selects the
	// serial reference construction — its cover is byte-identical to what
	// previous versions computed. n > 1 uses n workers; < 0 uses
	// GOMAXPROCS. Parallel covers are always valid (Verify-clean) and
	// deterministic for a fixed degree, but contain slightly more entries
	// than the serial cover (redundancies a serial build would have pruned
	// by not expanding past covered frontiers).
	Parallelism int
}

// buildWorkers resolves Options.Parallelism to a worker count.
func buildWorkers(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p <= 1 {
		return 1
	}
	return p
}

// Cover is a computed 2-hop reachability labeling for a graph.
// It is immutable after Compute and safe for concurrent readers.
type Cover struct {
	g   *graph.Graph
	scc *graph.SCC

	// rep[c] is the representative node (center identity) of component c.
	rep []graph.NodeID
	// compOf[w] is the component a representative identifies, or -1 when w
	// is not a representative.
	compOf []int32

	// in[v] / out[v]: compact per-node center lists, sorted ascending by
	// center NodeID, excluding v itself.
	in  [][]graph.NodeID
	out [][]graph.NodeID

	size int // Σ_v |in(v)| + |out(v)| (compact entries), the cover size |H|
}

// Compute builds a 2-hop cover for g.
func Compute(g *graph.Graph, opt Options) *Cover {
	scc := graph.NewSCC(g)
	nc := scc.NumComponents()

	rep := make([]graph.NodeID, nc)
	for c := 0; c < nc; c++ {
		m := scc.Members(int32(c))
		best := m[0]
		for _, v := range m[1:] {
			if v < best {
				best = v
			}
		}
		rep[c] = best
	}

	order := centerOrder(scc, opt)
	rank := make([]int32, nc)
	for r, c := range order {
		rank[c] = int32(r)
	}

	workers := buildWorkers(opt.Parallelism)
	var compIn, compOut [][]int32
	if workers <= 1 {
		compIn, compOut = labelSerial(scc, order, rank)
	} else {
		compIn, compOut = labelBatched(scc, order, rank, workers)
	}

	cov := &Cover{
		g:      g,
		scc:    scc,
		rep:    rep,
		compOf: make([]int32, g.NumNodes()),
		in:     make([][]graph.NodeID, g.NumNodes()),
		out:    make([][]graph.NodeID, g.NumNodes()),
	}
	for i := range cov.compOf {
		cov.compOf[i] = -1
	}
	for c := 0; c < nc; c++ {
		cov.compOf[rep[c]] = int32(c)
	}

	// Materialise compact per-node lists: map component labels to
	// representative node IDs, drop the node itself, sort ascending. The
	// per-node work is independent, so with workers > 1 it runs over node
	// ranges concurrently (sizes summed after the join — the result does not
	// depend on the worker count).
	materialize := func(lo, hi int) int {
		sz := 0
		for v := lo; v < hi; v++ {
			c := scc.Comp[v]
			cov.in[v] = nodeList(compIn[c], rep, graph.NodeID(v))
			cov.out[v] = nodeList(compOut[c], rep, graph.NodeID(v))
			sz += len(cov.in[v]) + len(cov.out[v])
		}
		return sz
	}
	n := g.NumNodes()
	if workers <= 1 || n < 2*workers {
		cov.size = materialize(0, n)
	} else {
		sizes := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sizes[w] = materialize(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, s := range sizes {
			cov.size += s
		}
	}
	return cov
}

// labelSerial is the reference pruned-landmark construction: one forward and
// one backward pruned BFS per center, strictly in rank order. Its output is
// the historical serial cover, byte for byte.
func labelSerial(scc *graph.SCC, order []int32, rank []int32) (compIn, compOut [][]int32) {
	nc := scc.NumComponents()

	// Per-component label lists holding component IDs in increasing rank
	// order (append order).
	compIn = make([][]int32, nc)
	compOut = make([][]int32, nc)

	// covered reports whether src ⇝ dst is answerable from the labels
	// assigned so far, by merge-intersecting rank-ordered lists.
	covered := func(outList, inList []int32) bool {
		i, j := 0, 0
		for i < len(outList) && j < len(inList) {
			ri, rj := rank[outList[i]], rank[inList[j]]
			switch {
			case ri == rj:
				return true
			case ri < rj:
				i++
			default:
				j++
			}
		}
		return false
	}

	// Epoch-stamped visited marks shared across BFS runs.
	visited := make([]int32, nc)
	for i := range visited {
		visited[i] = -1
	}
	var epoch int32
	queue := make([]int32, 0, 256)

	for _, c := range order {
		// Forward pruned BFS: add c to compIn of every component reachable
		// from c whose pair (c, d) is not already covered.
		epoch++
		queue = append(queue[:0], c)
		visited[c] = epoch
		for len(queue) > 0 {
			d := queue[0]
			queue = queue[1:]
			if d != c && covered(compOut[c], compIn[d]) {
				continue // pruned: do not label, do not expand
			}
			compIn[d] = append(compIn[d], c)
			for _, e := range scc.CondSuccessors(d) {
				if visited[e] != epoch {
					visited[e] = epoch
					queue = append(queue, e)
				}
			}
		}

		// Backward pruned BFS: add c to compOut of every component that
		// reaches c. Note compIn[c] now contains c, so covered(u, c) via c
		// itself is impossible until c lands in compOut[u] — exactly what
		// this pass assigns.
		epoch++
		queue = append(queue[:0], c)
		visited[c] = epoch
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if u != c && covered(compOut[u], compIn[c]) {
				continue
			}
			compOut[u] = append(compOut[u], c)
			for _, p := range scc.CondPredecessors(u) {
				if visited[p] != epoch {
					visited[p] = epoch
					queue = append(queue, p)
				}
			}
		}
	}
	return compIn, compOut
}

// nodeList converts a component-ID label list to a sorted compact NodeID
// list excluding self.
func nodeList(comps []int32, rep []graph.NodeID, self graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(comps))
	for _, c := range comps {
		w := rep[c]
		if w == self {
			continue
		}
		out = append(out, w)
	}
	slices.Sort(out)
	return out
}

func centerOrder(scc *graph.SCC, opt Options) []int32 {
	nc := scc.NumComponents()
	order := make([]int32, nc)
	for i := range order {
		order[i] = int32(i)
	}
	switch opt.Order {
	case OrderTopological:
		return scc.TopoOrder()
	case OrderRandom:
		rng := rand.New(rand.NewSource(opt.Seed))
		rng.Shuffle(nc, func(i, j int) { order[i], order[j] = order[j], order[i] })
		return order
	default: // OrderDegreeProduct
		score := make([]int64, nc)
		for c := int32(0); c < int32(nc); c++ {
			din := int64(len(scc.CondPredecessors(c)))
			dout := int64(len(scc.CondSuccessors(c)))
			score[c] = (din + 1) * (dout + 1) * int64(len(scc.Members(c)))
		}
		slices.SortStableFunc(order, func(a, b int32) int {
			switch {
			case score[a] > score[b]:
				return -1
			case score[a] < score[b]:
				return 1
			default:
				return 0
			}
		})
		return order
	}
}

// Graph returns the graph this cover labels.
func (c *Cover) Graph() *graph.Graph { return c.g }

// In returns the compact L_in(v): every center w ≠ v with w ⇝ v that the
// cover assigned to v, sorted ascending. The slice aliases internal storage.
func (c *Cover) In(v graph.NodeID) []graph.NodeID { return c.in[v] }

// Out returns the compact L_out(v): every center w ≠ v with v ⇝ w that the
// cover assigned to v, sorted ascending. The slice aliases internal storage.
func (c *Cover) Out(v graph.NodeID) []graph.NodeID { return c.out[v] }

// Size returns the 2-hop cover size |H| = Σ_v (|L_in(v)| + |L_out(v)|)
// counting compact entries.
func (c *Cover) Size() int { return c.size }

// IsCenter reports whether w is a center (a component representative), and
// if so which component it represents.
func (c *Cover) IsCenter(w graph.NodeID) bool { return c.compOf[w] >= 0 }

// Reaches reports u ⇝ v using the full graph codes
// out(u) = Out(u) ∪ {u}, in(v) = In(v) ∪ {v}.
func (c *Cover) Reaches(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	// out(u) ∩ in(v): merge the sorted compact lists, then account for the
	// implicit self entries: u ∈ out(u) matters iff u ∈ In(v); v ∈ in(v)
	// matters iff v ∈ Out(u).
	if intersectSorted(c.out[u], c.in[v]) {
		return true
	}
	if containsSorted(c.in[v], u) {
		return true
	}
	return containsSorted(c.out[u], v)
}

func intersectSorted(a, b []graph.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func containsSorted(a []graph.NodeID, x graph.NodeID) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// Stats summarises a cover.
type Stats struct {
	Nodes      int
	Edges      int
	Components int
	Size       int     // |H|
	Ratio      float64 // |H| / |V|
	MaxIn      int
	MaxOut     int
}

// Stats computes summary statistics.
func (c *Cover) Stats() Stats {
	s := Stats{
		Nodes:      c.g.NumNodes(),
		Edges:      c.g.NumEdges(),
		Components: c.scc.NumComponents(),
		Size:       c.size,
	}
	if s.Nodes > 0 {
		s.Ratio = float64(s.Size) / float64(s.Nodes)
	}
	for v := range c.in {
		if len(c.in[v]) > s.MaxIn {
			s.MaxIn = len(c.in[v])
		}
		if len(c.out[v]) > s.MaxOut {
			s.MaxOut = len(c.out[v])
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("2hop{|V|=%d |E|=%d scc=%d |H|=%d |H|/|V|=%.3f maxIn=%d maxOut=%d}",
		s.Nodes, s.Edges, s.Components, s.Size, s.Ratio, s.MaxIn, s.MaxOut)
}

// Verify exhaustively checks that the cover agrees with BFS reachability on
// every node pair of its graph, returning the first disagreement. It is
// O(|V|²·|V+E|) — a debugging and acceptance tool for small graphs, also
// usable on an Incremental labeling via its own Reaches.
func (c *Cover) Verify() error {
	g := c.g
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		reach := graph.ReachableFrom(g, u)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if got, want := c.Reaches(u, v), reach[v]; got != want {
				return fmt.Errorf("twohop: cover disagrees with BFS on (%d, %d): labeling says %v", u, v, got)
			}
		}
	}
	return nil
}
