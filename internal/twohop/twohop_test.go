package twohop

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fastmatch/internal/graph"
)

func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// chainGraph builds a simple path v0→v1→…→v(n-1).
func chainGraph(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("X")
	}
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

func TestCoverOnChain(t *testing.T) {
	g := chainGraph(10)
	c := Compute(g, Options{})
	for u := graph.NodeID(0); int(u) < 10; u++ {
		for v := graph.NodeID(0); int(v) < 10; v++ {
			want := u <= v
			if got := c.Reaches(u, v); got != want {
				t.Fatalf("Reaches(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestCoverOnCycle(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode("X")
	}
	for i := 0; i < 6; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6))
	}
	g := b.Build()
	c := Compute(g, Options{})
	for u := graph.NodeID(0); int(u) < 6; u++ {
		for v := graph.NodeID(0); int(v) < 6; v++ {
			if !c.Reaches(u, v) {
				t.Fatalf("cycle: Reaches(%d,%d) = false", u, v)
			}
		}
	}
}

func TestCompactExcludesSelf(t *testing.T) {
	g := chainGraph(5)
	c := Compute(g, Options{})
	for v := graph.NodeID(0); int(v) < 5; v++ {
		for _, w := range c.In(v) {
			if w == v {
				t.Fatalf("In(%d) contains self", v)
			}
		}
		for _, w := range c.Out(v) {
			if w == v {
				t.Fatalf("Out(%d) contains self", v)
			}
		}
	}
}

func TestListsSorted(t *testing.T) {
	g := randomGraph(3, 50, 120, 3)
	c := Compute(g, Options{})
	for v := 0; v < g.NumNodes(); v++ {
		for _, l := range [][]graph.NodeID{c.In(graph.NodeID(v)), c.Out(graph.NodeID(v))} {
			for i := 1; i < len(l); i++ {
				if l[i-1] >= l[i] {
					t.Fatalf("list for node %d not strictly sorted: %v", v, l)
				}
			}
		}
	}
}

// TestCoverMatchesBFS is the core soundness+completeness property: the 2-hop
// labeling must agree with BFS reachability on every pair, for every center
// order, on random graphs (which contain cycles).
func TestCoverMatchesBFS(t *testing.T) {
	orders := []CenterOrder{OrderDegreeProduct, OrderTopological, OrderRandom}
	for _, ord := range orders {
		ord := ord
		t.Run(ord.String(), func(t *testing.T) {
			check := func(seed int64) bool {
				g := randomGraph(seed, 28, 56, 3)
				tc := graph.NewTransitiveClosure(g)
				c := Compute(g, Options{Order: ord, Seed: seed})
				for u := 0; u < g.NumNodes(); u++ {
					for v := 0; v < g.NumNodes(); v++ {
						if c.Reaches(graph.NodeID(u), graph.NodeID(v)) != tc.Reaches(graph.NodeID(u), graph.NodeID(v)) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCenterSemantics: w ∈ Out(u) implies u ⇝ w, and w ∈ In(v) implies
// w ⇝ v (label entries are genuine centers on genuine paths).
func TestCenterSemantics(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 30, 70, 4)
		c := Compute(g, Options{})
		for u := 0; u < g.NumNodes(); u++ {
			for _, w := range c.Out(graph.NodeID(u)) {
				if !graph.Reaches(g, graph.NodeID(u), w) {
					return false
				}
			}
			for _, w := range c.In(graph.NodeID(u)) {
				if !graph.Reaches(g, w, graph.NodeID(u)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeProductSmallerThanRandom(t *testing.T) {
	// Not a strict guarantee, but on a mid-sized random graph the
	// degree-product order should essentially always produce a cover no
	// larger than a random order; treat a large regression as a bug.
	g := randomGraph(42, 400, 1200, 5)
	dp := Compute(g, Options{Order: OrderDegreeProduct}).Size()
	rnd := Compute(g, Options{Order: OrderRandom, Seed: 1}).Size()
	if float64(dp) > 1.5*float64(rnd) {
		t.Fatalf("degree-product cover %d vastly larger than random %d", dp, rnd)
	}
}

func TestStats(t *testing.T) {
	g := chainGraph(8)
	c := Compute(g, Options{})
	s := c.Stats()
	if s.Nodes != 8 || s.Edges != 7 || s.Components != 8 {
		t.Fatalf("stats basic fields wrong: %+v", s)
	}
	if s.Size != c.Size() {
		t.Fatalf("stats size %d != cover size %d", s.Size, c.Size())
	}
	if s.Ratio <= 0 {
		t.Fatalf("ratio should be positive: %v", s.Ratio)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestIsCenter(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode("X")
	}
	// 2-cycle {0,1} plus singletons 2, 3.
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	g := b.Build()
	c := Compute(g, Options{})
	// Representative of {0,1} is the smaller node ID, 0.
	if !c.IsCenter(0) {
		t.Fatal("node 0 should be the representative of its SCC")
	}
	if c.IsCenter(1) {
		t.Fatal("node 1 should not be a representative")
	}
	if !c.IsCenter(2) || !c.IsCenter(3) {
		t.Fatal("singleton nodes should be their own representatives")
	}
}

func TestEmptyAndSingleNodeGraphs(t *testing.T) {
	empty := graph.NewBuilder().Build()
	c := Compute(empty, Options{})
	if c.Size() != 0 {
		t.Fatalf("empty graph cover size = %d", c.Size())
	}

	b := graph.NewBuilder()
	b.AddNode("X")
	g := b.Build()
	c = Compute(g, Options{})
	if !c.Reaches(0, 0) {
		t.Fatal("single node should reach itself")
	}
}

func TestSelfLoop(t *testing.T) {
	b := graph.NewBuilder()
	v := b.AddNode("X")
	w := b.AddNode("Y")
	b.AddEdge(v, v)
	b.AddEdge(v, w)
	g := b.Build()
	c := Compute(g, Options{})
	if !c.Reaches(v, v) || !c.Reaches(v, w) || c.Reaches(w, v) {
		t.Fatal("self-loop reachability wrong")
	}
}

func TestCoverSizeReasonable(t *testing.T) {
	// On sparse tree-like graphs the cover ratio should stay small (the
	// paper reports ≈3.5 on XMark-derived graphs).
	g := randomGraph(9, 2000, 2400, 10)
	c := Compute(g, Options{})
	if r := c.Stats().Ratio; r > 20 {
		t.Fatalf("cover ratio suspiciously large: %.2f", r)
	}
}

func BenchmarkComputeSparse(b *testing.B) {
	g := randomGraph(5, 20000, 24000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, Options{})
	}
}

func BenchmarkReaches(b *testing.B) {
	g := randomGraph(6, 5000, 10000, 10)
	c := Compute(g, Options{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		c.Reaches(u, v)
	}
}

func TestVerify(t *testing.T) {
	g := randomGraph(77, 40, 90, 3)
	c := Compute(g, Options{})
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// A corrupted cover must be caught: claim an extra bogus center.
	c.out[0] = append([]graph.NodeID{}, c.out[0]...)
	bogus := graph.NodeID(g.NumNodes() - 1)
	if !graph.Reaches(g, 0, bogus) {
		c.out[0] = insertForTest(c.out[0], bogus)
		if err := c.Verify(); err == nil {
			t.Fatal("corrupted cover passed Verify")
		}
	}
}

func insertForTest(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	out := append(s, v)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
