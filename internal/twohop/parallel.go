package twohop

import (
	"fastmatch/internal/graph"

	"sync"
	"sync/atomic"
)

// batchPerWorker sets the batch size for batched labeling: each batch holds
// batchPerWorker·workers centers. Larger batches expose more concurrency but
// inflate the cover (centers in the same batch cannot prune against each
// other during their BFS — only the serial reconciliation pass catches the
// redundancy, after the BFS has already expanded past frontiers a serial
// build would have cut). 2 keeps measured inflation well under the 1.15x
// budget on xmark-style graphs while giving every worker two BFS pairs per
// barrier.
const batchPerWorker = 2

// bfsState is the per-worker scratch for pruned BFS runs: an epoch-stamped
// visited array (no clearing between runs) and a reusable queue.
type bfsState struct {
	visited []int32
	epoch   int32
	queue   []int32
}

func newBFSState(nc int) *bfsState {
	s := &bfsState{visited: make([]int32, nc), queue: make([]int32, 0, 256)}
	for i := range s.visited {
		s.visited[i] = -1
	}
	return s
}

// labelBatched computes the same style of pruned-landmark labeling as
// labelSerial, but processes centers in rank-ordered batches of
// batchPerWorker·workers:
//
//  1. Within a batch, each center's forward and backward pruned BFS runs as
//     an independent task against a *snapshot* of the labels committed by
//     earlier batches. The snapshot is simply compIn/compOut themselves —
//     no goroutine writes them during the concurrent phase, so reading them
//     race-free needs no copying. Each BFS records its would-be label
//     targets (in visit order) as candidates instead of writing labels.
//  2. A serial reconciliation pass then walks the batch in rank order and
//     commits each candidate unless it has become coverable by a same-batch
//     center committed moments before.
//
// Correctness follows the standard pruned-landmark argument: a BFS pruned
// against a *subset* of the final labels visits a *superset* of the
// components the fully-informed BFS would, so no label that the serial
// construction needs is ever missed; reconciliation only drops entries whose
// pair is answerable through an earlier-ranked center, which preserves cover
// validity. The result is a valid cover (Verify-clean), deterministic for a
// fixed (graph, order, workers) triple regardless of goroutine scheduling,
// and at most modestly larger than the serial cover — the only extra entries
// are the ones whose redundancy a same-batch prune would have discovered
// mid-BFS.
func labelBatched(scc *graph.SCC, order []int32, rank []int32, workers int) (compIn, compOut [][]int32) {
	nc := scc.NumComponents()
	compIn = make([][]int32, nc)
	compOut = make([][]int32, nc)

	covered := func(outList, inList []int32) bool {
		i, j := 0, 0
		for i < len(outList) && j < len(inList) {
			ri, rj := rank[outList[i]], rank[inList[j]]
			switch {
			case ri == rj:
				return true
			case ri < rj:
				i++
			default:
				j++
			}
		}
		return false
	}

	states := make([]*bfsState, workers)
	for i := range states {
		states[i] = newBFSState(nc)
	}

	batch := batchPerWorker * workers
	fwdCand := make([][]int32, batch)
	bwdCand := make([][]int32, batch)

	for start := 0; start < len(order); start += batch {
		end := start + batch
		if end > len(order) {
			end = len(order)
		}
		centers := order[start:end]

		// Concurrent phase: 2·len(centers) BFS tasks (task 2i = forward for
		// centers[i], 2i+1 = backward) pulled off an atomic counter.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(st *bfsState) {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= 2*len(centers) {
						return
					}
					i, backward := t/2, t%2 == 1
					c := centers[i]
					if backward {
						bwdCand[i] = backwardBFS(scc, st, c, compIn, compOut, covered, bwdCand[i][:0])
					} else {
						fwdCand[i] = forwardBFS(scc, st, c, compIn, compOut, covered, fwdCand[i][:0])
					}
				}
			}(states[w])
		}
		wg.Wait()

		// Serial reconciliation, in rank order: commit candidates unless a
		// same-batch center that just committed already covers the pair. The
		// candidate lists are in BFS visit order, so appends keep
		// compIn/compOut in increasing rank order as covered() requires.
		for i, c := range centers {
			for _, d := range fwdCand[i] {
				if d != c && covered(compOut[c], compIn[d]) {
					continue
				}
				compIn[d] = append(compIn[d], c)
			}
			for _, u := range bwdCand[i] {
				if u != c && covered(compOut[u], compIn[c]) {
					continue
				}
				compOut[u] = append(compOut[u], c)
			}
		}
	}
	return compIn, compOut
}

// forwardBFS runs the forward pruned BFS for center c against the committed
// labels, appending every component that would receive c in compIn to dst
// (in visit order) without writing any labels.
func forwardBFS(scc *graph.SCC, st *bfsState, c int32, compIn, compOut [][]int32, covered func(a, b []int32) bool, dst []int32) []int32 {
	st.epoch++
	st.queue = append(st.queue[:0], c)
	st.visited[c] = st.epoch
	q := st.queue
	for len(q) > 0 {
		d := q[0]
		q = q[1:]
		if d != c && covered(compOut[c], compIn[d]) {
			continue
		}
		dst = append(dst, d)
		for _, e := range scc.CondSuccessors(d) {
			if st.visited[e] != st.epoch {
				st.visited[e] = st.epoch
				q = append(q, e)
			}
		}
	}
	return dst
}

// backwardBFS is forwardBFS's mirror for compOut: it collects every
// component that would receive c in its out-label. compIn[c] has not been
// committed yet (c's own forward candidates are reconciled later), so the
// covered check relies purely on earlier batches — exactly the snapshot
// semantics labelBatched documents.
func backwardBFS(scc *graph.SCC, st *bfsState, c int32, compIn, compOut [][]int32, covered func(a, b []int32) bool, dst []int32) []int32 {
	st.epoch++
	st.queue = append(st.queue[:0], c)
	st.visited[c] = st.epoch
	q := st.queue
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		if u != c && covered(compOut[u], compIn[c]) {
			continue
		}
		dst = append(dst, u)
		for _, p := range scc.CondPredecessors(u) {
			if st.visited[p] != st.epoch {
				st.visited[p] = st.epoch
				q = append(q, p)
			}
		}
	}
	return dst
}
