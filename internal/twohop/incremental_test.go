package twohop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/internal/graph"
)

// TestIncrementalMatchesBFS: starting from a random graph's cover, insert a
// stream of random edges and verify the labeling agrees with BFS on the
// mutated graph after every step.
func TestIncrementalMatchesBFS(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24
		g := randomGraph(seed, n, 30, 3)
		inc := NewIncremental(Compute(g, Options{}))

		// Mirror builder to recompute ground truth after each insertion.
		type edge struct{ u, v graph.NodeID }
		var extra []edge
		truth := func() *graph.Graph {
			b := graph.NewBuilder()
			for i := 0; i < n; i++ {
				b.AddNodeLabel(b.Intern(g.LabelNameOf(graph.NodeID(i))))
			}
			for v := graph.NodeID(0); int(v) < n; v++ {
				for _, w := range g.Successors(v) {
					b.AddEdge(v, w)
				}
			}
			for _, e := range extra {
				b.AddEdge(e.u, e.v)
			}
			return b.Build()
		}

		for step := 0; step < 8; step++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			extra = append(extra, edge{u, v})
			inc.InsertEdge(u, v)
			tg := truth()
			for x := graph.NodeID(0); int(x) < n; x++ {
				for y := graph.NodeID(0); int(y) < n; y++ {
					if inc.Reaches(x, y) != graph.Reaches(tg, x, y) {
						t.Logf("seed %d step %d: Reaches(%d,%d) wrong after inserting %d->%d",
							seed, step, x, y, u, v)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRedundantEdgeAddsNothing(t *testing.T) {
	g := chainGraph(6)
	inc := NewIncremental(Compute(g, Options{}))
	// 0 already reaches 4 along the chain.
	if added := inc.InsertEdge(0, 4); added != 0 {
		t.Fatalf("redundant edge added %d labels", added)
	}
	if !inc.Reaches(0, 4) {
		t.Fatal("reachability lost")
	}
	// A genuinely new edge (backward) must add labels and close a cycle.
	if added := inc.InsertEdge(5, 0); added == 0 {
		t.Fatal("cycle-closing edge added no labels")
	}
	for u := graph.NodeID(0); u < 6; u++ {
		for v := graph.NodeID(0); v < 6; v++ {
			if !inc.Reaches(u, v) {
				t.Fatalf("after closing the cycle, Reaches(%d,%d) = false", u, v)
			}
		}
	}
}

func TestIncrementalSizeAccounting(t *testing.T) {
	g := chainGraph(8)
	c := Compute(g, Options{})
	inc := NewIncremental(c)
	if inc.Size() != c.Size() {
		t.Fatalf("seed size %d != cover size %d", inc.Size(), c.Size())
	}
	before := inc.Size()
	added := inc.InsertEdge(7, 3) // backward edge, new pairs
	if inc.Size() != before+added {
		t.Fatalf("size %d != %d + %d", inc.Size(), before, added)
	}
	// Lists remain sorted and self-free.
	for v := graph.NodeID(0); v < 8; v++ {
		for _, l := range [][]graph.NodeID{inc.In(v), inc.Out(v)} {
			for i := 1; i < len(l); i++ {
				if l[i-1] >= l[i] {
					t.Fatalf("list of %d not sorted after update: %v", v, l)
				}
			}
			for _, w := range l {
				if w == v {
					t.Fatalf("list of %d contains self after update", v)
				}
			}
		}
	}
}

func TestIncrementalIdempotentInsert(t *testing.T) {
	g := chainGraph(5)
	inc := NewIncremental(Compute(g, Options{}))
	first := inc.InsertEdge(4, 0)
	if first == 0 {
		t.Fatal("first insert should add labels")
	}
	if again := inc.InsertEdge(4, 0); again != 0 {
		t.Fatalf("re-inserting the same edge added %d labels", again)
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	g := randomGraph(9, 5000, 6000, 8)
	inc := NewIncremental(Compute(g, Options{}))
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		inc.InsertEdge(u, v)
	}
}
