package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// IOStats counts page traffic through a buffer pool. Logical accesses are
// Hits+Misses; physical I/O is Reads+Writes. The experiment harness reports
// these as the paper's "I/O cost".
type IOStats struct {
	Reads  int64 // physical page reads from the pager
	Writes int64 // physical page writes to the pager
	Hits   int64 // buffer pool hits
	Misses int64 // buffer pool misses
}

// Logical returns the number of logical page accesses.
func (s IOStats) Logical() int64 { return s.Hits + s.Misses }

// Sub returns s - o, for measuring an interval.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes,
		Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses}
}

func (s IOStats) String() string {
	return fmt.Sprintf("io{reads=%d writes=%d hits=%d misses=%d}", s.Reads, s.Writes, s.Hits, s.Misses)
}

// Frame is a buffer pool slot.
type Frame struct {
	id    PageID
	data  [PageSize]byte
	pins  int
	dirty bool
	lru   *list.Element // position in the shard's unpinned-LRU, nil while pinned
}

// poolShard is one independently locked partition of the pool. Pages map to
// shards by ID, so concurrent readers of different pages rarely contend.
type poolShard struct {
	mu     sync.Mutex
	frames map[PageID]*Frame
	lru    *list.List // of *Frame, front = most recently unpinned
	cap    int
}

const (
	// maxPoolShards bounds lock sharding.
	maxPoolShards = 16
	// framesPerShard is the target shard granularity: pools smaller than
	// this stay single-sharded and so keep exact global-LRU behavior.
	framesPerShard = 32
)

// BufferPool caches pages of a Pager with LRU replacement of unpinned
// frames. It is safe for concurrent use: the frame table is partitioned
// into independently locked shards (page ID modulo shard count), so
// parallel queries reading disjoint pages proceed without contention.
// Frame data may be read while the frame is pinned; pages are written only
// by their single owner (the storage engine is read-only after build except
// for per-query scratch heaps, which are single-writer).
type BufferPool struct {
	pager   Pager
	shards  []*poolShard
	nframes int

	statReads  atomic.Int64
	statWrites atomic.Int64
	statHits   atomic.Int64
	statMisses atomic.Int64

	// freeIDs holds page IDs released by FreePage for reuse by NewPage, so
	// per-query scratch allocations do not grow the page file forever.
	freeMu  sync.Mutex
	freeIDs []PageID
}

// DefaultPoolBytes is 1 MB — the buffer size the paper uses in Section 6.
const DefaultPoolBytes = 1 << 20

func shardCount(nframes int) int {
	n := nframes / framesPerShard
	if n < 1 {
		n = 1
	}
	if n > maxPoolShards {
		n = maxPoolShards
	}
	return n
}

// NewBufferPool wraps pager with a pool of poolBytes/PageSize frames
// (minimum 8).
func NewBufferPool(pager Pager, poolBytes int) *BufferPool {
	n := poolBytes / PageSize
	if n < 8 {
		n = 8
	}
	bp := &BufferPool{pager: pager, nframes: n}
	ns := shardCount(n)
	bp.shards = make([]*poolShard, ns)
	for i := range bp.shards {
		bp.shards[i] = &poolShard{frames: make(map[PageID]*Frame), lru: list.New()}
	}
	bp.setShardCaps(n)
	return bp
}

// setShardCaps distributes a total frame budget across the shards.
func (bp *BufferPool) setShardCaps(n int) {
	ns := len(bp.shards)
	base, rem := n/ns, n%ns
	for i, s := range bp.shards {
		s.cap = base
		if i < rem {
			s.cap++
		}
	}
}

func (bp *BufferPool) shard(id PageID) *poolShard {
	return bp.shards[int(id)%len(bp.shards)]
}

// Stats returns the accumulated I/O counters.
func (bp *BufferPool) Stats() IOStats {
	return IOStats{
		Reads:  bp.statReads.Load(),
		Writes: bp.statWrites.Load(),
		Hits:   bp.statHits.Load(),
		Misses: bp.statMisses.Load(),
	}
}

// ResetStats zeroes the I/O counters.
func (bp *BufferPool) ResetStats() {
	bp.statReads.Store(0)
	bp.statWrites.Store(0)
	bp.statHits.Store(0)
	bp.statMisses.Store(0)
}

// Capacity returns the number of frames.
func (bp *BufferPool) Capacity() int { return bp.nframes }

// Pager exposes the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// Fetch pins page id and returns its Frame data. The caller must Unpin it.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.frames[id]; ok {
		bp.statHits.Add(1)
		s.pin(f)
		return f, nil
	}
	bp.statMisses.Add(1)
	f, err := s.victim(bp)
	if err != nil {
		return nil, err
	}
	if err := bp.pager.ReadPage(id, f.data[:]); err != nil {
		// The victim frame was already detached from the map and LRU; drop
		// it — the shard re-grows lazily while under capacity.
		return nil, err
	}
	bp.statReads.Add(1)
	f.id = id
	f.pins = 1
	f.dirty = false
	s.frames[id] = f
	return f, nil
}

// NewPage allocates a fresh zeroed page, pins it, and returns the Frame and
// ID. Pages released with FreePage are reused before the pager grows.
func (bp *BufferPool) NewPage() (*Frame, PageID, error) {
	bp.freeMu.Lock()
	var id PageID
	reused := false
	if n := len(bp.freeIDs); n > 0 {
		id = bp.freeIDs[n-1]
		bp.freeIDs = bp.freeIDs[:n-1]
		reused = true
	}
	bp.freeMu.Unlock()
	if !reused {
		var err error
		id, err = bp.pager.Allocate()
		if err != nil {
			return nil, InvalidPage, err
		}
	}
	s := bp.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.victim(bp)
	if err != nil {
		if reused {
			bp.freeMu.Lock()
			bp.freeIDs = append(bp.freeIDs, id)
			bp.freeMu.Unlock()
		}
		return nil, InvalidPage, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	s.frames[id] = f
	return f, id, nil
}

// FreePage returns an unpinned page to the pool's free list for reuse by a
// later NewPage. A resident frame is dropped without flushing (the content
// is dead). Freeing a pinned page is an error.
func (bp *BufferPool) FreePage(id PageID) error {
	s := bp.shard(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		if f.pins > 0 {
			s.mu.Unlock()
			return fmt.Errorf("storage: FreePage of pinned page %d", id)
		}
		s.lru.Remove(f.lru)
		f.lru = nil
		delete(s.frames, id)
	}
	s.mu.Unlock()
	bp.freeMu.Lock()
	bp.freeIDs = append(bp.freeIDs, id)
	bp.freeMu.Unlock()
	return nil
}

// Unpin releases one pin on f, marking it dirty if the caller modified it.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	s := bp.shard(f.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.pins <= 0 {
		panic("storage: Unpin of unpinned Frame")
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		s.lru.PushFront(f)
		f.lru = s.lru.Front()
	}
}

// Data returns the page bytes of a pinned Frame.
func (f *Frame) Data() []byte { return f.data[:] }

// ID returns the page ID held by the Frame.
func (f *Frame) ID() PageID { return f.id }

// pin re-pins a resident Frame. Caller holds the shard lock.
func (s *poolShard) pin(f *Frame) {
	if f.pins == 0 && f.lru != nil {
		s.lru.Remove(f.lru)
		f.lru = nil
	}
	f.pins++
}

// victim returns an unpinned Frame to reuse, evicting the shard's LRU page
// (and flushing it if dirty), or a brand-new Frame while under capacity.
// Caller holds the shard lock.
func (s *poolShard) victim(bp *BufferPool) (*Frame, error) {
	if len(s.frames) < s.cap {
		return &Frame{}, nil
	}
	el := s.lru.Back()
	if el == nil {
		return nil, fmt.Errorf("storage: buffer pool exhausted (%d frames all pinned)", len(s.frames))
	}
	f := el.Value.(*Frame)
	s.lru.Remove(el)
	f.lru = nil
	delete(s.frames, f.id)
	if f.dirty {
		if err := bp.pager.WritePage(f.id, f.data[:]); err != nil {
			return nil, err
		}
		bp.statWrites.Add(1)
		f.dirty = false
	}
	return f, nil
}

// Resize changes the pool's capacity to poolBytes/PageSize frames (minimum
// 8), flushing and evicting unpinned pages as needed. The shard count is
// fixed at construction; Resize redistributes the frame budget across the
// existing shards. Used to measure queries under a buffer-to-data ratio
// matching the paper's setting after building with a larger pool.
func (bp *BufferPool) Resize(poolBytes int) error {
	n := poolBytes / PageSize
	if n < 8 {
		n = 8
	}
	bp.nframes = n
	bp.setShardCaps(n)
	for _, s := range bp.shards {
		s.mu.Lock()
		for len(s.frames) > s.cap {
			el := s.lru.Back()
			if el == nil {
				pinned := len(s.frames)
				s.mu.Unlock()
				return fmt.Errorf("storage: cannot shrink pool below %d pinned frames", pinned)
			}
			f := el.Value.(*Frame)
			s.lru.Remove(el)
			f.lru = nil
			delete(s.frames, f.id)
			if f.dirty {
				if err := bp.pager.WritePage(f.id, f.data[:]); err != nil {
					s.mu.Unlock()
					return err
				}
				bp.statWrites.Add(1)
				f.dirty = false
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// FlushAll writes every dirty resident page back to the pager.
func (bp *BufferPool) FlushAll() error {
	for _, s := range bp.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.dirty {
				if err := bp.pager.WritePage(f.id, f.data[:]); err != nil {
					s.mu.Unlock()
					return err
				}
				bp.statWrites.Add(1)
				f.dirty = false
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// lruLen is exported for white-box tests.
func (bp *BufferPool) lruLen() int {
	n := 0
	for _, s := range bp.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
