package storage

import (
	"container/list"
	"fmt"
)

// IOStats counts page traffic through a buffer pool. Logical accesses are
// Hits+Misses; physical I/O is Reads+Writes. The experiment harness reports
// these as the paper's "I/O cost".
type IOStats struct {
	Reads  int64 // physical page reads from the pager
	Writes int64 // physical page writes to the pager
	Hits   int64 // buffer pool hits
	Misses int64 // buffer pool misses
}

// Logical returns the number of logical page accesses.
func (s IOStats) Logical() int64 { return s.Hits + s.Misses }

// Sub returns s - o, for measuring an interval.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes,
		Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses}
}

func (s IOStats) String() string {
	return fmt.Sprintf("io{reads=%d writes=%d hits=%d misses=%d}", s.Reads, s.Writes, s.Hits, s.Misses)
}

// Frame is a buffer pool slot.
type Frame struct {
	id    PageID
	data  [PageSize]byte
	pins  int
	dirty bool
	lru   *list.Element // position in the unpinned-LRU, nil while pinned
}

// BufferPool caches pages of a Pager with LRU replacement of unpinned
// frames. Not safe for concurrent use (the engine is single-threaded per
// query, as in the paper's setting).
type BufferPool struct {
	pager  Pager
	frames map[PageID]*Frame
	lru    *list.List // of *Frame, front = most recently unpinned
	cap    int
	stats  IOStats
}

// DefaultPoolBytes is 1 MB — the buffer size the paper uses in Section 6.
const DefaultPoolBytes = 1 << 20

// NewBufferPool wraps pager with a pool of poolBytes/PageSize frames
// (minimum 8).
func NewBufferPool(pager Pager, poolBytes int) *BufferPool {
	n := poolBytes / PageSize
	if n < 8 {
		n = 8
	}
	return &BufferPool{
		pager:  pager,
		frames: make(map[PageID]*Frame, n),
		lru:    list.New(),
		cap:    n,
	}
}

// Stats returns the accumulated I/O counters.
func (bp *BufferPool) Stats() IOStats { return bp.stats }

// ResetStats zeroes the I/O counters.
func (bp *BufferPool) ResetStats() { bp.stats = IOStats{} }

// Capacity returns the number of frames.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Pager exposes the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// Fetch pins page id and returns its Frame data. The caller must Unpin it.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.pin(f)
		return f, nil
	}
	bp.stats.Misses++
	f, err := bp.victim()
	if err != nil {
		return nil, err
	}
	if err := bp.pager.ReadPage(id, f.data[:]); err != nil {
		// The victim frame was already detached from the map and LRU; drop
		// it — the pool re-grows lazily while under capacity.
		return nil, err
	}
	bp.stats.Reads++
	f.id = id
	f.pins = 1
	f.dirty = false
	bp.frames[id] = f
	return f, nil
}

// NewPage allocates a fresh page, pins it, and returns the Frame and ID.
func (bp *BufferPool) NewPage() (*Frame, PageID, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, InvalidPage, err
	}
	f, err := bp.victim()
	if err != nil {
		return nil, InvalidPage, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	bp.frames[id] = f
	return f, id, nil
}

// Unpin releases one pin on f, marking it dirty if the caller modified it.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	if f.pins <= 0 {
		panic("storage: Unpin of unpinned Frame")
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		bp.lru.PushFront(f)
		f.lru = bp.lru.Front()
	}
}

// Data returns the page bytes of a pinned Frame.
func (f *Frame) Data() []byte { return f.data[:] }

// ID returns the page ID held by the Frame.
func (f *Frame) ID() PageID { return f.id }

// pin re-pins a resident Frame.
func (bp *BufferPool) pin(f *Frame) {
	if f.pins == 0 && f.lru != nil {
		bp.lru.Remove(f.lru)
		f.lru = nil
	}
	f.pins++
}

// victim returns an unpinned Frame to reuse, evicting the LRU page (and
// flushing it if dirty), or a brand-new Frame while under capacity.
func (bp *BufferPool) victim() (*Frame, error) {
	if len(bp.frames) < bp.cap {
		return &Frame{}, nil
	}
	el := bp.lru.Back()
	if el == nil {
		return nil, fmt.Errorf("storage: buffer pool exhausted (%d frames all pinned)", bp.cap)
	}
	f := el.Value.(*Frame)
	bp.lru.Remove(el)
	f.lru = nil
	delete(bp.frames, f.id)
	if f.dirty {
		if err := bp.pager.WritePage(f.id, f.data[:]); err != nil {
			return nil, err
		}
		bp.stats.Writes++
		f.dirty = false
	}
	return f, nil
}

// Resize changes the pool's capacity to poolBytes/PageSize frames (minimum
// 8), flushing and evicting unpinned pages as needed. Used to measure
// queries under a buffer-to-data ratio matching the paper's setting after
// building with a larger pool.
func (bp *BufferPool) Resize(poolBytes int) error {
	n := poolBytes / PageSize
	if n < 8 {
		n = 8
	}
	bp.cap = n
	for len(bp.frames) > bp.cap {
		el := bp.lru.Back()
		if el == nil {
			return fmt.Errorf("storage: cannot shrink pool below %d pinned frames", len(bp.frames))
		}
		f := el.Value.(*Frame)
		bp.lru.Remove(el)
		f.lru = nil
		delete(bp.frames, f.id)
		if f.dirty {
			if err := bp.pager.WritePage(f.id, f.data[:]); err != nil {
				return err
			}
			bp.stats.Writes++
			f.dirty = false
		}
	}
	return nil
}

// FlushAll writes every dirty resident page back to the pager.
func (bp *BufferPool) FlushAll() error {
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.pager.WritePage(f.id, f.data[:]); err != nil {
				return err
			}
			bp.stats.Writes++
			f.dirty = false
		}
	}
	return nil
}

// lruLen is exported for white-box tests.
func (bp *BufferPool) lruLen() int { return bp.lru.Len() }
