package storage

import (
	"math/rand"
	"testing"
)

// TestDeleteCowPreservesOldVersion checks the MVCC property for deletes:
// the pre-batch tree still reads every key while the new version reads
// exactly the survivors.
func TestDeleteCowPreservesOldVersion(t *testing.T) {
	bp := newTestPool(t, 256)
	old, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	const base = 1500
	for i := 0; i < base; i++ {
		if err := old.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCow(bp)
	cur := old
	deleted := map[int]bool{}
	rng := rand.New(rand.NewSource(42))
	for len(deleted) < 400 {
		i := rng.Intn(base)
		var ok bool
		cur, ok, err = cur.DeleteCow(c, cowKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if ok == deleted[i] {
			t.Fatalf("DeleteCow(%d) reported %v, but key deleted=%v", i, ok, deleted[i])
		}
		deleted[i] = true
	}

	oldGot := collect(t, old)
	if len(oldGot) != base {
		t.Fatalf("old version has %d keys, want %d", len(oldGot), base)
	}
	newGot := collect(t, cur)
	if len(newGot) != base-len(deleted) {
		t.Fatalf("new version has %d keys, want %d", len(newGot), base-len(deleted))
	}
	for i := 0; i < base; i++ {
		v, ok := newGot[string(cowKey(i))]
		if deleted[i] {
			if ok {
				t.Fatalf("deleted key %d still present with value %d", i, v)
			}
			continue
		}
		if !ok || v != uint64(i) {
			t.Fatalf("surviving key %d = %d (present %v), want %d", i, v, ok, i)
		}
	}
	// Point reads agree with the scans.
	for i := 0; i < base; i += 97 {
		if _, ok, err := old.Get(cowKey(i)); err != nil || !ok {
			t.Fatalf("old.Get(%d) = %v,%v, want present", i, ok, err)
		}
		_, ok, err := cur.Get(cowKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if ok == deleted[i] {
			t.Fatalf("new.Get(%d) present=%v, want %v", i, ok, !deleted[i])
		}
	}
}

// TestDeleteCowAbsentKeyIsNoop: deleting a key the tree does not hold
// returns the receiver unchanged, without copying any pages.
func TestDeleteCowAbsentKeyIsNoop(t *testing.T) {
	bp := newTestPool(t, 64)
	tr, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 2 {
		if err := tr.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCow(bp)
	nt, ok, err := tr.DeleteCow(c, cowKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("DeleteCow of absent key reported a deletion")
	}
	if nt != tr {
		t.Fatal("DeleteCow of absent key returned a different tree")
	}
	if n := len(c.Freed()); n != 0 {
		t.Fatalf("no-op delete superseded %d pages, want 0", n)
	}
}

// TestDeleteCowAll: deleting every key leaves an empty but fully usable
// tree — lazy deletion keeps empty leaves, so Get and Scan must tolerate
// them.
func TestDeleteCowAll(t *testing.T) {
	bp := newTestPool(t, 256)
	tr, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	for i := 0; i < n; i++ {
		if err := tr.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCow(bp)
	cur := tr
	for i := 0; i < n; i++ {
		var ok bool
		cur, ok, err = cur.DeleteCow(c, cowKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("DeleteCow(%d) did not find the key", i)
		}
	}
	if got := collect(t, cur); len(got) != 0 {
		t.Fatalf("emptied tree still scans %d keys", len(got))
	}
	if _, ok, err := cur.Get(cowKey(7)); err != nil || ok {
		t.Fatalf("Get on emptied tree = %v,%v, want absent,nil", ok, err)
	}
	// The emptied tree accepts new inserts.
	cur, err = cur.InsertCow(c, cowKey(5), 55)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cur.Get(cowKey(5)); err != nil || !ok || v != 55 {
		t.Fatalf("reinsert after empty: Get = %d,%v,%v, want 55,true,nil", v, ok, err)
	}
	// The original version still holds everything.
	if got := collect(t, tr); len(got) != n {
		t.Fatalf("old version has %d keys, want %d", len(got), n)
	}
}

// TestDeleteCowInterleavedWithInserts mixes CoW inserts and deletes in one
// batch against a model map and checks the final scan matches.
func TestDeleteCowInterleavedWithInserts(t *testing.T) {
	bp := newTestPool(t, 256)
	tr, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int]uint64{}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
		model[i] = uint64(i)
	}
	c := NewCow(bp)
	cur := tr
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 2000; step++ {
		i := rng.Intn(800)
		if rng.Intn(2) == 0 {
			v := uint64(rng.Intn(1 << 20))
			cur, err = cur.InsertCow(c, cowKey(i), v)
			if err != nil {
				t.Fatal(err)
			}
			model[i] = v
		} else {
			_, want := model[i]
			var ok bool
			cur, ok, err = cur.DeleteCow(c, cowKey(i))
			if err != nil {
				t.Fatal(err)
			}
			if ok != want {
				t.Fatalf("step %d: DeleteCow(%d) = %v, model has key: %v", step, i, ok, want)
			}
			delete(model, i)
		}
	}
	got := collect(t, cur)
	if len(got) != len(model) {
		t.Fatalf("final tree has %d keys, model has %d", len(got), len(model))
	}
	for i, v := range model {
		if gv, ok := got[string(cowKey(i))]; !ok || gv != v {
			t.Fatalf("key %d = %d (present %v), want %d", i, gv, ok, v)
		}
	}
}
