package storage

import (
	"errors"
	"testing"
)

// faultPager wraps a MemPager and fails operations after a countdown,
// exercising error propagation through the pool, heap, and B+-tree.
type faultPager struct {
	inner      *MemPager
	readsLeft  int // fail reads when it reaches 0 (negative = never fail)
	writesLeft int
	allocsLeft int
}

var errInjected = errors.New("injected fault")

func newFaultPager() *faultPager {
	return &faultPager{inner: NewMemPager(), readsLeft: -1, writesLeft: -1, allocsLeft: -1}
}

func (p *faultPager) ReadPage(id PageID, buf []byte) error {
	if p.readsLeft == 0 {
		return errInjected
	}
	if p.readsLeft > 0 {
		p.readsLeft--
	}
	return p.inner.ReadPage(id, buf)
}

func (p *faultPager) WritePage(id PageID, buf []byte) error {
	if p.writesLeft == 0 {
		return errInjected
	}
	if p.writesLeft > 0 {
		p.writesLeft--
	}
	return p.inner.WritePage(id, buf)
}

func (p *faultPager) Allocate() (PageID, error) {
	if p.allocsLeft == 0 {
		return InvalidPage, errInjected
	}
	if p.allocsLeft > 0 {
		p.allocsLeft--
	}
	return p.inner.Allocate()
}

func (p *faultPager) NumPages() int { return p.inner.NumPages() }
func (p *faultPager) Close() error  { return p.inner.Close() }

func TestPoolSurfacesReadFault(t *testing.T) {
	fp := newFaultPager()
	bp := NewBufferPool(fp, 8*PageSize)
	var ids []PageID
	for i := 0; i < 20; i++ {
		f, id, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(f, true)
		ids = append(ids, id)
	}
	fp.readsLeft = 0
	// Page 0 was evicted (pool holds 8 of 20), so this is a physical read.
	if _, err := bp.Fetch(ids[0]); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// Pool must remain usable for resident pages.
	fp.readsLeft = -1
	f, err := bp.Fetch(ids[len(ids)-1])
	if err != nil {
		t.Fatalf("pool unusable after read fault: %v", err)
	}
	bp.Unpin(f, false)
}

func TestPoolSurfacesWriteFaultOnEviction(t *testing.T) {
	fp := newFaultPager()
	bp := NewBufferPool(fp, 8*PageSize)
	for i := 0; i < 8; i++ {
		f, _, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = 1
		bp.Unpin(f, true)
	}
	fp.writesLeft = 0
	// Next allocation must evict a dirty page → write fault surfaces.
	if _, _, err := bp.NewPage(); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestPoolSurfacesAllocFault(t *testing.T) {
	fp := newFaultPager()
	bp := NewBufferPool(fp, 8*PageSize)
	fp.allocsLeft = 0
	if _, _, err := bp.NewPage(); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestHeapSurfacesFaults(t *testing.T) {
	fp := newFaultPager()
	bp := NewBufferPool(fp, 8*PageSize)
	h := NewHeapFile(bp)
	rid, err := h.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	// Chained insert with failing allocation.
	fp.allocsLeft = 1
	if _, err := h.Insert(make([]byte, 3*PageSize)); !errors.Is(err, errInjected) {
		t.Fatalf("chained insert err = %v, want injected fault", err)
	}
	fp.allocsLeft = -1
	// Evict the record's page (fill well past the 8-frame pool), then fail
	// its read-back.
	for i := 0; i < 60; i++ {
		if _, err := h.Insert(make([]byte, maxInline)); err != nil {
			t.Fatal(err)
		}
	}
	fp.readsLeft = 0
	if _, err := h.Read(rid); !errors.Is(err, errInjected) {
		t.Fatalf("read err = %v, want injected fault", err)
	}
}

func TestBTreeSurfacesFaults(t *testing.T) {
	fp := newFaultPager()
	bp := NewBufferPool(fp, 8*PageSize)
	bt, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2000; i++ {
		if err := bt.Insert(key32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	fp.readsLeft = 0
	if _, _, err := bt.Get(key32(1)); !errors.Is(err, errInjected) {
		t.Fatalf("Get err = %v, want injected fault", err)
	}
	if err := bt.Scan(nil, func([]byte, uint64) bool { return true }); !errors.Is(err, errInjected) {
		t.Fatalf("Scan err = %v, want injected fault", err)
	}
	fp.readsLeft = -1
	fp.allocsLeft = 0
	// Force splits until an allocation is needed.
	var splitErr error
	for i := uint32(10000); i < 13000; i++ {
		if splitErr = bt.Insert(key32(i), 1); splitErr != nil {
			break
		}
	}
	if !errors.Is(splitErr, errInjected) {
		t.Fatalf("split err = %v, want injected fault", splitErr)
	}
}

func TestResizeFlushesDirtyPages(t *testing.T) {
	fp := newFaultPager()
	bp := NewBufferPool(fp, 64*PageSize)
	var ids []PageID
	for i := 0; i < 32; i++ {
		f, id, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i + 1)
		bp.Unpin(f, true)
		ids = append(ids, id)
	}
	if err := bp.Resize(8 * PageSize); err != nil {
		t.Fatal(err)
	}
	if bp.lruLen() > 8 {
		t.Fatalf("pool still holds %d unpinned frames after shrink", bp.lruLen())
	}
	// All content must be readable (from disk where evicted).
	for i, id := range ids {
		f, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != byte(i+1) {
			t.Fatalf("page %d content lost on shrink", id)
		}
		bp.Unpin(f, false)
	}
}
