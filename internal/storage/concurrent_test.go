package storage

import (
	"fmt"
	"sync"
	"testing"
)

// TestBufferPoolConcurrentReaders hammers one pool from many goroutines
// reading a shared set of pages, checking content integrity under eviction
// pressure. Run with -race.
func TestBufferPoolConcurrentReaders(t *testing.T) {
	p := NewMemPager()
	bp := NewBufferPool(p, 64*PageSize) // 64 frames, multiple shards
	const nPages = 256
	ids := make([]PageID, nPages)
	for i := 0; i < nPages; i++ {
		f, id, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i)
		f.Data()[1] = byte(i >> 8)
		bp.Unpin(f, true)
		ids[i] = id
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for it := 0; it < 2000; it++ {
				i := (seed*7919 + it*31) % nPages
				f, err := bp.Fetch(ids[i])
				if err != nil {
					errs <- err
					return
				}
				got := int(f.Data()[0]) | int(f.Data()[1])<<8
				if got != i {
					errs <- fmt.Errorf("page %d read back %d", i, got)
					bp.Unpin(f, false)
					return
				}
				bp.Unpin(f, false)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if bp.Stats().Logical() == 0 {
		t.Fatal("expected logical I/O")
	}
}

// TestScratchHeapRecyclesPages checks that Release returns a scratch heap's
// pages to the free list and that NewPage reuses them instead of growing
// the pager.
func TestScratchHeapRecyclesPages(t *testing.T) {
	p := NewMemPager()
	bp := NewBufferPool(p, 64*PageSize)
	h := NewScratchHeap(bp)
	// Mix of slotted and overflow-chain records.
	for i := 0; i < 10; i++ {
		if _, err := h.Insert(make([]byte, maxInline)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Insert(make([]byte, 3*PageSize)); err != nil {
		t.Fatal(err)
	}
	grown := p.NumPages()
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	// A second scratch round must reuse the freed pages: no pager growth.
	h2 := NewScratchHeap(bp)
	for i := 0; i < 10; i++ {
		rid, err := h2.Insert(make([]byte, maxInline))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h2.Read(rid); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumPages() > grown {
		t.Fatalf("pager grew from %d to %d pages despite free list", grown, p.NumPages())
	}
	if err := h2.Release(); err != nil {
		t.Fatal(err)
	}
	// Freeing a pinned page must fail.
	f, id, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.FreePage(id); err == nil {
		t.Fatal("FreePage of pinned page should fail")
	}
	bp.Unpin(f, false)
	if err := bp.FreePage(id); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScratchHeaps runs parallel single-writer scratch heaps over
// one shared pool, simulating concurrent query spills.
func TestConcurrentScratchHeaps(t *testing.T) {
	p := NewMemPager()
	bp := NewBufferPool(p, 32*PageSize)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h := NewScratchHeap(bp)
			defer h.Release()
			for it := 0; it < 50; it++ {
				rec := make([]byte, 100+seed*13+it)
				for j := range rec {
					rec[j] = byte(seed)
				}
				rid, err := h.Insert(rec)
				if err != nil {
					errs <- err
					return
				}
				got, err := h.Read(rid)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(rec) || got[0] != byte(seed) {
					errs <- fmt.Errorf("seed %d: record corrupted", seed)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
