package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func TestMemPagerBasics(t *testing.T) {
	p := NewMemPager()
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := p.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatal("readback mismatch")
	}
	if err := p.ReadPage(99, got); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := p.WritePage(99, got); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if p.NumPages() != 1 {
		t.Fatalf("NumPages = %d", p.NumPages())
	}
}

func TestFilePagerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		buf := make([]byte, PageSize)
		buf[0] = byte(i + 1)
		if err := p.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify persistence.
	p2, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 5 {
		t.Fatalf("NumPages after reopen = %d", p2.NumPages())
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if err := p2.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d content = %d", id, buf[0])
		}
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	p := NewMemPager()
	bp := NewBufferPool(p, 8*PageSize) // 8 frames
	var ids []PageID
	for i := 0; i < 16; i++ {
		f, id, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i)
		bp.Unpin(f, true)
		ids = append(ids, id)
	}
	// All 16 pages written; only 8 resident. Reading them all back must
	// produce correct content regardless of eviction order.
	for i, id := range ids {
		f, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != byte(i) {
			t.Fatalf("page %d content = %d, want %d", id, f.Data()[0], i)
		}
		bp.Unpin(f, false)
	}
	st := bp.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("expected physical I/O from eviction, got %v", st)
	}
	// Re-fetch a hot page twice: second fetch must be a hit.
	f, _ := bp.Fetch(ids[15])
	bp.Unpin(f, false)
	before := bp.Stats().Hits
	f, _ = bp.Fetch(ids[15])
	bp.Unpin(f, false)
	if bp.Stats().Hits != before+1 {
		t.Fatal("expected a buffer hit on re-fetch")
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	p := NewMemPager()
	bp := NewBufferPool(p, 8*PageSize)
	var pinned []*Frame
	for i := 0; i < 8; i++ {
		f, _, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, f)
	}
	// Pool is full of pinned frames: next allocation must fail.
	if _, _, err := bp.NewPage(); err == nil {
		t.Fatal("expected pool-exhausted error")
	}
	for _, f := range pinned {
		bp.Unpin(f, false)
	}
	if _, _, err := bp.NewPage(); err != nil {
		t.Fatalf("allocation after unpin failed: %v", err)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	p := NewMemPager()
	bp := NewBufferPool(p, 8*PageSize)
	f, id, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[7] = 0x7E
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, PageSize)
	if err := p.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if raw[7] != 0x7E {
		t.Fatal("dirty page not flushed")
	}
}

func TestHeapFileSmallRecords(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	h := NewHeapFile(bp)
	var rids []RID
	var want [][]byte
	for i := 0; i < 500; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, i%50))))
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		want = append(want, rec)
	}
	for i, rid := range rids {
		got, err := h.Read(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestHeapFileLargeRecordChain(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	h := NewHeapFile(bp)
	rng := rand.New(rand.NewSource(1))
	sizes := []int{maxInline + 1, PageSize, 3 * PageSize, 10*PageSize + 17}
	for _, n := range sizes {
		rec := make([]byte, n)
		rng.Read(rec)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !rid.IsChain() {
			t.Fatalf("record of %d bytes should be chained", n)
		}
		got, err := h.Read(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rec) {
			t.Fatalf("chained record of %d bytes mismatch", n)
		}
	}
}

func TestHeapFileMixedSizesProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
		h := NewHeapFile(bp)
		var rids []RID
		var want [][]byte
		for i := 0; i < 80; i++ {
			n := rng.Intn(2 * maxInline)
			rec := make([]byte, n)
			rng.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				return false
			}
			rids = append(rids, rid)
			want = append(want, rec)
		}
		for i, rid := range rids {
			got, err := h.Read(rid)
			if err != nil || !bytes.Equal(got, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRIDEncoding(t *testing.T) {
	cases := []RID{{0, 0}, {1, 2}, {0xFFFFFFFE, 0xFFFE}, {12345, chainSlot}}
	for _, r := range cases {
		if got := DecodeRID(r.Encode()); got != r {
			t.Fatalf("round trip %v → %v", r, got)
		}
	}
	if !(RID{1, chainSlot}).IsChain() {
		t.Fatal("IsChain false for chain slot")
	}
	if (RID{1, 0}).IsChain() {
		t.Fatal("IsChain true for normal slot")
	}
}

func key32(i uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], i)
	return b[:]
}

func TestBTreeInsertGetSequential(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	bt, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := uint32(0); i < n; i++ {
		if err := bt.Insert(key32(i), uint64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < n; i++ {
		v, ok, err := bt.Get(key32(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != uint64(i)*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok, _ := bt.Get(key32(n + 10)); ok {
		t.Fatal("found a key never inserted")
	}
	if ln, _ := bt.Len(); ln != n {
		t.Fatalf("Len = %d, want %d", ln, n)
	}
}

func TestBTreeUpsert(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	bt, _ := NewBTree(bp)
	if err := bt.Insert([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if err := bt.Insert([]byte("k"), 2); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := bt.Get([]byte("k"))
	if !ok || v != 2 {
		t.Fatalf("upsert: got %d,%v", v, ok)
	}
	if ln, _ := bt.Len(); ln != 1 {
		t.Fatalf("Len = %d after upsert", ln)
	}
}

func TestBTreeRandomKeysProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
		bt, err := NewBTree(bp)
		if err != nil {
			return false
		}
		ref := make(map[string]uint64)
		for i := 0; i < 800; i++ {
			klen := 1 + rng.Intn(40)
			k := make([]byte, klen)
			rng.Read(k)
			v := rng.Uint64()
			ref[string(k)] = v
			if err := bt.Insert(k, v); err != nil {
				return false
			}
		}
		for k, v := range ref {
			got, ok, err := bt.Get([]byte(k))
			if err != nil || !ok || got != v {
				return false
			}
		}
		// Scan must yield all keys in sorted order.
		var keys []string
		err = bt.Scan(nil, func(k []byte, v uint64) bool {
			keys = append(keys, string(k))
			return true
		})
		if err != nil || len(keys) != len(ref) {
			return false
		}
		if !sort.StringsAreSorted(keys) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeScanFromStart(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	bt, _ := NewBTree(bp)
	for i := uint32(0); i < 1000; i += 2 { // even keys only
		if err := bt.Insert(key32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Scan from an absent odd key: must start at the next even key.
	var got []uint64
	err := bt.Scan(key32(501), func(k []byte, v uint64) bool {
		got = append(got, v)
		return len(got) < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{502, 504, 506, 508, 510}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("scan results %v, want %v", got, want)
		}
	}
}

func TestBTreeLongKeysAndLimit(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	bt, _ := NewBTree(bp)
	long := bytes.Repeat([]byte{'z'}, MaxKeyLen)
	if err := bt.Insert(long, 9); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := bt.Get(long); !ok || v != 9 {
		t.Fatal("long key not found")
	}
	tooLong := bytes.Repeat([]byte{'z'}, MaxKeyLen+1)
	if err := bt.Insert(tooLong, 1); err == nil {
		t.Fatal("expected error for oversized key")
	}
	// Many long keys force frequent splits of low-fanout nodes.
	for i := 0; i < 300; i++ {
		k := append(bytes.Repeat([]byte{'a'}, 400), []byte(fmt.Sprintf("%06d", i))...)
		if err := bt.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		k := append(bytes.Repeat([]byte{'a'}, 400), []byte(fmt.Sprintf("%06d", i))...)
		v, ok, _ := bt.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("long key %d: got %d,%v", i, v, ok)
		}
	}
}

func TestBTreeDescendingInsert(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	bt, _ := NewBTree(bp)
	const n = 3000
	for i := n - 1; i >= 0; i-- {
		if err := bt.Insert(key32(uint32(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, _ := bt.Get(key32(uint32(i)))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%d) after descending insert = %d,%v", i, v, ok)
		}
	}
}

func TestBTreeOnFilePagerWithTinyPool(t *testing.T) {
	// A tiny pool forces eviction during both build and probe, validating
	// the dirty-page write-back path end to end.
	path := filepath.Join(t.TempDir(), "bt.db")
	pg, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	bp := NewBufferPool(pg, 8*PageSize)
	bt, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := uint32(0); i < n; i++ {
		if err := bt.Insert(key32(i*7%n), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Reopen through a fresh pool: all state must come from disk.
	bp2 := NewBufferPool(pg, 8*PageSize)
	bt2 := OpenBTree(bp2, bt.Root())
	count := 0
	err = bt2.Scan(nil, func(k []byte, v uint64) bool { count++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan after reopen found %d keys, want %d", count, n)
	}
	if bp2.Stats().Reads == 0 {
		t.Fatal("expected physical reads from fresh pool")
	}
}

func TestIOStatsSubAndString(t *testing.T) {
	a := IOStats{Reads: 10, Writes: 5, Hits: 100, Misses: 20}
	b := IOStats{Reads: 4, Writes: 1, Hits: 40, Misses: 5}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 4 || d.Hits != 60 || d.Misses != 15 {
		t.Fatalf("Sub = %+v", d)
	}
	if d.Logical() != 75 {
		t.Fatalf("Logical = %d", d.Logical())
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	bt, _ := NewBTree(bp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(key32(uint32(i)), uint64(i))
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	bp := NewBufferPool(NewMemPager(), DefaultPoolBytes)
	bt, _ := NewBTree(bp)
	for i := uint32(0); i < 100000; i++ {
		bt.Insert(key32(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Get(key32(uint32(i) % 100000))
	}
}
