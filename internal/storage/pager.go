// Package storage implements the paged storage engine under the graph
// database: a pager (memory- or file-backed), a buffer pool with LRU
// replacement and I/O accounting, a heap file for variable-length records,
// and a B+-tree index.
//
// The paper evaluates on a MiniBase-backed C++ implementation with a 1 MB
// buffer and reports elapsed time and I/O cost. This package supplies the
// equivalent substrate: every page access is routed through the buffer pool,
// whose counters (physical reads/writes, hits, misses) are the repository's
// I/O cost metric.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID identifies a page within a Pager. Page 0 is valid; InvalidPage
// marks "no page".
type PageID uint32

// InvalidPage is the nil page ID.
const InvalidPage PageID = 0xFFFFFFFF

// Pager is the raw page I/O layer under the buffer pool.
type Pager interface {
	// ReadPage copies page id into buf (len PageSize).
	ReadPage(id PageID, buf []byte) error
	// WritePage writes buf (len PageSize) to page id.
	WritePage(id PageID, buf []byte) error
	// Allocate appends a zeroed page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases resources.
	Close() error
}

// errPageRange reports an out-of-range page access.
var errPageRange = errors.New("storage: page id out of range")

// MemPager is an in-memory Pager, used for tests and for in-memory graph
// databases. The zero value is ready to use. Methods are safe for
// concurrent use; distinct pages may be read and written in parallel (the
// buffer pool guarantees a single writer per page).
type MemPager struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

// ReadPage implements Pager.
func (p *MemPager) ReadPage(id PageID, buf []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: read %d of %d", errPageRange, id, len(p.pages))
	}
	copy(buf, p.pages[id])
	return nil
}

// WritePage implements Pager.
func (p *MemPager) WritePage(id PageID, buf []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: write %d of %d", errPageRange, id, len(p.pages))
	}
	copy(p.pages[id], buf)
	return nil
}

// Allocate implements Pager.
func (p *MemPager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pages = append(p.pages, make([]byte, PageSize))
	return PageID(len(p.pages) - 1), nil
}

// NumPages implements Pager.
func (p *MemPager) NumPages() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pages)
}

// Close implements Pager.
func (p *MemPager) Close() error { return nil }

// FilePager is a file-backed Pager. Methods are safe for concurrent use:
// page I/O uses positional reads/writes and the page count is guarded by a
// mutex.
type FilePager struct {
	f  *os.File
	mu sync.RWMutex
	n  int
}

// OpenFilePager creates or opens path as a page file. An existing file's
// length must be a multiple of PageSize.
func OpenFilePager(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open pager: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat pager: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d not a multiple of page size", path, st.Size())
	}
	return &FilePager{f: f, n: int(st.Size() / PageSize)}, nil
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.RLock()
	n := p.n
	p.mu.RUnlock()
	if int(id) >= n {
		return fmt.Errorf("%w: read %d of %d", errPageRange, id, n)
	}
	_, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.RLock()
	n := p.n
	p.mu.RUnlock()
	if int(id) >= n {
		return fmt.Errorf("%w: write %d of %d", errPageRange, id, n)
	}
	_, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(p.n)
	var zero [PageSize]byte
	if _, err := p.f.WriteAt(zero[:], int64(p.n)*PageSize); err != nil {
		return InvalidPage, err
	}
	p.n++
	return id, nil
}

// NumPages implements Pager.
func (p *FilePager) NumPages() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.n
}

// Close implements Pager.
func (p *FilePager) Close() error { return p.f.Close() }
