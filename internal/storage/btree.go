package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// BTree is a disk-resident B+-tree mapping variable-length byte keys to
// 8-byte values (typically an encoded RID). All page access goes through
// the buffer pool, so index probes contribute to the I/O cost metric.
//
// The tree supports insert (upsert), point lookup, ordered range scans,
// and lazy copy-on-write deletion (DeleteCow): cells are dropped without
// underflow rebalancing, so sustained delete workloads fragment the file
// until an offline re-pack rebuilds it.
//
// Page layout (both node kinds):
//
//	[0]     kind: 0 leaf, 1 internal
//	[1:3)   nKeys uint16
//	[3:7)   leaf: next-leaf PageID | internal: leftmost child PageID
//	[7:9)   cell-area start offset uint16 (cells grow down from PageSize)
//	[9:...) slot directory: nKeys × uint16 cell offsets, key-sorted
//
// Leaf cell:     keyLen uint16, key, value uint64.
// Internal cell: keyLen uint16, key, child PageID uint32 — the child holding
// keys ≥ this separator.
type BTree struct {
	bp   *BufferPool
	root PageID
}

const (
	btKindLeaf     = 0
	btKindInternal = 1
	btHdr          = 9
	// MaxKeyLen bounds key size so any two cells fit a fresh page.
	MaxKeyLen = 512
)

// NewBTree creates an empty tree on bp.
func NewBTree(bp *BufferPool) (*BTree, error) {
	f, id, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	initNode(f.Data(), btKindLeaf)
	bp.Unpin(f, true)
	return &BTree{bp: bp, root: id}, nil
}

// OpenBTree attaches to an existing tree by its root page.
func OpenBTree(bp *BufferPool, root PageID) *BTree { return &BTree{bp: bp, root: root} }

// Root returns the current root page ID (persist it to reopen the tree).
func (t *BTree) Root() PageID { return t.root }

func initNode(p []byte, kind byte) {
	p[0] = kind
	binary.LittleEndian.PutUint16(p[1:3], 0)
	binary.LittleEndian.PutUint32(p[3:7], uint32(InvalidPage))
	binary.LittleEndian.PutUint16(p[7:9], PageSize)
}

// node accessors operating on raw page bytes.

func nKeys(p []byte) int           { return int(binary.LittleEndian.Uint16(p[1:3])) }
func setNKeys(p []byte, n int)     { binary.LittleEndian.PutUint16(p[1:3], uint16(n)) }
func link(p []byte) PageID         { return PageID(binary.LittleEndian.Uint32(p[3:7])) }
func setLink(p []byte, v PageID)   { binary.LittleEndian.PutUint32(p[3:7], uint32(v)) }
func cellStart(p []byte) int       { return int(binary.LittleEndian.Uint16(p[7:9])) }
func setCellStart(p []byte, v int) { binary.LittleEndian.PutUint16(p[7:9], uint16(v)) }
func slotOff(p []byte, i int) int {
	return int(binary.LittleEndian.Uint16(p[btHdr+2*i:]))
}
func setSlot(p []byte, i, off int) {
	binary.LittleEndian.PutUint16(p[btHdr+2*i:], uint16(off))
}

// cellKey returns the key bytes of cell i (aliasing the page).
func cellKey(p []byte, i int) []byte {
	off := slotOff(p, i)
	klen := int(binary.LittleEndian.Uint16(p[off:]))
	return p[off+2 : off+2+klen]
}

// leafValue returns the value of leaf cell i.
func leafValue(p []byte, i int) uint64 {
	off := slotOff(p, i)
	klen := int(binary.LittleEndian.Uint16(p[off:]))
	return binary.LittleEndian.Uint64(p[off+2+klen:])
}

func setLeafValue(p []byte, i int, v uint64) {
	off := slotOff(p, i)
	klen := int(binary.LittleEndian.Uint16(p[off:]))
	binary.LittleEndian.PutUint64(p[off+2+klen:], v)
}

// childAt returns the child pointer of internal cell i.
func childAt(p []byte, i int) PageID {
	off := slotOff(p, i)
	klen := int(binary.LittleEndian.Uint16(p[off:]))
	return PageID(binary.LittleEndian.Uint32(p[off+2+klen:]))
}

// freeSpace returns the bytes available between the slot directory and the
// cell area.
func freeSpace(p []byte) int { return cellStart(p) - (btHdr + 2*nKeys(p)) }

// cellSize returns the bytes a new cell consumes including its slot entry.
func cellSize(klen int, kind byte) int {
	if kind == btKindLeaf {
		return 2 + klen + 8 + 2
	}
	return 2 + klen + 4 + 2
}

// search returns the index of the first cell with key ≥ k, and whether an
// exact match exists at that index.
func search(p []byte, k []byte) (int, bool) {
	lo, hi := 0, nKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cellKey(p, mid), k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	exact := lo < nKeys(p) && bytes.Equal(cellKey(p, lo), k)
	return lo, exact
}

// insertCell places a cell at sorted position i; the caller guarantees room.
func insertCell(p []byte, i int, key []byte, tail []byte) {
	n := nKeys(p)
	sz := 2 + len(key) + len(tail)
	off := cellStart(p) - sz
	binary.LittleEndian.PutUint16(p[off:], uint16(len(key)))
	copy(p[off+2:], key)
	copy(p[off+2+len(key):], tail)
	// Shift slots right.
	copy(p[btHdr+2*(i+1):btHdr+2*(n+1)], p[btHdr+2*i:btHdr+2*n])
	setSlot(p, i, off)
	setNKeys(p, n+1)
	setCellStart(p, off)
}

// Get looks up key, returning its value.
func (t *BTree) Get(key []byte) (uint64, bool, error) {
	id := t.root
	for {
		f, err := t.bp.Fetch(id)
		if err != nil {
			return 0, false, err
		}
		p := f.Data()
		if p[0] == btKindLeaf {
			i, exact := search(p, key)
			var v uint64
			if exact {
				v = leafValue(p, i)
			}
			t.bp.Unpin(f, false)
			return v, exact, nil
		}
		id = descend(p, key)
		t.bp.Unpin(f, false)
	}
}

// descend picks the child to follow for key in internal page p.
func descend(p []byte, key []byte) PageID {
	i, exact := search(p, key)
	if exact {
		return childAt(p, i)
	}
	if i == 0 {
		return link(p) // leftmost child
	}
	return childAt(p, i-1)
}

// splitResult carries a promoted separator after a child split.
type splitResult struct {
	key   []byte
	right PageID
}

// Insert upserts key → value.
func (t *BTree) Insert(key []byte, value uint64) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("storage: key of %d bytes exceeds max %d", len(key), MaxKeyLen)
	}
	sp, err := t.insertAt(t.root, key, value)
	if err != nil {
		return err
	}
	if sp == nil {
		return nil
	}
	// Root split: create a new internal root.
	f, id, err := t.bp.NewPage()
	if err != nil {
		return err
	}
	p := f.Data()
	initNode(p, btKindInternal)
	setLink(p, t.root)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], uint32(sp.right))
	insertCell(p, 0, sp.key, tail[:])
	t.bp.Unpin(f, true)
	t.root = id
	return nil
}

func (t *BTree) insertAt(id PageID, key []byte, value uint64) (*splitResult, error) {
	f, err := t.bp.Fetch(id)
	if err != nil {
		return nil, err
	}
	p := f.Data()

	if p[0] == btKindLeaf {
		i, exact := search(p, key)
		if exact {
			setLeafValue(p, i, value)
			t.bp.Unpin(f, true)
			return nil, nil
		}
		if freeSpace(p) >= cellSize(len(key), btKindLeaf) {
			var tail [8]byte
			binary.LittleEndian.PutUint64(tail[:], value)
			insertCell(p, i, key, tail[:])
			t.bp.Unpin(f, true)
			return nil, nil
		}
		sp, err := t.splitLeaf(f, key, value, t.bp.NewPage)
		t.bp.Unpin(f, true)
		return sp, err
	}

	child := descend(p, key)
	// Keep the parent unpinned during the child insert to bound pin counts;
	// single-threaded access makes this safe.
	t.bp.Unpin(f, false)
	sp, err := t.insertAt(child, key, value)
	if err != nil || sp == nil {
		return nil, err
	}
	// Insert the promoted separator into this node.
	f, err = t.bp.Fetch(id)
	if err != nil {
		return nil, err
	}
	p = f.Data()
	i, _ := search(p, sp.key)
	if freeSpace(p) >= cellSize(len(sp.key), btKindInternal) {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], uint32(sp.right))
		insertCell(p, i, sp.key, tail[:])
		t.bp.Unpin(f, true)
		return nil, nil
	}
	up, err := t.splitInternal(f, sp, t.bp.NewPage)
	t.bp.Unpin(f, true)
	return up, err
}

// splitLeaf splits the full leaf in f and inserts key/value on the proper
// side, allocating the right sibling through alloc (the pool for in-place
// inserts, the Cow batch for copy-on-write inserts). Returns the separator
// to promote.
func (t *BTree) splitLeaf(f *Frame, key []byte, value uint64, alloc func() (*Frame, PageID, error)) (*splitResult, error) {
	p := f.Data()
	n := nKeys(p)
	mid := n / 2

	rf, rid, err := alloc()
	if err != nil {
		return nil, err
	}
	rp := rf.Data()
	initNode(rp, btKindLeaf)

	// Move upper half to the right node.
	for i := mid; i < n; i++ {
		k := cellKey(p, i)
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], leafValue(p, i))
		insertCell(rp, i-mid, k, tail[:])
	}
	setLink(rp, link(p))
	setLink(p, rid)

	// Compact the left node to the lower half.
	compactKeep(p, mid, btKindLeaf)

	// Insert the pending key into the correct side.
	sep := append([]byte(nil), cellKey(rp, 0)...)
	target := p
	if bytes.Compare(key, sep) >= 0 {
		target = rp
	}
	i, exact := search(target, key)
	if exact {
		setLeafValue(target, i, value)
	} else {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], value)
		insertCell(target, i, key, tail[:])
	}
	t.bp.Unpin(rf, true)
	return &splitResult{key: sep, right: rid}, nil
}

// splitInternal splits the full internal node in f while inserting sp,
// allocating the right sibling through alloc. Returns the separator to
// promote further up.
func (t *BTree) splitInternal(f *Frame, sp *splitResult, alloc func() (*Frame, PageID, error)) (*splitResult, error) {
	p := f.Data()
	n := nKeys(p)

	// Materialise all cells plus the pending one, sorted.
	type icell struct {
		key   []byte
		child PageID
	}
	cells := make([]icell, 0, n+1)
	pos, _ := search(p, sp.key)
	for i := 0; i < n; i++ {
		if i == pos {
			cells = append(cells, icell{sp.key, sp.right})
		}
		cells = append(cells, icell{append([]byte(nil), cellKey(p, i)...), childAt(p, i)})
	}
	if pos == n {
		cells = append(cells, icell{sp.key, sp.right})
	}

	mid := len(cells) / 2
	sepCell := cells[mid]

	rf, rid, err := alloc()
	if err != nil {
		return nil, err
	}
	rp := rf.Data()
	initNode(rp, btKindInternal)
	setLink(rp, sepCell.child) // separator's child becomes right's leftmost
	for i, c := range cells[mid+1:] {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], uint32(c.child))
		insertCell(rp, i, c.key, tail[:])
	}
	t.bp.Unpin(rf, true)

	// Rebuild the left node with cells[:mid].
	left := link(p)
	initNode(p, btKindInternal)
	setLink(p, left)
	for i, c := range cells[:mid] {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], uint32(c.child))
		insertCell(p, i, c.key, tail[:])
	}
	return &splitResult{key: sepCell.key, right: rid}, nil
}

// compactKeep rewrites page p keeping only its first keep cells.
func compactKeep(p []byte, keep int, kind byte) {
	type kv struct {
		key  []byte
		tail []byte
	}
	cells := make([]kv, keep)
	for i := 0; i < keep; i++ {
		k := append([]byte(nil), cellKey(p, i)...)
		var tail []byte
		if kind == btKindLeaf {
			tail = make([]byte, 8)
			binary.LittleEndian.PutUint64(tail, leafValue(p, i))
		} else {
			tail = make([]byte, 4)
			binary.LittleEndian.PutUint32(tail, uint32(childAt(p, i)))
		}
		cells[i] = kv{k, tail}
	}
	next := link(p)
	initNode(p, kind)
	setLink(p, next)
	for i, c := range cells {
		insertCell(p, i, c.key, c.tail)
	}
}

// Scan calls fn for every key ≥ start in ascending order until fn returns
// false or the keys are exhausted. A nil start scans from the beginning.
//
// The scan is an in-order descent from the root rather than a walk of the
// leaf sibling chain: a copy-on-write insert (InsertCow) clones only the
// pages on its root-to-leaf path, so a cloned leaf's un-cloned left
// sibling still links to the superseded page — valid in the old tree
// version, wrong (and eventually reclaimed) in the new one. Child pointers
// reached from the version's own root are always consistent.
func (t *BTree) Scan(start []byte, fn func(key []byte, value uint64) bool) error {
	_, err := t.scanNode(t.root, start, fn)
	return err
}

// scanNode emits keys ≥ start under page id; the bool is false once fn
// stopped the scan.
func (t *BTree) scanNode(id PageID, start []byte, fn func(key []byte, value uint64) bool) (bool, error) {
	f, err := t.bp.Fetch(id)
	if err != nil {
		return false, err
	}
	p := f.Data()

	if p[0] == btKindLeaf {
		n := nKeys(p)
		i := 0
		if start != nil {
			i, _ = search(p, start)
		}
		for ; i < n; i++ {
			k := append([]byte(nil), cellKey(p, i)...)
			v := leafValue(p, i)
			if !fn(k, v) {
				t.bp.Unpin(f, false)
				return false, nil
			}
		}
		t.bp.Unpin(f, false)
		return true, nil
	}

	// Children in key order are [leftmost link, child 0, …, child n-1];
	// start's subtree (descend's choice) is where the scan begins.
	n := nKeys(p)
	children := make([]PageID, 0, n+1)
	from := 0
	if start != nil {
		i, exact := search(p, start)
		switch {
		case exact:
			from = i + 1
		case i > 0:
			from = i
		}
	}
	if from == 0 {
		children = append(children, link(p))
	}
	for i := max(from-1, 0); i < n; i++ {
		children = append(children, childAt(p, i))
	}
	// Unpin before recursing so a scan holds at most one pin per level.
	t.bp.Unpin(f, false)

	for j, cid := range children {
		s := start
		if j > 0 {
			s = nil // only the first child can hold keys < start
		}
		more, err := t.scanNode(cid, s, fn)
		if err != nil || !more {
			return more, err
		}
	}
	return true, nil
}

// Len counts the keys in the tree (full scan; for tests and stats).
func (t *BTree) Len() (int, error) {
	n := 0
	err := t.Scan(nil, func([]byte, uint64) bool { n++; return true })
	return n, err
}
