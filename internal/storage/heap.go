package storage

import (
	"encoding/binary"
	"fmt"
)

// RID identifies a record in a HeapFile.
type RID struct {
	Page PageID
	Slot uint16
}

// chainSlot marks a RID whose page is the head of an overflow chain rather
// than a slotted page.
const chainSlot uint16 = 0xFFFF

// IsChain reports whether the record is stored as an overflow chain.
func (r RID) IsChain() bool { return r.Slot == chainSlot }

func (r RID) String() string { return fmt.Sprintf("rid(%d,%d)", r.Page, r.Slot) }

// Encode packs the RID into 8 bytes (little endian page, slot, padding).
func (r RID) Encode() uint64 { return uint64(r.Page) | uint64(r.Slot)<<32 }

// DecodeRID unpacks an 8-byte encoded RID.
func DecodeRID(v uint64) RID { return RID{Page: PageID(v & 0xFFFFFFFF), Slot: uint16(v >> 32)} }

// Slotted heap page layout:
//
//	[0:2)  nSlots uint16
//	[2:4)  free-space pointer (cell area grows down from PageSize)
//	[4:..) slot directory: per slot, offset uint16 + length uint16
//
// Overflow chain page layout:
//
//	[0:4)  next PageID (InvalidPage at tail)
//	[4:8)  total record length uint32 (head page only; 0 elsewhere)
//	[8:10) fragment length uint16
//	[10:)  fragment bytes
const (
	heapHdr      = 4
	slotBytes    = 4
	chainHdr     = 10
	chainPayload = PageSize - chainHdr
	// maxInline is the largest record stored in a slotted page; larger
	// records use overflow chains.
	maxInline = PageSize / 4
)

// HeapFile stores variable-length records in pages of a buffer pool and
// returns stable RIDs. Records are append-only (the graph database is built
// once and then queried, as in the paper). Read is safe for concurrent use;
// Insert is single-writer.
type HeapFile struct {
	bp *BufferPool
	// cur is the current slotted page being filled, InvalidPage before the
	// first small-record insert.
	cur PageID
	// track records allocated page IDs so Release can return them to the
	// pool's free list (scratch heaps for per-query intermediate results).
	track bool
	owned []PageID
}

// NewHeapFile creates an empty heap file on bp.
func NewHeapFile(bp *BufferPool) *HeapFile {
	return &HeapFile{bp: bp, cur: InvalidPage}
}

// NewScratchHeap creates a heap file that tracks its page allocations so
// Release can recycle them. Queries spill temporal tables through scratch
// heaps: the pages share the pool (and its I/O accounting) but are private
// to one query, and Release keeps long-running servers from growing the
// page file per query.
func NewScratchHeap(bp *BufferPool) *HeapFile {
	return &HeapFile{bp: bp, cur: InvalidPage, track: true}
}

// Release returns every page this heap allocated to the pool's free list.
// Only valid for heaps created with NewScratchHeap; a no-op otherwise.
// The heap is reusable (empty) afterwards.
func (h *HeapFile) Release() error {
	var first error
	for _, id := range h.owned {
		if err := h.bp.FreePage(id); err != nil && first == nil {
			first = err
		}
	}
	h.owned = h.owned[:0]
	h.cur = InvalidPage
	return first
}

// Seal detaches the heap from its current tail page, so the next Insert
// starts a fresh page instead of appending to (and rewriting the slotted
// header of) one an earlier batch filled. A snapshot-publishing writer
// calls this before publishing: pages visible to any snapshot are never
// written again, which is what makes lock-free readers safe.
func (h *HeapFile) Seal() { h.cur = InvalidPage }

// newPage allocates a page via the pool, recording it when tracking.
func (h *HeapFile) newPage() (*Frame, PageID, error) {
	f, id, err := h.bp.NewPage()
	if err == nil && h.track {
		h.owned = append(h.owned, id)
	}
	return f, id, err
}

// Insert appends rec and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) > maxInline {
		return h.insertChain(rec)
	}
	// Try the current slotted page.
	if h.cur != InvalidPage {
		f, err := h.bp.Fetch(h.cur)
		if err != nil {
			return RID{}, err
		}
		if rid, ok := insertSlotted(f.Data(), h.cur, rec); ok {
			h.bp.Unpin(f, true)
			return rid, nil
		}
		h.bp.Unpin(f, false)
	}
	// Start a new slotted page.
	f, id, err := h.newPage()
	if err != nil {
		return RID{}, err
	}
	p := f.Data()
	binary.LittleEndian.PutUint16(p[2:4], PageSize)
	rid, ok := insertSlotted(p, id, rec)
	h.bp.Unpin(f, true)
	if !ok {
		return RID{}, fmt.Errorf("storage: record of %d bytes does not fit an empty page", len(rec))
	}
	h.cur = id
	return rid, nil
}

func insertSlotted(p []byte, id PageID, rec []byte) (RID, bool) {
	nSlots := binary.LittleEndian.Uint16(p[0:2])
	freePtr := binary.LittleEndian.Uint16(p[2:4])
	dirEnd := heapHdr + int(nSlots)*slotBytes
	if int(freePtr)-dirEnd < len(rec)+slotBytes {
		return RID{}, false
	}
	off := int(freePtr) - len(rec)
	copy(p[off:], rec)
	slotOff := dirEnd
	binary.LittleEndian.PutUint16(p[slotOff:], uint16(off))
	binary.LittleEndian.PutUint16(p[slotOff+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(p[0:2], nSlots+1)
	binary.LittleEndian.PutUint16(p[2:4], uint16(off))
	return RID{Page: id, Slot: nSlots}, true
}

func (h *HeapFile) insertChain(rec []byte) (RID, error) {
	var head PageID = InvalidPage
	var prev *Frame
	remaining := rec
	total := len(rec)
	for first := true; first || len(remaining) > 0; first = false {
		f, id, err := h.newPage()
		if err != nil {
			return RID{}, err
		}
		p := f.Data()
		binary.LittleEndian.PutUint32(p[0:4], uint32(InvalidPage))
		n := len(remaining)
		if n > chainPayload {
			n = chainPayload
		}
		if head == InvalidPage {
			head = id
			binary.LittleEndian.PutUint32(p[4:8], uint32(total))
		}
		binary.LittleEndian.PutUint16(p[8:10], uint16(n))
		copy(p[chainHdr:], remaining[:n])
		remaining = remaining[n:]
		if prev != nil {
			binary.LittleEndian.PutUint32(prev.Data()[0:4], uint32(id))
			h.bp.Unpin(prev, true)
		}
		prev = f
	}
	if prev != nil {
		h.bp.Unpin(prev, true)
	}
	return RID{Page: head, Slot: chainSlot}, nil
}

// Read returns a copy of the record at rid.
func (h *HeapFile) Read(rid RID) ([]byte, error) {
	if rid.IsChain() {
		return h.readChain(rid.Page)
	}
	f, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.bp.Unpin(f, false)
	p := f.Data()
	nSlots := binary.LittleEndian.Uint16(p[0:2])
	if rid.Slot >= nSlots {
		return nil, fmt.Errorf("storage: %v: slot out of range (%d slots)", rid, nSlots)
	}
	slotOff := heapHdr + int(rid.Slot)*slotBytes
	off := binary.LittleEndian.Uint16(p[slotOff:])
	length := binary.LittleEndian.Uint16(p[slotOff+2:])
	out := make([]byte, length)
	copy(out, p[off:int(off)+int(length)])
	return out, nil
}

func (h *HeapFile) readChain(head PageID) ([]byte, error) {
	f, err := h.bp.Fetch(head)
	if err != nil {
		return nil, err
	}
	total := binary.LittleEndian.Uint32(f.Data()[4:8])
	out := make([]byte, 0, total)
	id := head
	for id != InvalidPage {
		if f == nil {
			if f, err = h.bp.Fetch(id); err != nil {
				return nil, err
			}
		}
		p := f.Data()
		next := PageID(binary.LittleEndian.Uint32(p[0:4]))
		n := binary.LittleEndian.Uint16(p[8:10])
		out = append(out, p[chainHdr:chainHdr+int(n)]...)
		h.bp.Unpin(f, false)
		f = nil
		id = next
	}
	if len(out) != int(total) {
		return nil, fmt.Errorf("storage: chain at page %d: got %d bytes, header says %d", head, len(out), total)
	}
	return out, nil
}
