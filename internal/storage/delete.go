package storage

import "encoding/binary"

// DeleteCow removes key from the tree without modifying any page a
// published snapshot can see: the root-to-leaf path is copied exactly as
// in InsertCow, the leaf cell is dropped with a full page compaction (slot
// and cell-heap space are both reclaimed), and the returned tree points at
// the new root. The receiver stays readable; unchanged subtrees are shared
// between both versions. The bool reports whether the key was present —
// deleting an absent key copies nothing and returns the receiver.
//
// Deletion is lazy: no underflow rebalancing or sibling merging happens,
// so a leaf may end up empty. Empty leaves are harmless — Get descends
// into them and finds nothing, Scan emits nothing, and a later insert
// refills them — and an offline re-pack rebuilds the tree at full fill if
// the space matters.
func (t *BTree) DeleteCow(c *Cow, key []byte) (*BTree, bool, error) {
	if _, ok, err := t.Get(key); err != nil || !ok {
		return t, false, err
	}
	newRoot, err := t.cowDeleteAt(c, t.root, key)
	if err != nil {
		return nil, false, err
	}
	if newRoot == t.root {
		return t, true, nil
	}
	return &BTree{bp: t.bp, root: newRoot}, true, nil
}

// cowDeleteAt removes key below page id, copying the page first unless
// this batch owns it, and returns the page standing in for id in the new
// version (id itself when the page was already fresh).
func (t *BTree) cowDeleteAt(c *Cow, id PageID, key []byte) (PageID, error) {
	f, err := c.bp.Fetch(id)
	if err != nil {
		return InvalidPage, err
	}
	p := f.Data()

	if p[0] == btKindLeaf {
		i, exact := search(p, key)
		c.bp.Unpin(f, false)
		if !exact {
			return id, nil // DeleteCow verified presence; defensive
		}
		wf, nid, err := c.writable(id)
		if err != nil {
			return InvalidPage, err
		}
		removeCell(wf.Data(), i, btKindLeaf)
		c.bp.Unpin(wf, true)
		return nid, nil
	}

	child := descend(p, key)
	c.bp.Unpin(f, false)
	newChild, err := t.cowDeleteAt(c, child, key)
	if err != nil {
		return InvalidPage, err
	}
	if newChild == child {
		// The child was already fresh and compacted in place.
		return id, nil
	}
	wf, nid, err := c.writable(id)
	if err != nil {
		return InvalidPage, err
	}
	redirectChild(wf.Data(), key, newChild)
	c.bp.Unpin(wf, true)
	return nid, nil
}

// removeCell rewrites page p without cell i (compare compactKeep, which
// keeps a prefix); both the slot entry and the cell bytes are reclaimed.
func removeCell(p []byte, i int, kind byte) {
	type kv struct {
		key  []byte
		tail []byte
	}
	n := nKeys(p)
	cells := make([]kv, 0, n-1)
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		k := append([]byte(nil), cellKey(p, j)...)
		var tail []byte
		if kind == btKindLeaf {
			tail = make([]byte, 8)
			binary.LittleEndian.PutUint64(tail, leafValue(p, j))
		} else {
			tail = make([]byte, 4)
			binary.LittleEndian.PutUint32(tail, uint32(childAt(p, j)))
		}
		cells = append(cells, kv{k, tail})
	}
	next := link(p)
	initNode(p, kind)
	setLink(p, next)
	for j, cell := range cells {
		insertCell(p, j, cell.key, cell.tail)
	}
}
