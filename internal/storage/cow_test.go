package storage

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func newTestPool(t *testing.T, frames int) *BufferPool {
	t.Helper()
	return NewBufferPool(NewMemPager(), frames*PageSize)
}

func cowKey(i int) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(i))
	return k[:]
}

func collect(t *testing.T, tr *BTree) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	if err := tr.Scan(nil, func(k []byte, v uint64) bool {
		out[string(k)] = v
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

// TestInsertCowPreservesOldVersion checks the core MVCC property: after a
// copy-on-write batch, the pre-batch tree still reads exactly its old
// contents while the new version reads old ∪ new.
func TestInsertCowPreservesOldVersion(t *testing.T) {
	bp := newTestPool(t, 256)
	old, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	const base = 500
	for i := 0; i < base; i++ {
		if err := old.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCow(bp)
	cur := old
	for i := base; i < base+300; i++ {
		cur, err = cur.InsertCow(c, cowKey(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some old keys in the new version only.
	for i := 0; i < 50; i++ {
		cur, err = cur.InsertCow(c, cowKey(i), uint64(i)+1000)
		if err != nil {
			t.Fatal(err)
		}
	}

	oldGot := collect(t, old)
	if len(oldGot) != base {
		t.Fatalf("old version has %d keys, want %d", len(oldGot), base)
	}
	for i := 0; i < base; i++ {
		if v := oldGot[string(cowKey(i))]; v != uint64(i) {
			t.Fatalf("old version key %d = %d, want %d (new-version write leaked)", i, v, i)
		}
	}
	newGot := collect(t, cur)
	if len(newGot) != base+300 {
		t.Fatalf("new version has %d keys, want %d", len(newGot), base+300)
	}
	for i := 0; i < base+300; i++ {
		want := uint64(i)
		if i < 50 {
			want += 1000
		}
		if v := newGot[string(cowKey(i))]; v != want {
			t.Fatalf("new version key %d = %d, want %d", i, v, want)
		}
	}
	// Point reads agree with the scan on both versions.
	if v, ok, err := old.Get(cowKey(10)); err != nil || !ok || v != 10 {
		t.Fatalf("old.Get(10) = %d,%v,%v, want 10,true,nil", v, ok, err)
	}
	if v, ok, err := cur.Get(cowKey(10)); err != nil || !ok || v != 1010 {
		t.Fatalf("new.Get(10) = %d,%v,%v, want 1010,true,nil", v, ok, err)
	}
}

// TestInsertCowSharesUntouchedPages checks that a small batch on a large
// tree copies only the touched root-to-leaf paths, and that the superseded
// pages it reports really are no longer referenced by the new version.
func TestInsertCowSharesUntouchedPages(t *testing.T) {
	bp := newTestPool(t, 256)
	old, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := old.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCow(bp)
	cur, err := old.InsertCow(c, cowKey(2000), 2000)
	if err != nil {
		t.Fatal(err)
	}
	freed := c.Freed()
	// One root-to-leaf path is copied; a 2000-key tree of 4 KiB pages is
	// 2–3 levels deep, so far fewer pages than the whole tree.
	if len(freed) == 0 || len(freed) > 4 {
		t.Fatalf("single insert superseded %d pages, want 1–4 (path copy only)", len(freed))
	}
	newPages := treePages(t, cur)
	for _, id := range freed {
		if _, ok := newPages[id]; ok {
			t.Fatalf("page %d reported freed but still reachable from new root", id)
		}
	}
	oldPages := treePages(t, old)
	shared := 0
	for id := range newPages {
		if _, ok := oldPages[id]; ok {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("new version shares no pages with the old one; structural sharing is broken")
	}
}

// treePages returns every page reachable from the tree's root.
func treePages(t *testing.T, tr *BTree) map[PageID]struct{} {
	t.Helper()
	out := make(map[PageID]struct{})
	var walk func(id PageID)
	var failed error
	walk = func(id PageID) {
		if failed != nil {
			return
		}
		out[id] = struct{}{}
		f, err := tr.bp.Fetch(id)
		if err != nil {
			failed = err
			return
		}
		p := f.Data()
		if p[0] == btKindLeaf {
			tr.bp.Unpin(f, false)
			return
		}
		n := nKeys(p)
		kids := make([]PageID, 0, n+1)
		kids = append(kids, link(p))
		for i := 0; i < n; i++ {
			kids = append(kids, childAt(p, i))
		}
		tr.bp.Unpin(f, false)
		for _, k := range kids {
			walk(k)
		}
	}
	walk(tr.Root())
	if failed != nil {
		t.Fatalf("treePages: %v", failed)
	}
	return out
}

// TestInsertCowFreshPagesMutateInPlace checks that repeated inserts within
// one batch do not keep re-copying pages the batch already owns: the number
// of superseded pages stays bounded by the pre-batch tree size, not the
// number of inserts.
func TestInsertCowFreshPagesMutateInPlace(t *testing.T) {
	bp := newTestPool(t, 256)
	old, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := old.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := len(treePages(t, old))

	c := NewCow(bp)
	cur := old
	for i := 200; i < 1200; i++ {
		cur, err = cur.InsertCow(c, cowKey(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Freed()); got > before {
		t.Fatalf("batch of 1000 inserts superseded %d pages; should be ≤ %d (old tree size) if fresh pages mutate in place", got, before)
	}
	if got := collect(t, cur); len(got) != 1200 {
		t.Fatalf("new version has %d keys, want 1200", len(got))
	}
}

// TestInsertCowRootSplit drives a tiny tree through enough CoW inserts to
// split the root repeatedly and checks both versions stay correct.
func TestInsertCowRootSplit(t *testing.T) {
	bp := newTestPool(t, 256)
	old, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Insert(cowKey(0), 0); err != nil {
		t.Fatal(err)
	}
	c := NewCow(bp)
	cur := old
	const n = 3000
	for i := 1; i < n; i++ {
		cur, err = cur.InsertCow(c, cowKey(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if cur.Root() == old.Root() {
		t.Fatal("root did not change across a root split")
	}
	if got := collect(t, old); len(got) != 1 {
		t.Fatalf("old version has %d keys, want 1", len(got))
	}
	got := collect(t, cur)
	if len(got) != n {
		t.Fatalf("new version has %d keys, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := got[string(cowKey(i))]; !ok || v != uint64(i) {
			t.Fatalf("key %d = %d (present %v), want %d", i, v, ok, i)
		}
	}
}

// TestScanRangeAfterCow checks ranged scans (non-nil start) against both
// versions — the recursive scan must position correctly inside shared and
// copied subtrees alike.
func TestScanRangeAfterCow(t *testing.T) {
	bp := newTestPool(t, 256)
	tr, err := NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i += 2 { // even keys only
		if err := tr.Insert(cowKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCow(bp)
	cur := tr
	for i := 1; i < 1000; i += 2 { // odd keys in the new version
		cur, err = cur.InsertCow(c, cowKey(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, start := range []int{0, 1, 2, 499, 500, 777, 998, 999, 1000} {
		// Old version: evens ≥ start.
		want := []uint64{}
		for i := 0; i < 1000; i += 2 {
			if i >= start {
				want = append(want, uint64(i))
			}
		}
		checkRange(t, tr, cowKey(start), want, fmt.Sprintf("old start=%d", start))
		// New version: all keys ≥ start.
		want = want[:0]
		for i := start; i < 1000; i++ {
			if i >= 0 {
				want = append(want, uint64(i))
			}
		}
		checkRange(t, cur, cowKey(start), want, fmt.Sprintf("new start=%d", start))
	}
	// Early termination still works.
	count := 0
	if err := cur.Scan(nil, func(k []byte, v uint64) bool {
		count++
		return count < 10
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("scan visited %d keys after stop at 10", count)
	}
}

func checkRange(t *testing.T, tr *BTree, start []byte, want []uint64, label string) {
	t.Helper()
	got := []uint64{}
	if err := tr.Scan(start, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	}); err != nil {
		t.Fatalf("%s: Scan: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: scan returned %d keys, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: scan[%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestHeapSeal checks that a sealed heap never rewrites a previously
// filled page: records inserted after Seal land on new pages.
func TestHeapSeal(t *testing.T) {
	bp := newTestPool(t, 64)
	h := NewHeapFile(bp)
	r1, err := h.Insert([]byte("before"))
	if err != nil {
		t.Fatal(err)
	}
	h.Seal()
	r2, err := h.Insert([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Page == r2.Page {
		t.Fatalf("insert after Seal reused page %d", r1.Page)
	}
	for _, c := range []struct {
		rid  RID
		want string
	}{{r1, "before"}, {r2, "after"}} {
		got, err := h.Read(c.rid)
		if err != nil || string(got) != c.want {
			t.Fatalf("Read(%v) = %q,%v, want %q", c.rid, got, err, c.want)
		}
	}
}
