package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// BulkLoader builds a B+-tree bottom-up from a stream of strictly ascending
// keys, packing leaves left to right and growing internal levels only when a
// page fills — the classic bulk-load that replaces per-key root-to-leaf
// descents with a single append per key. Every index the graph database
// builds (base tables, cluster index, W-table) inserts its keys in sorted
// order, so Build uses this loader exclusively; the resulting tree is
// read-identical to an insert-built one (same Get/Scan results) but denser
// (pages are filled completely instead of the ~50–75% an insert-split mix
// leaves) and built in O(keys) page writes instead of O(keys · height)
// traversals.
//
// Usage:
//
//	bl := NewBulkLoader(bp)
//	for ... { bl.Add(key, value) }   // keys strictly ascending
//	tree, err := bl.Finish()
//
// A BulkLoader is single-use: after Finish (or the first error) it must be
// discarded. It keeps one page pinned per tree level while loading.
type BulkLoader struct {
	bp *BufferPool

	// open[0] is the leaf currently being filled; open[i] (i ≥ 1) the
	// internal node currently accepting separators at level i.
	open []openPage
	// first[i] is the first page ever created at level i — it becomes the
	// leftmost-child link when level i+1 springs into existence.
	first []PageID

	lastKey []byte
	n       int
	done    bool
}

type openPage struct {
	f  *Frame
	id PageID
}

// NewBulkLoader returns a loader building a new tree on bp.
func NewBulkLoader(bp *BufferPool) *BulkLoader {
	return &BulkLoader{bp: bp}
}

// Add appends key → value. Keys must arrive in strictly ascending byte
// order (no duplicates — there is no "upsert" during a bulk load).
func (b *BulkLoader) Add(key []byte, value uint64) error {
	if b.done {
		return fmt.Errorf("storage: BulkLoader used after Finish")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("storage: key of %d bytes exceeds max %d", len(key), MaxKeyLen)
	}
	if b.lastKey != nil && bytes.Compare(key, b.lastKey) <= 0 {
		return fmt.Errorf("storage: bulk-load keys must be strictly ascending (got %x after %x)", key, b.lastKey)
	}
	if len(b.open) == 0 {
		f, id, err := b.bp.NewPage()
		if err != nil {
			return err
		}
		initNode(f.Data(), btKindLeaf)
		b.open = append(b.open, openPage{f, id})
		b.first = append(b.first, id)
	}
	leaf := &b.open[0]
	if freeSpace(leaf.f.Data()) < cellSize(len(key), btKindLeaf) {
		// Close the full leaf and open its right sibling; the sibling's
		// first key becomes the separator promoted to level 1, exactly as a
		// leaf split would promote it.
		f, id, err := b.bp.NewPage()
		if err != nil {
			return err
		}
		initNode(f.Data(), btKindLeaf)
		setLink(leaf.f.Data(), id)
		b.bp.Unpin(leaf.f, true)
		leaf.f, leaf.id = f, id
		if err := b.addSep(1, key, id); err != nil {
			return err
		}
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], value)
	insertCell(leaf.f.Data(), nKeys(leaf.f.Data()), key, tail[:])
	b.lastKey = append(b.lastKey[:0], key...)
	b.n++
	return nil
}

// addSep records that child (holding keys ≥ sep) now follows at level-1 of
// level; it lands as a cell of level's open node, spilling upward when the
// node is full — the separator's child then becomes the new node's leftmost
// child, mirroring an internal split's promotion.
func (b *BulkLoader) addSep(level int, sep []byte, child PageID) error {
	if level == len(b.open) {
		// The tree grows a level: its leftmost child is the first page of
		// the level below.
		f, id, err := b.bp.NewPage()
		if err != nil {
			return err
		}
		initNode(f.Data(), btKindInternal)
		setLink(f.Data(), b.first[level-1])
		b.open = append(b.open, openPage{f, id})
		b.first = append(b.first, id)
	}
	node := &b.open[level]
	if freeSpace(node.f.Data()) < cellSize(len(sep), btKindInternal) {
		f, id, err := b.bp.NewPage()
		if err != nil {
			return err
		}
		initNode(f.Data(), btKindInternal)
		setLink(f.Data(), child)
		b.bp.Unpin(node.f, true)
		node.f, node.id = f, id
		return b.addSep(level+1, sep, id)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], uint32(child))
	insertCell(node.f.Data(), nKeys(node.f.Data()), sep, tail[:])
	return nil
}

// Len returns the number of keys added so far.
func (b *BulkLoader) Len() int { return b.n }

// Finish closes every open page and returns the completed tree. An empty
// load yields a valid empty tree.
func (b *BulkLoader) Finish() (*BTree, error) {
	if b.done {
		return nil, fmt.Errorf("storage: BulkLoader used after Finish")
	}
	b.done = true
	if len(b.open) == 0 {
		return NewBTree(b.bp)
	}
	for i := range b.open {
		b.bp.Unpin(b.open[i].f, true)
	}
	root := b.open[len(b.open)-1].id
	return &BTree{bp: b.bp, root: root}, nil
}

// BulkLoad builds a B+-tree from fn's emissions: fn must call emit with
// keys in strictly ascending order. It is NewBulkLoader/Add/Finish in one
// call for stream-shaped callers.
func BulkLoad(bp *BufferPool, fn func(emit func(key []byte, value uint64) error) error) (*BTree, error) {
	bl := NewBulkLoader(bp)
	if err := fn(bl.Add); err != nil {
		return nil, err
	}
	return bl.Finish()
}
