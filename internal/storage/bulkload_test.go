package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// sortedKeys returns n distinct ascending 8-byte keys with pseudo-random
// gaps, so leaves split at irregular key boundaries.
func sortedKeys(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	cur := uint64(0)
	for i := range keys {
		cur += 1 + uint64(rng.Intn(97))
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, cur)
		keys[i] = k
	}
	return keys
}

// buildBoth loads the same key stream into a bulk-loaded and an insert-built
// tree on the same pool.
func buildBoth(t *testing.T, bp *BufferPool, keys [][]byte) (bulk, ins *BTree) {
	t.Helper()
	bl := NewBulkLoader(bp)
	for i, k := range keys {
		if err := bl.Add(k, uint64(i)*3+1); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := bl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ins, err = NewBTree(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := ins.Insert(k, uint64(i)*3+1); err != nil {
			t.Fatal(err)
		}
	}
	return bulk, ins
}

// TestBulkLoadMatchesInsert is the serving-equivalence contract: a
// bulk-loaded tree answers every Get and a full Scan identically to an
// insert-built tree over the same pairs.
func TestBulkLoadMatchesInsert(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 1000, 20000} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			bp := NewBufferPool(NewMemPager(), 1<<20)
			keys := sortedKeys(int64(n)+7, n)
			bulk, ins := buildBoth(t, bp, keys)

			for i, k := range keys {
				bv, bok, err := bulk.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				iv, iok, err := ins.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				if !bok || !iok || bv != iv {
					t.Fatalf("key %d: bulk (%d,%v) vs insert (%d,%v)", i, bv, bok, iv, iok)
				}
			}
			// Missing keys miss in both.
			for _, k := range keys {
				miss := append(append([]byte(nil), k...), 0)
				_, ok, err := bulk.Get(miss)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatalf("bulk tree has phantom key %x", miss)
				}
			}
			// Scans agree pairwise and are complete.
			type kv struct {
				k []byte
				v uint64
			}
			collect := func(tr *BTree) []kv {
				var out []kv
				if err := tr.Scan(nil, func(k []byte, v uint64) bool {
					out = append(out, kv{k, v})
					return true
				}); err != nil {
					t.Fatal(err)
				}
				return out
			}
			bs, is := collect(bulk), collect(ins)
			if len(bs) != n || len(is) != n {
				t.Fatalf("scan lengths: bulk %d insert %d want %d", len(bs), len(is), n)
			}
			for i := range bs {
				if !bytes.Equal(bs[i].k, is[i].k) || bs[i].v != is[i].v {
					t.Fatalf("scan row %d differs: bulk (%x,%d) insert (%x,%d)",
						i, bs[i].k, bs[i].v, is[i].k, is[i].v)
				}
			}
		})
	}
}

// TestBulkLoadRangeScan checks mid-tree positioned scans against the
// insert-built reference.
func TestBulkLoadRangeScan(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), 1<<20)
	keys := sortedKeys(42, 5000)
	bulk, ins := buildBoth(t, bp, keys)
	for _, start := range []int{0, 1, 17, 2499, 4999} {
		var bks, iks [][]byte
		stop := 100
		scan := func(tr *BTree, sink *[][]byte) {
			n := 0
			if err := tr.Scan(keys[start], func(k []byte, _ uint64) bool {
				*sink = append(*sink, append([]byte(nil), k...))
				n++
				return n < stop
			}); err != nil {
				t.Fatal(err)
			}
		}
		scan(bulk, &bks)
		scan(ins, &iks)
		if len(bks) != len(iks) {
			t.Fatalf("start %d: scan lengths %d vs %d", start, len(bks), len(iks))
		}
		for i := range bks {
			if !bytes.Equal(bks[i], iks[i]) {
				t.Fatalf("start %d row %d: %x vs %x", start, i, bks[i], iks[i])
			}
		}
	}
}

// TestBulkLoadRejectsUnsortedKeys: the ascending-keys contract is enforced,
// not assumed.
func TestBulkLoadRejectsUnsortedKeys(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), 1<<20)
	bl := NewBulkLoader(bp)
	if err := bl.Add([]byte("b"), 1); err != nil {
		t.Fatal(err)
	}
	if err := bl.Add([]byte("b"), 2); err == nil {
		t.Fatal("duplicate key accepted")
	}
	bl = NewBulkLoader(bp)
	if err := bl.Add([]byte("b"), 1); err != nil {
		t.Fatal(err)
	}
	if err := bl.Add([]byte("a"), 2); err == nil {
		t.Fatal("descending key accepted")
	}
}

// TestBulkLoadDenser: bulk loading must not use more pages than insert
// building (it packs pages full; splits leave them half full).
func TestBulkLoadDenser(t *testing.T) {
	keys := sortedKeys(3, 20000)
	pagerB := NewMemPager()
	bpB := NewBufferPool(pagerB, 1<<20)
	bl := NewBulkLoader(bpB)
	for i, k := range keys {
		if err := bl.Add(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	pagerI := NewMemPager()
	bpI := NewBufferPool(pagerI, 1<<20)
	tr, err := NewBTree(bpI)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := pagerB.NumPages(), pagerI.NumPages(); got > want {
		t.Fatalf("bulk load used %d pages, insert build %d", got, want)
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	keys := sortedKeys(9, 50000)
	b.Run("BulkLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp := NewBufferPool(NewMemPager(), 16<<20)
			bl := NewBulkLoader(bp)
			for j, k := range keys {
				if err := bl.Add(k, uint64(j)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := bl.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp := NewBufferPool(NewMemPager(), 16<<20)
			tr, err := NewBTree(bp)
			if err != nil {
				b.Fatal(err)
			}
			for j, k := range keys {
				if err := tr.Insert(k, uint64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
