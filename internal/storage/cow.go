package storage

import (
	"encoding/binary"
	"fmt"
)

// Cow tracks one copy-on-write write batch against B+-trees sharing a
// buffer pool. Pages the batch allocates are "fresh": invisible to any
// published snapshot, so later inserts of the same batch mutate them in
// place instead of copying again. Pages the batch supersedes (copied from
// a published tree version) are recorded in Freed; the caller hands them
// to the epoch manager, which returns them to the pool's free list once no
// snapshot can reference them.
//
// A Cow is single-writer state: it must not be shared between goroutines.
type Cow struct {
	bp    *BufferPool
	fresh map[PageID]struct{}
	freed []PageID
}

// NewCow starts a copy-on-write batch on bp.
func NewCow(bp *BufferPool) *Cow {
	return &Cow{bp: bp, fresh: make(map[PageID]struct{})}
}

// Freed returns the pages this batch superseded, in supersession order.
// They are still referenced by the pre-batch tree versions; free them only
// once every snapshot holding those versions has retired.
func (c *Cow) Freed() []PageID { return c.freed }

// newPage allocates a page owned (and therefore mutable in place) by this
// batch.
func (c *Cow) newPage() (*Frame, PageID, error) {
	f, id, err := c.bp.NewPage()
	if err != nil {
		return nil, InvalidPage, err
	}
	c.fresh[id] = struct{}{}
	return f, id, nil
}

// writable returns a pinned frame the batch may mutate: page id itself
// when the batch allocated it, otherwise a fresh copy of it (recording id
// as superseded). The caller must Unpin the returned frame.
func (c *Cow) writable(id PageID) (*Frame, PageID, error) {
	if _, ok := c.fresh[id]; ok {
		f, err := c.bp.Fetch(id)
		return f, id, err
	}
	of, err := c.bp.Fetch(id)
	if err != nil {
		return nil, InvalidPage, err
	}
	nf, nid, err := c.newPage()
	if err != nil {
		c.bp.Unpin(of, false)
		return nil, InvalidPage, err
	}
	copy(nf.Data(), of.Data())
	c.bp.Unpin(of, false)
	c.freed = append(c.freed, id)
	return nf, nid, nil
}

// InsertCow upserts key → value without modifying any page a published
// snapshot can see: every page on the root-to-leaf path that the batch did
// not itself allocate is path-copied, and the returned tree points at the
// (possibly new) root. The receiver is left untouched, so both versions
// remain readable; unchanged subtrees are shared between them.
func (t *BTree) InsertCow(c *Cow, key []byte, value uint64) (*BTree, error) {
	if len(key) > MaxKeyLen {
		return nil, fmt.Errorf("storage: key of %d bytes exceeds max %d", len(key), MaxKeyLen)
	}
	newRoot, sp, err := t.cowInsertAt(c, t.root, key, value)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		// Root split: the new root is always a fresh page.
		f, id, err := c.newPage()
		if err != nil {
			return nil, err
		}
		p := f.Data()
		initNode(p, btKindInternal)
		setLink(p, newRoot)
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], uint32(sp.right))
		insertCell(p, 0, sp.key, tail[:])
		c.bp.Unpin(f, true)
		newRoot = id
	}
	if newRoot == t.root {
		return t, nil
	}
	return &BTree{bp: t.bp, root: newRoot}, nil
}

// cowInsertAt inserts below page id, copying the page first unless this
// batch owns it. It returns the page standing in for id in the new
// version (id itself when nothing changed or the page was already fresh)
// plus any separator to promote.
func (t *BTree) cowInsertAt(c *Cow, id PageID, key []byte, value uint64) (PageID, *splitResult, error) {
	f, err := c.bp.Fetch(id)
	if err != nil {
		return InvalidPage, nil, err
	}
	p := f.Data()

	if p[0] == btKindLeaf {
		// An upsert always mutates the leaf, so copy unconditionally.
		c.bp.Unpin(f, false)
		wf, nid, err := c.writable(id)
		if err != nil {
			return InvalidPage, nil, err
		}
		wp := wf.Data()
		i, exact := search(wp, key)
		if exact {
			setLeafValue(wp, i, value)
			c.bp.Unpin(wf, true)
			return nid, nil, nil
		}
		if freeSpace(wp) >= cellSize(len(key), btKindLeaf) {
			var tail [8]byte
			binary.LittleEndian.PutUint64(tail[:], value)
			insertCell(wp, i, key, tail[:])
			c.bp.Unpin(wf, true)
			return nid, nil, nil
		}
		sp, err := t.splitLeaf(wf, key, value, c.newPage)
		c.bp.Unpin(wf, true)
		return nid, sp, err
	}

	child := descend(p, key)
	c.bp.Unpin(f, false)
	newChild, sp, err := t.cowInsertAt(c, child, key, value)
	if err != nil {
		return InvalidPage, nil, err
	}
	if newChild == child && sp == nil {
		// The child was already fresh and absorbed the insert in place:
		// this node's pointer is still right, nothing to touch.
		return id, nil, nil
	}
	wf, nid, err := c.writable(id)
	if err != nil {
		return InvalidPage, nil, err
	}
	wp := wf.Data()
	if newChild != child {
		redirectChild(wp, key, newChild)
	}
	if sp == nil {
		c.bp.Unpin(wf, true)
		return nid, nil, nil
	}
	i, _ := search(wp, sp.key)
	if freeSpace(wp) >= cellSize(len(sp.key), btKindInternal) {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], uint32(sp.right))
		insertCell(wp, i, sp.key, tail[:])
		c.bp.Unpin(wf, true)
		return nid, nil, nil
	}
	up, err := t.splitInternal(wf, sp, c.newPage)
	c.bp.Unpin(wf, true)
	return nid, up, err
}

// redirectChild repoints the child pointer that descend(p, key) follows.
func redirectChild(p []byte, key []byte, nid PageID) {
	i, exact := search(p, key)
	switch {
	case exact:
		setChildAt(p, i, nid)
	case i == 0:
		setLink(p, nid)
	default:
		setChildAt(p, i-1, nid)
	}
}

// setChildAt overwrites the child pointer of internal cell i.
func setChildAt(p []byte, i int, v PageID) {
	off := slotOff(p, i)
	klen := int(binary.LittleEndian.Uint16(p[off:]))
	binary.LittleEndian.PutUint32(p[off+2+klen:], uint32(v))
}
