package exec

import (
	"fmt"

	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// NaiveMatch enumerates all matches of p in g by backtracking over extents,
// checking reachability conditions against a precomputed transitive
// closure. It is exponential in memory-friendly form and serves as ground
// truth in tests and as a no-index baseline on small graphs.
func NaiveMatch(g *graph.Graph, p *pattern.Pattern) (*rjoin.Table, error) {
	labels := make([]graph.Label, p.NumNodes())
	for i, name := range p.Nodes {
		l := g.Labels().Lookup(name)
		if l == graph.InvalidLabel {
			return nil, fmt.Errorf("exec: label %q not in data graph", name)
		}
		labels[i] = l
	}
	tc := graph.NewTransitiveClosure(g)

	// Order pattern nodes so each (after the first) connects to an earlier
	// node, letting partial assignments be checked incrementally.
	order, orderedChecks := matchOrder(p)

	nodes := make([]int, p.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	out := rjoin.NewTable(nodes...)
	assign := make([]graph.NodeID, p.NumNodes())

	var rec func(step int)
	rec = func(step int) {
		if step == len(order) {
			row := make([]graph.NodeID, len(assign))
			copy(row, assign)
			out.Rows = append(out.Rows, row)
			return
		}
		v := order[step]
	candidates:
		for _, cand := range g.Extent(labels[v]) {
			assign[v] = cand
			for _, e := range orderedChecks[step] {
				pe := p.Edges[e]
				if !tc.Reaches(assign[pe.From], assign[pe.To]) {
					continue candidates
				}
			}
			rec(step + 1)
		}
	}
	rec(0)
	return out, nil
}

// matchOrder returns a connected node visit order and, per step, the edges
// fully bound at that step (checkable once the step's node is assigned).
func matchOrder(p *pattern.Pattern) ([]int, [][]int) {
	n := p.NumNodes()
	order := make([]int, 0, n)
	placed := make([]bool, n)
	order = append(order, 0)
	placed[0] = true
	for len(order) < n {
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			connected := false
			for _, e := range p.Edges {
				if (e.From == v && placed[e.To]) || (e.To == v && placed[e.From]) {
					connected = true
					break
				}
			}
			if connected {
				order = append(order, v)
				placed[v] = true
			}
		}
	}
	checks := make([][]int, n)
	seen := make([]bool, n)
	for step, v := range order {
		seen[v] = true
		for ei, e := range p.Edges {
			if (e.From == v || e.To == v) && seen[e.From] && seen[e.To] {
				already := false
				for s := 0; s < step; s++ {
					for _, pe := range checks[s] {
						if pe == ei {
							already = true
						}
					}
				}
				if !already {
					checks[step] = append(checks[step], ei)
				}
			}
		}
	}
	return order, checks
}
