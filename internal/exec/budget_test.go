package exec

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// TestBudgetCrosscheck is the governor's end-to-end property: for every
// algorithm, worker degree (serial and GOMAXPROCS), and row limit, the
// budgeted run returns exactly the unbudgeted run's first-n rows, with the
// Truncated flag set iff rows were actually dropped. Runs under -race in
// the verify tier, so it also exercises the budget's concurrent accounting.
func TestBudgetCrosscheck(t *testing.T) {
	g := randomGraph(21, 160, 220, 5)
	db := mustDB(t, g)
	ctx := context.Background()

	for _, ps := range execPatterns {
		p := pattern.MustParse(ps)
		for _, algo := range []Algorithm{DP, DPS, DPSMerged} {
			plan, err := BuildPlan(db, p, algo)
			if err != nil {
				t.Fatalf("%s/%v: %v", ps, algo, err)
			}
			full, err := RunContextConfig(ctx, db, plan, RunConfig{Workers: 1})
			if err != nil {
				t.Fatalf("%s/%v: %v", ps, algo, err)
			}
			for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				// The full run is row-identical at every degree (the
				// PR-2 determinism guarantee the pushdown builds on).
				again, err := RunContextConfig(ctx, db, plan, RunConfig{Workers: workers})
				if err != nil {
					t.Fatalf("%s/%v w=%d: %v", ps, algo, workers, err)
				}
				if !reflect.DeepEqual(again.Rows, full.Rows) {
					t.Fatalf("%s/%v w=%d: unbudgeted run not row-identical to serial", ps, algo, workers)
				}
				for _, n := range []int{1, 2, 5, full.Len(), full.Len() + 3} {
					if n == 0 {
						continue // 0 means "no limit"
					}
					b := &rjoin.Budget{ResultRows: n}
					got, err := RunContextConfig(ctx, db, plan, RunConfig{Workers: workers, Budget: b})
					if err != nil {
						t.Fatalf("%s/%v w=%d limit=%d: %v", ps, algo, workers, n, err)
					}
					wantLen := min(n, full.Len())
					if got.Len() != wantLen {
						t.Fatalf("%s/%v w=%d limit=%d: %d rows, want %d",
							ps, algo, workers, n, got.Len(), wantLen)
					}
					if !reflect.DeepEqual(got.Rows, full.Rows[:wantLen]) {
						t.Fatalf("%s/%v w=%d limit=%d: rows are not the unbudgeted prefix",
							ps, algo, workers, n)
					}
					if wantTrunc := full.Len() > n; b.Truncated() != wantTrunc {
						t.Fatalf("%s/%v w=%d limit=%d: Truncated=%v, want %v",
							ps, algo, workers, n, b.Truncated(), wantTrunc)
					}
				}
			}
		}
	}
}

// TestBudgetKillsQuery: tight intermediate budgets fail the query with the
// typed errors, wrapped with the failing step's position.
func TestBudgetKillsQuery(t *testing.T) {
	g := randomGraph(22, 160, 220, 5)
	db := mustDB(t, g)
	ctx := context.Background()
	p := pattern.MustParse("A->C; B->C; C->D; D->E")
	plan, err := BuildPlan(db, p, DPS)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunContextConfig(ctx, db, plan, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() == 0 {
		t.Fatal("empty result; pick another seed")
	}

	for _, workers := range []int{1, 0} {
		if _, err := RunContextConfig(ctx, db, plan, RunConfig{
			Workers: workers,
			Budget:  &rjoin.Budget{MaxTableRows: 1},
		}); !errors.Is(err, rjoin.ErrRowLimit) {
			t.Fatalf("workers=%d: got %v, want ErrRowLimit", workers, err)
		}
		if _, err := RunContextConfig(ctx, db, plan, RunConfig{
			Workers: workers,
			Budget:  &rjoin.Budget{MaxBytes: 8},
		}); !errors.Is(err, rjoin.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: got %v, want ErrBudgetExceeded", workers, err)
		}
	}

	// A generous budget lets the query through and reports its footprint.
	b := &rjoin.Budget{MaxTableRows: 1 << 20, MaxBytes: 1 << 30}
	got, err := RunContextConfig(ctx, db, plan, RunConfig{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != full.Len() {
		t.Fatalf("budgeted rows %d != unbudgeted %d", got.Len(), full.Len())
	}
	if b.Bytes() <= 0 || b.PeakRows() <= 0 {
		t.Fatalf("no accounting recorded: bytes=%d peak=%d", b.Bytes(), b.PeakRows())
	}
	if b.Truncated() {
		t.Fatal("Truncated set without a result-row limit")
	}
}
