package exec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// randomGraph builds a forest of random trees (blocks of ~40 nodes) with
// cross links only from even blocks into odd blocks, plus occasional
// intra-block back edges for cycles. Reachability sets stay bounded by a
// few blocks, like real XMark-shaped data (shallow documents stitched by
// ID/IDREF links), so pattern results cannot explode.
func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nlabels; i++ {
		b.Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	const block = 40
	nBlocks := (n + block - 1) / block
	// Tree edges within each block.
	for i := 0; i < n; i++ {
		start := (i / block) * block
		if i == start {
			continue // block root
		}
		parent := start + rng.Intn(i-start)
		b.AddEdge(graph.NodeID(parent), graph.NodeID(i))
		if rng.Intn(25) == 0 { // occasional back edge → cycle
			b.AddEdge(graph.NodeID(i), graph.NodeID(parent))
		}
	}
	// Cross links even → odd block only (keeps reach sets bounded).
	cross := m - n
	if cross < nBlocks {
		cross = nBlocks
	}
	for i := 0; i < cross && nBlocks > 1; i++ {
		eb := rng.Intn((nBlocks+1)/2) * 2
		ob := rng.Intn(nBlocks/2)*2 + 1
		u := eb*block + rng.Intn(min(block, n-eb*block))
		v := ob*block + rng.Intn(min(block, n-ob*block))
		if u < n && v < n {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Build()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func mustDB(t testing.TB, g *graph.Graph) *gdb.DB {
	t.Helper()
	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func sortedRows(t *rjoin.Table) [][]graph.NodeID {
	t.SortRows()
	return t.Rows
}

var execPatterns = []string{
	"A->B",
	"A->B; B->C",
	"A->C; B->C",
	"A->B; A->C",
	"A->C; B->C; C->D; D->E",
	"A->B; B->C; A->C",
	"A->B; B->C; C->D; A->D",
	"A->C; B->C; C->D; C->E",
}

// TestDPAndDPSMatchNaive is the end-to-end correctness property: for random
// graphs and a battery of pattern shapes (paths, trees, DAG patterns with
// cycles of conditions), DP plans, DPS plans, and the naive matcher must
// produce identical result sets.
func TestDPAndDPSMatchNaive(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 160, 220, 5)
		db, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		for _, ps := range execPatterns {
			p := pattern.MustParse(ps)
			want, err := NaiveMatch(g, p)
			if err != nil {
				return false
			}
			dpRes, err := Query(db, p, DP)
			if err != nil {
				t.Logf("seed %d pattern %s: DP error: %v", seed, ps, err)
				return false
			}
			dpsRes, err := Query(db, p, DPS)
			if err != nil {
				t.Logf("seed %d pattern %s: DPS error: %v", seed, ps, err)
				return false
			}
			mergedRes, err := Query(db, p, DPSMerged)
			if err != nil {
				t.Logf("seed %d pattern %s: DPS-merged error: %v", seed, ps, err)
				return false
			}
			w := sortedRows(want)
			if !reflect.DeepEqual(sortedRows(dpRes), w) {
				t.Logf("seed %d pattern %s: DP rows %d != naive %d", seed, ps, dpRes.Len(), want.Len())
				return false
			}
			if !reflect.DeepEqual(sortedRows(dpsRes), w) {
				t.Logf("seed %d pattern %s: DPS rows %d != naive %d", seed, ps, dpsRes.Len(), want.Len())
				return false
			}
			if !reflect.DeepEqual(sortedRows(mergedRes), w) {
				t.Logf("seed %d pattern %s: DPS-merged rows %d != naive %d", seed, ps, mergedRes.Len(), want.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryWithPlanReturnsPlan(t *testing.T) {
	g := randomGraph(3, 80, 200, 5)
	db := mustDB(t, g)
	p := pattern.MustParse("A->C; B->C; C->D")
	res, plan, err := QueryWithPlan(db, p, DPS)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Algorithm != "DPS" {
		t.Fatalf("plan = %v", plan)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if len(res.Cols) != 4 {
		t.Fatalf("result cols = %v, want 4 pattern nodes", res.Cols)
	}
	// Columns must be in pattern-node order.
	for i, c := range res.Cols {
		if c != i {
			t.Fatalf("result cols %v not in pattern order", res.Cols)
		}
	}
}

// TestResultRowsSatisfyConditions verifies every returned row satisfies all
// reachability conditions (soundness independent of the naive matcher).
func TestResultRowsSatisfyConditions(t *testing.T) {
	g := randomGraph(4, 60, 140, 5)
	db := mustDB(t, g)
	p := pattern.MustParse("A->B; B->C; A->C")
	res, err := Query(db, p, DPS)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for _, e := range p.Edges {
			if !graph.Reaches(g, row[e.From], row[e.To]) {
				t.Fatalf("row %v violates %s->%s", row, p.Nodes[e.From], p.Nodes[e.To])
			}
		}
		for i, v := range row {
			if g.LabelNameOf(v) != p.Nodes[i] {
				t.Fatalf("row %v column %d has wrong label", row, i)
			}
		}
	}
}

func TestNaiveMatchLabelsMissing(t *testing.T) {
	g := randomGraph(5, 20, 40, 2)
	if _, err := NaiveMatch(g, pattern.MustParse("A->Z")); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

func TestRunRejectsBadPlans(t *testing.T) {
	g := randomGraph(6, 40, 80, 5)
	db := mustDB(t, g)
	snap, release := db.Pin()
	defer release()
	b, err := optimizer.Bind(snap, pattern.MustParse("A->B; B->C"))
	if err != nil {
		t.Fatal(err)
	}
	bad := &optimizer.Plan{
		Binding: b,
		Steps:   []optimizer.Step{{Kind: optimizer.StepFetch, Edges: []int{0}}},
	}
	if _, err := Run(db, bad); err == nil {
		t.Fatal("expected error running fetch without a table")
	}
	empty := &optimizer.Plan{Binding: b}
	if _, err := Run(db, empty); err == nil {
		t.Fatal("expected error for empty plan")
	}
}

// TestDPSLowerIO: on a star pattern over a mid-sized graph, the DPS plan
// should incur no more I/O than the DP plan (the paper's Section 6.2
// finding, in weak form).
func TestDPSLowerIO(t *testing.T) {
	g := randomGraph(7, 2000, 5000, 5)
	db := mustDB(t, g)
	p := pattern.MustParse("A->C; B->C; C->D; C->E")

	run := func(algo Algorithm) int64 {
		db.ClearCaches()
		db.ResetIOStats()
		if _, err := Query(db, p, algo); err != nil {
			t.Fatal(err)
		}
		return db.IOStats().Logical()
	}
	dpIO := run(DP)
	dpsIO := run(DPS)
	if dpsIO > dpIO {
		t.Fatalf("DPS I/O %d exceeds DP I/O %d", dpsIO, dpIO)
	}
}

func TestAlgorithmString(t *testing.T) {
	if DP.String() != "DP" || DPS.String() != "DPS" || DPSMerged.String() != "DPS-merged" {
		t.Fatal("Algorithm String wrong")
	}
}

func BenchmarkQueryDP(b *testing.B) {
	g := randomGraph(8, 3000, 7000, 5)
	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	p := pattern.MustParse("A->C; B->C; C->D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Query(db, p, DP); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryDPS(b *testing.B) {
	g := randomGraph(8, 3000, 7000, 5)
	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	p := pattern.MustParse("A->C; B->C; C->D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Query(db, p, DPS); err != nil {
			b.Fatal(err)
		}
	}
}
