// Package exec evaluates optimized plans against a graph database, binding
// the optimizer's steps to the R-join/R-semijoin operators. It also
// provides a naive backtracking matcher used as ground truth and as a
// measurable worst-case baseline.
package exec

import (
	"context"
	"fmt"
	"time"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
	"fastmatch/internal/storage"
)

// StepTrace records one executed plan step for EXPLAIN-style output.
type StepTrace struct {
	Step optimizer.Step
	// Rows is the temporal table size after the step.
	Rows int
	// IO is the logical page I/O the step performed (including its spill).
	// Under concurrent execution the counter is shared, so traffic from
	// overlapping queries may be attributed to the step.
	IO int64
	// ElapsedMS is the step's wall time in milliseconds.
	ElapsedMS float64
	// Workers is the intra-operator parallelism degree the step ran under.
	Workers int
	// CenterCacheHits is how many getCenters computations the step skipped
	// via the per-query center cache (e.g. a Fetch reusing its Filter's
	// center sets).
	CenterCacheHits int64
	// Seeks/IterNexts are the step's sorted-iterator counters: positioning
	// operations and candidate values advanced through, respectively.
	// Nonzero only for WCOJ steps (see rjoin.RuntimeStats).
	Seeks     int64
	IterNexts int64
	// Tier is the execution tier the plan ran under: 1 = index-only fast
	// path, 2 = fan-signature prefilter (impossible pattern), 3 = full
	// operator pipeline.
	Tier int
	// FastIndex names the index structure a tier-1/2 answer was read from
	// (empty on tier 3).
	FastIndex string
}

// RunConfig tunes one plan execution.
type RunConfig struct {
	// Workers is the intra-operator parallelism degree: operators partition
	// their center lists / row ranges across up to Workers goroutines
	// (<= 0 selects GOMAXPROCS; 1 is the serial reference path).
	Workers int
	// Runtime, when non-nil, supplies a preconstructed operator runtime
	// (overriding Workers); callers use this to read the runtime's
	// counters after the run.
	Runtime *rjoin.Runtime
	// Budget, when non-nil, is the query's resource governor: its
	// ResultRows limit is pushed into the plan's final operator (the run
	// returns a truncated prefix, with Budget.Truncated set, instead of
	// materialising the full result), its MaxTableRows/MaxBytes caps fail
	// the run with the typed rjoin.ErrRowLimit/rjoin.ErrBudgetExceeded,
	// and its counters (Bytes, PeakRows) report what the run used.
	// Deadlines stay on the context.
	Budget *rjoin.Budget
}

// runtimeFor returns the operator runtime for one plan execution. A
// tier-1 fast-path plan (when no runtime is supplied) gets the
// lightweight serial runtime instead of a worker pool; it reads center
// sets and subclusters through the snapshot's per-epoch memos rather
// than a per-query cache.
func (cfg RunConfig) runtimeFor(plan *optimizer.Plan) *rjoin.Runtime {
	rt := cfg.Runtime
	if rt == nil {
		if plan.Fast != nil {
			rt = rjoin.NewFastRuntime()
		} else {
			rt = rjoin.NewRuntime(cfg.Workers)
		}
	}
	if cfg.Budget != nil {
		rt.SetBudget(cfg.Budget)
	}
	return rt
}

// Run executes a plan and returns the full result table, with one column
// per pattern node in pattern-node order and duplicate rows removed.
func Run(db *gdb.DB, plan *optimizer.Plan) (*rjoin.Table, error) {
	return RunContext(context.Background(), db, plan)
}

// RunContext is Run honouring ctx: execution is abandoned mid-operator
// (with ctx.Err()) once the context is cancelled or past its deadline.
func RunContext(ctx context.Context, db *gdb.DB, plan *optimizer.Plan) (*rjoin.Table, error) {
	t, _, err := RunWithTrace(ctx, db, plan, false)
	return t, err
}

// RunContextConfig is RunContext with explicit execution configuration.
func RunContextConfig(ctx context.Context, db *gdb.DB, plan *optimizer.Plan, cfg RunConfig) (*rjoin.Table, error) {
	t, _, err := RunWithTraceConfig(ctx, db, plan, false, cfg)
	return t, err
}

// RunWithTrace is RunContext that also reports per-step actual row counts,
// I/O, and elapsed time when trace is true. It runs under the default
// configuration (GOMAXPROCS intra-operator workers).
func RunWithTrace(ctx context.Context, db *gdb.DB, plan *optimizer.Plan, trace bool) (*rjoin.Table, []StepTrace, error) {
	return RunWithTraceConfig(ctx, db, plan, trace, RunConfig{})
}

// RunWithTraceConfig executes a plan under cfg: one rjoin.Runtime — the
// worker-pool degree and the per-query center cache — is shared by all
// steps of the plan, so a JoinFilterFetch's Fetch reuses the center sets
// its Filter computed.
func RunWithTraceConfig(ctx context.Context, db *gdb.DB, plan *optimizer.Plan, trace bool, cfg RunConfig) (*rjoin.Table, []StepTrace, error) {
	// The whole execution pins one snapshot epoch: concurrent edge inserts
	// publish new epochs without blocking this run, and every operator of
	// this plan reads the index version pinned here — never a torn state.
	s, release := db.Pin()
	defer release()
	return RunSnapWithTraceConfig(ctx, s, plan, trace, cfg)
}

// RunSnapConfig executes a plan against an explicitly pinned snapshot
// epoch. Callers that plan and execute as one operation (the query server)
// pin once and pass the same snapshot to BuildPlanSnap and here.
func RunSnapConfig(ctx context.Context, s *gdb.Snap, plan *optimizer.Plan, cfg RunConfig) (*rjoin.Table, error) {
	t, _, err := RunSnapWithTraceConfig(ctx, s, plan, false, cfg)
	return t, err
}

// RunSnapWithTraceConfig is RunWithTraceConfig against a pinned snapshot.
func RunSnapWithTraceConfig(ctx context.Context, db *gdb.Snap, plan *optimizer.Plan, trace bool, cfg RunConfig) (*rjoin.Table, []StepTrace, error) {
	if plan.Fast != nil && plan.Fast.Kind == optimizer.FPImpossible {
		return runImpossible(ctx, plan, trace)
	}
	// Tier-1 fast path: the plan's own operators run, but on a serial
	// runtime with no per-step spill and a dedup-free final projection.
	// The spill is I/O-charged but never budget-charged, and the admitted
	// plan shapes produce pairwise distinct rows, so the result rows, their
	// order, and all budget/limit behaviour are identical to the full
	// pipeline at workers=1.
	fast := plan.Fast != nil
	rt := cfg.runtimeFor(plan)
	b := plan.Binding
	// Intermediate results spill through a scratch heap private to this
	// run: the pages share the database's buffer pool (so their size is
	// charged as I/O, as in the paper's disk-resident executor) but no
	// state is shared between concurrent queries, and Release recycles the
	// pages afterwards.
	var scratch *storage.HeapFile
	if !fast {
		scratch = db.NewScratchHeap()
		defer scratch.Release()
	}
	bdg := cfg.Budget
	var traces []StepTrace
	var t *rjoin.Table
	last := len(plan.Steps) - 1
	for si, s := range plan.Steps {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// Limit pushdown: the plan's final operator stops producing once
		// the result-row limit is exceeded and truncates its merged
		// output, so rows past the limit are never materialised. For a
		// JoinFilterFetch the limit is armed only after its Filter phase —
		// truncating the filtered input would drop rows the Fetch still
		// needs.
		pushLimit := func() {
			if si == last && bdg != nil && bdg.ResultRows > 0 {
				rt.PushLimit(bdg.ResultRows)
			}
		}
		stepStart := time.Now()
		ioBefore := db.IOStats().Logical()
		statsBefore := rt.Stats()
		var err error
		switch s.Kind {
		case optimizer.StepHPSJ:
			if t != nil {
				return nil, nil, fmt.Errorf("exec: step %d: HPSJ mid-plan", si+1)
			}
			pushLimit()
			t, err = rt.HPSJ(ctx, db, b.Conds[s.Edges[0]])
		case optimizer.StepWCOJ:
			if t != nil {
				return nil, nil, fmt.Errorf("exec: step %d: WCOJ mid-plan", si+1)
			}
			conds := make([]rjoin.Cond, len(s.Edges))
			for i, e := range s.Edges {
				conds[i] = b.Conds[e]
			}
			pushLimit()
			t, err = rt.WCOJ(ctx, db, conds, s.VarOrder)
		case optimizer.StepSemijoinGroup:
			if t == nil {
				t = extentTable(db.Graph(), b, s.Node)
				if err := bdg.ChargeBytes(int64(t.Len()) * 4); err != nil {
					return nil, nil, fmt.Errorf("exec: step %d (%v): %w", si+1, s.Kind, err)
				}
			}
			conds := make([]rjoin.Cond, len(s.Edges))
			for i, e := range s.Edges {
				conds[i] = b.Conds[e]
			}
			pushLimit()
			t, err = rt.FilterGroup(ctx, db, t, conds, s.Node, s.OutSide)
		case optimizer.StepFetch:
			t, err = requireTable(t, si)
			if err == nil {
				pushLimit()
				t, err = rt.Fetch(ctx, db, t, b.Conds[s.Edges[0]])
			}
		case optimizer.StepJoinFilterFetch:
			t, err = requireTable(t, si)
			if err == nil {
				t, err = rt.Filter(ctx, db, t, b.Conds[s.Edges[0]])
			}
			if err == nil {
				pushLimit()
				t, err = rt.Fetch(ctx, db, t, b.Conds[s.Edges[0]])
			}
		case optimizer.StepSelection:
			t, err = requireTable(t, si)
			if err == nil {
				pushLimit()
				t, err = rt.Selection(ctx, db, t, b.Conds[s.Edges[0]])
			}
		default:
			err = fmt.Errorf("exec: unknown step kind %v", s.Kind)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("exec: step %d (%v): %w", si+1, s.Kind, err)
		}
		// Per-step budget checkpoint: operators check at their own merge
		// points; this additionally covers tables the executor builds
		// itself (extent tables) and keeps the peak-rows statistic exact.
		bdg.NoteRows(t.Len())
		if err := bdg.CheckRows(t.Len()); err != nil {
			return nil, nil, fmt.Errorf("exec: step %d (%v): %w", si+1, s.Kind, err)
		}
		if err := bdg.CheckBytes(); err != nil {
			return nil, nil, fmt.Errorf("exec: step %d (%v): %w", si+1, s.Kind, err)
		}
		// Materialise the temporal table through the storage engine: the
		// paper's executor keeps intermediate results in disk-resident
		// tables, so their size is part of the measured I/O cost.
		if !fast {
			if err := spill(scratch, t); err != nil {
				return nil, nil, fmt.Errorf("exec: step %d (%v): spill: %w", si+1, s.Kind, err)
			}
		}
		if trace {
			statsAfter := rt.Stats()
			st := StepTrace{
				Step:            s,
				Rows:            t.Len(),
				IO:              db.IOStats().Logical() - ioBefore,
				ElapsedMS:       float64(time.Since(stepStart).Microseconds()) / 1000,
				Workers:         rt.Workers(),
				CenterCacheHits: statsAfter.CenterCacheHits - statsBefore.CenterCacheHits,
				Seeks:           statsAfter.Seeks - statsBefore.Seeks,
				IterNexts:       statsAfter.IterNexts - statsBefore.IterNexts,
				Tier:            plan.Tier(),
			}
			if fast {
				st.FastIndex = plan.Fast.Index
			}
			traces = append(traces, st)
		}
	}
	if t == nil {
		return nil, nil, fmt.Errorf("exec: empty plan")
	}
	nodes := make([]int, b.Pattern.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	var out *rjoin.Table
	var err error
	if fast {
		// Tier-1 plans produce pairwise distinct rows by construction, so
		// the dedup projection reduces to a pure column permutation.
		out, err = t.Permute(nodes)
	} else {
		out, err = t.Project(nodes)
	}
	// Safety net for the result-row limit after projection. Operators
	// already truncated at their merge points, so this only fires if a
	// future operator forgets the pushdown.
	if err == nil && bdg != nil && bdg.ResultRows > 0 && out.Len() > bdg.ResultRows {
		out.Rows = out.Rows[:bdg.ResultRows]
		bdg.MarkTruncated()
	}
	return out, traces, err
}

// runImpossible answers a tier-2 plan — one the fan-signature prefilter
// proved empty — with zero operator work: an empty table with one column
// per pattern node, exactly what the full pipeline's final projection of
// an empty temporal table produces.
func runImpossible(ctx context.Context, plan *optimizer.Plan, trace bool) (*rjoin.Table, []StepTrace, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	nodes := make([]int, plan.Binding.Pattern.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	out := rjoin.NewTable(nodes...)
	var traces []StepTrace
	if trace {
		traces = []StepTrace{{
			Step:      plan.Steps[0],
			Rows:      0,
			Workers:   1,
			Tier:      2,
			FastIndex: plan.Fast.Index,
		}}
	}
	return out, traces, nil
}

// spill writes a temporal table to the query's scratch heap and reads it
// back, replacing the table's rows with the materialised copy. With the
// paper's 1 MB buffer pool, tables larger than the pool incur real
// evictions and re-reads — charging intermediate-result size as I/O exactly
// as a disk-based executor does.
func spill(scratch *storage.HeapFile, t *rjoin.Table) error {
	if t == nil || len(t.Rows) == 0 {
		return nil
	}
	rid, err := scratch.Insert(t.EncodeRows())
	if err != nil {
		return err
	}
	data, err := scratch.Read(rid)
	if err != nil {
		return err
	}
	return t.DecodeRows(data)
}

func requireTable(t *rjoin.Table, si int) (*rjoin.Table, error) {
	if t == nil {
		return nil, fmt.Errorf("exec: step %d needs a temporal table", si+1)
	}
	return t, nil
}

// extentTable builds the single-column temporal table holding ext(X) for a
// pattern node (the base table a leading Filter-move scans).
func extentTable(g *graph.Graph, b *optimizer.Binding, node int) *rjoin.Table {
	t := rjoin.NewTable(node)
	ext := g.Extent(b.Labels[node])
	// One flat backing array for all the single-element rows: the extent
	// can be the query's largest table, and a per-row allocation here
	// shows up in every leading-semijoin plan.
	arena := make([]graph.NodeID, len(ext))
	copy(arena, ext)
	t.Rows = make([][]graph.NodeID, len(ext))
	for i := range ext {
		t.Rows[i] = arena[i : i+1 : i+1]
	}
	return t
}

// Algorithm selects a planner for Query.
type Algorithm int

const (
	// DP is R-join order selection only (Section 4.1).
	DP Algorithm = iota
	// DPS interleaves R-joins with R-semijoins (Section 4.2).
	DPS
	// DPSMerged is DPS over the reduced status space with B_in and B_out
	// merged (the O(3^n) variant of Section 4.2).
	DPSMerged
	// WCOJ forces the whole pattern through one worst-case-optimal multiway
	// R-join (leapfrog intersection), bypassing cost-based selection. The
	// DP/DPS planners already consider WCOJ steps for cyclic cores; this
	// forced mode exists for differential testing and benchmarking.
	WCOJ
)

func (a Algorithm) String() string {
	switch a {
	case DP:
		return "DP"
	case DPSMerged:
		return "DPS-merged"
	case WCOJ:
		return "WCOJ"
	default:
		return "DPS"
	}
}

// ParseAlgorithm maps the common spellings ("dp", "dps", "dps-merged",
// "wcoj") to an Algorithm; empty selects the default (DPS).
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "dps", "DPS":
		return DPS, nil
	case "dp", "DP":
		return DP, nil
	case "dps-merged", "dpsmerged", "DPS-merged":
		return DPSMerged, nil
	case "wcoj", "WCOJ":
		return WCOJ, nil
	default:
		return DPS, fmt.Errorf("exec: unknown algorithm %q (want dp, dps, dps-merged, or wcoj)", s)
	}
}

// BuildPlan binds a pattern against the database and optimizes it with the
// chosen planner under default cost parameters. It is the single planning
// entry point shared by Query, the Engine's Explain paths, and the query
// server's plan cache.
func BuildPlan(db *gdb.DB, p *pattern.Pattern, algo Algorithm) (*optimizer.Plan, error) {
	// Planning pins one snapshot epoch so the optimizer statistics it reads
	// never race a concurrent edge insert.
	s, release := db.Pin()
	defer release()
	return BuildPlanSnap(s, p, algo)
}

// BuildPlanSnap is BuildPlan against an explicitly pinned snapshot epoch.
// Plans are tiered by default; use BuildPlanSnapConfig to force tier 3.
func BuildPlanSnap(s *gdb.Snap, p *pattern.Pattern, algo Algorithm) (*optimizer.Plan, error) {
	return BuildPlanSnapConfig(s, p, algo, PlanConfig{})
}

// PlanConfig tunes plan construction.
type PlanConfig struct {
	// NoFastPath disables tiered execution: the fan-signature prefilter is
	// skipped and the optimized plan is not classified, so it always runs
	// the full tier-3 operator pipeline. Used by the differential tests and
	// benchmarks as the reference path, and by the server's -no-fastpath
	// escape hatch.
	NoFastPath bool
}

// BuildPlanSnapConfig is BuildPlanSnap with explicit plan configuration.
// Unless pc.NoFastPath is set, the pattern first passes the tier-2
// fan-signature prefilter (provably empty patterns get a single-step
// fast-path plan with no statistics scans at all), and the optimized plan
// is classified for the tier-1 index-only fast path.
func BuildPlanSnapConfig(s *gdb.Snap, p *pattern.Pattern, algo Algorithm, pc PlanConfig) (*optimizer.Plan, error) {
	if !pc.NoFastPath {
		if plan, err := optimizer.Prefilter(s, p); err != nil {
			return nil, err
		} else if plan != nil {
			return plan, nil
		}
	}
	b, err := optimizer.Bind(s, p)
	if err != nil {
		return nil, err
	}
	params := optimizer.DefaultCostParams()
	var plan *optimizer.Plan
	switch algo {
	case DP:
		plan, err = optimizer.OptimizeDP(b, params)
	case DPSMerged:
		plan, err = optimizer.OptimizeDPSMerged(b, params)
	case WCOJ:
		plan, err = optimizer.OptimizeWCOJ(b, params)
	default:
		plan, err = optimizer.OptimizeDPS(b, params)
	}
	if err != nil {
		return nil, err
	}
	if !pc.NoFastPath {
		optimizer.Classify(plan)
	}
	return plan, nil
}

// Query binds, optimizes (with default cost parameters), and runs a pattern
// in one call.
func Query(db *gdb.DB, p *pattern.Pattern, algo Algorithm) (*rjoin.Table, error) {
	t, _, err := QueryWithPlan(db, p, algo)
	return t, err
}

// QueryContext is Query honouring ctx for cancellation and deadlines.
func QueryContext(ctx context.Context, db *gdb.DB, p *pattern.Pattern, algo Algorithm) (*rjoin.Table, error) {
	plan, err := BuildPlan(db, p, algo)
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, db, plan)
}

// QueryWithPlan is Query returning the chosen plan as well.
func QueryWithPlan(db *gdb.DB, p *pattern.Pattern, algo Algorithm) (*rjoin.Table, *optimizer.Plan, error) {
	plan, err := BuildPlan(db, p, algo)
	if err != nil {
		return nil, nil, err
	}
	t, err := Run(db, plan)
	if err != nil {
		return nil, nil, err
	}
	return t, plan, nil
}
