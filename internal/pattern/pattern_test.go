package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperPattern(t *testing.T) {
	// Figure 1(b): A→C, B→C, C→D, D→E.
	p, err := Parse("A->C; B->C; C->D; D->E")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", p.NumNodes())
	}
	if p.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", p.NumEdges())
	}
	if p.NodeIndex("A") != 0 || p.NodeIndex("C") != 1 || p.NodeIndex("B") != 2 {
		t.Fatalf("node order: %v", p.Nodes)
	}
	if p.NodeIndex("Z") != -1 {
		t.Fatal("missing label should map to -1")
	}
	if got := p.String(); got != "A->C; B->C; C->D; D->E" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseWhitespaceAndNewlines(t *testing.T) {
	p, err := Parse("  A -> B \n B->C ;\n\n C -> D ")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 4 || p.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		frag string
	}{
		{"", "no edges"},
		{"A->", "empty label"},
		{"->B", "empty label"},
		{"A-B", "bad edge"},
		{"A->B->C", "bad edge"},
		{"A->A", "self edge"},
		{"A->B; A->B", "duplicate edge"},
		{"A->B; C->D", "not connected"},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): err = %v, want containing %q", c.in, err, c.frag)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("garbage")
}

func TestAdjacencyHelpers(t *testing.T) {
	p := MustParse("A->C; B->C; C->D; D->E")
	c := p.NodeIndex("C")
	if got := p.InEdges(c); len(got) != 2 {
		t.Fatalf("InEdges(C) = %v", got)
	}
	if got := p.OutEdges(c); len(got) != 1 {
		t.Fatalf("OutEdges(C) = %v", got)
	}
	if !p.Touches(0, p.NodeIndex("A")) || !p.Touches(0, c) {
		t.Fatal("Touches wrong for edge 0")
	}
	if p.Touches(0, p.NodeIndex("E")) {
		t.Fatal("Touches(A->C, E) should be false")
	}
}

func TestCanonicalIndependentOfOrder(t *testing.T) {
	a := MustParse("A->C; B->C; C->D")
	b := MustParse("C->D; A->C; B->C")
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical differs: %q vs %q", a.Canonical(), b.Canonical())
	}
	if a.String() == b.String() {
		t.Fatal("String should preserve input order (sanity)")
	}
}

func TestIsPathIsTree(t *testing.T) {
	cases := []struct {
		in   string
		path bool
		tree bool
	}{
		{"A->B; B->C", true, true},
		{"A->B; A->C", false, true},
		{"A->B; B->C; A->C", false, false}, // extra edge: a DAG pattern
		{"A->C; B->C", false, false},       // two roots
		{"A->B; B->C; C->D; D->E", true, true},
		{"A->B; B->C; B->D", false, true},
	}
	for _, c := range cases {
		p := MustParse(c.in)
		if p.IsPath() != c.path {
			t.Errorf("IsPath(%q) = %v, want %v", c.in, p.IsPath(), c.path)
		}
		if p.IsTree() != c.tree {
			t.Errorf("IsTree(%q) = %v, want %v", c.in, p.IsTree(), c.tree)
		}
	}
}

func TestNewRejectsEmptyLabels(t *testing.T) {
	if _, err := New([][2]string{{" ", "B"}}); err == nil {
		t.Fatal("expected error for blank label")
	}
}

// TestParseNeverPanics: arbitrary input must produce a value or an error,
// never a panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				t.Fail()
			}
		}()
		p, err := Parse(s)
		if err == nil && p == nil {
			return false
		}
		if err == nil {
			// Parsed patterns must re-parse from their own String form.
			if _, err2 := Parse(p.String()); err2 != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// A few structured near-miss inputs.
	for _, s := range []string{"->", ";;;", "a->b->", "a -> ;b", "-> ->", "a\n->\nb"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}
