// Package pattern models graph patterns: connected directed graphs whose
// nodes are labels and whose edges X→Y are reachability conditions
// (Section 2 of the paper). It includes a small text syntax:
//
//	A->C; B->C; C->D; D->E
//
// Each edge is "X->Y"; edges are separated by ';' or newlines; whitespace is
// ignored. Node labels are introduced by the edges that mention them.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a reachability condition From→To, holding indexes into
// Pattern.Nodes.
type Edge struct {
	From, To int
}

// Pattern is a parsed, validated graph pattern. As in the paper, each
// pattern node is a distinct label.
type Pattern struct {
	// Nodes holds the label names, in first-mention order.
	Nodes []string
	// Edges holds the reachability conditions.
	Edges []Edge

	index map[string]int
}

// New builds a pattern from label names and edges given as label pairs.
func New(edges [][2]string) (*Pattern, error) {
	p := &Pattern{index: make(map[string]int)}
	for _, e := range edges {
		from, to := strings.TrimSpace(e[0]), strings.TrimSpace(e[1])
		if from == "" || to == "" {
			return nil, fmt.Errorf("pattern: empty label in edge %q->%q", e[0], e[1])
		}
		fi := p.intern(from)
		ti := p.intern(to)
		p.Edges = append(p.Edges, Edge{fi, ti})
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Parse parses the text syntax.
func Parse(s string) (*Pattern, error) {
	var edges [][2]string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lr := strings.Split(part, "->")
		if len(lr) != 2 {
			return nil, fmt.Errorf("pattern: bad edge %q (want X->Y)", part)
		}
		edges = append(edges, [2]string{strings.TrimSpace(lr[0]), strings.TrimSpace(lr[1])})
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("pattern: no edges in %q", s)
	}
	return New(edges)
}

// MustParse parses or panics; for tests and fixed workloads.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Pattern) intern(label string) int {
	if i, ok := p.index[label]; ok {
		return i
	}
	i := len(p.Nodes)
	p.Nodes = append(p.Nodes, label)
	p.index[label] = i
	return i
}

func (p *Pattern) validate() error {
	if len(p.Edges) == 0 {
		return fmt.Errorf("pattern: no edges")
	}
	seen := make(map[Edge]bool)
	for _, e := range p.Edges {
		if e.From == e.To {
			return fmt.Errorf("pattern: self edge on %q", p.Nodes[e.From])
		}
		if seen[e] {
			return fmt.Errorf("pattern: duplicate edge %q->%q", p.Nodes[e.From], p.Nodes[e.To])
		}
		seen[e] = true
	}
	if !p.connected() {
		return fmt.Errorf("pattern: not connected")
	}
	return nil
}

// connected checks weak connectivity.
func (p *Pattern) connected() bool {
	n := len(p.Nodes)
	if n == 0 {
		return false
	}
	adj := make([][]int, n)
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !visited[w] {
				visited[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// NodeIndex returns the index of a label in Nodes, or -1.
func (p *Pattern) NodeIndex(label string) int {
	if i, ok := p.index[label]; ok {
		return i
	}
	return -1
}

// NumNodes returns |V_q|.
func (p *Pattern) NumNodes() int { return len(p.Nodes) }

// NumEdges returns |E_q|.
func (p *Pattern) NumEdges() int { return len(p.Edges) }

// OutEdges returns indexes of edges leaving node i.
func (p *Pattern) OutEdges(i int) []int {
	var out []int
	for ei, e := range p.Edges {
		if e.From == i {
			out = append(out, ei)
		}
	}
	return out
}

// InEdges returns indexes of edges entering node i.
func (p *Pattern) InEdges(i int) []int {
	var out []int
	for ei, e := range p.Edges {
		if e.To == i {
			out = append(out, ei)
		}
	}
	return out
}

// Touches reports whether edge ei is incident to node i.
func (p *Pattern) Touches(ei, i int) bool {
	return p.Edges[ei].From == i || p.Edges[ei].To == i
}

// String renders the pattern back to the text syntax with edges in input
// order.
func (p *Pattern) String() string {
	parts := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		parts[i] = p.Nodes[e.From] + "->" + p.Nodes[e.To]
	}
	return strings.Join(parts, "; ")
}

// Canonical returns a canonical string (sorted edges), usable as a map key.
func (p *Pattern) Canonical() string {
	parts := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		parts[i] = p.Nodes[e.From] + "->" + p.Nodes[e.To]
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}

// IsPath reports whether the pattern is a simple directed path
// X1→X2→…→Xn (Figure 4(a)-style shapes).
func (p *Pattern) IsPath() bool {
	if len(p.Edges) != len(p.Nodes)-1 {
		return false
	}
	starts := 0
	for i := range p.Nodes {
		in, out := len(p.InEdges(i)), len(p.OutEdges(i))
		switch {
		case in == 0 && out == 1:
			starts++
		case in == 1 && out <= 1:
		default:
			return false
		}
	}
	return starts == 1
}

// IsTree reports whether the pattern is a rooted out-tree.
func (p *Pattern) IsTree() bool {
	if len(p.Edges) != len(p.Nodes)-1 {
		return false
	}
	roots := 0
	for i := range p.Nodes {
		switch len(p.InEdges(i)) {
		case 0:
			roots++
		case 1:
		default:
			return false
		}
	}
	return roots == 1
}
