// Package epoch implements refcounted snapshot epochs: a single writer
// publishes immutable snapshot values through an atomic pointer, readers
// pin the current snapshot for the lifetime of one operation without ever
// blocking (or being blocked by) the writer, and superseded snapshots are
// retired — and their exclusively-owned resources reclaimed — once the
// last reader releases them.
//
// The manager is generic: T is the snapshot value (published as-is, so it
// must be immutable or internally synchronized) and G is the unit of
// deferred garbage a publish hands over (for the graph database, the page
// IDs a copy-on-write tree update superseded).
//
// Reclamation is ordered: garbage attached to the publish that created
// epoch k is released only once every epoch older than k has retired,
// because a page superseded at epoch k may still be shared by any earlier
// snapshot.
package epoch

import (
	"sync"
	"sync/atomic"
	"time"
)

// node is one published epoch: the snapshot value plus its reference
// count. refs starts at 1 (the manager's own reference, held while the
// node is current) and the node retires when it reaches zero.
type node[T any] struct {
	val   T
	epoch uint64
	refs  atomic.Int64
	born  time.Time
}

// tryAcquire increments refs unless the node already retired (refs == 0).
// The CAS loop makes pin-versus-retire safe: a reader that loses the race
// against the final release simply retries on a fresher current node.
func (n *node[T]) tryAcquire() bool {
	for {
		r := n.refs.Load()
		if r == 0 {
			return false
		}
		if n.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Stats is a point-in-time view of the manager's epoch bookkeeping.
type Stats struct {
	// Current is the epoch number of the currently published snapshot.
	Current uint64
	// Pinned is the number of live (not yet retired) epochs, including the
	// current one; it returns to 1 when no reads are in flight.
	Pinned int
	// OldestAge is how long ago the oldest live epoch was published.
	OldestAge time.Duration
	// Retired counts epochs retired since the manager was created.
	Retired uint64
}

// Manager publishes immutable snapshots of type T under a single-writer
// discipline: any number of goroutines may Pin/Current concurrently, but
// Publish calls must be externally serialised (the graph database holds
// its writer mutex across the whole prepare-and-publish cycle).
type Manager[T, G any] struct {
	cur atomic.Pointer[node[T]]

	// free releases garbage whose reclamation horizon has been reached. It
	// is called outside the manager's lock, possibly concurrently with
	// readers of *newer* epochs — never with anything that can still see
	// the garbage.
	free func([]G)

	mu       sync.Mutex
	live     map[uint64]*node[T]
	pending  []garbage[G] // ascending by epoch
	retired  uint64
	onRetire func(minLive uint64)
}

// garbage is the deferred-free list attached to the publish that created
// epoch: the resources that epoch's predecessor owned exclusively.
type garbage[G any] struct {
	epoch uint64
	items []G
}

// NewManager returns a manager whose current snapshot is initial (epoch 0).
// free, which may be nil, reclaims garbage once no live epoch can see it.
func NewManager[T, G any](initial T, free func([]G)) *Manager[T, G] {
	m := &Manager[T, G]{free: free, live: make(map[uint64]*node[T])}
	n := &node[T]{val: initial, born: time.Now()}
	n.refs.Store(1)
	m.live[0] = n
	m.cur.Store(n)
	return m
}

// Pin acquires a reference to the current snapshot and returns it with a
// release func. The snapshot stays valid — and its resources unreclaimed —
// until release is called; release must be called exactly once. Pin never
// blocks on the writer.
func (m *Manager[T, G]) Pin() (T, func()) {
	for {
		n := m.cur.Load()
		if n.tryAcquire() {
			var once sync.Once
			return n.val, func() { once.Do(func() { m.release(n) }) }
		}
		// The node retired between the load and the acquire: a newer
		// current exists, retry on it.
	}
}

// Current returns the current snapshot without pinning it. Safe only when
// the caller does not dereference resources a concurrent publish could
// reclaim — the writer itself (already serialised) and best-effort stats.
func (m *Manager[T, G]) Current() T { return m.cur.Load().val }

// CurrentEpoch returns the epoch number of the current snapshot.
func (m *Manager[T, G]) CurrentEpoch() uint64 { return m.cur.Load().epoch }

// Publish installs v as the new current snapshot, attaching garbage to be
// freed once every epoch older than the new one has retired. It returns
// the new epoch number. Callers must serialise Publish externally.
func (m *Manager[T, G]) Publish(v T, garb []G) uint64 {
	n := &node[T]{val: v, born: time.Now()}
	n.refs.Store(1)

	m.mu.Lock()
	old := m.cur.Load()
	n.epoch = old.epoch + 1
	m.live[n.epoch] = n
	if len(garb) > 0 {
		m.pending = append(m.pending, garbage[G]{epoch: n.epoch, items: garb})
	}
	m.cur.Store(n)
	m.mu.Unlock()

	// Drop the manager's reference to the superseded snapshot; it retires
	// now if no reader holds it.
	m.release(old)
	return n.epoch
}

// OnRetire registers fn to run after an epoch retires, with the minimum
// epoch still live at that moment: every epoch below it is gone for good
// and can never be pinned or queried again, so per-epoch derived state
// (e.g. a server's plan-cache entries) keyed below minLive is dead weight.
// fn runs outside the manager's lock but on whichever goroutine dropped
// the last reference — publish path or a reader's release — so it must be
// cheap and must not call back into the manager. One callback is
// supported; the last registration wins.
func (m *Manager[T, G]) OnRetire(fn func(minLive uint64)) {
	m.mu.Lock()
	m.onRetire = fn
	m.mu.Unlock()
}

// release drops one reference; the last one retires the node and releases
// any pending garbage whose horizon was waiting on it.
func (m *Manager[T, G]) release(n *node[T]) {
	if n.refs.Add(-1) != 0 {
		return
	}
	m.mu.Lock()
	delete(m.live, n.epoch)
	m.retired++
	freeable := m.collectFreeableLocked()
	minLive := m.minLiveLocked()
	hook := m.onRetire
	m.mu.Unlock()
	if m.free != nil {
		for _, g := range freeable {
			m.free(g.items)
		}
	}
	if hook != nil {
		hook(minLive)
	}
}

// minLiveLocked returns the smallest live epoch (the reclamation horizon);
// with no live epoch — transient between retire and the next publish —
// it reports the maximum. Caller holds m.mu.
func (m *Manager[T, G]) minLiveLocked() uint64 {
	min := ^uint64(0)
	for e := range m.live {
		if e < min {
			min = e
		}
	}
	return min
}

// collectFreeableLocked removes and returns every pending garbage batch
// whose epoch is ≤ the minimum live epoch — i.e. all snapshots that could
// still reference it have retired. Caller holds m.mu.
func (m *Manager[T, G]) collectFreeableLocked() []garbage[G] {
	min := m.minLiveLocked()
	i := 0
	for i < len(m.pending) && m.pending[i].epoch <= min {
		i++
	}
	if i == 0 {
		return nil
	}
	out := make([]garbage[G], i)
	copy(out, m.pending[:i])
	m.pending = append(m.pending[:0], m.pending[i:]...)
	return out
}

// Stats reports the manager's epoch bookkeeping.
func (m *Manager[T, G]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Current: m.cur.Load().epoch, Pinned: len(m.live), Retired: m.retired}
	var oldest time.Time
	for _, n := range m.live {
		if oldest.IsZero() || n.born.Before(oldest) {
			oldest = n.born
		}
	}
	if !oldest.IsZero() {
		s.OldestAge = time.Since(oldest)
	}
	return s
}
