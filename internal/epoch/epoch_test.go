package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPinSeesCurrent(t *testing.T) {
	m := NewManager[int, int](10, nil)
	v, release := m.Pin()
	if v != 10 {
		t.Fatalf("pinned %d, want 10", v)
	}
	m.Publish(20, nil)
	// The held pin still refers to the old value; a fresh pin sees the new.
	v2, release2 := m.Pin()
	if v2 != 20 {
		t.Fatalf("pinned %d after publish, want 20", v2)
	}
	release()
	release2()
	if got := m.Current(); got != 20 {
		t.Fatalf("Current() = %d, want 20", got)
	}
	if e := m.CurrentEpoch(); e != 1 {
		t.Fatalf("CurrentEpoch() = %d, want 1", e)
	}
}

func TestRetireAtZeroRefs(t *testing.T) {
	m := NewManager[int, int](0, nil)
	_, r1 := m.Pin()
	_, r2 := m.Pin()
	m.Publish(1, nil)
	if s := m.Stats(); s.Pinned != 2 {
		t.Fatalf("Pinned = %d with a held old epoch, want 2", s.Pinned)
	}
	r1()
	if s := m.Stats(); s.Pinned != 2 {
		t.Fatalf("Pinned = %d with one ref still held, want 2", s.Pinned)
	}
	r2()
	s := m.Stats()
	if s.Pinned != 1 {
		t.Fatalf("Pinned = %d after all releases, want 1", s.Pinned)
	}
	if s.Retired != 1 {
		t.Fatalf("Retired = %d, want 1", s.Retired)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	m := NewManager[int, int](0, nil)
	_, release := m.Pin()
	release()
	release() // second call must be a no-op, not a double-decrement
	m.Publish(1, nil)
	if s := m.Stats(); s.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", s.Pinned)
	}
}

// TestGarbageOrderedRelease checks the reclamation horizon: garbage from
// epoch k is freed only after every epoch older than k retires.
func TestGarbageOrderedRelease(t *testing.T) {
	var mu sync.Mutex
	var freed []int
	m := NewManager[int, int](0, func(items []int) {
		mu.Lock()
		freed = append(freed, items...)
		mu.Unlock()
	})

	_, holdEpoch0 := m.Pin()
	m.Publish(1, []int{100}) // garbage of epoch 1: freeable once epoch 0 retires
	m.Publish(2, []int{200}) // garbage of epoch 2: freeable once epochs 0,1 retire

	mu.Lock()
	if len(freed) != 0 {
		t.Fatalf("freed %v while epoch 0 still pinned", freed)
	}
	mu.Unlock()

	holdEpoch0()
	mu.Lock()
	defer mu.Unlock()
	if want := []int{100, 200}; len(freed) != 2 || freed[0] != want[0] || freed[1] != want[1] {
		t.Fatalf("freed %v after last old epoch retired, want %v", freed, want)
	}
}

func TestGarbageFreedImmediatelyWhenUnpinned(t *testing.T) {
	var freed atomic.Int64
	m := NewManager[int, int](0, func(items []int) { freed.Add(int64(len(items))) })
	m.Publish(1, []int{1, 2, 3})
	if got := freed.Load(); got != 3 {
		t.Fatalf("freed %d items with no pins outstanding, want 3", got)
	}
	if s := m.Stats(); s.Pinned != 1 || s.Current != 1 {
		t.Fatalf("stats = %+v, want Pinned 1 Current 1", s)
	}
}

// TestConcurrentPinPublish hammers Pin/release against a publishing writer
// under the race detector: every pinned value must be one that was
// actually published, and afterwards exactly one epoch stays live.
func TestConcurrentPinPublish(t *testing.T) {
	const publishes = 200
	const readers = 4
	m := NewManager[int, int](0, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, release := m.Pin()
				if v < 0 || v > publishes {
					t.Errorf("pinned impossible value %d", v)
				}
				release()
			}
		}()
	}
	for i := 1; i <= publishes; i++ {
		m.Publish(i, []int{i})
	}
	close(stop)
	wg.Wait()
	if got := m.Current(); got != publishes {
		t.Fatalf("Current() = %d, want %d", got, publishes)
	}
	s := m.Stats()
	if s.Pinned != 1 {
		t.Fatalf("Pinned = %d when idle, want 1", s.Pinned)
	}
	if s.Retired != publishes {
		t.Fatalf("Retired = %d, want %d", s.Retired, publishes)
	}
}
