package reach_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/twohop"
)

// mutableTruth mirrors the edge multiset the Incremental sees, rebuilding a
// ground-truth graph on demand so BFS answers can be compared after every
// mutation.
type mutableTruth struct {
	g     *graph.Graph
	edges map[[2]graph.NodeID]int
}

func newMutableTruth(g *graph.Graph) *mutableTruth {
	m := &mutableTruth{g: g, edges: map[[2]graph.NodeID]int{}}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, w := range g.Successors(v) {
			m.edges[[2]graph.NodeID{v, w}]++
		}
	}
	return m
}

func (m *mutableTruth) insert(u, v graph.NodeID) { m.edges[[2]graph.NodeID{u, v}]++ }

func (m *mutableTruth) delete(u, v graph.NodeID) bool {
	k := [2]graph.NodeID{u, v}
	if m.edges[k] == 0 {
		return false
	}
	m.edges[k]--
	if m.edges[k] == 0 {
		delete(m.edges, k)
	}
	return true
}

func (m *mutableTruth) build() *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < m.g.NumNodes(); i++ {
		b.AddNodeLabel(b.Intern(m.g.LabelNameOf(graph.NodeID(i))))
	}
	for e, n := range m.edges {
		for i := 0; i < n; i++ {
			b.AddEdge(e[0], e[1])
		}
	}
	return b.Build()
}

// TestDeleteEdgeMatchesBFS: random mixed insert/delete streams; after every
// step the labeling must agree with BFS on the mutated graph for all pairs —
// for every registered backend.
func TestDeleteEdgeMatchesBFS(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		check := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 20
			g := randomGraph(seed, n, 28, 3)
			inc := newInc(b, g)
			truth := newMutableTruth(g)

			for step := 0; step < 12; step++ {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if rng.Intn(2) == 0 || !inc.HasEdge(u, v) {
					truth.insert(u, v)
					inc.InsertEdge(u, v)
				} else {
					if !truth.delete(u, v) {
						t.Logf("seed %d step %d: truth and labeling disagree on edge %d->%d presence", seed, step, u, v)
						return false
					}
					inc.DeleteEdge(u, v)
				}
				tg := truth.build()
				for x := graph.NodeID(0); int(x) < n; x++ {
					for y := graph.NodeID(0); int(y) < n; y++ {
						if inc.Reaches(x, y) != graph.Reaches(tg, x, y) {
							t.Logf("seed %d step %d: Reaches(%d,%d) wrong after mutating %d->%d",
								seed, step, x, y, u, v)
							return false
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDeleteEdgeChain: cutting a chain in the middle must sever exactly the
// pairs that crossed the cut.
func TestDeleteEdgeChain(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		const n = 8
		g := chainGraph(n)
		inc := newInc(b, g)
		deltas := inc.DeleteEdge(3, 4)
		if len(deltas) == 0 {
			t.Fatal("cutting a chain removed no label entries")
		}
		for u := graph.NodeID(0); u < n; u++ {
			for v := graph.NodeID(0); v < n; v++ {
				want := u <= v && !(u <= 3 && v >= 4)
				if got := inc.Reaches(u, v); got != want {
					t.Fatalf("after cut at 3->4: Reaches(%d,%d) = %v, want %v", u, v, got, want)
				}
			}
		}
	})
}

// TestDeleteEdgeAbsentIsNoop: deleting a never-present edge returns nil and
// changes nothing.
func TestDeleteEdgeAbsentIsNoop(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		g := chainGraph(5)
		inc := newInc(b, g)
		before := inc.Size()
		if d := inc.DeleteEdge(0, 3); d != nil {
			t.Fatalf("absent-edge delete returned %d deltas", len(d))
		}
		if inc.Size() != before {
			t.Fatalf("absent-edge delete changed size %d -> %d", before, inc.Size())
		}
		if !inc.Reaches(0, 4) {
			t.Fatal("absent-edge delete broke reachability")
		}
	})
}

// TestDeleteEdgeParallelEdges: with two parallel copies of an edge, deleting
// one must keep reachability; deleting the second severs it.
func TestDeleteEdgeParallelEdges(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be reach.Backend) {
		b := graph.NewBuilder()
		la := b.Intern("A")
		for i := 0; i < 3; i++ {
			b.AddNodeLabel(la)
		}
		b.AddEdge(0, 1)
		b.AddEdge(0, 1) // parallel copy
		b.AddEdge(1, 2)
		g := b.Build()
		inc := newInc(be, g)

		inc.DeleteEdge(0, 1)
		if !inc.HasEdge(0, 1) {
			t.Fatal("first delete removed both parallel copies")
		}
		if !inc.Reaches(0, 2) {
			t.Fatal("reachability lost while a parallel copy survives")
		}
		inc.DeleteEdge(0, 1)
		if inc.HasEdge(0, 1) {
			t.Fatal("second delete left a copy behind")
		}
		if inc.Reaches(0, 1) || inc.Reaches(0, 2) {
			t.Fatal("reachability survives with no copies left")
		}
	})
}

// TestDeleteEdgeSizeAndDeltaAccounting: Size must track the deltas exactly,
// removals must name entries that were present, additions entries that are
// present afterwards, and lists stay sorted and self-free.
func TestDeleteEdgeSizeAndDeltaAccounting(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		g := randomGraph(5, 18, 40, 3)
		inc := newInc(b, g)
		rng := rand.New(rand.NewSource(13))
		for step := 0; step < 25; step++ {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if !inc.HasEdge(u, v) {
				inc.InsertEdge(u, v)
				continue
			}
			before := inc.Size()
			deltas := inc.DeleteEdge(u, v)
			removed, added := 0, 0
			for _, d := range deltas {
				if d.Node == d.Center {
					t.Fatalf("step %d: self-entry delta %+v", step, d)
				}
				list := inc.In(d.Node)
				if d.Out {
					list = inc.Out(d.Node)
				}
				if d.Removed {
					removed++
					if containsSorted(list, d.Center) {
						t.Fatalf("step %d: removed delta %+v still present", step, d)
					}
				} else {
					added++
					if !containsSorted(list, d.Center) {
						t.Fatalf("step %d: added delta %+v not present", step, d)
					}
				}
			}
			if want := before - removed + added; inc.Size() != want {
				t.Fatalf("step %d: size %d, want %d (before %d, -%d +%d)",
					step, inc.Size(), want, before, removed, added)
			}
			for x := graph.NodeID(0); int(x) < g.NumNodes(); x++ {
				for _, l := range [][]graph.NodeID{inc.In(x), inc.Out(x)} {
					for i := 1; i < len(l); i++ {
						if l[i-1] >= l[i] {
							t.Fatalf("step %d: list of %d not sorted: %v", step, x, l)
						}
					}
				}
			}
		}
	})
}

// TestDeleteThenReinsert: deleting an edge and re-inserting it restores the
// original reachability relation.
func TestDeleteThenReinsert(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		g := randomGraph(21, 16, 30, 3)
		inc := newInc(b, g)
		n := g.NumNodes()
		want := make([][]bool, n)
		for x := graph.NodeID(0); int(x) < n; x++ {
			want[x] = make([]bool, n)
			for y := graph.NodeID(0); int(y) < n; y++ {
				want[x][y] = inc.Reaches(x, y)
			}
		}
		rng := rand.New(rand.NewSource(3))
		for step := 0; step < 10; step++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if !inc.HasEdge(u, v) {
				continue
			}
			inc.DeleteEdge(u, v)
			inc.InsertEdge(u, v)
			for x := graph.NodeID(0); int(x) < n; x++ {
				for y := graph.NodeID(0); int(y) < n; y++ {
					if inc.Reaches(x, y) != want[x][y] {
						t.Fatalf("step %d: Reaches(%d,%d) = %v after delete+reinsert of %d->%d, want %v",
							step, x, y, !want[x][y], u, v, want[x][y])
					}
				}
			}
		}
	})
}

func BenchmarkIncrementalDelete(b *testing.B) {
	g := randomGraph(9, 5000, 6000, 8)
	inc := reach.NewIncremental(twohop.Compute(g, twohop.Options{}))
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if inc.HasEdge(u, v) {
			inc.DeleteEdge(u, v)
		} else {
			inc.InsertEdge(u, v)
		}
	}
}
