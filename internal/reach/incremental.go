package reach

import (
	"slices"

	"fastmatch/internal/graph"
)

// Incremental maintains a 2-hop-style reachability labeling under edge
// insertions and deletions — the 2-hop cover update problem the paper
// cites as [24] (Schenkel et al., ICDE'05). It seeds from any built Index
// and keeps the invariant that u ⇝ v iff out(u) ∩ in(v) ≠ ∅ (with the
// compact self convention) after every InsertEdge and DeleteEdge. The
// repair arguments below never appeal to how the seed labeling was
// constructed — only to its validity — so one Incremental serves every
// backend.
//
// The update strategy for a new edge (u, v) follows the classic
// center-insertion argument: every newly reachable pair (x, y) decomposes
// as x ⇝ u → v ⇝ y, so electing u as a center and adding
//
//	u ∈ out(x) for every x with x ⇝ u
//	u ∈ in(y)  for every y with v ⇝ y
//
// restores the cover. If v ⇝ u held before the insertion the labeling is
// already complete (the edge closes a cycle whose pairs were reachable),
// and membership checks skip entries that already exist, so repeated or
// redundant insertions are cheap.
//
// Deletions use the standard over-delete/re-insert repair. Removing (u, v)
// can only break pairs (x, y) with x ∈ Ru = rev-reach(u) and
// y ∈ Fv = fwd-reach(v) (both taken before the removal): any path that
// used the edge entered it through u and left it through v. The same
// localisation bounds the stale entries — an entry c ∈ out(x) whose every
// support path used (u, v) forces x ∈ Ru and c ∈ Fv, and symmetrically for
// in-entries — so DeleteEdge validates exactly those suspects with one
// pruned BFS per affected center in the post-deletion graph, removes the
// refuted ones, and then re-covers any still-reachable pair in Ru × Fv the
// removals orphaned by electing the pair's source as a center (mirroring
// the insertion argument).
type Incremental struct {
	fwd, rev [][]graph.NodeID
	in, out  [][]graph.NodeID
	size     int
}

// NewIncremental seeds an updatable labeling from a built index and its
// graph's adjacency.
func NewIncremental(idx Index) *Incremental {
	g := idx.Graph()
	n := g.NumNodes()
	inc := &Incremental{
		fwd:  make([][]graph.NodeID, n),
		rev:  make([][]graph.NodeID, n),
		in:   make([][]graph.NodeID, n),
		out:  make([][]graph.NodeID, n),
		size: idx.Size(),
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		inc.fwd[v] = append([]graph.NodeID(nil), g.Successors(v)...)
		inc.rev[v] = append([]graph.NodeID(nil), g.Predecessors(v)...)
		inc.in[v] = append([]graph.NodeID(nil), idx.In(v)...)
		inc.out[v] = append([]graph.NodeID(nil), idx.Out(v)...)
	}
	return inc
}

// NewIncrementalFromLabels seeds an updatable labeling from g's adjacency
// and already-materialised compact label lists (sorted ascending, excluding
// the node itself) — the form stored in the graph database's base tables,
// so a reattached database can resume incremental maintenance without the
// original index object. The label slices are copied.
func NewIncrementalFromLabels(g *graph.Graph, in, out [][]graph.NodeID) *Incremental {
	n := g.NumNodes()
	if len(in) != n || len(out) != n {
		panic("reach: NewIncrementalFromLabels: label lists do not match graph size")
	}
	inc := &Incremental{
		fwd: make([][]graph.NodeID, n),
		rev: make([][]graph.NodeID, n),
		in:  make([][]graph.NodeID, n),
		out: make([][]graph.NodeID, n),
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		inc.fwd[v] = append([]graph.NodeID(nil), g.Successors(v)...)
		inc.rev[v] = append([]graph.NodeID(nil), g.Predecessors(v)...)
		inc.in[v] = append([]graph.NodeID(nil), in[v]...)
		inc.out[v] = append([]graph.NodeID(nil), out[v]...)
		inc.size += len(in[v]) + len(out[v])
	}
	return inc
}

// NumNodes returns the number of nodes.
func (inc *Incremental) NumNodes() int { return len(inc.fwd) }

// Size returns the current labeling size |H| (compact entries).
func (inc *Incremental) Size() int { return inc.size }

// In returns the compact L_in(v) (sorted; aliases internal storage).
func (inc *Incremental) In(v graph.NodeID) []graph.NodeID { return inc.in[v] }

// Out returns the compact L_out(v) (sorted; aliases internal storage).
func (inc *Incremental) Out(v graph.NodeID) []graph.NodeID { return inc.out[v] }

// Reaches reports u ⇝ v under all insertions so far.
func (inc *Incremental) Reaches(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	if intersectSorted(inc.out[u], inc.in[v]) {
		return true
	}
	if containsSorted(inc.in[v], u) {
		return true
	}
	return containsSorted(inc.out[u], v)
}

// InsertEdge adds the edge u→v and repairs the labeling. It returns the
// label entries added, in deterministic order (out-side entries in BFS
// order from u over predecessors, then in-side entries in BFS order from v
// over successors); nil when the edge adds no new reachability. The count
// of new entries is len of the returned set.
func (inc *Incremental) InsertEdge(u, v graph.NodeID) []LabelDelta {
	alreadyReachable := inc.Reaches(u, v)
	inc.fwd[u] = append(inc.fwd[u], v)
	inc.rev[v] = append(inc.rev[v], u)
	if alreadyReachable {
		return nil // no new pairs: x ⇝ u ⇝ v ⇝ y held before
	}
	var deltas []LabelDelta
	// u becomes a center: into out(x) for all x reaching u…
	for _, x := range inc.bfs(inc.rev, u) {
		if x != u && insertSortedInPlace(&inc.out[x], u) {
			deltas = append(deltas, LabelDelta{Node: x, Center: u, Out: true})
		}
	}
	// …and into in(y) for all y reachable from v.
	for _, y := range inc.bfs(inc.fwd, v) {
		if y != u && insertSortedInPlace(&inc.in[y], u) {
			deltas = append(deltas, LabelDelta{Node: y, Center: u, Out: false})
		}
	}
	inc.size += len(deltas)
	return deltas
}

// HasEdge reports whether at least one u→v edge is currently present.
func (inc *Incremental) HasEdge(u, v graph.NodeID) bool {
	return slices.Contains(inc.fwd[u], v)
}

// DeleteEdge removes one occurrence of the edge u→v and repairs the
// labeling by over-delete/re-insert:
//
//  1. Suspect entries — out-entries c ∈ out(x) with x ∈ Ru, c ∈ Fv and
//     in-entries c ∈ in(y) with y ∈ Fv, c ∈ Ru, the only ones whose every
//     support path can have used (u, v) — are validated with one pruned
//     re-BFS per affected center in the post-deletion graph; entries the
//     BFS no longer supports are removed (Removed deltas).
//  2. Still-reachable pairs in Ru × Fv the removals left uncovered are
//     repaired by electing the source as a center: x joins in(y)
//     (addition deltas). Reachability was just verified, so every
//     re-added entry is sound.
//
// Deltas come out in deterministic order: removals for ascending x then
// ascending y (centers in stored-label order), followed by additions for
// ascending (x, y). Deleting an edge that is not present is a no-op
// returning nil; when parallel u→v edges exist exactly one is removed and
// no label entry can go stale, so the repair finds nothing to do.
func (inc *Incremental) DeleteEdge(u, v graph.NodeID) []LabelDelta {
	i := slices.Index(inc.fwd[u], v)
	if i < 0 {
		return nil
	}
	// Ru / Fv in the pre-deletion graph: the only nodes whose labels or
	// pair coverage the removal can affect.
	ruSet := toSet(inc.bfs(inc.rev, u))
	fvSet := toSet(inc.bfs(inc.fwd, v))
	inc.fwd[u] = slices.Delete(inc.fwd[u], i, i+1)
	j := slices.Index(inc.rev[v], u)
	inc.rev[v] = slices.Delete(inc.rev[v], j, j+1)

	ru := sortedKeys(ruSet)
	fv := sortedKeys(fvSet)

	// Post-deletion reach sets, one pruned BFS per distinct root, shared
	// between validation and re-cover.
	fwdReach := make(map[graph.NodeID]map[graph.NodeID]struct{})
	revReach := make(map[graph.NodeID]map[graph.NodeID]struct{})
	reach := func(memo map[graph.NodeID]map[graph.NodeID]struct{}, adj [][]graph.NodeID, s graph.NodeID) map[graph.NodeID]struct{} {
		r, ok := memo[s]
		if !ok {
			r = toSet(inc.bfs(adj, s))
			memo[s] = r
		}
		return r
	}

	var deltas []LabelDelta
	removed := 0
	for _, x := range ru {
		var drop []graph.NodeID
		for _, c := range inc.out[x] {
			if _, suspect := fvSet[c]; !suspect {
				continue
			}
			if _, still := reach(revReach, inc.rev, c)[x]; !still {
				drop = append(drop, c)
			}
		}
		for _, c := range drop {
			removeSortedInPlace(&inc.out[x], c)
			deltas = append(deltas, LabelDelta{Node: x, Center: c, Out: true, Removed: true})
			removed++
		}
	}
	for _, y := range fv {
		var drop []graph.NodeID
		for _, c := range inc.in[y] {
			if _, suspect := ruSet[c]; !suspect {
				continue
			}
			if _, still := reach(fwdReach, inc.fwd, c)[y]; !still {
				drop = append(drop, c)
			}
		}
		for _, c := range drop {
			removeSortedInPlace(&inc.in[y], c)
			deltas = append(deltas, LabelDelta{Node: y, Center: c, Out: false, Removed: true})
			removed++
		}
	}

	// Re-cover: removing a stale center can orphan a pair it alone
	// covered; any such pair lies in Ru × Fv and is still reachable.
	added := 0
	for _, x := range ru {
		r := reach(fwdReach, inc.fwd, x)
		for _, y := range fv {
			if y == x {
				continue
			}
			if _, reachable := r[y]; !reachable {
				continue
			}
			if inc.Reaches(x, y) {
				continue
			}
			insertSortedInPlace(&inc.in[y], x)
			deltas = append(deltas, LabelDelta{Node: y, Center: x, Out: false, Removed: false})
			added++
		}
	}
	inc.size += added - removed
	return deltas
}

// toSet converts a node list to a membership set.
func toSet(nodes []graph.NodeID) map[graph.NodeID]struct{} {
	s := make(map[graph.NodeID]struct{}, len(nodes))
	for _, v := range nodes {
		s[v] = struct{}{}
	}
	return s
}

// sortedKeys returns the set's members ascending.
func sortedKeys(s map[graph.NodeID]struct{}) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// bfs returns all nodes reachable from start over adj (including start).
func (inc *Incremental) bfs(adj [][]graph.NodeID, start graph.NodeID) []graph.NodeID {
	visited := make(map[graph.NodeID]struct{}, 64)
	visited[start] = struct{}{}
	queue := []graph.NodeID{start}
	for i := 0; i < len(queue); i++ {
		for _, w := range adj[queue[i]] {
			if _, ok := visited[w]; !ok {
				visited[w] = struct{}{}
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// removeSortedInPlace removes v from the sorted slice if present,
// reporting whether a removal happened.
func removeSortedInPlace(s *[]graph.NodeID, v graph.NodeID) bool {
	sl := *s
	i, found := slices.BinarySearch(sl, v)
	if !found {
		return false
	}
	*s = slices.Delete(sl, i, i+1)
	return true
}

// insertSortedInPlace inserts v into the sorted slice if absent, reporting
// whether an insertion happened.
func insertSortedInPlace(s *[]graph.NodeID, v graph.NodeID) bool {
	sl := *s
	i, found := slices.BinarySearch(sl, v)
	if found {
		return false
	}
	sl = append(sl, 0)
	copy(sl[i+1:], sl[i:])
	sl[i] = v
	*s = sl
	return true
}
