package reach_test

import (
	"reflect"
	"strings"
	"testing"

	"fastmatch/internal/graph"
	"fastmatch/internal/pll"
	"fastmatch/internal/reach"
	"fastmatch/internal/twohop"
)

// TestRegistry pins the registry contract: Names is sorted and holds both
// built-in backends, Lookup resolves them plus the empty-string default,
// unknown names error, and duplicate or empty registrations panic.
func TestRegistry(t *testing.T) {
	names := reach.Names()
	if !reflect.DeepEqual(names, []string{"pll", "twohop"}) {
		t.Fatalf("Names() = %v, want [pll twohop]", names)
	}
	for _, name := range names {
		b, err := reach.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, b.Name())
		}
	}
	def, err := reach.Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != reach.DefaultBackend {
		t.Fatalf("Lookup(\"\") = %q, want %q", def.Name(), reach.DefaultBackend)
	}
	if _, err := reach.Lookup("no-such-backend"); err == nil {
		t.Fatal("Lookup of unknown backend should error")
	} else if !strings.Contains(err.Error(), "no-such-backend") {
		t.Fatalf("error should name the backend: %v", err)
	}

	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", what)
			}
		}()
		fn()
	}
	b, _ := reach.Lookup("twohop")
	mustPanic("duplicate Register", func() { reach.Register(b) })
	mustPanic("empty-name Register", func() { reach.Register(emptyNameBackend{}) })
}

// emptyNameBackend is a Backend whose Name is empty; only Register's
// validation ever touches it.
type emptyNameBackend struct{}

func (emptyNameBackend) Name() string                                  { return "" }
func (emptyNameBackend) Build(*graph.Graph, reach.Options) reach.Index { return nil }
func (emptyNameBackend) Dynamic(reach.Index) reach.Dynamic             { return nil }
func (emptyNameBackend) DynamicFromLabels(*graph.Graph, [][]graph.NodeID, [][]graph.NodeID) reach.Dynamic {
	return nil
}

// TestBatchedLabelingMatchesSerial drives the generic pruned-labeling core
// through both backends at several worker degrees: the batched build must
// verify against BFS truth and answer Reaches exactly like the serial
// reference build at every degree.
func TestBatchedLabelingMatchesSerial(t *testing.T) {
	graphs := []*graph.Graph{
		randomGraph(31, 180, 540, 3),
		randomGraph(32, 220, 260, 2),
		chainGraph(30),
	}
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		for gi, g := range graphs {
			serial := b.Build(g, reach.Options{Parallelism: 1})
			for _, workers := range []int{2, 3, 4, 8} {
				par := b.Build(g, reach.Options{Parallelism: workers})
				if err := par.Verify(); err != nil {
					t.Fatalf("graph %d workers=%d: %v", gi, workers, err)
				}
				for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
					for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
						if par.Reaches(u, v) != serial.Reaches(u, v) {
							t.Fatalf("graph %d workers=%d: Reaches(%d,%d) differs from serial",
								gi, workers, u, v)
						}
					}
				}
				// Same degree twice → identical labeling, entry for entry.
				again := b.Build(g, reach.Options{Parallelism: workers})
				for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
					if !reflect.DeepEqual(par.In(v), again.In(v)) || !reflect.DeepEqual(par.Out(v), again.Out(v)) {
						t.Fatalf("graph %d workers=%d: build is not deterministic at node %d", gi, workers, v)
					}
				}
			}
		}
	})
}

// TestNegativeParallelismMeansGOMAXPROCS: < 0 resolves to a machine-wide
// degree and still verifies.
func TestNegativeParallelismMeansGOMAXPROCS(t *testing.T) {
	g := randomGraph(33, 120, 360, 3)
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		idx := b.Build(g, reach.Options{Parallelism: -1})
		if err := idx.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}

// brokenIndex wraps a correct index but lies about one pair, so
// VerifyIndex must report it.
type brokenIndex struct {
	reach.Index
	u, v graph.NodeID
}

func (b brokenIndex) Reaches(u, v graph.NodeID) bool {
	if u == b.u && v == b.v {
		return !b.Index.Reaches(u, v)
	}
	return b.Index.Reaches(u, v)
}

// TestVerifyIndex: a correct index passes, a corrupted wrapper fails with
// the offending pair in the error.
func TestVerifyIndex(t *testing.T) {
	g := chainGraph(8)
	idx := twohop.Compute(g, twohop.Options{})
	if err := reach.VerifyIndex(idx); err != nil {
		t.Fatal(err)
	}
	if err := reach.VerifyIndex(brokenIndex{Index: idx, u: 2, v: 5}); err == nil {
		t.Fatal("corrupted index should fail VerifyIndex")
	}
}

// TestStatsString covers the formatting of both backends' statistics.
func TestStatsString(t *testing.T) {
	g := randomGraph(34, 50, 120, 2)
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		s := b.Build(g, reach.Options{}).Stats()
		str := s.String()
		if !strings.Contains(str, b.Name()) || !strings.Contains(str, "|H|") {
			t.Fatalf("Stats string %q should name the backend and |H|", str)
		}
	})
}

// TestIncrementalNumNodes covers the Dynamic surface accessors.
func TestIncrementalNumNodes(t *testing.T) {
	g := chainGraph(7)
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		dyn := b.Dynamic(b.Build(g, reach.Options{}))
		if dyn.NumNodes() != 7 {
			t.Fatalf("NumNodes = %d", dyn.NumNodes())
		}
		if !dyn.HasEdge(0, 1) || dyn.HasEdge(1, 0) {
			t.Fatal("HasEdge wrong on chain")
		}
	})
}

// TestPLLRegisteredViaInterface: the two backends produce different
// labelings (different families) yet identical answers — a quick
// spot-check that the registry really returns distinct implementations.
func TestBackendsAreDistinct(t *testing.T) {
	tb, _ := reach.Lookup(twohop.BackendName)
	pb, _ := reach.Lookup(pll.BackendName)
	if tb.Name() == pb.Name() {
		t.Fatal("expected two distinct backends")
	}
	g := randomGraph(35, 90, 270, 3)
	ti := tb.Build(g, reach.Options{})
	pi := pb.Build(g, reach.Options{})
	if ti.Backend() == pi.Backend() {
		t.Fatal("indexes report the same backend")
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if ti.Reaches(u, v) != pi.Reaches(u, v) {
				t.Fatalf("backends disagree on Reaches(%d,%d)", u, v)
			}
		}
	}
}
