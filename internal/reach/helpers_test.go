package reach_test

import (
	"math/rand"
	"testing"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"

	// Register both backends so the shared-engine tests run over every one.
	_ "fastmatch/internal/pll"
	_ "fastmatch/internal/twohop"
)

func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// chainGraph builds a simple path v0→v1→…→v(n-1).
func chainGraph(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("X")
	}
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

func containsSorted(a []graph.NodeID, x graph.NodeID) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// forEachBackend runs f as a subtest once per registered backend, so every
// shared-engine invariant is proven for every labeling family.
func forEachBackend(t *testing.T, f func(t *testing.T, b reach.Backend)) {
	t.Helper()
	for _, name := range reach.Names() {
		b, err := reach.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { f(t, b) })
	}
}

// newInc seeds the shared Incremental from a fresh build of b over g.
func newInc(b reach.Backend, g *graph.Graph) *reach.Incremental {
	return reach.NewIncremental(b.Build(g, reach.Options{}))
}
