// Package reach defines the pluggable reachability-index abstraction the
// graph database builds on: a backend computes a 2-hop-style labeling
// L(v) = (L_in(v), L_out(v)) with the invariant u ⇝ v iff
// out(u) ∩ in(v) ≠ ∅ (full codes; the stored compact lists omit the node
// itself, see Index), answers Reaches from it, and supports incremental
// repair under edge inserts and deletes through the shared Incremental
// engine.
//
// Everything above this layer — base-table codes, the cluster index, the
// W-table, plan optimization, fast paths — consumes the labeling only
// through the compact In/Out lists and the LabelDelta stream, so any
// registered backend is a drop-in replacement. Backends register
// themselves in init (internal/twohop, internal/pll); consumers select
// one by name through Lookup. The differential harness at the repository
// root proves every registered backend query-equivalent to from-scratch
// rebuilds.
package reach

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"fastmatch/internal/graph"
)

// DefaultBackend is the backend selected by an empty name: the paper's
// 2-hop cover over the SCC condensation.
const DefaultBackend = "twohop"

// Options configures index construction. Interpretation is up to the
// backend, but every backend must honour the determinism contract:
// identical (graph, Options) inputs produce identical labelings,
// regardless of goroutine scheduling.
type Options struct {
	// Parallelism is the number of workers that process landmarks in
	// rank-ordered batches (see PrunedLabeling). 0 or 1 selects the serial
	// reference construction; n > 1 uses n workers; < 0 uses GOMAXPROCS.
	Parallelism int
	// Seed drives backend-specific randomized orders; unused by the
	// default deterministic orders.
	Seed int64
}

// LabelDelta records one label entry changed by an incremental edge
// insert or delete: Center joined (Removed false) or left (Removed true)
// the compact L_out(Node) (Out true) or L_in(Node) (Out false). The delta
// set is exactly what an index built on top of the labeling (base-table
// codes, cluster index, W-table) must absorb to stay consistent.
type LabelDelta struct {
	Node    graph.NodeID
	Center  graph.NodeID
	Out     bool
	Removed bool
}

// Stats summarises a built index.
type Stats struct {
	// Backend is the registered name of the backend that built the index.
	Backend    string
	Nodes      int
	Edges      int
	Components int     // SCC count of the indexed graph
	Size       int     // |H| = Σ_v |in(v)| + |out(v)| (compact entries)
	Ratio      float64 // |H| / |V|
	MaxIn      int
	MaxOut     int
}

func (s Stats) String() string {
	name := s.Backend
	if name == "" {
		name = "reach"
	}
	return fmt.Sprintf("%s{|V|=%d |E|=%d scc=%d |H|=%d |H|/|V|=%.3f maxIn=%d maxOut=%d}",
		name, s.Nodes, s.Edges, s.Components, s.Size, s.Ratio, s.MaxIn, s.MaxOut)
}

// Index is an immutable reachability labeling over one graph, safe for
// concurrent readers. The In/Out lists follow the compact convention of
// the paper's Example 3.1: the node itself is removed; full graph codes
// are in(v) = In(v) ∪ {v} and out(v) = Out(v) ∪ {v}, and Reaches applies
// that convention.
type Index interface {
	// Backend returns the registered name of the backend that built this
	// index (persisted in the database manifest).
	Backend() string
	// Graph returns the graph the index labels.
	Graph() *graph.Graph
	// In returns the compact L_in(v), sorted ascending by NodeID,
	// excluding v itself. The slice aliases internal storage.
	In(v graph.NodeID) []graph.NodeID
	// Out returns the compact L_out(v), sorted ascending, excluding v.
	Out(v graph.NodeID) []graph.NodeID
	// Size returns |H| counting compact entries.
	Size() int
	// Reaches reports u ⇝ v from the full graph codes.
	Reaches(u, v graph.NodeID) bool
	// Stats computes summary statistics.
	Stats() Stats
	// Verify exhaustively checks the labeling against BFS reachability on
	// every node pair — a debugging and acceptance tool for small graphs.
	Verify() error
}

// Dynamic is an updatable labeling: it preserves the Reaches invariant
// across InsertEdge/DeleteEdge and reports every label entry changed so
// persistent structures can be repaired in step. Implementations are not
// required to be safe for concurrent use.
type Dynamic interface {
	NumNodes() int
	Size() int
	In(v graph.NodeID) []graph.NodeID
	Out(v graph.NodeID) []graph.NodeID
	Reaches(u, v graph.NodeID) bool
	HasEdge(u, v graph.NodeID) bool
	InsertEdge(u, v graph.NodeID) []LabelDelta
	DeleteEdge(u, v graph.NodeID) []LabelDelta
}

// Backend constructs indexes and their incremental counterparts.
type Backend interface {
	// Name is the registry key ("twohop", "pll", ...).
	Name() string
	// Build computes the labeling for g.
	Build(g *graph.Graph, opt Options) Index
	// Dynamic seeds an updatable labeling from a built index.
	Dynamic(idx Index) Dynamic
	// DynamicFromLabels seeds an updatable labeling from g's adjacency and
	// already-materialised compact label lists — the form stored in the
	// graph database's base tables, so a reattached database can resume
	// incremental maintenance without the original index object.
	DynamicFromLabels(g *graph.Graph, in, out [][]graph.NodeID) Dynamic
}

var (
	regMu    sync.RWMutex
	backends = make(map[string]Backend)
)

// Register adds a backend to the registry. It panics on a duplicate or
// empty name; backends call it from init.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("reach: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("reach: backend %q registered twice", name))
	}
	backends[name] = b
}

// Lookup resolves a backend name; the empty string selects
// DefaultBackend.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	b, ok := backends[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("reach: unknown backend %q (registered: %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// VerifyIndex is the shared Verify implementation: it checks idx against
// BFS reachability on every node pair of its graph, returning the first
// disagreement. O(|V|²·(|V|+|E|)).
func VerifyIndex(idx Index) error {
	g := idx.Graph()
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		r := graph.ReachableFrom(g, u)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if got, want := idx.Reaches(u, v), r[v]; got != want {
				return fmt.Errorf("reach: %s index disagrees with BFS on (%d, %d): labeling says %v",
					idx.Backend(), u, v, got)
			}
		}
	}
	return nil
}

// intersectSorted reports whether two ascending NodeID slices share an
// element.
func intersectSorted(a, b []graph.NodeID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// containsSorted reports whether the ascending slice holds x.
func containsSorted(a []graph.NodeID, x graph.NodeID) bool {
	_, found := slices.BinarySearch(a, x)
	return found
}
