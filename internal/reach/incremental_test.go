package reach_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/twohop"
)

// TestIncrementalMatchesBFS: starting from a labeling of a random graph,
// insert a stream of random edges and verify the labeling agrees with BFS
// on the mutated graph after every step — for every registered backend.
func TestIncrementalMatchesBFS(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		check := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 24
			g := randomGraph(seed, n, 30, 3)
			inc := newInc(b, g)

			// Mirror builder to recompute ground truth after each insertion.
			type edge struct{ u, v graph.NodeID }
			var extra []edge
			truth := func() *graph.Graph {
				bld := graph.NewBuilder()
				for i := 0; i < n; i++ {
					bld.AddNodeLabel(bld.Intern(g.LabelNameOf(graph.NodeID(i))))
				}
				for v := graph.NodeID(0); int(v) < n; v++ {
					for _, w := range g.Successors(v) {
						bld.AddEdge(v, w)
					}
				}
				for _, e := range extra {
					bld.AddEdge(e.u, e.v)
				}
				return bld.Build()
			}

			for step := 0; step < 8; step++ {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				extra = append(extra, edge{u, v})
				inc.InsertEdge(u, v)
				tg := truth()
				for x := graph.NodeID(0); int(x) < n; x++ {
					for y := graph.NodeID(0); int(y) < n; y++ {
						if inc.Reaches(x, y) != graph.Reaches(tg, x, y) {
							t.Logf("seed %d step %d: Reaches(%d,%d) wrong after inserting %d->%d",
								seed, step, x, y, u, v)
							return false
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIncrementalRedundantEdgeAddsNothing(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		g := chainGraph(6)
		inc := newInc(b, g)
		// 0 already reaches 4 along the chain.
		if deltas := inc.InsertEdge(0, 4); len(deltas) != 0 {
			t.Fatalf("redundant edge added %d labels: %v", len(deltas), deltas)
		}
		if !inc.Reaches(0, 4) {
			t.Fatal("reachability lost")
		}
		// A genuinely new edge (backward) must add labels and close a cycle.
		if deltas := inc.InsertEdge(5, 0); len(deltas) == 0 {
			t.Fatal("cycle-closing edge added no labels")
		}
		for u := graph.NodeID(0); u < 6; u++ {
			for v := graph.NodeID(0); v < 6; v++ {
				if !inc.Reaches(u, v) {
					t.Fatalf("after closing the cycle, Reaches(%d,%d) = false", u, v)
				}
			}
		}
	})
}

func TestIncrementalSizeAccounting(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		g := chainGraph(8)
		idx := b.Build(g, reach.Options{})
		inc := reach.NewIncremental(idx)
		if inc.Size() != idx.Size() {
			t.Fatalf("seed size %d != index size %d", inc.Size(), idx.Size())
		}
		before := inc.Size()
		deltas := inc.InsertEdge(7, 3) // backward edge, new pairs
		if inc.Size() != before+len(deltas) {
			t.Fatalf("size %d != %d + %d", inc.Size(), before, len(deltas))
		}
		// Lists remain sorted and self-free.
		for v := graph.NodeID(0); v < 8; v++ {
			for _, l := range [][]graph.NodeID{inc.In(v), inc.Out(v)} {
				for i := 1; i < len(l); i++ {
					if l[i-1] >= l[i] {
						t.Fatalf("list of %d not sorted after update: %v", v, l)
					}
				}
				for _, w := range l {
					if w == v {
						t.Fatalf("list of %d contains self after update", v)
					}
				}
			}
		}
	})
}

func TestIncrementalIdempotentInsert(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		g := chainGraph(5)
		inc := newInc(b, g)
		first := inc.InsertEdge(4, 0)
		if len(first) == 0 {
			t.Fatal("first insert should add labels")
		}
		if again := inc.InsertEdge(4, 0); len(again) != 0 {
			t.Fatalf("re-inserting the same edge added %d labels", len(again))
		}
	})
}

// TestIncrementalInsertDeltas pins the contract ApplyEdgeInsert depends on:
// every delta names the inserted edge's source as its center, the entry is
// actually present in the labeling afterwards, no delta is a self entry,
// and the delta count matches the size growth exactly (no silent extras).
func TestIncrementalInsertDeltas(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b reach.Backend) {
		g := chainGraph(6)
		inc := newInc(b, g)
		before := inc.Size()
		u, v := graph.NodeID(5), graph.NodeID(1) // backward edge: new pairs
		// Every x ⇝ u must carry u in out(x) afterwards; record which
		// already did, so the delta set can be checked exactly.
		hadOut := map[graph.NodeID]bool{}
		for x := graph.NodeID(0); x < 5; x++ { // 0..4 reach 5 along the chain
			hadOut[x] = containsSorted(inc.Out(x), u)
		}
		deltas := inc.InsertEdge(u, v)
		if len(deltas) == 0 {
			t.Fatal("backward edge added no labels")
		}
		if inc.Size() != before+len(deltas) {
			t.Fatalf("size grew by %d but %d deltas reported", inc.Size()-before, len(deltas))
		}
		seen := make(map[reach.LabelDelta]bool, len(deltas))
		for _, d := range deltas {
			if d.Center != u {
				t.Fatalf("delta %+v: center is not the edge source %d", d, u)
			}
			if d.Node == d.Center {
				t.Fatalf("delta %+v is a self entry", d)
			}
			if seen[d] {
				t.Fatalf("duplicate delta %+v", d)
			}
			seen[d] = true
			list := inc.In(d.Node)
			if d.Out {
				list = inc.Out(d.Node)
			}
			if !containsSorted(list, d.Center) {
				t.Fatalf("delta %+v not present in labeling", d)
			}
		}
		// Cross-check: an out-delta is emitted for exactly the frontier nodes
		// that did not already hold the entry.
		for x, had := range hadOut {
			if got := seen[(reach.LabelDelta{Node: x, Center: u, Out: true})]; got == had {
				t.Fatalf("node %d: had out-entry %v, delta emitted %v", x, had, got)
			}
		}
	})
}

// TestNewIncrementalFromLabels: seeding from materialised label lists must
// behave identically to seeding from the index itself.
func TestNewIncrementalFromLabels(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be reach.Backend) {
		g := randomGraph(11, 20, 28, 3)
		idx := be.Build(g, reach.Options{})
		n := g.NumNodes()
		in := make([][]graph.NodeID, n)
		out := make([][]graph.NodeID, n)
		for v := graph.NodeID(0); int(v) < n; v++ {
			in[v] = append([]graph.NodeID(nil), idx.In(v)...)
			out[v] = append([]graph.NodeID(nil), idx.Out(v)...)
		}
		a := reach.NewIncremental(idx)
		b := reach.NewIncrementalFromLabels(g, in, out)
		if a.Size() != b.Size() {
			t.Fatalf("size mismatch: %d vs %d", a.Size(), b.Size())
		}
		da := a.InsertEdge(17, 2)
		db := b.InsertEdge(17, 2)
		if len(da) != len(db) {
			t.Fatalf("delta mismatch after same insert: %v vs %v", da, db)
		}
		for x := graph.NodeID(0); int(x) < n; x++ {
			for y := graph.NodeID(0); int(y) < n; y++ {
				if a.Reaches(x, y) != b.Reaches(x, y) {
					t.Fatalf("Reaches(%d,%d) diverges between seedings", x, y)
				}
			}
		}
	})
}

func TestNewIncrementalFromLabelsSizeMismatchPanics(t *testing.T) {
	g := chainGraph(4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched label lists did not panic")
		}
	}()
	reach.NewIncrementalFromLabels(g, make([][]graph.NodeID, 2), make([][]graph.NodeID, 4))
}

func BenchmarkIncrementalInsert(b *testing.B) {
	g := randomGraph(9, 5000, 6000, 8)
	inc := reach.NewIncremental(twohop.Compute(g, twohop.Options{}))
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		inc.InsertEdge(u, v)
	}
}
