package reach

import (
	"sync"
	"sync/atomic"
)

// This file holds the pruned-landmark labeling core shared by every
// backend. It is generic over the vertex type T (~int32): twohop labels
// SCC-condensation component IDs, pll labels raw graph.NodeIDs, and both
// get the identical serial reference construction and the batch-parallel
// construction with serial reconciliation — so determinism and cover
// validity are proven once.

// batchPerWorker sets the batch size for batched labeling: each batch holds
// batchPerWorker·workers centers. Larger batches expose more concurrency but
// inflate the labeling (centers in the same batch cannot prune against each
// other during their BFS — only the serial reconciliation pass catches the
// redundancy, after the BFS has already expanded past frontiers a serial
// build would have cut). 2 keeps measured inflation well under the 1.15x
// budget on xmark-style graphs while giving every worker two BFS pairs per
// barrier.
const batchPerWorker = 2

// PrunedLabeling computes a pruned-landmark 2-hop labeling over an
// abstract digraph with n vertices, adjacency succ/pred, and landmark
// order order (rank[c] is c's position in order). The returned in/out
// lists hold vertex IDs in increasing rank (append) order and include the
// vertex itself; callers materialise compact sorted lists from them.
//
// workers ≤ 1 selects the serial reference construction: one forward and
// one backward pruned BFS per center, strictly in rank order — byte-
// identical to what previous versions computed for the 2-hop cover.
// workers > 1 processes centers in rank-ordered batches: within a batch
// the BFS pairs run concurrently against the labels committed by earlier
// batches, then a serial reconciliation pass re-prunes entries made
// redundant by same-batch centers. The parallel labeling is always valid,
// deterministic for a fixed (graph, order, workers) triple regardless of
// goroutine scheduling, and at most modestly larger than the serial one
// (see DESIGN.md).
func PrunedLabeling[T ~int32](n int, succ, pred func(T) []T, order []T, rank []int32, workers int) (in, out [][]T) {
	if workers <= 1 {
		return labelSerial(n, succ, pred, order, rank)
	}
	return labelBatched(n, succ, pred, order, rank, workers)
}

// coveredFunc builds the prune test: it reports whether src ⇝ dst is
// answerable from the labels assigned so far, by merge-intersecting
// rank-ordered lists.
func coveredFunc[T ~int32](rank []int32) func(outList, inList []T) bool {
	return func(outList, inList []T) bool {
		i, j := 0, 0
		for i < len(outList) && j < len(inList) {
			ri, rj := rank[outList[i]], rank[inList[j]]
			switch {
			case ri == rj:
				return true
			case ri < rj:
				i++
			default:
				j++
			}
		}
		return false
	}
}

// labelSerial is the reference pruned-landmark construction.
func labelSerial[T ~int32](n int, succ, pred func(T) []T, order []T, rank []int32) (in, out [][]T) {
	// Per-vertex label lists holding vertex IDs in increasing rank order
	// (append order).
	in = make([][]T, n)
	out = make([][]T, n)
	covered := coveredFunc[T](rank)

	// Epoch-stamped visited marks shared across BFS runs.
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	var epoch int32
	queue := make([]T, 0, 256)

	for _, c := range order {
		// Forward pruned BFS: add c to in of every vertex reachable from c
		// whose pair (c, d) is not already covered.
		epoch++
		queue = append(queue[:0], c)
		visited[c] = epoch
		for len(queue) > 0 {
			d := queue[0]
			queue = queue[1:]
			if d != c && covered(out[c], in[d]) {
				continue // pruned: do not label, do not expand
			}
			in[d] = append(in[d], c)
			for _, e := range succ(d) {
				if visited[e] != epoch {
					visited[e] = epoch
					queue = append(queue, e)
				}
			}
		}

		// Backward pruned BFS: add c to out of every vertex that reaches c.
		// Note in[c] now contains c, so covered(u, c) via c itself is
		// impossible until c lands in out[u] — exactly what this pass
		// assigns.
		epoch++
		queue = append(queue[:0], c)
		visited[c] = epoch
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if u != c && covered(out[u], in[c]) {
				continue
			}
			out[u] = append(out[u], c)
			for _, p := range pred(u) {
				if visited[p] != epoch {
					visited[p] = epoch
					queue = append(queue, p)
				}
			}
		}
	}
	return in, out
}

// bfsState is the per-worker scratch for pruned BFS runs: an epoch-stamped
// visited array (no clearing between runs) and a reusable queue.
type bfsState[T ~int32] struct {
	visited []int32
	epoch   int32
	queue   []T
}

func newBFSState[T ~int32](n int) *bfsState[T] {
	s := &bfsState[T]{visited: make([]int32, n), queue: make([]T, 0, 256)}
	for i := range s.visited {
		s.visited[i] = -1
	}
	return s
}

// labelBatched computes the same style of pruned-landmark labeling as
// labelSerial, but processes centers in rank-ordered batches of
// batchPerWorker·workers:
//
//  1. Within a batch, each center's forward and backward pruned BFS runs as
//     an independent task against a *snapshot* of the labels committed by
//     earlier batches. The snapshot is simply in/out themselves — no
//     goroutine writes them during the concurrent phase, so reading them
//     race-free needs no copying. Each BFS records its would-be label
//     targets (in visit order) as candidates instead of writing labels.
//  2. A serial reconciliation pass then walks the batch in rank order and
//     commits each candidate unless it has become coverable by a same-batch
//     center committed moments before.
//
// Correctness follows the standard pruned-landmark argument: a BFS pruned
// against a *subset* of the final labels visits a *superset* of the
// vertices the fully-informed BFS would, so no label that the serial
// construction needs is ever missed; reconciliation only drops entries
// whose pair is answerable through an earlier-ranked center, which
// preserves validity.
func labelBatched[T ~int32](n int, succ, pred func(T) []T, order []T, rank []int32, workers int) (in, out [][]T) {
	in = make([][]T, n)
	out = make([][]T, n)
	covered := coveredFunc[T](rank)

	states := make([]*bfsState[T], workers)
	for i := range states {
		states[i] = newBFSState[T](n)
	}

	batch := batchPerWorker * workers
	fwdCand := make([][]T, batch)
	bwdCand := make([][]T, batch)

	for start := 0; start < len(order); start += batch {
		end := start + batch
		if end > len(order) {
			end = len(order)
		}
		centers := order[start:end]

		// Concurrent phase: 2·len(centers) BFS tasks (task 2i = forward for
		// centers[i], 2i+1 = backward) pulled off an atomic counter.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(st *bfsState[T]) {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= 2*len(centers) {
						return
					}
					i, backward := t/2, t%2 == 1
					c := centers[i]
					if backward {
						bwdCand[i] = backwardBFS(st, c, pred, in, out, covered, bwdCand[i][:0])
					} else {
						fwdCand[i] = forwardBFS(st, c, succ, in, out, covered, fwdCand[i][:0])
					}
				}
			}(states[w])
		}
		wg.Wait()

		// Serial reconciliation, in rank order: commit candidates unless a
		// same-batch center that just committed already covers the pair. The
		// candidate lists are in BFS visit order, so appends keep in/out in
		// increasing rank order as covered() requires.
		for i, c := range centers {
			for _, d := range fwdCand[i] {
				if d != c && covered(out[c], in[d]) {
					continue
				}
				in[d] = append(in[d], c)
			}
			for _, u := range bwdCand[i] {
				if u != c && covered(out[u], in[c]) {
					continue
				}
				out[u] = append(out[u], c)
			}
		}
	}
	return in, out
}

// forwardBFS runs the forward pruned BFS for center c against the committed
// labels, appending every vertex that would receive c in its in-label to
// dst (in visit order) without writing any labels.
func forwardBFS[T ~int32](st *bfsState[T], c T, succ func(T) []T, in, out [][]T, covered func(a, b []T) bool, dst []T) []T {
	st.epoch++
	st.queue = append(st.queue[:0], c)
	st.visited[c] = st.epoch
	q := st.queue
	for len(q) > 0 {
		d := q[0]
		q = q[1:]
		if d != c && covered(out[c], in[d]) {
			continue
		}
		dst = append(dst, d)
		for _, e := range succ(d) {
			if st.visited[e] != st.epoch {
				st.visited[e] = st.epoch
				q = append(q, e)
			}
		}
	}
	return dst
}

// backwardBFS is forwardBFS's mirror for out-labels: it collects every
// vertex that would receive c in its out-label. in[c] has not been
// committed yet (c's own forward candidates are reconciled later), so the
// covered check relies purely on earlier batches — exactly the snapshot
// semantics labelBatched documents.
func backwardBFS[T ~int32](st *bfsState[T], c T, pred func(T) []T, in, out [][]T, covered func(a, b []T) bool, dst []T) []T {
	st.epoch++
	st.queue = append(st.queue[:0], c)
	st.visited[c] = st.epoch
	q := st.queue
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		if u != c && covered(out[u], in[c]) {
			continue
		}
		dst = append(dst, u)
		for _, p := range pred(u) {
			if st.visited[p] != st.epoch {
				st.visited[p] = st.epoch
				q = append(q, p)
			}
		}
	}
	return dst
}
