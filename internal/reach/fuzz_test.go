package reach_test

import (
	"testing"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
)

// FuzzIncrementalInsert drives InsertEdge with a fuzz-chosen edge sequence
// on a small random graph and checks two invariants after every step, for
// every registered backend: the labeling answers Reaches identically to
// BFS on the mutated graph, and the reported delta set accounts exactly
// for the size growth with every entry present in the labeling.
//
// Each input byte pair encodes one inserted edge (u, v) = (b[2i]%n,
// b[2i+1]%n); the first byte seeds the base graph so corpus entries cover
// different topologies.
func FuzzIncrementalInsert(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add([]byte{0x07, 0x00, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01})
	f.Add([]byte{0xff, 0x10, 0x20, 0x30, 0x40})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 64 {
			t.Skip()
		}
		const n = 12
		g := randomGraph(int64(data[0]), n, 16, 3)
		for _, name := range reach.Names() {
			be, err := reach.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			inc := newInc(be, g)

			// Mirror builder recomputing ground truth per step.
			type edge struct{ u, v graph.NodeID }
			var extra []edge
			truth := func() *graph.Graph {
				b := graph.NewBuilder()
				for i := 0; i < n; i++ {
					b.AddNodeLabel(b.Intern(g.LabelNameOf(graph.NodeID(i))))
				}
				for v := graph.NodeID(0); int(v) < n; v++ {
					for _, w := range g.Successors(v) {
						b.AddEdge(v, w)
					}
				}
				for _, e := range extra {
					b.AddEdge(e.u, e.v)
				}
				return b.Build()
			}

			for i := 1; i+1 < len(data); i += 2 {
				u := graph.NodeID(data[i] % n)
				v := graph.NodeID(data[i+1] % n)
				before := inc.Size()
				deltas := inc.InsertEdge(u, v)
				extra = append(extra, edge{u, v})
				if inc.Size() != before+len(deltas) {
					t.Fatalf("%s: insert %d->%d: size grew by %d, %d deltas",
						name, u, v, inc.Size()-before, len(deltas))
				}
				for _, d := range deltas {
					if d.Center != u {
						t.Fatalf("%s: insert %d->%d: delta %+v has wrong center", name, u, v, d)
					}
					if d.Node == d.Center {
						t.Fatalf("%s: insert %d->%d: self delta %+v", name, u, v, d)
					}
					list := inc.In(d.Node)
					if d.Out {
						list = inc.Out(d.Node)
					}
					if !containsSorted(list, d.Center) {
						t.Fatalf("%s: insert %d->%d: delta %+v missing from labeling", name, u, v, d)
					}
				}
				tg := truth()
				for x := graph.NodeID(0); int(x) < n; x++ {
					for y := graph.NodeID(0); int(y) < n; y++ {
						if inc.Reaches(x, y) != graph.Reaches(tg, x, y) {
							t.Fatalf("%s: insert %d->%d: Reaches(%d,%d) disagrees with BFS",
								name, u, v, x, y)
						}
					}
				}
			}
		}
	})
}

// FuzzIncrementalDelete drives a fuzz-chosen mixed insert/delete sequence
// through the labeling and checks the same invariants after every step,
// for every registered backend: Reaches identical to BFS on the mutated
// graph and delta accounting exact.
//
// Each input byte triple encodes one operation: b[3i]'s high bit selects
// delete (deletes of absent edges must be nil no-ops), and (b[3i+1]%n,
// b[3i+2]%n) is the edge. The first byte seeds the base graph.
func FuzzIncrementalDelete(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x02, 0x03, 0x80, 0x02, 0x03})
	f.Add([]byte{0x07, 0x80, 0x06, 0x05, 0x00, 0x04, 0x03, 0x80, 0x04, 0x03})
	f.Add([]byte{0xff, 0x80, 0x10, 0x20, 0x80, 0x30, 0x40})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 64 {
			t.Skip()
		}
		const n = 12
		g := randomGraph(int64(data[0]), n, 16, 3)
		for _, name := range reach.Names() {
			be, err := reach.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			inc := newInc(be, g)

			// Edge multiset mirror recomputing ground truth per step.
			edges := map[[2]graph.NodeID]int{}
			for v := graph.NodeID(0); int(v) < n; v++ {
				for _, w := range g.Successors(v) {
					edges[[2]graph.NodeID{v, w}]++
				}
			}
			truth := func() *graph.Graph {
				b := graph.NewBuilder()
				for i := 0; i < n; i++ {
					b.AddNodeLabel(b.Intern(g.LabelNameOf(graph.NodeID(i))))
				}
				for e, cnt := range edges {
					for i := 0; i < cnt; i++ {
						b.AddEdge(e[0], e[1])
					}
				}
				return b.Build()
			}

			for i := 1; i+2 < len(data); i += 3 {
				del := data[i]&0x80 != 0
				u := graph.NodeID(data[i+1] % n)
				v := graph.NodeID(data[i+2] % n)
				before := inc.Size()
				var deltas []reach.LabelDelta
				if del {
					deltas = inc.DeleteEdge(u, v)
					if edges[[2]graph.NodeID{u, v}] == 0 {
						if deltas != nil {
							t.Fatalf("%s: delete of absent %d->%d returned %d deltas", name, u, v, len(deltas))
						}
						continue
					}
					edges[[2]graph.NodeID{u, v}]--
				} else {
					deltas = inc.InsertEdge(u, v)
					edges[[2]graph.NodeID{u, v}]++
				}
				removed, added := 0, 0
				for _, d := range deltas {
					if d.Node == d.Center {
						t.Fatalf("%s: op %d->%d del=%v: self delta %+v", name, u, v, del, d)
					}
					list := inc.In(d.Node)
					if d.Out {
						list = inc.Out(d.Node)
					}
					if d.Removed {
						removed++
						if containsSorted(list, d.Center) {
							t.Fatalf("%s: op %d->%d del=%v: removed delta %+v still in labeling", name, u, v, del, d)
						}
					} else {
						added++
						if !containsSorted(list, d.Center) {
							t.Fatalf("%s: op %d->%d del=%v: delta %+v missing from labeling", name, u, v, del, d)
						}
					}
				}
				if inc.Size() != before-removed+added {
					t.Fatalf("%s: op %d->%d del=%v: size %d, want %d -%d +%d",
						name, u, v, del, inc.Size(), before, removed, added)
				}
				tg := truth()
				for x := graph.NodeID(0); int(x) < n; x++ {
					for y := graph.NodeID(0); int(y) < n; y++ {
						if inc.Reaches(x, y) != graph.Reaches(tg, x, y) {
							t.Fatalf("%s: op %d->%d del=%v: Reaches(%d,%d) disagrees with BFS",
								name, u, v, del, x, y)
						}
					}
				}
			}
		}
	})
}
