package rjoin

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// mustDB builds a database and returns its pinned build snapshot — the
// operators under test take a *gdb.Snap.
func mustDB(t testing.TB, g *graph.Graph) *gdb.Snap {
	t.Helper()
	db, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, release := db.Pin()
	t.Cleanup(func() {
		release()
		db.Close()
	})
	return snap
}

// cond builds a Cond from label names for pattern nodes 0(from) and 1(to).
func cond(g *graph.Graph, from, to string, fromNode, toNode int) Cond {
	return Cond{
		FromNode:  fromNode,
		ToNode:    toNode,
		FromLabel: g.Labels().Lookup(from),
		ToLabel:   g.Labels().Lookup(to),
	}
}

// truthJoin computes the exact R-join result by BFS.
func truthJoin(g *graph.Graph, from, to graph.Label) map[[2]graph.NodeID]bool {
	out := map[[2]graph.NodeID]bool{}
	for _, x := range g.Extent(from) {
		for _, y := range g.Extent(to) {
			if graph.Reaches(g, x, y) {
				out[[2]graph.NodeID{x, y}] = true
			}
		}
	}
	return out
}

func tableToSet(t *Table) map[string][]graph.NodeID {
	out := make(map[string][]graph.NodeID, len(t.Rows))
	for _, r := range t.Rows {
		var k []byte
		for _, v := range r {
			k = appendNodeKey(k, v)
		}
		out[string(k)] = r
	}
	return out
}

// TestHPSJMatchesTruth: Algorithm 1 returns exactly the reachable pairs,
// with no duplicates.
func TestHPSJMatchesTruth(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 30, 65, 3)
		dbx, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			return false
		}
		defer dbx.Close()
		db, release := dbx.Pin()
		defer release()
		for x := graph.Label(0); int(x) < g.Labels().Len(); x++ {
			for y := graph.Label(0); int(y) < g.Labels().Len(); y++ {
				if x == y {
					continue
				}
				got, err := HPSJ(context.Background(), db, Cond{0, 1, x, y})
				if err != nil {
					return false
				}
				want := truthJoin(g, x, y)
				if len(got.Rows) != len(want) {
					return false
				}
				for _, r := range got.Rows {
					if !want[[2]graph.NodeID{r[0], r[1]}] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestHPSJEqualsNestedLoop(t *testing.T) {
	g := randomGraph(4, 50, 110, 4)
	db := mustDB(t, g)
	c := cond(g, "A", "B", 0, 1)
	a, err := HPSJ(context.Background(), db, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NestedLoopJoin(context.Background(), db, c)
	if err != nil {
		t.Fatal(err)
	}
	a.SortRows()
	b.SortRows()
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("HPSJ %d rows != nested loop %d rows", len(a.Rows), len(b.Rows))
	}
}

// TestFilterSemanticsForward: the R-semijoin drops exactly the rows whose
// bound value cannot join the other side.
func TestFilterSemanticsForward(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed^0x1234, 28, 60, 3)
		dbx, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			return false
		}
		defer dbx.Close()
		db, release := dbx.Pin()
		defer release()
		a, b := g.Labels().Lookup("A"), g.Labels().Lookup("B")
		if a < 0 || b < 0 {
			return true // degenerate label draw; skip
		}
		// Temporal table with one column: all A nodes.
		tbl := NewTable(0)
		for _, x := range g.Extent(a) {
			tbl.Rows = append(tbl.Rows, []graph.NodeID{x})
		}
		got, err := Filter(context.Background(), db, tbl, Cond{0, 1, a, b})
		if err != nil {
			return false
		}
		kept := map[graph.NodeID]bool{}
		for _, r := range got.Rows {
			kept[r[0]] = true
		}
		for _, x := range g.Extent(a) {
			want := false
			for _, y := range g.Extent(b) {
				if graph.Reaches(g, x, y) {
					want = true
					break
				}
			}
			if kept[x] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestFilterSemanticsReverse: the reverse-direction semijoin (Eq. 8).
func TestFilterSemanticsReverse(t *testing.T) {
	g := randomGraph(8, 40, 85, 3)
	db := mustDB(t, g)
	a, b := g.Labels().Lookup("A"), g.Labels().Lookup("B")
	tbl := NewTable(1) // Y side bound
	for _, y := range g.Extent(b) {
		tbl.Rows = append(tbl.Rows, []graph.NodeID{y})
	}
	got, err := Filter(context.Background(), db, tbl, Cond{0, 1, a, b})
	if err != nil {
		t.Fatal(err)
	}
	kept := map[graph.NodeID]bool{}
	for _, r := range got.Rows {
		kept[r[0]] = true
	}
	for _, y := range g.Extent(b) {
		want := false
		for _, x := range g.Extent(a) {
			if graph.Reaches(g, x, y) {
				want = true
				break
			}
		}
		if kept[y] != want {
			t.Fatalf("reverse filter kept[%d]=%v want %v", y, kept[y], want)
		}
	}
}

// TestFetchEqualsHPSJ: starting from the full extent of X, Fetch on X→Y
// must produce exactly the HPSJ result.
func TestFetchEqualsHPSJ(t *testing.T) {
	g := randomGraph(10, 45, 95, 3)
	db := mustDB(t, g)
	c := cond(g, "A", "C", 0, 1)
	tbl := NewTable(0)
	for _, x := range g.Extent(c.FromLabel) {
		tbl.Rows = append(tbl.Rows, []graph.NodeID{x})
	}
	fetched, err := Fetch(context.Background(), db, tbl, c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := HPSJ(context.Background(), db, c)
	if err != nil {
		t.Fatal(err)
	}
	fetched.SortRows()
	want.SortRows()
	if !reflect.DeepEqual(fetched.Rows, want.Rows) {
		t.Fatalf("fetch %d rows != hpsj %d rows", len(fetched.Rows), len(want.Rows))
	}
}

// TestFetchReverse: Fetch with the To side bound expands F-subclusters.
func TestFetchReverse(t *testing.T) {
	g := randomGraph(11, 45, 95, 3)
	db := mustDB(t, g)
	c := cond(g, "A", "C", 0, 1)
	tbl := NewTable(1)
	for _, y := range g.Extent(c.ToLabel) {
		tbl.Rows = append(tbl.Rows, []graph.NodeID{y})
	}
	fetched, err := Fetch(context.Background(), db, tbl, c)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: [to, from] — project to [from, to] and compare to HPSJ.
	proj, err := fetched.Project([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := HPSJ(context.Background(), db, c)
	if err != nil {
		t.Fatal(err)
	}
	proj.SortRows()
	want.SortRows()
	if !reflect.DeepEqual(proj.Rows, want.Rows) {
		t.Fatalf("reverse fetch mismatch: %d vs %d rows", len(proj.Rows), len(want.Rows))
	}
}

// TestFilterThenFetchEqualsFetch: HPSJ+ (filter;fetch) must produce the same
// join result as fetch alone (Eq. 9) — the filter only prunes earlier.
func TestFilterThenFetchEqualsFetch(t *testing.T) {
	g := randomGraph(12, 50, 100, 4)
	db := mustDB(t, g)
	c := cond(g, "B", "D", 0, 1)
	tbl := NewTable(0)
	for _, x := range g.Extent(c.FromLabel) {
		tbl.Rows = append(tbl.Rows, []graph.NodeID{x})
	}
	direct, err := Fetch(context.Background(), db, tbl, c)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := Filter(context.Background(), db, tbl, c)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Len() > tbl.Len() {
		t.Fatal("filter grew the table")
	}
	two, err := Fetch(context.Background(), db, filtered, c)
	if err != nil {
		t.Fatal(err)
	}
	direct.SortRows()
	two.SortRows()
	if !reflect.DeepEqual(direct.Rows, two.Rows) {
		t.Fatalf("filter+fetch != fetch: %d vs %d rows", len(two.Rows), len(direct.Rows))
	}
}

// TestFilterMultiEqualsSequential: one shared scan (Remark 3.1) must equal
// applying the semijoins one at a time.
func TestFilterMultiEqualsSequential(t *testing.T) {
	g := randomGraph(13, 60, 130, 5)
	db := mustDB(t, g)
	// Temporal table: all C nodes in column 0; two semijoins C→D and C→E.
	cl := g.Labels().Lookup("C")
	cd := Cond{0, 1, cl, g.Labels().Lookup("D")}
	ce := Cond{0, 2, cl, g.Labels().Lookup("E")}
	tbl := NewTable(0)
	for _, x := range g.Extent(cl) {
		tbl.Rows = append(tbl.Rows, []graph.NodeID{x})
	}
	multi, err := FilterMulti(context.Background(), db, tbl, []Cond{cd, ce})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Filter(context.Background(), db, tbl, cd)
	if err != nil {
		t.Fatal(err)
	}
	seq, err = Filter(context.Background(), db, seq, ce)
	if err != nil {
		t.Fatal(err)
	}
	multi.SortRows()
	seq.SortRows()
	if !reflect.DeepEqual(multi.Rows, seq.Rows) {
		t.Fatalf("FilterMulti %d rows != sequential %d rows", multi.Len(), seq.Len())
	}
}

// TestSelection: the self R-join checks a condition between bound columns.
func TestSelection(t *testing.T) {
	g := randomGraph(14, 40, 80, 3)
	db := mustDB(t, g)
	a, b := g.Labels().Lookup("A"), g.Labels().Lookup("B")
	// Cartesian product of extents, then select A→B.
	tbl := NewTable(0, 1)
	for _, x := range g.Extent(a) {
		for _, y := range g.Extent(b) {
			tbl.Rows = append(tbl.Rows, []graph.NodeID{x, y})
		}
	}
	sel, err := Selection(context.Background(), db, tbl, Cond{0, 1, a, b})
	if err != nil {
		t.Fatal(err)
	}
	want, err := HPSJ(context.Background(), db, Cond{0, 1, a, b})
	if err != nil {
		t.Fatal(err)
	}
	sel.SortRows()
	want.SortRows()
	if !reflect.DeepEqual(sel.Rows, want.Rows) {
		t.Fatalf("selection %d rows != hpsj %d rows", sel.Len(), want.Len())
	}
}

// TestOperatorCancellation: a cancelled context aborts operators from
// inside their row loops (checked every cancelStride rows), so a large
// join cannot run to completion after its caller gave up.
func TestOperatorCancellation(t *testing.T) {
	g := randomGraph(16, 30, 65, 2)
	db := mustDB(t, g)
	a, b := g.Labels().Lookup("A"), g.Labels().Lookup("B")
	ext := g.Extent(a)
	if len(ext) == 0 {
		t.Fatal("no A nodes")
	}
	tbl := NewTable(0)
	for i := 0; i < 3*cancelStride; i++ {
		tbl.Rows = append(tbl.Rows, []graph.NodeID{ext[i%len(ext)]})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Cond{0, 1, a, b}
	if _, err := Filter(ctx, db, tbl, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("Filter on cancelled ctx: err=%v, want context.Canceled", err)
	}
	if _, err := Fetch(ctx, db, tbl, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fetch on cancelled ctx: err=%v, want context.Canceled", err)
	}
}

func TestOperatorErrors(t *testing.T) {
	g := randomGraph(15, 20, 40, 3)
	db := mustDB(t, g)
	a, b := g.Labels().Lookup("A"), g.Labels().Lookup("B")
	c := Cond{0, 1, a, b}

	both := NewTable(0, 1)
	if _, err := Filter(context.Background(), db, both, c); err == nil {
		t.Fatal("Filter with both sides bound should error")
	}
	if _, err := Fetch(context.Background(), db, both, c); err == nil {
		t.Fatal("Fetch with both sides bound should error")
	}
	neither := NewTable(7)
	if _, err := Filter(context.Background(), db, neither, c); err == nil {
		t.Fatal("Filter with no side bound should error")
	}
	one := NewTable(0)
	if _, err := Selection(context.Background(), db, one, c); err == nil {
		t.Fatal("Selection with one side bound should error")
	}
	if _, err := one.Project([]int{5}); err == nil {
		t.Fatal("Project of unbound column should error")
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := NewTable(3, 1)
	tbl.Rows = append(tbl.Rows, []graph.NodeID{10, 20}, []graph.NodeID{10, 20}, []graph.NodeID{11, 21})
	if tbl.ColIndex(1) != 1 || tbl.ColIndex(3) != 0 || tbl.ColIndex(9) != -1 {
		t.Fatal("ColIndex wrong")
	}
	if !tbl.HasCol(3) || tbl.HasCol(9) {
		t.Fatal("HasCol wrong")
	}
	p, err := tbl.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Project should dedup: %d rows", p.Len())
	}
	if tbl.String() == "" {
		t.Fatal("empty String")
	}
	// FilterMulti with no conditions is the identity.
	got, err := FilterMulti(context.Background(), nil, tbl, nil)
	if err != nil || got != tbl {
		t.Fatal("empty FilterMulti should return the input table")
	}
}

func BenchmarkHPSJ(b *testing.B) {
	g := randomGraph(20, 3000, 6000, 6)
	dbx, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer dbx.Close()
	db, release := dbx.Pin()
	defer release()
	c := cond(g, "A", "B", 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HPSJ(context.Background(), db, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterFetch(b *testing.B) {
	g := randomGraph(21, 3000, 6000, 6)
	dbx, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer dbx.Close()
	db, release := dbx.Pin()
	defer release()
	c := cond(g, "A", "B", 0, 1)
	tbl := NewTable(0)
	for _, x := range g.Extent(c.FromLabel) {
		tbl.Rows = append(tbl.Rows, []graph.NodeID{x})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Filter(context.Background(), db, tbl, c)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Fetch(context.Background(), db, f, c); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFilterGroupExplicitSides: FilterGroup with an explicit bound node and
// side prunes exactly the rows whose value cannot join each condition's
// other-side base table — including conditions whose other endpoint is
// already bound (the residual check is left to a later Selection).
func TestFilterGroupExplicitSides(t *testing.T) {
	g := randomGraph(31, 60, 130, 5)
	db := mustDB(t, g)
	cl := g.Labels().Lookup("C")
	dl := g.Labels().Lookup("D")
	el := g.Labels().Lookup("E")

	// Table with both C (col 0) and D (col 1) bound.
	tbl := NewTable(0, 1)
	for _, c := range g.Extent(cl) {
		for _, d := range g.Extent(dl) {
			tbl.Rows = append(tbl.Rows, []graph.NodeID{c, d})
		}
	}
	conds := []Cond{
		{FromNode: 0, ToNode: 1, FromLabel: cl, ToLabel: dl}, // other side bound
		{FromNode: 0, ToNode: 2, FromLabel: cl, ToLabel: el}, // other side free
	}
	got, err := FilterGroup(context.Background(), db, tbl, conds, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range got.Rows {
		c := row[0]
		reachesSomeD, reachesSomeE := false, false
		for _, d := range g.Extent(dl) {
			if graph.Reaches(g, c, d) {
				reachesSomeD = true
				break
			}
		}
		for _, e := range g.Extent(el) {
			if graph.Reaches(g, c, e) {
				reachesSomeE = true
				break
			}
		}
		if !reachesSomeD || !reachesSomeE {
			t.Fatalf("row with c=%d survived but fails a semijoin", c)
		}
	}
	// Completeness: every c passing both semijoins keeps all its rows.
	kept := map[graph.NodeID]int{}
	for _, row := range got.Rows {
		kept[row[0]]++
	}
	for _, c := range g.Extent(cl) {
		passD, passE := false, false
		for _, d := range g.Extent(dl) {
			if graph.Reaches(g, c, d) {
				passD = true
				break
			}
		}
		for _, e := range g.Extent(el) {
			if graph.Reaches(g, c, e) {
				passE = true
				break
			}
		}
		want := 0
		if passD && passE {
			want = g.ExtentSize(dl)
		}
		if kept[c] != want {
			t.Fatalf("c=%d kept %d rows, want %d", c, kept[c], want)
		}
	}
}

func TestFilterGroupErrors(t *testing.T) {
	g := randomGraph(32, 30, 60, 3)
	db := mustDB(t, g)
	al := g.Labels().Lookup("A")
	bl := g.Labels().Lookup("B")
	tbl := NewTable(0)
	// Bound node not in table.
	if _, err := FilterGroup(context.Background(), db, tbl, []Cond{{FromNode: 5, ToNode: 6, FromLabel: al, ToLabel: bl}}, 5, true); err == nil {
		t.Fatal("expected error for unbound group node")
	}
	// Condition not incident on the declared side.
	tbl2 := NewTable(0)
	if _, err := FilterGroup(context.Background(), db, tbl2, []Cond{{FromNode: 1, ToNode: 0, FromLabel: al, ToLabel: bl}}, 0, true); err == nil {
		t.Fatal("expected error for wrong-side condition")
	}
	// Empty condition list is the identity.
	if got, err := FilterGroup(context.Background(), db, tbl2, nil, 0, true); err != nil || got != tbl2 {
		t.Fatal("empty FilterGroup should return the input table")
	}
}

// TestFilterGroupImpossibleCondition: a condition whose W entry is empty
// empties the table immediately.
func TestFilterGroupImpossibleCondition(t *testing.T) {
	b := graph.NewBuilder()
	x := b.AddNode("X")
	b.AddNode("Y") // never connected
	g := b.Build()
	db := mustDB(t, g)
	tbl := NewTable(0)
	tbl.Rows = append(tbl.Rows, []graph.NodeID{x})
	got, err := FilterGroup(context.Background(), db, tbl, []Cond{{
		FromNode: 0, ToNode: 1,
		FromLabel: g.Labels().Lookup("X"), ToLabel: g.Labels().Lookup("Y"),
	}}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("impossible condition kept %d rows", got.Len())
	}
}
