// Package rjoin implements the paper's R-join and R-semijoin operators over
// a graph database (Section 3):
//
//   - HPSJ (Algorithm 1): an R-join between two base tables, answered
//     entirely from the cluster-based R-join index via the W-table.
//   - HPSJ+ (Algorithm 2): a two-step filter/fetch R-join between a temporal
//     table and a base table. Filter is the R-semijoin
//     getCenters(x, X, Y) = out(x) ∩ W(X, Y) (Eq. 6); Fetch expands the
//     surviving rows from the center clusters.
//   - FilterMulti: one shared scan evaluating several R-semijoins that bind
//     the same temporal column (Remark 3.1).
//   - Selection: a self R-join (Eq. 5) — a reachability condition between
//     two columns both already bound in the temporal table, checked from
//     graph codes.
//
// Temporal tables are in-memory, as in the paper's executor; all base
// table, W-table, and cluster index accesses go through the graph
// database's buffer pool and are counted as I/O.
package rjoin

import (
	"fmt"
	"slices"

	"fastmatch/internal/graph"
)

// Table is a temporal (intermediate) table: a set of distinct rows over a
// set of pattern-node columns.
type Table struct {
	// Cols holds pattern node indexes, one per column.
	Cols []int
	// Rows holds tuples of data nodes, aligned with Cols.
	Rows [][]graph.NodeID

	// arena is the append-only backing store NewRow carves rows from, so
	// bulk row production (Fetch, HPSJ) allocates one chunk per
	// arenaChunkRows rows instead of one slice per row.
	arena []graph.NodeID

	// budget, when non-nil, is charged for every row carved from the
	// arena; the query's operators check it at their cancellation polls
	// and partition-merge points. Runtime.newTable attaches it.
	budget *Budget
}

// arenaChunkRows is how many rows one arena chunk holds.
const arenaChunkRows = 1024

// nodeIDBytes is the in-memory size of one graph.NodeID (int32), used for
// intermediate-byte accounting.
const nodeIDBytes = 4

// NewRow returns a fresh zeroed row of len(Cols) carved from the table's
// append-only arena. The row is NOT added to Rows — fill it and append it.
// Rows are full-capacity slices, so appending to one never bleeds into its
// arena neighbours. Not safe for concurrent use; parallel operators give
// each partition its own table and merge the Rows slices afterwards.
func (t *Table) NewRow() []graph.NodeID {
	w := len(t.Cols)
	if w == 0 {
		return nil
	}
	if t.budget != nil {
		t.budget.AddBytes(int64(w) * nodeIDBytes)
	}
	if cap(t.arena)-len(t.arena) < w {
		t.arena = make([]graph.NodeID, 0, arenaChunkRows*w)
	}
	n := len(t.arena)
	t.arena = t.arena[: n+w : cap(t.arena)]
	return t.arena[n : n+w : n+w]
}

// NewTable creates an empty table with the given columns.
func NewTable(cols ...int) *Table {
	return &Table{Cols: append([]int(nil), cols...)}
}

// ColIndex returns the position of pattern node in Cols, or -1.
func (t *Table) ColIndex(node int) int {
	for i, c := range t.Cols {
		if c == node {
			return i
		}
	}
	return -1
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// HasCol reports whether the pattern node is bound in this table.
func (t *Table) HasCol(node int) bool { return t.ColIndex(node) >= 0 }

func (t *Table) String() string {
	return fmt.Sprintf("table{cols=%v rows=%d}", t.Cols, len(t.Rows))
}

// Project returns a new table with only the given pattern-node columns, in
// the given order, with duplicate rows removed.
func (t *Table) Project(nodes []int) (*Table, error) {
	idx := make([]int, len(nodes))
	for i, n := range nodes {
		idx[i] = t.ColIndex(n)
		if idx[i] < 0 {
			return nil, fmt.Errorf("rjoin: project: node %d not bound in %v", n, t.Cols)
		}
	}
	out := NewTable(nodes...)
	seen := make(map[string]struct{}, len(t.Rows))
	var key []byte
	for _, r := range t.Rows {
		row := make([]graph.NodeID, len(idx))
		key = key[:0]
		for i, j := range idx {
			row[i] = r[j]
			key = appendNodeKey(key, r[j])
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Permute returns a new table with the given pattern-node columns in the
// given order, preserving row order and WITHOUT deduplication — Project
// minus the hash set. It is correct only when the permuted rows are known
// pairwise distinct, which holds for full-width projections of the
// tier-1 fast-path plans (each admitted operator chain produces distinct
// rows); the fast-path executor uses it to skip Project's per-row key
// hashing on the result path.
func (t *Table) Permute(nodes []int) (*Table, error) {
	idx := make([]int, len(nodes))
	identity := len(nodes) == len(t.Cols)
	for i, n := range nodes {
		idx[i] = t.ColIndex(n)
		if idx[i] < 0 {
			return nil, fmt.Errorf("rjoin: project: node %d not bound in %v", n, t.Cols)
		}
		identity = identity && idx[i] == i
	}
	if identity {
		// The columns already stand in the requested order; the permuted
		// table would be a row-by-row copy of t.
		return t, nil
	}
	out := NewTable(nodes...)
	if len(t.Rows) > 0 {
		out.arena = make([]graph.NodeID, 0, len(t.Rows)*len(idx))
	}
	for _, r := range t.Rows {
		n := len(out.arena)
		out.arena = out.arena[: n+len(idx) : cap(out.arena)]
		row := out.arena[n : n+len(idx) : n+len(idx)]
		for i, j := range idx {
			row[i] = r[j]
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// SortRows orders rows lexicographically (for deterministic output and
// test comparison).
func (t *Table) SortRows() {
	slices.SortFunc(t.Rows, func(a, b []graph.NodeID) int {
		for k := range a {
			if a[k] != b[k] {
				if a[k] < b[k] {
					return -1
				}
				return 1
			}
		}
		return 0
	})
}

func appendNodeKey(b []byte, v graph.NodeID) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// EncodeRows serialises the table's rows (not its schema) for spilling a
// temporal table to storage, as the paper's disk-based executor does
// between operators. Layout: row count, column count, then row-major
// little-endian uint32 node IDs.
func (t *Table) EncodeRows() []byte {
	w := len(t.Cols)
	b := make([]byte, 8+4*w*len(t.Rows))
	putU32(b, uint32(len(t.Rows)))
	putU32(b[4:], uint32(w))
	o := 8
	for _, row := range t.Rows {
		for _, v := range row {
			putU32(b[o:], uint32(v))
			o += 4
		}
	}
	return b
}

// DecodeRows replaces the table's rows with the contents of an EncodeRows
// buffer. The column count must match the table schema.
func (t *Table) DecodeRows(b []byte) error {
	n := int(u32(b))
	w := int(u32(b[4:]))
	if w != len(t.Cols) {
		return fmt.Errorf("rjoin: decode width %d != %d columns", w, len(t.Cols))
	}
	if len(b) < 8+4*w*n {
		return fmt.Errorf("rjoin: decode buffer truncated")
	}
	t.Rows = make([][]graph.NodeID, n)
	o := 8
	flat := make([]graph.NodeID, n*w)
	for i := range t.Rows {
		row := flat[i*w : (i+1)*w : (i+1)*w]
		for j := 0; j < w; j++ {
			row[j] = graph.NodeID(u32(b[o:]))
			o += 4
		}
		t.Rows[i] = row
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Cond is a reachability condition From→To between two pattern nodes with
// their data-graph labels resolved.
type Cond struct {
	FromNode, ToNode   int
	FromLabel, ToLabel graph.Label
}

func (c Cond) String() string {
	return fmt.Sprintf("%d->%d", c.FromNode, c.ToNode)
}
