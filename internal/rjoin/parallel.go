package rjoin

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// Partition grains: a partition is only split off when it would hold at
// least this many work units, so small inputs run inline and the goroutine
// overhead stays off the fast path. Centers are far coarser work units than
// rows (each center expands a Cartesian product), hence the smaller grain.
const (
	centerGrain = 8
	rowGrain    = 256
)

// minParallelGrains is the serial cutoff: an operator goes parallel only
// when it has at least this many grains of work to share out. Below that,
// the partition bookkeeping and result merge cost more than the concurrency
// returns — BENCH_rjoin.json showed parallel Fetch *losing* to serial on
// ~thousand-row inputs (6.33ms at 4 workers vs 5.61ms serial) before this
// cutoff existed. Eight grains ≈ 2k rows or 64 centers.
const minParallelGrains = 8

// Runtime carries one query's intra-operator execution resources: the
// worker-pool degree shared by all operators of the query and the per-query
// center cache memoizing getCenters results across Filter and Fetch steps.
// A Runtime is scoped to a single query against a single database — reusing
// one across databases would serve stale center sets. All methods are safe
// for concurrent use (a query's operators run one at a time, but the
// partitions of one operator run on many goroutines).
type Runtime struct {
	workers int
	centers *centerCache
	// fast routes subcluster reads through the snapshot's decoded-list
	// memo (gdb.Snap.FastF/FastT) instead of the buffer pool: the tier-1
	// index-only read path. The decoded lists are identical to what GetF/
	// GetT return, so operator results are unchanged; only the read cost
	// moves from per-record page fetches to a per-epoch memory cache.
	fast bool

	// budget is the query's resource governor (nil = unbudgeted). Set it
	// with SetBudget before the first operator runs.
	budget *Budget
	// rowTarget, when > 0, is a pushed-down result-row limit: the next
	// operators stop producing once the limit is definitively exceeded and
	// truncate their merged output to it (see PushLimit). The executor
	// sets it only for a plan's final step.
	rowTarget int

	ops         atomic.Int64
	parallelOps atomic.Int64
	tasks       atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	seeks       atomic.Int64
	iterNexts   atomic.Int64
}

// NewRuntime returns a Runtime executing each operator on up to workers
// goroutines (workers <= 0 selects GOMAXPROCS) with the per-query center
// cache enabled.
func NewRuntime(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runtime{workers: workers, centers: newCenterCache(defaultCenterCacheEntries)}
}

// serial returns a zero-overhead single-worker runtime with no center
// cache; it backs the package-level operator functions, which predate the
// Runtime API and must stay independent across calls (they may be used
// against many databases).
func serial() *Runtime { return &Runtime{workers: 1} }

// NewFastRuntime returns the tier-1 fast-path runtime: a single worker (no
// pool, no partition bookkeeping) and no per-query center cache — fast-path
// center sets come from the snapshot's per-epoch memo (gdb.Snap.FastCenters),
// which outlives the query. Budget, limit-pushdown, and operator semantics
// are exactly NewRuntime(1)'s, which is what makes tier-1 results and budget
// kills identical to the pipeline's at one worker.
func NewFastRuntime() *Runtime {
	return &Runtime{workers: 1, fast: true}
}

// getF reads an F-subcluster through the runtime's read path: the
// snapshot's decoded-list memo on the fast path, the buffer pool
// otherwise. Both return the same list; callers must not mutate it.
func (rt *Runtime) getF(db *gdb.Snap, w graph.NodeID, x graph.Label) ([]graph.NodeID, error) {
	if rt.fast {
		return db.FastF(w, x)
	}
	return db.GetF(w, x)
}

// getT is getF for T-subclusters.
func (rt *Runtime) getT(db *gdb.Snap, w graph.NodeID, y graph.Label) ([]graph.NodeID, error) {
	if rt.fast {
		return db.FastT(w, y)
	}
	return db.GetT(w, y)
}

// Workers returns the resolved parallelism degree.
func (rt *Runtime) Workers() int {
	if rt.workers <= 0 {
		return 1
	}
	return rt.workers
}

// SetBudget attaches a per-query resource budget to the runtime: operators
// charge intermediate-row allocation to it and check it at their
// cancellation polls and partition-merge points. Call it before the first
// operator runs (it is not synchronised against in-flight operators).
func (rt *Runtime) SetBudget(b *Budget) { rt.budget = b }

// Budget returns the attached budget (nil when unbudgeted).
func (rt *Runtime) Budget() *Budget { return rt.budget }

// PushLimit sets a result-row limit for subsequent operator calls
// (0 clears it). With a limit n, each partition of a row-order-preserving
// operator stops after producing n+1 rows and the merged output truncates
// to n — so the first n rows are exactly the unlimited run's prefix at
// every worker degree, rows beyond the limit are never materialised, and
// the truncation is marked on the runtime's budget only when rows were
// really dropped. HPSJ (which sorts its output globally) materialises its
// pairs and truncates after the merge. The executor calls this only for a
// plan's final operator; like SetBudget it must not race an in-flight
// operator.
func (rt *Runtime) PushLimit(n int) { rt.rowTarget = n }

// newTable is NewTable with the runtime's budget attached, so rows carved
// from the table's arena are charged to the query.
func (rt *Runtime) newTable(cols ...int) *Table {
	t := NewTable(cols...)
	t.budget = rt.budget
	return t
}

// finishOp is the partition-merge checkpoint every operator returns
// through: it applies the pushed-down row limit to the merged output and
// validates the merged table against the budget's row and byte caps.
func (rt *Runtime) finishOp(t *Table) (*Table, error) {
	if rt.rowTarget > 0 && len(t.Rows) > rt.rowTarget {
		t.Rows = t.Rows[:rt.rowTarget]
		rt.budget.MarkTruncated()
	}
	rt.budget.NoteRows(len(t.Rows))
	if err := rt.budget.CheckRows(len(t.Rows)); err != nil {
		return nil, err
	}
	if err := rt.budget.CheckBytes(); err != nil {
		return nil, err
	}
	return t, nil
}

// RuntimeStats are cumulative counters of one Runtime's activity.
type RuntimeStats struct {
	// Ops is the number of operator executions.
	Ops int64
	// ParallelOps counts operators that split into more than one partition.
	ParallelOps int64
	// Tasks is the total number of partition tasks executed (Tasks/Ops is
	// the achieved fan-out; compare against the configured worker degree
	// for utilisation).
	Tasks int64
	// CenterCacheHits/Misses count per-query center cache lookups.
	CenterCacheHits   int64
	CenterCacheMisses int64
	// Seeks counts WCOJ sorted-iterator positioning operations: one per
	// constraint list entering a leapfrog intersection plus one per
	// subcluster list opened while materialising a bound constraint's
	// partner union.
	Seeks int64
	// IterNexts counts candidate values the leapfrog intersections
	// produced (values the enumeration advanced through).
	IterNexts int64
}

// Stats snapshots the runtime's counters.
func (rt *Runtime) Stats() RuntimeStats {
	return RuntimeStats{
		Ops:               rt.ops.Load(),
		ParallelOps:       rt.parallelOps.Load(),
		Tasks:             rt.tasks.Load(),
		CenterCacheHits:   rt.cacheHits.Load(),
		CenterCacheMisses: rt.cacheMisses.Load(),
		Seeks:             rt.seeks.Load(),
		IterNexts:         rt.iterNexts.Load(),
	}
}

// split decides how many partitions n work units of the given grain get:
// one (serial) below the minParallelGrains cutoff, otherwise up to the
// worker degree with every partition holding at least one grain.
func (rt *Runtime) split(n, grain int) int {
	parts := rt.Workers()
	if parts <= 1 {
		return 1
	}
	if grain > 0 {
		if n < minParallelGrains*grain {
			return 1
		}
		if n/grain < parts {
			parts = n / grain
		}
	}
	if parts < 1 {
		parts = 1
	}
	return parts
}

// runParts executes f over parts contiguous ranges of [0, n). Partition
// boundaries are deterministic, so per-partition results concatenated in
// partition order reproduce the serial output exactly. The first failing
// partition cancels the others through the shared sub-context; its error is
// returned (a real error is preferred over the context.Canceled the
// cancellation induces in sibling partitions).
func (rt *Runtime) runParts(ctx context.Context, n, parts int, f func(ctx context.Context, part, lo, hi int) error) error {
	rt.ops.Add(1)
	rt.tasks.Add(int64(parts))
	if parts <= 1 {
		return f(ctx, 0, 0, n)
	}
	rt.parallelOps.Add(1)
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		lo, hi := p*n/parts, (p+1)*n/parts
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			if err := f(pctx, p, lo, hi); err != nil {
				errs[p] = err
				cancel()
			}
		}(p, lo, hi)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// Per-query center cache: getCenters(v, X, Y) = out(v) ∩ W(X, Y) is a pure
// function of the (read-only) database, so within one query its results are
// memoized across operators — a JoinFilterFetch's Fetch step reuses the
// center sets its Filter step just computed instead of re-intersecting.

const (
	defaultCenterCacheEntries = 1 << 16
	centerCacheShards         = 8
)

type centerKey struct {
	v    graph.NodeID
	x, y graph.Label
	fwd  bool
}

type centerCache struct {
	shardCap int
	shards   [centerCacheShards]centerCacheShard
}

type centerCacheShard struct {
	mu sync.Mutex
	m  map[centerKey][]graph.NodeID
}

func newCenterCache(entries int) *centerCache {
	c := &centerCache{shardCap: entries / centerCacheShards}
	if c.shardCap < 1 {
		c.shardCap = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[centerKey][]graph.NodeID)
	}
	return c
}

func (c *centerCache) get(k centerKey) ([]graph.NodeID, bool) {
	s := &c.shards[int(uint32(k.v))%centerCacheShards]
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (c *centerCache) put(k centerKey, v []graph.NodeID) {
	s := &c.shards[int(uint32(k.v))%centerCacheShards]
	s.mu.Lock()
	if len(s.m) >= c.shardCap {
		// Bounded like the database's code cache: drop an arbitrary entry.
		for dk := range s.m {
			delete(s.m, dk)
			break
		}
	}
	s.m[k] = v
	s.mu.Unlock()
}

// centersFor computes getCenters for one bound value — out(v) ∩ W(X, Y)
// forward, in(v) ∩ W(X, Y) reverse — through the per-query cache when the
// runtime has one. The fast path reads the snapshot's per-epoch memo
// instead: same intersection, amortised across every query on the epoch.
func (rt *Runtime) centersFor(db *gdb.Snap, v graph.NodeID, ws []graph.NodeID, c Cond, forward bool) ([]graph.NodeID, error) {
	if rt.fast {
		return db.FastCenters(v, c.FromLabel, c.ToLabel, forward)
	}
	if rt.centers == nil {
		return centersFor(db, v, ws, forward)
	}
	k := centerKey{v: v, x: c.FromLabel, y: c.ToLabel, fwd: forward}
	if cs, ok := rt.centers.get(k); ok {
		rt.cacheHits.Add(1)
		return cs, nil
	}
	rt.cacheMisses.Add(1)
	cs, err := centersFor(db, v, ws, forward)
	if err != nil {
		return nil, err
	}
	rt.centers.put(k, cs)
	return cs, nil
}

// Sorted-set kernels shared by the operators.

// pairKey packs an (x, y) node pair into one ordered uint64, so pair sets
// sort and deduplicate as flat integer slices instead of hash maps.
func pairKey(x, y graph.NodeID) uint64 {
	return uint64(uint32(x))<<32 | uint64(uint32(y))
}

func pairNodes(k uint64) (x, y graph.NodeID) {
	return graph.NodeID(uint32(k >> 32)), graph.NodeID(uint32(k))
}

// mergeUniqueU64 merges ascending duplicate-free slices into one ascending
// duplicate-free slice (duplicates across inputs are emitted once), by
// repeated pairwise merging.
func mergeUniqueU64(lists [][]uint64) []uint64 {
	for len(lists) > 1 {
		merged := lists[:0]
		for i := 0; i < len(lists); i += 2 {
			if i+1 == len(lists) {
				merged = append(merged, lists[i])
				break
			}
			merged = append(merged, mergePairU64(lists[i], lists[i+1]))
		}
		lists = merged
	}
	if len(lists) == 0 {
		return nil
	}
	return lists[0]
}

func mergePairU64(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeUnion appends the sorted-set union of two ascending duplicate-free
// slices to dst[:0]; it backs Fetch's per-row cluster-expansion dedup.
func mergeUnion(dst, a, b []graph.NodeID) []graph.NodeID {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
