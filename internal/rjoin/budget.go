package rjoin

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Typed budget errors. Both survive the executor's step wrapping, so
// callers classify them with errors.Is.
var (
	// ErrRowLimit reports an intermediate temporal table that exceeded the
	// query's row budget (Budget.MaxTableRows).
	ErrRowLimit = errors.New("rjoin: intermediate row budget exceeded")
	// ErrBudgetExceeded reports a query whose cumulative intermediate-result
	// allocation exceeded its byte budget (Budget.MaxBytes).
	ErrBudgetExceeded = errors.New("rjoin: intermediate byte budget exceeded")
)

// Budget is a per-query resource governor. It bounds what a single query
// may materialise while executing a plan: the final result's row count
// (a pushed-down LIMIT that truncates instead of failing), any
// intermediate temporal table's rows, and the cumulative bytes of
// intermediate rows allocated across all operators. Deadlines are not part
// of the budget — they ride the context, as before.
//
// Accounting happens where rows are produced (Table.NewRow arena carving,
// HPSJ's center cross-products); checks sit in the operators' cancellation
// polls and at every partition-merge point, so one partition exceeding the
// budget cancels its siblings through the operator's shared sub-context.
// All methods are safe for concurrent use and safe on a nil *Budget (every
// check passes), so unbudgeted paths pay only a nil test.
type Budget struct {
	// ResultRows, when > 0, caps the rows of the final query result. The
	// executor pushes it into the plan's last operator, which stops
	// producing once the limit is definitively exceeded and truncates its
	// merged output; Truncated reports whether rows were cut. The first
	// ResultRows rows are exactly the unbudgeted run's prefix at every
	// worker degree.
	ResultRows int
	// MaxTableRows, when > 0, fails the query with ErrRowLimit as soon as
	// any intermediate temporal table exceeds this many rows.
	MaxTableRows int
	// MaxBytes, when > 0, fails the query with ErrBudgetExceeded once the
	// cumulative bytes of intermediate rows allocated by the query exceed
	// it. Filters and selections share their input's rows and charge
	// nothing; row-producing operators (HPSJ, Fetch) charge as they emit.
	MaxBytes int64

	bytes     atomic.Int64
	peakRows  atomic.Int64
	truncated atomic.Bool
}

// AddBytes records n bytes of intermediate-result allocation without
// checking the cap (checks run at the next poll or merge point).
func (b *Budget) AddBytes(n int64) {
	if b == nil {
		return
	}
	b.bytes.Add(n)
}

// ChargeBytes records n bytes and immediately checks the byte cap: callers
// use it as a pre-flight check before a large allocation (e.g. a center's
// cross product) so the query dies before the damage, not after.
func (b *Budget) ChargeBytes(n int64) error {
	if b == nil {
		return nil
	}
	b.bytes.Add(n)
	return b.CheckBytes()
}

// CheckBytes returns ErrBudgetExceeded once recorded bytes pass MaxBytes.
func (b *Budget) CheckBytes() error {
	if b == nil || b.MaxBytes <= 0 {
		return nil
	}
	if n := b.bytes.Load(); n > b.MaxBytes {
		return fmt.Errorf("%w (%d bytes > budget %d)", ErrBudgetExceeded, n, b.MaxBytes)
	}
	return nil
}

// CheckRows returns ErrRowLimit when an intermediate table (or a single
// partition of one) holds more than MaxTableRows rows.
func (b *Budget) CheckRows(n int) error {
	if b == nil || b.MaxTableRows <= 0 || n <= b.MaxTableRows {
		return nil
	}
	return fmt.Errorf("%w (%d rows > budget %d)", ErrRowLimit, n, b.MaxTableRows)
}

// NoteRows records an intermediate table size for the peak-rows statistic.
func (b *Budget) NoteRows(n int) {
	if b == nil {
		return
	}
	v := int64(n)
	for {
		cur := b.peakRows.Load()
		if v <= cur || b.peakRows.CompareAndSwap(cur, v) {
			return
		}
	}
}

// MarkTruncated records that result rows beyond ResultRows were dropped.
func (b *Budget) MarkTruncated() {
	if b != nil {
		b.truncated.Store(true)
	}
}

// Truncated reports whether the result was cut at ResultRows.
func (b *Budget) Truncated() bool { return b != nil && b.truncated.Load() }

// Bytes returns the cumulative intermediate-result bytes charged so far.
func (b *Budget) Bytes() int64 {
	if b == nil {
		return 0
	}
	return b.bytes.Load()
}

// PeakRows returns the largest intermediate table size noted so far.
func (b *Budget) PeakRows() int64 {
	if b == nil {
		return 0
	}
	return b.peakRows.Load()
}
