package rjoin

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"fastmatch/internal/graph"
)

// naiveMultiway enumerates the exact result of a multiway R-join by brute
// force: every tuple over the variables' extents satisfying all conditions
// by BFS reachability, in lexicographic variable order.
func naiveMultiway(g *graph.Graph, labels []graph.Label, conds []Cond) [][]graph.NodeID {
	var out [][]graph.NodeID
	binding := make([]graph.NodeID, len(labels))
	var rec func(k int)
	rec = func(k int) {
		if k == len(labels) {
			out = append(out, append([]graph.NodeID(nil), binding...))
			return
		}
		for _, v := range g.Extent(labels[k]) {
			binding[k] = v
			ok := true
			for _, c := range conds {
				if c.FromNode > k || c.ToNode > k {
					continue
				}
				if !graph.Reaches(g, binding[c.FromNode], binding[c.ToNode]) {
					ok = false
					break
				}
			}
			if ok {
				rec(k + 1)
			}
		}
	}
	rec(0)
	return out
}

// triangle returns the A→B, B→C, A→C condition set over nodes 0,1,2.
func triangle(g *graph.Graph) ([]graph.Label, []Cond) {
	labels := []graph.Label{g.Labels().Lookup("A"), g.Labels().Lookup("B"), g.Labels().Lookup("C")}
	conds := []Cond{
		cond(g, "A", "B", 0, 1),
		cond(g, "B", "C", 1, 2),
		cond(g, "A", "C", 0, 2),
	}
	return labels, conds
}

// TestWCOJMatchesTruth: the leapfrog multiway join returns exactly the
// brute-force result of a triangle pattern, in lexicographic order of the
// variable order, with no duplicates.
func TestWCOJMatchesTruth(t *testing.T) {
	for _, seed := range []int64{21, 22, 23} {
		g := randomGraph(seed, 60, 150, 3)
		db := mustDB(t, g)
		labels, conds := triangle(g)
		want := naiveMultiway(g, labels, conds)

		got, err := WCOJ(context.Background(), db, conds, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want) {
			t.Fatalf("seed %d: WCOJ %d rows != naive %d rows (or order differs)",
				seed, got.Len(), len(want))
		}
	}
}

// TestWCOJOrderInvariance: every valid variable order yields the same
// result set (rows sorted for comparison; each order's own output is
// lexicographic in that order).
func TestWCOJOrderInvariance(t *testing.T) {
	g := randomGraph(24, 60, 160, 3)
	db := mustDB(t, g)
	_, conds := triangle(g)
	orders := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var want *Table
	for _, order := range orders {
		got, err := WCOJ(context.Background(), db, conds, order)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		// The output columns follow the variable order; remap each row to
		// pattern-node order before comparing result sets.
		norm := NewTable(0, 1, 2)
		for _, row := range got.Rows {
			nr := make([]graph.NodeID, len(row))
			for i, col := range got.Cols {
				nr[col] = row[i]
			}
			norm.Rows = append(norm.Rows, nr)
		}
		norm.SortRows()
		if want == nil {
			want = norm
			continue
		}
		if !reflect.DeepEqual(norm.Rows, want.Rows) {
			t.Fatalf("order %v: %d rows != %d rows of order %v",
				order, norm.Len(), want.Len(), orders[0])
		}
	}
	if want.Len() == 0 {
		t.Fatal("triangle result empty; test graph too sparse to prove anything")
	}
}

// TestWCOJParallelMatchesSerial: identical rows in identical order at every
// worker degree (the level-0 partitioning is contiguous and concatenated in
// partition order).
func TestWCOJParallelMatchesSerial(t *testing.T) {
	g := randomGraph(25, 80, 220, 3)
	db := mustDB(t, g)
	_, conds := triangle(g)
	serial, err := WCOJ(context.Background(), db, conds, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("empty triangle result; pick a denser seed")
	}
	for _, workers := range []int{2, 4, 8} {
		rt := NewRuntime(workers)
		got, err := rt.WCOJ(context.Background(), db, conds, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, serial.Rows) {
			t.Fatalf("workers=%d: rows differ from serial (got %d, want %d)",
				workers, got.Len(), serial.Len())
		}
	}
}

// TestWCOJBudgetKill: the typed budget errors fire at serial and parallel
// degrees, same contract as the binary operators.
func TestWCOJBudgetKill(t *testing.T) {
	g := randomGraph(26, 80, 220, 3)
	db := mustDB(t, g)
	ctx := context.Background()
	_, conds := triangle(g)
	full, err := WCOJ(ctx, db, conds, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 4 {
		t.Fatalf("graph too sparse for the test: %d rows", full.Len())
	}
	for _, workers := range []int{1, 4} {
		rt := NewRuntime(workers)
		rt.SetBudget(&Budget{MaxTableRows: full.Len() - 1})
		if _, err := rt.WCOJ(ctx, db, conds, []int{0, 1, 2}); !errors.Is(err, ErrRowLimit) {
			t.Fatalf("workers=%d: got %v, want ErrRowLimit", workers, err)
		}
		rt = NewRuntime(workers)
		rt.SetBudget(&Budget{MaxBytes: 16})
		if _, err := rt.WCOJ(ctx, db, conds, []int{0, 1, 2}); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("workers=%d: got %v, want ErrBudgetExceeded", workers, err)
		}
	}
}

// TestWCOJLimitPushdown: a pushed-down result limit yields exactly the
// first n rows of the unlimited output at every worker degree.
func TestWCOJLimitPushdown(t *testing.T) {
	g := randomGraph(26, 80, 220, 3)
	db := mustDB(t, g)
	ctx := context.Background()
	_, conds := triangle(g)
	full, err := WCOJ(ctx, db, conds, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 5 {
		t.Fatalf("graph too sparse for the test: %d rows", full.Len())
	}
	for _, workers := range []int{1, 2, 7} {
		for _, n := range []int{1, 2, full.Len() - 1, full.Len(), full.Len() + 5} {
			rt := NewRuntime(workers)
			b := &Budget{ResultRows: n}
			rt.SetBudget(b)
			rt.PushLimit(n)
			got, err := rt.WCOJ(ctx, db, conds, []int{0, 1, 2})
			if err != nil {
				t.Fatal(err)
			}
			wantLen := min(n, full.Len())
			if got.Len() != wantLen || !reflect.DeepEqual(got.Rows, full.Rows[:wantLen]) {
				t.Fatalf("workers=%d limit=%d: not the unlimited prefix (%d rows, want %d)",
					workers, n, got.Len(), wantLen)
			}
			if wantTrunc := n < full.Len(); b.Truncated() != wantTrunc {
				t.Fatalf("workers=%d limit=%d: Truncated=%v, want %v", workers, n, b.Truncated(), wantTrunc)
			}
		}
	}
}

// TestWCOJCancellation: a cancelled context aborts the enumeration with
// the context's error.
func TestWCOJCancellation(t *testing.T) {
	g := randomGraph(27, 120, 400, 3)
	db := mustDB(t, g)
	_, conds := triangle(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WCOJ(ctx, db, conds, []int{0, 1, 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestWCOJPlanErrors: malformed variable orders are rejected up front.
func TestWCOJPlanErrors(t *testing.T) {
	g := randomGraph(28, 40, 100, 3)
	db := mustDB(t, g)
	ctx := context.Background()
	_, conds := triangle(g)
	cases := []struct {
		name  string
		order []int
	}{
		{"duplicate", []int{0, 1, 1}},
		{"uncovered endpoint", []int{0, 1}},
		{"unknown node", []int{0, 1, 3}},
	}
	for _, tc := range cases {
		if _, err := WCOJ(ctx, db, conds, tc.order); err == nil {
			t.Errorf("%s: order %v accepted", tc.name, tc.order)
		}
	}
	// Orders that bind a node before any adjacent one are still valid —
	// the node's level seeds from its conditions' distinct projections.
	// A→B; B→C with order {0,2,1} runs C off π_C(B⇝C) and must still
	// match the brute-force result.
	path := []Cond{cond(g, "A", "B", 0, 1), cond(g, "B", "C", 1, 2)}
	got, err := WCOJ(ctx, db, path, []int{0, 2, 1})
	if err != nil {
		t.Fatalf("projection-seeded order rejected: %v", err)
	}
	labels := []graph.Label{g.Labels().Lookup("A"), g.Labels().Lookup("B"), g.Labels().Lookup("C")}
	want := naiveMultiway(g, labels, path)
	norm := NewTable(0, 1, 2)
	for _, row := range got.Rows {
		nr := make([]graph.NodeID, len(row))
		for i, col := range got.Cols {
			nr[col] = row[i]
		}
		norm.Rows = append(norm.Rows, nr)
	}
	norm.SortRows()
	if !reflect.DeepEqual(norm.Rows, want) {
		t.Fatalf("projection-seeded order: %d rows != naive %d", norm.Len(), len(want))
	}
}

// TestWCOJCounters: the runtime's seek/next counters advance.
func TestWCOJCounters(t *testing.T) {
	g := randomGraph(25, 80, 220, 3)
	db := mustDB(t, g)
	_, conds := triangle(g)
	rt := NewRuntime(1)
	res, err := rt.WCOJ(context.Background(), db, conds, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Seeks <= 0 || st.IterNexts <= 0 {
		t.Fatalf("counters did not advance: seeks=%d nexts=%d", st.Seeks, st.IterNexts)
	}
	if st.IterNexts < int64(res.Len()) {
		t.Fatalf("IterNexts=%d below result rows %d", st.IterNexts, res.Len())
	}
}
