package rjoin

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestBudgetNilSafety: every method is a no-op / pass on a nil *Budget, so
// unbudgeted operator paths need no guards.
func TestBudgetNilSafety(t *testing.T) {
	var b *Budget
	b.AddBytes(1 << 30)
	if err := b.ChargeBytes(1 << 30); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckBytes(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckRows(1 << 30); err != nil {
		t.Fatal(err)
	}
	b.NoteRows(7)
	b.MarkTruncated()
	if b.Truncated() || b.Bytes() != 0 || b.PeakRows() != 0 {
		t.Fatalf("nil budget reported state: truncated=%v bytes=%d peak=%d",
			b.Truncated(), b.Bytes(), b.PeakRows())
	}
}

func TestBudgetChecks(t *testing.T) {
	b := &Budget{MaxTableRows: 10, MaxBytes: 100}
	if err := b.CheckRows(10); err != nil {
		t.Fatalf("at the row cap: %v", err)
	}
	if err := b.CheckRows(11); !errors.Is(err, ErrRowLimit) {
		t.Fatalf("over the row cap: got %v, want ErrRowLimit", err)
	}
	b.AddBytes(100)
	if err := b.CheckBytes(); err != nil {
		t.Fatalf("at the byte cap: %v", err)
	}
	if err := b.ChargeBytes(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over the byte cap: got %v, want ErrBudgetExceeded", err)
	}
	if b.Bytes() != 101 {
		t.Fatalf("Bytes() = %d, want 101", b.Bytes())
	}
	b.NoteRows(3)
	b.NoteRows(9)
	b.NoteRows(4)
	if b.PeakRows() != 9 {
		t.Fatalf("PeakRows() = %d, want 9", b.PeakRows())
	}
	if b.Truncated() {
		t.Fatal("Truncated() before MarkTruncated")
	}
	b.MarkTruncated()
	if !b.Truncated() {
		t.Fatal("Truncated() after MarkTruncated")
	}
}

// TestOperatorBudgetKill: each operator dies with the typed error once its
// output exceeds the budget, at serial and parallel degrees.
func TestOperatorBudgetKill(t *testing.T) {
	g := randomGraph(11, 60, 150, 3)
	db := mustDB(t, g)
	ctx := context.Background()
	c := cond(g, "A", "B", 0, 1)

	full, err := HPSJ(ctx, db, c)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 4 {
		t.Fatalf("graph too sparse for the test: %d join rows", full.Len())
	}

	for _, workers := range []int{1, 4} {
		t.Run("rows", func(t *testing.T) {
			rt := NewRuntime(workers)
			rt.SetBudget(&Budget{MaxTableRows: full.Len() - 1})
			if _, err := rt.HPSJ(ctx, db, c); !errors.Is(err, ErrRowLimit) {
				t.Fatalf("workers=%d: got %v, want ErrRowLimit", workers, err)
			}
		})
		t.Run("bytes", func(t *testing.T) {
			rt := NewRuntime(workers)
			rt.SetBudget(&Budget{MaxBytes: 16})
			if _, err := rt.HPSJ(ctx, db, c); !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("workers=%d: got %v, want ErrBudgetExceeded", workers, err)
			}
		})
		t.Run("fetch-rows", func(t *testing.T) {
			rt := NewRuntime(workers)
			rt.SetBudget(&Budget{MaxTableRows: full.Len() - 1})
			in := extentOf(g, c.FromLabel, 0, 1)
			if _, err := rt.Fetch(ctx, db, in, c); !errors.Is(err, ErrRowLimit) {
				t.Fatalf("workers=%d: got %v, want ErrRowLimit", workers, err)
			}
		})
	}

	// A budget the query fits inside leaves the result untouched and
	// accumulates accounting.
	rt := NewRuntime(2)
	b := &Budget{MaxTableRows: full.Len() + 10, MaxBytes: 1 << 30}
	rt.SetBudget(b)
	got, err := rt.HPSJ(ctx, db, c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != full.Len() {
		t.Fatalf("budgeted rows %d != unbudgeted %d", got.Len(), full.Len())
	}
	if b.Bytes() <= 0 || b.PeakRows() != int64(full.Len()) {
		t.Fatalf("accounting: bytes=%d peak=%d (want >0, %d)", b.Bytes(), b.PeakRows(), full.Len())
	}
	if b.Truncated() {
		t.Fatal("Truncated set without a row limit")
	}
}

// TestLimitPushdownPrefix: with a pushed-down result limit each operator
// returns exactly the first n rows of its unlimited output — identical at
// every worker degree — and marks the budget truncated.
func TestLimitPushdownPrefix(t *testing.T) {
	g := randomGraph(12, 60, 150, 3)
	db := mustDB(t, g)
	ctx := context.Background()
	c := cond(g, "A", "B", 0, 1)

	full, err := HPSJ(ctx, db, c)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 5 {
		t.Fatalf("graph too sparse for the test: %d join rows", full.Len())
	}
	in := extentOf(g, c.FromLabel, 0, 1)
	fullFetch, err := Fetch(ctx, db, in, c)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 7} {
		for _, n := range []int{1, 2, full.Len() - 1, full.Len(), full.Len() + 5} {
			rt := NewRuntime(workers)
			b := &Budget{ResultRows: n}
			rt.SetBudget(b)
			rt.PushLimit(n)
			got, err := rt.HPSJ(ctx, db, c)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := min(n, full.Len())
			if got.Len() != wantLen {
				t.Fatalf("workers=%d limit=%d: %d rows, want %d", workers, n, got.Len(), wantLen)
			}
			if !reflect.DeepEqual(got.Rows, full.Rows[:wantLen]) {
				t.Fatalf("workers=%d limit=%d: rows are not the unlimited prefix", workers, n)
			}
			if wantTrunc := n < full.Len(); b.Truncated() != wantTrunc {
				t.Fatalf("workers=%d limit=%d: Truncated=%v, want %v", workers, n, b.Truncated(), wantTrunc)
			}
		}

		// Fetch: same prefix property over its row-range partitioning.
		for _, n := range []int{1, 3, fullFetch.Len()} {
			rt := NewRuntime(workers)
			b := &Budget{ResultRows: n}
			rt.SetBudget(b)
			rt.PushLimit(n)
			got, err := rt.Fetch(ctx, db, in, c)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := min(n, fullFetch.Len())
			if got.Len() != wantLen || !reflect.DeepEqual(got.Rows, fullFetch.Rows[:wantLen]) {
				t.Fatalf("Fetch workers=%d limit=%d: not the unlimited prefix (%d rows, want %d)",
					workers, n, got.Len(), wantLen)
			}
		}
	}
}
