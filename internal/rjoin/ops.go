package rjoin

import (
	"context"
	"fmt"
	"slices"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// cancelStride is how many work units (rows emitted or scanned) an operator
// processes between context polls: frequent enough that queries abandon
// work promptly on deadline or cancellation, rare enough to stay off the
// per-row hot path.
const cancelStride = 1024

// cancelCheck polls its context — and, when the query is budgeted, the
// byte budget — every cancelStride work units, counting down instead of
// taking a modulo so the per-tick cost is one decrement.
type cancelCheck struct {
	ctx  context.Context
	b    *Budget
	left int
}

func newCancelCheck(ctx context.Context) cancelCheck {
	return cancelCheck{ctx: ctx, left: cancelStride}
}

// check is newCancelCheck carrying the runtime's budget, so a partition
// that blows the byte budget fails at its next poll and cancels its
// siblings through runParts' shared sub-context.
func (rt *Runtime) check(ctx context.Context) cancelCheck {
	return cancelCheck{ctx: ctx, b: rt.budget, left: cancelStride}
}

func (c *cancelCheck) tick() error { return c.tickN(1) }

// tickN charges n work units at once (e.g. a whole center's Cartesian
// product, or a row plus everything it emitted), polling the context at
// most once per stride.
func (c *cancelCheck) tickN(n int) error {
	c.left -= n
	if c.left > 0 {
		return nil
	}
	c.left = cancelStride
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.b.CheckBytes()
}

// Package-level operator functions are the serial reference path: they run
// single-threaded with no per-query state, exactly reproducing what a
// Runtime with one worker computes. Parallel execution goes through
// Runtime's methods of the same names.

// HPSJ processes an R-join between two base tables (Algorithm 1). See
// Runtime.HPSJ.
func HPSJ(ctx context.Context, db *gdb.Snap, c Cond) (*Table, error) {
	return serial().HPSJ(ctx, db, c)
}

// Filter is the R-semijoin (Algorithm 2, Filter). See Runtime.Filter.
func Filter(ctx context.Context, db *gdb.Snap, t *Table, c Cond) (*Table, error) {
	return serial().Filter(ctx, db, t, c)
}

// FilterMulti evaluates several R-semijoins in one scan of t (Remark 3.1).
// See Runtime.FilterMulti.
func FilterMulti(ctx context.Context, db *gdb.Snap, t *Table, conds []Cond) (*Table, error) {
	return serial().FilterMulti(ctx, db, t, conds)
}

// FilterGroup applies a group of R-semijoins sharing one bound column and
// code side. See Runtime.FilterGroup.
func FilterGroup(ctx context.Context, db *gdb.Snap, t *Table, conds []Cond, node int, outSide bool) (*Table, error) {
	return serial().FilterGroup(ctx, db, t, conds, node, outSide)
}

// Fetch completes an HPSJ+ R-join (Algorithm 2, Fetch). See Runtime.Fetch.
func Fetch(ctx context.Context, db *gdb.Snap, t *Table, c Cond) (*Table, error) {
	return serial().Fetch(ctx, db, t, c)
}

// Selection processes a self R-join (Eq. 5). See Runtime.Selection.
func Selection(ctx context.Context, db *gdb.Snap, t *Table, c Cond) (*Table, error) {
	return serial().Selection(ctx, db, t, c)
}

// HPSJ processes an R-join between two base tables (Algorithm 1): for every
// center w ∈ W(X, Y) it emits getF(w, X) × getT(w, Y). Pairs covered by
// several centers are deduplicated by sorting the packed pair keys, so the
// result is ordered by (from, to) — a deterministic order identical across
// worker degrees. Base tables are never touched — the answer comes entirely
// from the W-table and the cluster-based index. The center list is
// partitioned across the runtime's workers; each partition sorts and
// deduplicates locally and the sorted runs merge in partition order.
func (rt *Runtime) HPSJ(ctx context.Context, db *gdb.Snap, c Cond) (*Table, error) {
	out := rt.newTable(c.FromNode, c.ToNode)
	ws, err := db.Centers(c.FromLabel, c.ToLabel)
	if err != nil {
		return nil, err
	}
	parts := rt.split(len(ws), centerGrain)
	bufs := make([][]uint64, parts)
	err = rt.runParts(ctx, len(ws), parts, func(ctx context.Context, part, lo, hi int) error {
		cc := rt.check(ctx)
		var pairs []uint64
		for _, w := range ws[lo:hi] {
			xs, err := rt.getF(db, w, c.FromLabel)
			if err != nil {
				return err
			}
			if len(xs) == 0 {
				continue
			}
			ys, err := rt.getT(db, w, c.ToLabel)
			if err != nil {
				return err
			}
			// Pre-flight the center's cross product against the budget:
			// a blow-up fails here, before the pairs are materialised,
			// and cancels the sibling partitions.
			if err := rt.budget.ChargeBytes(int64(len(xs)) * int64(len(ys)) * 8); err != nil {
				return err
			}
			if err := rt.budget.CheckRows(len(pairs) + len(xs)*len(ys)); err != nil {
				return err
			}
			if err := cc.tickN(len(xs) * len(ys)); err != nil {
				return err
			}
			for _, x := range xs {
				for _, y := range ys {
					pairs = append(pairs, pairKey(x, y))
				}
			}
		}
		slices.Sort(pairs)
		bufs[part] = slices.Compact(pairs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := mergeUniqueU64(bufs)
	// The merge is globally sorted and duplicate-free, so under a pushed-
	// down limit the prefix is already the final answer's prefix — rows
	// beyond it are never built.
	if rt.rowTarget > 0 && len(merged) > rt.rowTarget {
		merged = merged[:rt.rowTarget]
		rt.budget.MarkTruncated()
	}
	for _, k := range merged {
		row := out.NewRow()
		row[0], row[1] = pairNodes(k)
		out.Rows = append(out.Rows, row)
	}
	return rt.finishOp(out)
}

// boundSide resolves which side of cond is bound in t. Exactly one side
// must be bound (use Selection when both are).
func boundSide(t *Table, c Cond) (boundNode int, forward bool, err error) {
	hasFrom, hasTo := t.HasCol(c.FromNode), t.HasCol(c.ToNode)
	switch {
	case hasFrom && hasTo:
		return 0, false, fmt.Errorf("rjoin: condition %v has both sides bound in %v (use Selection)", c, t.Cols)
	case hasFrom:
		return c.FromNode, true, nil
	case hasTo:
		return c.ToNode, false, nil
	default:
		return 0, false, fmt.Errorf("rjoin: condition %v has no side bound in %v", c, t.Cols)
	}
}

// centersFor computes getCenters for one bound value: out(x) ∩ W(X, Y) in
// the forward direction, in(y) ∩ W(X, Y) in the reverse direction.
func centersFor(db *gdb.Snap, v graph.NodeID, ws []graph.NodeID, forward bool) ([]graph.NodeID, error) {
	var code []graph.NodeID
	var err error
	if forward {
		code, err = db.OutCode(v)
	} else {
		code, err = db.InCode(v)
	}
	if err != nil {
		return nil, err
	}
	return gdb.Intersect(code, ws), nil
}

// Filter is the R-semijoin (Algorithm 2, Filter; Eq. 7/8): it keeps the
// rows of t whose bound value can join some node of the other side's base
// table, determined from the W-table and graph codes alone.
func (rt *Runtime) Filter(ctx context.Context, db *gdb.Snap, t *Table, c Cond) (*Table, error) {
	return rt.FilterMulti(ctx, db, t, []Cond{c})
}

// FilterMulti evaluates several R-semijoins in one scan of t (Remark 3.1).
// All conditions must bind the same temporal column or, more generally,
// columns already present in t; a row survives only if every condition's
// center set is non-empty. Graph codes are fetched once per (row, column)
// through the database's working cache, sharing the dominant cost; computed
// center sets go through the per-query center cache, so a later Fetch on
// the same condition reuses them. The row range is partitioned across the
// runtime's workers; partitions keep input order, so concatenating them in
// partition order reproduces the serial output.
func (rt *Runtime) FilterMulti(ctx context.Context, db *gdb.Snap, t *Table, conds []Cond) (*Table, error) {
	if len(conds) == 0 {
		return t, nil
	}
	type plan struct {
		cond    Cond
		col     int
		forward bool
		ws      []graph.NodeID
	}
	plans := make([]plan, len(conds))
	for i, c := range conds {
		boundNode, forward, err := boundSide(t, c)
		if err != nil {
			return nil, err
		}
		ws, err := db.Centers(c.FromLabel, c.ToLabel)
		if err != nil {
			return nil, err
		}
		plans[i] = plan{cond: c, col: t.ColIndex(boundNode), forward: forward, ws: ws}
	}
	parts := rt.split(len(t.Rows), rowGrain)
	kept := make([][][]graph.NodeID, parts)
	limit := rt.rowTarget
	err := rt.runParts(ctx, len(t.Rows), parts, func(ctx context.Context, part, lo, hi int) error {
		cc := rt.check(ctx)
		var rows [][]graph.NodeID
		for _, row := range t.Rows[lo:hi] {
			if err := cc.tick(); err != nil {
				return err
			}
			keep := true
			for _, p := range plans {
				if len(p.ws) == 0 {
					keep = false
					break
				}
				cs, err := rt.centersFor(db, row[p.col], p.ws, p.cond, p.forward)
				if err != nil {
					return err
				}
				if len(cs) == 0 {
					keep = false
					break
				}
			}
			if keep {
				rows = append(rows, row)
				// Pushed-down limit: limit+1 rows prove truncation, and
				// each partition either completes its range or alone
				// covers the whole limit — so the merged prefix equals
				// the serial prefix at every worker degree.
				if limit > 0 && len(rows) > limit {
					break
				}
			}
		}
		kept[part] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Cols...)
	out.Rows = concatRows(kept)
	return rt.finishOp(out)
}

// FilterGroup applies a group of R-semijoins that all read the same code
// side of the same bound column (Remark 3.1): node is the bound pattern
// node and outSide selects out-codes (conditions node→Y) versus in-codes
// (conditions X→node). Unlike FilterMulti it does not infer the bound side,
// so it also accepts conditions whose other endpoint is already bound — the
// semijoin then still prunes soundly against the other side's base table,
// with the residual condition left to a later Selection. Rows partition
// across the runtime's workers in input order.
func (rt *Runtime) FilterGroup(ctx context.Context, db *gdb.Snap, t *Table, conds []Cond, node int, outSide bool) (*Table, error) {
	if len(conds) == 0 {
		return t, nil
	}
	col := t.ColIndex(node)
	if col < 0 {
		return nil, fmt.Errorf("rjoin: filter group on unbound node %d in %v", node, t.Cols)
	}
	wss := make([][]graph.NodeID, len(conds))
	for i, c := range conds {
		if outSide && c.FromNode != node || !outSide && c.ToNode != node {
			return nil, fmt.Errorf("rjoin: condition %v not incident on node %d's %s side", c, node, side(outSide))
		}
		ws, err := db.Centers(c.FromLabel, c.ToLabel)
		if err != nil {
			return nil, err
		}
		if len(ws) == 0 {
			// Some condition can never be satisfied: the group empties t.
			return NewTable(t.Cols...), nil
		}
		wss[i] = ws
	}
	// Fast path: the per-row code test out(v) ∩ W(X, Y) ≠ ∅ is, for a
	// v carrying the condition's bound-side label, exactly membership in
	// the memoized distinct projection π_X(T_X ⋈ T_Y) — the cluster index
	// defines F(w) = {u : w ∈ out(u)}, so some center of W lies in out(v)
	// iff v is in some X-labeled F-subcluster over W (dually for in-codes
	// and π_Y). Bound columns only ever hold values of their pattern
	// node's label, so the semijoin group reduces to sorted-list searches
	// against per-epoch memos: no per-row code fetch at all. Kept rows,
	// their order, ticks, and limit handling are identical.
	var projs [][]graph.NodeID
	if rt.fast {
		projs = make([][]graph.NodeID, len(conds))
		for i, c := range conds {
			var p []graph.NodeID
			var err error
			if outSide {
				p, err = db.ProjectFrom(c.FromLabel, c.ToLabel)
			} else {
				p, err = db.ProjectTo(c.FromLabel, c.ToLabel)
			}
			if err != nil {
				return nil, err
			}
			projs[i] = p
		}
	}
	parts := rt.split(len(t.Rows), rowGrain)
	kept := make([][][]graph.NodeID, parts)
	limit := rt.rowTarget
	err := rt.runParts(ctx, len(t.Rows), parts, func(ctx context.Context, part, lo, hi int) error {
		cc := rt.check(ctx)
		var rows [][]graph.NodeID
		for _, row := range t.Rows[lo:hi] {
			if err := cc.tick(); err != nil {
				return err
			}
			keep := true
			if rt.fast {
				for _, p := range projs {
					if !gdb.Contains(p, row[col]) {
						keep = false
						break
					}
				}
			} else {
				var code []graph.NodeID
				var err error
				if outSide {
					code, err = db.OutCode(row[col])
				} else {
					code, err = db.InCode(row[col])
				}
				if err != nil {
					return err
				}
				for _, ws := range wss {
					if !gdb.IntersectNonEmpty(code, ws) {
						keep = false
						break
					}
				}
			}
			if keep {
				rows = append(rows, row)
				if limit > 0 && len(rows) > limit {
					break
				}
			}
		}
		kept[part] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Cols...)
	out.Rows = concatRows(kept)
	return rt.finishOp(out)
}

func side(out bool) string {
	if out {
		return "out"
	}
	return "in"
}

// Fetch completes an HPSJ+ R-join (Algorithm 2, Fetch): for each row of t
// it computes the row's center set (served by the per-query cache when
// Filter already computed it) and expands the row with every matching node
// from the centers' T-subclusters (forward) or F-subclusters (reverse). The
// new pattern-node column is appended; each row's expansion nodes are
// emitted in ascending order (the sorted-set union of the subcluster
// lists), giving a deterministic order identical across worker degrees.
// Rows whose center set is empty produce nothing, so Fetch subsumes Filter;
// running Filter first simply prunes earlier. The row range partitions
// across the runtime's workers; output rows are drawn from per-partition
// arenas and concatenated in partition order.
func (rt *Runtime) Fetch(ctx context.Context, db *gdb.Snap, t *Table, c Cond) (*Table, error) {
	boundNode, forward, err := boundSide(t, c)
	if err != nil {
		return nil, err
	}
	newNode := c.ToNode
	fetchLabel := c.ToLabel
	if !forward {
		newNode = c.FromNode
		fetchLabel = c.FromLabel
	}
	ws, err := db.Centers(c.FromLabel, c.ToLabel)
	if err != nil {
		return nil, err
	}
	col := t.ColIndex(boundNode)
	cols := append(append([]int(nil), t.Cols...), newNode)

	// Per-row expansion, as in Algorithm 2's Fetch loop: the row's
	// subclusters are fetched from the R-join index through the buffer
	// pool. Repeated accesses for popular centers are served — and counted
	// — by the pool, matching the paper's per-row cost accounting.
	parts := rt.split(len(t.Rows), rowGrain)
	outs := make([]*Table, parts)
	limit := rt.rowTarget
	err = rt.runParts(ctx, len(t.Rows), parts, func(ctx context.Context, part, lo, hi int) error {
		cc := rt.check(ctx)
		out := rt.newTable(cols...)
		// targets/scratch are the partition's reusable union buffers: the
		// row under expansion never keeps a reference into them (NewRow
		// copies), so they recycle across rows.
		var targets, scratch []graph.NodeID
		for _, row := range t.Rows[lo:hi] {
			v := row[col]
			cs, err := rt.centersFor(db, v, ws, c, forward)
			if err != nil {
				return err
			}
			targets = targets[:0]
			for _, w := range cs {
				var nodes []graph.NodeID
				if forward {
					nodes, err = rt.getT(db, w, fetchLabel)
				} else {
					nodes, err = rt.getF(db, w, fetchLabel)
				}
				if err != nil {
					return err
				}
				if len(nodes) == 0 {
					continue
				}
				if len(targets) == 0 {
					targets = append(targets, nodes...)
					continue
				}
				scratch = mergeUnion(scratch, targets, nodes)
				targets, scratch = scratch, targets
			}
			// One cancellation charge per row unit: the scan itself plus
			// every row it emitted (the old code ticked the center loop and
			// the emit loop separately, double-counting each output row).
			if err := cc.tickN(1 + len(targets)); err != nil {
				return err
			}
			for _, n := range targets {
				nr := out.NewRow()
				copy(nr, row)
				nr[len(row)] = n
				out.Rows = append(out.Rows, nr)
			}
			if err := rt.budget.CheckRows(len(out.Rows)); err != nil {
				return err
			}
			// Pushed-down limit: stop after limit+1 rows (whole-row
			// expansions keep the output a prefix of this range's serial
			// output, so the merged prefix is degree-independent).
			if limit > 0 && len(out.Rows) > limit {
				break
			}
		}
		outs[part] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := NewTable(cols...)
	for _, p := range outs {
		out.Rows = append(out.Rows, p.Rows...)
	}
	return rt.finishOp(out)
}

// Selection processes a self R-join (Eq. 5): both pattern nodes of the
// condition are already bound in t, so the condition reduces to checking
// out(x) ∩ in(y) ≠ ∅ per row from graph codes. Rows partition across the
// runtime's workers in input order.
func (rt *Runtime) Selection(ctx context.Context, db *gdb.Snap, t *Table, c Cond) (*Table, error) {
	fi, ti := t.ColIndex(c.FromNode), t.ColIndex(c.ToNode)
	if fi < 0 || ti < 0 {
		return nil, fmt.Errorf("rjoin: selection %v needs both sides bound in %v", c, t.Cols)
	}
	parts := rt.split(len(t.Rows), rowGrain)
	kept := make([][][]graph.NodeID, parts)
	limit := rt.rowTarget
	err := rt.runParts(ctx, len(t.Rows), parts, func(ctx context.Context, part, lo, hi int) error {
		cc := rt.check(ctx)
		var rows [][]graph.NodeID
		for _, row := range t.Rows[lo:hi] {
			if err := cc.tick(); err != nil {
				return err
			}
			ok, err := db.Reaches(row[fi], row[ti])
			if err != nil {
				return err
			}
			if ok {
				rows = append(rows, row)
				if limit > 0 && len(rows) > limit {
					break
				}
			}
		}
		kept[part] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Cols...)
	out.Rows = concatRows(kept)
	return rt.finishOp(out)
}

// concatRows flattens per-partition row buffers in partition order,
// reusing the first non-empty buffer as the base to avoid a copy in the
// single-partition case.
func concatRows(parts [][][]graph.NodeID) [][]graph.NodeID {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	rows := make([][]graph.NodeID, 0, total)
	for _, p := range parts {
		rows = append(rows, p...)
	}
	return rows
}

// NestedLoopJoin is the reference R-join used by tests and as a measurable
// worst-case baseline: it checks reachability via graph codes for every
// pair of extents, bypassing the cluster index.
func NestedLoopJoin(ctx context.Context, db *gdb.Snap, c Cond) (*Table, error) {
	g := db.Graph()
	cc := newCancelCheck(ctx)
	out := NewTable(c.FromNode, c.ToNode)
	for _, x := range g.Extent(c.FromLabel) {
		for _, y := range g.Extent(c.ToLabel) {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			ok, err := db.Reaches(x, y)
			if err != nil {
				return nil, err
			}
			if ok {
				row := out.NewRow()
				row[0], row[1] = x, y
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}
