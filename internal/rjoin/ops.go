package rjoin

import (
	"context"
	"fmt"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// cancelStride is how many rows an operator processes between context
// polls: frequent enough that queries abandon work promptly on deadline or
// cancellation, rare enough to stay off the per-row hot path.
const cancelStride = 1024

// cancelCheck polls its context every cancelStride ticks.
type cancelCheck struct {
	ctx context.Context
	n   int
}

func (c *cancelCheck) tick() error {
	c.n++
	if c.n%cancelStride == 0 {
		return c.ctx.Err()
	}
	return nil
}

// HPSJ processes an R-join between two base tables (Algorithm 1): for every
// center w ∈ W(X, Y) it emits getF(w, X) × getT(w, Y). Pairs covered by
// several centers are deduplicated. Base tables are never touched — the
// answer comes entirely from the W-table and the cluster-based index.
func HPSJ(ctx context.Context, db *gdb.DB, c Cond) (*Table, error) {
	out := NewTable(c.FromNode, c.ToNode)
	ws, err := db.Centers(c.FromLabel, c.ToLabel)
	if err != nil {
		return nil, err
	}
	cc := cancelCheck{ctx: ctx}
	seen := make(map[[2]graph.NodeID]struct{})
	for _, w := range ws {
		xs, err := db.GetF(w, c.FromLabel)
		if err != nil {
			return nil, err
		}
		if len(xs) == 0 {
			continue
		}
		ys, err := db.GetT(w, c.ToLabel)
		if err != nil {
			return nil, err
		}
		for _, x := range xs {
			for _, y := range ys {
				if err := cc.tick(); err != nil {
					return nil, err
				}
				p := [2]graph.NodeID{x, y}
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				out.Rows = append(out.Rows, []graph.NodeID{x, y})
			}
		}
	}
	return out, nil
}

// boundSide resolves which side of cond is bound in t. Exactly one side
// must be bound (use Selection when both are).
func boundSide(t *Table, c Cond) (boundNode int, forward bool, err error) {
	hasFrom, hasTo := t.HasCol(c.FromNode), t.HasCol(c.ToNode)
	switch {
	case hasFrom && hasTo:
		return 0, false, fmt.Errorf("rjoin: condition %v has both sides bound in %v (use Selection)", c, t.Cols)
	case hasFrom:
		return c.FromNode, true, nil
	case hasTo:
		return c.ToNode, false, nil
	default:
		return 0, false, fmt.Errorf("rjoin: condition %v has no side bound in %v", c, t.Cols)
	}
}

// centersFor computes getCenters for one bound value: out(x) ∩ W(X, Y) in
// the forward direction, in(y) ∩ W(X, Y) in the reverse direction.
func centersFor(db *gdb.DB, v graph.NodeID, ws []graph.NodeID, forward bool) ([]graph.NodeID, error) {
	var code []graph.NodeID
	var err error
	if forward {
		code, err = db.OutCode(v)
	} else {
		code, err = db.InCode(v)
	}
	if err != nil {
		return nil, err
	}
	return gdb.Intersect(code, ws), nil
}

// Filter is the R-semijoin (Algorithm 2, Filter; Eq. 7/8): it keeps the
// rows of t whose bound value can join some node of the other side's base
// table, determined from the W-table and graph codes alone.
func Filter(ctx context.Context, db *gdb.DB, t *Table, c Cond) (*Table, error) {
	return FilterMulti(ctx, db, t, []Cond{c})
}

// FilterMulti evaluates several R-semijoins in one scan of t (Remark 3.1).
// All conditions must bind the same temporal column or, more generally,
// columns already present in t; a row survives only if every condition's
// center set is non-empty. Graph codes are fetched once per (row, column)
// through the database's working cache, sharing the dominant cost.
func FilterMulti(ctx context.Context, db *gdb.DB, t *Table, conds []Cond) (*Table, error) {
	if len(conds) == 0 {
		return t, nil
	}
	type plan struct {
		col     int
		forward bool
		ws      []graph.NodeID
	}
	plans := make([]plan, len(conds))
	for i, c := range conds {
		boundNode, forward, err := boundSide(t, c)
		if err != nil {
			return nil, err
		}
		ws, err := db.Centers(c.FromLabel, c.ToLabel)
		if err != nil {
			return nil, err
		}
		plans[i] = plan{col: t.ColIndex(boundNode), forward: forward, ws: ws}
	}
	cc := cancelCheck{ctx: ctx}
	out := NewTable(t.Cols...)
	for _, row := range t.Rows {
		if err := cc.tick(); err != nil {
			return nil, err
		}
		keep := true
		for _, p := range plans {
			if len(p.ws) == 0 {
				keep = false
				break
			}
			cs, err := centersFor(db, row[p.col], p.ws, p.forward)
			if err != nil {
				return nil, err
			}
			if len(cs) == 0 {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// FilterGroup applies a group of R-semijoins that all read the same code
// side of the same bound column (Remark 3.1): node is the bound pattern
// node and outSide selects out-codes (conditions node→Y) versus in-codes
// (conditions X→node). Unlike FilterMulti it does not infer the bound side,
// so it also accepts conditions whose other endpoint is already bound — the
// semijoin then still prunes soundly against the other side's base table,
// with the residual condition left to a later Selection.
func FilterGroup(ctx context.Context, db *gdb.DB, t *Table, conds []Cond, node int, outSide bool) (*Table, error) {
	if len(conds) == 0 {
		return t, nil
	}
	col := t.ColIndex(node)
	if col < 0 {
		return nil, fmt.Errorf("rjoin: filter group on unbound node %d in %v", node, t.Cols)
	}
	wss := make([][]graph.NodeID, len(conds))
	for i, c := range conds {
		if outSide && c.FromNode != node || !outSide && c.ToNode != node {
			return nil, fmt.Errorf("rjoin: condition %v not incident on node %d's %s side", c, node, side(outSide))
		}
		ws, err := db.Centers(c.FromLabel, c.ToLabel)
		if err != nil {
			return nil, err
		}
		if len(ws) == 0 {
			// Some condition can never be satisfied: the group empties t.
			return NewTable(t.Cols...), nil
		}
		wss[i] = ws
	}
	cc := cancelCheck{ctx: ctx}
	out := NewTable(t.Cols...)
	for _, row := range t.Rows {
		if err := cc.tick(); err != nil {
			return nil, err
		}
		var code []graph.NodeID
		var err error
		if outSide {
			code, err = db.OutCode(row[col])
		} else {
			code, err = db.InCode(row[col])
		}
		if err != nil {
			return nil, err
		}
		keep := true
		for _, ws := range wss {
			if !gdb.IntersectNonEmpty(code, ws) {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func side(out bool) string {
	if out {
		return "out"
	}
	return "in"
}

// Fetch completes an HPSJ+ R-join (Algorithm 2, Fetch): for each row of t
// it recomputes the row's center set (cheap after Filter primed the code
// cache) and expands the row with every matching node from the centers'
// T-subclusters (forward) or F-subclusters (reverse). The new pattern-node
// column is appended. Rows whose center set is empty produce nothing, so
// Fetch subsumes Filter; running Filter first simply prunes earlier.
func Fetch(ctx context.Context, db *gdb.DB, t *Table, c Cond) (*Table, error) {
	boundNode, forward, err := boundSide(t, c)
	if err != nil {
		return nil, err
	}
	newNode := c.ToNode
	fetchLabel := c.ToLabel
	if !forward {
		newNode = c.FromNode
		fetchLabel = c.FromLabel
	}
	ws, err := db.Centers(c.FromLabel, c.ToLabel)
	if err != nil {
		return nil, err
	}
	col := t.ColIndex(boundNode)
	out := NewTable(append(append([]int(nil), t.Cols...), newNode)...)

	// Per-row expansion, as in Algorithm 2's Fetch loop: each row's center
	// set is recomputed (cheap when Filter primed the code cache) and its
	// subclusters are fetched from the R-join index through the buffer
	// pool. Repeated accesses for popular centers are served — and counted
	// — by the pool, matching the paper's per-row cost accounting.
	cc := cancelCheck{ctx: ctx}
	seen := make(map[graph.NodeID]struct{})
	for _, row := range t.Rows {
		if err := cc.tick(); err != nil {
			return nil, err
		}
		v := row[col]
		cs, err := centersFor(db, v, ws, forward)
		if err != nil {
			return nil, err
		}
		var targets []graph.NodeID
		for k := range seen {
			delete(seen, k)
		}
		for _, w := range cs {
			var nodes []graph.NodeID
			if forward {
				nodes, err = db.GetT(w, fetchLabel)
			} else {
				nodes, err = db.GetF(w, fetchLabel)
			}
			if err != nil {
				return nil, err
			}
			for _, n := range nodes {
				if _, dup := seen[n]; !dup {
					seen[n] = struct{}{}
					targets = append(targets, n)
				}
			}
		}
		for _, n := range targets {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			nr := make([]graph.NodeID, len(row)+1)
			copy(nr, row)
			nr[len(row)] = n
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// Selection processes a self R-join (Eq. 5): both pattern nodes of the
// condition are already bound in t, so the condition reduces to checking
// out(x) ∩ in(y) ≠ ∅ per row from graph codes.
func Selection(ctx context.Context, db *gdb.DB, t *Table, c Cond) (*Table, error) {
	fi, ti := t.ColIndex(c.FromNode), t.ColIndex(c.ToNode)
	if fi < 0 || ti < 0 {
		return nil, fmt.Errorf("rjoin: selection %v needs both sides bound in %v", c, t.Cols)
	}
	cc := cancelCheck{ctx: ctx}
	out := NewTable(t.Cols...)
	for _, row := range t.Rows {
		if err := cc.tick(); err != nil {
			return nil, err
		}
		ok, err := db.Reaches(row[fi], row[ti])
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// NestedLoopJoin is the reference R-join used by tests and as a measurable
// worst-case baseline: it checks reachability via graph codes for every
// pair of extents, bypassing the cluster index.
func NestedLoopJoin(ctx context.Context, db *gdb.DB, c Cond) (*Table, error) {
	g := db.Graph()
	cc := cancelCheck{ctx: ctx}
	out := NewTable(c.FromNode, c.ToNode)
	for _, x := range g.Extent(c.FromLabel) {
		for _, y := range g.Extent(c.ToLabel) {
			if err := cc.tick(); err != nil {
				return nil, err
			}
			ok, err := db.Reaches(x, y)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, []graph.NodeID{x, y})
			}
		}
	}
	return out, nil
}
