package rjoin

import (
	"reflect"
	"testing"

	"fastmatch/internal/graph"
)

func TestEncodeDecodeRowsRoundTrip(t *testing.T) {
	tbl := NewTable(2, 0, 5)
	tbl.Rows = [][]graph.NodeID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	enc := tbl.EncodeRows()
	out := NewTable(2, 0, 5)
	if err := out.DecodeRows(enc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Rows, tbl.Rows) {
		t.Fatalf("round trip changed rows: %v", out.Rows)
	}
	// Empty table round-trips too.
	empty := NewTable(1)
	if err := empty.DecodeRows(empty.EncodeRows()); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatal("empty table grew")
	}
}

func TestDecodeRowsErrors(t *testing.T) {
	tbl := NewTable(0, 1)
	tbl.Rows = [][]graph.NodeID{{1, 2}}
	enc := tbl.EncodeRows()

	wrongWidth := NewTable(0)
	if err := wrongWidth.DecodeRows(enc); err == nil {
		t.Fatal("expected width mismatch error")
	}
	truncated := NewTable(0, 1)
	if err := truncated.DecodeRows(enc[:len(enc)-2]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSortRowsDeterministic(t *testing.T) {
	tbl := NewTable(0, 1)
	tbl.Rows = [][]graph.NodeID{{3, 1}, {1, 2}, {1, 1}, {3, 0}}
	tbl.SortRows()
	want := [][]graph.NodeID{{1, 1}, {1, 2}, {3, 0}, {3, 1}}
	if !reflect.DeepEqual(tbl.Rows, want) {
		t.Fatalf("sorted = %v", tbl.Rows)
	}
}

func TestCondString(t *testing.T) {
	c := Cond{FromNode: 2, ToNode: 5}
	if c.String() != "2->5" {
		t.Fatalf("Cond.String = %q", c.String())
	}
}
