package rjoin

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/xmark"
)

// buildDBs returns the same graph indexed memory-backed and file-backed, so
// the parallel/serial crosscheck covers both pagers (the file pager
// exercises real page reads under concurrent partitions).
func buildDBs(t *testing.T, g *graph.Graph) map[string]*gdb.Snap {
	t.Helper()
	mem, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	memSnap, memRelease := mem.Pin()
	t.Cleanup(func() { memRelease(); mem.Close() })
	file, err := gdb.Build(g, gdb.Options{Path: filepath.Join(t.TempDir(), "cross.fgmdb")})
	if err != nil {
		t.Fatal(err)
	}
	fileSnap, fileRelease := file.Pin()
	t.Cleanup(func() { fileRelease(); file.Close() })
	return map[string]*gdb.Snap{"memory": memSnap, "file": fileSnap}
}

// extentOf builds a single-column temporal table holding every node of the
// given label, replicated so the table comfortably exceeds the row-range
// partition grain (forcing real multi-worker splits).
func extentOf(g *graph.Graph, l graph.Label, node, replicas int) *Table {
	t := NewTable(node)
	for r := 0; r < replicas; r++ {
		for _, v := range g.Extent(l) {
			t.Rows = append(t.Rows, []graph.NodeID{v})
		}
	}
	return t
}

// TestParallelMatchesSerial is the operator-parallelism crosscheck: for
// HPSJ, Filter, FilterGroup, Fetch, and Selection, every worker degree must
// produce a result row-for-row identical — same order, not just the same
// set — to the serial (one-worker) path, on memory- and file-backed
// databases. Run under -race (the verify tier does) this also proves the
// partitions share the database safely.
func TestParallelMatchesSerial(t *testing.T) {
	g := randomGraph(41, 900, 2600, 3)
	al, bl := g.Labels().Lookup("A"), g.Labels().Lookup("B")
	ctx := context.Background()
	for name, db := range buildDBs(t, g) {
		t.Run(name, func(t *testing.T) {
			c := Cond{FromNode: 0, ToNode: 1, FromLabel: al, ToLabel: bl}
			bound := extentOf(g, al, 0, 4)
			revBound := extentOf(g, bl, 1, 4)

			type op struct {
				name string
				run  func(rt *Runtime) (*Table, error)
			}
			ops := []op{
				{"HPSJ", func(rt *Runtime) (*Table, error) { return rt.HPSJ(ctx, db, c) }},
				{"Filter", func(rt *Runtime) (*Table, error) { return rt.Filter(ctx, db, bound, c) }},
				{"FilterReverse", func(rt *Runtime) (*Table, error) { return rt.Filter(ctx, db, revBound, c) }},
				{"FilterGroup", func(rt *Runtime) (*Table, error) {
					return rt.FilterGroup(ctx, db, bound, []Cond{c}, 0, true)
				}},
				{"Fetch", func(rt *Runtime) (*Table, error) { return rt.Fetch(ctx, db, bound, c) }},
				{"FetchReverse", func(rt *Runtime) (*Table, error) { return rt.Fetch(ctx, db, revBound, c) }},
				{"Selection", func(rt *Runtime) (*Table, error) {
					pairs := NewTable(0, 1)
					for _, x := range g.Extent(al) {
						for _, y := range g.Extent(bl) {
							pairs.Rows = append(pairs.Rows, []graph.NodeID{x, y})
						}
					}
					return rt.Selection(ctx, db, pairs, c)
				}},
			}
			for _, o := range ops {
				serialOut, err := o.run(NewRuntime(1))
				if err != nil {
					t.Fatalf("%s serial: %v", o.name, err)
				}
				for _, workers := range []int{2, 4, 8} {
					got, err := o.run(NewRuntime(workers))
					if err != nil {
						t.Fatalf("%s workers=%d: %v", o.name, workers, err)
					}
					if !reflect.DeepEqual(got.Cols, serialOut.Cols) {
						t.Fatalf("%s workers=%d: cols %v != %v", o.name, workers, got.Cols, serialOut.Cols)
					}
					if !reflect.DeepEqual(got.Rows, serialOut.Rows) {
						t.Fatalf("%s workers=%d: %d rows differ from serial %d rows (order-sensitive compare)",
							o.name, workers, got.Len(), serialOut.Len())
					}
				}
			}
		})
	}
}

// TestParallelPackageFuncsMatchRuntime: the package-level operator
// functions are the serial reference; a Runtime at any degree must agree
// with them (guards the wrappers against drifting from the methods).
func TestParallelPackageFuncsMatchRuntime(t *testing.T) {
	g := randomGraph(42, 300, 800, 3)
	db := mustDB(t, g)
	c := cond(g, "A", "B", 0, 1)
	ctx := context.Background()
	want, err := HPSJ(ctx, db, c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRuntime(4).HPSJ(ctx, db, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("package HPSJ %d rows != runtime HPSJ %d rows", want.Len(), got.Len())
	}
}

// TestParallelCancellation: a context cancelled before (and during) a
// parallel operator aborts every partition and surfaces context.Canceled,
// not a partial table.
func TestParallelCancellation(t *testing.T) {
	g := randomGraph(43, 400, 1100, 2)
	db := mustDB(t, g)
	a, b := g.Labels().Lookup("A"), g.Labels().Lookup("B")
	c := Cond{FromNode: 0, ToNode: 1, FromLabel: a, ToLabel: b}
	tbl := extentOf(g, a, 0, 1+6*cancelStride/g.ExtentSize(a))

	for _, workers := range []int{1, 4} {
		rt := NewRuntime(workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := rt.Filter(ctx, db, tbl, c); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d Filter on cancelled ctx: %v", workers, err)
		}
		if _, err := rt.Fetch(ctx, db, tbl, c); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d Fetch on cancelled ctx: %v", workers, err)
		}
		if _, err := rt.Selection(ctx, db, NewTable(0, 1), c); err != nil {
			// An empty table finishes before any cancellation poll; that is
			// fine — the contract is prompt abandonment of large work.
			t.Fatalf("workers=%d Selection on empty table: %v", workers, err)
		}
	}

	// Mid-operator cancellation: cancel from another goroutine while a
	// parallel Fetch grinds through a large table; the operator must return
	// the context error (or finish first on a fast machine — both are
	// legal, a partial result is not).
	rt := NewRuntime(4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		<-done
		cancel()
	}()
	close(done)
	out, err := rt.Fetch(ctx, db, tbl, c)
	if err == nil {
		want, serr := Fetch(context.Background(), db, tbl, c)
		if serr != nil {
			t.Fatal(serr)
		}
		if !reflect.DeepEqual(out.Rows, want.Rows) {
			t.Fatal("Fetch raced cancellation and returned a partial result")
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-operator cancel: %v", err)
	}
}

// TestCenterCacheReuse: within one runtime, Fetch after Filter on the same
// condition serves its center sets from the per-query cache (the
// JoinFilterFetch pattern), and cached execution stays correct.
func TestCenterCacheReuse(t *testing.T) {
	g := randomGraph(44, 500, 1400, 3)
	db := mustDB(t, g)
	c := cond(g, "A", "B", 0, 1)
	tbl := extentOf(g, g.Labels().Lookup("A"), 0, 1)
	ctx := context.Background()

	rt := NewRuntime(1)
	filtered, err := rt.Filter(ctx, db, tbl, c)
	if err != nil {
		t.Fatal(err)
	}
	afterFilter := rt.Stats()
	if afterFilter.CenterCacheMisses == 0 {
		t.Fatal("Filter recorded no center cache misses")
	}
	got, err := rt.Fetch(ctx, db, filtered, c)
	if err != nil {
		t.Fatal(err)
	}
	afterFetch := rt.Stats()
	if hits := afterFetch.CenterCacheHits - afterFilter.CenterCacheHits; hits < int64(filtered.Len()) {
		t.Fatalf("Fetch hit the center cache %d times, want >= %d (one per surviving row)", hits, filtered.Len())
	}
	// Correctness under caching: equals the uncached package-level path.
	want, err := Fetch(ctx, db, filtered, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatal("cached Fetch differs from uncached Fetch")
	}
}

// TestRuntimeStats: parallel operators account their partition tasks.
func TestRuntimeStats(t *testing.T) {
	g := randomGraph(45, 600, 1600, 2)
	db := mustDB(t, g)
	c := cond(g, "A", "B", 0, 1)
	tbl := extentOf(g, g.Labels().Lookup("A"), 0, 4)

	rt := NewRuntime(4)
	if _, err := rt.Filter(context.Background(), db, tbl, c); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Ops == 0 || st.Tasks < st.Ops {
		t.Fatalf("implausible stats: %+v", st)
	}
	if tbl.Len() >= minParallelGrains*rowGrain && st.ParallelOps == 0 {
		t.Fatalf("large table did not split: %+v (rows=%d)", st, tbl.Len())
	}
}

// BenchmarkOperatorParallel measures the four partitioned operators on an
// XMark-derived dataset across worker degrees, asserting nothing but
// printing the scaling the acceptance criterion tracks (compare
// workers=1 vs workers=8 ns/op on multi-core hardware).
func BenchmarkOperatorParallel(b *testing.B) {
	d := xmark.Generate(xmark.Config{Nodes: 8000, Seed: 7, DAG: true})
	g := d.Graph
	dbx, err := gdb.Build(g, gdb.Options{PoolBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer dbx.Close()
	db, release := dbx.Pin()
	defer release()

	// Pick the label pair with the largest R-join to make the operators
	// compute-bound rather than setup-bound.
	var c Cond
	var best int64
	for x := graph.Label(0); int(x) < g.Labels().Len(); x++ {
		for y := graph.Label(0); int(y) < g.Labels().Len(); y++ {
			if x == y {
				continue
			}
			sz, err := db.JoinSize(x, y)
			if err != nil {
				b.Fatal(err)
			}
			if sz > best {
				best = sz
				c = Cond{FromNode: 0, ToNode: 1, FromLabel: x, ToLabel: y}
			}
		}
	}
	bound := extentOf(g, c.FromLabel, 0, 2)
	ctx := context.Background()

	for _, workers := range []int{1, 2, 4, 8} {
		ops := []struct {
			name string
			run  func(rt *Runtime) error
		}{
			{"HPSJ", func(rt *Runtime) error { _, err := rt.HPSJ(ctx, db, c); return err }},
			{"Filter", func(rt *Runtime) error { _, err := rt.Filter(ctx, db, bound, c); return err }},
			{"Fetch", func(rt *Runtime) error { _, err := rt.Fetch(ctx, db, bound, c); return err }},
			{"Selection", func(rt *Runtime) error {
				pairs := NewTable(0, 1)
				ys := g.Extent(c.ToLabel)
				for _, x := range g.Extent(c.FromLabel) {
					for k := 0; k < 4 && k < len(ys); k++ {
						pairs.Rows = append(pairs.Rows, []graph.NodeID{x, ys[k]})
					}
				}
				_, err := rt.Selection(ctx, db, pairs, c)
				return err
			}},
		}
		for _, o := range ops {
			b.Run(fmt.Sprintf("%s/workers=%d", o.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rt := NewRuntime(workers)
					if err := o.run(rt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
