package rjoin

import (
	"context"
	"fmt"
	"slices"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// Worst-case-optimal multiway R-join (LeapFrog-TrieJoin over the R-join
// index). Instead of joining the pattern's reachability conditions pairwise
// and materialising every intermediate cross-product, WCOJ binds the
// pattern variables one at a time in a global variable order; at each level
// the candidate values are the intersection of one sorted constraint list
// per incident condition, so no binding prefix ever extends in a direction
// some condition will later reject.
//
// The sorted tries come straight from the index of Section 3:
//
//   - A condition X→Y whose variables are both unbound contributes its
//     distinct projection π_X (or π_Y) — the union of the X-labeled
//     F-subclusters (Y-labeled T-subclusters) over W(X, Y), memoized per
//     snapshot (gdb.ProjectFrom/ProjectTo). This is the trie's first level.
//   - A condition with one side already bound to node v contributes the
//     exact set of partners of v: ∪_{w ∈ out(v) ∩ W(X,Y)} getT(w, Y)
//     forward, ∪_{w ∈ in(v) ∩ W(X,Y)} getF(w, X) reverse — the same
//     2-hop-code expansion Fetch performs per row, so reachability is
//     validated as bindings extend, never post-hoc.
//
// Every constraint list is ascending and duplicate-free, so the enumeration
// emits distinct rows in lexicographic order of the variable-order columns.
// Parallel execution partitions the first level's candidate list into
// contiguous ranges; per-partition outputs concatenated in partition order
// reproduce the serial output at every worker degree.

// wcojGrain is the partition grain for the first-level candidate list. A
// first-level candidate expands an entire enumeration subtree — far heavier
// than one Fetch row, lighter than an HPSJ center — so the grain sits
// between rowGrain and centerGrain.
const wcojGrain = 64

// WCOJ runs the worst-case-optimal multiway R-join single-threaded. See
// Runtime.WCOJ.
func WCOJ(ctx context.Context, db *gdb.Snap, conds []Cond, order []int) (*Table, error) {
	return serial().WCOJ(ctx, db, conds, order)
}

// wcojPlan is the compiled form of one multiway join: per variable-order
// level, the fixed projection constraint lists and the bound-side
// constraints whose partner lists depend on earlier bindings.
type wcojPlan struct {
	order  []int
	levels []wcojLevel
}

type wcojLevel struct {
	node int
	// proj holds the distinct-projection lists of conditions whose other
	// endpoint binds later: fixed for the whole query, shared with the
	// snapshot memo (never mutated).
	proj [][]graph.NodeID
	// bound holds the conditions whose other endpoint binds earlier; their
	// candidate lists are per-binding target unions.
	bound []wcojBound
}

type wcojBound struct {
	cond Cond
	// level is the variable-order level binding the condition's other
	// endpoint.
	level int
	// forward reports that the bound endpoint is the condition's From side
	// (candidates expand T-subclusters); reverse expands F-subclusters.
	forward bool
	ws      []graph.NodeID
}

func buildWCOJPlan(db *gdb.Snap, conds []Cond, order []int) (*wcojPlan, error) {
	if len(order) == 0 || len(conds) == 0 {
		return nil, fmt.Errorf("rjoin: wcoj: empty variable order or condition set")
	}
	pos := make(map[int]int, len(order))
	for i, n := range order {
		if _, dup := pos[n]; dup {
			return nil, fmt.Errorf("rjoin: wcoj: node %d repeated in variable order %v", n, order)
		}
		pos[n] = i
	}
	p := &wcojPlan{order: order, levels: make([]wcojLevel, len(order))}
	for i, n := range order {
		p.levels[i].node = n
	}
	for _, c := range conds {
		pf, okF := pos[c.FromNode]
		pt, okT := pos[c.ToNode]
		if !okF || !okT {
			return nil, fmt.Errorf("rjoin: wcoj: condition %v not covered by variable order %v", c, order)
		}
		ws, err := db.Centers(c.FromLabel, c.ToLabel)
		if err != nil {
			return nil, err
		}
		if pf < pt {
			// From binds first: its level prunes against π_From, the To
			// level intersects From's forward targets.
			proj, err := db.ProjectFrom(c.FromLabel, c.ToLabel)
			if err != nil {
				return nil, err
			}
			p.levels[pf].proj = append(p.levels[pf].proj, proj)
			p.levels[pt].bound = append(p.levels[pt].bound, wcojBound{cond: c, level: pf, forward: true, ws: ws})
		} else {
			proj, err := db.ProjectTo(c.FromLabel, c.ToLabel)
			if err != nil {
				return nil, err
			}
			p.levels[pt].proj = append(p.levels[pt].proj, proj)
			p.levels[pf].bound = append(p.levels[pf].bound, wcojBound{cond: c, level: pt, forward: false, ws: ws})
		}
	}
	for i := range p.levels {
		if len(p.levels[i].proj) == 0 && len(p.levels[i].bound) == 0 {
			return nil, fmt.Errorf("rjoin: wcoj: variable %d unconstrained in order %v (pattern not connected through the order)", p.levels[i].node, order)
		}
	}
	return p, nil
}

// wcojTargets is the single-entry memo of one bound constraint's partner
// list: the bound endpoint's value only changes when its (earlier) level
// advances, so one entry gives full reuse across the entire subtree
// enumerated underneath it. Buffers recycle across refills.
type wcojTargets struct {
	valid   bool
	value   graph.NodeID
	targets []graph.NodeID
	scratch []graph.NodeID
}

// wcojRun is one partition's enumeration state.
type wcojRun struct {
	rt   *Runtime
	db   *gdb.Snap
	plan *wcojPlan
	out  *Table
	cc   cancelCheck
	// limit is the pushed-down result-row target (0 = none): the partition
	// stops after limit+1 rows, which keeps the concatenated prefix equal to
	// the serial prefix at every worker degree (see Runtime.PushLimit).
	limit int
	done  bool

	binding []graph.NodeID
	// cand/alt are per-level intersection double-buffers.
	cand [][]graph.NodeID
	alt  [][]graph.NodeID
	memo [][]wcojTargets
	// lists is the reusable per-level constraint-list collection buffer.
	lists [][]graph.NodeID

	seeks, nexts int64
}

func newWCOJRun(rt *Runtime, db *gdb.Snap, plan *wcojPlan, cc cancelCheck) *wcojRun {
	n := len(plan.levels)
	r := &wcojRun{
		rt:      rt,
		db:      db,
		plan:    plan,
		cc:      cc,
		binding: make([]graph.NodeID, n),
		cand:    make([][]graph.NodeID, n),
		alt:     make([][]graph.NodeID, n),
		memo:    make([][]wcojTargets, n),
	}
	for i := range plan.levels {
		r.memo[i] = make([]wcojTargets, len(plan.levels[i].bound))
	}
	return r
}

// targets returns the partner list of bound constraint j at level k under
// the current binding, through the single-entry memo. The computation is
// Fetch's per-row expansion: centers out(v) ∩ W (in(v) ∩ W reverse) via the
// per-query center cache, then the sorted-set union of their T-subclusters
// (F-subclusters reverse).
func (r *wcojRun) targets(k, j int) ([]graph.NodeID, error) {
	b := &r.plan.levels[k].bound[j]
	v := r.binding[b.level]
	m := &r.memo[k][j]
	if m.valid && m.value == v {
		return m.targets, nil
	}
	cs, err := r.rt.centersFor(r.db, v, b.ws, b.cond, b.forward)
	if err != nil {
		return nil, err
	}
	r.seeks += int64(len(cs))
	targets, scratch := m.targets[:0], m.scratch
	for _, w := range cs {
		var nodes []graph.NodeID
		if b.forward {
			nodes, err = r.rt.getT(r.db, w, b.cond.ToLabel)
		} else {
			nodes, err = r.rt.getF(r.db, w, b.cond.FromLabel)
		}
		if err != nil {
			return nil, err
		}
		if len(nodes) == 0 {
			continue
		}
		if len(targets) == 0 {
			targets = append(targets, nodes...)
			continue
		}
		scratch = mergeUnion(scratch, targets, nodes)
		targets, scratch = scratch, targets
	}
	m.valid, m.value, m.targets, m.scratch = true, v, targets, scratch
	return targets, nil
}

// candidates computes level k's candidate values under the current binding:
// the multiway intersection of every constraint list, smallest pair first
// so the running intersection shrinks as fast as possible before the
// galloping passes over the larger lists.
func (r *wcojRun) candidates(k int) ([]graph.NodeID, error) {
	lv := &r.plan.levels[k]
	lists := append(r.lists[:0], lv.proj...)
	for j := range lv.bound {
		t, err := r.targets(k, j)
		if err != nil {
			return nil, err
		}
		lists = append(lists, t)
	}
	r.lists = lists
	r.seeks += int64(len(lists))
	slices.SortStableFunc(lists, func(a, b []graph.NodeID) int { return len(a) - len(b) })
	if len(lists[0]) == 0 {
		return nil, nil
	}
	if len(lists) == 1 {
		r.nexts += int64(len(lists[0]))
		return lists[0], nil
	}
	cur := gdb.IntersectTo(r.cand[k], lists[0], lists[1])
	buf := r.alt[k]
	for _, l := range lists[2:] {
		if len(cur) == 0 {
			break
		}
		buf = gdb.IntersectTo(buf, cur, l)
		cur, buf = buf, cur
	}
	r.cand[k], r.alt[k] = cur, buf
	r.nexts += int64(len(cur))
	return cur, nil
}

// enumerate walks level k's candidate list, emitting full bindings at the
// last level and recursing otherwise. Each candidate charges one
// cancellation work unit; emitted rows are validated against the budget's
// intermediate-row cap per candidate batch.
func (r *wcojRun) enumerate(k int, cand []graph.NodeID) error {
	if err := r.cc.tickN(len(cand)); err != nil {
		return err
	}
	if k == len(r.plan.levels)-1 {
		for _, v := range cand {
			r.binding[k] = v
			row := r.out.NewRow()
			copy(row, r.binding)
			r.out.Rows = append(r.out.Rows, row)
			if r.limit > 0 && len(r.out.Rows) > r.limit {
				r.done = true
				return nil
			}
		}
		return r.rt.budget.CheckRows(len(r.out.Rows))
	}
	for _, v := range cand {
		r.binding[k] = v
		next, err := r.candidates(k + 1)
		if err != nil {
			return err
		}
		if len(next) == 0 {
			continue
		}
		if err := r.enumerate(k+1, next); err != nil {
			return err
		}
		if r.done {
			return nil
		}
	}
	return nil
}

// WCOJ evaluates all conds in one worst-case-optimal multiway R-join,
// binding the pattern variables in the given global order. Every condition
// endpoint must appear in order; every variable must have at least one
// incident condition (the pattern must be connected through the order —
// otherwise the join would be a cross product, which WCOJ refuses to
// build). The result's columns are order itself and its rows are distinct
// and lexicographically sorted — identical at every worker degree.
func (rt *Runtime) WCOJ(ctx context.Context, db *gdb.Snap, conds []Cond, order []int) (*Table, error) {
	plan, err := buildWCOJPlan(db, conds, order)
	if err != nil {
		return nil, err
	}
	// The first level's candidates are intersections of snapshot-memoized
	// projections only — computed once, then partitioned.
	seed := newWCOJRun(rt, db, plan, rt.check(ctx))
	c0, err := seed.candidates(0)
	if err != nil {
		return nil, err
	}
	parts := rt.split(len(c0), wcojGrain)
	outs := make([]*Table, parts)
	err = rt.runParts(ctx, len(c0), parts, func(ctx context.Context, part, lo, hi int) error {
		r := newWCOJRun(rt, db, plan, rt.check(ctx))
		r.out = rt.newTable(plan.order...)
		r.limit = rt.rowTarget
		err := r.enumerate(0, c0[lo:hi])
		rt.seeks.Add(r.seeks)
		rt.iterNexts.Add(r.nexts)
		outs[part] = r.out
		return err
	})
	rt.seeks.Add(seed.seeks)
	rt.iterNexts.Add(seed.nexts)
	if err != nil {
		return nil, err
	}
	out := NewTable(plan.order...)
	for _, p := range outs {
		out.Rows = append(out.Rows, p.Rows...)
	}
	return rt.finishOp(out)
}
