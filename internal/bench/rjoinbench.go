package bench

import (
	"context"
	"fmt"
	"testing"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/rjoin"
)

// RJoinResult is one machine-readable operator micro-measurement, the row
// schema of BENCH_rjoin.json.
type RJoinResult struct {
	// Op is the operator name (HPSJ, Filter, Fetch, Selection).
	Op string `json:"op"`
	// Dataset is the ladder dataset name the operator ran on.
	Dataset string `json:"dataset"`
	// Workers is the runtime's worker-pool degree.
	Workers int `json:"workers"`
	// Rows is the operator's output cardinality (sanity anchor: identical
	// across worker degrees by the determinism contract).
	Rows int `json:"rows"`
	// NsPerOp and AllocsPerOp come from testing.Benchmark.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// rjoinWorkload fixes the operator inputs for one database: the label pair
// with the largest R-join (compute-bound, not setup-bound), a bound input
// table over the from-extent, and a candidate pair table for Selection.
type rjoinWorkload struct {
	c     rjoin.Cond
	bound *rjoin.Table
	pairs *rjoin.Table
}

func buildRJoinWorkload(db *gdb.DB, g *graph.Graph) (*rjoinWorkload, error) {
	var c rjoin.Cond
	var best int64 = -1
	for x := graph.Label(0); int(x) < g.Labels().Len(); x++ {
		for y := graph.Label(0); int(y) < g.Labels().Len(); y++ {
			if x == y {
				continue
			}
			sz, err := db.JoinSize(x, y)
			if err != nil {
				return nil, err
			}
			if sz > best {
				best = sz
				c = rjoin.Cond{FromNode: 0, ToNode: 1, FromLabel: x, ToLabel: y}
			}
		}
	}
	if best <= 0 {
		return nil, fmt.Errorf("bench: no non-empty R-join in dataset")
	}
	w := &rjoinWorkload{c: c, bound: rjoin.NewTable(0), pairs: rjoin.NewTable(0, 1)}
	for _, x := range g.Extent(c.FromLabel) {
		w.bound.Rows = append(w.bound.Rows, []graph.NodeID{x})
	}
	ys := g.Extent(c.ToLabel)
	for _, x := range g.Extent(c.FromLabel) {
		for k := 0; k < 4 && k < len(ys); k++ {
			w.pairs.Rows = append(w.pairs.Rows, []graph.NodeID{x, ys[k]})
		}
	}
	return w, nil
}

// RJoinMicro benchmarks the four R-join operators on the ladder's smallest
// dataset at serial and parallel worker degrees, via testing.Benchmark so
// ns/op and allocs/op come from the standard machinery. It returns the
// paper-style report plus the machine-readable rows for BENCH_rjoin.json.
func (r *Runner) RJoinMicro() (*Report, []RJoinResult, error) {
	s := Scales(r.Mult)[0]
	db, err := r.db(s)
	if err != nil {
		return nil, nil, err
	}
	g := r.dataset(s).Graph
	w, err := buildRJoinWorkload(db, g)
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	snap, release := db.Pin()
	defer release()

	ops := []struct {
		name string
		run  func(rt *rjoin.Runtime) (*rjoin.Table, error)
	}{
		{"HPSJ", func(rt *rjoin.Runtime) (*rjoin.Table, error) { return rt.HPSJ(ctx, snap, w.c) }},
		{"Filter", func(rt *rjoin.Runtime) (*rjoin.Table, error) { return rt.Filter(ctx, snap, w.bound, w.c) }},
		{"Fetch", func(rt *rjoin.Runtime) (*rjoin.Table, error) { return rt.Fetch(ctx, snap, w.bound, w.c) }},
		{"Selection", func(rt *rjoin.Runtime) (*rjoin.Table, error) { return rt.Selection(ctx, snap, w.pairs, w.c) }},
	}

	rep := &Report{
		ID:    "rjoin",
		Title: fmt.Sprintf("R-join operator microbenchmarks (%s, best label pair)", s.Name),
		PaperClaim: "operator kernels dominate query time; parallel partitions " +
			"and sorted-set kernels cut per-operator cost",
		Header: []string{"op", "workers", "rows", "ns/op", "allocs/op", "B/op"},
	}
	var results []RJoinResult
	for _, o := range ops {
		for _, workers := range []int{1, 4} {
			o, workers := o, workers
			var rows int
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := o.run(rjoin.NewRuntime(workers))
					if err != nil {
						b.Fatal(err)
					}
					rows = out.Len()
				}
			})
			res := RJoinResult{
				Op:          o.name,
				Dataset:     s.Name,
				Workers:     workers,
				Rows:        rows,
				NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
				AllocsPerOp: br.AllocsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
			}
			results = append(results, res)
			rep.AddRow(o.name, fmt.Sprint(workers), fmt.Sprint(rows),
				fmt.Sprintf("%.0f", res.NsPerOp), fmt.Sprint(res.AllocsPerOp), fmt.Sprint(res.BytesPerOp))
		}
	}
	return rep, results, nil
}
