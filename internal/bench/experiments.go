package bench

import (
	"fmt"

	"fastmatch/internal/exec"
	"fastmatch/internal/workload"
)

// Table2 regenerates Table 2: dataset statistics with 2-hop cover sizes.
func (r *Runner) Table2() (*Report, error) {
	rep := &Report{
		ID:         "table2",
		Title:      "dataset statistics (scaled ladder; see DESIGN.md substitutions)",
		PaperClaim: "|E|/|V| ≈ 1.18 and |H|/|V| ≈ 3.47–3.50 across all five datasets",
		Header:     []string{"dataset", "|V|", "|E|", "|H|", "|H|/|V|"},
	}
	for _, s := range Scales(r.Mult) {
		st := r.CoverStats(s)
		rep.AddRow(s.Name,
			fmt.Sprintf("%d", st.Nodes),
			fmt.Sprintf("%d", st.Edges),
			fmt.Sprintf("%d", st.Size),
			fmt.Sprintf("%.3f", st.Ratio))
	}
	return rep, nil
}

// fig5 runs the TSD vs INT-DP vs DP comparison over one workload battery.
func (r *Runner) fig5(id, title string, ws []workload.Workload) (*Report, error) {
	db, tsd, ig, err := r.dagSetup()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         id,
		Title:      title,
		PaperClaim: "TSD slower than INT-DP/DP by orders of magnitude (e.g. 1668×/9709× on P2); DP ≤ INT-DP on every pattern",
		Header:     []string{"query", "TSD ms", "INT-DP ms", "DP ms", "rows"},
	}
	for _, w := range ws {
		mt, err := r.timeTSD(tsd, w.Pattern)
		if err != nil {
			return nil, fmt.Errorf("%s TSD: %w", w.Name, err)
		}
		mi, err := r.timeINTDP(db, ig, w.Pattern)
		if err != nil {
			return nil, fmt.Errorf("%s INT-DP: %w", w.Name, err)
		}
		md, err := r.timeQuery(db, w.Pattern, exec.DP)
		if err != nil {
			return nil, fmt.Errorf("%s DP: %w", w.Name, err)
		}
		if mt.Rows != mi.Rows || mi.Rows != md.Rows {
			return nil, fmt.Errorf("%s: row mismatch TSD=%d INT-DP=%d DP=%d", w.Name, mt.Rows, mi.Rows, md.Rows)
		}
		rep.AddRow(w.Name, ms(mt.ElapsedMS), ms(mi.ElapsedMS), ms(md.ElapsedMS), fmt.Sprintf("%d", md.Rows))
	}
	return rep, nil
}

// Fig5a regenerates Figure 5(a): nine path patterns over the DAG dataset.
func (r *Runner) Fig5a() (*Report, error) {
	return r.fig5("fig5a", "TSD vs INT-DP vs DP, 9 path patterns (DAG dataset)", workload.Paths())
}

// Fig5b regenerates Figure 5(b): nine tree patterns over the DAG dataset.
func (r *Runner) Fig5b() (*Report, error) {
	return r.fig5("fig5b", "TSD vs INT-DP vs DP, 9 tree patterns (DAG dataset)", workload.Trees())
}

// fig6 runs DP vs DPS over one graph-pattern battery on the largest
// dataset.
func (r *Runner) fig6(id, title string, ws []workload.Workload) (*Report, error) {
	scales := Scales(r.Mult)
	db, err := r.db(scales[len(scales)-1])
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         id,
		Title:      title,
		PaperClaim: "DPS significantly outperforms DP on every Q1–Q5",
		Header:     []string{"query", "DP ms", "DPS ms", "DP io", "DPS io", "rows"},
	}
	for _, w := range ws {
		md, err := r.timeQuery(db, w.Pattern, exec.DP)
		if err != nil {
			return nil, fmt.Errorf("%s DP: %w", w.Name, err)
		}
		msr, err := r.timeQuery(db, w.Pattern, exec.DPS)
		if err != nil {
			return nil, fmt.Errorf("%s DPS: %w", w.Name, err)
		}
		if md.Rows != msr.Rows {
			return nil, fmt.Errorf("%s: row mismatch DP=%d DPS=%d", w.Name, md.Rows, msr.Rows)
		}
		rep.AddRow(w.Name, ms(md.ElapsedMS), ms(msr.ElapsedMS),
			fmt.Sprintf("%d", md.IO), fmt.Sprintf("%d", msr.IO), fmt.Sprintf("%d", md.Rows))
	}
	return rep, nil
}

// Fig6a regenerates Figure 6(a): |V_q|=4 confluence patterns, DP vs DPS.
func (r *Runner) Fig6a() (*Report, error) {
	return r.fig6("fig6a", "DP vs DPS, Q1–Q5 |Vq|=4 (Figure 4(e) shapes), largest dataset", workload.Graphs4A())
}

// Fig6b regenerates Figure 6(b): |V_q|=4 diamond patterns.
func (r *Runner) Fig6b() (*Report, error) {
	return r.fig6("fig6b", "DP vs DPS, Q1–Q5 |Vq|=4 (Figure 4(d) shapes), largest dataset", workload.Graphs4B())
}

// Fig6c regenerates Figure 6(c): |V_q|=5 patterns.
func (r *Runner) Fig6c() (*Report, error) {
	return r.fig6("fig6c", "DP vs DPS, Q1–Q5 |Vq|=5 (Figure 4(h) shapes), largest dataset", workload.Graphs5A())
}

// Fig6d regenerates Figure 6(d): |V_q|=5 five-condition patterns.
func (r *Runner) Fig6d() (*Report, error) {
	return r.fig6("fig6d", "DP vs DPS, Q1–Q5 |Vq|=5 (Figure 4(i) shapes), largest dataset", workload.Graphs5B())
}

// fig7 runs DP vs DPS for one pattern across the five-scale ladder.
func (r *Runner) fig7(id, title string, w workload.Workload) (*Report, error) {
	rep := &Report{
		ID:         id,
		Title:      title,
		PaperClaim: "DPS outperforms DP by at least an order of magnitude, gap widening with scale (DP's I/O grows much faster)",
		Header:     []string{"dataset", "DP ms", "DPS ms", "DP io", "DPS io", "rows"},
	}
	for _, s := range Scales(r.Mult) {
		db, err := r.db(s)
		if err != nil {
			return nil, err
		}
		md, err := r.timeQuery(db, w.Pattern, exec.DP)
		if err != nil {
			return nil, fmt.Errorf("%s DP: %w", s.Name, err)
		}
		msr, err := r.timeQuery(db, w.Pattern, exec.DPS)
		if err != nil {
			return nil, fmt.Errorf("%s DPS: %w", s.Name, err)
		}
		if md.Rows != msr.Rows {
			return nil, fmt.Errorf("%s: row mismatch DP=%d DPS=%d", s.Name, md.Rows, msr.Rows)
		}
		rep.AddRow(s.Name, ms(md.ElapsedMS), ms(msr.ElapsedMS),
			fmt.Sprintf("%d", md.IO), fmt.Sprintf("%d", msr.IO), fmt.Sprintf("%d", md.Rows))
	}
	return rep, nil
}

// Fig7a regenerates Figure 7(a): scalability on a path pattern.
func (r *Runner) Fig7a() (*Report, error) {
	return r.fig7("fig7a", "scalability, path pattern (Figure 4(a))", workload.ScalabilityPath())
}

// Fig7b regenerates Figure 7(b): scalability on a tree pattern.
func (r *Runner) Fig7b() (*Report, error) {
	return r.fig7("fig7b", "scalability, tree pattern (Figure 4(d))", workload.ScalabilityTree())
}

// Fig7c regenerates Figure 7(c): scalability on a graph pattern.
func (r *Runner) Fig7c() (*Report, error) {
	return r.fig7("fig7c", "scalability, graph pattern (Figure 4(i))", workload.ScalabilityGraph())
}

// IOCost regenerates the Section 6.2 I/O claim over all graph-pattern
// batteries on the largest dataset.
func (r *Runner) IOCost() (*Report, error) {
	scales := Scales(r.Mult)
	db, err := r.db(scales[len(scales)-1])
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "iocost",
		Title:      "I/O cost, DP vs DPS, all graph-pattern batteries, largest dataset",
		PaperClaim: "for most queries DP spends over five times the I/O cost of DPS",
		Header:     []string{"query", "DP io", "DPS io", "DP/DPS"},
	}
	batteries := []struct {
		suffix string
		ws     []workload.Workload
	}{
		{"x4a", workload.Graphs4A()}, {"x4b", workload.Graphs4B()},
		{"x5a", workload.Graphs5A()}, {"x5b", workload.Graphs5B()},
	}
	for _, b := range batteries {
		for _, w := range b.ws {
			md, err := r.timeQuery(db, w.Pattern, exec.DP)
			if err != nil {
				return nil, err
			}
			msr, err := r.timeQuery(db, w.Pattern, exec.DPS)
			if err != nil {
				return nil, err
			}
			ratio := "inf"
			if msr.IO > 0 {
				ratio = fmt.Sprintf("%.1f", float64(md.IO)/float64(msr.IO))
			}
			rep.AddRow(w.Name+b.suffix, fmt.Sprintf("%d", md.IO), fmt.Sprintf("%d", msr.IO), ratio)
		}
	}
	return rep, nil
}
