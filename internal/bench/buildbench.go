package bench

import (
	"fmt"
	"math/rand"
	"time"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/twohop"
	"fastmatch/internal/xmark"
)

// BuildResult is one machine-readable build measurement, the row schema of
// BENCH_build.json.
type BuildResult struct {
	// Dataset is the ladder dataset name the build ran on.
	Dataset string `json:"dataset"`
	// Workers is the build parallelism degree.
	Workers int `json:"workers"`
	// CoverMS / DBMS / TotalMS split build time into 2-hop labeling and
	// database construction (inversion + bulk tree loads).
	CoverMS float64 `json:"cover_ms"`
	DBMS    float64 `json:"db_ms"`
	TotalMS float64 `json:"total_ms"`
	// CoverSize is |H|; CoverRatio is |H| relative to the serial cover
	// (1.0 at workers=1 by construction; the acceptance bound is ≤ 1.15).
	CoverSize  int     `json:"cover_size"`
	CoverRatio float64 `json:"cover_ratio"`
	// IndexBytes is the built database's on-disk size.
	IndexBytes int `json:"index_bytes"`
	// Verified reports the correctness check run at this degree: full
	// Cover.Verify on the DAG-sized dataset, sampled Reaches crosscheck
	// against the serial cover on the ladder dataset.
	Verified bool `json:"verified"`
	// Speedup is serial TotalMS / this TotalMS.
	Speedup float64 `json:"speedup"`
}

// buildOnce times one full build at the given parallelism, returning the
// cover, database, and the phase timings.
func buildOnce(g *graph.Graph, workers int) (*twohop.Cover, *gdb.DB, float64, float64, error) {
	t0 := time.Now()
	cover := twohop.Compute(g, twohop.Options{Parallelism: workers})
	coverMS := float64(time.Since(t0).Microseconds()) / 1e3
	t1 := time.Now()
	db, err := gdb.BuildFromIndex(g, cover, gdb.Options{PoolBytes: 16 << 20, BuildParallelism: workers})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	dbMS := float64(time.Since(t1).Microseconds()) / 1e3
	return cover, db, coverMS, dbMS, nil
}

// sampledReachesEqual crosschecks two covers on random node pairs (plus
// every pair among a small node sample, to hit local structure).
func sampledReachesEqual(a, b *twohop.Cover, n int, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 20000; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if a.Reaches(u, v) != b.Reaches(u, v) {
			return false
		}
	}
	sample := make([]graph.NodeID, 60)
	for i := range sample {
		sample[i] = graph.NodeID(rng.Intn(n))
	}
	for _, u := range sample {
		for _, v := range sample {
			if a.Reaches(u, v) != b.Reaches(u, v) {
				return false
			}
		}
	}
	return true
}

// BuildMicro measures the parallel build pipeline: full graph → cover → DB
// builds of the ladder's 20M dataset at worker degrees 1, 2, and 4, each
// verified against the serial cover, plus a full-Verify pass on a
// DAG-sized dataset at every degree. It returns the paper-style report and
// the machine-readable rows for BENCH_build.json.
//
// Interpreting the timings: the speedup column reflects the host's actual
// core count. On a multi-core host the concurrent labeling batches and
// sharded inversion scale with workers; on a single-core host (GOMAXPROCS
// = 1) wall-clock speedup is impossible by construction and the column
// hovers near 1.0 — the build-time win there comes from the bulk-loaded
// B+-trees and the counting inversion, which are in the serial path too.
func (r *Runner) BuildMicro() (*Report, []BuildResult, error) {
	s := Scales(r.Mult)[0]
	g := r.dataset(s).Graph

	// Small dataset for the exhaustive Verify at every degree (Verify is
	// O(|V|²·(|V|+|E|)); the ladder dataset is too large for it).
	small := xmark.Generate(xmark.Config{Nodes: 1500, Seed: r.Seed}).Graph

	rep := &Report{
		ID:    "build",
		Title: fmt.Sprintf("parallel index-build pipeline (%s dataset)", s.Name),
		PaperClaim: "batch-parallel 2-hop labeling, sharded cluster inversion, and " +
			"bulk-loaded B+-trees cut cold-start build time without changing query results",
		Header: []string{"workers", "cover ms", "db ms", "total ms", "|H|", "|H| ratio", "index MB", "verified", "speedup"},
	}

	var results []BuildResult
	var serialCover *twohop.Cover
	var serialTotal float64
	for _, workers := range []int{1, 2, 4} {
		// Best-of-Reps timing, like the query experiments.
		var best *BuildResult
		var cover *twohop.Cover
		for rep := 0; rep < r.Reps; rep++ {
			c, db, coverMS, dbMS, err := buildOnce(g, workers)
			if err != nil {
				return nil, nil, err
			}
			res := &BuildResult{
				Dataset:    s.Name,
				Workers:    workers,
				CoverMS:    coverMS,
				DBMS:       dbMS,
				TotalMS:    coverMS + dbMS,
				CoverSize:  c.Size(),
				IndexBytes: db.SizeBytes(),
			}
			db.Close()
			if best == nil || res.TotalMS < best.TotalMS {
				best, cover = res, c
			}
		}
		if workers == 1 {
			serialCover, serialTotal = cover, best.TotalMS
		}
		best.CoverRatio = float64(best.CoverSize) / float64(serialCover.Size())
		best.Speedup = serialTotal / best.TotalMS

		// Correctness at this degree: full Verify on the small graph,
		// sampled Reaches crosscheck against serial on the ladder graph.
		smallCover := twohop.Compute(small, twohop.Options{Parallelism: workers})
		best.Verified = smallCover.Verify() == nil &&
			sampledReachesEqual(serialCover, cover, g.NumNodes(), r.Seed)
		if !best.Verified {
			return nil, nil, fmt.Errorf("bench: build at %d workers failed verification", workers)
		}

		results = append(results, *best)
		rep.AddRow(fmt.Sprint(workers),
			ms(best.CoverMS), ms(best.DBMS), ms(best.TotalMS),
			fmt.Sprint(best.CoverSize), fmt.Sprintf("%.3f", best.CoverRatio),
			fmt.Sprintf("%.1f", float64(best.IndexBytes)/(1<<20)),
			fmt.Sprint(best.Verified), fmt.Sprintf("%.2f", best.Speedup))
	}
	return rep, results, nil
}
