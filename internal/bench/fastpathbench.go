package bench

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"time"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
)

// FastpathResult is one machine-readable tiered-vs-forced measurement, the
// row schema of BENCH_fastpath.json.
type FastpathResult struct {
	// Name identifies the battery entry and Pattern its text form.
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// Dataset is the dataset the pattern ran on.
	Dataset string `json:"dataset"`
	// Class is the battery class: single-edge, star, point-probe, or
	// impossible.
	Class string `json:"class"`
	// Tier is the tier the router chose (1 = index-only, 2 = signature
	// prefilter, 3 = full pipeline).
	Tier int `json:"tier"`
	// Rows is the result cardinality (identical under both modes by the
	// result-identical contract).
	Rows int `json:"rows"`
	// TieredMS is the median plan+execute latency with tiered routing;
	// Tier3MS the same query forced down the full operator pipeline
	// (planned with NoFastPath).
	TieredMS float64 `json:"tiered_ms"`
	Tier3MS  float64 `json:"tier3_ms"`
	// Speedup is Tier3MS / TieredMS.
	Speedup float64 `json:"speedup"`
	// Index names the index structure that answered a tier-1/2 query.
	Index string `json:"index"`
}

// fastpathReps is the number of timed repetitions per mode; the battery
// queries are microsecond-scale, so a wide median is cheap and keeps timer
// noise out of the committed speedups.
const fastpathReps = 31

// timeTiered measures one pattern end to end (plan + execute) in steady
// state — warm caches, median of fastpathReps runs — under the given plan
// configuration. Fast-path queries are dominated by fixed per-query
// overheads, so steady-state medians (not cold-cache minima) are what the
// tier router actually changes.
func (r *Runner) timeTiered(snap *gdb.Snap, p *pattern.Pattern, pc exec.PlanConfig) (Measure, error) {
	ctx := context.Background()
	samples := make([]float64, 0, fastpathReps)
	var rows int
	for rep := 0; rep < fastpathReps+1; rep++ {
		start := time.Now()
		plan, err := exec.BuildPlanSnapConfig(snap, p, exec.DPS, pc)
		if err != nil {
			return Measure{}, err
		}
		res, err := exec.RunSnapConfig(ctx, snap, plan, exec.RunConfig{})
		if err != nil {
			return Measure{}, err
		}
		if rep == 0 {
			// Warm-up run: fills the statistics memos and buffer pool.
			rows = res.Len()
			continue
		}
		if res.Len() != rows {
			return Measure{}, fmt.Errorf("bench: fastpath rows changed between runs: %d vs %d", res.Len(), rows)
		}
		// Nanosecond precision: a tier-2 answer completes in well under a
		// microsecond, which the other experiments' µs granularity would
		// round to zero.
		samples = append(samples, float64(time.Since(start).Nanoseconds())/1e6)
	}
	slices.Sort(samples)
	return Measure{ElapsedMS: samples[len(samples)/2], Rows: rows}, nil
}

// fastpathEntry is one battery pattern before measurement.
type fastpathEntry struct {
	name, class, text string
}

// fastpathBattery derives the battery from the snapshot's own fan
// signature, so it adapts to the generated data instead of hard-coding
// label pairs: the largest possible single-edge joins, a star around the
// best-connected source label, the smallest-extent possible pair as the
// point probe, and a signature-absent pair as the impossible pattern.
func fastpathBattery(snap *gdb.Snap) ([]fastpathEntry, error) {
	g := snap.Graph()
	sig := snap.Signature()
	if sig == nil {
		return nil, fmt.Errorf("bench: snapshot has no fan signature")
	}
	labels := g.Labels()
	type pair struct {
		x, y graph.Label
		st   gdb.PairStat
	}
	var possible, impossible []pair
	for x := graph.Label(0); int(x) < labels.Len(); x++ {
		for y := graph.Label(0); int(y) < labels.Len(); y++ {
			if x == y {
				continue
			}
			st := sig.Pair(x, y)
			if st.Centers > 0 {
				possible = append(possible, pair{x, y, st})
			} else {
				impossible = append(impossible, pair{x, y, st})
			}
		}
	}
	if len(possible) == 0 {
		return nil, fmt.Errorf("bench: no possible label pairs")
	}
	var battery []fastpathEntry
	edge := func(p pair) string {
		return labels.Name(p.x) + "->" + labels.Name(p.y)
	}

	// Single-edge: the three largest joins, where the skipped spill and
	// dedup projection are proportional to the result.
	sort.Slice(possible, func(i, j int) bool { return possible[i].st.JoinSize > possible[j].st.JoinSize })
	for i := 0; i < 3 && i < len(possible); i++ {
		battery = append(battery, fastpathEntry{
			name:  fmt.Sprintf("FP-edge%d", i+1),
			class: "single-edge",
			text:  edge(possible[i]),
		})
	}

	// Star: the source label with the most distinct partner labels,
	// joined to its two largest partners (A->B; A->C).
	partners := make(map[graph.Label][]pair)
	for _, p := range possible {
		partners[p.x] = append(partners[p.x], p)
	}
	var star graph.Label
	found := false
	for x, ps := range partners {
		// Need two partners with distinct labels, both distinct from x.
		if len(ps) >= 2 && (!found || len(ps) > len(partners[star])) {
			star, found = x, true
		}
	}
	if found {
		ps := partners[star]
		sort.Slice(ps, func(i, j int) bool { return ps[i].st.JoinSize > ps[j].st.JoinSize })
		battery = append(battery, fastpathEntry{
			name:  "FP-star",
			class: "star",
			text:  edge(ps[0]) + "; " + edge(ps[1]),
		})
	}

	// Point probe: the possible pair with the smallest extent product —
	// the closest the generated data gets to a single-pair reachability
	// question.
	probe := possible[0]
	probeCost := func(p pair) int {
		return g.ExtentSize(p.x) * g.ExtentSize(p.y)
	}
	for _, p := range possible[1:] {
		if probeCost(p) < probeCost(probe) {
			probe = p
		}
	}
	battery = append(battery, fastpathEntry{
		name:  "FP-probe",
		class: "point-probe",
		text:  edge(probe),
	})

	// Impossible: a label pair with no W-table centers; the prefilter
	// answers it in O(pattern) while the forced pipeline plans and runs.
	if len(impossible) > 0 {
		battery = append(battery, fastpathEntry{
			name:  "FP-empty",
			class: "impossible",
			text:  edge(impossible[0]),
		})
	}
	return battery, nil
}

// FastpathMicro measures the tiered execution router against the forced
// full pipeline on a battery of fast-path query shapes (single-edge joins,
// a star, a point probe, and an impossible pattern). Both modes must agree
// on row counts — the result-identical contract — and the committed
// BENCH_fastpath.json feeds the bench-compare regression guard.
func (r *Runner) FastpathMicro() (*Report, []FastpathResult, error) {
	s := Scales(r.Mult)[0]
	db, err := r.db(s)
	if err != nil {
		return nil, nil, err
	}
	snap, release := db.Pin()
	defer release()

	rep := &Report{
		ID:    "fastpath",
		Title: fmt.Sprintf("tiered fast-path vs full pipeline (%s)", s.Name),
		PaperClaim: "simple patterns — single R-joins, stars, point probes, and " +
			"provably empty patterns — are answerable from the cluster index and " +
			"fan-signature table alone; routing them around the worker pool, the " +
			"scratch-heap spill, and the dedup projection removes the fixed " +
			"per-query overheads while returning identical results",
		Header: []string{"query", "class", "tier", "rows", "tiered ms", "tier3 ms", "speedup"},
	}
	battery, err := fastpathBattery(snap)
	if err != nil {
		return nil, nil, err
	}
	var results []FastpathResult
	for _, e := range battery {
		p, err := pattern.Parse(e.text)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", e.name, err)
		}
		plan, err := exec.BuildPlanSnapConfig(snap, p, exec.DPS, exec.PlanConfig{})
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", e.name, err)
		}
		tiered, err := r.timeTiered(snap, p, exec.PlanConfig{})
		if err != nil {
			return nil, nil, fmt.Errorf("%s tiered: %w", e.name, err)
		}
		forced, err := r.timeTiered(snap, p, exec.PlanConfig{NoFastPath: true})
		if err != nil {
			return nil, nil, fmt.Errorf("%s forced: %w", e.name, err)
		}
		if tiered.Rows != forced.Rows {
			return nil, nil, fmt.Errorf("bench: %s row counts disagree: tiered %d, forced %d",
				e.name, tiered.Rows, forced.Rows)
		}
		index := ""
		if plan.Fast != nil {
			index = plan.Fast.Index
		}
		res := FastpathResult{
			Name:     e.name,
			Pattern:  e.text,
			Dataset:  s.Name,
			Class:    e.class,
			Tier:     plan.Tier(),
			Rows:     tiered.Rows,
			TieredMS: tiered.ElapsedMS,
			Tier3MS:  forced.ElapsedMS,
			Index:    index,
		}
		if res.TieredMS > 0 {
			res.Speedup = res.Tier3MS / res.TieredMS
		}
		results = append(results, res)
		rep.AddRow(e.name, e.class, fmt.Sprint(res.Tier), fmt.Sprint(res.Rows),
			fmt.Sprintf("%.3f", res.TieredMS), fmt.Sprintf("%.3f", res.Tier3MS),
			fmt.Sprintf("%.1fx", res.Speedup))
	}
	return rep, results, nil
}
