package bench

import (
	"fmt"
	"time"

	"fastmatch/internal/baseline/igmj"
	"fastmatch/internal/baseline/twigstackd"
	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/pattern"
	"fastmatch/internal/twohop"
	"fastmatch/internal/xmark"
)

// Scale names one dataset of the paper's Table 2 ladder, scaled down by
// the substitution documented in DESIGN.md (paper factor 0.2–1.0 →
// 0.34M–1.67M nodes; our default ladder is 20K–100K nodes, same ratios).
type Scale struct {
	// Name is the paper's dataset name (20M … 100M).
	Name string
	// PaperFactor is the XMark factor the paper used.
	PaperFactor float64
	// Nodes is our node budget at multiplier 1.0.
	Nodes int
}

// Scales returns the five-dataset ladder with node budgets scaled by mult.
func Scales(mult float64) []Scale {
	if mult <= 0 {
		mult = 1
	}
	base := []Scale{
		{"20M", 0.2, 20000},
		{"40M", 0.4, 40000},
		{"60M", 0.6, 60000},
		{"80M", 0.8, 80000},
		{"100M", 1.0, 100000},
	}
	for i := range base {
		base[i].Nodes = int(float64(base[i].Nodes) * mult)
	}
	return base
}

// DAGNodes is the node budget of the Figure 5 DAG dataset at multiplier 1
// (the paper uses XMark factor 0.01 ≈ 15.7K nodes because TSD cannot
// handle large graphs).
const DAGNodes = 16000

// Runner builds and caches datasets, databases, and baseline indexes
// across experiments. Not safe for concurrent use.
type Runner struct {
	// Mult scales every node budget (1.0 = the default ladder).
	Mult float64
	// Seed drives data generation.
	Seed int64
	// Reps is the number of timed repetitions per query; the minimum is
	// reported (default 2).
	Reps int
	// BuildParallelism is the worker count used to build the cached
	// experiment databases (0/1 = serial, -1 = GOMAXPROCS). It shortens
	// experiment setup on multi-core hosts; the "build" experiment sweeps
	// its own degrees and ignores it.
	BuildParallelism int

	dbs    map[string]*gdb.DB
	dsets  map[string]*xmark.Dataset
	tsdIx  *twigstackd.Index
	igmjIx *igmj.Index
	dagDB  *gdb.DB
}

// NewRunner returns a Runner with the given size multiplier and seed.
func NewRunner(mult float64, seed int64) *Runner {
	if mult <= 0 {
		mult = 1
	}
	return &Runner{
		Mult:  mult,
		Seed:  seed,
		Reps:  2,
		dbs:   make(map[string]*gdb.DB),
		dsets: make(map[string]*xmark.Dataset),
	}
}

// Close releases every cached database.
func (r *Runner) Close() {
	for _, db := range r.dbs {
		db.Close()
	}
	if r.dagDB != nil {
		r.dagDB.Close()
	}
}

func (r *Runner) dataset(s Scale) *xmark.Dataset {
	if d, ok := r.dsets[s.Name]; ok {
		return d
	}
	d := xmark.Generate(xmark.Config{Nodes: s.Nodes, Seed: r.Seed})
	r.dsets[s.Name] = d
	return d
}

func (r *Runner) db(s Scale) (*gdb.DB, error) {
	if db, ok := r.dbs[s.Name]; ok {
		return db, nil
	}
	db, err := gdb.Build(r.dataset(s).Graph, gdb.Options{PoolBytes: 16 << 20, CodeCacheEntries: 4096, BuildParallelism: r.BuildParallelism})
	if err != nil {
		return nil, err
	}
	// Measure queries under the paper's buffer-to-data ratio: a 1 MB pool
	// against 20–100 MB datasets is ≈1–5%; shrink the pool accordingly for
	// our scaled-down data (floor 64 KB).
	pool := db.SizeBytes() / 50
	if pool < 64<<10 {
		pool = 64 << 10
	}
	if err := db.ResizePool(pool); err != nil {
		db.Close()
		return nil, err
	}
	r.dbs[s.Name] = db
	return db, nil
}

// dagSetup builds the Figure 5 DAG dataset plus all three systems over it.
func (r *Runner) dagSetup() (*gdb.DB, *twigstackd.Index, *igmj.Index, error) {
	if r.dagDB != nil {
		return r.dagDB, r.tsdIx, r.igmjIx, nil
	}
	d := xmark.Generate(xmark.Config{Nodes: int(DAGNodes * r.Mult), Seed: r.Seed, DAG: true})
	db, err := gdb.Build(d.Graph, gdb.Options{PoolBytes: 16 << 20, CodeCacheEntries: 4096, BuildParallelism: r.BuildParallelism})
	if err != nil {
		return nil, nil, nil, err
	}
	pool := db.SizeBytes() / 50
	if pool < 64<<10 {
		pool = 64 << 10
	}
	if err := db.ResizePool(pool); err != nil {
		db.Close()
		return nil, nil, nil, err
	}
	tsd, err := twigstackd.BuildIndex(d.Graph)
	if err != nil {
		db.Close()
		return nil, nil, nil, err
	}
	ig, err := igmj.BuildIndex(d.Graph, 0)
	if err != nil {
		db.Close()
		return nil, nil, nil, err
	}
	r.dagDB, r.tsdIx, r.igmjIx = db, tsd, ig
	return db, tsd, ig, nil
}

// Measure is one timed query execution.
type Measure struct {
	ElapsedMS float64
	IO        int64
	Rows      int
}

// timeQuery measures one engine query (optimization + execution, as in the
// paper's reported elapsed time), cold caches, best of Reps runs.
func (r *Runner) timeQuery(db *gdb.DB, p *pattern.Pattern, algo exec.Algorithm) (Measure, error) {
	best := Measure{ElapsedMS: -1}
	for rep := 0; rep < r.reps(); rep++ {
		db.ClearCaches()
		db.ResetIOStats()
		start := time.Now()
		res, err := exec.Query(db, p, algo)
		if err != nil {
			return Measure{}, err
		}
		el := float64(time.Since(start).Microseconds()) / 1000
		if best.ElapsedMS < 0 || el < best.ElapsedMS {
			best = Measure{ElapsedMS: el, IO: db.IOStats().Logical(), Rows: res.Len()}
		}
	}
	return best, nil
}

// timeINTDP measures INT-DP: DP order selection (Section 4.1) executed
// with IGMJ sort-merge joins.
func (r *Runner) timeINTDP(db *gdb.DB, ix *igmj.Index, p *pattern.Pattern) (Measure, error) {
	best := Measure{ElapsedMS: -1}
	snap, release := db.Pin()
	defer release()
	for rep := 0; rep < r.reps(); rep++ {
		db.ClearCaches()
		ix.ResetIOStats()
		start := time.Now()
		bind, err := optimizer.Bind(snap, p)
		if err != nil {
			return Measure{}, err
		}
		// IGMJ executes binary R-join plans only; keep WCOJ steps out.
		igmjParams := optimizer.DefaultCostParams()
		igmjParams.NoWCOJ = true
		plan, err := optimizer.OptimizeDP(bind, igmjParams)
		if err != nil {
			return Measure{}, err
		}
		res, err := igmj.Run(ix, plan)
		if err != nil {
			return Measure{}, err
		}
		el := float64(time.Since(start).Microseconds()) / 1000
		if best.ElapsedMS < 0 || el < best.ElapsedMS {
			best = Measure{ElapsedMS: el, IO: ix.IOStats().Logical(), Rows: res.Len()}
		}
	}
	return best, nil
}

// timeTSD measures the TwigStackD baseline.
func (r *Runner) timeTSD(ix *twigstackd.Index, p *pattern.Pattern) (Measure, error) {
	best := Measure{ElapsedMS: -1}
	for rep := 0; rep < r.reps(); rep++ {
		start := time.Now()
		res, err := twigstackd.Match(ix, p)
		if err != nil {
			return Measure{}, err
		}
		el := float64(time.Since(start).Microseconds()) / 1000
		if best.ElapsedMS < 0 || el < best.ElapsedMS {
			best = Measure{ElapsedMS: el, Rows: res.Len()}
		}
	}
	return best, nil
}

func (r *Runner) reps() int {
	if r.Reps <= 0 {
		return 2
	}
	return r.Reps
}

// CoverStats exposes the 2-hop statistics of one scale (for Table 2).
func (r *Runner) CoverStats(s Scale) twohop.Stats {
	g := r.dataset(s).Graph
	return twohop.Compute(g, twohop.Options{}).Stats()
}

// All runs every experiment in DESIGN.md's index, in order.
func (r *Runner) All() ([]*Report, error) {
	type expFn struct {
		name string
		fn   func() (*Report, error)
	}
	exps := []expFn{
		{"table2", r.Table2},
		{"fig5a", r.Fig5a},
		{"fig5b", r.Fig5b},
		{"fig6a", r.Fig6a},
		{"fig6b", r.Fig6b},
		{"fig6c", r.Fig6c},
		{"fig6d", r.Fig6d},
		{"fig7a", r.Fig7a},
		{"fig7b", r.Fig7b},
		{"fig7c", r.Fig7c},
		{"iocost", r.IOCost},
	}
	var out []*Report
	for _, e := range exps {
		rep, err := e.fn()
		if err != nil {
			return out, fmt.Errorf("bench: %s: %w", e.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// ByID dispatches one experiment by its DESIGN.md ID.
func (r *Runner) ByID(id string) (*Report, error) {
	switch id {
	case "table2":
		return r.Table2()
	case "fig5a":
		return r.Fig5a()
	case "fig5b":
		return r.Fig5b()
	case "fig6a":
		return r.Fig6a()
	case "fig6b":
		return r.Fig6b()
	case "fig6c":
		return r.Fig6c()
	case "fig6d":
		return r.Fig6d()
	case "fig7a":
		return r.Fig7a()
	case "fig7b":
		return r.Fig7b()
	case "fig7c":
		return r.Fig7c()
	case "iocost":
		return r.IOCost()
	case "ablation-order":
		return r.AblationCenterOrder()
	case "ablation-wcache":
		return r.AblationWTableCache()
	case "ablation-pool":
		return r.AblationPoolSize()
	case "ablation-merged":
		return r.AblationDPSMerged()
	case "ablation-naive":
		return r.AblationNaive()
	case "rjoin":
		rep, _, err := r.RJoinMicro()
		return rep, err
	case "build":
		rep, _, err := r.BuildMicro()
		return rep, err
	case "wcoj":
		rep, _, err := r.WCOJMicro()
		return rep, err
	case "fastpath":
		rep, _, err := r.FastpathMicro()
		return rep, err
	case "reach":
		rep, _, err := r.ReachMicro()
		return rep, err
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q", id)
	}
}
