package bench

import (
	"fmt"
	"runtime"
)

// Env records the machine context a benchmark artifact was produced under,
// so numbers in BENCH_*.json / bench_results.txt can be compared across
// runs with their parallelism in view: operator "workers" sweeps and build
// parallelism mean something very different on a 1-CPU box than on 16.
type Env struct {
	// GOMAXPROCS is the scheduler's processor limit at measurement time.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// GoVersion, GOOS, and GOARCH identify the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

// CurrentEnv captures the running process's environment.
func CurrentEnv() Env {
	return Env{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// String renders the one-line header stamped on text artifacts.
func (e Env) String() string {
	return fmt.Sprintf("env: GOMAXPROCS=%d NumCPU=%d %s %s/%s",
		e.GOMAXPROCS, e.NumCPU, e.GoVersion, e.GOOS, e.GOARCH)
}
