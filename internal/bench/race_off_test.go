//go:build !race

package bench

// raceEnabled reports whether the race detector is instrumenting this
// build. Elapsed-time shape assertions are skipped under -race: the
// instrumentation slows the systems by different factors, so relative
// timings no longer reflect the algorithms.
const raceEnabled = false
