package bench

import (
	"context"
	"fmt"
	"time"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/rjoin"
	"fastmatch/internal/workload"
)

// WCOJResult is one machine-readable hybrid-vs-binary measurement, the row
// schema of BENCH_wcoj.json.
type WCOJResult struct {
	// Name is the workload name (CY1–CY5) and Pattern its text form.
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// Dataset is the ladder dataset the pattern ran on.
	Dataset string `json:"dataset"`
	// Rows is the result cardinality (identical across all three plans by
	// the differential contract).
	Rows int `json:"rows"`
	// HybridMS is the hybrid DPS planner's execution time (it may choose a
	// WCOJ first step or a binary pipeline, whichever costs less);
	// BinaryMS forces the binary pipeline (planning with NoWCOJ);
	// WCOJMS forces one full-pattern multiway join.
	HybridMS float64 `json:"hybrid_ms"`
	BinaryMS float64 `json:"binary_ms"`
	WCOJMS   float64 `json:"wcoj_ms"`
	// HybridPicksWCOJ reports whether the hybrid plan opened with a WCOJ
	// step.
	HybridPicksWCOJ bool `json:"hybrid_picks_wcoj"`
	// Seeks and IterNexts are the forced-WCOJ run's leapfrog iterator
	// counters: sorted lists opened for intersection and candidate values
	// produced.
	Seeks     int64 `json:"seeks"`
	IterNexts int64 `json:"iter_nexts"`
}

// timePlan measures executing one prebuilt plan, cold caches, best of Reps.
func (r *Runner) timePlan(db *gdb.DB, snap *gdb.Snap, plan *optimizer.Plan) (Measure, error) {
	ctx := context.Background()
	best := Measure{ElapsedMS: -1}
	for rep := 0; rep < r.reps(); rep++ {
		db.ClearCaches()
		db.ResetIOStats()
		start := time.Now()
		res, err := exec.RunSnapConfig(ctx, snap, plan, exec.RunConfig{})
		if err != nil {
			return Measure{}, err
		}
		el := float64(time.Since(start).Microseconds()) / 1000
		if best.ElapsedMS < 0 || el < best.ElapsedMS {
			best = Measure{ElapsedMS: el, IO: db.IOStats().Logical(), Rows: res.Len()}
		}
	}
	return best, nil
}

// WCOJMicro measures the worst-case-optimal multiway R-join against the
// binary join pipeline on the cyclic workload battery (CY1–CY5): the
// hybrid DPS plan (free to pick either), the forced binary pipeline
// (planned with NoWCOJ), and the forced full-pattern WCOJ. All three must
// return identical row counts. It returns the paper-style report plus the
// machine-readable rows for BENCH_wcoj.json.
func (r *Runner) WCOJMicro() (*Report, []WCOJResult, error) {
	s := Scales(r.Mult)[0]
	db, err := r.db(s)
	if err != nil {
		return nil, nil, err
	}
	snap, release := db.Pin()
	defer release()

	rep := &Report{
		ID:    "wcoj",
		Title: fmt.Sprintf("WCOJ vs binary join pipeline on cyclic patterns (%s)", s.Name),
		PaperClaim: "cyclic pattern cores are where binary join pipelines produce " +
			"intermediate results larger than the output; a worst-case-optimal " +
			"multiway R-join bounds them by the AGM bound and the hybrid " +
			"optimizer picks it when cheaper",
		Header: []string{"query", "rows", "hybrid ms", "binary ms", "wcoj ms", "hybrid picks", "seeks", "nexts"},
	}
	var results []WCOJResult
	for _, w := range workload.Cyclic() {
		bind, err := optimizer.Bind(snap, w.Pattern)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		hybridPlan, err := optimizer.OptimizeDPS(bind, optimizer.DefaultCostParams())
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		binParams := optimizer.DefaultCostParams()
		binParams.NoWCOJ = true
		binaryPlan, err := optimizer.OptimizeDPS(bind, binParams)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		wcojPlan, err := optimizer.OptimizeWCOJ(bind, optimizer.DefaultCostParams())
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}

		hybrid, err := r.timePlan(db, snap, hybridPlan)
		if err != nil {
			return nil, nil, fmt.Errorf("%s hybrid: %w", w.Name, err)
		}
		binary, err := r.timePlan(db, snap, binaryPlan)
		if err != nil {
			return nil, nil, fmt.Errorf("%s binary: %w", w.Name, err)
		}
		wcoj, err := r.timePlan(db, snap, wcojPlan)
		if err != nil {
			return nil, nil, fmt.Errorf("%s wcoj: %w", w.Name, err)
		}
		if hybrid.Rows != binary.Rows || hybrid.Rows != wcoj.Rows {
			return nil, nil, fmt.Errorf("bench: %s row counts disagree: hybrid %d, binary %d, wcoj %d",
				w.Name, hybrid.Rows, binary.Rows, wcoj.Rows)
		}
		// One instrumented forced-WCOJ run for the iterator counters.
		rt := rjoin.NewRuntime(1)
		if _, err := exec.RunSnapConfig(context.Background(), snap, wcojPlan, exec.RunConfig{Runtime: rt}); err != nil {
			return nil, nil, fmt.Errorf("%s wcoj counters: %w", w.Name, err)
		}
		rs := rt.Stats()

		picks := len(hybridPlan.Steps) > 0 && hybridPlan.Steps[0].Kind == optimizer.StepWCOJ
		res := WCOJResult{
			Name:            w.Name,
			Pattern:         w.Pattern.String(),
			Dataset:         s.Name,
			Rows:            hybrid.Rows,
			HybridMS:        hybrid.ElapsedMS,
			BinaryMS:        binary.ElapsedMS,
			WCOJMS:          wcoj.ElapsedMS,
			HybridPicksWCOJ: picks,
			Seeks:           rs.Seeks,
			IterNexts:       rs.IterNexts,
		}
		results = append(results, res)
		rep.AddRow(w.Name, fmt.Sprint(res.Rows),
			fmt.Sprintf("%.2f", res.HybridMS), fmt.Sprintf("%.2f", res.BinaryMS),
			fmt.Sprintf("%.2f", res.WCOJMS), fmt.Sprint(picks),
			fmt.Sprint(res.Seeks), fmt.Sprint(res.IterNexts))
	}
	return rep, results, nil
}
