// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's Section 6 on the scaled-down XMark-substitute
// datasets, printing paper-style rows (see DESIGN.md's experiment index and
// EXPERIMENTS.md for paper-vs-measured). Used by cmd/fgmbench and by the
// repository's top-level benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID matches DESIGN.md's experiment index (e.g. "table2", "fig5a").
	ID string
	// Title describes the artifact.
	Title string
	// PaperClaim summarises the shape the paper reports for this artifact.
	PaperClaim string
	// Header names the columns; Rows are formatted cells.
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(w, "   paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "   "+strings.TrimRight(sb.String(), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// ms formats a duration in milliseconds.
func ms(v float64) string { return fmt.Sprintf("%.2f", v) }
