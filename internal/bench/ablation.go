package bench

import (
	"fmt"
	"time"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/twohop"
	"fastmatch/internal/workload"
)

// Ablation experiments for the design choices DESIGN.md calls out. They are
// not paper artifacts; run them with `fgmbench -exp ablations` or by ID.

// AblationIDs lists the ablation experiment IDs.
var AblationIDs = []string{"ablation-order", "ablation-wcache", "ablation-pool", "ablation-merged", "ablation-naive"}

// Ablations runs every ablation.
func (r *Runner) Ablations() ([]*Report, error) {
	var out []*Report
	for _, id := range AblationIDs {
		rep, err := r.ByID(id)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// ablationScale is the mid ladder point, enough to show the effects without
// slow rebuilds (each ablation builds several database variants).
func (r *Runner) ablationScale() Scale { return Scales(r.Mult)[1] }

// AblationCenterOrder compares 2-hop center orderings: cover size, build
// time, and query time over the Figure 7(c) pattern.
func (r *Runner) AblationCenterOrder() (*Report, error) {
	rep := &Report{
		ID:     "ablation-order",
		Title:  "2-hop center ordering: cover size, build and query cost",
		Header: []string{"order", "|H|", "|H|/|V|", "build ms", "query ms", "query io"},
	}
	g := r.dataset(r.ablationScale()).Graph
	w := workload.ScalabilityGraph()
	for _, ord := range []twohop.CenterOrder{twohop.OrderDegreeProduct, twohop.OrderTopological, twohop.OrderRandom} {
		start := time.Now()
		cover := twohop.Compute(g, twohop.Options{Order: ord, Seed: 7})
		db, err := gdb.BuildFromIndex(g, cover, gdb.Options{CodeCacheEntries: 4096})
		if err != nil {
			return nil, err
		}
		buildMS := float64(time.Since(start).Microseconds()) / 1000
		m, err := r.timeQuery(db, w.Pattern, exec.DPS)
		db.Close()
		if err != nil {
			return nil, err
		}
		st := cover.Stats()
		rep.AddRow(ord.String(), fmt.Sprintf("%d", st.Size), fmt.Sprintf("%.2f", st.Ratio),
			ms(buildMS), ms(m.ElapsedMS), fmt.Sprintf("%d", m.IO))
	}
	return rep, nil
}

// AblationWTableCache measures the in-memory W-table cache (Section 3.4
// keeps frequently used W entries in memory).
func (r *Runner) AblationWTableCache() (*Report, error) {
	rep := &Report{
		ID:     "ablation-wcache",
		Title:  "W-table memory cache on/off: query cost",
		Header: []string{"config", "query ms", "query io"},
	}
	g := r.dataset(r.ablationScale()).Graph
	w := workload.ScalabilityGraph()
	for _, disabled := range []bool{false, true} {
		db, err := gdb.Build(g, gdb.Options{DisableWTableCache: disabled, CodeCacheEntries: 4096})
		if err != nil {
			return nil, err
		}
		m, err := r.timeQuery(db, w.Pattern, exec.DPS)
		db.Close()
		if err != nil {
			return nil, err
		}
		name := "cache on"
		if disabled {
			name = "cache off"
		}
		rep.AddRow(name, ms(m.ElapsedMS), fmt.Sprintf("%d", m.IO))
	}
	return rep, nil
}

// AblationPoolSize sweeps the buffer pool size (the paper fixes 1 MB;
// physical I/O shows the working-set crossover).
func (r *Runner) AblationPoolSize() (*Report, error) {
	rep := &Report{
		ID:     "ablation-pool",
		Title:  "buffer pool size sweep: logical vs physical I/O",
		Header: []string{"pool", "query ms", "logical io", "phys reads", "phys writes"},
	}
	g := r.dataset(r.ablationScale()).Graph
	w := workload.ScalabilityGraph()
	for _, poolBytes := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		db, err := gdb.Build(g, gdb.Options{PoolBytes: 16 << 20, CodeCacheEntries: 4096})
		if err != nil {
			return nil, err
		}
		if err := db.ResizePool(poolBytes); err != nil {
			db.Close()
			return nil, err
		}
		var m Measure
		var stats struct{ reads, writes int64 }
		for rep := 0; rep < r.reps(); rep++ {
			db.ClearCaches()
			db.ResetIOStats()
			start := time.Now()
			res, err := exec.Query(db, w.Pattern, exec.DPS)
			if err != nil {
				db.Close()
				return nil, err
			}
			el := float64(time.Since(start).Microseconds()) / 1000
			if m.ElapsedMS == 0 || el < m.ElapsedMS {
				io := db.IOStats()
				m = Measure{ElapsedMS: el, IO: io.Logical(), Rows: res.Len()}
				stats.reads, stats.writes = io.Reads, io.Writes
			}
		}
		db.Close()
		rep.AddRow(fmt.Sprintf("%dKB", poolBytes>>10), ms(m.ElapsedMS),
			fmt.Sprintf("%d", m.IO), fmt.Sprintf("%d", stats.reads), fmt.Sprintf("%d", stats.writes))
	}
	return rep, nil
}

// AblationDPSMerged compares full DPS (O(5^n) statuses) with the merged-B
// variant (O(3^n)): planning time, estimated cost, and actual execution.
func (r *Runner) AblationDPSMerged() (*Report, error) {
	rep := &Report{
		ID:    "ablation-merged",
		Title: "DPS vs DPS-merged (B_in∪B_out): planning and execution",
		Header: []string{"query", "plan µs (DPS)", "plan µs (merged)",
			"exec ms (DPS)", "exec ms (merged)", "io (DPS)", "io (merged)"},
	}
	db, err := r.db(r.ablationScale())
	if err != nil {
		return nil, err
	}
	snap, release := db.Pin()
	defer release()
	for _, w := range workload.Graphs5B() {
		bind, err := optimizer.Bind(snap, w.Pattern)
		if err != nil {
			return nil, err
		}
		startFull := time.Now()
		if _, err := optimizer.OptimizeDPS(bind, optimizer.DefaultCostParams()); err != nil {
			return nil, err
		}
		fullPlanUS := time.Since(startFull).Microseconds()
		startMerged := time.Now()
		if _, err := optimizer.OptimizeDPSMerged(bind, optimizer.DefaultCostParams()); err != nil {
			return nil, err
		}
		mergedPlanUS := time.Since(startMerged).Microseconds()

		mFull, err := r.timeQuery(db, w.Pattern, exec.DPS)
		if err != nil {
			return nil, err
		}
		mMerged, err := r.timeQuery(db, w.Pattern, exec.DPSMerged)
		if err != nil {
			return nil, err
		}
		if mFull.Rows != mMerged.Rows {
			return nil, fmt.Errorf("ablation-merged %s: row mismatch %d vs %d", w.Name, mFull.Rows, mMerged.Rows)
		}
		rep.AddRow(w.Name, fmt.Sprintf("%d", fullPlanUS), fmt.Sprintf("%d", mergedPlanUS),
			ms(mFull.ElapsedMS), ms(mMerged.ElapsedMS),
			fmt.Sprintf("%d", mFull.IO), fmt.Sprintf("%d", mMerged.IO))
	}
	return rep, nil
}

// AblationNaive compares the engine (DPS) against the index-free naive
// matcher (backtracking over a transitive closure) on the smallest ladder
// dataset — the "why build all this" baseline.
func (r *Runner) AblationNaive() (*Report, error) {
	rep := &Report{
		ID:     "ablation-naive",
		Title:  "engine (DPS) vs naive transitive-closure matcher, 20M dataset",
		Header: []string{"query", "DPS ms", "naive ms", "speedup", "rows"},
	}
	s := Scales(r.Mult)[0]
	db, err := r.db(s)
	if err != nil {
		return nil, err
	}
	g := r.dataset(s).Graph
	ws := []workload.Workload{
		workload.ScalabilityPath(),
		workload.ScalabilityTree(),
		workload.ScalabilityGraph(),
	}
	for _, w := range ws {
		m, err := r.timeQuery(db, w.Pattern, exec.DPS)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		naive, err := exec.NaiveMatch(g, w.Pattern)
		if err != nil {
			return nil, err
		}
		naiveMS := float64(time.Since(start).Microseconds()) / 1000
		if naive.Len() != m.Rows {
			return nil, fmt.Errorf("ablation-naive %s: naive %d rows != engine %d", w.Name, naive.Len(), m.Rows)
		}
		rep.AddRow(w.Name, ms(m.ElapsedMS), ms(naiveMS),
			fmt.Sprintf("%.1fx", naiveMS/m.ElapsedMS), fmt.Sprintf("%d", m.Rows))
	}
	return rep, nil
}
