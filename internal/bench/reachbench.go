package bench

import (
	"fmt"
	"math/rand"
	"time"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/workload"
)

// ReachResult is one machine-readable reachability-backend measurement,
// the row schema of BENCH_reach.json.
type ReachResult struct {
	// Backend is the registered reach backend name ("twohop", "pll", ...).
	Backend string `json:"backend"`
	// Dataset is the ladder dataset the measurement ran on.
	Dataset string `json:"dataset"`
	// BuildMS is the index build time (best of Reps).
	BuildMS float64 `json:"build_ms"`
	// Size is the labeling size |H|; Ratio is |H|/|V|.
	Size  int     `json:"size"`
	Ratio float64 `json:"ratio"`
	// ReachesNS is the mean latency of one Reaches probe over a fixed
	// random pair sample (best of Reps over the whole sample).
	ReachesNS float64 `json:"reaches_ns"`
	// QueryMS / QueryIO / QueryRows measure the Figure 7(c) pattern on a
	// database built from this backend's labeling (best of Reps, cold
	// caches) — the end-to-end cost of the codes the backend produces.
	QueryMS   float64 `json:"query_ms"`
	QueryIO   int64   `json:"query_io"`
	QueryRows int     `json:"query_rows"`
	// Agreed reports that every sampled Reaches probe matched the first
	// backend's answer (cross-backend equivalence on this dataset).
	Agreed bool `json:"agreed"`
}

// reachSample is the fixed probe set: random pairs plus all pairs among a
// small node sample, the same shape as the build experiment's crosscheck.
func reachSample(n int, seed int64) [][2]graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]graph.NodeID, 0, 20000+60*60)
	for i := 0; i < 20000; i++ {
		pairs = append(pairs, [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))})
	}
	sample := make([]graph.NodeID, 60)
	for i := range sample {
		sample[i] = graph.NodeID(rng.Intn(n))
	}
	for _, u := range sample {
		for _, v := range sample {
			pairs = append(pairs, [2]graph.NodeID{u, v})
		}
	}
	return pairs
}

// ReachMicro compares every registered reachability backend on the
// smallest ladder dataset: index build time, labeling size, raw Reaches
// probe latency, and the Figure 7(c) pattern query over a database built
// from each backend's codes. Every backend's sampled Reaches answers are
// crosschecked against the first backend's; a disagreement fails the
// experiment. Returns the report plus the rows for BENCH_reach.json.
func (r *Runner) ReachMicro() (*Report, []ReachResult, error) {
	s := Scales(r.Mult)[0]
	g := r.dataset(s).Graph
	w := workload.ScalabilityGraph()
	pairs := reachSample(g.NumNodes(), r.Seed)

	rep := &Report{
		ID:    "reach",
		Title: fmt.Sprintf("reachability-index backends (%s dataset)", s.Name),
		PaperClaim: "the engine consumes reachability labelings through a backend interface; " +
			"any labeling with the 2-hop query shape (SCC-condensed 2-hop cover, pruned " +
			"landmark labeling) answers identical queries, trading build time against index size",
		Header: []string{"backend", "build ms", "|H|", "|H|/|V|", "reaches ns", "query ms", "query io", "rows", "agreed"},
	}

	var results []ReachResult
	var truth []bool // first backend's sampled answers
	for _, name := range reach.Names() {
		b, err := reach.Lookup(name)
		if err != nil {
			return nil, nil, err
		}
		res := ReachResult{Backend: name, Dataset: s.Name, BuildMS: -1, Agreed: true}
		var idx reach.Index
		for rep := 0; rep < r.reps(); rep++ {
			t0 := time.Now()
			built := b.Build(g, reach.Options{Parallelism: r.BuildParallelism})
			el := float64(time.Since(t0).Microseconds()) / 1e3
			if res.BuildMS < 0 || el < res.BuildMS {
				res.BuildMS, idx = el, built
			}
		}
		st := idx.Stats()
		res.Size, res.Ratio = st.Size, st.Ratio

		answers := make([]bool, len(pairs))
		bestNS := -1.0
		for rep := 0; rep < r.reps(); rep++ {
			t0 := time.Now()
			for i, p := range pairs {
				answers[i] = idx.Reaches(p[0], p[1])
			}
			ns := float64(time.Since(t0).Nanoseconds()) / float64(len(pairs))
			if bestNS < 0 || ns < bestNS {
				bestNS = ns
			}
		}
		res.ReachesNS = bestNS
		if truth == nil {
			truth = answers
		} else {
			for i := range answers {
				if answers[i] != truth[i] {
					res.Agreed = false
					return nil, nil, fmt.Errorf("bench: reach: %s disagrees with %s on Reaches(%d,%d)",
						name, results[0].Backend, pairs[i][0], pairs[i][1])
				}
			}
		}

		db, err := gdb.BuildFromIndex(g, idx, gdb.Options{PoolBytes: 16 << 20, CodeCacheEntries: 4096})
		if err != nil {
			return nil, nil, err
		}
		m, err := r.timeQuery(db, w.Pattern, exec.DPS)
		db.Close()
		if err != nil {
			return nil, nil, err
		}
		res.QueryMS, res.QueryIO, res.QueryRows = m.ElapsedMS, m.IO, m.Rows

		results = append(results, res)
		rep.AddRow(name, ms(res.BuildMS), fmt.Sprint(res.Size), fmt.Sprintf("%.3f", res.Ratio),
			fmt.Sprintf("%.0f", res.ReachesNS), ms(res.QueryMS), fmt.Sprint(res.QueryIO),
			fmt.Sprint(res.QueryRows), fmt.Sprint(res.Agreed))
	}
	// Same pattern answered from every backend's codes — row counts must agree.
	for _, res := range results[1:] {
		if res.QueryRows != results[0].QueryRows {
			return nil, nil, fmt.Errorf("bench: reach: %s query returned %d rows, %s returned %d",
				res.Backend, res.QueryRows, results[0].Backend, results[0].QueryRows)
		}
	}
	return rep, results, nil
}
