package bench

import (
	"io"
	"strconv"
	"testing"
)

// TestAllExperimentsSmoke runs every experiment end-to-end at a small scale
// and sanity-checks report structure plus the key expected shapes.
func TestAllExperimentsSmoke(t *testing.T) {
	r := NewRunner(0.1, 1)
	defer r.Close()
	reports, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 11 {
		t.Fatalf("got %d reports, want 11", len(reports))
	}
	byID := map[string]*Report{}
	for _, rep := range reports {
		byID[rep.ID] = rep
		if rep.Title == "" || len(rep.Header) == 0 || len(rep.Rows) == 0 {
			t.Fatalf("report %s incomplete", rep.ID)
		}
		rep.Print(io.Discard)
	}
	// Table 2 has 5 scales.
	if len(byID["table2"].Rows) != 5 {
		t.Fatalf("table2 rows = %d", len(byID["table2"].Rows))
	}
}

// TestExpectedShapes asserts the paper's qualitative findings at half
// scale: TSD is slower than DP in aggregate, and DPS needs no more I/O
// than DP in aggregate over the graph-pattern batteries.
func TestExpectedShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(0.5, 1)
	defer r.Close()

	for _, id := range []string{"fig5a", "fig5b"} {
		rep, err := r.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if raceEnabled {
			// Race instrumentation slows each system by a different factor,
			// so elapsed-time shapes are not meaningful; the experiments
			// still run above to keep the harness itself race-checked.
			continue
		}
		var tsdTotal, dpTotal float64
		for _, row := range rep.Rows {
			tsd, _ := strconv.ParseFloat(row[1], 64)
			dp, _ := strconv.ParseFloat(row[3], 64)
			tsdTotal += tsd
			dpTotal += dp
		}
		if tsdTotal < dpTotal {
			t.Errorf("%s: TSD total %.1fms faster than DP total %.1fms", id, tsdTotal, dpTotal)
		}
	}

	rep, err := r.ByID("iocost")
	if err != nil {
		t.Fatal(err)
	}
	var dpIO, dpsIO float64
	for _, row := range rep.Rows {
		dp, _ := strconv.ParseFloat(row[1], 64)
		dps, _ := strconv.ParseFloat(row[2], 64)
		dpIO += dp
		dpsIO += dps
	}
	if dpsIO > dpIO {
		t.Errorf("iocost: DPS aggregate I/O %.0f above DP %.0f", dpsIO, dpIO)
	}
}

func TestByIDUnknown(t *testing.T) {
	r := NewRunner(0.1, 1)
	defer r.Close()
	if _, err := r.ByID("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestScalesLadder(t *testing.T) {
	s := Scales(1)
	if len(s) != 5 || s[0].Nodes != 20000 || s[4].Nodes != 100000 {
		t.Fatalf("ladder = %+v", s)
	}
	h := Scales(0.5)
	if h[0].Nodes != 10000 {
		t.Fatalf("half ladder = %+v", h)
	}
	if d := Scales(0); d[0].Nodes != 20000 {
		t.Fatalf("zero mult should default: %+v", d)
	}
}

func TestReportPrint(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", PaperClaim: "c", Header: []string{"a", "bb"}}
	rep.AddRow("1", "2")
	rep.Print(io.Discard)
	if len(rep.Rows) != 1 {
		t.Fatal("AddRow failed")
	}
}

// TestAblationsSmoke runs every ablation at small scale.
func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(0.1, 1)
	defer r.Close()
	reports, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(AblationIDs) {
		t.Fatalf("got %d ablation reports, want %d", len(reports), len(AblationIDs))
	}
	for _, rep := range reports {
		if len(rep.Rows) == 0 {
			t.Fatalf("ablation %s produced no rows", rep.ID)
		}
		rep.Print(io.Discard)
	}
}
