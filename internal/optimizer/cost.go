package optimizer

// CostParams holds the I/O cost parameters of Table 1, in abstract page-
// access units. The planners only compare plans against each other, so the
// absolute scale is irrelevant; the ratios steer order selection.
type CostParams struct {
	// SearchB is IO_B: one search over a B+-tree (index height).
	SearchB float64
	// Scan is IO_SC: scanning one page of a file.
	Scan float64
	// CodeFetch is the cost of retrieving one node's graph codes from a
	// base table (after the IO_B search).
	CodeFetch float64
	// IndexPerNode is IO^X_{X→Y} / IO^Y_{X→Y}: the average cost of
	// producing one node from the cluster-based R-join index.
	IndexPerNode float64
	// CPU is the per-row in-memory processing cost (intersections,
	// hashing); small relative to a page access.
	CPU float64
	// NoWCOJ disables seeding the planners with worst-case-optimal
	// multiway-join steps for cyclic cores, forcing pure binary pipelines.
	// Benchmarks use it to measure the hybrid against the binary baseline
	// on identical statistics.
	NoWCOJ bool
}

// DefaultCostParams returns parameters calibrated against the storage
// engine's measured per-row page traffic: a semijoin filter costs ≈3
// logical accesses per row (B+-tree descent plus a code record read), a
// fetch costs ≈2 logical accesses per produced tuple (center set plus
// cluster record reads, amortised over clustered leaves), and every step
// re-materialises its temporal table (the CPU/spill share per row).
func DefaultCostParams() CostParams {
	return CostParams{
		SearchB:      2,
		Scan:         1,
		CodeFetch:    1,
		IndexPerNode: 2,
		CPU:          0.05,
	}
}

// filterCost is one shared semijoin scan over rows temporal rows with
// nConds conditions: one code retrieval per row plus per-condition
// intersections (Remark 3.1: the retrieval is shared).
func (c CostParams) filterCost(rows float64, nConds int) float64 {
	return (c.SearchB+c.CodeFetch)*rows + c.CPU*rows*float64(nConds)
}

// fetchCost is the Fetch step of HPSJ+: producing outRows result tuples
// from the cluster index (Eq. 11/12's second term).
func (c CostParams) fetchCost(inRows, outRows float64) float64 {
	return c.IndexPerNode*outRows + c.CPU*inRows
}

// selectionCost is a self R-join over rows tuples; uncachedSides ∈ {0,1,2}
// counts the condition sides whose graph codes are not already cached
// (each uncached side costs a base-table code retrieval per row).
func (c CostParams) selectionCost(rows float64, uncachedSides int) float64 {
	return float64(uncachedSides)*(c.SearchB+c.CodeFetch)*rows + c.CPU*rows
}

// hpsjCost is an R-join of two base tables (Algorithm 1): one W-table
// search, two cluster lookups per center, and per-output-tuple production.
func (c CostParams) hpsjCost(centers, outRows float64) float64 {
	return c.SearchB + 2*c.SearchB*centers + c.IndexPerNode*outRows
}
