package optimizer

import (
	"fmt"
	"math"
	"math/bits"
)

// OptimizeDP selects an R-join order by dynamic programming over left-deep
// trees (Section 4.1): the first step is an HPSJ between two base tables;
// every later step is a full filter+fetch R-join against a base table, or a
// selection when both sides of the condition are already bound.
func OptimizeDP(b *Binding, params CostParams) (*Plan, error) {
	pat := b.Pattern
	m := pat.NumEdges()
	if m > 30 {
		return nil, fmt.Errorf("optimizer: pattern with %d edges too large for DP", m)
	}
	full := (uint32(1) << m) - 1

	type state struct {
		cost float64
		rows float64
		prev uint32
		step Step
		set  bool
	}
	states := make(map[uint32]*state, 1<<m)

	// Node masks per edge for quick bound-set computation.
	nodeMask := make([]uint32, m)
	for e, pe := range pat.Edges {
		nodeMask[e] = 1<<uint(pe.From) | 1<<uint(pe.To)
	}
	boundOf := func(mask uint32) uint32 {
		var v uint32
		for e := 0; e < m; e++ {
			if mask&(1<<uint(e)) != 0 {
				v |= nodeMask[e]
			}
		}
		return v
	}

	// Seed: one HPSJ per edge.
	for e := 0; e < m; e++ {
		mask := uint32(1) << uint(e)
		states[mask] = &state{
			cost: params.hpsjCost(b.WCount[e], b.JS[e]),
			rows: b.JS[e],
			step: Step{Kind: StepHPSJ, Edges: []int{e}},
			set:  true,
		}
	}
	// Seed: one WCOJ step per cyclic core, competing against every binary
	// path to the same edge set (the seed's rows are the same independence
	// estimate a binary path computes, so downstream costs compose
	// identically).
	for _, s := range wcojSeeds(b, params) {
		cur := states[s.mask]
		if cur == nil || !cur.set || s.cost < cur.cost {
			states[s.mask] = &state{
				cost: s.cost,
				rows: s.rows,
				step: Step{Kind: StepWCOJ, Edges: s.edges, VarOrder: s.order},
				set:  true,
			}
		}
	}

	// Expand masks in ascending popcount order.
	masks := make([]uint32, 0, 1<<m)
	for mask := uint32(1); mask <= full; mask++ {
		masks = append(masks, mask)
	}
	// Masks are naturally processed in increasing numeric order; ensure
	// popcount monotonicity by iterating popcount levels.
	for level := 1; level < m; level++ {
		for _, mask := range masks {
			if bits.OnesCount32(mask) != level {
				continue
			}
			st := states[mask]
			if st == nil || !st.set {
				continue
			}
			bound := boundOf(mask)
			for e := 0; e < m; e++ {
				bit := uint32(1) << uint(e)
				if mask&bit != 0 {
					continue
				}
				pe := pat.Edges[e]
				fromBound := bound&(1<<uint(pe.From)) != 0
				toBound := bound&(1<<uint(pe.To)) != 0
				if !fromBound && !toBound {
					continue // left-deep plans extend the bound set only
				}
				var cost, rows float64
				var step Step
				switch {
				case fromBound && toBound:
					rows = st.rows * b.sel(e)
					cost = st.cost + params.selectionCost(st.rows, 2)
					step = Step{Kind: StepSelection, Edges: []int{e}}
				case fromBound:
					rows = st.rows * ratio(b.JS[e], b.Ext[pe.From]) // Eq. 11
					cost = st.cost + params.filterCost(st.rows, 1) + params.fetchCost(st.rows, rows)
					step = Step{Kind: StepJoinFilterFetch, Edges: []int{e}}
				default: // toBound
					rows = st.rows * ratio(b.JS[e], b.Ext[pe.To]) // Eq. 12
					cost = st.cost + params.filterCost(st.rows, 1) + params.fetchCost(st.rows, rows)
					step = Step{Kind: StepJoinFilterFetch, Edges: []int{e}}
				}
				next := mask | bit
				cur := states[next]
				if cur == nil {
					cur = &state{}
					states[next] = cur
				}
				if !cur.set || cost < cur.cost {
					cur.cost, cur.rows, cur.prev, cur.step, cur.set = cost, rows, mask, step, true
				}
			}
		}
	}

	final := states[full]
	if final == nil || !final.set {
		return nil, fmt.Errorf("optimizer: DP found no complete plan (pattern disconnected?)")
	}
	// Reconstruct, annotating each step with its cumulative estimates.
	var rev []Step
	for mask := full; mask != 0; {
		st := states[mask]
		step := st.step
		step.EstCost, step.EstRows = st.cost, st.rows
		rev = append(rev, step)
		mask = st.prev
	}
	plan := &Plan{
		Binding:       b,
		EstimatedCost: final.cost,
		EstimatedRows: final.rows,
		Algorithm:     "DP",
	}
	for i := len(rev) - 1; i >= 0; i-- {
		plan.Steps = append(plan.Steps, rev[i])
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: DP produced invalid plan: %w", err)
	}
	return plan, nil
}

// ratio returns num/den, or 0 for an empty denominator (an empty extent
// makes the whole result empty).
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// sanity guard referenced by tests.
var _ = math.Inf
