// Package optimizer implements the paper's query optimization (Section 4):
// a cost model with the I/O parameters of Table 1 and the size estimates of
// Eq. 10–12, plus two plan-selection algorithms producing left-deep plans:
//
//   - DP (Section 4.1): dynamic programming over R-join orders only.
//   - DPS (Section 4.2): dynamic programming that interleaves R-joins with
//     R-semijoins via statuses (E, L, B_in, B_out) and three move kinds —
//     Filter-move, Fetch-move, and R-join-move.
package optimizer

import (
	"fmt"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// Binding resolves a pattern against a database: pattern nodes to data
// labels, pattern edges to operator conditions, and the statistics the cost
// model needs (gathered once so planning itself is error-free and fast).
type Binding struct {
	Pattern *pattern.Pattern
	// Labels maps each pattern node to its data-graph label.
	Labels []graph.Label
	// Conds maps each pattern edge to an operator condition.
	Conds []rjoin.Cond

	// Ext[i] is |ext(X_i)| per pattern node.
	Ext []float64
	// JS[e] estimates |T_X ⋈ T_Y| per pattern edge (clamped to DF·DT).
	JS []float64
	// DF[e] = |π_X(T_X ⋈ T_Y)|, DT[e] = |π_Y(T_X ⋈ T_Y)| per edge.
	DF, DT []float64
	// WCount[e] = |W(X, Y)| per edge.
	WCount []float64
}

// Bind resolves p against db and collects statistics. It fails when a
// pattern label does not occur in the data graph.
//
// Per-edge join sizes and W counts come from the snapshot's fan-signature
// table (maintained incrementally; exactly the values the JoinSize /
// Centers scans would compute) so binding pays no W-table reads for them;
// the distinct projections stay exact via the memoized projection scans.
func Bind(db *gdb.Snap, p *pattern.Pattern) (*Binding, error) {
	g := db.Graph()
	sig := db.Signature()
	b := &Binding{
		Pattern: p,
		Labels:  make([]graph.Label, p.NumNodes()),
		Conds:   make([]rjoin.Cond, p.NumEdges()),
		Ext:     make([]float64, p.NumNodes()),
		JS:      make([]float64, p.NumEdges()),
		DF:      make([]float64, p.NumEdges()),
		DT:      make([]float64, p.NumEdges()),
		WCount:  make([]float64, p.NumEdges()),
	}
	for i, name := range p.Nodes {
		l := g.Labels().Lookup(name)
		if l == graph.InvalidLabel {
			return nil, fmt.Errorf("optimizer: label %q not in data graph", name)
		}
		b.Labels[i] = l
		b.Ext[i] = float64(g.ExtentSize(l))
	}
	for ei, e := range p.Edges {
		b.Conds[ei] = rjoin.Cond{
			FromNode:  e.From,
			ToNode:    e.To,
			FromLabel: b.Labels[e.From],
			ToLabel:   b.Labels[e.To],
		}
		var js int64
		var wcount int
		if sig != nil {
			ps := sig.Pair(b.Labels[e.From], b.Labels[e.To])
			js, wcount = ps.JoinSize, ps.Centers
		} else {
			v, err := db.JoinSize(b.Labels[e.From], b.Labels[e.To])
			if err != nil {
				return nil, err
			}
			ws, err := db.Centers(b.Labels[e.From], b.Labels[e.To])
			if err != nil {
				return nil, err
			}
			js, wcount = v, len(ws)
		}
		df, err := db.DistinctFrom(b.Labels[e.From], b.Labels[e.To])
		if err != nil {
			return nil, err
		}
		dt, err := db.DistinctTo(b.Labels[e.From], b.Labels[e.To])
		if err != nil {
			return nil, err
		}
		b.JS[ei] = float64(js)
		if ddt := float64(df) * float64(dt); b.JS[ei] > ddt {
			b.JS[ei] = ddt // duplicate-covered pairs cannot exceed df·dt
		}
		b.DF[ei] = float64(df)
		b.DT[ei] = float64(dt)
		b.WCount[ei] = float64(wcount)
	}
	return b, nil
}

// sel returns the R-join selectivity of edge e (Eq. 10's second factor).
func (b *Binding) sel(e int) float64 {
	d := b.Ext[b.Pattern.Edges[e].From] * b.Ext[b.Pattern.Edges[e].To]
	if d == 0 {
		return 0
	}
	return b.JS[e] / d
}

// semiSelFrom returns the fraction of ext(X) surviving the X-side semijoin.
func (b *Binding) semiSelFrom(e int) float64 {
	d := b.Ext[b.Pattern.Edges[e].From]
	if d == 0 {
		return 0
	}
	return b.DF[e] / d
}

// semiSelTo returns the fraction of ext(Y) surviving the Y-side semijoin.
func (b *Binding) semiSelTo(e int) float64 {
	d := b.Ext[b.Pattern.Edges[e].To]
	if d == 0 {
		return 0
	}
	return b.DT[e] / d
}
