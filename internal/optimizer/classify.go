package optimizer

import (
	"fmt"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// Tiered execution (see DESIGN.md "Tiered execution"): every plan is
// routed to one of three tiers with a result-identical guarantee — the
// same rows in the same deterministic order as the full pipeline.
//
//	tier 1 — index-only fast path: the classified plan's operators run on
//	         a lightweight serial runtime that skips the worker pool, the
//	         per-step scratch-heap spill, and the dedup projection.
//	tier 2 — fan-signature prefilter: the pattern is provably empty; the
//	         executor answers it with zero operator work.
//	tier 3 — the existing DP/DPS/WCOJ pipeline.

// FastPathKind discriminates the fast-path classifications.
type FastPathKind int

const (
	// FPImpossible marks a pattern the fan-signature prefilter proved
	// empty: some edge's label pair has no W-table centers.
	FPImpossible FastPathKind = iota
	// FPEdge marks an index-only plan: a single-edge pattern, a point-
	// reachability probe, or a star whose satellite edges all fetch from
	// the head step's bindings.
	FPEdge
)

// FastPath is a plan's tier classification.
type FastPath struct {
	Kind FastPathKind
	// Probe marks a point-reachability probe: a single-edge pattern whose
	// two label extents are singletons.
	Probe bool
	// Index names the index structure that answers the query, for
	// -explain and StepTrace.
	Index string
}

// Describe renders the classification for -explain output.
func (f *FastPath) Describe() string {
	if f.Kind == FPImpossible {
		return "impossible pattern (" + f.Index + ")"
	}
	return "index-only (" + f.Index + ")"
}

// Classify inspects an optimized plan and marks it tier-1 when its shape
// is answerable index-only with provably distinct output rows:
//
//   - the head step is an HPSJ, a single-edge WCOJ, or a semijoin group,
//     and
//   - every remaining step is a Fetch whose bound side was bound by the
//     head step (no chained fetches) — covering single-edge patterns and
//     stars around the head's bindings.
//
// Selection and JoinFilterFetch steps, multi-edge WCOJ cores, and fetch
// chains fall through to tier 3. Admitted shapes produce pairwise
// distinct rows at every step (HPSJ emits distinct pairs, a fetch of a
// distinct input stays distinct), which is what lets the tier-1 executor
// replace the final dedup projection with a pure column permutation and
// still return exactly the pipeline's rows in the pipeline's order.
func Classify(p *Plan) {
	if p.Fast != nil || len(p.Steps) == 0 {
		return
	}
	pat := p.Binding.Pattern
	head := p.Steps[0]
	bound0 := make([]bool, pat.NumNodes())
	var index string
	switch head.Kind {
	case StepHPSJ:
		e := pat.Edges[head.Edges[0]]
		bound0[e.From], bound0[e.To] = true, true
		index = "W-table center list + cluster index"
	case StepWCOJ:
		if len(head.Edges) != 1 {
			return
		}
		e := pat.Edges[head.Edges[0]]
		bound0[e.From], bound0[e.To] = true, true
		index = "distinct projections + cluster index"
	case StepSemijoinGroup:
		bound0[head.Node] = true
		index = "graph codes + W-table + cluster index"
	default:
		return
	}
	bound := make([]bool, len(bound0))
	copy(bound, bound0)
	for _, s := range p.Steps[1:] {
		if s.Kind != StepFetch {
			return
		}
		e := pat.Edges[s.Edges[0]]
		var bs, other int
		switch {
		case bound[e.From] && !bound[e.To]:
			bs, other = e.From, e.To
		case bound[e.To] && !bound[e.From]:
			bs, other = e.To, e.From
		default:
			return
		}
		if !bound0[bs] {
			return
		}
		bound[other] = true
	}
	probe := false
	if pat.NumEdges() == 1 {
		e := pat.Edges[0]
		if p.Binding.Ext[e.From] == 1 && p.Binding.Ext[e.To] == 1 {
			probe = true
			index += " (point probe)"
		}
	}
	p.Fast = &FastPath{Kind: FPEdge, Probe: probe, Index: index}
}

// Prefilter is the tier-2 admission check, run before Bind: it resolves
// the pattern's labels (failing with Bind's error for an unknown label)
// and consults the fan-signature table for every edge. A pair (X, Y)
// with no signature entry has W(X, Y) = ∅, and by the index invariant
// (Section 3.2: x ⇝ y between distinct labels iff some W(X, Y) center
// covers the pair) the edge — hence the whole pattern — has no matches.
// For such patterns Prefilter returns a single-StepFastPath plan the
// executor answers with an empty, correctly-columned table in
// O(pattern); otherwise it returns (nil, nil) and planning proceeds.
func Prefilter(db *gdb.Snap, p *pattern.Pattern) (*Plan, error) {
	sig := db.Signature()
	if sig == nil {
		return nil, nil
	}
	g := db.Graph()
	labels := make([]graph.Label, p.NumNodes())
	ext := make([]float64, p.NumNodes())
	for i, name := range p.Nodes {
		l := g.Labels().Lookup(name)
		if l == graph.InvalidLabel {
			return nil, fmt.Errorf("optimizer: label %q not in data graph", name)
		}
		labels[i] = l
		ext[i] = float64(g.ExtentSize(l))
	}
	conds := make([]rjoin.Cond, p.NumEdges())
	allEdges := make([]int, p.NumEdges())
	impossible := false
	for ei, e := range p.Edges {
		conds[ei] = rjoin.Cond{
			FromNode:  e.From,
			ToNode:    e.To,
			FromLabel: labels[e.From],
			ToLabel:   labels[e.To],
		}
		allEdges[ei] = ei
		if sig.Pair(labels[e.From], labels[e.To]).Centers == 0 {
			impossible = true
		}
	}
	if !impossible {
		return nil, nil
	}
	// A minimal binding: labels, conditions, and extents only — the plan
	// never reaches a cost model, so no statistics scans are paid.
	b := &Binding{
		Pattern: p,
		Labels:  labels,
		Conds:   conds,
		Ext:     ext,
		JS:      make([]float64, p.NumEdges()),
		DF:      make([]float64, p.NumEdges()),
		DT:      make([]float64, p.NumEdges()),
		WCount:  make([]float64, p.NumEdges()),
	}
	return &Plan{
		Binding:   b,
		Steps:     []Step{{Kind: StepFastPath, Edges: allEdges}},
		Algorithm: "fastpath",
		Fast:      &FastPath{Kind: FPImpossible, Index: "fan-signature prefilter"},
	}, nil
}
