package optimizer

import (
	"testing"

	"fastmatch/internal/pattern"
)

func TestDPSMergedPlansValid(t *testing.T) {
	g := randomGraph(21, 120, 300, 5)
	db := mustDB(t, g)
	for _, ps := range testPatterns {
		b, err := Bind(db, pattern.MustParse(ps))
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		plan, err := OptimizeDPSMerged(b, DefaultCostParams())
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s: invalid merged plan: %v\n%s", ps, err, plan)
		}
		if plan.Algorithm != "DPS-merged" {
			t.Fatalf("algorithm = %q", plan.Algorithm)
		}
	}
}

// TestDPSMergedNeverCheaperThanDPS: the merged variant searches a strictly
// coarser status space with an extra per-row code-column cost, so its
// estimated cost can not undercut full DPS under the same model by more
// than rounding.
func TestDPSMergedCostSane(t *testing.T) {
	g := randomGraph(22, 150, 380, 5)
	db := mustDB(t, g)
	for _, ps := range testPatterns {
		b, err := Bind(db, pattern.MustParse(ps))
		if err != nil {
			t.Fatal(err)
		}
		full, err := OptimizeDPS(b, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		merged, err := OptimizeDPSMerged(b, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		if merged.EstimatedCost <= 0 || full.EstimatedCost <= 0 {
			t.Fatalf("%s: nonpositive costs", ps)
		}
		// Coarser space + pricier filter scans: merged should not beat the
		// full search by more than a sliver of modeling noise.
		if merged.EstimatedCost < full.EstimatedCost*0.99 {
			t.Errorf("%s: merged est %.1f undercuts full DPS est %.1f", ps, merged.EstimatedCost, full.EstimatedCost)
		}
	}
}

func TestDPSMergedEmitsSplitGroups(t *testing.T) {
	// A node with conditions on both sides (C here) should yield separate
	// in-side and out-side semijoin groups when its merged Filter-move is
	// chosen.
	g := randomGraph(23, 200, 500, 5)
	db := mustDB(t, g)
	b, err := Bind(db, pattern.MustParse("A->C; B->C; C->D; C->E"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := OptimizeDPSMerged(b, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Steps {
		if s.Kind != StepSemijoinGroup {
			continue
		}
		for _, e := range s.Edges {
			side := b.Pattern.Edges[e].From
			if !s.OutSide {
				side = b.Pattern.Edges[e].To
			}
			if side != s.Node {
				t.Fatalf("semijoin group mixes sides:\n%s", plan)
			}
		}
	}
}
