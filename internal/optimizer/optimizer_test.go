package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
)

func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nlabels; i++ {
		b.Intern(string(rune('A' + i))) // ensure all labels exist
	}
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func mustDB(t testing.TB, g *graph.Graph) *gdb.Snap {
	t.Helper()
	dbx, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, release := dbx.Pin()
	t.Cleanup(func() {
		release()
		dbx.Close()
	})
	return db
}

var testPatterns = []string{
	"A->B",
	"A->B; B->C",
	"A->B; A->C",
	"A->C; B->C",
	"A->C; B->C; C->D; D->E",
	"A->B; B->C; A->C",
	"A->B; B->C; C->D; A->D",
	"A->B; A->C; B->D; C->D",
}

func TestBindResolvesStats(t *testing.T) {
	g := randomGraph(1, 80, 200, 5)
	db := mustDB(t, g)
	p := pattern.MustParse("A->C; B->C; C->D; D->E")
	b, err := Bind(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Labels) != 5 || len(b.Conds) != 4 {
		t.Fatalf("binding sizes wrong: %d labels %d conds", len(b.Labels), len(b.Conds))
	}
	for i, ext := range b.Ext {
		if ext <= 0 {
			t.Fatalf("Ext[%d] = %v", i, ext)
		}
	}
	for e := range b.Conds {
		if b.JS[e] < 0 || b.DF[e] < 0 || b.DT[e] < 0 {
			t.Fatalf("negative stats at edge %d", e)
		}
		if b.JS[e] > b.DF[e]*b.DT[e] {
			t.Fatalf("JS not clamped: %v > %v*%v", b.JS[e], b.DF[e], b.DT[e])
		}
	}
}

func TestBindUnknownLabel(t *testing.T) {
	g := randomGraph(2, 30, 60, 3)
	db := mustDB(t, g)
	p := pattern.MustParse("A->Z")
	if _, err := Bind(db, p); err == nil || !strings.Contains(err.Error(), "Z") {
		t.Fatalf("expected unknown-label error, got %v", err)
	}
}

func TestDPPlansValid(t *testing.T) {
	g := randomGraph(3, 120, 300, 5)
	db := mustDB(t, g)
	for _, ps := range testPatterns {
		b, err := Bind(db, pattern.MustParse(ps))
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		plan, err := OptimizeDP(b, DefaultCostParams())
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s: invalid DP plan: %v\n%s", ps, err, plan)
		}
		if k := plan.Steps[0].Kind; k != StepHPSJ && k != StepWCOJ {
			t.Fatalf("%s: DP plan must start with HPSJ or WCOJ:\n%s", ps, plan)
		}
		if plan.EstimatedCost <= 0 {
			t.Fatalf("%s: nonpositive cost %v", ps, plan.EstimatedCost)
		}
		if plan.Algorithm != "DP" {
			t.Fatalf("algorithm = %q", plan.Algorithm)
		}
	}
}

func TestDPSPlansValid(t *testing.T) {
	g := randomGraph(4, 120, 300, 5)
	db := mustDB(t, g)
	for _, ps := range testPatterns {
		b, err := Bind(db, pattern.MustParse(ps))
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		plan, err := OptimizeDPS(b, DefaultCostParams())
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s: invalid DPS plan: %v\n%s", ps, err, plan)
		}
		if plan.Algorithm != "DPS" {
			t.Fatalf("algorithm = %q", plan.Algorithm)
		}
	}
}

// TestDPSNotWorseThanDP: under the shared cost model, the DPS move space
// can express every DP plan shape plus semijoin interleavings, so its
// estimated cost should not exceed DP's by more than the tiny CPU term of
// extra grouped semijoins.
func TestDPSNotWorseThanDP(t *testing.T) {
	g := randomGraph(5, 200, 500, 5)
	db := mustDB(t, g)
	for _, ps := range testPatterns {
		b, err := Bind(db, pattern.MustParse(ps))
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		dp, err := OptimizeDP(b, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		dps, err := OptimizeDPS(b, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		if dps.EstimatedCost > dp.EstimatedCost*1.10+1 {
			t.Errorf("%s: DPS est %.1f far above DP est %.1f", ps, dps.EstimatedCost, dp.EstimatedCost)
		}
	}
}

func TestDPSUsesSemijoinsOnStar(t *testing.T) {
	// A star pattern C with in-edges from A,B and out-edges to D,E is the
	// paper's canonical case for semijoin sharing: scanning C's codes once
	// serves several conditions.
	g := randomGraph(6, 300, 800, 5)
	db := mustDB(t, g)
	b, err := Bind(db, pattern.MustParse("A->C; B->C; C->D; C->E"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := OptimizeDPS(b, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	hasSemi := false
	for _, s := range plan.Steps {
		if s.Kind == StepSemijoinGroup {
			hasSemi = true
		}
	}
	if !hasSemi {
		t.Fatalf("DPS plan for a star pattern should interleave semijoins:\n%s", plan)
	}
}

func TestPlanString(t *testing.T) {
	g := randomGraph(7, 100, 250, 5)
	db := mustDB(t, g)
	b, err := Bind(db, pattern.MustParse("A->C; B->C; C->D"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(*Binding, CostParams) (*Plan, error){OptimizeDP, OptimizeDPS} {
		plan, err := f(b, DefaultCostParams())
		if err != nil {
			t.Fatal(err)
		}
		s := plan.String()
		if !strings.Contains(s, "plan") || !strings.Contains(s, "->") {
			t.Fatalf("unhelpful plan string: %q", s)
		}
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	g := randomGraph(8, 60, 150, 5)
	db := mustDB(t, g)
	b, err := Bind(db, pattern.MustParse("A->B; B->C"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Plan{
		{Binding: b, Steps: []Step{{Kind: StepHPSJ, Edges: []int{0}}}},                                                 // edge 1 never done
		{Binding: b, Steps: []Step{{Kind: StepFetch, Edges: []int{0}}}},                                                // fetch with nothing bound
		{Binding: b, Steps: []Step{{Kind: StepHPSJ, Edges: []int{0}}, {Kind: StepHPSJ, Edges: []int{1}}}},              // HPSJ mid-plan
		{Binding: b, Steps: []Step{{Kind: StepHPSJ, Edges: []int{0}}, {Kind: StepSelection, Edges: []int{1}}}},         // selection with unbound side
		{Binding: b, Steps: []Step{{Kind: StepHPSJ, Edges: []int{0}}, {Kind: StepSemijoinGroup, Node: 0, Edges: nil}}}, // empty group
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
}

func TestStepKindString(t *testing.T) {
	kinds := []StepKind{StepHPSJ, StepSemijoinGroup, StepFetch, StepJoinFilterFetch, StepSelection, StepKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
}

func TestCostParamsMonotone(t *testing.T) {
	c := DefaultCostParams()
	if c.filterCost(100, 2) <= c.filterCost(10, 2) {
		t.Fatal("filterCost should grow with rows")
	}
	if c.fetchCost(10, 1000) <= c.fetchCost(10, 10) {
		t.Fatal("fetchCost should grow with output")
	}
	if c.selectionCost(100, 2) <= c.selectionCost(100, 0) {
		t.Fatal("selectionCost should grow with uncached sides")
	}
	if c.hpsjCost(50, 1000) <= c.hpsjCost(1, 10) {
		t.Fatal("hpsjCost should grow with centers and output")
	}
}

func BenchmarkOptimizeDP(b *testing.B) {
	g := randomGraph(9, 500, 1200, 5)
	dbx, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer dbx.Close()
	db, release := dbx.Pin()
	defer release()
	bind, err := Bind(db, pattern.MustParse("A->C; B->C; C->D; D->E"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeDP(bind, DefaultCostParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeDPS(b *testing.B) {
	g := randomGraph(10, 500, 1200, 5)
	dbx, err := gdb.Build(g, gdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer dbx.Close()
	db, release := dbx.Pin()
	defer release()
	bind, err := Bind(db, pattern.MustParse("A->C; B->C; C->D; D->E"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeDPS(bind, DefaultCostParams()); err != nil {
			b.Fatal(err)
		}
	}
}
