package optimizer

import (
	"fmt"
	"math"
	"slices"

	"fastmatch/internal/pattern"
)

// Hybrid planning with worst-case-optimal multiway R-joins. Binary R-join
// pipelines are asymptotically beaten on cyclic patterns: joining any two
// edges of a triangle first materialises an intermediate that can exceed
// the final result by a factor of sqrt(|E|), whatever the order. The
// planners therefore seed their state spaces with one extra "first step"
// per cyclic core of the pattern — the connected components of its
// non-bridge edges, each 2-edge-connected — evaluated as a single leapfrog
// multiway join (rjoin.WCOJ). Dynamic programming then does the stitching
// for free: if a binary path to the same edge set is cheaper the seed
// loses, otherwise the core executes as one WCOJ step and the surrounding
// tree edges attach through the usual Filter/Fetch/Selection moves.

// cyclicCores returns the pattern's cyclic cores: the connected components
// of its non-bridge edges under the undirected multigraph view (parallel
// and antiparallel edges are distinct, so a pair A→B, B→A forms a core).
// Each component is returned as an ascending edge-index slice; components
// are ordered by smallest edge index. Acyclic patterns return none.
func cyclicCores(pat *pattern.Pattern) [][]int {
	m := pat.NumEdges()
	all := make([]int, m)
	for i := range all {
		all[i] = i
	}
	isBridge := bridgeSet(pat, all)

	parent := make([]int, pat.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for e := 0; e < m; e++ {
		if !isBridge[e] {
			parent[find(pat.Edges[e].From)] = find(pat.Edges[e].To)
		}
	}
	groups := make(map[int][]int)
	for e := 0; e < m; e++ {
		if !isBridge[e] {
			r := find(pat.Edges[e].From)
			groups[r] = append(groups[r], e)
		}
	}
	cores := make([][]int, 0, len(groups))
	for _, g := range groups {
		cores = append(cores, g)
	}
	slices.SortFunc(cores, func(a, b []int) int { return a[0] - b[0] })
	return cores
}

// bridgeSet reports which of the given pattern edges are bridges of the
// undirected multigraph they span (classic DFS low-link). Edge identity is
// positional: the result is aligned with edges, and a parallel pair is two
// distinct edges, so neither of them can be a bridge.
func bridgeSet(pat *pattern.Pattern, edges []int) []bool {
	n := pat.NumNodes()
	type arc struct{ pos, to int }
	adj := make([][]arc, n)
	for i, e := range edges {
		pe := pat.Edges[e]
		adj[pe.From] = append(adj[pe.From], arc{i, pe.To})
		adj[pe.To] = append(adj[pe.To], arc{i, pe.From})
	}
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	isBridge := make([]bool, len(edges))
	timer := 0
	var dfs func(u, viaPos int)
	dfs = func(u, viaPos int) {
		disc[u], low[u] = timer, timer
		timer++
		for _, a := range adj[u] {
			if a.pos == viaPos {
				continue
			}
			if disc[a.to] == -1 {
				dfs(a.to, a.pos)
				if low[a.to] < low[u] {
					low[u] = low[a.to]
				}
				if low[a.to] > disc[u] {
					isBridge[a.pos] = true
				}
			} else if disc[a.to] < low[u] {
				low[u] = disc[a.to]
			}
		}
	}
	for u := 0; u < n; u++ {
		if disc[u] == -1 && len(adj[u]) > 0 {
			dfs(u, -1)
		}
	}
	return isBridge
}

// wcojVarOrder picks the global variable order for a multiway join over
// the given edges: start at the node with the smallest distinct-projection
// list (the cheapest first trie level), then greedily append the
// most-constrained reachable node — most already-ordered neighbours first,
// smaller projection list breaking ties, node index breaking those — so
// every level after the first intersects at least one bound-partner list.
// All tie-breaks are deterministic; the same binding yields the same order.
func wcojVarOrder(b *Binding, edges []int) []int {
	pat := b.Pattern
	unary := make(map[int]float64)
	seen := func(v int, est float64) {
		if cur, ok := unary[v]; !ok || est < cur {
			unary[v] = est
		}
	}
	for _, e := range edges {
		pe := pat.Edges[e]
		seen(pe.From, b.DF[e])
		seen(pe.To, b.DT[e])
	}
	nodes := make([]int, 0, len(unary))
	for v := range unary {
		nodes = append(nodes, v)
	}
	slices.Sort(nodes)

	start := nodes[0]
	for _, v := range nodes[1:] {
		if unary[v] < unary[start] {
			start = v
		}
	}
	order := []int{start}
	placed := map[int]bool{start: true}
	for len(order) < len(nodes) {
		best, bestBound, bestUn := -1, 0, math.Inf(1)
		for _, v := range nodes {
			if placed[v] {
				continue
			}
			boundCnt := 0
			for _, e := range edges {
				pe := pat.Edges[e]
				if (pe.From == v && placed[pe.To]) || (pe.To == v && placed[pe.From]) {
					boundCnt++
				}
			}
			if boundCnt == 0 {
				continue // keep the order connected
			}
			if boundCnt > bestBound || (boundCnt == bestBound && (unary[v] < bestUn || (unary[v] == bestUn && v < best))) {
				best, bestBound, bestUn = v, boundCnt, unary[v]
			}
		}
		if best < 0 {
			break // edge set disconnected; caller detects the short order
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}

// agmBound is an AGM-style upper bound on the result of joining the given
// edges: ∏ JS_e^{x_e} for the feasible fractional edge cover x_e = 1 on
// bridges, ½ on cycle edges. The cover is feasible because a node touching
// any cycle edge touches at least two of them (a cycle enters and leaves),
// so every node's cover sum reaches 1. On 2-edge-connected cores this is
// the classic ∏ sqrt(JS_e) triangle bound.
func agmBound(b *Binding, edges []int) float64 {
	if len(edges) == 0 {
		return math.Inf(1)
	}
	isBridge := bridgeSet(b.Pattern, edges)
	r := 1.0
	for i, e := range edges {
		if isBridge[i] {
			r *= b.JS[e]
		} else {
			r *= math.Sqrt(b.JS[e])
		}
	}
	return r
}

// wcojEstimate costs one multiway R-join over edges in the given variable
// order and returns (cost, rows). rows is the planners' path-independent
// independence estimate (∏ extents × ∏ edge selectivities), so a
// WCOJ-seeded optimizer state composes with later binary moves exactly
// like a binary path reaching the same state. The cost's per-level prefix
// sizes are additionally clamped by agmBound over the prefix's induced
// edges — binary pipelines have no such clamp on their intermediates,
// which is precisely where the multiway join wins on dense cyclic cores.
//
// Per level, each prefix pays the bound-partner expansions (a center
// lookup plus IndexPerNode per expected partner, as in Fetch) and a CPU
// share for the leapfrog intersections over prefixes and candidates.
func wcojEstimate(b *Binding, edges, order []int, params CostParams) (cost, rows float64) {
	pat := b.Pattern
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	prefixEst := func(j int) float64 {
		r := 1.0
		for _, v := range order[:j] {
			r *= b.Ext[v]
		}
		for _, e := range edges {
			pe := pat.Edges[e]
			pf, pt := pos[pe.From], pos[pe.To]
			switch {
			case pf < j && pt < j:
				r *= b.sel(e)
			case pf < j:
				r *= b.semiSelFrom(e)
			case pt < j:
				r *= b.semiSelTo(e)
			}
		}
		return r
	}

	cost = params.SearchB * float64(len(edges)) // W-table and projection setup
	prev := 1.0
	for j := 1; j <= len(order); j++ {
		p := prefixEst(j)
		var induced []int
		for _, e := range edges {
			pe := pat.Edges[e]
			if pos[pe.From] < j && pos[pe.To] < j {
				induced = append(induced, e)
			}
		}
		if bound := agmBound(b, induced); p > bound {
			p = bound
		}
		v := order[j-1]
		work := 0.0
		for _, e := range edges {
			pe := pat.Edges[e]
			switch {
			case pe.To == v && pos[pe.From] < j-1:
				work += params.SearchB + params.CodeFetch + params.IndexPerNode*ratio(b.JS[e], b.DF[e])
			case pe.From == v && pos[pe.To] < j-1:
				work += params.SearchB + params.CodeFetch + params.IndexPerNode*ratio(b.JS[e], b.DT[e])
			}
		}
		cost += prev*work + params.CPU*(prev+p)
		prev = p
	}
	return cost, prefixEst(len(order))
}

// wcojSeed is one candidate WCOJ first step: a cyclic core with its chosen
// variable order and estimates, ready to seed a planner's state space.
type wcojSeed struct {
	mask  uint32
	edges []int
	order []int
	cost  float64
	rows  float64
}

// wcojSeeds returns one seed per cyclic core of the pattern. The planners
// inject these before expansion, so each core competes as a single
// multiway step against every binary pipeline covering the same edges;
// acyclic patterns (and params.NoWCOJ) yield none, leaving the binary
// search space untouched.
func wcojSeeds(b *Binding, params CostParams) []wcojSeed {
	if params.NoWCOJ {
		return nil
	}
	var seeds []wcojSeed
	for _, core := range cyclicCores(b.Pattern) {
		order := wcojVarOrder(b, core)
		cost, rows := wcojEstimate(b, core, order, params)
		var mask uint32
		for _, e := range core {
			mask |= 1 << uint(e)
		}
		seeds = append(seeds, wcojSeed{mask: mask, edges: core, order: order, cost: cost, rows: rows})
	}
	return seeds
}

// OptimizeWCOJ builds the forced single-step plan evaluating the whole
// pattern as one worst-case-optimal multiway R-join. Any connected pattern
// qualifies — the operator only needs every variable constrained at its
// level, which connectivity through the order guarantees. The plan exists
// for differential testing and benchmarking against the binary planners;
// cost-based selection goes through the hybrid DP/DPS path instead.
func OptimizeWCOJ(b *Binding, params CostParams) (*Plan, error) {
	pat := b.Pattern
	m := pat.NumEdges()
	if m == 0 {
		return nil, fmt.Errorf("optimizer: WCOJ needs at least one edge")
	}
	if m > 30 || pat.NumNodes() > 30 {
		return nil, fmt.Errorf("optimizer: pattern with %d nodes/%d edges too large for WCOJ", pat.NumNodes(), m)
	}
	edges := make([]int, m)
	for i := range edges {
		edges[i] = i
	}
	order := wcojVarOrder(b, edges)
	if len(order) != pat.NumNodes() {
		return nil, fmt.Errorf("optimizer: WCOJ requires a connected pattern")
	}
	cost, rows := wcojEstimate(b, edges, order, params)
	plan := &Plan{
		Binding:       b,
		EstimatedCost: cost,
		EstimatedRows: rows,
		Algorithm:     "WCOJ",
		Steps: []Step{{
			Kind: StepWCOJ, Edges: edges, VarOrder: order,
			EstCost: cost, EstRows: rows,
		}},
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: WCOJ produced invalid plan: %w", err)
	}
	return plan, nil
}
