package optimizer

import (
	"fmt"
	"strings"
)

// StepKind discriminates executor steps.
type StepKind int

const (
	// StepHPSJ is an R-join of two base tables (Algorithm 1); always the
	// first step of a plan when present.
	StepHPSJ StepKind = iota
	// StepSemijoinGroup applies one or more R-semijoins that bind the same
	// temporal column, sharing a single scan and one graph-code retrieval
	// per row (Remark 3.1). When it is the first step, the temporal table
	// is the bound label's base table.
	StepSemijoinGroup
	// StepFetch completes an HPSJ+ R-join whose filter was already applied
	// by an earlier StepSemijoinGroup (Algorithm 2, Fetch).
	StepFetch
	// StepJoinFilterFetch is a full HPSJ+ R-join — filter immediately
	// followed by fetch — as used by the DP (join-only) planner.
	StepJoinFilterFetch
	// StepSelection processes a self R-join (Eq. 5): a condition whose two
	// pattern nodes are both already bound.
	StepSelection
	// StepWCOJ evaluates a set of edges (a cyclic core, or the whole
	// pattern) as one worst-case-optimal multiway R-join, binding the
	// nodes of VarOrder by leapfrog intersection; always the first step of
	// a plan when present.
	StepWCOJ
	// StepFastPath is the single step of a plan the tier-2 fan-signature
	// prefilter proved empty (some pattern edge (X, Y) has W(X, Y) = ∅):
	// the executor answers it with an empty, correctly-columned result in
	// O(pattern) with no operator work.
	StepFastPath
)

func (k StepKind) String() string {
	switch k {
	case StepHPSJ:
		return "hpsj"
	case StepSemijoinGroup:
		return "semijoin"
	case StepFetch:
		return "fetch"
	case StepJoinFilterFetch:
		return "join"
	case StepSelection:
		return "selection"
	case StepWCOJ:
		return "wcoj"
	case StepFastPath:
		return "fastpath"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one executor operation.
type Step struct {
	Kind StepKind
	// Edges holds the pattern edge indexes the step processes. A
	// SemijoinGroup may hold several; every other kind holds exactly one.
	Edges []int
	// Node is the bound pattern node of a SemijoinGroup (the column whose
	// graph codes the shared scan retrieves).
	Node int
	// OutSide reports which code side a SemijoinGroup reads: true for
	// out-codes (conditions Node→Y), false for in-codes (conditions
	// X→Node).
	OutSide bool
	// VarOrder is a WCOJ step's global variable-binding order (pattern
	// node indexes); empty for every other kind.
	VarOrder []int
	// EstCost/EstRows are the cost model's cumulative cost and estimated
	// temporal-table rows after this step, filled during plan
	// reconstruction so -explain can show where a plan expects to spend.
	EstCost, EstRows float64
}

// Plan is an optimized left-deep execution plan.
type Plan struct {
	Binding *Binding
	Steps   []Step
	// EstimatedCost is the cost model's total for the plan.
	EstimatedCost float64
	// EstimatedRows is the estimated final result size.
	EstimatedRows float64
	// Algorithm names the planner that produced the plan ("DP" or "DPS").
	Algorithm string
	// Fast is the tier router's classification, set by Classify (tier 1)
	// or the prefilter (tier 2); nil means the plan runs on the full
	// pipeline (tier 3). See classify.go for the admission rules.
	Fast *FastPath
}

// Tier returns the execution tier the plan runs under: 1 for an
// index-only fast-path plan, 2 for a pattern the fan-signature prefilter
// proved empty, 3 for the full operator pipeline.
func (p *Plan) Tier() int {
	switch {
	case p.Fast == nil:
		return 3
	case p.Fast.Kind == FPImpossible:
		return 2
	default:
		return 1
	}
}

// String renders the plan one step per line.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s plan (est cost %.1f, est rows %.1f)\n", p.Algorithm, p.EstimatedCost, p.EstimatedRows)
	if p.Fast != nil {
		fmt.Fprintf(&sb, "  tier %d fast path: %s\n", p.Tier(), p.Fast.Describe())
	} else {
		sb.WriteString("  tier 3: full operator pipeline\n")
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, "  %2d. %-9s", i+1, s.Kind)
		switch s.Kind {
		case StepSemijoinGroup:
			side := "out"
			if !s.OutSide {
				side = "in"
			}
			fmt.Fprintf(&sb, " on %s (%s-codes):", p.Binding.Pattern.Nodes[s.Node], side)
		case StepWCOJ:
			sb.WriteString(" order")
			for j, v := range s.VarOrder {
				sep := " "
				if j > 0 {
					sep = "<"
				}
				fmt.Fprintf(&sb, "%s%s", sep, p.Binding.Pattern.Nodes[v])
			}
			sb.WriteString(", edges:")
		}
		for _, e := range s.Edges {
			pe := p.Binding.Pattern.Edges[e]
			fmt.Fprintf(&sb, " %s->%s", p.Binding.Pattern.Nodes[pe.From], p.Binding.Pattern.Nodes[pe.To])
		}
		if s.EstCost > 0 || s.EstRows > 0 {
			fmt.Fprintf(&sb, "  [cost %.1f, rows %.1f]", s.EstCost, s.EstRows)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Validate checks plan structural invariants: every pattern edge is fetched
// or joined exactly once, steps only reference bound columns, and HPSJ only
// appears first. It returns nil for plans produced by the planners and is
// used by tests and the executor's defensive checks.
func (p *Plan) Validate() error {
	pat := p.Binding.Pattern
	done := make([]bool, pat.NumEdges())
	bound := make([]bool, pat.NumNodes())
	anyBound := false

	for si, s := range p.Steps {
		switch s.Kind {
		case StepHPSJ:
			if si != 0 {
				return fmt.Errorf("plan: HPSJ at step %d (only valid first)", si+1)
			}
			if len(s.Edges) != 1 {
				return fmt.Errorf("plan: HPSJ with %d edges", len(s.Edges))
			}
			e := pat.Edges[s.Edges[0]]
			done[s.Edges[0]] = true
			bound[e.From], bound[e.To] = true, true
			anyBound = true
		case StepSemijoinGroup:
			if len(s.Edges) == 0 {
				return fmt.Errorf("plan: empty semijoin group at step %d", si+1)
			}
			if anyBound && !bound[s.Node] {
				return fmt.Errorf("plan: semijoin on unbound node %d at step %d", s.Node, si+1)
			}
			for _, e := range s.Edges {
				if done[e] {
					return fmt.Errorf("plan: semijoin of completed edge %d at step %d", e, si+1)
				}
				side := pat.Edges[e].From
				if !s.OutSide {
					side = pat.Edges[e].To
				}
				if side != s.Node {
					return fmt.Errorf("plan: semijoin group on node %d includes edge %d not incident on the declared side", s.Node, e)
				}
			}
			bound[s.Node] = true
			anyBound = true
		case StepFetch, StepJoinFilterFetch:
			if len(s.Edges) != 1 {
				return fmt.Errorf("plan: %s with %d edges", s.Kind, len(s.Edges))
			}
			e := pat.Edges[s.Edges[0]]
			if done[s.Edges[0]] {
				return fmt.Errorf("plan: edge %d completed twice", s.Edges[0])
			}
			if !bound[e.From] && !bound[e.To] {
				return fmt.Errorf("plan: %s of edge %d with no side bound", s.Kind, s.Edges[0])
			}
			if bound[e.From] && bound[e.To] {
				return fmt.Errorf("plan: %s of edge %d with both sides bound (want selection)", s.Kind, s.Edges[0])
			}
			done[s.Edges[0]] = true
			bound[e.From], bound[e.To] = true, true
		case StepWCOJ:
			if si != 0 {
				return fmt.Errorf("plan: WCOJ at step %d (only valid first)", si+1)
			}
			if len(s.Edges) == 0 || len(s.VarOrder) < 2 {
				return fmt.Errorf("plan: WCOJ with %d edges over %d variables", len(s.Edges), len(s.VarOrder))
			}
			inOrder := make([]bool, pat.NumNodes())
			for _, v := range s.VarOrder {
				if inOrder[v] {
					return fmt.Errorf("plan: WCOJ repeats node %d in variable order", v)
				}
				inOrder[v] = true
			}
			incident := make(map[int]bool, len(s.VarOrder))
			for _, e := range s.Edges {
				if done[e] {
					return fmt.Errorf("plan: edge %d completed twice", e)
				}
				pe := pat.Edges[e]
				if !inOrder[pe.From] || !inOrder[pe.To] {
					return fmt.Errorf("plan: WCOJ edge %d endpoint outside variable order %v", e, s.VarOrder)
				}
				done[e] = true
				incident[pe.From], incident[pe.To] = true, true
			}
			for _, v := range s.VarOrder {
				if !incident[v] {
					return fmt.Errorf("plan: WCOJ variable %d has no incident edge", v)
				}
				bound[v] = true
			}
			anyBound = true
		case StepFastPath:
			if si != 0 || len(p.Steps) != 1 {
				return fmt.Errorf("plan: fastpath step must be the only step")
			}
			if p.Fast == nil || p.Fast.Kind != FPImpossible {
				return fmt.Errorf("plan: fastpath step without an impossible-pattern classification")
			}
			for e := range done {
				done[e] = true
			}
			for v := range bound {
				bound[v] = true
			}
			anyBound = true
		case StepSelection:
			if len(s.Edges) != 1 {
				return fmt.Errorf("plan: selection with %d edges", len(s.Edges))
			}
			e := pat.Edges[s.Edges[0]]
			if !bound[e.From] || !bound[e.To] {
				return fmt.Errorf("plan: selection of edge %d without both sides bound", s.Edges[0])
			}
			if done[s.Edges[0]] {
				return fmt.Errorf("plan: edge %d completed twice", s.Edges[0])
			}
			done[s.Edges[0]] = true
		default:
			return fmt.Errorf("plan: unknown step kind %v", s.Kind)
		}
	}
	for e, d := range done {
		if !d {
			return fmt.Errorf("plan: edge %d never completed", e)
		}
	}
	return nil
}
