package optimizer

import (
	"fmt"
	"math/bits"
)

// A DPS status is the four-element tuple (E, L, B_in, B_out) of Section
// 4.2. E is the set of pattern edges whose Fetch (or R-join/selection) is
// done; B_in/B_out are the pattern nodes whose in/out graph codes are
// cached because a Filter-move scanned them; L — the set of bound nodes —
// is derived: L = endpoints(E) ∪ B_in ∪ B_out.
//
// The packed key fits 16 edges and 16 nodes.
type statusKey uint64

func makeKey(e, bin, bout uint32) statusKey {
	return statusKey(e) | statusKey(bin)<<16 | statusKey(bout)<<32
}

func (k statusKey) parts() (e, bin, bout uint32) {
	return uint32(k & 0xFFFF), uint32(k >> 16 & 0xFFFF), uint32(k >> 32 & 0xFFFF)
}

// moveKind discriminates the three DPS moves.
type moveKind int

const (
	moveNone   moveKind = iota
	moveRJoin           // HPSJ between two base tables; only from S0
	moveFilter          // R-semijoin group sharing one scan (Remark 3.1)
	moveFetch           // Fetch of one included edge (or selection when both sides bound)
	moveWCOJ            // multiway join of a cyclic core; only from S0
)

type move struct {
	kind    moveKind
	edge    int   // moveRJoin / moveFetch
	node    int   // moveFilter: the scanned column
	outSide bool  // moveFilter: out-codes vs in-codes
	edges   []int // moveFilter: the semijoin group; moveWCOJ: the core
	isSel   bool  // moveFetch: both sides were bound (selection)
	order   []int // moveWCOJ: the global variable order
}

// OptimizeDPS selects a plan by interleaving R-joins with R-semijoins
// (Section 4.2): dynamic programming over statuses with Filter-moves,
// Fetch-moves, and R-join-moves. Every move adds exactly one element to the
// status, so statuses are processed level by level.
func OptimizeDPS(b *Binding, params CostParams) (*Plan, error) {
	pat := b.Pattern
	m := pat.NumEdges()
	n := pat.NumNodes()
	if m > 16 || n > 16 {
		return nil, fmt.Errorf("optimizer: pattern with %d nodes/%d edges too large for DPS", n, m)
	}
	fullE := (uint32(1) << m) - 1

	type info struct {
		cost float64
		pred statusKey
		mv   move
	}
	states := map[statusKey]*info{0: {}}
	levels := make([][]statusKey, m+2*n+1)
	levels[0] = []statusKey{0}

	level := func(k statusKey) int {
		e, bin, bout := k.parts()
		return bits.OnesCount32(e) + bits.OnesCount32(bin) + bits.OnesCount32(bout)
	}
	relax := func(from statusKey, to statusKey, cost float64, mv move) {
		cur := states[to]
		if cur == nil {
			states[to] = &info{cost: cost, pred: from, mv: mv}
			l := level(to)
			levels[l] = append(levels[l], to)
			return
		}
		if cost < cur.cost {
			cur.cost, cur.pred, cur.mv = cost, from, mv
		}
	}

	// rowsOf estimates the intermediate result size of a status from the
	// bound extents, the join selectivities of E, and the semijoin
	// selectivities of every included-but-unfetched condition. The estimate
	// is path-independent, which makes the DP sound.
	rowsOf := func(e, bin, bout uint32) float64 {
		v := bin | bout
		for ei := 0; ei < m; ei++ {
			if e&(1<<uint(ei)) != 0 {
				pe := pat.Edges[ei]
				v |= 1<<uint(pe.From) | 1<<uint(pe.To)
			}
		}
		if v == 0 {
			return 1
		}
		rows := 1.0
		for x := 0; x < n; x++ {
			if v&(1<<uint(x)) != 0 {
				rows *= b.Ext[x]
			}
		}
		for ei := 0; ei < m; ei++ {
			pe := pat.Edges[ei]
			if e&(1<<uint(ei)) != 0 {
				rows *= b.sel(ei)
				continue
			}
			if bout&(1<<uint(pe.From)) != 0 {
				rows *= b.semiSelFrom(ei)
			}
			if bin&(1<<uint(pe.To)) != 0 {
				rows *= b.semiSelTo(ei)
			}
		}
		return rows
	}

	for l := 0; l < len(levels); l++ {
		for _, key := range levels[l] {
			st := states[key]
			e, bin, bout := key.parts()
			rows := rowsOf(e, bin, bout)

			bound := bin | bout
			for ei := 0; ei < m; ei++ {
				if e&(1<<uint(ei)) != 0 {
					pe := pat.Edges[ei]
					bound |= 1<<uint(pe.From) | 1<<uint(pe.To)
				}
			}

			if key == 0 {
				// R-join-moves: only from the initial status.
				for ei := 0; ei < m; ei++ {
					cost := st.cost + params.hpsjCost(b.WCount[ei], b.JS[ei])
					relax(key, makeKey(1<<uint(ei), 0, 0), cost, move{kind: moveRJoin, edge: ei})
				}
				// WCOJ-moves: each cyclic core as one multiway step. rowsOf
				// already yields the independence estimate for the seeded
				// status, so downstream moves compose identically to a
				// binary path reaching it.
				for _, s := range wcojSeeds(b, params) {
					relax(key, makeKey(s.mask, 0, 0), st.cost+s.cost,
						move{kind: moveWCOJ, edges: s.edges, order: s.order})
				}
			}

			// Filter-moves: pick a label X (bound, or any from S0) and a
			// code side; the move appends every remaining semijoin on that
			// side of X in one shared scan.
			for x := 0; x < n; x++ {
				if bound != 0 && bound&(1<<uint(x)) == 0 {
					continue // X must be in L when L ≠ ∅
				}
				for _, outSide := range [2]bool{true, false} {
					var bmask uint32
					if outSide {
						bmask = bout
					} else {
						bmask = bin
					}
					if bmask&(1<<uint(x)) != 0 {
						continue // this side of X already cached
					}
					var q []int
					for ei := 0; ei < m; ei++ {
						if e&(1<<uint(ei)) != 0 {
							continue
						}
						pe := pat.Edges[ei]
						if (outSide && pe.From == x) || (!outSide && pe.To == x) {
							q = append(q, ei)
						}
					}
					if len(q) == 0 {
						continue
					}
					basis := rows
					if bound == 0 {
						basis = b.Ext[x] // first move scans the base table
					}
					nbin, nbout := bin, bout
					if outSide {
						nbout |= 1 << uint(x)
					} else {
						nbin |= 1 << uint(x)
					}
					cost := st.cost + params.filterCost(basis, len(q))
					relax(key, makeKey(e, nbin, nbout), cost,
						move{kind: moveFilter, node: x, outSide: outSide, edges: q})
				}
			}

			// Fetch-moves: any unfetched edge whose filter is included.
			for ei := 0; ei < m; ei++ {
				if e&(1<<uint(ei)) != 0 {
					continue
				}
				pe := pat.Edges[ei]
				fromCached := bout&(1<<uint(pe.From)) != 0
				toCached := bin&(1<<uint(pe.To)) != 0
				if !fromCached && !toCached {
					continue
				}
				ne := e | 1<<uint(ei)
				nrows := rowsOf(ne, bin, bout)
				fromBound := bound&(1<<uint(pe.From)) != 0
				toBound := bound&(1<<uint(pe.To)) != 0
				var cost float64
				isSel := fromBound && toBound
				if isSel {
					uncached := 0
					if !fromCached {
						uncached++
					}
					if !toCached {
						uncached++
					}
					cost = st.cost + params.selectionCost(rows, uncached)
				} else {
					cost = st.cost + params.fetchCost(rows, nrows)
				}
				relax(key, makeKey(ne, bin, bout), cost,
					move{kind: moveFetch, edge: ei, isSel: isSel})
			}
		}
	}

	// Pick the cheapest complete status. Cost ties are broken by the
	// smaller status key: map iteration order is randomized per range, and
	// equal-cost statuses are common (e.g. the two directions of a single
	// edge), so without the tie-break two optimizer calls on the same
	// binding could return differently-ordered plans.
	var best statusKey
	bestInfo := (*info)(nil)
	for key, inf := range states {
		e, _, _ := key.parts()
		if e != fullE {
			continue
		}
		if bestInfo == nil || inf.cost < bestInfo.cost ||
			(inf.cost == bestInfo.cost && key < best) {
			best, bestInfo = key, inf
		}
	}
	if bestInfo == nil {
		return nil, fmt.Errorf("optimizer: DPS found no complete plan")
	}

	// Reconstruct the move chain, annotating each step with the cumulative
	// cost and estimated rows of the status it reaches.
	type annMove struct {
		mv   move
		cost float64
		rows float64
	}
	var movesRev []annMove
	for key := best; key != 0; {
		inf := states[key]
		movesRev = append(movesRev, annMove{mv: inf.mv, cost: inf.cost, rows: rowsOf(key.parts())})
		key = inf.pred
	}
	plan := &Plan{
		Binding:       b,
		EstimatedCost: bestInfo.cost,
		EstimatedRows: rowsOf(best.parts()),
		Algorithm:     "DPS",
	}
	for i := len(movesRev) - 1; i >= 0; i-- {
		mv := movesRev[i].mv
		var step Step
		switch mv.kind {
		case moveRJoin:
			step = Step{Kind: StepHPSJ, Edges: []int{mv.edge}}
		case moveFilter:
			step = Step{
				Kind:    StepSemijoinGroup,
				Edges:   mv.edges,
				Node:    mv.node,
				OutSide: mv.outSide,
			}
		case moveFetch:
			kind := StepFetch
			if mv.isSel {
				kind = StepSelection
			}
			step = Step{Kind: kind, Edges: []int{mv.edge}}
		case moveWCOJ:
			step = Step{Kind: StepWCOJ, Edges: mv.edges, VarOrder: mv.order}
		}
		step.EstCost, step.EstRows = movesRev[i].cost, movesRev[i].rows
		plan.Steps = append(plan.Steps, step)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: DPS produced invalid plan: %w", err)
	}
	return plan, nil
}
