package optimizer

import (
	"fmt"
	"math/bits"
)

// OptimizeDPSMerged is the reduced-state variant the paper describes at the
// end of Section 4.2: B_in and B_out are replaced by a single set
// B = B_in ∪ B_out, dropping the status count from O(5^n) to O(3^n) — "with
// the implication that the X_in and X_out columns of a base table T_X are
// accessed with each other each time". A Filter-move on X therefore scans
// both code columns at once (slightly more expensive per row) and appends
// every remaining semijoin on either side of X; afterwards both code sides
// of X count as cached.
func OptimizeDPSMerged(b *Binding, params CostParams) (*Plan, error) {
	pat := b.Pattern
	m := pat.NumEdges()
	n := pat.NumNodes()
	if m > 16 || n > 16 {
		return nil, fmt.Errorf("optimizer: pattern with %d nodes/%d edges too large for DPS", n, m)
	}
	fullE := (uint32(1) << m) - 1

	type info struct {
		cost float64
		pred uint64
		mv   move
	}
	key := func(e, bm uint32) uint64 { return uint64(e) | uint64(bm)<<16 }
	states := map[uint64]*info{0: {}}
	levels := make([][]uint64, m+n+1)
	levels[0] = []uint64{0}
	level := func(k uint64) int {
		return bits.OnesCount32(uint32(k&0xFFFF)) + bits.OnesCount32(uint32(k>>16))
	}
	relax := func(from, to uint64, cost float64, mv move) {
		cur := states[to]
		if cur == nil {
			states[to] = &info{cost: cost, pred: from, mv: mv}
			levels[level(to)] = append(levels[level(to)], to)
			return
		}
		if cost < cur.cost {
			cur.cost, cur.pred, cur.mv = cost, from, mv
		}
	}

	rowsOf := func(e, bm uint32) float64 {
		v := bm
		for ei := 0; ei < m; ei++ {
			if e&(1<<uint(ei)) != 0 {
				pe := pat.Edges[ei]
				v |= 1<<uint(pe.From) | 1<<uint(pe.To)
			}
		}
		if v == 0 {
			return 1
		}
		rows := 1.0
		for x := 0; x < n; x++ {
			if v&(1<<uint(x)) != 0 {
				rows *= b.Ext[x]
			}
		}
		for ei := 0; ei < m; ei++ {
			pe := pat.Edges[ei]
			if e&(1<<uint(ei)) != 0 {
				rows *= b.sel(ei)
				continue
			}
			if bm&(1<<uint(pe.From)) != 0 {
				rows *= b.semiSelFrom(ei)
			}
			if bm&(1<<uint(pe.To)) != 0 {
				rows *= b.semiSelTo(ei)
			}
		}
		return rows
	}

	for l := 0; l < len(levels); l++ {
		for _, k := range levels[l] {
			st := states[k]
			e, bm := uint32(k&0xFFFF), uint32(k>>16)
			rows := rowsOf(e, bm)

			bound := bm
			for ei := 0; ei < m; ei++ {
				if e&(1<<uint(ei)) != 0 {
					pe := pat.Edges[ei]
					bound |= 1<<uint(pe.From) | 1<<uint(pe.To)
				}
			}

			if k == 0 {
				for ei := 0; ei < m; ei++ {
					cost := st.cost + params.hpsjCost(b.WCount[ei], b.JS[ei])
					relax(k, key(1<<uint(ei), 0), cost, move{kind: moveRJoin, edge: ei})
				}
				// WCOJ-moves: each cyclic core as one multiway first step
				// (see dps.go).
				for _, s := range wcojSeeds(b, params) {
					relax(k, key(s.mask, 0), st.cost+s.cost,
						move{kind: moveWCOJ, edges: s.edges, order: s.order})
				}
			}

			// Filter-move: both code sides of X are read in one scan.
			for x := 0; x < n; x++ {
				if bound != 0 && bound&(1<<uint(x)) == 0 {
					continue
				}
				if bm&(1<<uint(x)) != 0 {
					continue
				}
				var q []int
				for ei := 0; ei < m; ei++ {
					if e&(1<<uint(ei)) != 0 {
						continue
					}
					pe := pat.Edges[ei]
					if pe.From == x || pe.To == x {
						q = append(q, ei)
					}
				}
				if len(q) == 0 {
					continue
				}
				basis := rows
				if bound == 0 {
					basis = b.Ext[x]
				}
				// Both code columns per row: SearchB + 2·CodeFetch.
				cost := st.cost + (params.SearchB+2*params.CodeFetch)*basis + params.CPU*basis*float64(len(q))
				relax(k, key(e, bm|1<<uint(x)), cost,
					move{kind: moveFilter, node: x, edges: q})
			}

			// Fetch-move: any edge whose filter is included via either side.
			for ei := 0; ei < m; ei++ {
				if e&(1<<uint(ei)) != 0 {
					continue
				}
				pe := pat.Edges[ei]
				fromCached := bm&(1<<uint(pe.From)) != 0
				toCached := bm&(1<<uint(pe.To)) != 0
				if !fromCached && !toCached {
					continue
				}
				ne := e | 1<<uint(ei)
				nrows := rowsOf(ne, bm)
				fromBound := bound&(1<<uint(pe.From)) != 0
				toBound := bound&(1<<uint(pe.To)) != 0
				var cost float64
				isSel := fromBound && toBound
				if isSel {
					uncached := 0
					if !fromCached {
						uncached++
					}
					if !toCached {
						uncached++
					}
					cost = st.cost + params.selectionCost(rows, uncached)
				} else {
					cost = st.cost + params.fetchCost(rows, nrows)
				}
				relax(k, key(ne, bm), cost, move{kind: moveFetch, edge: ei, isSel: isSel})
			}
		}
	}

	// Cost ties break toward the smaller key — same determinism argument
	// as OptimizeDPS: map iteration order must not pick the plan.
	var best uint64
	var bestInfo *info
	for k, inf := range states {
		if uint32(k&0xFFFF) != fullE {
			continue
		}
		if bestInfo == nil || inf.cost < bestInfo.cost ||
			(inf.cost == bestInfo.cost && k < best) {
			best, bestInfo = k, inf
		}
	}
	if bestInfo == nil {
		return nil, fmt.Errorf("optimizer: DPS-merged found no complete plan")
	}

	type annMove struct {
		mv   move
		cost float64
		rows float64
	}
	var movesRev []annMove
	for k := best; k != 0; {
		inf := states[k]
		movesRev = append(movesRev, annMove{
			mv: inf.mv, cost: inf.cost,
			rows: rowsOf(uint32(k&0xFFFF), uint32(k>>16)),
		})
		k = inf.pred
	}
	plan := &Plan{
		Binding:       b,
		EstimatedCost: bestInfo.cost,
		EstimatedRows: rowsOf(uint32(best&0xFFFF), uint32(best>>16)),
		Algorithm:     "DPS-merged",
	}
	for i := len(movesRev) - 1; i >= 0; i-- {
		mv := movesRev[i].mv
		cost, rows := movesRev[i].cost, movesRev[i].rows
		switch mv.kind {
		case moveRJoin:
			plan.Steps = append(plan.Steps, Step{
				Kind: StepHPSJ, Edges: []int{mv.edge}, EstCost: cost, EstRows: rows,
			})
		case moveFilter:
			// The merged Filter-move reads both code columns; emit one
			// semijoin group per side actually used so the executor's
			// operators stay single-sided.
			var outQ, inQ []int
			for _, ei := range mv.edges {
				if pat.Edges[ei].From == mv.node {
					outQ = append(outQ, ei)
				} else {
					inQ = append(inQ, ei)
				}
			}
			if len(outQ) > 0 {
				plan.Steps = append(plan.Steps, Step{
					Kind: StepSemijoinGroup, Edges: outQ, Node: mv.node, OutSide: true,
					EstCost: cost, EstRows: rows,
				})
			}
			if len(inQ) > 0 {
				plan.Steps = append(plan.Steps, Step{
					Kind: StepSemijoinGroup, Edges: inQ, Node: mv.node, OutSide: false,
					EstCost: cost, EstRows: rows,
				})
			}
		case moveFetch:
			kind := StepFetch
			if mv.isSel {
				kind = StepSelection
			}
			plan.Steps = append(plan.Steps, Step{
				Kind: kind, Edges: []int{mv.edge}, EstCost: cost, EstRows: rows,
			})
		case moveWCOJ:
			plan.Steps = append(plan.Steps, Step{
				Kind: StepWCOJ, Edges: mv.edges, VarOrder: mv.order,
				EstCost: cost, EstRows: rows,
			})
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: DPS-merged produced invalid plan: %w", err)
	}
	return plan, nil
}
