// Package gdb implements the graph database of Section 3: per-label base
// tables T_X(X, X_in, X_out) holding 2-hop graph codes under a primary
// index, the W-table, and the cluster-based R-join index.
//
// All persistent structures live in pages accessed through a buffer pool,
// so every probe contributes to the I/O cost metric the experiments report.
//
// Center/cluster semantics (Section 3.2, following the compact codes of
// Example 3.1): the stored code of node v omits v itself; full codes are
// in(v) = In(v) ∪ {v} and out(v) = Out(v) ∪ {v}. The center set is every
// node that appears in at least one stored code. For a center w,
//
//	F-cluster  U_w = {u : w ∈ out(u)} = {u : w ∈ stored-Out(u)} ∪ {w}
//	T-cluster  V_w = {v : w ∈ in(v)}  = {v : w ∈ stored-In(v)} ∪ {w}
//
// subdivided by node label into F-/T-subclusters. W(X, Y) lists the centers
// with a non-empty X-labeled F-subcluster and a non-empty Y-labeled
// T-subcluster. For any two nodes with distinct labels, x ⇝ y holds iff
// some center w ∈ W(label(x), label(y)) has x ∈ U_w and y ∈ V_w, so R-joins
// are answerable entirely from the index.
package gdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"fastmatch/internal/epoch"
	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/storage"

	// Register the built-in reachability backends so every database user can
	// select them by name through Options.ReachIndex.
	_ "fastmatch/internal/pll"
	_ "fastmatch/internal/twohop"
)

// ErrClosed is returned by DB (and Engine) methods called after Close.
var ErrClosed = errors.New("gdb: database is closed")

// Options configures Build.
type Options struct {
	// Path is the page file location; empty means in-memory.
	Path string
	// PoolBytes sizes the buffer pool (default storage.DefaultPoolBytes,
	// the paper's 1 MB).
	PoolBytes int
	// ReachIndex names the reachability-index backend that computes the
	// labeling the database is built on ("twohop", "pll", ...; empty selects
	// reach.DefaultBackend). The choice is recorded in the manifest of a
	// file-backed database, and Open refuses to reattach under a different
	// backend.
	ReachIndex string
	// DisableWTableCache turns off the in-memory W-table cache. The paper
	// keeps frequently used W entries in memory (Section 3.4); the cache is
	// on by default and this switch exists for ablation benchmarks.
	DisableWTableCache bool
	// CodeCacheEntries bounds the working cache of decoded graph codes
	// (the paper's getCenters cache). Default 65536; negative disables.
	CodeCacheEntries int
	// BuildParallelism is the worker count for the build pipeline: batched
	// reachability labeling, code encoding, and the sharded cover inversion
	// feeding the cluster index. 0 or 1 builds serially, n > 1 uses n
	// workers, < 0 uses GOMAXPROCS. The built database is identical at every
	// setting except the labeling itself, which at parallelism > 1 may carry
	// a few extra (still valid) entries — see reach.PrunedLabeling.
	BuildParallelism int
}

// DB is a built graph database, maintained as a sequence of immutable
// snapshot epochs (see Snap). The read path never blocks on writers: a
// reader pins the current epoch (Pin, or implicitly through the
// convenience wrappers below) and reads one consistent version of every
// structure. Writers (ApplyEdgeInsert/ApplyEdgeInserts) are serialised by
// writeMu; they prepare the next snapshot on private copy-on-write pages —
// sharing every untouched B+-tree page with the published version — and
// publish it atomically. Pages superseded by a publish are returned to the
// pool's free list once the last epoch referencing them retires.
type DB struct {
	idx     reach.Index   // nil for a database reattached with Open
	inc     reach.Dynamic // lazily seeded by ApplyEdgeInsert
	backend reach.Backend

	pager storage.Pager
	pool  *storage.BufferPool
	heap  *storage.HeapFile

	// mgr publishes snapshot epochs; garbage is superseded page IDs.
	mgr *epoch.Manager[*Snap, storage.PageID]

	wcacheOn         bool
	codeCacheEntries int

	closed atomic.Bool

	// writeMu serialises writers: insert batches and Sync/Persist. Readers
	// never take it — they pin an epoch. Lock ordering: writeMu before any
	// snapshot-internal lock, never the reverse.
	writeMu sync.Mutex

	// insertPublishHook, when set (tests only), runs after an insert batch
	// has fully prepared its private next snapshot, immediately before the
	// atomic publish — the window in which readers must still see the old
	// epoch without blocking.
	insertPublishHook func()

	// Persistence bookkeeping (see persist.go): the manifest path this
	// database syncs to, the RIDs of the last-written graph records, and
	// whether the in-memory graph has drifted from them since. Mutated only
	// at build/open time or under writeMu.
	path           string
	nodesRID       uint64
	edgesRID       uint64
	graphPersisted bool
	graphDirty     bool
	bulkBuilt      bool // trees were bulk-loaded and untouched since
}

type wKey struct{ x, y graph.Label }

type codes struct{ in, out []graph.NodeID }

// codeCache is the working cache of decoded graph codes (the paper's
// getCenters cache, Section 3.3), sharded by node ID so parallel queries
// sharing hot codes do not serialise on one lock. Each shard is bounded;
// on overflow an arbitrary entry of the shard is dropped.
type codeCache struct {
	disabled bool
	shardCap int
	shards   [codeCacheShards]codeCacheShard
}

type codeCacheShard struct {
	mu sync.Mutex
	m  map[graph.NodeID]codes
}

const codeCacheShards = 16

func newCodeCache(entries int) *codeCache {
	c := &codeCache{}
	if entries < 0 {
		c.disabled = true
		return c
	}
	c.shardCap = entries / codeCacheShards
	if c.shardCap < 1 {
		c.shardCap = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[graph.NodeID]codes)
	}
	return c
}

func (c *codeCache) get(x graph.NodeID) (codes, bool) {
	if c.disabled {
		return codes{}, false
	}
	s := &c.shards[int(x)%codeCacheShards]
	s.mu.Lock()
	v, ok := s.m[x]
	s.mu.Unlock()
	return v, ok
}

func (c *codeCache) put(x graph.NodeID, v codes) {
	if c.disabled {
		return
	}
	s := &c.shards[int(x)%codeCacheShards]
	s.mu.Lock()
	if len(s.m) >= c.shardCap {
		// Simple bounded cache: drop an arbitrary entry of the shard.
		for k := range s.m {
			delete(s.m, k)
			break
		}
	}
	s.m[x] = v
	s.mu.Unlock()
}

// len returns the total number of cached entries (for white-box tests).
func (c *codeCache) len() int {
	if c.disabled {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// invalidate drops one node's cached codes (after its stored record
// changed).
func (c *codeCache) invalidate(x graph.NodeID) {
	if c.disabled {
		return
	}
	s := &c.shards[int(x)%codeCacheShards]
	s.mu.Lock()
	delete(s.m, x)
	s.mu.Unlock()
}

func (c *codeCache) clear() {
	if c.disabled {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[graph.NodeID]codes)
		s.mu.Unlock()
	}
}

// cloneWithout returns a new cache holding every entry of c except the
// dropped nodes — the warm start for the next epoch's cache, minus the
// nodes an insert batch touched.
func (c *codeCache) cloneWithout(drop map[graph.NodeID]struct{}) *codeCache {
	n := &codeCache{disabled: c.disabled, shardCap: c.shardCap}
	if c.disabled {
		return n
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		m := make(map[graph.NodeID]codes, len(s.m))
		for k, v := range s.m {
			if _, ok := drop[k]; !ok {
				m[k] = v
			}
		}
		s.mu.Unlock()
		n.shards[i].m = m
	}
	return n
}

const (
	dirF byte = 0
	dirT byte = 1
)

// Build constructs the database for g: computes the reachability labeling
// with the backend Options.ReachIndex selects, then writes the base
// tables, the cluster-based R-join index, and the W-table.
func Build(g *graph.Graph, opt Options) (*DB, error) {
	backend, err := reach.Lookup(opt.ReachIndex)
	if err != nil {
		return nil, err
	}
	idx := backend.Build(g, reach.Options{Parallelism: opt.BuildParallelism})
	return BuildFromIndex(g, idx, opt)
}

// BuildFromIndex is Build with a precomputed reachability index (to share
// one labeling across several database configurations in benchmarks). The
// index's backend must be registered; a non-empty Options.ReachIndex that
// names a different backend is an error.
func BuildFromIndex(g *graph.Graph, idx reach.Index, opt Options) (*DB, error) {
	if opt.ReachIndex != "" && opt.ReachIndex != idx.Backend() {
		return nil, fmt.Errorf("gdb: index built by backend %q, options ask for %q", idx.Backend(), opt.ReachIndex)
	}
	backend, err := reach.Lookup(idx.Backend())
	if err != nil {
		return nil, err
	}
	if opt.PoolBytes == 0 {
		opt.PoolBytes = storage.DefaultPoolBytes
	}
	if opt.CodeCacheEntries == 0 {
		opt.CodeCacheEntries = 65536
	}
	var pager storage.Pager
	if opt.Path == "" {
		pager = storage.NewMemPager()
	} else {
		fp, err := storage.OpenFilePager(opt.Path)
		if err != nil {
			return nil, err
		}
		pager = fp
	}
	db := &DB{
		idx:              idx,
		backend:          backend,
		pager:            pager,
		pool:             storage.NewBufferPool(pager, opt.PoolBytes),
		wcacheOn:         !opt.DisableWTableCache,
		codeCacheEntries: opt.CodeCacheEntries,
	}
	db.heap = storage.NewHeapFile(db.pool)
	db.path = opt.Path
	db.bulkBuilt = true
	s := db.newSnap(g)
	s.coverSize = idx.Size()
	workers := buildWorkers(opt.BuildParallelism)
	if err := db.buildBaseTables(s, workers); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.buildClusterIndexAndWTable(s, workers); err != nil {
		db.Close()
		return nil, err
	}
	db.publishInitial(s)
	if opt.Path != "" {
		if err := db.Persist(opt.Path); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// newSnap returns an empty snapshot shell with fresh caches.
func (db *DB) newSnap(g *graph.Graph) *Snap {
	return &Snap{
		db:        db,
		g:         g,
		base:      make(map[graph.Label]*storage.BTree),
		sig:       newSignature(),
		wcache:    make(map[wKey][]graph.NodeID),
		codeCache: newCodeCache(db.codeCacheEntries),
		joinSizes: make(map[wKey]int64),
		distFrom:  make(map[wKey]int64),
		distTo:    make(map[wKey]int64),
		projFrom:  make(map[wKey][]graph.NodeID),
		projTo:    make(map[wKey][]graph.NodeID),
	}
}

// publishInitial seals the heap and installs s as epoch 0. Called once,
// from Build or Open, before any concurrency exists.
func (db *DB) publishInitial(s *Snap) {
	db.heap.Seal()
	db.mgr = epoch.NewManager[*Snap, storage.PageID](s, db.freePages)
}

// freePages recycles pages whose reclamation horizon has passed: no live
// epoch references them anymore. Best-effort — a page that cannot be freed
// merely stays allocated.
func (db *DB) freePages(ids []storage.PageID) {
	if db.closed.Load() {
		return
	}
	for _, id := range ids {
		_ = db.pool.FreePage(id)
	}
}

// Close releases the pager. Close is idempotent; after the first call
// every query-path method returns ErrClosed.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	return db.pager.Close()
}

// Closed reports whether Close has been called.
func (db *DB) Closed() bool { return db.closed.Load() }

// Pin acquires the current snapshot epoch for reading and returns it with
// a release func (call it — usually deferred — when the read operation
// completes). The snapshot stays fully readable, and its pages
// unreclaimed, until released; the writer is never blocked and never
// blocks the reader. Pin an epoch once per outermost operation (a plan
// build plus its execution, a single Reaches) so the whole operation sees
// one version.
func (db *DB) Pin() (*Snap, func()) { return db.mgr.Pin() }

// EpochStats reports the epoch manager's bookkeeping: current epoch,
// live (pinned) epoch count, age of the oldest live epoch, and how many
// superseded epochs have been retired.
func (db *DB) EpochStats() epoch.Stats { return db.mgr.Stats() }

// OnEpochRetire registers fn to run whenever a snapshot epoch retires,
// with the minimum still-live epoch. Consumers keying derived state by
// epoch (the server's plan cache) use it to drop entries no pin can ever
// reach again. fn may run on any goroutine releasing the last pin of an
// epoch, so it must be cheap and non-blocking; the last registration wins.
func (db *DB) OnEpochRetire(fn func(minLive uint64)) { db.mgr.OnRetire(fn) }

// Graph returns the underlying data graph as of the current epoch. The
// returned handle is immutable: edge inserts publish a copy-on-write
// successor, so a held pointer keeps describing the graph as of when it
// was taken.
func (db *DB) Graph() *graph.Graph { return db.mgr.Current().g }

// Index returns the reachability index the database was built from, or
// nil for a database reattached with Open (the labeling's information
// lives in the stored graph codes; only the object is not reloaded).
func (db *DB) Index() reach.Index { return db.idx }

// ReachBackend returns the name of the reachability backend the database
// was built with — available on both built and opened databases (Open
// reads it from the manifest).
func (db *DB) ReachBackend() string { return db.backend.Name() }

// CoverSize returns the labeling size |H| as of the current epoch,
// available on both built and opened databases.
func (db *DB) CoverSize() int { return db.mgr.Current().coverSize }

// IOStats returns the buffer pool counters.
func (db *DB) IOStats() storage.IOStats { return db.pool.Stats() }

// ResetIOStats zeroes the buffer pool counters (e.g. after Build, before a
// measured query).
func (db *DB) ResetIOStats() { db.pool.ResetStats() }

// ClearCaches empties the current epoch's in-memory W-table, graph-code,
// and statistics caches so a measured query starts cold.
func (db *DB) ClearCaches() { db.mgr.Current().clearCaches() }

// NumCenters returns the number of centers in the cluster-based index as
// of the current epoch.
func (db *DB) NumCenters() int { return db.mgr.Current().numCenters }

// Heap exposes the database's record heap (read-only after Build; reads
// are safe for concurrent use).
func (db *DB) Heap() *storage.HeapFile { return db.heap }

// NewScratchHeap returns a fresh single-writer heap on the database's
// shared buffer pool for one query's intermediate results. Spilled pages
// share the pool — so intermediate-result sizes are charged as I/O, as in
// the paper's disk-resident (MiniBase) executor — but are private to the
// query; callers must Release the heap when done so its pages recycle.
func (db *DB) NewScratchHeap() *storage.HeapFile {
	return storage.NewScratchHeap(db.pool)
}

// SizeBytes returns the database's on-disk size (all allocated pages).
func (db *DB) SizeBytes() int { return db.pager.NumPages() * storage.PageSize }

// ResizePool changes the buffer pool capacity (see the paper's 1 MB buffer
// versus 20–100 MB datasets; benchmarks scale the pool to keep the same
// buffer-to-data ratio on scaled-down data).
func (db *DB) ResizePool(bytes int) error { return db.pool.Resize(bytes) }

func (db *DB) buildBaseTables(s *Snap, workers int) error {
	g := s.g
	n := g.NumNodes()
	// Encode every node's stored code up front: encoding is pure CPU and
	// embarrassingly parallel, while the heap appends stay serial (the heap
	// is single-writer) and in node order, so record placement is
	// deterministic and independent of the worker count.
	recs := make([][]byte, n)
	parallelRanges(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			recs[v] = encodeCodes(db.idx.In(graph.NodeID(v)), db.idx.Out(graph.NodeID(v)))
		}
	})
	rids := make([]uint64, n)
	byLabel := make([][]graph.NodeID, g.Labels().Len())
	for v := 0; v < n; v++ {
		rid, err := db.heap.Insert(recs[v])
		if err != nil {
			return err
		}
		recs[v] = nil
		rids[v] = rid.Encode()
		l := g.LabelOf(graph.NodeID(v))
		byLabel[l] = append(byLabel[l], graph.NodeID(v))
	}
	// Node IDs ascend within each label, so each base table's primary index
	// is a sorted key stream — bulk-load it bottom-up instead of descending
	// the tree once per node.
	for l := range byLabel {
		tree, err := storage.BulkLoad(db.pool, func(emit func([]byte, uint64) error) error {
			for _, v := range byLabel[l] {
				if err := emit(nodeKey(v), rids[v]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		s.base[graph.Label(l)] = tree
	}
	return nil
}

func (db *DB) buildClusterIndexAndWTable(s *Snap, workers int) error {
	inv := db.invertCover(s.g, workers)
	s.numCenters = len(inv.centers)
	L := inv.nLabels

	// The inversion lays subcluster segments out in exactly cluster-key
	// order — (center asc, dir F then T, label asc) — so the cluster index
	// is bulk-loaded from one sweep. W-table contributions fall out of the
	// same sweep: centers are visited ascending, keeping every W list
	// sorted without a per-list sort.
	wmap := make(map[wKey][]graph.NodeID)
	sig := newSignature()
	var err error
	s.cluster, err = storage.BulkLoad(db.pool, func(emit func([]byte, uint64) error) error {
		var fls, tls []graph.Label
		var fsz, tsz []int
		for ci, w := range inv.centers {
			fls, tls = fls[:0], tls[:0]
			fsz, tsz = fsz[:0], tsz[:0]
			for dir := 0; dir < 2; dir++ {
				for l := 0; l < L; l++ {
					s := (ci*2+dir)*L + l
					seg := inv.members[inv.offsets[s]:inv.offsets[s+1]]
					if len(seg) == 0 {
						continue
					}
					rid, err := db.heap.Insert(encodeNodeList(seg))
					if err != nil {
						return err
					}
					if err := emit(clusterKey(w, byte(dir), graph.Label(l)), rid.Encode()); err != nil {
						return err
					}
					if dir == int(dirF) {
						fls = append(fls, graph.Label(l))
						fsz = append(fsz, len(seg))
					} else {
						tls = append(tls, graph.Label(l))
						tsz = append(tsz, len(seg))
					}
				}
			}
			// W-table contributions: every (X-labeled F, Y-labeled T) pair.
			// The fan signature accumulates from the same segment sizes.
			sig.addCenter(fls, fsz, tls, tsz)
			for _, lx := range fls {
				for _, ly := range tls {
					k := wKey{lx, ly}
					wmap[k] = append(wmap[k], w)
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.sig = sig

	keys := make([]wKey, 0, len(wmap))
	for k := range wmap {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b wKey) int {
		if a.x != b.x {
			return int(a.x) - int(b.x)
		}
		return int(a.y) - int(b.y)
	})
	s.wtable, err = storage.BulkLoad(db.pool, func(emit func([]byte, uint64) error) error {
		for _, k := range keys {
			rid, err := db.heap.Insert(encodeNodeList(wmap[k]))
			if err != nil {
				return err
			}
			if err := emit(wtableKey(k.x, k.y), rid.Encode()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return db.pool.FlushAll()
}

func insertSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i, found := slices.BinarySearch(s, v)
	if found {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// The read methods below are pin-per-call conveniences: each pins the
// current epoch for just that one lookup. Operations that issue many
// lookups and need them mutually consistent (a plan build plus its run)
// should Pin once and use the Snap methods directly.

// Centers returns W(X, Y): the centers whose clusters can produce (X, Y)
// R-join pairs, sorted ascending. Returns nil when the entry is empty.
func (db *DB) Centers(x, y graph.Label) ([]graph.NodeID, error) {
	s, release := db.Pin()
	defer release()
	return s.Centers(x, y)
}

// GetF returns the X-labeled F-subcluster of center w (nodes u with
// u ⇝ w), sorted ascending; nil when empty.
func (db *DB) GetF(w graph.NodeID, x graph.Label) ([]graph.NodeID, error) {
	s, release := db.Pin()
	defer release()
	return s.GetF(w, x)
}

// GetT returns the Y-labeled T-subcluster of center w (nodes v with
// w ⇝ v), sorted ascending; nil when empty.
func (db *DB) GetT(w graph.NodeID, y graph.Label) ([]graph.NodeID, error) {
	s, release := db.Pin()
	defer release()
	return s.GetT(w, y)
}

// OutCode returns the full graph code out(x) = stored X_out ∪ {x}, sorted
// ascending.
func (db *DB) OutCode(x graph.NodeID) ([]graph.NodeID, error) {
	s, release := db.Pin()
	defer release()
	return s.OutCode(x)
}

// InCode returns the full graph code in(x) = stored X_in ∪ {x}, sorted
// ascending.
func (db *DB) InCode(x graph.NodeID) ([]graph.NodeID, error) {
	s, release := db.Pin()
	defer release()
	return s.InCode(x)
}

// Reaches evaluates u ⇝ v from graph codes: out(u) ∩ in(v) ≠ ∅.
func (db *DB) Reaches(u, v graph.NodeID) (bool, error) {
	s, release := db.Pin()
	defer release()
	return s.Reaches(u, v)
}

// JoinSize estimates |T_X ⋈_{X→Y} T_Y| as Σ_{w∈W(X,Y)} |F_X(w)|·|T_Y(w)|.
func (db *DB) JoinSize(x, y graph.Label) (int64, error) {
	s, release := db.Pin()
	defer release()
	return s.JoinSize(x, y)
}

// DistinctFrom returns |π_X(T_X ⋈_{X→Y} T_Y)|.
func (db *DB) DistinctFrom(x, y graph.Label) (int64, error) {
	s, release := db.Pin()
	defer release()
	return s.DistinctFrom(x, y)
}

// DistinctTo returns |π_Y(T_X ⋈_{X→Y} T_Y)|.
func (db *DB) DistinctTo(x, y graph.Label) (int64, error) {
	s, release := db.Pin()
	defer release()
	return s.DistinctTo(x, y)
}

// gallopRatio is the size skew at which intersection switches from the
// linear merge to galloping probes: with |large| ≥ gallopRatio·|small| the
// O(|small|·log|large|) search beats the O(|small|+|large|) scan. Graph
// codes intersected with W-table center lists are routinely skewed three
// orders of magnitude (a node's code holds a few centers; W(X, Y) holds
// thousands), which is exactly the regime galloping wins.
const gallopRatio = 16

// IntersectNonEmpty reports whether two ascending NodeID slices share an
// element. Heavily skewed inputs use galloping (exponential + binary)
// probes of the larger slice; balanced inputs use the linear merge.
func IntersectNonEmpty(a, b []graph.NodeID) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return false
	}
	if len(b) >= gallopRatio*len(a) {
		lo := 0
		for _, v := range a {
			i, found := gallopSearch(b, lo, v)
			if found {
				return true
			}
			if i >= len(b) {
				return false
			}
			lo = i
		}
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Intersect returns the elements common to two ascending NodeID slices,
// galloping through the larger slice when the sizes are heavily skewed.
func Intersect(a, b []graph.NodeID) []graph.NodeID {
	return IntersectTo(nil, a, b)
}

// Contains reports whether the ascending NodeID slice holds v.
func Contains(s []graph.NodeID, v graph.NodeID) bool {
	_, found := gallopSearch(s, 0, v)
	return found
}

// IntersectTo is Intersect writing into dst (reset to length zero), reusing
// its capacity. The leapfrog multiway R-join calls it once per trie level
// per binding, where a fresh allocation per intersection would dominate.
func IntersectTo(dst, a, b []graph.NodeID) []graph.NodeID {
	dst = dst[:0]
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		lo := 0
		for _, v := range a {
			i, found := gallopSearch(b, lo, v)
			if found {
				dst = append(dst, v)
				i++
			}
			if i >= len(b) {
				break
			}
			lo = i
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// gallopSearch finds the insertion point of v in the ascending slice s
// starting from lo: it widens an exponentially growing window until the
// window's upper bound passes v, then binary-searches inside it. Returns
// the first index i ≥ lo with s[i] ≥ v and whether s[i] == v. The combined
// cost over one intersection is O(|small|·log(gap)) — sub-linear in |s|
// when matches cluster, never worse than binary search per probe.
func gallopSearch(s []graph.NodeID, from int, v graph.NodeID) (int, bool) {
	lo, hi := from, from
	for step := 1; hi < len(s) && s[hi] < v; step <<= 1 {
		lo = hi + 1
		hi += step
	}
	end := hi + 1
	if end > len(s) {
		end = len(s)
	}
	for lo < end {
		mid := int(uint(lo+end) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			end = mid
		}
	}
	return lo, lo < len(s) && s[lo] == v
}

// Key encodings. Big-endian keeps B+-tree order aligned with numeric order.

func nodeKey(v graph.NodeID) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	return b[:]
}

func wtableKey(x, y graph.Label) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(x))
	binary.BigEndian.PutUint32(b[4:8], uint32(y))
	return b[:]
}

func clusterKey(w graph.NodeID, dir byte, l graph.Label) []byte {
	var b [9]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(w))
	b[4] = dir
	binary.BigEndian.PutUint32(b[5:9], uint32(l))
	return b[:]
}

// Record encodings.

func encodeNodeList(nodes []graph.NodeID) []byte {
	b := make([]byte, 4+4*len(nodes))
	binary.LittleEndian.PutUint32(b, uint32(len(nodes)))
	for i, v := range nodes {
		binary.LittleEndian.PutUint32(b[4+4*i:], uint32(v))
	}
	return b
}

func decodeNodeList(b []byte) []graph.NodeID {
	n := binary.LittleEndian.Uint32(b)
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(binary.LittleEndian.Uint32(b[4+4*i:]))
	}
	return out
}

func encodeCodes(in, out []graph.NodeID) []byte {
	b := make([]byte, 8+4*(len(in)+len(out)))
	binary.LittleEndian.PutUint32(b, uint32(len(in)))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(out)))
	o := 8
	for _, v := range in {
		binary.LittleEndian.PutUint32(b[o:], uint32(v))
		o += 4
	}
	for _, v := range out {
		binary.LittleEndian.PutUint32(b[o:], uint32(v))
		o += 4
	}
	return b
}

func decodeCodes(b []byte) (in, out []graph.NodeID) {
	ni := binary.LittleEndian.Uint32(b)
	no := binary.LittleEndian.Uint32(b[4:])
	in = make([]graph.NodeID, ni)
	out = make([]graph.NodeID, no)
	o := 8
	for i := range in {
		in[i] = graph.NodeID(binary.LittleEndian.Uint32(b[o:]))
		o += 4
	}
	for i := range out {
		out[i] = graph.NodeID(binary.LittleEndian.Uint32(b[o:]))
		o += 4
	}
	return in, out
}
