package gdb

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
)

// checkIndexConsistent verifies the full cluster-index contract against
// ground-truth BFS on g: Reaches from codes, subcluster label/reachability
// semantics, and W-table completeness (for every pair x ≠ y, x ⇝ y iff
// some center w ∈ W(label(x), label(y)) has x ∈ F and y ∈ T).
func checkIndexConsistent(t *testing.T, db *DB, g *graph.Graph) {
	t.Helper()
	n := g.NumNodes()
	for u := graph.NodeID(0); int(u) < n; u++ {
		for v := graph.NodeID(0); int(v) < n; v++ {
			want := graph.Reaches(g, u, v)
			got, err := db.Reaches(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Reaches(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	for w := graph.NodeID(0); int(w) < n; w++ {
		for l := graph.Label(0); int(l) < g.Labels().Len(); l++ {
			f, err := db.GetF(w, l)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range f {
				if g.LabelOf(u) != l || !graph.Reaches(g, u, w) {
					t.Fatalf("bad F-subcluster member %d of center %d label %d", u, w, l)
				}
			}
			tt, err := db.GetT(w, l)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range tt {
				if g.LabelOf(v) != l || !graph.Reaches(g, w, v) {
					t.Fatalf("bad T-subcluster member %d of center %d label %d", v, w, l)
				}
			}
		}
	}
	for x := graph.NodeID(0); int(x) < n; x++ {
		for y := graph.NodeID(0); int(y) < n; y++ {
			if x == y {
				continue
			}
			lx, ly := g.LabelOf(x), g.LabelOf(y)
			ws, err := db.Centers(lx, ly)
			if err != nil {
				t.Fatal(err)
			}
			covered := false
			for _, w := range ws {
				f, err := db.GetF(w, lx)
				if err != nil {
					t.Fatal(err)
				}
				tt, err := db.GetT(w, ly)
				if err != nil {
					t.Fatal(err)
				}
				if containsNode(f, x) && containsNode(tt, y) {
					covered = true
					break
				}
			}
			if covered != graph.Reaches(g, x, y) {
				t.Fatalf("W-table covers (%d,%d) = %v, reachability = %v", x, y, covered, graph.Reaches(g, x, y))
			}
		}
	}
}

// TestApplyEdgeInsertMaintainsIndex: a stream of random inserts must keep
// every persistent structure equivalent to ground truth, checked
// periodically with the full consistency sweep.
func TestApplyEdgeInsertMaintainsIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 24
	g := randomGraph(7, n, 36, 3)
	db := mustBuild(t, g, Options{})
	cur := g
	for step := 0; step < 40; step++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		st, err := db.ApplyEdgeInsert(u, v)
		if err != nil {
			t.Fatalf("step %d insert %d->%d: %v", step, u, v, err)
		}
		if !st.Duplicate {
			cur = cur.WithEdge(u, v)
		}
		if db.Graph().NumEdges() != cur.NumEdges() {
			t.Fatalf("step %d: db graph has %d edges, want %d", step, db.Graph().NumEdges(), cur.NumEdges())
		}
		if step%8 == 7 {
			checkIndexConsistent(t, db, cur)
		}
	}
	checkIndexConsistent(t, db, cur)
}

func TestApplyEdgeInsertDuplicateAndRange(t *testing.T) {
	g, ids := figure1Graph()
	db := mustBuild(t, g, Options{})
	st, err := db.ApplyEdgeInsert(ids["a0"], ids["b3"]) // exists in Figure 1
	if err != nil {
		t.Fatal(err)
	}
	if !st.Duplicate || st.LabelEntries != 0 {
		t.Fatalf("duplicate insert reported %+v", st)
	}
	if _, err := db.ApplyEdgeInsert(0, graph.NodeID(g.NumNodes())); !errors.Is(err, ErrBadInsert) {
		t.Fatalf("out-of-range insert: err = %v, want ErrBadInsert", err)
	}
	db.Close()
	if _, err := db.ApplyEdgeInsert(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert on closed db: err = %v, want ErrClosed", err)
	}
}

// TestApplyEdgeInsertStats: a cover-extending insert reports its label
// entries and any new center, and CoverSize tracks the growth.
func TestApplyEdgeInsertStats(t *testing.T) {
	g := randomGraph(3, 20, 26, 3)
	db := mustBuild(t, g, Options{})
	before := db.CoverSize()
	total := 0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		st, err := db.ApplyEdgeInsert(graph.NodeID(rng.Intn(20)), graph.NodeID(rng.Intn(20)))
		if err != nil {
			t.Fatal(err)
		}
		total += st.LabelEntries
	}
	if db.CoverSize() != before+total {
		t.Fatalf("CoverSize %d, want %d + %d", db.CoverSize(), before, total)
	}
}

// TestApplyEdgeInsertOnOpenedDB exercises the reconstruction path: the
// labeling is reseeded from the stored base-table codes, with no Cover
// object available.
func TestApplyEdgeInsertOnOpenedDB(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")
	g := randomGraph(19, 20, 30, 3)
	db, err := Build(g, Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Index() != nil {
		t.Fatal("opened db unexpectedly has a cover object")
	}
	rng := rand.New(rand.NewSource(23))
	cur := re.Graph()
	for i := 0; i < 15; i++ {
		u := graph.NodeID(rng.Intn(20))
		v := graph.NodeID(rng.Intn(20))
		st, err := re.ApplyEdgeInsert(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Duplicate {
			cur = cur.WithEdge(u, v)
		}
	}
	checkIndexConsistent(t, re, cur)
	// Sync makes the inserts durable; a reopened database must agree.
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	checkIndexConsistent(t, re2, cur)
}
