package gdb

import (
	"errors"
	"fmt"
	"slices"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/storage"
)

// ErrBadDelete reports an edge delete whose endpoints lie outside the
// graph's node range.
var ErrBadDelete = errors.New("gdb: edge endpoint out of range")

// EdgeDeleteStats summarises what one edge delete changed.
type EdgeDeleteStats struct {
	// Missing is set when the edge was not present; nothing was changed.
	// A batch whose every edge is missing publishes no epoch.
	Missing bool
	// RemovedLabelEntries is the number of stale 2-hop label entries the
	// repair removed (entries whose every support path used the edge).
	RemovedLabelEntries int
	// AddedLabelEntries is the number of entries the repair re-added for
	// still-reachable pairs the removals had left uncovered.
	AddedLabelEntries int
	// NewCenters / DroppedCenters count centers the re-cover elected and
	// centers whose subclusters emptied and were retired from the R-join
	// index (their W-table rows go with them).
	NewCenters     int
	DroppedCenters int
	// RemovedWPairs / NewWPairs count W-table entries that lost / gained a
	// center — label pairs (X, Y) whose R-join center list changed.
	RemovedWPairs int
	NewWPairs     int
}

// ApplyEdgeDelete removes one edge; it is ApplyEdgeDeletes with a
// single-element batch.
func (db *DB) ApplyEdgeDelete(u, v graph.NodeID) (EdgeDeleteStats, error) {
	sts, err := db.ApplyEdgeDeletes([][2]graph.NodeID{{u, v}})
	if len(sts) == 1 {
		return sts[0], err
	}
	return EdgeDeleteStats{}, err
}

// ApplyEdgeDeletes removes the edges u→v in order and incrementally
// repairs every persistent structure — no rebuild. Per edge:
//
//  1. The 2-hop cover is repaired by over-delete/re-insert
//     (reach.Incremental.DeleteEdge): label entries whose only support
//     path used u→v are identified by pruned re-BFS from the affected
//     centers and removed, then any still-supported pairs the removals
//     orphaned are re-covered. Both directions are reported as deltas.
//  2. Each delta rewrites its node's base-table record (T_X in/out codes)
//     through the append-only heap and a copy-on-write upsert.
//  3. The same deltas, inverted per center, shrink or extend the F-/T-
//     subclusters in the cluster index. Subcluster slots that empty are
//     deleted; a center whose every subcluster emptied is dropped
//     (including its self entries), and a center the re-cover elected is
//     created with its self entries.
//  4. W-table rows are retracted for label pairs (X, Y) a center no
//     longer completes and extended for pairs it newly completes; rows
//     whose center list empties are deleted.
//
// Like inserts, the batch is MVCC: all tree updates go to a private next
// snapshot through page-level copy-on-write and become visible in ONE
// atomic epoch publish at the end. Deleting an absent edge is a no-op
// reported via Stats.Missing; a batch that changes nothing (every edge
// absent, or listed twice — the first occurrence removes it) publishes no
// epoch. The returned slice covers the successfully applied prefix, which
// is still published on error. Updates are in-memory-durable only; call
// Sync to persist them.
func (db *DB) ApplyEdgeDeletes(edges [][2]graph.NodeID) ([]EdgeDeleteStats, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	cur := db.mgr.Current() // stable: this goroutine is the only publisher
	w := newSnapWriter(db, cur)

	sts := make([]EdgeDeleteStats, 0, len(edges))
	var firstErr error
	for _, e := range edges {
		st, err := w.applyOneDelete(e[0], e[1])
		if err != nil {
			firstErr = err
			break
		}
		sts = append(sts, st)
	}
	if w.changed {
		w.publish(cur)
	}
	return sts, firstErr
}

func (w *snapWriter) applyOneDelete(u, v graph.NodeID) (EdgeDeleteStats, error) {
	var st EdgeDeleteStats
	n := graph.NodeID(w.g.NumNodes())
	if u < 0 || v < 0 || u >= n || v >= n {
		return st, fmt.Errorf("%w: edge %d->%d, graph has %d nodes", ErrBadDelete, u, v, n)
	}
	if !slices.Contains(w.g.Successors(u), v) {
		st.Missing = true
		return st, nil
	}
	if err := w.ensureIncremental(); err != nil {
		return st, err
	}

	deltas := w.db.inc.DeleteEdge(u, v)
	w.g = w.g.WithoutEdge(u, v)
	w.changed = true // the edge list shrank even if no label moved
	for _, d := range deltas {
		if d.Removed {
			st.RemovedLabelEntries++
		} else {
			st.AddedLabelEntries++
		}
	}
	if len(deltas) == 0 {
		return st, nil // a redundant edge: the cover never relied on it
	}

	if err := w.applyBaseDeltas(deltas); err != nil {
		return st, err
	}
	cs, err := w.applyCenterDeltas(deltas)
	if err != nil {
		return st, err
	}
	st.NewCenters = cs.born
	st.DroppedCenters = cs.died
	st.NewWPairs = cs.wAdded
	st.RemovedWPairs = cs.wRemoved

	for _, d := range deltas {
		w.touchedNodes[d.Node] = struct{}{}
	}
	w.coverSize += st.AddedLabelEntries - st.RemovedLabelEntries
	return st, nil
}

// centerChangeStats aggregates what applyCenterDeltas did across the
// centers a delta set touched.
type centerChangeStats struct {
	born, died       int
	wAdded, wRemoved int
}

// applyCenterDeltas applies label deltas — additions and removals, over
// any number of centers — to the cluster index and the W-table. Per
// center, ascending:
//
//   - an out-side delta for node x adds x to / removes x from F-subcluster
//     (c, F, label(x)); in-side deltas drive the T-side symmetrically;
//   - a center that was not live gains its self entries (c, F/T, label(c))
//     before its first member (the ∪{w} convention of Section 3.2), and a
//     center left with no member but itself is dropped entirely — its
//     remaining keys are deleted and NumCenters shrinks;
//   - the W-table then absorbs the difference between the center's
//     non-empty subcluster label pairs before and after: c leaves W(X, Y)
//     for vanished pairs (rows whose center list empties are deleted) and
//     joins it for new ones.
//
// Emptied subcluster slots and retracted W rows are real B+-tree key
// deletions (DeleteCow), so readers of the next epoch never see them.
func (w *snapWriter) applyCenterDeltas(deltas []reach.LabelDelta) (centerChangeStats, error) {
	var cs centerChangeStats
	byCenter := make(map[graph.NodeID][]reach.LabelDelta)
	centers := make([]graph.NodeID, 0, 4)
	for _, d := range deltas {
		if _, ok := byCenter[d.Center]; !ok {
			centers = append(centers, d.Center)
		}
		byCenter[d.Center] = append(byCenter[d.Center], d)
	}
	slices.Sort(centers)

	for _, c := range centers {
		if err := w.applyOneCenter(c, byCenter[c], &cs); err != nil {
			return cs, err
		}
	}
	return cs, nil
}

type clusterSlot struct {
	dir byte
	l   graph.Label
}

func (w *snapWriter) applyOneCenter(c graph.NodeID, ds []reach.LabelDelta, cs *centerChangeStats) error {
	allF0, fsz0, err := w.clusterSlotSizes(c, dirF, true)
	if err != nil {
		return err
	}
	allT0, tsz0, err := w.clusterSlotSizes(c, dirT, true)
	if err != nil {
		return err
	}
	liveBefore := len(allF0) > 0 // a live center always has its self F entry

	// The fan signature is maintained by contribution replacement: retract
	// c's pre-update slot sizes now, re-add the post-update sizes below.
	w.ensureSig()
	w.sig.removeCenter(allF0, fsz0, allT0, tsz0)

	rem := make(map[clusterSlot][]graph.NodeID)
	add := make(map[clusterSlot][]graph.NodeID)
	hadRemovals := false
	for _, d := range ds {
		dir := dirT
		if d.Out {
			dir = dirF
		}
		s := clusterSlot{dir, w.g.LabelOf(d.Node)}
		if d.Removed {
			rem[s] = append(rem[s], d.Node)
			hadRemovals = true
		} else {
			add[s] = append(add[s], d.Node)
		}
	}
	if !liveBefore && len(add) > 0 {
		cs.born++
		w.numCenters++
		lc := w.g.LabelOf(c)
		add[clusterSlot{dirF, lc}] = append(add[clusterSlot{dirF, lc}], c)
		add[clusterSlot{dirT, lc}] = append(add[clusterSlot{dirT, lc}], c)
	}

	slots := make(map[clusterSlot]struct{}, len(rem)+len(add))
	for s := range rem {
		slots[s] = struct{}{}
	}
	for s := range add {
		slots[s] = struct{}{}
	}
	order := make([]clusterSlot, 0, len(slots))
	for s := range slots {
		order = append(order, s)
	}
	slices.SortFunc(order, func(a, b clusterSlot) int {
		if a.dir != b.dir {
			return int(a.dir) - int(b.dir)
		}
		return int(a.l) - int(b.l)
	})
	for _, s := range order {
		if err := w.updateClusterSlot(c, s, rem[s], add[s]); err != nil {
			return err
		}
	}

	// Death check: removals may have left the center with no member but
	// itself, in which case it must not survive — a spurious center would
	// add (c, c) rows to the W pair of its own label and change results.
	if liveBefore && hadRemovals {
		dead, err := w.centerIsDead(c)
		if err != nil {
			return err
		}
		if dead {
			if err := w.dropCenterKeys(c); err != nil {
				return err
			}
			cs.died++
			w.numCenters--
		}
	}

	allF1, fsz1, err := w.clusterSlotSizes(c, dirF, true)
	if err != nil {
		return err
	}
	allT1, tsz1, err := w.clusterSlotSizes(c, dirT, true)
	if err != nil {
		return err
	}
	w.sig.addCenter(allF1, fsz1, allT1, tsz1)
	if slices.Equal(allF0, allF1) && slices.Equal(allT0, allT1) {
		return nil
	}
	return w.updateWTablePairs(c, allF0, allT0, allF1, allT1, cs)
}

// updateClusterSlot applies member removals then additions to one
// subcluster slot, deleting its key when it empties.
func (w *snapWriter) updateClusterSlot(c graph.NodeID, s clusterSlot, rem, add []graph.NodeID) error {
	key := clusterKey(c, s.dir, s.l)
	var members []graph.NodeID
	rid, ok, err := w.cluster.Get(key)
	if err != nil {
		return err
	}
	if ok {
		rec, err := w.db.heap.Read(storage.DecodeRID(rid))
		if err != nil {
			return err
		}
		members = decodeNodeList(rec)
	}
	changed := false
	for _, x := range rem {
		n0 := len(members)
		members = removeSorted(members, x)
		changed = changed || len(members) != n0
	}
	for _, x := range add {
		n0 := len(members)
		members = insertSorted(members, x)
		changed = changed || len(members) != n0
	}
	if !changed {
		return nil
	}
	if len(members) == 0 {
		if !ok {
			return nil
		}
		nt, _, derr := w.cluster.DeleteCow(w.cow, key)
		if derr != nil {
			return derr
		}
		w.cluster = nt
		return nil
	}
	nrid, err := w.db.heap.Insert(encodeNodeList(members))
	if err != nil {
		return err
	}
	nt, err := w.cluster.InsertCow(w.cow, key, nrid.Encode())
	if err != nil {
		return err
	}
	w.cluster = nt
	return nil
}

// centerIsDead reports whether c's subclusters hold no node but c itself.
func (w *snapWriter) centerIsDead(c graph.NodeID) (bool, error) {
	for _, dir := range []byte{dirF, dirT} {
		ls, err := w.clusterLabels(c, dir)
		if err != nil {
			return false, err
		}
		for _, l := range ls {
			rid, ok, err := w.cluster.Get(clusterKey(c, dir, l))
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			rec, err := w.db.heap.Read(storage.DecodeRID(rid))
			if err != nil {
				return false, err
			}
			for _, m := range decodeNodeList(rec) {
				if m != c {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// dropCenterKeys deletes every cluster-index key of center c (after a
// death check these are exactly its self entries).
func (w *snapWriter) dropCenterKeys(c graph.NodeID) error {
	for _, dir := range []byte{dirF, dirT} {
		ls, err := w.clusterLabels(c, dir)
		if err != nil {
			return err
		}
		for _, l := range ls {
			nt, _, err := w.cluster.DeleteCow(w.cow, clusterKey(c, dir, l))
			if err != nil {
				return err
			}
			w.cluster = nt
		}
	}
	return nil
}

// updateWTablePairs moves center c between W rows to match its non-empty
// subcluster labels going from (allF0, allT0) to (allF1, allT1).
func (w *snapWriter) updateWTablePairs(c graph.NodeID, allF0, allT0, allF1, allT1 []graph.Label, cs *centerChangeStats) error {
	before := make(map[wKey]struct{}, len(allF0)*len(allT0))
	for _, x := range allF0 {
		for _, y := range allT0 {
			before[wKey{x, y}] = struct{}{}
		}
	}
	after := make(map[wKey]struct{}, len(allF1)*len(allT1))
	for _, x := range allF1 {
		for _, y := range allT1 {
			after[wKey{x, y}] = struct{}{}
		}
	}
	changed := make([]wKey, 0, len(before)+len(after))
	for k := range before {
		if _, ok := after[k]; !ok {
			changed = append(changed, k)
		}
	}
	for k := range after {
		if _, ok := before[k]; !ok {
			changed = append(changed, k)
		}
	}
	slices.SortFunc(changed, func(a, b wKey) int {
		if a.x != b.x {
			return int(a.x) - int(b.x)
		}
		return int(a.y) - int(b.y)
	})
	for _, k := range changed {
		_, gain := after[k]
		var ws []graph.NodeID
		rid, ok, err := w.wtable.Get(wtableKey(k.x, k.y))
		if err != nil {
			return err
		}
		if ok {
			rec, err := w.db.heap.Read(storage.DecodeRID(rid))
			if err != nil {
				return err
			}
			ws = decodeNodeList(rec)
		}
		n0 := len(ws)
		if gain {
			ws = insertSorted(ws, c)
		} else {
			ws = removeSorted(ws, c)
		}
		if len(ws) == n0 {
			continue
		}
		if len(ws) == 0 {
			if ok {
				nt, _, derr := w.wtable.DeleteCow(w.cow, wtableKey(k.x, k.y))
				if derr != nil {
					return derr
				}
				w.wtable = nt
			}
		} else {
			nrid, err := w.db.heap.Insert(encodeNodeList(ws))
			if err != nil {
				return err
			}
			nt, err := w.wtable.InsertCow(w.cow, wtableKey(k.x, k.y), nrid.Encode())
			if err != nil {
				return err
			}
			w.wtable = nt
		}
		if gain {
			cs.wAdded++
		} else {
			cs.wRemoved++
		}
		w.touchedW[k] = struct{}{}
	}
	return nil
}

// removeSorted removes v from the sorted slice if present, returning the
// (possibly shared) slice.
func removeSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i, found := slices.BinarySearch(s, v)
	if !found {
		return s
	}
	return slices.Delete(s, i, i+1)
}
