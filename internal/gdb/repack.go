package gdb

import (
	"fmt"
	"os"
)

// Repack rewrites the file-backed database at src into a brand-new page
// file at dst with every index rebuilt through the bulk-load path
// (storage.BulkLoad): packed leaves, no half-full point-insert split
// pages, and graph records laid out contiguously at the front of the
// heap. Edge inserts keep a database correct but fragment its layout;
// repacking restores the dense image Build would produce from the current
// graph, typically shrinking the file and the I/O per range scan.
//
// Repack is offline: it opens src read-only (nothing in src is modified),
// computes the 2-hop cover from scratch serially — deterministic, so
// repacking the same source twice yields byte-identical page files and
// manifests — and replaces any existing file at dst. src and dst must
// differ; to repack in place, write to a temp path and rename over src
// afterwards.
func Repack(src, dst string, opt Options) error {
	if src == dst {
		return fmt.Errorf("gdb: repack in place is not supported (src == dst); write to a temp path and rename")
	}
	srcOpt := opt
	srcOpt.Path = ""
	srcDB, err := Open(src, srcOpt)
	if err != nil {
		return fmt.Errorf("gdb: repack open %s: %w", src, err)
	}
	g := srcDB.Graph() // immutable and fully in memory; outlives the close
	if err := srcDB.Close(); err != nil {
		return err
	}

	for _, p := range []string{dst, manifestPath(dst)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	// Serial build everywhere: parallel labeling may emit a slightly
	// different (still valid) labeling per run, which would break the
	// byte-stability contract.
	opt.Path = dst
	opt.BuildParallelism = 0
	db, err := Build(g, opt)
	if err != nil {
		return fmt.Errorf("gdb: repack build %s: %w", dst, err)
	}
	return db.Close()
}
