package gdb

import (
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
)

func TestZZReviewRepackKeepsBackend(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddEdge(a, b)
	dir := t.TempDir()
	src := filepath.Join(dir, "src.db")
	db, err := Build(g, Options{Path: src, ReachIndex: "pll"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Persist(src); err != nil {
		t.Fatal(err)
	}
	db.Close()

	dst := filepath.Join(dir, "dst.db")
	if err := Repack(src, dst, Options{}); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.ReachBackend(); got != "pll" {
		t.Fatalf("repacked db backend = %q, want %q (source was pll)", got, "pll")
	}
}
