package gdb

import (
	"fmt"
	"sync"

	"fastmatch/internal/graph"
	"fastmatch/internal/storage"
)

// Snap is one published epoch of the database: an immutable bundle of the
// graph handle, the base tables, the cluster index, and the W-table, plus
// this epoch's derived caches. The entire read path lives on Snap, so a
// reader that pins an epoch (DB.Pin) sees one consistent version of every
// structure for as long as it holds the pin — no locks against the writer,
// which prepares the next version on private copy-on-write pages and
// publishes it atomically.
//
// Index content is immutable within an epoch, so the caches memoizing
// decoded content (W lists, graph codes, optimizer statistics) are never
// invalidated; a successor epoch starts from the survivors of its
// predecessor minus the entries the insert batch touched. The caches are
// internally locked only to coordinate concurrent readers filling them.
type Snap struct {
	db *DB
	g  *graph.Graph

	base    map[graph.Label]*storage.BTree // primary index per base table
	wtable  *storage.BTree                 // (X,Y) → RID of center list
	cluster *storage.BTree                 // (w, dir, label) → RID of node list

	numCenters int
	coverSize  int
	epoch      uint64

	// sig is the per-label fan-signature table (see signature.go):
	// immutable within the epoch, maintained across epochs by the
	// snapshot writer.
	sig *Signature

	wmu       sync.RWMutex
	wcache    map[wKey][]graph.NodeID
	codeCache *codeCache

	// clmu guards the tier-1 fast path's memos: the decoded-subcluster
	// memo (FastF/FastT) and the per-value center-set memo (FastCenters).
	// Only the fast-path runtime reads through them; the full pipeline
	// keeps the paper's disk-resident cost model, fetching every
	// subcluster and code through the buffer pool.
	clmu    sync.RWMutex
	clcache map[clKey][]graph.NodeID
	clNodes int // total node IDs held, for the memo's size bound
	ccache  map[ccKey][]graph.NodeID
	ccNodes int

	statMu    sync.Mutex     // guards the memo maps below
	joinSizes map[wKey]int64 // memoized base-table R-join size estimates
	distFrom  map[wKey]int64 // memoized |π_X(T_X ⋈ T_Y)|
	distTo    map[wKey]int64 // memoized |π_Y(T_X ⋈ T_Y)|
	// projFrom/projTo memoize the sorted distinct projections themselves
	// (the lists whose lengths distFrom/distTo report): the per-edge
	// unary iterators of the worst-case-optimal multiway R-join.
	projFrom map[wKey][]graph.NodeID
	projTo   map[wKey][]graph.NodeID
}

// Epoch returns this snapshot's epoch number (0 for the build).
func (s *Snap) Epoch() uint64 { return s.epoch }

// Graph returns the data graph as of this epoch. The graph handle is
// immutable; edge inserts build a copy-on-write successor for the next
// epoch.
func (s *Snap) Graph() *graph.Graph { return s.g }

// NumCenters returns the number of centers in this epoch's R-join index.
func (s *Snap) NumCenters() int { return s.numCenters }

// CoverSize returns the 2-hop cover size |H| as of this epoch.
func (s *Snap) CoverSize() int { return s.coverSize }

// IOStats returns the shared buffer pool counters.
func (s *Snap) IOStats() storage.IOStats { return s.db.pool.Stats() }

// NewScratchHeap returns a fresh single-writer heap on the database's
// shared buffer pool for one query's intermediate results. Spilled pages
// share the pool — so intermediate-result sizes are charged as I/O, as in
// the paper's disk-resident (MiniBase) executor — but are private to the
// query; callers must Release the heap when done so its pages recycle.
func (s *Snap) NewScratchHeap() *storage.HeapFile {
	return storage.NewScratchHeap(s.db.pool)
}

// Centers returns W(X, Y): the centers whose clusters can produce (X, Y)
// R-join pairs, sorted ascending. Returns nil when the entry is empty.
func (s *Snap) Centers(x, y graph.Label) ([]graph.NodeID, error) {
	if s.db.closed.Load() {
		return nil, ErrClosed
	}
	k := wKey{x, y}
	if s.db.wcacheOn {
		s.wmu.RLock()
		ws, ok := s.wcache[k]
		s.wmu.RUnlock()
		if ok {
			return ws, nil
		}
	}
	v, ok, err := s.wtable.Get(wtableKey(x, y))
	if err != nil {
		return nil, err
	}
	var ws []graph.NodeID
	if ok {
		rec, err := s.db.heap.Read(storage.DecodeRID(v))
		if err != nil {
			return nil, err
		}
		ws = decodeNodeList(rec)
	}
	if s.db.wcacheOn {
		s.wmu.Lock()
		s.wcache[k] = ws
		s.wmu.Unlock()
	}
	return ws, nil
}

// GetF returns the X-labeled F-subcluster of center w (nodes u with
// u ⇝ w), sorted ascending; nil when empty.
func (s *Snap) GetF(w graph.NodeID, x graph.Label) ([]graph.NodeID, error) {
	return s.clusterLookup(w, dirF, x)
}

// GetT returns the Y-labeled T-subcluster of center w (nodes v with
// w ⇝ v), sorted ascending; nil when empty.
func (s *Snap) GetT(w graph.NodeID, y graph.Label) ([]graph.NodeID, error) {
	return s.clusterLookup(w, dirT, y)
}

// clKey identifies one decoded subcluster in the fast-path memo.
type clKey struct {
	w   graph.NodeID
	dir byte
	l   graph.Label
}

// fastClusterCacheNodes bounds the fast-path subcluster memo: the total
// node IDs held across all cached lists (≈4 MB at the 1M default). On
// overflow the memo resets — an epoch-local cache, not a second index.
const fastClusterCacheNodes = 1 << 20

// FastF is GetF through the epoch's decoded-subcluster memo: the tier-1
// index-only read path. The first access per (center, label) decodes the
// list from storage; repeats are served from memory without buffer-pool
// traffic. The returned slice is shared — callers must not mutate it.
func (s *Snap) FastF(w graph.NodeID, x graph.Label) ([]graph.NodeID, error) {
	return s.fastClusterLookup(w, dirF, x)
}

// FastT is GetT through the epoch's decoded-subcluster memo (see FastF).
func (s *Snap) FastT(w graph.NodeID, y graph.Label) ([]graph.NodeID, error) {
	return s.fastClusterLookup(w, dirT, y)
}

func (s *Snap) fastClusterLookup(w graph.NodeID, dir byte, l graph.Label) ([]graph.NodeID, error) {
	k := clKey{w, dir, l}
	s.clmu.RLock()
	nodes, ok := s.clcache[k]
	s.clmu.RUnlock()
	if ok {
		return nodes, nil
	}
	nodes, err := s.clusterLookup(w, dir, l)
	if err != nil {
		return nil, err
	}
	s.clmu.Lock()
	if s.clNodes+len(nodes) > fastClusterCacheNodes {
		s.clcache, s.clNodes = nil, 0
	}
	if s.clcache == nil {
		s.clcache = make(map[clKey][]graph.NodeID)
	}
	if _, dup := s.clcache[k]; !dup {
		s.clcache[k] = nodes
		s.clNodes += len(nodes)
	}
	s.clmu.Unlock()
	return nodes, nil
}

// ccKey identifies one bound value's center set in the fast-path memo.
type ccKey struct {
	v    graph.NodeID
	x, y graph.Label
	fwd  bool
}

// FastCenters returns getCenters for one bound value — out(v) ∩ W(X, Y)
// forward, in(v) ∩ W(X, Y) reverse — through the epoch's memo: the tier-1
// index-only read path behind Fetch. The intersection is a pure function of
// the epoch's codes and W-table, so a value revisited by any later query on
// the same snapshot costs a map lookup instead of a code fetch and a
// gallop. Bounded and reset like the subcluster memo; the returned slice is
// shared — callers must not mutate it.
func (s *Snap) FastCenters(v graph.NodeID, x, y graph.Label, forward bool) ([]graph.NodeID, error) {
	k := ccKey{v, x, y, forward}
	s.clmu.RLock()
	cs, ok := s.ccache[k]
	s.clmu.RUnlock()
	if ok {
		return cs, nil
	}
	var code []graph.NodeID
	var err error
	if forward {
		code, err = s.OutCode(v)
	} else {
		code, err = s.InCode(v)
	}
	if err != nil {
		return nil, err
	}
	ws, err := s.Centers(x, y)
	if err != nil {
		return nil, err
	}
	cs = Intersect(code, ws)
	s.clmu.Lock()
	if s.ccNodes+len(cs)+1 > fastClusterCacheNodes {
		s.ccache, s.ccNodes = nil, 0
	}
	if s.ccache == nil {
		s.ccache = make(map[ccKey][]graph.NodeID)
	}
	if _, dup := s.ccache[k]; !dup {
		s.ccache[k] = cs
		s.ccNodes += len(cs) + 1 // +1 so empty sets still count toward the bound
	}
	s.clmu.Unlock()
	return cs, nil
}

func (s *Snap) clusterLookup(w graph.NodeID, dir byte, l graph.Label) ([]graph.NodeID, error) {
	if s.db.closed.Load() {
		return nil, ErrClosed
	}
	v, ok, err := s.cluster.Get(clusterKey(w, dir, l))
	if err != nil || !ok {
		return nil, err
	}
	rec, err := s.db.heap.Read(storage.DecodeRID(v))
	if err != nil {
		return nil, err
	}
	return decodeNodeList(rec), nil
}

// OutCode returns the full graph code out(x) = stored X_out ∪ {x}, sorted
// ascending. Reads the base table through its primary index, with the
// working cache of Section 3.3.
func (s *Snap) OutCode(x graph.NodeID) ([]graph.NodeID, error) {
	c, err := s.getCodes(x)
	if err != nil {
		return nil, err
	}
	return c.out, nil
}

// InCode returns the full graph code in(x) = stored X_in ∪ {x}, sorted
// ascending.
func (s *Snap) InCode(x graph.NodeID) ([]graph.NodeID, error) {
	c, err := s.getCodes(x)
	if err != nil {
		return nil, err
	}
	return c.in, nil
}

func (s *Snap) getCodes(x graph.NodeID) (codes, error) {
	if c, ok := s.codeCache.get(x); ok {
		return c, nil
	}
	if s.db.closed.Load() {
		return codes{}, ErrClosed
	}
	v, ok, err := s.base[s.g.LabelOf(x)].Get(nodeKey(x))
	if err != nil {
		return codes{}, err
	}
	if !ok {
		return codes{}, fmt.Errorf("gdb: node %d missing from base table", x)
	}
	rec, err := s.db.heap.Read(storage.DecodeRID(v))
	if err != nil {
		return codes{}, err
	}
	in, out := decodeCodes(rec)
	c := codes{in: insertSorted(in, x), out: insertSorted(out, x)}
	s.codeCache.put(x, c)
	return c, nil
}

// Reaches evaluates u ⇝ v from graph codes: out(u) ∩ in(v) ≠ ∅.
func (s *Snap) Reaches(u, v graph.NodeID) (bool, error) {
	if u == v {
		return true, nil
	}
	ou, err := s.OutCode(u)
	if err != nil {
		return false, err
	}
	iv, err := s.InCode(v)
	if err != nil {
		return false, err
	}
	return IntersectNonEmpty(ou, iv), nil
}

// JoinSize estimates |T_X ⋈_{X→Y} T_Y| as Σ_{w∈W(X,Y)} |F_X(w)|·|T_Y(w)|
// (an upper bound: a pair may be covered by several centers). Results are
// memoized; the paper maintains these base-table join sizes for the
// optimizer.
func (s *Snap) JoinSize(x, y graph.Label) (int64, error) {
	k := wKey{x, y}
	s.statMu.Lock()
	sz, ok := s.joinSizes[k]
	s.statMu.Unlock()
	if ok {
		return sz, nil
	}
	ws, err := s.Centers(x, y)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, w := range ws {
		f, err := s.GetF(w, x)
		if err != nil {
			return 0, err
		}
		t, err := s.GetT(w, y)
		if err != nil {
			return 0, err
		}
		total += int64(len(f)) * int64(len(t))
	}
	s.statMu.Lock()
	s.joinSizes[k] = total
	s.statMu.Unlock()
	return total, nil
}

// DistinctFrom returns |π_X(T_X ⋈_{X→Y} T_Y)|: the number of X-labeled
// nodes that reach at least one Y-labeled node, computed exactly as the
// union of the X-labeled F-subclusters over W(X, Y). Memoized.
func (s *Snap) DistinctFrom(x, y graph.Label) (int64, error) {
	p, err := s.ProjectFrom(x, y)
	return int64(len(p)), err
}

// DistinctTo returns |π_Y(T_X ⋈_{X→Y} T_Y)|: the number of Y-labeled nodes
// reached from at least one X-labeled node. Memoized.
func (s *Snap) DistinctTo(x, y graph.Label) (int64, error) {
	p, err := s.ProjectTo(x, y)
	return int64(len(p)), err
}

// ProjectFrom returns π_X(T_X ⋈_{X→Y} T_Y) as a sorted ascending list: every
// X-labeled node that reaches at least one Y-labeled node, computed as the
// sorted-set union of the X-labeled F-subclusters over W(X, Y). The list is
// memoized per snapshot and shared — callers must not mutate it. It is the
// unary (first trie level) iterator of edge X→Y in the worst-case-optimal
// multiway R-join.
func (s *Snap) ProjectFrom(x, y graph.Label) ([]graph.NodeID, error) {
	return s.projection(x, y, dirF, x, s.projFrom, s.distFrom)
}

// ProjectTo returns π_Y(T_X ⋈_{X→Y} T_Y) as a sorted ascending list: every
// Y-labeled node reached from at least one X-labeled node (union of the
// Y-labeled T-subclusters over W(X, Y)). Memoized and shared; do not mutate.
func (s *Snap) ProjectTo(x, y graph.Label) ([]graph.NodeID, error) {
	return s.projection(x, y, dirT, y, s.projTo, s.distTo)
}

func (s *Snap) projection(x, y graph.Label, dir byte, side graph.Label, memo map[wKey][]graph.NodeID, count map[wKey]int64) ([]graph.NodeID, error) {
	k := wKey{x, y}
	s.statMu.Lock()
	p, ok := memo[k]
	s.statMu.Unlock()
	if ok {
		return p, nil
	}
	ws, err := s.Centers(x, y)
	if err != nil {
		return nil, err
	}
	var union, scratch []graph.NodeID
	for _, w := range ws {
		nodes, err := s.clusterLookup(w, dir, side)
		if err != nil {
			return nil, err
		}
		if len(nodes) == 0 {
			continue
		}
		if len(union) == 0 {
			union = append(union, nodes...)
			continue
		}
		scratch = mergeUnionNodes(scratch[:0], union, nodes)
		union, scratch = scratch, union
	}
	s.statMu.Lock()
	memo[k] = union
	count[k] = int64(len(union)) // keep the length memo coherent for free
	s.statMu.Unlock()
	return union, nil
}

// mergeUnionNodes appends the sorted-set union of two ascending duplicate-
// free slices to dst.
func mergeUnionNodes(dst, a, b []graph.NodeID) []graph.NodeID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// clearCaches empties this epoch's derived data caches (cold-start
// benchmarks). The optimizer stat memos (JoinSize, DistinctFrom/To) stay:
// they hold exact per-snapshot values that cannot go stale within an
// epoch, and benchmarks charge their cost on first access only.
func (s *Snap) clearCaches() {
	s.wmu.Lock()
	s.wcache = make(map[wKey][]graph.NodeID)
	s.wmu.Unlock()
	s.clmu.Lock()
	s.clcache, s.clNodes = nil, 0
	s.ccache, s.ccNodes = nil, 0
	s.clmu.Unlock()
	s.codeCache.clear()
}
