package gdb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/storage"
)

// A file-backed database persists alongside its page file a small JSON
// manifest `<path>.manifest` holding the index roots and pointers to
// in-page records for the graph itself, so Open can reattach without
// recomputing the 2-hop cover or rebuilding any index.

// manifest is the serialised database header.
type manifest struct {
	Version    int               `json:"version"`
	Labels     []string          `json:"labels"`
	BaseRoots  map[string]uint32 `json:"base_roots"` // label name → B+-tree root
	WTableRoot uint32            `json:"wtable_root"`
	ClustRoot  uint32            `json:"cluster_root"`
	NodesRID   uint64            `json:"nodes_rid"` // heap record: per-node label IDs
	EdgesRID   uint64            `json:"edges_rid"` // heap record: edge list
	NumCenters int               `json:"num_centers"`
	CoverSize  int               `json:"cover_size"`
	// ReachBackend names the reachability backend the stored labeling was
	// computed by. Absent (manifests written before backends were pluggable)
	// means reach.DefaultBackend; Open refuses to reattach under a
	// different backend than the manifest records.
	ReachBackend string `json:"reach_backend,omitempty"`
	// BulkBuilt records that the trees were bulk-loaded and have not been
	// point-updated since, so a reopened database knows whether the dense
	// bulk layout survives. Informational for tooling; both layouts read
	// identically through OpenBTree.
	BulkBuilt bool `json:"bulk_built,omitempty"`
}

const manifestVersion = 1

func manifestPath(path string) string { return path + ".manifest" }

// Persist writes the database's manifest and graph records so Open can
// reattach later. It is called automatically by Build when Options.Path is
// set, and by Sync after edge inserts. Re-persisting an unchanged database
// is byte-stable: the graph records written last time are reused (their
// RIDs are cached on the DB), so Persist→Open→Persist leaves both the page
// file and the manifest identical.
func (db *DB) Persist(path string) error {
	s := db.mgr.Current() // stable: Build/Open call sites and Sync hold writeMu
	g := s.g
	if !db.graphPersisted || db.graphDirty {
		// Node labels record.
		nodeRec := make([]byte, 4+4*g.NumNodes())
		binary.LittleEndian.PutUint32(nodeRec, uint32(g.NumNodes()))
		for v := 0; v < g.NumNodes(); v++ {
			binary.LittleEndian.PutUint32(nodeRec[4+4*v:], uint32(g.LabelOf(graph.NodeID(v))))
		}
		nodesRID, err := db.heap.Insert(nodeRec)
		if err != nil {
			return err
		}
		// Edge list record.
		edgeRec := make([]byte, 4+8*g.NumEdges())
		binary.LittleEndian.PutUint32(edgeRec, uint32(g.NumEdges()))
		o := 4
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			for _, w := range g.Successors(v) {
				binary.LittleEndian.PutUint32(edgeRec[o:], uint32(v))
				binary.LittleEndian.PutUint32(edgeRec[o+4:], uint32(w))
				o += 8
			}
		}
		edgesRID, err := db.heap.Insert(edgeRec)
		if err != nil {
			return err
		}
		db.nodesRID = nodesRID.Encode()
		db.edgesRID = edgesRID.Encode()
		db.graphPersisted = true
		db.graphDirty = false
		// Detach from the tail page holding the graph records so the next
		// insert batch starts a fresh page rather than rewriting this one.
		db.heap.Seal()
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}

	m := manifest{
		Version:      manifestVersion,
		Labels:       g.Labels().Names(),
		BaseRoots:    make(map[string]uint32, len(s.base)),
		WTableRoot:   uint32(s.wtable.Root()),
		ClustRoot:    uint32(s.cluster.Root()),
		NodesRID:     db.nodesRID,
		EdgesRID:     db.edgesRID,
		NumCenters:   s.numCenters,
		CoverSize:    s.coverSize,
		ReachBackend: db.backend.Name(),
		BulkBuilt:    db.bulkBuilt,
	}
	for l, bt := range s.base {
		m.BaseRoots[g.Labels().Name(l)] = uint32(bt.Root())
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := manifestPath(path) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath(path)); err != nil {
		return err
	}
	db.path = path
	return nil
}

// Sync re-persists a file-backed database to its manifest path, making any
// ApplyEdgeInsert updates durable. It is a no-op for in-memory databases.
// Sync serialises with insert batches on the writer mutex; readers are
// unaffected.
func (db *DB) Sync() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.path == "" {
		return nil
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.Persist(db.path)
}

// Open reattaches to a database previously built with a non-empty
// Options.Path. The reachability-index object itself is not reloaded (its
// information lives in the stored graph codes); Index returns nil on an
// opened database and CoverSize reports the persisted size. The manifest
// records which backend computed the stored labeling; Open resolves it
// (so incremental maintenance resumes under the same backend) and refuses
// a non-empty Options.ReachIndex that names a different one — the stored
// codes are the other backend's labeling, not a drop-in.
func Open(path string, opt Options) (*DB, error) {
	raw, err := os.ReadFile(manifestPath(path))
	if err != nil {
		return nil, fmt.Errorf("gdb: open manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("gdb: parse manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("gdb: manifest version %d (want %d)", m.Version, manifestVersion)
	}
	backend, err := reach.Lookup(m.ReachBackend)
	if err != nil {
		return nil, fmt.Errorf("gdb: manifest names unavailable reach backend: %w", err)
	}
	if opt.ReachIndex != "" && opt.ReachIndex != backend.Name() {
		return nil, fmt.Errorf("gdb: database was built with reach backend %q, options ask for %q",
			backend.Name(), opt.ReachIndex)
	}
	if opt.PoolBytes == 0 {
		opt.PoolBytes = storage.DefaultPoolBytes
	}
	if opt.CodeCacheEntries == 0 {
		opt.CodeCacheEntries = 65536
	}
	pager, err := storage.OpenFilePager(path)
	if err != nil {
		return nil, err
	}
	db := &DB{
		backend:          backend,
		pager:            pager,
		pool:             storage.NewBufferPool(pager, opt.PoolBytes),
		wcacheOn:         !opt.DisableWTableCache,
		codeCacheEntries: opt.CodeCacheEntries,
	}
	db.heap = storage.NewHeapFile(db.pool)

	// Rebuild the graph from the persisted records.
	nodeRec, err := db.heap.Read(storage.DecodeRID(m.NodesRID))
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("gdb: read node record: %w", err)
	}
	edgeRec, err := db.heap.Read(storage.DecodeRID(m.EdgesRID))
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("gdb: read edge record: %w", err)
	}
	gb := graph.NewBuilder()
	labelIDs := make([]graph.Label, len(m.Labels))
	for i, name := range m.Labels {
		labelIDs[i] = gb.Intern(name)
	}
	nNodes := int(binary.LittleEndian.Uint32(nodeRec))
	for v := 0; v < nNodes; v++ {
		li := binary.LittleEndian.Uint32(nodeRec[4+4*v:])
		if int(li) >= len(labelIDs) {
			db.Close()
			return nil, fmt.Errorf("gdb: node %d has label %d of %d", v, li, len(labelIDs))
		}
		gb.AddNodeLabel(labelIDs[li])
	}
	nEdges := int(binary.LittleEndian.Uint32(edgeRec))
	o := 4
	for i := 0; i < nEdges; i++ {
		from := graph.NodeID(binary.LittleEndian.Uint32(edgeRec[o:]))
		to := graph.NodeID(binary.LittleEndian.Uint32(edgeRec[o+4:]))
		o += 8
		gb.AddEdge(from, to)
	}
	s := db.newSnap(gb.Build())
	s.numCenters = m.NumCenters
	s.coverSize = m.CoverSize
	s.wtable = storage.OpenBTree(db.pool, storage.PageID(m.WTableRoot))
	s.cluster = storage.OpenBTree(db.pool, storage.PageID(m.ClustRoot))
	db.path = path
	db.nodesRID = m.NodesRID
	db.edgesRID = m.EdgesRID
	db.graphPersisted = true
	db.bulkBuilt = m.BulkBuilt

	for name, root := range m.BaseRoots {
		l := s.g.Labels().Lookup(name)
		if l == graph.InvalidLabel {
			db.Close()
			return nil, fmt.Errorf("gdb: manifest base table for unknown label %q", name)
		}
		s.base[l] = storage.OpenBTree(db.pool, storage.PageID(root))
	}
	// The fan-signature table is derived state: recompute it from the
	// cluster index (one scan) instead of persisting it, so the manifest
	// format and byte-stability are untouched.
	sig, err := s.ComputeSignature()
	if err != nil {
		db.Close()
		return nil, err
	}
	s.sig = sig
	db.publishInitial(s)
	return db, nil
}
