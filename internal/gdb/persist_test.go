package gdb

import (
	"os"
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
)

func TestPersistAndOpen(t *testing.T) {
	g := randomGraph(31, 300, 600, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")

	built, err := Build(g, Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	// Capture reference facts from the built database.
	type probe struct{ u, v graph.NodeID }
	var probes []probe
	var want []bool
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u += 7 {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v += 11 {
			ok, err := built.Reaches(u, v)
			if err != nil {
				t.Fatal(err)
			}
			probes = append(probes, probe{u, v})
			want = append(want, ok)
		}
	}
	wantCenters := built.NumCenters()
	wantCover := built.CoverSize()
	aLbl := g.Labels().Lookup("A")
	bLbl := g.Labels().Lookup("B")
	wantW, err := built.Centers(aLbl, bLbl)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, err := built.JoinSize(aLbl, bLbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk only.
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if db.Cover() != nil {
		t.Fatal("opened DB should have nil cover object")
	}
	if db.CoverSize() != wantCover {
		t.Fatalf("cover size %d, want %d", db.CoverSize(), wantCover)
	}
	if db.NumCenters() != wantCenters {
		t.Fatalf("centers %d, want %d", db.NumCenters(), wantCenters)
	}
	// Graph reconstructed faithfully.
	g2 := db.Graph()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("graph mismatch: %v vs %v", g2, g)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g2.LabelNameOf(v) != g.LabelNameOf(v) {
			t.Fatalf("label of node %d changed", v)
		}
	}
	// Reachability answers identical.
	for i, pr := range probes {
		ok, err := db.Reaches(pr.u, pr.v)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want[i] {
			t.Fatalf("Reaches(%d,%d) = %v after reopen, want %v", pr.u, pr.v, ok, want[i])
		}
	}
	// W-table and stats identical.
	gotW, err := db.Centers(g2.Labels().Lookup("A"), g2.Labels().Lookup("B"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotW) != len(wantW) {
		t.Fatalf("W(A,B) size %d, want %d", len(gotW), len(wantW))
	}
	gotJS, err := db.JoinSize(g2.Labels().Lookup("A"), g2.Labels().Lookup("B"))
	if err != nil {
		t.Fatal(err)
	}
	if gotJS != wantJS {
		t.Fatalf("JoinSize %d, want %d", gotJS, wantJS)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.pages"), Options{}); err == nil {
		t.Fatal("expected error for missing manifest")
	}
	// Corrupt manifest.
	path := filepath.Join(dir, "bad.pages")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".manifest", []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("expected error for corrupt manifest")
	}
	// Wrong version.
	if err := os.WriteFile(path+".manifest", []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("expected error for bad version")
	}
}
