package gdb

import (
	"os"
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
)

func TestPersistAndOpen(t *testing.T) {
	g := randomGraph(31, 300, 600, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")

	built, err := Build(g, Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	// Capture reference facts from the built database.
	type probe struct{ u, v graph.NodeID }
	var probes []probe
	var want []bool
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u += 7 {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v += 11 {
			ok, err := built.Reaches(u, v)
			if err != nil {
				t.Fatal(err)
			}
			probes = append(probes, probe{u, v})
			want = append(want, ok)
		}
	}
	wantCenters := built.NumCenters()
	wantCover := built.CoverSize()
	aLbl := g.Labels().Lookup("A")
	bLbl := g.Labels().Lookup("B")
	wantW, err := built.Centers(aLbl, bLbl)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, err := built.JoinSize(aLbl, bLbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk only.
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if db.Index() != nil {
		t.Fatal("opened DB should have nil cover object")
	}
	if db.CoverSize() != wantCover {
		t.Fatalf("cover size %d, want %d", db.CoverSize(), wantCover)
	}
	if db.NumCenters() != wantCenters {
		t.Fatalf("centers %d, want %d", db.NumCenters(), wantCenters)
	}
	// Graph reconstructed faithfully.
	g2 := db.Graph()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("graph mismatch: %v vs %v", g2, g)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g2.LabelNameOf(v) != g.LabelNameOf(v) {
			t.Fatalf("label of node %d changed", v)
		}
	}
	// Reachability answers identical.
	for i, pr := range probes {
		ok, err := db.Reaches(pr.u, pr.v)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want[i] {
			t.Fatalf("Reaches(%d,%d) = %v after reopen, want %v", pr.u, pr.v, ok, want[i])
		}
	}
	// W-table and stats identical.
	gotW, err := db.Centers(g2.Labels().Lookup("A"), g2.Labels().Lookup("B"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotW) != len(wantW) {
		t.Fatalf("W(A,B) size %d, want %d", len(gotW), len(wantW))
	}
	gotJS, err := db.JoinSize(g2.Labels().Lookup("A"), g2.Labels().Lookup("B"))
	if err != nil {
		t.Fatal(err)
	}
	if gotJS != wantJS {
		t.Fatalf("JoinSize %d, want %d", gotJS, wantJS)
	}
}

// readDBFiles returns the page file and manifest contents.
func readDBFiles(t *testing.T, path string) ([]byte, []byte) {
	t.Helper()
	pages, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	man, err := os.ReadFile(manifestPath(path))
	if err != nil {
		t.Fatal(err)
	}
	return pages, man
}

// reopenAndRepersist opens the database at path, persists it again
// unchanged, and closes it.
func reopenAndRepersist(t *testing.T, path string) {
	t.Helper()
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Persist(path); err != nil {
		db.Close()
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistReopenByteStable: Persist→Open→Persist must not change a byte
// of the page file or the manifest — for a freshly bulk-built database and
// for one whose trees have absorbed point inserts. Re-persisting reuses the
// already-written graph records instead of appending fresh copies.
func TestPersistReopenByteStable(t *testing.T) {
	t.Run("bulk-built", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "db.pages")
		g := randomGraph(13, 80, 160, 4)
		db, err := Build(g, Options{Path: path}) // Build persists automatically
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		pages0, man0 := readDBFiles(t, path)
		reopenAndRepersist(t, path)
		pages1, man1 := readDBFiles(t, path)
		if string(man0) != string(man1) {
			t.Fatalf("manifest changed across reopen:\n%s\nvs\n%s", man0, man1)
		}
		if string(pages0) != string(pages1) {
			t.Fatalf("page file changed across reopen: %d vs %d bytes", len(pages0), len(pages1))
		}
	})
	t.Run("insert-built", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "db.pages")
		g := randomGraph(14, 40, 60, 3)
		db, err := Build(g, Options{Path: path})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			u := graph.NodeID((i * 7) % 40)
			v := graph.NodeID((i*13 + 5) % 40)
			if _, err := db.ApplyEdgeInsert(u, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		pages0, man0 := readDBFiles(t, path)
		reopenAndRepersist(t, path)
		pages1, man1 := readDBFiles(t, path)
		if string(man0) != string(man1) {
			t.Fatalf("manifest changed across reopen:\n%s\nvs\n%s", man0, man1)
		}
		if string(pages0) != string(pages1) {
			t.Fatalf("page file changed across reopen: %d vs %d bytes", len(pages0), len(pages1))
		}
	})
}

// TestManifestRecordsBulkBuilt: the manifest distinguishes a pristine
// bulk-loaded database from one whose trees have been point-updated.
func TestManifestRecordsBulkBuilt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")
	g := randomGraph(15, 30, 45, 3)
	db, err := Build(g, Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if !db.bulkBuilt {
		t.Fatal("freshly built db not marked bulk-built")
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !re.bulkBuilt {
		t.Fatal("reopened pristine db lost bulk-built mark")
	}
	if _, err := re.ApplyEdgeInsert(5, 28); err != nil {
		t.Fatal(err)
	}
	if re.bulkBuilt {
		t.Fatal("db still marked bulk-built after a point insert")
	}
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.bulkBuilt {
		t.Fatal("bulk-built mark resurrected after reopen")
	}
	db.Close()
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.pages"), Options{}); err == nil {
		t.Fatal("expected error for missing manifest")
	}
	// Corrupt manifest.
	path := filepath.Join(dir, "bad.pages")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".manifest", []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("expected error for corrupt manifest")
	}
	// Wrong version.
	if err := os.WriteFile(path+".manifest", []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("expected error for bad version")
	}
}
