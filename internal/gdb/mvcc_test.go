package gdb

import (
	"slices"
	"testing"
	"time"

	"fastmatch/internal/graph"
)

// freshEdge returns a (u, v) pair that is not yet an edge of g.
func freshEdge(t *testing.T, g *graph.Graph) (graph.NodeID, graph.NodeID) {
	t.Helper()
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if u != v && !slices.Contains(g.Successors(u), v) {
				return u, v
			}
		}
	}
	t.Fatal("graph is complete")
	return 0, 0
}

// TestInsertDoesNotBlockReaders stalls the insert writer after it has
// built its private copy-on-write snapshot but before the epoch publish,
// and proves a concurrent reader completes against the old epoch in the
// meantime — the no-reader-blocking guarantee of the MVCC design (the old
// maintenance lock would have deadlocked this test).
func TestInsertDoesNotBlockReaders(t *testing.T) {
	g := randomGraph(11, 40, 90, 3)
	db := mustBuild(t, g, Options{})
	u, v := freshEdge(t, g)

	entered := make(chan struct{})
	unblock := make(chan struct{})
	db.insertPublishHook = func() {
		close(entered)
		<-unblock
	}
	before := db.EpochStats().Current

	done := make(chan error, 1)
	go func() {
		_, err := db.ApplyEdgeInsert(u, v)
		done <- err
	}()

	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("writer never reached the publish point")
	}

	// The writer is stalled mid-insert. A reader must still pin the old
	// epoch and finish a full index read without waiting.
	s, release := db.Pin()
	if s.Epoch() != before {
		t.Fatalf("reader pinned epoch %d, want pre-insert epoch %d", s.Epoch(), before)
	}
	if got := s.Graph().NumEdges(); got != g.NumEdges() {
		t.Fatalf("reader sees %d edges, want pre-insert %d", got, g.NumEdges())
	}
	if _, err := s.Reaches(u, v); err != nil {
		t.Fatalf("read under stalled writer: %v", err)
	}
	release()

	close(unblock)
	if err := <-done; err != nil {
		t.Fatalf("insert: %v", err)
	}
	st := db.EpochStats()
	if st.Current != before+1 {
		t.Fatalf("epoch after insert = %d, want %d", st.Current, before+1)
	}
	ok, err := db.Reaches(u, v)
	if err != nil || !ok {
		t.Fatalf("new epoch must contain the edge: ok=%v err=%v", ok, err)
	}
}

// TestPinnedEpochOutlivesPublish: a reader that pinned before an insert
// keeps its version (old edge count, old reachability) while the database
// has moved on, and the superseded epoch is retired once released.
func TestPinnedEpochOutlivesPublish(t *testing.T) {
	g := randomGraph(12, 40, 90, 3)
	db := mustBuild(t, g, Options{})
	u, v := freshEdge(t, g)

	old, release := db.Pin()
	if _, err := db.ApplyEdgeInsert(u, v); err != nil {
		t.Fatal(err)
	}
	st := db.EpochStats()
	if st.Pinned != 2 {
		t.Fatalf("pinned epochs = %d, want 2 (old reader + current)", st.Pinned)
	}
	if old.Graph().NumEdges() != g.NumEdges() {
		t.Fatalf("pinned snapshot grew: %d edges, want %d", old.Graph().NumEdges(), g.NumEdges())
	}
	ok, err := old.Reaches(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if ok && !graph.Reaches(g, u, v) {
		t.Fatal("pinned snapshot answers with the new edge")
	}
	retiredBefore := st.Retired

	release()
	st = db.EpochStats()
	if st.Pinned != 1 {
		t.Fatalf("pinned epochs after release = %d, want 1", st.Pinned)
	}
	if st.Retired != retiredBefore+1 {
		t.Fatalf("retired = %d, want %d", st.Retired, retiredBefore+1)
	}
}

// TestBatchPublishesOneEpoch: a multi-edge batch becomes visible in one
// atomic epoch publish, and a duplicate-only batch publishes nothing.
func TestBatchPublishesOneEpoch(t *testing.T) {
	g := randomGraph(13, 40, 60, 3)
	db := mustBuild(t, g, Options{})
	u1, v1 := freshEdge(t, g)
	g2 := g.WithEdge(u1, v1)
	u2, v2 := freshEdge(t, g2)

	before := db.EpochStats().Current
	stats, err := db.ApplyEdgeInserts([][2]graph.NodeID{{u1, v1}, {u2, v2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Duplicate || stats[1].Duplicate {
		t.Fatalf("batch stats = %+v", stats)
	}
	if got := db.EpochStats().Current; got != before+1 {
		t.Fatalf("epoch after 2-edge batch = %d, want %d (one publish per batch)", got, before+1)
	}

	// Re-inserting the same edges is a no-op batch: no new epoch.
	if _, err := db.ApplyEdgeInserts([][2]graph.NodeID{{u1, v1}, {u2, v2}}); err != nil {
		t.Fatal(err)
	}
	if got := db.EpochStats().Current; got != before+1 {
		t.Fatalf("duplicate-only batch published epoch %d", got)
	}
}
