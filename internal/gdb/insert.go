package gdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"fastmatch/internal/graph"
	"fastmatch/internal/storage"
	"fastmatch/internal/twohop"
)

// ErrBadInsert reports an edge insert whose endpoints lie outside the
// graph's node range.
var ErrBadInsert = errors.New("gdb: edge endpoint out of range")

// EdgeInsertStats summarises what one ApplyEdgeInsert changed.
type EdgeInsertStats struct {
	// Duplicate is set when the edge already existed; nothing was changed.
	Duplicate bool
	// LabelEntries is the number of 2-hop label entries the cover gained
	// (zero when the edge's endpoints were already connected).
	LabelEntries int
	// NewCenter is set when the edge source became a center, creating a new
	// cluster in the R-join index.
	NewCenter bool
	// NewWPairs counts W-table entries that gained the center — label pairs
	// (X, Y) whose R-join can now produce results through it.
	NewWPairs int
}

// ApplyEdgeInsert adds the edge u→v to the graph and incrementally repairs
// every persistent structure — no rebuild:
//
//  1. The 2-hop cover is updated by center insertion (twohop.Incremental),
//     which reports exactly the label entries added.
//  2. Each delta "center u joined stored-Out(x)/In(y)" becomes a point
//     update of x/y's base-table record (T_X in/out codes).
//  3. The same deltas, inverted, extend u's F-/T-subclusters in the
//     cluster index: x with u ∈ out(x) joins F-subcluster (u, F, label(x)),
//     y with u ∈ in(y) joins T-subcluster (u, T, label(y)). If u was not a
//     center before, its self entries are created first (the ∪{w}
//     convention of Section 3.2).
//  4. Subcluster slots that went from empty to non-empty extend the
//     W-table: for each newly non-empty F_X, the center joins W(X, Y) for
//     every label Y with non-empty T_Y, and symmetrically.
//
// The whole update runs under the exclusive side of the maintenance epoch
// lock, so concurrent readers (which wrap operations in BeginRead) observe
// the index either entirely before or entirely after the insert. The graph
// itself is swapped copy-on-write, keeping snapshots held by in-flight
// readers valid.
//
// Inserting an existing edge is a no-op reported via Stats.Duplicate.
// Updates are in-memory-durable only; call Sync to persist them.
func (db *DB) ApplyEdgeInsert(u, v graph.NodeID) (EdgeInsertStats, error) {
	var st EdgeInsertStats
	if db.closed.Load() {
		return st, ErrClosed
	}
	db.maintMu.Lock()
	defer db.maintMu.Unlock()

	g := db.Graph()
	n := graph.NodeID(g.NumNodes())
	if u < 0 || v < 0 || u >= n || v >= n {
		return st, fmt.Errorf("%w: edge %d->%d, graph has %d nodes", ErrBadInsert, u, v, n)
	}
	if slices.Contains(g.Successors(u), v) {
		st.Duplicate = true
		return st, nil
	}
	if err := db.ensureIncremental(); err != nil {
		return st, err
	}

	deltas := db.inc.InsertEdge(u, v)
	db.setGraph(g.WithEdge(u, v))
	db.graphDirty = true
	st.LabelEntries = len(deltas)
	if len(deltas) == 0 {
		return st, nil // u already reached v: the cover was complete
	}

	if err := db.applyBaseDeltas(deltas); err != nil {
		return st, err
	}
	newF, newT, newCenter, err := db.applyClusterDeltas(u, deltas)
	if err != nil {
		return st, err
	}
	st.NewCenter = newCenter
	if newCenter {
		db.numCenters++
	}
	st.NewWPairs, err = db.applyWTableDeltas(u, newF, newT)
	if err != nil {
		return st, err
	}

	// Invalidate derived state: decoded codes of the updated nodes, and the
	// optimizer statistics (join sizes depend on subcluster contents).
	for _, d := range deltas {
		db.codeCache.invalidate(d.Node)
	}
	db.statMu.Lock()
	db.joinSizes = make(map[wKey]int64)
	db.distFrom = make(map[wKey]int64)
	db.distTo = make(map[wKey]int64)
	db.statMu.Unlock()

	db.coverSize += len(deltas)
	db.bulkBuilt = false
	return st, nil
}

// ensureIncremental lazily seeds the updatable 2-hop labeling: from the
// build-time cover when present, otherwise (a database reattached with
// Open) by scanning the stored compact codes back out of the base tables.
func (db *DB) ensureIncremental() error {
	if db.inc != nil {
		return nil
	}
	g := db.Graph()
	n := g.NumNodes()
	in := make([][]graph.NodeID, n)
	out := make([][]graph.NodeID, n)
	if db.cover != nil {
		for v := graph.NodeID(0); int(v) < n; v++ {
			in[v] = db.cover.In(v)
			out[v] = db.cover.Out(v)
		}
	} else {
		for v := graph.NodeID(0); int(v) < n; v++ {
			rid, ok, err := db.base[g.LabelOf(v)].Get(nodeKey(v))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("gdb: node %d missing from base table", v)
			}
			rec, err := db.heap.Read(storage.DecodeRID(rid))
			if err != nil {
				return err
			}
			in[v], out[v] = decodeCodes(rec)
		}
	}
	db.inc = twohop.NewIncrementalFromLabels(g, in, out)
	return nil
}

// applyBaseDeltas rewrites the base-table record of every node whose
// stored code gained a center: read-modify-write through the heap (the old
// record is orphaned; the heap is append-only) and an upsert of the
// primary index entry.
func (db *DB) applyBaseDeltas(deltas []twohop.LabelDelta) error {
	g := db.Graph()
	byNode := make(map[graph.NodeID][]twohop.LabelDelta)
	order := make([]graph.NodeID, 0, len(deltas))
	for _, d := range deltas {
		if _, ok := byNode[d.Node]; !ok {
			order = append(order, d.Node)
		}
		byNode[d.Node] = append(byNode[d.Node], d)
	}
	slices.Sort(order)
	for _, x := range order {
		tree := db.base[g.LabelOf(x)]
		rid, ok, err := tree.Get(nodeKey(x))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("gdb: node %d missing from base table", x)
		}
		rec, err := db.heap.Read(storage.DecodeRID(rid))
		if err != nil {
			return err
		}
		in, out := decodeCodes(rec)
		for _, d := range byNode[x] {
			if d.Out {
				out = insertSorted(out, d.Center)
			} else {
				in = insertSorted(in, d.Center)
			}
		}
		nrid, err := db.heap.Insert(encodeCodes(in, out))
		if err != nil {
			return err
		}
		if err := tree.Insert(nodeKey(x), nrid.Encode()); err != nil {
			return err
		}
	}
	return nil
}

// applyClusterDeltas extends center w's subclusters with the delta nodes:
// an out-side delta for node x puts x in F-subcluster (w, F, label(x)), an
// in-side delta for node y puts y in T-subcluster (w, T, label(y)). It
// returns the labels of F- and T-subcluster slots that went from empty to
// non-empty (they drive the W-table update) and whether w is a new center.
func (db *DB) applyClusterDeltas(w graph.NodeID, deltas []twohop.LabelDelta) (newF, newT []graph.Label, newCenter bool, err error) {
	g := db.Graph()
	type slot struct {
		dir byte
		l   graph.Label
	}
	adds := make(map[slot][]graph.NodeID)
	for _, d := range deltas {
		dir := dirT
		if d.Out {
			dir = dirF
		}
		s := slot{dir, g.LabelOf(d.Node)}
		adds[s] = append(adds[s], d.Node)
	}
	// A center always carries its self entries (w, F, label(w)) and
	// (w, T, label(w)) — their presence is the "is w a center" test.
	self := clusterKey(w, dirF, g.LabelOf(w))
	if _, ok, gerr := db.cluster.Get(self); gerr != nil {
		return nil, nil, false, gerr
	} else if !ok {
		newCenter = true
		adds[slot{dirF, g.LabelOf(w)}] = append(adds[slot{dirF, g.LabelOf(w)}], w)
		adds[slot{dirT, g.LabelOf(w)}] = append(adds[slot{dirT, g.LabelOf(w)}], w)
	}
	slots := make([]slot, 0, len(adds))
	for s := range adds {
		slots = append(slots, s)
	}
	slices.SortFunc(slots, func(a, b slot) int {
		if a.dir != b.dir {
			return int(a.dir) - int(b.dir)
		}
		return int(a.l) - int(b.l)
	})
	for _, s := range slots {
		key := clusterKey(w, s.dir, s.l)
		var members []graph.NodeID
		rid, ok, gerr := db.cluster.Get(key)
		if gerr != nil {
			return nil, nil, false, gerr
		}
		if ok {
			rec, rerr := db.heap.Read(storage.DecodeRID(rid))
			if rerr != nil {
				return nil, nil, false, rerr
			}
			members = decodeNodeList(rec)
		} else {
			if s.dir == dirF {
				newF = append(newF, s.l)
			} else {
				newT = append(newT, s.l)
			}
		}
		before := len(members)
		for _, x := range adds[s] {
			members = insertSorted(members, x)
		}
		if len(members) == before {
			continue
		}
		nrid, ierr := db.heap.Insert(encodeNodeList(members))
		if ierr != nil {
			return nil, nil, false, ierr
		}
		if ierr := db.cluster.Insert(key, nrid.Encode()); ierr != nil {
			return nil, nil, false, ierr
		}
	}
	return newF, newT, newCenter, nil
}

// applyWTableDeltas adds center w to W(X, Y) for every label pair that one
// of its newly non-empty subclusters completes: (newF × allT) ∪ (allF ×
// newT), where allF/allT are w's non-empty subcluster labels after the
// cluster update. Each touched W-table cache entry is dropped (the stale
// entry may be a cached negative).
func (db *DB) applyWTableDeltas(w graph.NodeID, newF, newT []graph.Label) (int, error) {
	if len(newF) == 0 && len(newT) == 0 {
		return 0, nil
	}
	allF, err := db.clusterLabels(w, dirF)
	if err != nil {
		return 0, err
	}
	allT, err := db.clusterLabels(w, dirT)
	if err != nil {
		return 0, err
	}
	pairs := make(map[wKey]struct{})
	for _, x := range newF {
		for _, y := range allT {
			pairs[wKey{x, y}] = struct{}{}
		}
	}
	for _, y := range newT {
		for _, x := range allF {
			pairs[wKey{x, y}] = struct{}{}
		}
	}
	keys := make([]wKey, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b wKey) int {
		if a.x != b.x {
			return int(a.x) - int(b.x)
		}
		return int(a.y) - int(b.y)
	})
	added := 0
	for _, k := range keys {
		var ws []graph.NodeID
		rid, ok, err := db.wtable.Get(wtableKey(k.x, k.y))
		if err != nil {
			return added, err
		}
		if ok {
			rec, err := db.heap.Read(storage.DecodeRID(rid))
			if err != nil {
				return added, err
			}
			ws = decodeNodeList(rec)
		}
		before := len(ws)
		ws = insertSorted(ws, w)
		if len(ws) == before {
			continue
		}
		nrid, err := db.heap.Insert(encodeNodeList(ws))
		if err != nil {
			return added, err
		}
		if err := db.wtable.Insert(wtableKey(k.x, k.y), nrid.Encode()); err != nil {
			return added, err
		}
		added++
		if db.wcacheOn {
			db.wmu.Lock()
			delete(db.wcache, k)
			db.wmu.Unlock()
		}
	}
	return added, nil
}

// clusterLabels returns the labels of center w's non-empty dir-side
// subclusters, ascending, by scanning the cluster index over w's key range.
func (db *DB) clusterLabels(w graph.NodeID, dir byte) ([]graph.Label, error) {
	var out []graph.Label
	start := clusterKey(w, dir, 0)
	err := db.cluster.Scan(start, func(key []byte, _ uint64) bool {
		if len(key) != 9 {
			return false
		}
		kw := graph.NodeID(binary.BigEndian.Uint32(key[0:4]))
		if kw != w || key[4] != dir {
			return false
		}
		l := graph.Label(binary.BigEndian.Uint32(key[5:9]))
		out = append(out, l)
		return true
	})
	return out, err
}
