package gdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/storage"
)

// ErrBadInsert reports an edge insert whose endpoints lie outside the
// graph's node range.
var ErrBadInsert = errors.New("gdb: edge endpoint out of range")

// EdgeInsertStats summarises what one edge insert changed.
type EdgeInsertStats struct {
	// Duplicate is set when the edge already existed; nothing was changed.
	Duplicate bool
	// LabelEntries is the number of 2-hop label entries the cover gained
	// (zero when the edge's endpoints were already connected).
	LabelEntries int
	// NewCenter is set when the edge source became a center, creating a new
	// cluster in the R-join index.
	NewCenter bool
	// NewWPairs counts W-table entries that gained the center — label pairs
	// (X, Y) whose R-join can now produce results through it.
	NewWPairs int
}

// ApplyEdgeInsert adds one edge; it is ApplyEdgeInserts with a
// single-element batch.
func (db *DB) ApplyEdgeInsert(u, v graph.NodeID) (EdgeInsertStats, error) {
	sts, err := db.ApplyEdgeInserts([][2]graph.NodeID{{u, v}})
	if len(sts) == 1 {
		return sts[0], err
	}
	return EdgeInsertStats{}, err
}

// ApplyEdgeInserts adds the edges u→v in order and incrementally repairs
// every persistent structure — no rebuild. Per edge:
//
//  1. The 2-hop cover is updated by center insertion (reach.Incremental),
//     which reports exactly the label entries added.
//  2. Each delta "center u joined stored-Out(x)/In(y)" becomes a point
//     update of x/y's base-table record (T_X in/out codes).
//  3. The same deltas, inverted, extend u's F-/T-subclusters in the
//     cluster index: x with u ∈ out(x) joins F-subcluster (u, F, label(x)),
//     y with u ∈ in(y) joins T-subcluster (u, T, label(y)). If u was not a
//     center before, its self entries are created first (the ∪{w}
//     convention of Section 3.2).
//  4. Subcluster slots that went from empty to non-empty extend the
//     W-table: for each newly non-empty F_X, the center joins W(X, Y) for
//     every label Y with non-empty T_Y, and symmetrically.
//
// The batch is MVCC, not locked against readers: all tree updates go to a
// private next snapshot through page-level copy-on-write (unchanged pages
// are shared with the published version), and the whole batch becomes
// visible in ONE atomic epoch publish at the end. In-flight readers keep
// their pinned epoch; new reads see either no edge of the batch or all of
// them. Pages the batch superseded are recycled once the last epoch
// referencing them retires.
//
// Inserting an existing edge is a no-op reported via Stats.Duplicate. The
// returned slice holds stats for the edges applied, in order; on error it
// covers the successfully applied prefix, which is still published
// (earlier edges of a failed batch stay applied). Updates are
// in-memory-durable only; call Sync to persist them.
func (db *DB) ApplyEdgeInserts(edges [][2]graph.NodeID) ([]EdgeInsertStats, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	cur := db.mgr.Current() // stable: this goroutine is the only publisher
	w := newSnapWriter(db, cur)

	sts := make([]EdgeInsertStats, 0, len(edges))
	var firstErr error
	for _, e := range edges {
		st, err := w.applyOne(e[0], e[1])
		if err != nil {
			firstErr = err
			break
		}
		sts = append(sts, st)
	}
	if w.changed {
		w.publish(cur)
	}
	return sts, firstErr
}

// snapWriter accumulates one insert batch's private next snapshot: the
// evolving copy-on-write tree versions, the graph successor, and the
// bookkeeping needed to seed the next epoch's caches.
type snapWriter struct {
	db  *DB
	cow *storage.Cow
	g   *graph.Graph

	base    map[graph.Label]*storage.BTree
	wtable  *storage.BTree
	cluster *storage.BTree

	numCenters int
	coverSize  int

	// sig is the batch's private fan-signature table, cloned lazily from
	// the published epoch's before the first cluster mutation; nil means
	// untouched (publish carries the shared table forward).
	sig    *Signature
	curSig *Signature

	touchedNodes map[graph.NodeID]struct{} // stale code-cache entries
	touchedW     map[wKey]struct{}         // stale W-cache entries
	changed      bool
}

func newSnapWriter(db *DB, cur *Snap) *snapWriter {
	base := make(map[graph.Label]*storage.BTree, len(cur.base))
	for l, t := range cur.base {
		base[l] = t
	}
	return &snapWriter{
		db:           db,
		cow:          storage.NewCow(db.pool),
		g:            cur.g,
		base:         base,
		wtable:       cur.wtable,
		cluster:      cur.cluster,
		numCenters:   cur.numCenters,
		coverSize:    cur.coverSize,
		curSig:       cur.sig,
		touchedNodes: make(map[graph.NodeID]struct{}),
		touchedW:     make(map[wKey]struct{}),
	}
}

// publish seals the heap (so no later batch appends to pages this snapshot
// can see), assembles the next snapshot — warm-starting its caches from
// the survivors of cur's — and installs it as the new epoch, handing the
// superseded pages to the epoch manager for deferred reclamation.
func (w *snapWriter) publish(cur *Snap) {
	db := w.db
	db.heap.Seal()
	sig := w.sig
	if sig == nil {
		sig = cur.sig // no cluster slot changed: share the table
	}
	next := &Snap{
		db:         db,
		g:          w.g,
		base:       w.base,
		wtable:     w.wtable,
		cluster:    w.cluster,
		numCenters: w.numCenters,
		coverSize:  w.coverSize,
		sig:        sig,
		epoch:      db.mgr.CurrentEpoch() + 1,
		codeCache:  cur.codeCache.cloneWithout(w.touchedNodes),
		joinSizes:  make(map[wKey]int64),
		distFrom:   make(map[wKey]int64),
		distTo:     make(map[wKey]int64),
		projFrom:   make(map[wKey][]graph.NodeID),
		projTo:     make(map[wKey][]graph.NodeID),
	}
	cur.wmu.RLock()
	next.wcache = make(map[wKey][]graph.NodeID, len(cur.wcache))
	for k, v := range cur.wcache {
		if _, stale := w.touchedW[k]; !stale {
			next.wcache[k] = v
		}
	}
	cur.wmu.RUnlock()
	if db.insertPublishHook != nil {
		db.insertPublishHook()
	}
	db.mgr.Publish(next, w.cow.Freed())
	db.graphDirty = true
	db.bulkBuilt = false
}

func (w *snapWriter) applyOne(u, v graph.NodeID) (EdgeInsertStats, error) {
	var st EdgeInsertStats
	n := graph.NodeID(w.g.NumNodes())
	if u < 0 || v < 0 || u >= n || v >= n {
		return st, fmt.Errorf("%w: edge %d->%d, graph has %d nodes", ErrBadInsert, u, v, n)
	}
	if slices.Contains(w.g.Successors(u), v) {
		st.Duplicate = true
		return st, nil
	}
	if err := w.ensureIncremental(); err != nil {
		return st, err
	}

	deltas := w.db.inc.InsertEdge(u, v)
	w.g = w.g.WithEdge(u, v)
	w.changed = true
	st.LabelEntries = len(deltas)
	if len(deltas) == 0 {
		return st, nil // u already reached v: the cover was complete
	}

	if err := w.applyBaseDeltas(deltas); err != nil {
		return st, err
	}
	cs, err := w.applyCenterDeltas(deltas)
	if err != nil {
		return st, err
	}
	st.NewCenter = cs.born > 0
	st.NewWPairs = cs.wAdded

	for _, d := range deltas {
		w.touchedNodes[d.Node] = struct{}{}
	}
	w.coverSize += len(deltas)
	return st, nil
}

// ensureIncremental lazily seeds the updatable reachability labeling: from
// the build-time index when present, otherwise (a database reattached with
// Open) by scanning the stored compact codes back out of the base tables.
// The seed state persists on the DB across batches; it is only read and
// mutated under writeMu.
func (w *snapWriter) ensureIncremental() error {
	db := w.db
	if db.inc != nil {
		return nil
	}
	n := w.g.NumNodes()
	in := make([][]graph.NodeID, n)
	out := make([][]graph.NodeID, n)
	if db.idx != nil {
		for v := graph.NodeID(0); int(v) < n; v++ {
			in[v] = db.idx.In(v)
			out[v] = db.idx.Out(v)
		}
	} else {
		for v := graph.NodeID(0); int(v) < n; v++ {
			rid, ok, err := w.base[w.g.LabelOf(v)].Get(nodeKey(v))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("gdb: node %d missing from base table", v)
			}
			rec, err := db.heap.Read(storage.DecodeRID(rid))
			if err != nil {
				return err
			}
			in[v], out[v] = decodeCodes(rec)
		}
	}
	db.inc = db.backend.DynamicFromLabels(w.g, in, out)
	return nil
}

// applyBaseDeltas rewrites the base-table record of every node whose
// stored code gained or lost a center: read-modify-write through the heap
// (the old record is orphaned; the heap is append-only) and a
// copy-on-write upsert of the primary index entry. A record whose codes
// empty is kept — the node still exists and its row anchors reattachment.
func (w *snapWriter) applyBaseDeltas(deltas []reach.LabelDelta) error {
	byNode := make(map[graph.NodeID][]reach.LabelDelta)
	order := make([]graph.NodeID, 0, len(deltas))
	for _, d := range deltas {
		if _, ok := byNode[d.Node]; !ok {
			order = append(order, d.Node)
		}
		byNode[d.Node] = append(byNode[d.Node], d)
	}
	slices.Sort(order)
	for _, x := range order {
		l := w.g.LabelOf(x)
		tree := w.base[l]
		rid, ok, err := tree.Get(nodeKey(x))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("gdb: node %d missing from base table", x)
		}
		rec, err := w.db.heap.Read(storage.DecodeRID(rid))
		if err != nil {
			return err
		}
		in, out := decodeCodes(rec)
		for _, d := range byNode[x] {
			switch {
			case d.Removed && d.Out:
				out = removeSorted(out, d.Center)
			case d.Removed:
				in = removeSorted(in, d.Center)
			case d.Out:
				out = insertSorted(out, d.Center)
			default:
				in = insertSorted(in, d.Center)
			}
		}
		nrid, err := w.db.heap.Insert(encodeCodes(in, out))
		if err != nil {
			return err
		}
		nt, err := tree.InsertCow(w.cow, nodeKey(x), nrid.Encode())
		if err != nil {
			return err
		}
		w.base[l] = nt
	}
	return nil
}

// clusterLabels returns the labels of center c's non-empty dir-side
// subclusters, ascending, by scanning the writer's private cluster version
// over c's key range.
func (w *snapWriter) clusterLabels(c graph.NodeID, dir byte) ([]graph.Label, error) {
	ls, _, err := w.clusterSlotSizes(c, dir, false)
	return ls, err
}

// clusterSlotSizes is clusterLabels plus, when sizes is set, the member
// count of each slot (read from the node-list record's length prefix) —
// the per-center contribution the fan signature retracts and re-adds
// around a cluster mutation.
func (w *snapWriter) clusterSlotSizes(c graph.NodeID, dir byte, sizes bool) ([]graph.Label, []int, error) {
	var ls []graph.Label
	var rids []uint64
	start := clusterKey(c, dir, 0)
	err := w.cluster.Scan(start, func(key []byte, val uint64) bool {
		if len(key) != 9 {
			return false
		}
		kw := graph.NodeID(binary.BigEndian.Uint32(key[0:4]))
		if kw != c || key[4] != dir {
			return false
		}
		ls = append(ls, graph.Label(binary.BigEndian.Uint32(key[5:9])))
		rids = append(rids, val)
		return true
	})
	if err != nil || !sizes {
		return ls, nil, err
	}
	ns := make([]int, len(rids))
	for i, rid := range rids {
		rec, err := w.db.heap.Read(storage.DecodeRID(rid))
		if err != nil {
			return nil, nil, err
		}
		ns[i] = int(binary.LittleEndian.Uint32(rec))
	}
	return ls, ns, nil
}

// ensureSig clones the published epoch's fan-signature table into the
// writer before its first mutation.
func (w *snapWriter) ensureSig() {
	if w.sig == nil {
		w.sig = w.curSig.clone()
	}
}
