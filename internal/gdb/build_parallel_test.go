package gdb

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"fastmatch/internal/graph"
	"fastmatch/internal/twohop"
)

// buildDegrees is the worker grid the parallel-build suite exercises.
func buildDegrees() []int {
	ds := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		ds = append(ds, p)
	}
	return ds
}

// dbSnapshot reads every index the query path serves — Centers for all
// label pairs, GetF/GetT for all (center, label) pairs, OutCode/InCode for
// all nodes — into comparable form.
type dbSnapshot struct {
	centers map[[2]graph.Label][]graph.NodeID
	fsub    map[string][]graph.NodeID
	tsub    map[string][]graph.NodeID
	outc    [][]graph.NodeID
	inc     [][]graph.NodeID
	ncent   int
}

func snapshotDB(t *testing.T, db *DB) *dbSnapshot {
	t.Helper()
	g := db.Graph()
	L := g.Labels().Len()
	s := &dbSnapshot{
		centers: make(map[[2]graph.Label][]graph.NodeID),
		fsub:    make(map[string][]graph.NodeID),
		tsub:    make(map[string][]graph.NodeID),
		ncent:   db.NumCenters(),
	}
	for x := graph.Label(0); int(x) < L; x++ {
		for y := graph.Label(0); int(y) < L; y++ {
			ws, err := db.Centers(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if ws != nil {
				s.centers[[2]graph.Label{x, y}] = ws
			}
			for _, w := range ws {
				for l := graph.Label(0); int(l) < L; l++ {
					k := fmt.Sprintf("%d/%d", w, l)
					if _, done := s.fsub[k]; done {
						continue
					}
					f, err := db.GetF(w, l)
					if err != nil {
						t.Fatal(err)
					}
					tt, err := db.GetT(w, l)
					if err != nil {
						t.Fatal(err)
					}
					s.fsub[k], s.tsub[k] = f, tt
				}
			}
		}
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		oc, err := db.OutCode(v)
		if err != nil {
			t.Fatal(err)
		}
		ic, err := db.InCode(v)
		if err != nil {
			t.Fatal(err)
		}
		s.outc = append(s.outc, oc)
		s.inc = append(s.inc, ic)
	}
	return s
}

// TestParallelBuildServesIdentically: from one shared cover, databases
// built at every worker degree serve byte-identical Centers, GetF, GetT,
// OutCode, and InCode results. Since the worker-1 path bulk-loads too,
// this plus the storage-level BulkLoad-vs-Insert equivalence tests pins
// the whole build pipeline. Run with -race to check the sharded inversion.
func TestParallelBuildServesIdentically(t *testing.T) {
	graphs := []*graph.Graph{
		randomGraph(11, 300, 900, 4),
		randomGraph(12, 150, 250, 2),
	}
	if g, _ := figure1Graph(); g != nil {
		graphs = append(graphs, g)
	}
	for gi, g := range graphs {
		cover := twohop.Compute(g, twohop.Options{})
		var ref *dbSnapshot
		for _, workers := range buildDegrees() {
			db, err := BuildFromIndex(g, cover, Options{BuildParallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			snap := snapshotDB(t, db)
			if ref == nil {
				ref = snap
			} else if !reflect.DeepEqual(ref, snap) {
				t.Errorf("graph %d: build at %d workers serves differently than serial", gi, workers)
			}
			db.Close()
		}
	}
}

// TestParallelBuildReaches: full Build (cover computed at the same
// parallelism) answers every Reaches pair identically to the serial build
// at every degree, even though the parallel cover may hold extra entries.
func TestParallelBuildReaches(t *testing.T) {
	g := randomGraph(13, 200, 700, 3)
	serial := mustBuild(t, g, Options{})
	defer serial.Close()
	for _, workers := range buildDegrees()[1:] {
		par := mustBuild(t, g, Options{BuildParallelism: workers})
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
				got, err := par.Reaches(u, v)
				if err != nil {
					t.Fatal(err)
				}
				want, err := serial.Reaches(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("workers=%d: Reaches(%d,%d)=%v, serial %v", workers, u, v, got, want)
				}
			}
		}
		par.Close()
	}
}

// TestInvertCoverMatchesReference compares the sharded counting inversion
// against a straightforward map-of-maps reference inversion (the former
// implementation) on random graphs, at several worker counts.
func TestInvertCoverMatchesReference(t *testing.T) {
	g := randomGraph(14, 250, 800, 3)
	cover := twohop.Compute(g, twohop.Options{})
	db, err := BuildFromIndex(g, cover, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Reference inversion.
	type key struct {
		w   graph.NodeID
		dir byte
		l   graph.Label
	}
	want := make(map[key][]graph.NodeID)
	centerSet := make(map[graph.NodeID]bool)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		lv := g.LabelOf(v)
		for _, w := range cover.Out(v) {
			want[key{w, dirF, lv}] = append(want[key{w, dirF, lv}], v)
			centerSet[w] = true
		}
		for _, w := range cover.In(v) {
			want[key{w, dirT, lv}] = append(want[key{w, dirT, lv}], v)
			centerSet[w] = true
		}
	}
	for w := range centerSet {
		lw := g.LabelOf(w)
		want[key{w, dirF, lw}] = insertSorted(want[key{w, dirF, lw}], w)
		want[key{w, dirT, lw}] = insertSorted(want[key{w, dirT, lw}], w)
	}

	for _, workers := range buildDegrees() {
		inv := db.invertCover(db.Graph(), workers)
		if len(inv.centers) != len(centerSet) {
			t.Fatalf("workers=%d: %d centers, want %d", workers, len(inv.centers), len(centerSet))
		}
		got := 0
		for ci, w := range inv.centers {
			for dir := 0; dir < 2; dir++ {
				for l := 0; l < inv.nLabels; l++ {
					s := (ci*2+dir)*inv.nLabels + l
					seg := inv.members[inv.offsets[s]:inv.offsets[s+1]]
					ref := want[key{w, byte(dir), graph.Label(l)}]
					if len(seg) == 0 && len(ref) == 0 {
						continue
					}
					got++
					if !reflect.DeepEqual([]graph.NodeID(seg), ref) {
						t.Fatalf("workers=%d: subcluster (%d,%d,%d) = %v, want %v", workers, w, dir, l, seg, ref)
					}
				}
			}
		}
		nonEmpty := 0
		for _, v := range want {
			if len(v) > 0 {
				nonEmpty++
			}
		}
		if got != nonEmpty {
			t.Fatalf("workers=%d: %d non-empty subclusters, want %d", workers, got, nonEmpty)
		}
	}
}
