package gdb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
)

// deleteFragmented builds a database at path, fragments it with a mix of
// inserts and deletes across several synced batches, and returns the
// ground-truth graph after all mutations.
func deleteFragmented(t *testing.T, path string) *graph.Graph {
	t.Helper()
	g := randomGraph(41, 40, 80, 3)
	db, err := Build(g, Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	cur := g
	// Deletes of known-present edges: walk the adjacency deterministically.
	for i := 0; i < 12; i++ {
		u := graph.NodeID((i * 11) % 40)
		succ := cur.Successors(u)
		if len(succ) == 0 {
			continue
		}
		v := succ[i%len(succ)]
		if _, err := db.ApplyEdgeDelete(u, v); err != nil {
			t.Fatal(err)
		}
		cur = cur.WithoutEdge(u, v)
	}
	for i := 0; i < 6; i++ {
		u := graph.NodeID((i * 7) % 40)
		v := graph.NodeID((i*13 + 3) % 40)
		st, err := db.ApplyEdgeInsert(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Duplicate {
			cur = cur.WithEdge(u, v)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return cur
}

// TestPersistReopenByteStableAfterDeletes: S4 — a database fragmented by
// deletes must survive Persist→Open→Persist without a byte of the page file
// or manifest changing, and a reopened copy must still pass the full
// consistency sweep.
func TestPersistReopenByteStableAfterDeletes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")
	cur := deleteFragmented(t, path)

	pages0, man0 := readDBFiles(t, path)
	reopenAndRepersist(t, path)
	pages1, man1 := readDBFiles(t, path)
	if string(man0) != string(man1) {
		t.Fatalf("manifest changed across reopen:\n%s\nvs\n%s", man0, man1)
	}
	if string(pages0) != string(pages1) {
		t.Fatalf("page file changed across reopen: %d vs %d bytes", len(pages0), len(pages1))
	}

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkIndexConsistent(t, re, cur)
}

// TestRepackAfterDeletes: S4 — repacking a delete-fragmented file (lazy CoW
// deletion leaves dead cells and empty leaves behind) produces a
// bulk-loaded, byte-deterministic file that answers identically and is no
// larger than the fragmented source.
func TestRepackAfterDeletes(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.fdb")
	cur := deleteFragmented(t, src)

	p1 := filepath.Join(dir, "packed1.fdb")
	p2 := filepath.Join(dir, "packed2.fdb")
	if err := Repack(src, p1, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Repack(src, p2, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{p1, p2}, {manifestPath(p1), manifestPath(p2)}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("repack is not byte-stable: %s differs from %s", pair[0], pair[1])
		}
	}

	srcInfo, err := os.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	packedInfo, err := os.Stat(p1)
	if err != nil {
		t.Fatal(err)
	}
	if packedInfo.Size() > srcInfo.Size() {
		t.Fatalf("repack grew the file: %d -> %d bytes", srcInfo.Size(), packedInfo.Size())
	}

	packed, err := Open(p1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer packed.Close()
	if !packed.bulkBuilt {
		t.Fatal("repacked database does not record bulk layout")
	}
	if packed.Graph().NumEdges() != cur.NumEdges() {
		t.Fatalf("repacked graph has %d edges, want %d", packed.Graph().NumEdges(), cur.NumEdges())
	}
	checkIndexConsistent(t, packed, cur)
}
