package gdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fastmatch/internal/graph"
)

// refIntersect is the obviously-correct linear-merge reference the galloping
// kernel is checked against.
func refIntersect(a, b []graph.NodeID) []graph.NodeID {
	out := []graph.NodeID{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// sortedUnique draws n distinct values from [0, span) in ascending order.
func sortedUnique(rng *rand.Rand, n, span int) []graph.NodeID {
	if n > span {
		n = span
	}
	seen := make(map[int]bool, n)
	out := make([]graph.NodeID, 0, n)
	for len(seen) < n {
		v := rng.Intn(span)
		if !seen[v] {
			seen[v] = true
		}
	}
	for v := 0; v < span; v++ {
		if seen[v] {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// TestIntersectMatchesReference drives the galloping and merge paths across
// size ratios (balanced through 1:10000, forcing both kernels) and overlap
// regimes, comparing every result against the linear reference.
func TestIntersectMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := []struct{ na, nb, span int }{
		{0, 0, 10}, {0, 5, 10}, {1, 1, 4},
		{8, 8, 40}, {100, 100, 300}, // balanced: merge path
		{4, 200, 400}, {3, 3000, 9000}, // skewed: galloping path
		{1, 10000, 10000}, // extreme skew, dense big side
		{50, 1600, 1700},  // high overlap under galloping
		{64, 64, 64},      // identical universes
	}
	for _, tc := range cases {
		for trial := 0; trial < 20; trial++ {
			a := sortedUnique(rng, tc.na, tc.span)
			b := sortedUnique(rng, tc.nb, tc.span)
			want := refIntersect(a, b)
			for _, pair := range [][2][]graph.NodeID{{a, b}, {b, a}} {
				got := Intersect(pair[0], pair[1])
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("Intersect(na=%d nb=%d span=%d trial=%d) = %v, want %v",
						tc.na, tc.nb, tc.span, trial, got, want)
				}
				if ne := IntersectNonEmpty(pair[0], pair[1]); ne != (len(want) > 0) {
					t.Fatalf("IntersectNonEmpty(na=%d nb=%d span=%d trial=%d) = %v, want %v",
						tc.na, tc.nb, tc.span, trial, ne, len(want) > 0)
				}
			}
		}
	}
}

// TestGallopSearch pins the search primitive: it must return the first
// index >= from whose value is >= v, plus whether it equals v.
func TestGallopSearch(t *testing.T) {
	s := []graph.NodeID{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	for from := 0; from <= len(s); from++ {
		for v := graph.NodeID(0); v <= 22; v++ {
			gotIdx, gotOK := gallopSearch(s, from, v)
			wantIdx := from
			for wantIdx < len(s) && s[wantIdx] < v {
				wantIdx++
			}
			wantOK := wantIdx < len(s) && s[wantIdx] == v
			if gotIdx != wantIdx || gotOK != wantOK {
				t.Fatalf("gallopSearch(from=%d, v=%d) = (%d,%v), want (%d,%v)",
					from, v, gotIdx, gotOK, wantIdx, wantOK)
			}
		}
	}
}

// intersectInputs builds the three benchmark regimes from the acceptance
// criteria: balanced same-size lists, 1:1000 skew (the getCenters shape —
// a node's out-list probed against a huge W(X,Y)), and disjoint ranges.
func intersectInputs(kind string) (a, b []graph.NodeID) {
	rng := rand.New(rand.NewSource(1))
	switch kind {
	case "balanced":
		return sortedUnique(rng, 4096, 16384), sortedUnique(rng, 4096, 16384)
	case "skewed":
		return sortedUnique(rng, 16, 1<<20), sortedUnique(rng, 16000, 1<<20)
	case "disjoint":
		a = sortedUnique(rng, 2048, 8192)
		b = sortedUnique(rng, 2048, 8192)
		for i := range b {
			b[i] += 1 << 20
		}
		return a, b
	}
	panic(kind)
}

func BenchmarkIntersect(b *testing.B) {
	for _, kind := range []string{"balanced", "skewed", "disjoint"} {
		x, y := intersectInputs(kind)
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				n += len(Intersect(x, y))
			}
			_ = n
		})
	}
}

func BenchmarkIntersectNonEmpty(b *testing.B) {
	for _, kind := range []string{"balanced", "skewed", "disjoint"} {
		x, y := intersectInputs(kind)
		b.Run(kind, func(b *testing.B) {
			var hit bool
			for i := 0; i < b.N; i++ {
				hit = IntersectNonEmpty(x, y)
			}
			_ = hit
		})
	}
}

// BenchmarkIntersectLinearReference is the pre-galloping baseline for
// bench-compare: refIntersect is the old linear merge verbatim.
func BenchmarkIntersectLinearReference(b *testing.B) {
	for _, kind := range []string{"balanced", "skewed", "disjoint"} {
		x, y := intersectInputs(kind)
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				n += len(refIntersect(x, y))
			}
			_ = n
		})
	}
}

// FuzzLeapfrogMultiwayIntersect drives the leapfrog fold the WCOJ
// operator's candidate stage uses — sort the constraint lists by length,
// then fold IntersectTo pairwise with buffer reuse — against a naive
// membership-count oracle over k sorted unique lists.
func FuzzLeapfrogMultiwayIntersect(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 0, 0, 1, 1})
	f.Add([]byte{3, 10, 20, 30, 40, 50, 1, 1, 1})
	f.Add([]byte{2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		k := int(data[0]%4) + 2
		// Deal the remaining bytes round-robin into k lists, then turn each
		// list's bytes into strictly increasing values (sorted, duplicate-free
		// — the iterator contract).
		lists := make([][]graph.NodeID, k)
		for i, d := range data[1:] {
			lists[i%k] = append(lists[i%k], graph.NodeID(d))
		}
		for li, deltas := range lists {
			var cur graph.NodeID
			out := make([]graph.NodeID, 0, len(deltas))
			for _, d := range deltas {
				cur += d%16 + 1
				out = append(out, cur)
			}
			lists[li] = out
		}

		counts := map[graph.NodeID]int{}
		for _, l := range lists {
			for _, v := range l {
				counts[v]++
			}
		}
		want := []graph.NodeID{}
		for _, v := range lists[0] {
			if counts[v] == k {
				want = append(want, v)
			}
		}

		sorted := append([][]graph.NodeID(nil), lists...)
		sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
		cur := IntersectTo(nil, sorted[0], sorted[1])
		var buf []graph.NodeID
		for _, l := range sorted[2:] {
			next := IntersectTo(buf, cur, l)
			cur, buf = next, cur
		}
		if !reflect.DeepEqual(cur, want) && !(len(cur) == 0 && len(want) == 0) {
			t.Fatalf("leapfrog fold of %v = %v, oracle %v", lists, cur, want)
		}
	})
}

func ExampleIntersect() {
	a := []graph.NodeID{1, 3, 5, 7}
	b := []graph.NodeID{3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	fmt.Println(Intersect(a, b))
	// Output: [3 5 7]
}
