package gdb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
)

// TestRepackDeterministicAndEquivalent: repacking an insert-fragmented
// database produces a bulk-loaded file that answers identically, and two
// repacks of the same source are byte-identical (page file and manifest).
func TestRepackDeterministicAndEquivalent(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.fdb")

	g := randomGraph(31, 50, 90, 3)
	db, err := Build(g, Options{Path: src})
	if err != nil {
		t.Fatal(err)
	}
	// Fragment the file with point inserts across several batches.
	cur := g
	rngEdges := [][2]graph.NodeID{{1, 40}, {2, 41}, {3, 42}, {44, 5}, {45, 6}, {46, 7}}
	for _, e := range rngEdges {
		st, err := db.ApplyEdgeInsert(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if !st.Duplicate {
			cur = cur.WithEdge(e[0], e[1])
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if db.bulkBuilt {
		t.Fatal("insert-updated database still claims bulk layout")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	p1 := filepath.Join(dir, "packed1.fdb")
	p2 := filepath.Join(dir, "packed2.fdb")
	if err := Repack(src, p1, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Repack(src, p2, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{p1, p2}, {manifestPath(p1), manifestPath(p2)}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("repack is not byte-stable: %s (%d bytes) differs from %s (%d bytes)",
				pair[0], len(a), pair[1], len(b))
		}
	}

	packed, err := Open(p1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer packed.Close()
	if !packed.bulkBuilt {
		t.Fatal("repacked database does not record bulk layout")
	}
	if packed.Graph().NumEdges() != cur.NumEdges() {
		t.Fatalf("repacked graph has %d edges, want %d", packed.Graph().NumEdges(), cur.NumEdges())
	}
	checkIndexConsistent(t, packed, cur)
}

// TestRepackRejectsInPlace: src == dst must fail before touching the file.
func TestRepackRejectsInPlace(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.fdb")
	db, err := Build(randomGraph(32, 20, 30, 2), Options{Path: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Repack(src, src, Options{}); err == nil {
		t.Fatal("in-place repack must be rejected")
	}
	after, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected repack modified the source file")
	}
}
