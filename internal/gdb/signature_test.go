package gdb

import (
	"math/rand"
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
	"fastmatch/internal/xmark"
)

// sigOracle recomputes the fan-signature table from the snapshot's cluster
// index and fails the test on a scan error.
func sigOracle(t *testing.T, db *DB) *Signature {
	t.Helper()
	snap, release := db.Pin()
	defer release()
	sig, err := snap.ComputeSignature()
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// maintained returns the snapshot's live signature table.
func maintained(t *testing.T, db *DB) *Signature {
	t.Helper()
	snap, release := db.Pin()
	defer release()
	sig := snap.Signature()
	if sig == nil {
		t.Fatal("snapshot has no fan signature")
	}
	return sig
}

// TestSignatureBuildMatchesScan: the table assembled for free during the
// build sweep equals a from-scratch recomputation, and its JoinSize entries
// are exactly the scan-derived optimizer statistic.
func TestSignatureBuildMatchesScan(t *testing.T) {
	d := xmark.Generate(xmark.Config{Nodes: 2000, Seed: 5})
	db, err := Build(d.Graph, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	sig := maintained(t, db)
	if sig.NumPairs() == 0 {
		t.Fatal("empty signature on a non-trivial graph")
	}
	if !sig.Equal(sigOracle(t, db)) {
		t.Fatal("build-time signature != cluster-index recomputation")
	}

	snap, release := db.Pin()
	defer release()
	labels := d.Graph.Labels()
	checked := 0
	for x := graph.Label(0); int(x) < labels.Len(); x++ {
		for y := graph.Label(0); int(y) < labels.Len(); y++ {
			js, err := snap.JoinSize(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if got := sig.Pair(x, y).JoinSize; got != js {
				t.Fatalf("JoinSize(%v,%v): signature %d, scan %d", x, y, got, js)
			}
			if js > 0 {
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-empty pairs cross-checked")
	}
}

// TestSignatureMaintainedUnderMixedStream: per-center retract/re-add under
// a random insert/delete stream keeps the table equal to the from-scratch
// recomputation at every step, including zeroed pairs being deleted (not
// left as zero entries, which would break Equal and the tier-2 prefilter's
// absence test).
func TestSignatureMaintainedUnderMixedStream(t *testing.T) {
	d := xmark.Generate(xmark.Config{Nodes: 600, Seed: 11})
	g := d.Graph
	db, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(23))
	cur := g
	n := g.NumNodes()
	var have [][2]graph.NodeID
	for u := graph.NodeID(0); int(u) < n; u++ {
		for _, v := range cur.Successors(u) {
			have = append(have, [2]graph.NodeID{u, v})
		}
	}
	for i := 1; i <= 120; i++ {
		if rng.Intn(3) == 0 && len(have) > 0 {
			k := rng.Intn(len(have))
			u, v := have[k][0], have[k][1]
			have[k] = have[len(have)-1]
			have = have[:len(have)-1]
			if _, err := db.ApplyEdgeDelete(u, v); err != nil {
				t.Fatalf("op %d delete %d->%d: %v", i, u, v, err)
			}
			cur = cur.WithoutEdge(u, v)
		} else {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			st, err := db.ApplyEdgeInsert(u, v)
			if err != nil {
				t.Fatalf("op %d insert %d->%d: %v", i, u, v, err)
			}
			if !st.Duplicate {
				cur = cur.WithEdge(u, v)
				have = append(have, [2]graph.NodeID{u, v})
			}
		}
		if i%10 == 0 {
			if !maintained(t, db).Equal(sigOracle(t, db)) {
				t.Fatalf("op %d: maintained signature != recomputation", i)
			}
		}
	}
	if !maintained(t, db).Equal(sigOracle(t, db)) {
		t.Fatal("final: maintained signature != recomputation")
	}
}

// TestSignatureDeadPairDropped: deleting the only edge between two labels
// must remove the pair entry entirely — Pair reports zero Centers and the
// tier-2 prefilter may again prove patterns on the pair empty.
func TestSignatureDeadPairDropped(t *testing.T) {
	b := graph.NewBuilder()
	a0 := b.AddNode("A")
	b0 := b.AddNode("B")
	c0 := b.AddNode("C")
	b.AddEdge(a0, b0)
	b.AddEdge(b0, c0)
	db, err := Build(b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	snap, release := db.Pin()
	la := snap.Graph().Labels().Lookup("A")
	lb := snap.Graph().Labels().Lookup("B")
	release()

	if maintained(t, db).Pair(la, lb).Centers == 0 {
		t.Fatal("A->B pair missing before delete")
	}
	if _, err := db.ApplyEdgeDelete(a0, b0); err != nil {
		t.Fatal(err)
	}
	sig := maintained(t, db)
	if st := sig.Pair(la, lb); st.Centers != 0 || st.JoinSize != 0 {
		t.Fatalf("A->B pair survives its last edge: %+v", st)
	}
	if !sig.Equal(sigOracle(t, db)) {
		t.Fatal("post-delete signature != recomputation")
	}
}

// TestSignatureSurvivesPersistOpen: Open reattaches the signature by one
// cluster-index scan (no manifest format change), identical to the table
// the persisted database maintained.
func TestSignatureSurvivesPersistOpen(t *testing.T) {
	d := xmark.Generate(xmark.Config{Nodes: 1200, Seed: 7})
	path := filepath.Join(t.TempDir(), "sig.pages")
	db, err := Build(d.Graph, Options{Path: path}) // Build persists automatically
	if err != nil {
		t.Fatal(err)
	}
	want := maintained(t, db).clone()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !maintained(t, re).Equal(want) {
		t.Fatal("reopened signature != persisted database's")
	}
}
