package gdb

import (
	"encoding/binary"

	"fastmatch/internal/graph"
	"fastmatch/internal/storage"
)

// Signature is the per-label degree/fan-signature table of one epoch: for
// every ordered label pair (X, Y) it carries |W(X, Y)| and the exact
// R-join size estimate Σ_{w∈W(X,Y)} |F_X(w)|·|T_Y(w)|, and per label the
// total F-/T-subcluster mass (out-fan / in-fan) across all centers.
//
// The table is built for free during the cluster-index sweep of Build,
// recomputed by one cluster-index scan on Open, and maintained
// incrementally on edge inserts and deletes by retracting and re-adding
// the contribution of every center a batch touches. It powers the tier-2
// prefilter — a pattern edge (X, Y) whose pair entry is absent has
// W(X, Y) = ∅ and therefore provably no matches — and seeds the
// optimizer's cost model with exact fan statistics without any W-table
// or cluster scans at plan time.
//
// Like every other Snap structure it is immutable within an epoch; the
// snapshot writer clones it lazily before the first mutation.
type Signature struct {
	pairs  map[wKey]PairStat
	outFan map[graph.Label]int64 // Σ_w |F_X(w)|: total X-labeled F mass
	inFan  map[graph.Label]int64 // Σ_w |T_Y(w)|: total Y-labeled T mass
}

// PairStat is the fan signature of one ordered label pair (X, Y).
type PairStat struct {
	// Centers is |W(X, Y)|: the number of centers with a non-empty
	// X-labeled F-subcluster and a non-empty Y-labeled T-subcluster.
	// Zero means the pair has no possible R-join results.
	Centers int
	// JoinSize is Σ_{w∈W(X,Y)} |F_X(w)|·|T_Y(w)| — exactly the value
	// Snap.JoinSize computes by scanning, maintained incrementally.
	JoinSize int64
}

func newSignature() *Signature {
	return &Signature{
		pairs:  make(map[wKey]PairStat),
		outFan: make(map[graph.Label]int64),
		inFan:  make(map[graph.Label]int64),
	}
}

// Pair returns the fan signature of (x, y); the zero PairStat when the
// pair has no centers (W(x, y) = ∅).
func (sig *Signature) Pair(x, y graph.Label) PairStat { return sig.pairs[wKey{x, y}] }

// OutFan returns the total X-labeled F-subcluster mass Σ_w |F_X(w)|.
func (sig *Signature) OutFan(x graph.Label) int64 { return sig.outFan[x] }

// InFan returns the total Y-labeled T-subcluster mass Σ_w |T_Y(w)|.
func (sig *Signature) InFan(y graph.Label) int64 { return sig.inFan[y] }

// NumPairs returns the number of label pairs with at least one center.
func (sig *Signature) NumPairs() int { return len(sig.pairs) }

// Equal reports whether two signature tables hold identical statistics
// (the differential-test predicate: incrementally maintained ==
// recomputed from scratch).
func (sig *Signature) Equal(o *Signature) bool {
	if len(sig.pairs) != len(o.pairs) || len(sig.outFan) != len(o.outFan) || len(sig.inFan) != len(o.inFan) {
		return false
	}
	for k, v := range sig.pairs {
		if o.pairs[k] != v {
			return false
		}
	}
	for l, v := range sig.outFan {
		if o.outFan[l] != v {
			return false
		}
	}
	for l, v := range sig.inFan {
		if o.inFan[l] != v {
			return false
		}
	}
	return true
}

func (sig *Signature) clone() *Signature {
	n := &Signature{
		pairs:  make(map[wKey]PairStat, len(sig.pairs)),
		outFan: make(map[graph.Label]int64, len(sig.outFan)),
		inFan:  make(map[graph.Label]int64, len(sig.inFan)),
	}
	for k, v := range sig.pairs {
		n.pairs[k] = v
	}
	for l, v := range sig.outFan {
		n.outFan[l] = v
	}
	for l, v := range sig.inFan {
		n.inFan[l] = v
	}
	return n
}

// addCenter adds one center's contribution: its non-empty F-subcluster
// labels/sizes and T-subcluster labels/sizes (parallel slices).
func (sig *Signature) addCenter(fls []graph.Label, fsz []int, tls []graph.Label, tsz []int) {
	sig.applyCenter(1, fls, fsz, tls, tsz)
}

// removeCenter retracts a contribution previously added with the same
// slot sizes.
func (sig *Signature) removeCenter(fls []graph.Label, fsz []int, tls []graph.Label, tsz []int) {
	sig.applyCenter(-1, fls, fsz, tls, tsz)
}

func (sig *Signature) applyCenter(sign int64, fls []graph.Label, fsz []int, tls []graph.Label, tsz []int) {
	for i, x := range fls {
		for j, y := range tls {
			k := wKey{x, y}
			ps := sig.pairs[k]
			ps.Centers += int(sign)
			ps.JoinSize += sign * int64(fsz[i]) * int64(tsz[j])
			if ps == (PairStat{}) {
				delete(sig.pairs, k)
			} else {
				sig.pairs[k] = ps
			}
		}
		if m := sig.outFan[x] + sign*int64(fsz[i]); m == 0 {
			delete(sig.outFan, x)
		} else {
			sig.outFan[x] = m
		}
	}
	for j, y := range tls {
		if m := sig.inFan[y] + sign*int64(tsz[j]); m == 0 {
			delete(sig.inFan, y)
		} else {
			sig.inFan[y] = m
		}
	}
}

// Signature returns this epoch's fan-signature table. The table is
// immutable and shared; callers must not mutate it.
func (s *Snap) Signature() *Signature { return s.sig }

// ComputeSignature rebuilds the fan-signature table from scratch by one
// scan of the cluster index. It is the reattachment path of Open (no
// manifest format change) and the oracle the differential tests compare
// the incrementally maintained table against.
func (s *Snap) ComputeSignature() (*Signature, error) {
	if s.db.closed.Load() {
		return nil, ErrClosed
	}
	type slotRef struct {
		w   graph.NodeID
		dir byte
		l   graph.Label
		rid uint64
	}
	// Collect the slot directory first, then read record lengths: heap
	// reads do not happen inside the tree scan.
	var slots []slotRef
	err := s.cluster.Scan(clusterKey(0, dirF, 0), func(key []byte, val uint64) bool {
		if len(key) != 9 {
			return true
		}
		slots = append(slots, slotRef{
			w:   graph.NodeID(binary.BigEndian.Uint32(key[0:4])),
			dir: key[4],
			l:   graph.Label(binary.BigEndian.Uint32(key[5:9])),
			rid: val,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	sig := newSignature()
	var fls, tls []graph.Label
	var fsz, tsz []int
	flush := func() {
		if len(fls) > 0 || len(tls) > 0 {
			sig.addCenter(fls, fsz, tls, tsz)
		}
		fls, tls, fsz, tsz = fls[:0], tls[:0], fsz[:0], tsz[:0]
	}
	// Keys scan in (center, dir, label) order, so one pass groups
	// per-center slots.
	cur := graph.NodeID(0)
	started := false
	for _, sl := range slots {
		if started && sl.w != cur {
			flush()
		}
		cur, started = sl.w, true
		rec, err := s.db.heap.Read(storage.DecodeRID(sl.rid))
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(rec))
		if n == 0 {
			continue
		}
		if sl.dir == dirF {
			fls = append(fls, sl.l)
			fsz = append(fsz, n)
		} else {
			tls = append(tls, sl.l)
			tsz = append(tsz, n)
		}
	}
	flush()
	return sig, nil
}
