package gdb

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"fastmatch/internal/graph"
)

// TestApplyEdgeDeleteMaintainsIndex: a mixed stream of random inserts and
// deletes must keep every persistent structure equivalent to ground truth,
// checked periodically with the full consistency sweep (Reaches, F/T
// subclusters, W-table completeness).
func TestApplyEdgeDeleteMaintainsIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 24
	g := randomGraph(7, n, 36, 3)
	db := mustBuild(t, g, Options{})
	cur := g
	hasEdge := func(u, v graph.NodeID) bool {
		for _, w := range cur.Successors(u) {
			if w == v {
				return true
			}
		}
		return false
	}
	for step := 0; step < 60; step++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if rng.Intn(2) == 0 && hasEdge(u, v) {
			st, err := db.ApplyEdgeDelete(u, v)
			if err != nil {
				t.Fatalf("step %d delete %d->%d: %v", step, u, v, err)
			}
			if st.Missing {
				t.Fatalf("step %d: delete of present edge %d->%d reported Missing", step, u, v)
			}
			cur = cur.WithoutEdge(u, v)
		} else {
			st, err := db.ApplyEdgeInsert(u, v)
			if err != nil {
				t.Fatalf("step %d insert %d->%d: %v", step, u, v, err)
			}
			if !st.Duplicate {
				cur = cur.WithEdge(u, v)
			}
		}
		if db.Graph().NumEdges() != cur.NumEdges() {
			t.Fatalf("step %d: db graph has %d edges, want %d", step, db.Graph().NumEdges(), cur.NumEdges())
		}
		if step%8 == 7 {
			checkIndexConsistent(t, db, cur)
		}
	}
	checkIndexConsistent(t, db, cur)
}

// TestApplyEdgeDeleteNoopAndRange: deleting an absent edge is a no-op that
// publishes no epoch; out-of-range endpoints answer ErrBadDelete; a closed
// database answers ErrClosed.
func TestApplyEdgeDeleteNoopAndRange(t *testing.T) {
	g := randomGraph(3, 12, 0, 2) // edgeless: every delete is a no-op
	db := mustBuild(t, g, Options{})
	before := db.EpochStats().Current
	st, err := db.ApplyEdgeDelete(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Missing || st.RemovedLabelEntries != 0 || st.AddedLabelEntries != 0 {
		t.Fatalf("absent-edge delete reported %+v", st)
	}
	if got := db.EpochStats().Current; got != before {
		t.Fatalf("no-op delete published an epoch: %d -> %d", before, got)
	}
	// A whole batch of no-ops also publishes nothing.
	sts, err := db.ApplyEdgeDeletes([][2]graph.NodeID{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sts {
		if !s.Missing {
			t.Fatalf("batch no-op %d reported %+v", i, s)
		}
	}
	if got := db.EpochStats().Current; got != before {
		t.Fatalf("no-op batch published an epoch: %d -> %d", before, got)
	}

	if _, err := db.ApplyEdgeDelete(0, graph.NodeID(g.NumNodes())); !errors.Is(err, ErrBadDelete) {
		t.Fatalf("out-of-range delete: err = %v, want ErrBadDelete", err)
	}
	db.Close()
	if _, err := db.ApplyEdgeDelete(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete on closed db: err = %v, want ErrClosed", err)
	}
}

// TestApplyEdgeDeleteBatchDuplicate: deleting the same single edge twice in
// one batch removes it once; the second element is a no-op, and the batch
// still publishes exactly one epoch for the change that did happen.
func TestApplyEdgeDeleteBatchDuplicate(t *testing.T) {
	b := graph.NewBuilder()
	la := b.Intern("A")
	for i := 0; i < 3; i++ {
		b.AddNodeLabel(la)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	db := mustBuild(t, g, Options{})
	before := db.EpochStats().Current
	sts, err := db.ApplyEdgeDeletes([][2]graph.NodeID{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].Missing || !sts[1].Missing {
		t.Fatalf("duplicate batch stats: %+v", sts)
	}
	if got := db.EpochStats().Current; got != before+1 {
		t.Fatalf("batch published %d epochs, want 1", got-before)
	}
	if got, err := db.Reaches(0, 2); err != nil || got {
		t.Fatalf("Reaches(0,2) = %v,%v after cutting 0->1", got, err)
	}
	checkIndexConsistent(t, db, g.WithoutEdge(0, 1))
}

// TestApplyEdgeDeleteDropsDeadCenter: deleting the only edges through a
// center must retract its W-table rows and drop the center — otherwise the
// index would report spurious center-to-center matches.
func TestApplyEdgeDeleteDropsDeadCenter(t *testing.T) {
	// A chain 0->1->2: cutting both edges isolates every node.
	b := graph.NewBuilder()
	la := b.Intern("A")
	for i := 0; i < 3; i++ {
		b.AddNodeLabel(la)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	db := mustBuild(t, g, Options{})
	centersBefore := db.NumCenters()
	if centersBefore == 0 {
		t.Fatal("built index has no centers")
	}
	if _, err := db.ApplyEdgeDeletes([][2]graph.NodeID{{0, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	empty := g.WithoutEdge(0, 1).WithoutEdge(1, 2)
	checkIndexConsistent(t, db, empty)
	if got := db.NumCenters(); got != 0 {
		t.Fatalf("edgeless graph still holds %d centers", got)
	}
	ws, err := db.Centers(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 {
		t.Fatalf("edgeless graph still has W-table centers: %v", ws)
	}
	if db.CoverSize() != 0 {
		t.Fatalf("edgeless graph still reports cover size %d", db.CoverSize())
	}
	// And the structure recovers: reinserting restores the chain.
	if _, err := db.ApplyEdgeInserts([][2]graph.NodeID{{0, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	checkIndexConsistent(t, db, g)
	if centersBefore != 0 && db.NumCenters() == 0 {
		t.Fatal("reinsert created no centers")
	}
}

// TestApplyEdgeDeleteStats: RemovedLabelEntries/AddedLabelEntries track
// CoverSize exactly across a mixed stream.
func TestApplyEdgeDeleteStats(t *testing.T) {
	g := randomGraph(3, 20, 32, 3)
	db := mustBuild(t, g, Options{})
	cur := g
	size := db.CoverSize()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		u := graph.NodeID(rng.Intn(20))
		v := graph.NodeID(rng.Intn(20))
		present := false
		for _, w := range cur.Successors(u) {
			if w == v {
				present = true
				break
			}
		}
		if present {
			st, err := db.ApplyEdgeDelete(u, v)
			if err != nil {
				t.Fatal(err)
			}
			size += st.AddedLabelEntries - st.RemovedLabelEntries
			cur = cur.WithoutEdge(u, v)
		} else {
			st, err := db.ApplyEdgeInsert(u, v)
			if err != nil {
				t.Fatal(err)
			}
			size += st.LabelEntries
			cur = cur.WithEdge(u, v)
		}
		if db.CoverSize() != size {
			t.Fatalf("step %d: CoverSize %d, want %d", i, db.CoverSize(), size)
		}
	}
}

// TestApplyEdgeDeleteOnOpenedDB exercises the reconstruction path: deletes
// against a database whose labeling was reseeded from stored codes, with no
// Cover object, then durability through Sync and reopen.
func TestApplyEdgeDeleteOnOpenedDB(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")
	g := randomGraph(19, 20, 30, 3)
	db, err := Build(g, Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rng := rand.New(rand.NewSource(23))
	cur := re.Graph()
	for i := 0; i < 20; i++ {
		u := graph.NodeID(rng.Intn(20))
		v := graph.NodeID(rng.Intn(20))
		present := false
		for _, w := range cur.Successors(u) {
			if w == v {
				present = true
				break
			}
		}
		if present && rng.Intn(2) == 0 {
			if _, err := re.ApplyEdgeDelete(u, v); err != nil {
				t.Fatal(err)
			}
			cur = cur.WithoutEdge(u, v)
		} else {
			st, err := re.ApplyEdgeInsert(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Duplicate {
				cur = cur.WithEdge(u, v)
			}
		}
	}
	checkIndexConsistent(t, re, cur)
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	checkIndexConsistent(t, re2, cur)
}
