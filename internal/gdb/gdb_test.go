package gdb

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"fastmatch/internal/graph"
	"fastmatch/internal/reach"
	"fastmatch/internal/twohop"
)

// figure1Graph builds the data graph of Figure 1(a) (as reconstructed in
// internal/graph tests).
func figure1Graph() (*graph.Graph, map[string]graph.NodeID) {
	b := graph.NewBuilder()
	ids := map[string]graph.NodeID{}
	add := func(name, label string) { ids[name] = b.AddNode(label) }
	add("a0", "A")
	for _, n := range []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6"} {
		add(n, "B")
	}
	for _, n := range []string{"c0", "c1", "c2", "c3"} {
		add(n, "C")
	}
	for _, n := range []string{"d0", "d1", "d2", "d3", "d4", "d5"} {
		add(n, "D")
	}
	for _, n := range []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"} {
		add(n, "E")
	}
	edges := [][2]string{
		{"a0", "b3"}, {"a0", "b4"}, {"a0", "b5"}, {"a0", "c0"},
		{"b3", "c2"}, {"b4", "c2"}, {"b5", "c3"}, {"b6", "c3"},
		{"b0", "c1"}, {"b1", "c1"}, {"b2", "c1"}, {"b1", "c3"},
		{"c0", "d0"}, {"c0", "d1"}, {"c0", "e0"},
		{"c1", "d2"}, {"c1", "d3"}, {"c1", "e7"},
		{"c2", "e2"}, {"c3", "d4"}, {"c3", "d5"},
		{"d0", "e0"}, {"d2", "e1"}, {"d4", "e3"}, {"e4", "e5"},
	}
	for _, e := range edges {
		b.AddEdge(ids[e[0]], ids[e[1]])
	}
	return b.Build(), ids
}

func randomGraph(seed int64, n, m, nlabels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func mustBuild(t testing.TB, g *graph.Graph, opt Options) *DB {
	t.Helper()
	db, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestReachesMatchesGraph(t *testing.T) {
	g, _ := figure1Graph()
	db := mustBuild(t, g, Options{})
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			want := graph.Reaches(g, u, v)
			got, err := db.Reaches(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Reaches(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

// TestClusterSemantics: every member of an F-subcluster reaches the center;
// every member of a T-subcluster is reached from it; and the subclusters
// carry the right label.
func TestClusterSemantics(t *testing.T) {
	g := randomGraph(17, 60, 140, 4)
	db := mustBuild(t, g, Options{})
	for w := graph.NodeID(0); int(w) < g.NumNodes(); w++ {
		for l := graph.Label(0); int(l) < g.Labels().Len(); l++ {
			f, err := db.GetF(w, l)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range f {
				if g.LabelOf(u) != l {
					t.Fatalf("F-subcluster(%d,%d) holds node %d of label %d", w, l, u, g.LabelOf(u))
				}
				if !graph.Reaches(g, u, w) {
					t.Fatalf("F-subcluster member %d does not reach center %d", u, w)
				}
			}
			tt, err := db.GetT(w, l)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range tt {
				if g.LabelOf(v) != l {
					t.Fatalf("T-subcluster(%d,%d) holds node %d of wrong label", w, l, v)
				}
				if !graph.Reaches(g, w, v) {
					t.Fatalf("T-subcluster member %d not reached from center %d", v, w)
				}
			}
		}
	}
}

// TestWTableComplete: W(X,Y) together with the clusters covers exactly the
// reachable (x, y) pairs across distinct labels.
func TestWTableComplete(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 30, 60, 3)
		db, err := Build(g, Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		labels := g.Labels()
		for x := graph.Label(0); int(x) < labels.Len(); x++ {
			for y := graph.Label(0); int(y) < labels.Len(); y++ {
				if x == y {
					continue
				}
				// Pairs derivable from the index.
				got := map[[2]graph.NodeID]bool{}
				ws, err := db.Centers(x, y)
				if err != nil {
					return false
				}
				for _, w := range ws {
					f, _ := db.GetF(w, x)
					tt, _ := db.GetT(w, y)
					for _, u := range f {
						for _, v := range tt {
							got[[2]graph.NodeID{u, v}] = true
						}
					}
				}
				// Ground truth.
				for _, u := range g.Extent(x) {
					for _, v := range g.Extent(y) {
						want := graph.Reaches(g, u, v)
						if got[[2]graph.NodeID{u, v}] != want {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestGetCentersSemijoinExact: out(x) ∩ W(X,Y) ≠ ∅ iff x reaches some
// Y-labeled node (Eq. 6 is an exact filter).
func TestGetCentersSemijoinExact(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed^0x77, 25, 55, 3)
		db, err := Build(g, Options{})
		if err != nil {
			return false
		}
		defer db.Close()
		for x := graph.Label(0); int(x) < g.Labels().Len(); x++ {
			for y := graph.Label(0); int(y) < g.Labels().Len(); y++ {
				if x == y {
					continue
				}
				ws, err := db.Centers(x, y)
				if err != nil {
					return false
				}
				for _, u := range g.Extent(x) {
					out, err := db.OutCode(u)
					if err != nil {
						return false
					}
					pass := IntersectNonEmpty(out, ws)
					want := false
					for _, v := range g.Extent(y) {
						if graph.Reaches(g, u, v) {
							want = true
							break
						}
					}
					if pass != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCodesIncludeSelfAndSorted(t *testing.T) {
	g, ids := figure1Graph()
	db := mustBuild(t, g, Options{})
	for _, v := range []graph.NodeID{ids["a0"], ids["c1"], ids["e7"]} {
		in, err := db.InCode(v)
		if err != nil {
			t.Fatal(err)
		}
		out, err := db.OutCode(v)
		if err != nil {
			t.Fatal(err)
		}
		if !containsNode(in, v) || !containsNode(out, v) {
			t.Fatalf("codes of %d missing self", v)
		}
		for i := 1; i < len(in); i++ {
			if in[i-1] >= in[i] {
				t.Fatalf("InCode(%d) not sorted: %v", v, in)
			}
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				t.Fatalf("OutCode(%d) not sorted: %v", v, out)
			}
		}
	}
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestJoinSizeUpperBound(t *testing.T) {
	g := randomGraph(3, 40, 90, 3)
	db := mustBuild(t, g, Options{})
	for x := graph.Label(0); int(x) < g.Labels().Len(); x++ {
		for y := graph.Label(0); int(y) < g.Labels().Len(); y++ {
			if x == y {
				continue
			}
			est, err := db.JoinSize(x, y)
			if err != nil {
				t.Fatal(err)
			}
			exact := int64(0)
			for _, u := range g.Extent(x) {
				for _, v := range g.Extent(y) {
					if graph.Reaches(g, u, v) {
						exact++
					}
				}
			}
			if est < exact {
				t.Fatalf("JoinSize(%d,%d) = %d below exact %d", x, y, est, exact)
			}
			// Memoized second call must agree.
			est2, _ := db.JoinSize(x, y)
			if est2 != est {
				t.Fatal("memoized JoinSize differs")
			}
		}
	}
}

func TestFileBackedDB(t *testing.T) {
	g, ids := figure1Graph()
	path := filepath.Join(t.TempDir(), "gdb.pages")
	db := mustBuild(t, g, Options{Path: path, PoolBytes: 16 * 4096})
	ok, err := db.Reaches(ids["a0"], ids["e2"])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a0 should reach e2")
	}
	if db.IOStats().Logical() == 0 {
		t.Fatal("expected counted I/O")
	}
}

func TestIOAccountingAndCaches(t *testing.T) {
	g, _ := figure1Graph()
	db := mustBuild(t, g, Options{})
	db.ResetIOStats()
	db.ClearCaches()

	a := g.Labels().Lookup("A")
	bLbl := g.Labels().Lookup("B")
	if _, err := db.Centers(a, bLbl); err != nil {
		t.Fatal(err)
	}
	io1 := db.IOStats().Logical()
	if io1 == 0 {
		t.Fatal("first W-table probe should touch pages")
	}
	// Cached probe: no additional I/O.
	if _, err := db.Centers(a, bLbl); err != nil {
		t.Fatal(err)
	}
	if db.IOStats().Logical() != io1 {
		t.Fatal("cached W-table probe should not touch pages")
	}

	// Code cache: second OutCode on the same node is free.
	if _, err := db.OutCode(0); err != nil {
		t.Fatal(err)
	}
	io2 := db.IOStats().Logical()
	if _, err := db.OutCode(0); err != nil {
		t.Fatal(err)
	}
	if db.IOStats().Logical() != io2 {
		t.Fatal("cached code read should not touch pages")
	}
}

func TestDisableWTableCache(t *testing.T) {
	g, _ := figure1Graph()
	db := mustBuild(t, g, Options{DisableWTableCache: true})
	db.ResetIOStats()
	a := g.Labels().Lookup("A")
	bLbl := g.Labels().Lookup("B")
	db.Centers(a, bLbl)
	io1 := db.IOStats().Logical()
	db.Centers(a, bLbl)
	if db.IOStats().Logical() <= io1 {
		t.Fatal("uncached W-table probe should touch pages every time")
	}
}

func TestCodeCacheBound(t *testing.T) {
	g := randomGraph(5, 200, 400, 4)
	db := mustBuild(t, g, Options{CodeCacheEntries: 10})
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if _, err := db.OutCode(v); err != nil {
			t.Fatal(err)
		}
	}
	// The cache is sharded; each of the codeCacheShards shards holds at
	// least one entry, so the effective bound is max(10, codeCacheShards).
	if n := db.mgr.Current().codeCache.len(); n > codeCacheShards {
		t.Fatalf("code cache grew to %d entries, bound %d", n, codeCacheShards)
	}
}

func TestCentersEmptyPair(t *testing.T) {
	// Two disconnected labels: W must be empty.
	b := graph.NewBuilder()
	b.AddNode("X")
	b.AddNode("Y")
	g := b.Build()
	db := mustBuild(t, g, Options{})
	ws, err := db.Centers(g.Labels().Lookup("X"), g.Labels().Lookup("Y"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 {
		t.Fatalf("W(X,Y) = %v, want empty", ws)
	}
}

func TestIntersectHelpers(t *testing.T) {
	a := []graph.NodeID{1, 3, 5, 7}
	b := []graph.NodeID{2, 3, 6, 7, 9}
	if !IntersectNonEmpty(a, b) {
		t.Fatal("should intersect")
	}
	got := Intersect(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Intersect = %v", got)
	}
	if IntersectNonEmpty([]graph.NodeID{1, 2}, []graph.NodeID{3, 4}) {
		t.Fatal("disjoint slices reported intersecting")
	}
	if Intersect(nil, a) != nil {
		t.Fatal("nil ∩ a should be nil")
	}
}

func TestBuildFromIndexSharesIndex(t *testing.T) {
	g, _ := figure1Graph()
	cover := twohop.Compute(g, twohop.Options{})
	db, err := BuildFromIndex(g, cover, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Index() != reach.Index(cover) {
		t.Fatal("DB should retain the provided cover")
	}
	if db.NumCenters() == 0 {
		t.Fatal("expected some centers")
	}
}

func BenchmarkBuildDB(b *testing.B) {
	g := randomGraph(1, 5000, 9000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Build(g, Options{})
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

func BenchmarkReachesViaCodes(b *testing.B) {
	g := randomGraph(2, 5000, 9000, 8)
	db, err := Build(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if _, err := db.Reaches(u, v); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDistinctFromTo: the distinct-side statistics equal exact counts.
func TestDistinctFromTo(t *testing.T) {
	g := randomGraph(23, 50, 110, 4)
	db := mustBuild(t, g, Options{})
	for x := graph.Label(0); int(x) < g.Labels().Len(); x++ {
		for y := graph.Label(0); int(y) < g.Labels().Len(); y++ {
			if x == y {
				continue
			}
			df, err := db.DistinctFrom(x, y)
			if err != nil {
				t.Fatal(err)
			}
			dt, err := db.DistinctTo(x, y)
			if err != nil {
				t.Fatal(err)
			}
			var wantDF, wantDT int64
			for _, u := range g.Extent(x) {
				for _, v := range g.Extent(y) {
					if graph.Reaches(g, u, v) {
						wantDF++
						break
					}
				}
			}
			for _, v := range g.Extent(y) {
				for _, u := range g.Extent(x) {
					if graph.Reaches(g, u, v) {
						wantDT++
						break
					}
				}
			}
			if df != wantDF || dt != wantDT {
				t.Fatalf("distinct(%d,%d) = (%d,%d), want (%d,%d)", x, y, df, dt, wantDF, wantDT)
			}
			// Memoized second call.
			df2, _ := db.DistinctFrom(x, y)
			dt2, _ := db.DistinctTo(x, y)
			if df2 != df || dt2 != dt {
				t.Fatal("memoized distinct counts differ")
			}
		}
	}
}

func TestSizeBytesAndResize(t *testing.T) {
	g := randomGraph(24, 200, 400, 4)
	db := mustBuild(t, g, Options{})
	if db.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
	if err := db.ResizePool(64 << 10); err != nil {
		t.Fatal(err)
	}
	// Queries still work after the shrink.
	ok, err := db.Reaches(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = ok
	if db.Heap() == nil {
		t.Fatal("Heap accessor nil")
	}
}
