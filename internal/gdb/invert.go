package gdb

import (
	"runtime"
	"sync"

	"fastmatch/internal/graph"
)

// buildWorkers resolves Options.BuildParallelism to a worker count, with
// the same convention as reach.Options.Parallelism.
func buildWorkers(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p <= 1 {
		return 1
	}
	return p
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs fn(worker, lo, hi) on each concurrently. With one worker (or a
// trivially small n) it degenerates to a direct call — no goroutines.
func parallelRanges(n, workers int, fn func(w, lo, hi int)) {
	if workers <= 1 || n < workers {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// inversion is the cover inverted into subcluster segments: for dense
// center index ci, direction dir ∈ {dirF, dirT}, and label l, the
// subcluster members are
//
//	members[offsets[s]:offsets[s+1]],  s = (ci·2 + dir)·nLabels + l
//
// sorted ascending by node ID. Slots are laid out in cluster-key order —
// (center asc, dir F then T, label asc) — so walking slots in order yields
// the cluster index's sorted key stream.
type inversion struct {
	centers []graph.NodeID // ascending; centers[ci] is the node for index ci
	nLabels int
	offsets []int32
	members []graph.NodeID
}

// invertCover computes the per-center, per-label F-/T-subclusters of the
// cover with a sharded counting sort instead of the former map-of-maps:
//
//	Phase 0  (parallel over node ranges): mark the center set — every node
//	         appearing in at least one stored code — in per-worker bitmaps,
//	         OR-merged serially; then assign dense center indices in
//	         ascending node order.
//	Phase 1  (parallel): each worker counts, per (center, dir, label) slot,
//	         the entries its node range contributes. Node v contributes
//	         (w, F, label(v)) for w ∈ Out(v), (w, T, label(v)) for
//	         w ∈ In(v), and — if v is itself a center — the compact-code
//	         self entries (v, F, label(v)) and (v, T, label(v)).
//	Phase 2  (serial): prefix sums over slots, and within each slot over
//	         workers in range order, turn counts into write cursors.
//	Phase 3  (parallel): each worker re-walks its range and scatters node
//	         IDs through its cursors. Ranges are ordered and each range is
//	         walked ascending, so every segment comes out sorted — no
//	         per-subcluster sort, no contention (cursor regions are
//	         disjoint by construction).
//
// The result is identical at every worker count: slot layout depends only
// on the cover, and segment order only on node order.
func (db *DB) invertCover(g *graph.Graph, workers int) *inversion {
	cover := db.idx
	n := g.NumNodes()
	L := g.Labels().Len()

	// Phase 0: center set.
	marks := make([][]bool, workers)
	parallelRanges(n, workers, func(w, lo, hi int) {
		mark := make([]bool, n)
		for v := lo; v < hi; v++ {
			for _, c := range cover.Out(graph.NodeID(v)) {
				mark[c] = true
			}
			for _, c := range cover.In(graph.NodeID(v)) {
				mark[c] = true
			}
		}
		marks[w] = mark
	})
	mark := marks[0]
	for _, m := range marks[1:] {
		for i, b := range m {
			if b {
				mark[i] = true
			}
		}
	}
	centers := make([]graph.NodeID, 0, 1024)
	cidx := make([]int32, n)
	for v := 0; v < n; v++ {
		if mark[v] {
			cidx[v] = int32(len(centers))
			centers = append(centers, graph.NodeID(v))
		} else {
			cidx[v] = -1
		}
	}
	nslots := len(centers) * 2 * L
	slot := func(ci int32, dir, label int) int {
		return (int(ci)*2+dir)*L + label
	}

	// Phase 1: per-worker slot counts.
	cnts := make([][]int32, workers)
	parallelRanges(n, workers, func(w, lo, hi int) {
		cnt := make([]int32, nslots)
		for v := lo; v < hi; v++ {
			lv := int(g.LabelOf(graph.NodeID(v)))
			if ci := cidx[v]; ci >= 0 {
				cnt[slot(ci, int(dirF), lv)]++
				cnt[slot(ci, int(dirT), lv)]++
			}
			for _, c := range cover.Out(graph.NodeID(v)) {
				cnt[slot(cidx[c], int(dirF), lv)]++
			}
			for _, c := range cover.In(graph.NodeID(v)) {
				cnt[slot(cidx[c], int(dirT), lv)]++
			}
		}
		cnts[w] = cnt
	})

	// Phase 2: counts → slot offsets + per-worker write cursors (cnts is
	// repurposed in place).
	offsets := make([]int32, nslots+1)
	total := int32(0)
	for s := 0; s < nslots; s++ {
		offsets[s] = total
		for w := 0; w < workers; w++ {
			c := cnts[w][s]
			cnts[w][s] = total
			total += c
		}
	}
	offsets[nslots] = total

	// Phase 3: scatter.
	members := make([]graph.NodeID, total)
	parallelRanges(n, workers, func(w, lo, hi int) {
		cur := cnts[w]
		for v := lo; v < hi; v++ {
			lv := int(g.LabelOf(graph.NodeID(v)))
			if ci := cidx[v]; ci >= 0 {
				s := slot(ci, int(dirF), lv)
				members[cur[s]] = graph.NodeID(v)
				cur[s]++
				s = slot(ci, int(dirT), lv)
				members[cur[s]] = graph.NodeID(v)
				cur[s]++
			}
			for _, c := range cover.Out(graph.NodeID(v)) {
				s := slot(cidx[c], int(dirF), lv)
				members[cur[s]] = graph.NodeID(v)
				cur[s]++
			}
			for _, c := range cover.In(graph.NodeID(v)) {
				s := slot(cidx[c], int(dirT), lv)
				members[cur[s]] = graph.NodeID(v)
				cur[s]++
			}
		}
	})

	return &inversion{centers: centers, nLabels: L, offsets: offsets, members: members}
}
