package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// InsertRequest is the JSON body of POST /insert: a batch of directed
// edges, each a [from, to] node-ID pair, applied in order.
type InsertRequest struct {
	Edges [][2]graph.NodeID `json:"edges"`
}

// InsertResult aggregates one insert batch's effect on the index.
type InsertResult struct {
	// Applied counts edges that actually changed the graph (non-duplicates).
	Applied int `json:"applied"`
	// Duplicates counts edges that already existed (no-ops).
	Duplicates int `json:"duplicates"`
	// LabelEntries is the total 2-hop label entries the cover gained.
	LabelEntries int `json:"label_entries"`
	// NewCenters counts nodes that became centers of the R-join index.
	NewCenters int `json:"new_centers"`
	// NewWPairs counts W-table entries extended with a center.
	NewWPairs int `json:"new_w_pairs"`
}

// InsertEdges applies a batch of edge inserts through the database's
// incremental maintenance path. The batch builds one private copy-on-write
// snapshot and publishes it as a single new epoch: concurrent queries keep
// the epoch they pinned, so they observe either no edge of the batch or
// (once they start after the publish) all of it — never a torn
// intermediate state, and never blocked behind the writer. The plan cache
// needs no invalidation: its keys carry the snapshot epoch, so plans
// costed against the superseded snapshot stop matching and age out of the
// LRU on their own.
//
// A malformed edge (endpoint out of range) aborts the batch at that edge
// with ErrBadQuery; earlier edges stay applied (and published), and the
// returned result counts them.
func (s *Server) InsertEdges(ctx context.Context, edges [][2]graph.NodeID) (InsertResult, error) {
	var res InsertResult
	if s.db.Closed() {
		return res, gdb.ErrClosed
	}
	if err := ctx.Err(); err != nil {
		s.met.recordError(err)
		return res, err
	}
	stats, err := s.db.ApplyEdgeInserts(edges)
	for _, st := range stats {
		if st.Duplicate {
			res.Duplicates++
			continue
		}
		res.Applied++
		res.LabelEntries += st.LabelEntries
		res.NewWPairs += st.NewWPairs
		if st.NewCenter {
			res.NewCenters++
		}
	}
	s.met.edgeInserts.Add(int64(res.Applied))
	s.met.insertDuplicates.Add(int64(res.Duplicates))
	s.met.insertLabelEntries.Add(int64(res.LabelEntries))
	if err != nil {
		s.met.insertErrors.Add(1)
		if errors.Is(err, gdb.ErrBadInsert) {
			err = badQuery(err)
		}
		return res, err
	}
	return res, nil
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req InsertRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing \"edges\""))
		return
	}
	res, err := s.InsertEdges(r.Context(), req.Edges)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
