package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// InsertRequest is the JSON body of POST /insert: a batch of directed
// edges, each a [from, to] node-ID pair, applied in order.
type InsertRequest struct {
	Edges [][2]graph.NodeID `json:"edges"`
}

// InsertResult aggregates one insert batch's effect on the index.
type InsertResult struct {
	// Applied counts edges that actually changed the graph (non-duplicates).
	Applied int `json:"applied"`
	// Duplicates counts edges that already existed (no-ops).
	Duplicates int `json:"duplicates"`
	// LabelEntries is the total 2-hop label entries the cover gained.
	LabelEntries int `json:"label_entries"`
	// NewCenters counts nodes that became centers of the R-join index.
	NewCenters int `json:"new_centers"`
	// NewWPairs counts W-table entries extended with a center.
	NewWPairs int `json:"new_w_pairs"`
}

// InsertEdges applies a batch of edge inserts through the database's
// incremental maintenance path. Each edge is one atomic index update:
// concurrent queries observe the index on some prefix of the batch, never
// a torn intermediate state (the maintenance epoch lock serialises each
// insert against whole query executions). After the batch the plan cache
// is dropped — cached plans stay result-correct on the grown graph (plan
// shape affects cost, not answers), but replanning lets the optimizer see
// the updated statistics.
//
// A malformed edge (endpoint out of range) aborts the batch at that edge
// with ErrBadQuery; earlier edges stay applied, and the returned result
// counts them.
func (s *Server) InsertEdges(ctx context.Context, edges [][2]graph.NodeID) (InsertResult, error) {
	var res InsertResult
	if s.db.Closed() {
		return res, gdb.ErrClosed
	}
	for _, e := range edges {
		if err := ctx.Err(); err != nil {
			s.met.recordError(err)
			return res, err
		}
		st, err := s.db.ApplyEdgeInsert(e[0], e[1])
		if err != nil {
			s.met.insertErrors.Add(1)
			if errors.Is(err, gdb.ErrBadInsert) {
				err = badQuery(err)
			}
			return res, err
		}
		if st.Duplicate {
			res.Duplicates++
			continue
		}
		res.Applied++
		res.LabelEntries += st.LabelEntries
		res.NewWPairs += st.NewWPairs
		if st.NewCenter {
			res.NewCenters++
		}
	}
	if res.Applied > 0 {
		s.plans.clear()
	}
	s.met.edgeInserts.Add(int64(res.Applied))
	s.met.insertDuplicates.Add(int64(res.Duplicates))
	s.met.insertLabelEntries.Add(int64(res.LabelEntries))
	return res, nil
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req InsertRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing \"edges\""))
		return
	}
	res, err := s.InsertEdges(r.Context(), req.Edges)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
