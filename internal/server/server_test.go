package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
)

// testGraph is a layered random graph with enough matches for A->B; B->C
// to be non-trivial.
func testGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	labels := []string{"A", "B", "C", "D"}
	for i := 0; i < n; i++ {
		b.AddNode(labels[i%len(labels)])
	}
	// Edges only forward in node order: a DAG with layered reachability.
	for i := 0; i < 2*n; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build()
}

func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	db, err := gdb.Build(testGraph(1, 60), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db, cfg)
}

// TestQueryMatchesNaive: results served through the full stack (admission
// control, plan cache, context plumbing) equal the naive matcher's.
func TestQueryMatchesNaive(t *testing.T) {
	s := testServer(t, Config{})
	for _, q := range []string{"A->B", "A->B; B->C", "A->C; B->C"} {
		p := pattern.MustParse(q)
		want, err := exec.NaiveMatch(s.DB().Graph(), p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Query(context.Background(), q, "")
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want.SortRows()
		got := append([][]graph.NodeID(nil), res.Rows...)
		sortRows(got)
		if !reflect.DeepEqual(got, want.Rows) {
			t.Fatalf("%s: served %d rows, naive %d rows", q, len(got), len(want.Rows))
		}
		wantCols := make([]string, len(p.Nodes))
		copy(wantCols, p.Nodes)
		if !reflect.DeepEqual(res.Cols, wantCols) {
			t.Fatalf("%s: cols %v, want %v", q, res.Cols, wantCols)
		}
	}
}

func sortRows(rows [][]graph.NodeID) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && lessRow(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func lessRow(a, b []graph.NodeID) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// TestPlanCache: the second evaluation of a canonically-equal pattern skips
// planning; different algorithms do not share cache entries.
func TestPlanCache(t *testing.T) {
	s := testServer(t, Config{})
	ctx := context.Background()
	r1, err := s.Query(ctx, "A->B; B->C", "dps")
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlanCached {
		t.Fatal("first query reported a cached plan")
	}
	// Same conditions, different textual order: canonical form must match.
	r2, err := s.Query(ctx, "B->C; A->B", "dps")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.PlanCached {
		t.Fatal("canonically-equal query missed the plan cache")
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("cached plan returned %d rows, fresh plan %d", len(r2.Rows), len(r1.Rows))
	}
	// A different planner must not reuse the DPS plan.
	r3, err := s.Query(ctx, "A->B; B->C", "dp")
	if err != nil {
		t.Fatal(err)
	}
	if r3.PlanCached {
		t.Fatal("dp query hit the dps cache entry")
	}
	st := s.Stats()
	if st.PlanCacheHits != 1 || st.PlanCacheMisses != 2 {
		t.Fatalf("cache hits=%d misses=%d, want 1/2", st.PlanCacheHits, st.PlanCacheMisses)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	s := testServer(t, Config{PlanCacheSize: -1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		res, err := s.Query(ctx, "A->B", "")
		if err != nil {
			t.Fatal(err)
		}
		if res.PlanCached {
			t.Fatal("disabled cache served a plan")
		}
	}
	if n := s.plans.len(); n != 0 {
		t.Fatalf("disabled cache holds %d entries", n)
	}
}

// TestAdmissionControl: with every slot taken, a query queues for the
// configured timeout and is then shed with a typed overload error.
func TestAdmissionControl(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 2, QueueTimeout: 20 * time.Millisecond})
	// Occupy both slots as two long-running queries would.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	start := time.Now()
	_, err := s.Query(context.Background(), "A->B", "")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.MaxInFlight != 2 {
		t.Fatalf("err=%#v, want *OverloadError{MaxInFlight: 2}", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("rejected after %v, before the queue timeout", waited)
	}
	st := s.Stats()
	if st.Rejections != 1 || st.Queued != 1 || st.Errors != 1 {
		t.Fatalf("stats after rejection: %+v", st)
	}
}

// TestQueueThenAdmit: a queued query runs once a slot frees within the
// timeout instead of being rejected.
func TestQueueThenAdmit(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 1, QueueTimeout: time.Second})
	s.sem <- struct{}{}
	go func() {
		time.Sleep(10 * time.Millisecond)
		<-s.sem
	}()
	res, err := s.Query(context.Background(), "A->B", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if st := s.Stats(); st.Queued != 1 || st.Queries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeadlineAndCancellation(t *testing.T) {
	s := testServer(t, Config{})
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := s.Query(expired, "A->B; B->C", ""); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err=%v", err)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if _, err := s.Query(cancelled, "A->B", ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err=%v", err)
	}
	if st := s.Stats(); st.Deadline != 2 {
		t.Fatalf("deadline count %d, want 2", st.Deadline)
	}
}

func TestDefaultTimeout(t *testing.T) {
	s := testServer(t, Config{DefaultTimeout: time.Nanosecond})
	if _, err := s.Query(context.Background(), "A->B", ""); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("default timeout: err=%v", err)
	}
}

func TestBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	if _, err := s.Query(context.Background(), "A->", ""); err == nil {
		t.Fatal("malformed pattern accepted")
	}
	if _, err := s.Query(context.Background(), "A->B", "magic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Unknown label is a binding error, surfaced from planning.
	if _, err := s.Query(context.Background(), "Nope->B", ""); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestClosedDatabase(t *testing.T) {
	db, err := gdb.Build(testGraph(2, 40), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), "A->B", ""); !errors.Is(err, gdb.ErrClosed) {
		t.Fatalf("closed db: err=%v", err)
	}
	// Stats must not touch the closed pool.
	if st := s.Stats(); st.Queries != 0 {
		t.Fatalf("stats on closed db: %+v", st)
	}
}

// TestHTTP exercises the JSON API over a real socket.
func TestHTTP(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 2, QueueTimeout: 10 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	// Healthy query.
	resp, body := post(`{"pattern": "A->B; B->C", "limit": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount == 0 || len(qr.Rows) > 3 || !qr.Truncated {
		t.Fatalf("response: %+v", qr)
	}
	if len(qr.Cols) != 3 {
		t.Fatalf("cols: %v", qr.Cols)
	}

	// Parse error → 400.
	if resp, body = post(`{"pattern": "A->"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pattern: %d %s", resp.StatusCode, body)
	}
	// Missing pattern → 400.
	if resp, body = post(`{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: %d %s", resp.StatusCode, body)
	}
	// Deadline expiry → 504. A 1ns default budget is already elapsed by
	// execution's first context check, so this cannot race.
	slow := testServer(t, Config{DefaultTimeout: time.Nanosecond})
	tsSlow := httptest.NewServer(slow.Handler())
	defer tsSlow.Close()
	dresp, err := http.Post(tsSlow.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"pattern": "A->B"}`)))
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline: %d, want 504", dresp.StatusCode)
	}

	// Overload → 429 with Retry-After.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, body = post(`{"pattern": "A->B"}`)
	<-s.sem
	<-s.sem
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Stats endpoint.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Queries < 1 || st.Rejections < 1 || st.MaxInFlight != 2 {
		t.Fatalf("stats: %+v", st)
	}

	// Health.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
	// Method mismatch → 405 from the mux method pattern.
	gresp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d", gresp.StatusCode)
	}
}

// TestHTTPClosed: closing the database flips the health check and query
// endpoint to 503.
func TestHTTPClosed(t *testing.T) {
	db, err := gdb.Build(testGraph(3, 40), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	db.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"pattern": "A->B"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after close: %d", resp.StatusCode)
	}
}

// TestMetricsLatency: quantiles come out of the histogram in sane units.
func TestMetricsLatency(t *testing.T) {
	var m metrics
	for i := 0; i < 100; i++ {
		m.recordQuery(2*time.Millisecond, 1, false)
	}
	p50 := m.quantile(0.50)
	// 2ms lands in the [1.024, 2.048) ms bucket (geometric mid ~1.45ms).
	if p50 < 0.5 || p50 > 4 {
		t.Fatalf("p50 = %vms for 2ms samples", p50)
	}
	if m.quantile(0.99) != p50 {
		t.Fatalf("uniform samples: p99 %v != p50 %v", m.quantile(0.99), p50)
	}
}

func TestOverloadErrorMessage(t *testing.T) {
	err := &OverloadError{MaxInFlight: 4, Waited: 100 * time.Millisecond}
	want := fmt.Sprintf("server: overloaded (%d queries in flight, queued %v)", 4, 100*time.Millisecond)
	if err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadError does not match ErrOverloaded")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("OverloadError matches unrelated sentinel")
	}
}
