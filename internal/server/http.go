package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// QueryRequest is the JSON body of POST /query.
type QueryRequest struct {
	// Pattern is the query, e.g. "A->B; B->C".
	Pattern string `json:"pattern"`
	// Algorithm selects the planner: "dp", "dps" (default), "dps-merged".
	Algorithm string `json:"algorithm,omitempty"`
	// TimeoutMS bounds the query's server-side execution in milliseconds.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Limit truncates the returned rows (0 = all). The full result is still
	// computed; Truncated reports whether rows were dropped.
	Limit int `json:"limit,omitempty"`
}

// QueryResponse is the JSON body answering POST /query.
type QueryResponse struct {
	Cols       []string         `json:"cols"`
	Rows       [][]graph.NodeID `json:"rows"`
	RowCount   int              `json:"row_count"`
	Truncated  bool             `json:"truncated,omitempty"`
	PlanCached bool             `json:"plan_cached"`
	ElapsedMS  float64          `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /query   — evaluate a pattern (JSON QueryRequest → QueryResponse)
//	GET  /stats   — metrics snapshot (JSON Stats)
//	GET  /healthz — liveness ("ok", 503 once the database is closed)
//
// Admission-control rejections map to 429 with a Retry-After header,
// per-request deadline expiry to 504, and a closed database to 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Pattern == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"pattern\""))
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := s.Query(ctx, req.Pattern, req.Algorithm)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := QueryResponse{
		Cols:       res.Cols,
		Rows:       res.Rows,
		RowCount:   len(res.Rows),
		PlanCached: res.PlanCached,
		ElapsedMS:  float64(res.Elapsed.Microseconds()) / 1000,
	}
	if req.Limit > 0 && len(resp.Rows) > req.Limit {
		resp.Rows = resp.Rows[:req.Limit]
		resp.Truncated = true
	}
	if resp.Rows == nil {
		resp.Rows = [][]graph.NodeID{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.db.Closed() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// statusFor maps query errors to HTTP status codes. Pattern parse and
// planning errors are client errors; overload is 429 so well-behaved
// clients back off and retry.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, gdb.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
