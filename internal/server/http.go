package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/rjoin"
)

// QueryRequest is the JSON body of POST /query.
type QueryRequest struct {
	// Pattern is the query, e.g. "A->B; B->C".
	Pattern string `json:"pattern"`
	// Algorithm selects the planner: "dp", "dps" (default), "dps-merged".
	Algorithm string `json:"algorithm,omitempty"`
	// TimeoutMS bounds the query's server-side execution in milliseconds.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Limit truncates the returned rows (0 = all). The limit is pushed
	// into plan execution — rows beyond it are never materialised;
	// Truncated reports whether rows were dropped.
	Limit int `json:"limit,omitempty"`
}

// QueryResponse is the JSON body answering POST /query.
type QueryResponse struct {
	Cols       []string         `json:"cols"`
	Rows       [][]graph.NodeID `json:"rows"`
	RowCount   int              `json:"row_count"`
	Truncated  bool             `json:"truncated,omitempty"`
	PlanCached bool             `json:"plan_cached"`
	ElapsedMS  float64          `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /query   — evaluate a pattern (JSON QueryRequest → QueryResponse)
//	POST /insert  — apply edge inserts (JSON InsertRequest → InsertResult)
//	POST /delete  — apply edge deletes (JSON DeleteRequest → DeleteResult)
//	GET  /stats   — metrics snapshot (JSON Stats)
//	GET  /healthz — liveness ("ok", 503 once the database is closed)
//
// Admission-control rejections map to 429 with a Retry-After header,
// per-request deadline expiry to 504, resource-budget kills to 422, a
// closed database to 503, and oversized request bodies to 413. Malformed
// requests and unanswerable patterns are 400; anything unclassified is a
// server fault and answers 500. With Config.ReadOnly set, every mutating
// route answers 403.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	for pat, h := range mutatingRoutes {
		mux.HandleFunc(pat, s.guardMutating(h))
	}
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// mutatingRoutes is the single registry of state-changing endpoints. Every
// entry is wired through guardMutating, so a writer route registered here
// cannot dodge the read-only guard; handlers registered anywhere else in
// Handler must be read-only.
var mutatingRoutes = map[string]func(*Server, http.ResponseWriter, *http.Request){
	"POST /insert": (*Server).handleInsert,
	"POST /delete": (*Server).handleDelete,
}

// MutatingRoutePatterns lists the registered mutating route patterns
// (method + path), sorted; tests iterate it to prove each one is guarded.
func MutatingRoutePatterns() []string {
	pats := make([]string, 0, len(mutatingRoutes))
	for p := range mutatingRoutes {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	return pats
}

// guardMutating rejects the request with 403 when the server is
// read-only, and dispatches to h otherwise.
func (s *Server) guardMutating(h func(*Server, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.ReadOnly {
			writeError(w, http.StatusForbidden, errors.New("server is read-only"))
			return
		}
		h(s, w, r)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Bound and strictly decode the body before any work happens: an
	// oversized or garbage payload must not balloon memory ahead of
	// admission control.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Pattern == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"pattern\""))
		return
	}
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, errors.New("negative \"limit\""))
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := s.QueryOpts(ctx, req.Pattern, req.Algorithm, QueryOptions{Limit: req.Limit})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := QueryResponse{
		Cols:       res.Cols,
		Rows:       res.Rows,
		RowCount:   len(res.Rows),
		Truncated:  res.Truncated,
		PlanCached: res.PlanCached,
		ElapsedMS:  float64(res.Elapsed.Microseconds()) / 1000,
	}
	if resp.Rows == nil {
		resp.Rows = [][]graph.NodeID{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.db.Closed() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// statusFor maps query errors to HTTP status codes. Only errors the client
// caused classify as 4xx: malformed/unanswerable queries (ErrBadQuery),
// overload (429, so well-behaved clients back off and retry), deadline and
// cancellation, and resource-budget kills (422). Everything unrecognised —
// storage I/O failures, executor invariants — is a server fault: 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, gdb.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, rjoin.ErrRowLimit), errors.Is(err, rjoin.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrBadQuery):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
