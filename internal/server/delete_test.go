package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
)

func TestDeleteEdgesShrinksResults(t *testing.T) {
	db, err := gdb.Build(insertTestGraph(), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	ctx := context.Background()

	if _, err := s.InsertEdges(ctx, [][2]graph.NodeID{{1, 7}, {2, 8}}); err != nil {
		t.Fatal(err)
	}
	res0, err := s.Query(ctx, "A->B", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.Rows) != 3 {
		t.Fatalf("seeded query returned %d rows, want 3", len(res0.Rows))
	}
	dr, err := s.DeleteEdges(ctx, [][2]graph.NodeID{{0, 6}, {1, 7}, {3, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Applied != 2 || dr.Noops != 1 {
		t.Fatalf("delete result %+v, want 2 applied + 1 noop", dr)
	}
	res1, err := s.Query(ctx, "A->B", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) != 1 {
		t.Fatalf("post-delete query returned %d rows, want 1", len(res1.Rows))
	}
	st := s.Stats()
	if st.EdgeDeletes != 2 || st.DeleteNoops != 1 {
		t.Fatalf("delete metrics not recorded: %+v vs %+v", st, dr)
	}
	if st.DeleteLabelEntries != int64(dr.RemovedLabelEntries+dr.AddedLabelEntries) {
		t.Fatalf("delete_label_entries = %d, want %d", st.DeleteLabelEntries,
			dr.RemovedLabelEntries+dr.AddedLabelEntries)
	}
}

func TestDeleteEdgesBadRequest(t *testing.T) {
	s := testServer(t, Config{})
	_, err := s.DeleteEdges(context.Background(), [][2]graph.NodeID{{0, 9999}})
	if err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if !isBadQuery(err) {
		t.Fatalf("out-of-range delete classified as %v, want ErrBadQuery", err)
	}
	if got := s.Stats().DeleteErrors; got != 1 {
		t.Fatalf("delete_errors = %d, want 1", got)
	}
}

// TestDeleteHTTP drives POST /delete end to end, including the error
// mappings.
func TestDeleteHTTP(t *testing.T) {
	db, err := gdb.Build(insertTestGraph(), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/delete", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := post(`{"edges": [[0, 6], [0, 6]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete returned %d: %s", resp.StatusCode, body)
	}
	var dr DeleteResult
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Applied != 1 || dr.Noops != 1 {
		t.Fatalf("delete result %+v, want 1 applied + 1 noop", dr)
	}

	if resp, body := post(`{"edges": [[0, 50]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range edge: status %d (%s), want 400", resp.StatusCode, body)
	}
	if resp, _ := post(`{"edges": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"edges": [[0, 6]], "bogus": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestReadOnlyRejectsAllMutatingRoutes: S2 — with ReadOnly set, every route
// in the mutating-route registry answers 403 before reaching its handler,
// and read routes keep working. Iterating MutatingRoutePatterns() means a
// writer endpoint added later is covered automatically.
func TestReadOnlyRejectsAllMutatingRoutes(t *testing.T) {
	pats := MutatingRoutePatterns()
	if len(pats) < 2 {
		t.Fatalf("mutating-route registry lists %d routes, want at least /insert and /delete: %v", len(pats), pats)
	}
	db, err := gdb.Build(insertTestGraph(), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{ReadOnly: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, pat := range pats {
		var method, path string
		if _, err := fmt.Sscanf(pat, "%s %s", &method, &path); err != nil {
			t.Fatalf("unparseable route pattern %q", pat)
		}
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewBufferString(`{"edges": [[0, 6]]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s: status %d (%s), want 403", pat, resp.StatusCode, buf.String())
		}
	}
	// The guard did not swallow reads.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		bytes.NewBufferString(`{"pattern": "A->B"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read-only /query: status %d, want 200", resp.StatusCode)
	}
	// And the graph really was never mutated.
	if got := s.Stats(); got.EdgeInserts != 0 || got.EdgeDeletes != 0 {
		t.Fatalf("read-only server recorded mutations: %+v", got)
	}
}

// TestPlanCachePurgeBefore: unit check of the horizon eviction — only
// entries keyed below minLive go.
func TestPlanCachePurgeBefore(t *testing.T) {
	c := newPlanCache(16)
	for epoch := uint64(0); epoch < 4; epoch++ {
		c.put(planKey{epoch: epoch, rest: "a"}, nil)
		c.put(planKey{epoch: epoch, rest: "b"}, nil)
	}
	c.purgeBefore(2)
	if n := c.len(); n != 4 {
		t.Fatalf("after purgeBefore(2): %d entries, want 4", n)
	}
	for epoch := uint64(0); epoch < 4; epoch++ {
		for _, rest := range []string{"a", "b"} {
			_, ok := c.get(planKey{epoch: epoch, rest: rest})
			if want := epoch >= 2; ok != want {
				t.Fatalf("entry {%d,%s} present=%v, want %v", epoch, rest, ok, want)
			}
		}
	}
	// Disabled cache: purge is a no-op, not a panic.
	newPlanCache(0).purgeBefore(5)
}

// TestPlanCachePurgedOnEpochRetire: S1 — a superseded epoch's plan entries
// are evicted the moment the epoch retires, survive exactly as long as a
// reader still pins that epoch, and the current epoch's entries stay.
func TestPlanCachePurgedOnEpochRetire(t *testing.T) {
	db, err := gdb.Build(insertTestGraph(), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	ctx := context.Background()

	if _, err := s.Query(ctx, "A->B", ""); err != nil {
		t.Fatal(err)
	}
	if n := s.plans.len(); n != 1 {
		t.Fatalf("after first query: %d cached plans, want 1", n)
	}

	// A pinned reader keeps the old epoch — and its plan — alive across a
	// publish.
	_, release := db.Pin()
	if _, err := s.InsertEdges(ctx, [][2]graph.NodeID{{1, 7}}); err != nil {
		t.Fatal(err)
	}
	if n := s.plans.len(); n != 1 {
		t.Fatalf("old plan evicted while its epoch is still pinned: %d entries", n)
	}
	// Dropping the pin retires the epoch; the retire callback purges its
	// plans synchronously on this goroutine.
	release()
	if n := s.plans.len(); n != 0 {
		t.Fatalf("after epoch retired: %d cached plans, want 0", n)
	}

	// The replacement epoch's plans persist across further queries.
	if _, err := s.Query(ctx, "A->B", ""); err != nil {
		t.Fatal(err)
	}
	r, err := s.Query(ctx, "A->B", "")
	if err != nil {
		t.Fatal(err)
	}
	if !r.PlanCached {
		t.Fatal("repeat query on the live epoch missed the plan cache")
	}
	if n := s.plans.len(); n != 1 {
		t.Fatalf("live epoch: %d cached plans, want 1", n)
	}
}

// TestConcurrentMutateAndQueryPrefixConsistency: S6 — the torn-index test
// with a mixed insert/delete stream: one writer alternates POST /insert and
// POST /delete while query workers hammer the same pattern; every response
// must equal the result on some prefix of the mutation sequence, and per
// worker the observed prefix index must never move backwards. Under -race
// this also exercises the epoch lock's memory ordering on the delete path.
func TestConcurrentMutateAndQueryPrefixConsistency(t *testing.T) {
	base := insertTestGraph()
	type op struct {
		del  bool
		u, v graph.NodeID
	}
	ops := []op{
		{false, 1, 7}, {false, 2, 8}, {true, 1, 7}, {false, 3, 9},
		{true, 0, 6}, {false, 1, 7}, {false, 4, 10}, {true, 2, 8},
	}

	// Precompute the expected result for every prefix with from-scratch
	// builds.
	p := pattern.MustParse("A->B")
	prefixes := make([]string, len(ops)+1)
	g := base
	for i := 0; i <= len(ops); i++ {
		if i > 0 {
			o := ops[i-1]
			if o.del {
				g = g.WithoutEdge(o.u, o.v)
			} else {
				g = g.WithEdge(o.u, o.v)
			}
		}
		db, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := exec.Query(db, p, exec.DPS)
		if err != nil {
			t.Fatal(err)
		}
		prefixes[i] = canonRows(tab.Rows)
		db.Close()
	}
	// With deletes in the stream the result is no longer monotone, so the
	// prefix-index check is sound only if ALL prefixes are pairwise
	// distinct, not just adjacent ones.
	for i := range prefixes {
		for j := i + 1; j < len(prefixes); j++ {
			if prefixes[i] == prefixes[j] {
				t.Fatalf("prefix %d result equals prefix %d; pick ops whose states are pairwise distinct", j, i)
			}
		}
	}

	db, err := gdb.Build(base, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{MaxInFlight: 16, QueryParallelism: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, workers+1)

	queryOnce := func() (string, error) {
		resp, err := http.Post(ts.URL+"/query", "application/json",
			bytes.NewBufferString(`{"pattern": "A->B"}`))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return "", fmt.Errorf("query status %d: %s", resp.StatusCode, buf.String())
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return "", err
		}
		return canonRows(qr.Rows), nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := queryOnce()
				if err != nil {
					errs <- err
					return
				}
				i := slices.Index(prefixes, got)
				if i < 0 {
					errs <- fmt.Errorf("response matches no mutation prefix: %s", got)
					return
				}
				if i < last {
					errs <- fmt.Errorf("prefix index went backwards: %d after %d", i, last)
					return
				}
				last = i
			}
		}()
	}

	// Writer: stream the mutations one request at a time.
	for _, o := range ops {
		path := "/insert"
		if o.del {
			path = "/delete"
		}
		body, _ := json.Marshal(map[string][][2]graph.NodeID{"edges": {{o.u, o.v}}})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBuffer(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			t.Fatalf("%s status %d: %s", path, resp.StatusCode, buf.String())
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the full sequence, the steady state must be the final prefix.
	got, err := queryOnce()
	if err != nil {
		t.Fatal(err)
	}
	if got != prefixes[len(ops)] {
		t.Fatalf("final result is not the full-sequence result:\n got %s\nwant %s", got, prefixes[len(ops)])
	}
}
