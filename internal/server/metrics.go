package server

import (
	"context"
	"errors"
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"fastmatch/internal/rjoin"
	"fastmatch/internal/storage"
)

// latencyBuckets is the number of power-of-two microsecond histogram
// buckets: bucket i counts latencies in [2^(i-1), 2^i) µs, which spans
// sub-microsecond to ~2^62 µs — far beyond any real query.
const latencyBuckets = 64

// metrics aggregates per-server counters with atomics so the query hot
// path never takes a lock.
type metrics struct {
	queries       atomic.Int64 // completed successfully
	errs          atomic.Int64 // failed for any reason
	rejected      atomic.Int64 // failed with ErrOverloaded
	deadline      atomic.Int64 // failed with context deadline/cancellation
	budgetKills   atomic.Int64 // failed with ErrRowLimit/ErrBudgetExceeded
	queued        atomic.Int64 // waited for an execution slot
	planHits      atomic.Int64
	planMisses    atomic.Int64
	planCoalesced atomic.Int64 // misses that waited on another's planning
	rows          atomic.Int64

	// Per-query resource-budget accounting (see rjoin.Budget).
	truncated   atomic.Int64 // queries whose result was cut at the limit
	imBytes     atomic.Int64 // cumulative intermediate bytes
	peakImBytes atomic.Int64 // high-water intermediate bytes of one query
	peakImRows  atomic.Int64 // high-water intermediate table rows

	// Edge-insert path (POST /insert, InsertEdges).
	edgeInserts        atomic.Int64 // edges applied (non-duplicates)
	insertDuplicates   atomic.Int64 // edges skipped as already present
	insertLabelEntries atomic.Int64 // 2-hop label entries added
	insertErrors       atomic.Int64 // failed insert requests

	// Edge-delete path (POST /delete, DeleteEdges).
	edgeDeletes        atomic.Int64 // edges removed (present before)
	deleteNoops        atomic.Int64 // absent-edge deletes skipped
	deleteLabelEntries atomic.Int64 // label entries removed + re-added
	deleteErrors       atomic.Int64 // failed delete requests

	// Intra-query operator parallelism (aggregated rjoin.RuntimeStats).
	operatorOps   atomic.Int64 // operator executions
	parallelOps   atomic.Int64 // operators that split across >1 worker
	operatorTasks atomic.Int64 // partition tasks executed
	centerHits    atomic.Int64 // per-query center cache hits
	centerMisses  atomic.Int64 // per-query center cache misses

	// Worst-case-optimal multiway join (leapfrog) observability.
	wcojQueries atomic.Int64 // queries whose plan opened with a WCOJ step
	wcojSeeks   atomic.Int64 // trie-iterator lists opened across WCOJ steps
	wcojNexts   atomic.Int64 // candidate values produced across WCOJ steps

	// Tiered fast-path execution (see optimizer.Classify/Prefilter). Each
	// successful query is attributed to exactly one tier; the latency sums
	// (µs) divide by the tier counters for per-tier means.
	tier1Queries   atomic.Int64 // answered index-only (tier 1)
	tier2Prunes    atomic.Int64 // proven empty by the signature prefilter
	tier3Queries   atomic.Int64 // ran the full operator pipeline
	tier1LatencyUS atomic.Int64
	tier2LatencyUS atomic.Int64
	tier3LatencyUS atomic.Int64

	latency [latencyBuckets]atomic.Int64
}

// recordRuntime folds one query's operator-runtime counters into the
// server-wide utilisation metrics.
func (m *metrics) recordRuntime(rs rjoin.RuntimeStats) {
	m.operatorOps.Add(rs.Ops)
	m.parallelOps.Add(rs.ParallelOps)
	m.operatorTasks.Add(rs.Tasks)
	m.centerHits.Add(rs.CenterCacheHits)
	m.centerMisses.Add(rs.CenterCacheMisses)
	m.wcojSeeks.Add(rs.Seeks)
	m.wcojNexts.Add(rs.IterNexts)
}

func (m *metrics) recordQuery(elapsed time.Duration, rowCount int, planCached bool) {
	m.queries.Add(1)
	m.rows.Add(int64(rowCount))
	us := elapsed.Microseconds()
	if us < 0 {
		us = 0
	}
	m.latency[bits.Len64(uint64(us))].Add(1)
}

// recordTier attributes one successful query to its execution tier.
func (m *metrics) recordTier(tier int, elapsed time.Duration) {
	us := elapsed.Microseconds()
	if us < 0 {
		us = 0
	}
	switch tier {
	case 1:
		m.tier1Queries.Add(1)
		m.tier1LatencyUS.Add(us)
	case 2:
		m.tier2Prunes.Add(1)
		m.tier2LatencyUS.Add(us)
	default:
		m.tier3Queries.Add(1)
		m.tier3LatencyUS.Add(us)
	}
}

func (m *metrics) recordError(err error) {
	m.errs.Add(1)
	switch {
	case errors.Is(err, ErrOverloaded):
		m.rejected.Add(1)
	case errors.Is(err, rjoin.ErrRowLimit), errors.Is(err, rjoin.ErrBudgetExceeded):
		m.budgetKills.Add(1)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		m.deadline.Add(1)
	}
}

// recordBudget folds one query's budget accounting (successful or killed)
// into the server-wide counters.
func (m *metrics) recordBudget(b *rjoin.Budget) {
	if b == nil {
		return
	}
	if b.Truncated() {
		m.truncated.Add(1)
	}
	m.imBytes.Add(b.Bytes())
	atomicMax(&m.peakImBytes, b.Bytes())
	atomicMax(&m.peakImRows, b.PeakRows())
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// quantile returns the approximate q-quantile (0 < q < 1) of recorded
// latencies in milliseconds: the geometric midpoint of the histogram
// bucket holding the q-th sample. NaN with no samples.
func (m *metrics) quantile(q float64) float64 {
	var total int64
	var counts [latencyBuckets]int64
	for i := range m.latency {
		counts[i] = m.latency[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return math.NaN()
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			// Bucket i covers [2^(i-1), 2^i) µs; use the geometric mid.
			if i == 0 {
				return 0.001 / 2
			}
			lo := math.Exp2(float64(i - 1))
			return lo * math.Sqrt2 / 1000
		}
	}
	return math.NaN()
}

// Stats is a point-in-time snapshot of a Server's counters.
type Stats struct {
	// Queries is the number of successfully completed queries.
	Queries int64 `json:"queries"`
	// Errors counts failed queries (including rejections and timeouts).
	Errors int64 `json:"errors"`
	// Rejections counts admission-control rejections (ErrOverloaded).
	Rejections int64 `json:"rejections"`
	// Deadline counts queries abandoned on context deadline/cancellation.
	Deadline int64 `json:"deadline"`
	// BudgetKills counts queries killed by their resource budget (typed
	// rjoin.ErrRowLimit / rjoin.ErrBudgetExceeded → HTTP 422).
	BudgetKills int64 `json:"budget_kills"`
	// TruncatedQueries counts results cut at a pushed-down row limit.
	TruncatedQueries int64 `json:"truncated_queries"`
	// IntermediateBytes is the cumulative intermediate-result allocation
	// across queries; PeakIntermediateBytes/Rows are the largest a single
	// query charged (high-water marks, including killed queries).
	IntermediateBytes     int64 `json:"intermediate_bytes"`
	PeakIntermediateBytes int64 `json:"peak_intermediate_bytes"`
	PeakIntermediateRows  int64 `json:"peak_intermediate_rows"`
	// Queued counts queries that had to wait for an execution slot.
	Queued int64 `json:"queued"`
	// InFlight is the number of queries executing right now.
	InFlight int `json:"in_flight"`
	// MaxInFlight is the configured concurrency limit.
	MaxInFlight int `json:"max_in_flight"`
	// PlanCacheHits/Misses/Size describe the plan cache; PlanCoalesced
	// counts misses that waited on another request's in-flight planning
	// instead of running DP/DPS themselves (single-flight).
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCoalesced   int64 `json:"plan_coalesced"`
	PlanCacheSize   int   `json:"plan_cache_size"`
	// RowsReturned is the total result rows across completed queries.
	RowsReturned int64 `json:"rows_returned"`
	// EdgeInserts counts edges applied through the incremental maintenance
	// path; InsertDuplicates the no-op re-inserts, InsertLabelEntries the
	// 2-hop label entries added, InsertErrors the failed insert requests.
	EdgeInserts        int64 `json:"edge_inserts"`
	InsertDuplicates   int64 `json:"insert_duplicates"`
	InsertLabelEntries int64 `json:"insert_label_entries"`
	InsertErrors       int64 `json:"insert_errors"`
	// EdgeDeletes counts edges removed through the incremental repair
	// path; DeleteNoops the absent-edge deletes skipped, DeleteLabelEntries
	// the 2-hop label entries touched by delete repair (stale removals plus
	// re-adds), DeleteErrors the failed delete requests.
	EdgeDeletes        int64 `json:"edge_deletes"`
	DeleteNoops        int64 `json:"delete_noops"`
	DeleteLabelEntries int64 `json:"delete_label_entries"`
	DeleteErrors       int64 `json:"delete_errors"`
	// CurrentEpoch is the published snapshot epoch (increments once per
	// applied insert batch); PinnedEpochs counts live snapshot versions
	// (1 when idle: the current epoch's base pin); OldestPinnedAgeSeconds
	// is the age of the oldest still-pinned snapshot (long-running readers
	// delay page reclamation); SnapshotsRetired counts superseded
	// snapshots whose pages were recycled.
	CurrentEpoch           uint64  `json:"current_epoch"`
	PinnedEpochs           int     `json:"pinned_epochs"`
	OldestPinnedAgeSeconds float64 `json:"oldest_pinned_age_seconds"`
	SnapshotsRetired       uint64  `json:"snapshots_retired"`
	// QueryParallelism is the configured intra-query worker degree
	// (0 = GOMAXPROCS).
	QueryParallelism int `json:"query_parallelism"`
	// OperatorOps counts R-join/R-semijoin operator executions;
	// OperatorParallelOps those that split across more than one worker;
	// OperatorTasks the partition tasks executed. OperatorTasks/OperatorOps
	// is the achieved fan-out — compare against QueryParallelism for
	// worker-pool utilisation.
	OperatorOps         int64 `json:"operator_ops"`
	OperatorParallelOps int64 `json:"operator_parallel_ops"`
	OperatorTasks       int64 `json:"operator_tasks"`
	// WorkerUtilization is OperatorTasks/(OperatorOps × resolved degree):
	// 1.0 means every operator filled every worker slot.
	WorkerUtilization float64 `json:"worker_utilization"`
	// CenterCacheHits/Misses aggregate the per-query center caches.
	CenterCacheHits   int64 `json:"center_cache_hits"`
	CenterCacheMisses int64 `json:"center_cache_misses"`
	// WCOJQueries counts queries whose chosen plan opened with a
	// worst-case-optimal multiway join step (the hybrid planner picked a
	// leapfrog core over a binary pipeline, or the client forced algo=wcoj);
	// WCOJSeeks/WCOJIterNexts aggregate the leapfrog trie-iterator work —
	// sorted lists opened for intersection and candidate values produced.
	WCOJQueries   int64 `json:"wcoj_queries"`
	WCOJSeeks     int64 `json:"wcoj_seeks"`
	WCOJIterNexts int64 `json:"wcoj_iter_nexts"`
	// FastpathTier1Queries counts successful queries answered on the tier-1
	// index-only fast path; FastpathTier2Prunes patterns the fan-signature
	// prefilter proved empty (tier 2); Tier3Queries the full operator
	// pipeline. The latency fields are per-tier cumulative server-side
	// latency in milliseconds — divide by the matching counter for a mean.
	FastpathTier1Queries   int64   `json:"fastpath_tier1_queries"`
	FastpathTier2Prunes    int64   `json:"fastpath_tier2_prunes"`
	Tier3Queries           int64   `json:"tier3_queries"`
	FastpathTier1LatencyMs float64 `json:"fastpath_tier1_latency_ms"`
	FastpathTier2LatencyMs float64 `json:"fastpath_tier2_latency_ms"`
	Tier3LatencyMs         float64 `json:"tier3_latency_ms"`
	// P50ms and P99ms are approximate latency quantiles in milliseconds
	// (histogram-bucketed; 0 when no queries completed).
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
	// IO is the database buffer pool's accumulated counters.
	IO storage.IOStats `json:"io"`
	// ReachBackend is the reachability-index backend the database's graph
	// codes were computed by ("twohop", "pll", ...).
	ReachBackend string `json:"reach_backend"`
	// UptimeSeconds is time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats returns a consistent-enough snapshot of the server's counters (each
// counter is read atomically; the set is not cut at one instant).
func (s *Server) Stats() Stats {
	st := Stats{
		Queries:                s.met.queries.Load(),
		Errors:                 s.met.errs.Load(),
		Rejections:             s.met.rejected.Load(),
		Deadline:               s.met.deadline.Load(),
		BudgetKills:            s.met.budgetKills.Load(),
		TruncatedQueries:       s.met.truncated.Load(),
		IntermediateBytes:      s.met.imBytes.Load(),
		PeakIntermediateBytes:  s.met.peakImBytes.Load(),
		PeakIntermediateRows:   s.met.peakImRows.Load(),
		Queued:                 s.met.queued.Load(),
		InFlight:               s.InFlight(),
		MaxInFlight:            s.cfg.MaxInFlight,
		PlanCacheHits:          s.met.planHits.Load(),
		PlanCacheMisses:        s.met.planMisses.Load(),
		PlanCoalesced:          s.met.planCoalesced.Load(),
		PlanCacheSize:          s.plans.len(),
		RowsReturned:           s.met.rows.Load(),
		EdgeInserts:            s.met.edgeInserts.Load(),
		InsertDuplicates:       s.met.insertDuplicates.Load(),
		InsertLabelEntries:     s.met.insertLabelEntries.Load(),
		InsertErrors:           s.met.insertErrors.Load(),
		EdgeDeletes:            s.met.edgeDeletes.Load(),
		DeleteNoops:            s.met.deleteNoops.Load(),
		DeleteLabelEntries:     s.met.deleteLabelEntries.Load(),
		DeleteErrors:           s.met.deleteErrors.Load(),
		QueryParallelism:       s.cfg.QueryParallelism,
		OperatorOps:            s.met.operatorOps.Load(),
		OperatorParallelOps:    s.met.parallelOps.Load(),
		OperatorTasks:          s.met.operatorTasks.Load(),
		CenterCacheHits:        s.met.centerHits.Load(),
		CenterCacheMisses:      s.met.centerMisses.Load(),
		WCOJQueries:            s.met.wcojQueries.Load(),
		WCOJSeeks:              s.met.wcojSeeks.Load(),
		WCOJIterNexts:          s.met.wcojNexts.Load(),
		FastpathTier1Queries:   s.met.tier1Queries.Load(),
		FastpathTier2Prunes:    s.met.tier2Prunes.Load(),
		Tier3Queries:           s.met.tier3Queries.Load(),
		FastpathTier1LatencyMs: float64(s.met.tier1LatencyUS.Load()) / 1000,
		FastpathTier2LatencyMs: float64(s.met.tier2LatencyUS.Load()) / 1000,
		Tier3LatencyMs:         float64(s.met.tier3LatencyUS.Load()) / 1000,
		UptimeSeconds:          time.Since(s.start).Seconds(),
	}
	if st.OperatorOps > 0 {
		degree := s.cfg.QueryParallelism
		if degree <= 0 {
			degree = runtime.GOMAXPROCS(0)
		}
		st.WorkerUtilization = float64(st.OperatorTasks) / (float64(st.OperatorOps) * float64(degree))
	}
	if !s.db.Closed() {
		st.ReachBackend = s.db.ReachBackend()
		st.IO = s.db.IOStats()
		es := s.db.EpochStats()
		st.CurrentEpoch = es.Current
		st.PinnedEpochs = es.Pinned
		st.OldestPinnedAgeSeconds = es.OldestAge.Seconds()
		st.SnapshotsRetired = es.Retired
	}
	if p := s.met.quantile(0.50); !math.IsNaN(p) {
		st.P50ms = p
	}
	if p := s.met.quantile(0.99); !math.IsNaN(p) {
		st.P99ms = p
	}
	return st
}
