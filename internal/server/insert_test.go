package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"sort"
	"sync"
	"testing"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/pattern"
)

// insertTestGraph is a tiny two-layer graph with deliberately missing
// A→B connections, so each inserted edge grows the "A->B" result set.
func insertTestGraph() *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode("A")
	}
	for i := 0; i < 6; i++ {
		b.AddNode("B")
	}
	b.AddEdge(0, 6) // one seed match so the pattern binds non-trivially
	return b.Build()
}

// canonRows sorts a result's rows into a comparable form.
func canonRows(rows [][]graph.NodeID) string {
	strs := make([]string, len(rows))
	for i, r := range rows {
		strs[i] = fmt.Sprint(r)
	}
	sort.Strings(strs)
	return fmt.Sprint(strs)
}

func TestInsertEdgesGrowsResults(t *testing.T) {
	db, err := gdb.Build(insertTestGraph(), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	ctx := context.Background()

	res0, err := s.Query(ctx, "A->B", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.Rows) != 1 {
		t.Fatalf("seed query returned %d rows, want 1", len(res0.Rows))
	}
	ir, err := s.InsertEdges(ctx, [][2]graph.NodeID{{1, 7}, {2, 8}, {0, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Applied != 2 || ir.Duplicates != 1 {
		t.Fatalf("insert result %+v, want 2 applied + 1 duplicate", ir)
	}
	res1, err := s.Query(ctx, "A->B", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) != 3 {
		t.Fatalf("post-insert query returned %d rows, want 3", len(res1.Rows))
	}
	if got := s.Stats(); got.EdgeInserts != 2 || got.InsertDuplicates != 1 || got.InsertLabelEntries != int64(ir.LabelEntries) {
		t.Fatalf("insert metrics not recorded: %+v vs %+v", got, ir)
	}
}

func TestInsertEdgesBadRequest(t *testing.T) {
	s := testServer(t, Config{})
	if _, err := s.InsertEdges(context.Background(), [][2]graph.NodeID{{0, 9999}}); err == nil {
		t.Fatal("out-of-range insert accepted")
	} else if !isBadQuery(err) {
		t.Fatalf("out-of-range insert classified as %v, want ErrBadQuery", err)
	}
}

func isBadQuery(err error) bool {
	return err != nil && statusFor(err) == http.StatusBadRequest
}

// TestInsertHTTP drives POST /insert end to end, including the error
// mappings.
func TestInsertHTTP(t *testing.T) {
	db, err := gdb.Build(insertTestGraph(), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := post(`{"edges": [[3, 9], [3, 9]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert returned %d: %s", resp.StatusCode, body)
	}
	var ir InsertResult
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Applied != 1 || ir.Duplicates != 1 {
		t.Fatalf("insert result %+v, want 1 applied + 1 duplicate", ir)
	}

	if resp, body := post(`{"edges": [[0, 50]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range edge: status %d (%s), want 400", resp.StatusCode, body)
	}
	if resp, _ := post(`{"edges": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentInsertAndQueryPrefixConsistency is the torn-index test:
// with one writer streaming inserts and several query workers hammering
// the same pattern, every response must equal the result on some prefix of
// the insert sequence — and, per worker, the observed prefix index must
// never move backwards. Run under -race this also exercises the epoch
// lock's memory ordering.
func TestConcurrentInsertAndQueryPrefixConsistency(t *testing.T) {
	base := insertTestGraph()
	inserts := [][2]graph.NodeID{
		{1, 7}, {2, 8}, {3, 9}, {4, 10}, {5, 11}, {1, 8}, {2, 9}, {3, 10},
	}

	// Precompute the expected result for every prefix with from-scratch
	// builds.
	p := pattern.MustParse("A->B")
	prefixes := make([]string, len(inserts)+1)
	g := base
	for i := 0; i <= len(inserts); i++ {
		if i > 0 {
			g = g.WithEdge(inserts[i-1][0], inserts[i-1][1])
		}
		db, err := gdb.Build(g, gdb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := exec.Query(db, p, exec.DPS)
		if err != nil {
			t.Fatal(err)
		}
		prefixes[i] = canonRows(tab.Rows)
		db.Close()
	}
	// The test's observability hinges on prefixes being distinguishable.
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i] == prefixes[i-1] {
			t.Fatalf("prefix %d result equals prefix %d; pick inserts that all change the result", i, i-1)
		}
	}

	db, err := gdb.Build(base, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{MaxInFlight: 16, QueryParallelism: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, workers+1)

	queryOnce := func() (string, error) {
		resp, err := http.Post(ts.URL+"/query", "application/json",
			bytes.NewBufferString(`{"pattern": "A->B"}`))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return "", fmt.Errorf("query status %d: %s", resp.StatusCode, buf.String())
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return "", err
		}
		return canonRows(qr.Rows), nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := queryOnce()
				if err != nil {
					errs <- err
					return
				}
				i := slices.Index(prefixes, got)
				if i < 0 {
					errs <- fmt.Errorf("response matches no insert prefix: %s", got)
					return
				}
				if i < last {
					errs <- fmt.Errorf("prefix index went backwards: %d after %d", i, last)
					return
				}
				last = i
			}
		}()
	}

	// Writer: stream the inserts one request at a time.
	for _, e := range inserts {
		body, _ := json.Marshal(InsertRequest{Edges: [][2]graph.NodeID{e}})
		resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewBuffer(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			t.Fatalf("insert status %d: %s", resp.StatusCode, buf.String())
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the full sequence, the steady state must be the final prefix.
	got, err := queryOnce()
	if err != nil {
		t.Fatal(err)
	}
	if got != prefixes[len(inserts)] {
		t.Fatalf("final result is not the full-sequence result:\n got %s\nwant %s", got, prefixes[len(inserts)])
	}
}
