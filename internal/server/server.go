// Package server is the concurrent query-serving subsystem: it wraps a
// read-only gdb.DB with admission control (a bounded worker-pool semaphore
// with queue timeout), a plan cache keyed by canonical pattern form, per-
// server metrics, and an HTTP front-end. The paper's engine is single-
// threaded; the storage and database layers were made safe for parallel
// readers (sharded buffer-pool and code-cache locks, per-query scratch
// heaps), so N queries execute simultaneously with no global engine mutex —
// this package adds the serving policy on top.
package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// ErrOverloaded is the sentinel for admission-control rejection; match with
// errors.Is. The concrete error is *OverloadError.
var ErrOverloaded = errors.New("server: overloaded")

// OverloadError reports a query rejected because the server was at its
// in-flight limit and no slot freed within the queue timeout. It matches
// ErrOverloaded under errors.Is.
type OverloadError struct {
	// MaxInFlight is the configured concurrency limit.
	MaxInFlight int
	// Waited is how long the query queued before giving up.
	Waited time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded (%d queries in flight, queued %v)", e.MaxInFlight, e.Waited)
}

// Is makes errors.Is(err, ErrOverloaded) true for *OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// MaxInFlight caps concurrently executing queries (default 8).
	MaxInFlight int
	// QueueTimeout is how long an admitted-over-capacity query may wait
	// for a slot before it is rejected with ErrOverloaded (default 100ms).
	QueueTimeout time.Duration
	// PlanCacheSize bounds the LRU plan cache in entries (default 256;
	// negative disables caching).
	PlanCacheSize int
	// DefaultAlgorithm is the planner used by Query when the request does
	// not choose one (default exec.DPS).
	DefaultAlgorithm exec.Algorithm
	// DefaultTimeout, when positive, bounds every query whose context has
	// no explicit deadline.
	DefaultTimeout time.Duration
	// QueryParallelism is the intra-query operator worker degree: each
	// R-join/R-semijoin partitions its centers/rows across up to this many
	// goroutines (<= 0 selects GOMAXPROCS; 1 is the serial path). Total
	// operator goroutines are bounded by MaxInFlight × QueryParallelism.
	QueryParallelism int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	return c
}

// Result is one query's answer: Cols holds the pattern's node labels in
// result-column order and Rows the matching data-node tuples.
type Result struct {
	Cols []string
	Rows [][]graph.NodeID
	// PlanCached reports whether planning was skipped via the plan cache.
	PlanCached bool
	// Elapsed is the server-side latency (queueing + planning + execution).
	Elapsed time.Duration
}

// Server executes pattern queries against one database with bounded
// concurrency. All methods are safe for concurrent use.
type Server struct {
	db    *gdb.DB
	cfg   Config
	sem   chan struct{}
	plans *planCache
	met   metrics
	start time.Time
}

// New wraps db in a query server. The db must not be written to while the
// server is running (databases are read-only after Build).
func New(db *gdb.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		db:    db,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		plans: newPlanCache(cfg.PlanCacheSize),
		start: time.Now(),
	}
}

// DB exposes the underlying database (read-only).
func (s *Server) DB() *gdb.DB { return s.db }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Query parses and evaluates a pattern. algo is a planner name ("dp",
// "dps", "dps-merged"); empty selects the configured default.
func (s *Server) Query(ctx context.Context, patternText, algo string) (*Result, error) {
	p, err := pattern.Parse(patternText)
	if err != nil {
		return nil, err
	}
	a := s.cfg.DefaultAlgorithm
	if algo != "" {
		if a, err = exec.ParseAlgorithm(algo); err != nil {
			return nil, err
		}
	}
	return s.QueryPattern(ctx, p, a)
}

// QueryPattern evaluates a parsed pattern under admission control: the
// query runs once an execution slot is free, honours ctx's deadline and
// cancellation mid-join, and is rejected with ErrOverloaded when the
// server stays at MaxInFlight past the queue timeout.
func (s *Server) QueryPattern(ctx context.Context, p *pattern.Pattern, algo exec.Algorithm) (*Result, error) {
	if s.db.Closed() {
		return nil, gdb.ErrClosed
	}
	start := time.Now()
	if s.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	if err := s.acquire(ctx); err != nil {
		s.met.recordError(err)
		return nil, err
	}
	defer func() { <-s.sem }()

	plan, cached, err := s.plan(p, algo)
	if err != nil {
		s.met.recordError(err)
		return nil, err
	}
	// One operator runtime per query: the worker-pool degree plus the
	// per-query center cache, whose counters feed the server metrics.
	rt := rjoin.NewRuntime(s.cfg.QueryParallelism)
	t, err := exec.RunContextConfig(ctx, s.db, plan, exec.RunConfig{Runtime: rt})
	s.met.recordRuntime(rt.Stats())
	if err != nil {
		s.met.recordError(err)
		return nil, err
	}
	elapsed := time.Since(start)
	s.met.recordQuery(elapsed, len(t.Rows), cached)
	// Column labels come from the plan's own pattern: a cache hit may have
	// been planned for an equivalent pattern whose nodes were declared in
	// a different order.
	return &Result{
		Cols:       append([]string(nil), plan.Binding.Pattern.Nodes...),
		Rows:       t.Rows,
		PlanCached: cached,
		Elapsed:    elapsed,
	}, nil
}

// acquire claims an execution slot, queueing up to the queue timeout.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	// At capacity: queue with a bound so overload sheds instead of piling
	// waiters ("fail fast and shallow" admission control).
	s.met.queued.Add(1)
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return &OverloadError{MaxInFlight: s.cfg.MaxInFlight, Waited: s.cfg.QueueTimeout}
	}
}

// plan returns the execution plan for (p, algo), consulting the LRU plan
// cache keyed by the pattern's canonical form so repeated patterns skip
// DP/DPS planning entirely.
func (s *Server) plan(p *pattern.Pattern, algo exec.Algorithm) (*optimizer.Plan, bool, error) {
	key := algo.String() + "|" + p.Canonical()
	if e, ok := s.plans.get(key); ok {
		s.met.planHits.Add(1)
		return e, true, nil
	}
	s.met.planMisses.Add(1)
	built, err := exec.BuildPlan(s.db, p, algo)
	if err != nil {
		return nil, false, err
	}
	s.plans.put(key, built)
	return built, false, nil
}

// InFlight reports the number of queries currently executing.
func (s *Server) InFlight() int { return len(s.sem) }
