// Package server is the concurrent query-serving subsystem: it wraps a
// gdb.DB with admission control (a bounded worker-pool semaphore with
// queue timeout), a plan cache keyed by snapshot epoch and canonical
// pattern form, per-server metrics, and an HTTP front-end. The paper's
// engine is single-threaded; the storage and database layers were made
// safe for parallel readers (sharded buffer-pool and code-cache locks,
// per-query scratch heaps), so N queries execute simultaneously with no
// global engine mutex — this package adds the serving policy on top.
//
// Reads and writes never block each other: each query pins one immutable
// snapshot epoch (gdb.DB.Pin) for its whole plan+execute lifetime, and
// edge inserts (POST /insert, InsertEdges) build a private copy-on-write
// snapshot that is published as the next epoch in one atomic step per
// batch. A query therefore answers on exactly one epoch — either before a
// concurrent batch or after it, never a torn middle — and an insert never
// waits for in-flight queries.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
	"fastmatch/internal/optimizer"
	"fastmatch/internal/pattern"
	"fastmatch/internal/rjoin"
)

// ErrOverloaded is the sentinel for admission-control rejection; match with
// errors.Is. The concrete error is *OverloadError.
var ErrOverloaded = errors.New("server: overloaded")

// OverloadError reports a query rejected because the server was at its
// in-flight limit and no slot freed within the queue timeout. It matches
// ErrOverloaded under errors.Is.
type OverloadError struct {
	// MaxInFlight is the configured concurrency limit.
	MaxInFlight int
	// Waited is how long the query queued before giving up.
	Waited time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded (%d queries in flight, queued %v)", e.MaxInFlight, e.Waited)
}

// Is makes errors.Is(err, ErrOverloaded) true for *OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ErrBadQuery marks client faults — pattern parse, algorithm, bind, and
// plan errors. The HTTP layer maps it to 400; everything not explicitly
// classified (storage I/O, executor invariants) is a server fault and maps
// to 500. Match with errors.Is.
var ErrBadQuery = errors.New("server: invalid query")

// badQuery wraps a parse/bind/plan error so it classifies as a client
// fault while keeping the original message.
func badQuery(err error) error {
	return fmt.Errorf("%w: %v", ErrBadQuery, err)
}

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// MaxInFlight caps concurrently executing queries (default 8).
	MaxInFlight int
	// QueueTimeout is how long an admitted-over-capacity query may wait
	// for a slot before it is rejected with ErrOverloaded (default 100ms).
	QueueTimeout time.Duration
	// PlanCacheSize bounds the LRU plan cache in entries (default 256;
	// negative disables caching).
	PlanCacheSize int
	// DefaultAlgorithm is the planner used by Query when the request does
	// not choose one (default exec.DPS).
	DefaultAlgorithm exec.Algorithm
	// DefaultTimeout, when positive, bounds every query whose context has
	// no explicit deadline.
	DefaultTimeout time.Duration
	// QueryParallelism is the intra-query operator worker degree: each
	// R-join/R-semijoin partitions its centers/rows across up to this many
	// goroutines (<= 0 selects GOMAXPROCS; 1 is the serial path). Total
	// operator goroutines are bounded by MaxInFlight × QueryParallelism.
	QueryParallelism int
	// MaxTableRows, when > 0, caps any intermediate temporal table's rows
	// per query; exceeding it fails the query with rjoin.ErrRowLimit
	// (HTTP 422) and cancels its sibling partitions.
	MaxTableRows int
	// MaxIntermediateBytes, when > 0, caps the cumulative bytes of
	// intermediate rows one query may allocate; exceeding it fails the
	// query with rjoin.ErrBudgetExceeded (HTTP 422).
	MaxIntermediateBytes int64
	// MaxRequestBytes bounds the /query request body (default 1 MB).
	MaxRequestBytes int64
	// ReadOnly rejects every mutating HTTP endpoint (POST /insert,
	// POST /delete, and any writer route added later) with 403. It guards
	// the HTTP surface only; the in-process InsertEdges/DeleteEdges
	// methods stay available to the embedding program.
	ReadOnly bool
	// NoFastPath disables tiered execution: every query is planned without
	// the fan-signature prefilter or tier-1 classification and runs the
	// full operator pipeline. An escape hatch for debugging and for
	// measuring the fast path's benefit (the fgmbench fastpath experiment
	// uses the library-level equivalent).
	NoFastPath bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	return c
}

// Result is one query's answer: Cols holds the pattern's node labels in
// result-column order and Rows the matching data-node tuples.
type Result struct {
	Cols []string
	Rows [][]graph.NodeID
	// PlanCached reports whether planning was skipped via the plan cache
	// (or coalesced onto another request's in-flight planning).
	PlanCached bool
	// Truncated reports that Rows was cut at the request's row limit; the
	// rows beyond it were never materialised.
	Truncated bool
	// IntermediateBytes is the intermediate-result allocation the query
	// charged against its budget; PeakRows the largest temporal table it
	// held.
	IntermediateBytes int64
	PeakRows          int64
	// Elapsed is the server-side latency (queueing + planning + execution).
	Elapsed time.Duration
}

// QueryOptions carries per-request execution options.
type QueryOptions struct {
	// Limit, when > 0, caps the result rows. The limit is pushed into plan
	// execution: the final operator stops early and the full result table
	// is never materialised; Result.Truncated reports whether rows were
	// dropped.
	Limit int
}

// Server executes pattern queries against one database with bounded
// concurrency. All methods are safe for concurrent use.
type Server struct {
	db    *gdb.DB
	cfg   Config
	sem   chan struct{}
	plans *planCache
	met   metrics
	start time.Time

	// flight coalesces concurrent plan-cache misses on one canonical key:
	// one goroutine plans, the rest wait for its result (single-flight).
	flightMu sync.Mutex
	flight   map[planKey]*planCall
	// planBuildHook, when non-nil, runs on the planning goroutine after it
	// claims the flight slot and before it builds — a test seam for
	// forcing misses to overlap.
	planBuildHook func()
}

// planCall is one in-flight planning computation; done closes once plan
// and err are set.
type planCall struct {
	done chan struct{}
	plan *optimizer.Plan
	err  error
}

// New wraps db in a query server. Writes must go through the server's own
// InsertEdges (or the database's ApplyEdgeInserts), never around it — both
// publish snapshot epochs through the database's single-writer path that
// keeps in-flight queries consistent.
func New(db *gdb.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:     db,
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		plans:  newPlanCache(cfg.PlanCacheSize),
		flight: make(map[planKey]*planCall),
		start:  time.Now(),
	}
	// Epoch retirements evict the retired epochs' plans eagerly; without
	// this they sit in the LRU until churn pushes them off the tail,
	// displacing live-epoch plans in the meantime.
	db.OnEpochRetire(s.plans.purgeBefore)
	return s
}

// DB exposes the underlying database (read-only).
func (s *Server) DB() *gdb.DB { return s.db }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Query parses and evaluates a pattern. algo is a planner name ("dp",
// "dps", "dps-merged"); empty selects the configured default.
func (s *Server) Query(ctx context.Context, patternText, algo string) (*Result, error) {
	return s.QueryOpts(ctx, patternText, algo, QueryOptions{})
}

// QueryOpts is Query with per-request options (e.g. a pushed-down row
// limit).
func (s *Server) QueryOpts(ctx context.Context, patternText, algo string, opts QueryOptions) (*Result, error) {
	p, err := pattern.Parse(patternText)
	if err != nil {
		return nil, badQuery(err)
	}
	a := s.cfg.DefaultAlgorithm
	if algo != "" {
		if a, err = exec.ParseAlgorithm(algo); err != nil {
			return nil, badQuery(err)
		}
	}
	return s.QueryPatternOpts(ctx, p, a, opts)
}

// QueryPattern evaluates a parsed pattern under admission control: the
// query runs once an execution slot is free, honours ctx's deadline and
// cancellation mid-join, and is rejected with ErrOverloaded when the
// server stays at MaxInFlight past the queue timeout.
func (s *Server) QueryPattern(ctx context.Context, p *pattern.Pattern, algo exec.Algorithm) (*Result, error) {
	return s.QueryPatternOpts(ctx, p, algo, QueryOptions{})
}

// QueryPatternOpts is QueryPattern with per-request options. The query
// runs under a resource budget combining the request's row limit with the
// server's intermediate-table caps; budget kills surface as the typed
// rjoin.ErrRowLimit / rjoin.ErrBudgetExceeded.
func (s *Server) QueryPatternOpts(ctx context.Context, p *pattern.Pattern, algo exec.Algorithm, opts QueryOptions) (*Result, error) {
	if s.db.Closed() {
		return nil, gdb.ErrClosed
	}
	start := time.Now()
	if s.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	if err := s.acquire(ctx); err != nil {
		s.met.recordError(err)
		return nil, err
	}
	defer func() { <-s.sem }()

	// Pin one snapshot epoch for the whole query: planning statistics and
	// execution reads come from the same immutable index version, however
	// many insert batches publish meanwhile.
	snap, release := s.db.Pin()
	defer release()

	plan, cached, err := s.plan(ctx, snap, p, algo)
	if err != nil {
		s.met.recordError(err)
		return nil, err
	}
	// One operator runtime per query: the worker-pool degree plus the
	// per-query center cache, whose counters feed the server metrics; the
	// budget governs what the query may materialise. Fast-path plans
	// (tier 1 and 2) get the lightweight serial runtime — their answers
	// come straight from the index, so a worker pool would only add setup
	// cost.
	tier := plan.Tier()
	var rt *rjoin.Runtime
	if tier != 3 {
		rt = rjoin.NewFastRuntime()
	} else {
		rt = rjoin.NewRuntime(s.cfg.QueryParallelism)
	}
	bdg := &rjoin.Budget{
		ResultRows:   opts.Limit,
		MaxTableRows: s.cfg.MaxTableRows,
		MaxBytes:     s.cfg.MaxIntermediateBytes,
	}
	if len(plan.Steps) > 0 && plan.Steps[0].Kind == optimizer.StepWCOJ {
		s.met.wcojQueries.Add(1)
	}
	t, err := exec.RunSnapConfig(ctx, snap, plan, exec.RunConfig{Runtime: rt, Budget: bdg})
	s.met.recordRuntime(rt.Stats())
	s.met.recordBudget(bdg)
	if err != nil {
		s.met.recordError(err)
		return nil, err
	}
	elapsed := time.Since(start)
	s.met.recordQuery(elapsed, len(t.Rows), cached)
	s.met.recordTier(tier, elapsed)
	// Column labels come from the plan's own pattern: a cache hit may have
	// been planned for an equivalent pattern whose nodes were declared in
	// a different order.
	return &Result{
		Cols:              append([]string(nil), plan.Binding.Pattern.Nodes...),
		Rows:              t.Rows,
		PlanCached:        cached,
		Truncated:         bdg.Truncated(),
		IntermediateBytes: bdg.Bytes(),
		PeakRows:          bdg.PeakRows(),
		Elapsed:           elapsed,
	}, nil
}

// acquire claims an execution slot, queueing up to the queue timeout.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	// At capacity: queue with a bound so overload sheds instead of piling
	// waiters ("fail fast and shallow" admission control).
	s.met.queued.Add(1)
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return &OverloadError{MaxInFlight: s.cfg.MaxInFlight, Waited: s.cfg.QueueTimeout}
	}
}

// plan returns the execution plan for (p, algo) against the pinned
// snapshot, consulting the LRU plan cache keyed by (epoch, algorithm,
// canonical pattern) so repeated patterns skip DP/DPS planning entirely.
// The epoch in the key replaces the old clear-on-insert policy: plans
// costed against a superseded snapshot simply stop matching and age out
// of the LRU, while the current epoch's entries survive insert batches
// that used to wipe the whole cache. Concurrent misses on the same key
// coalesce: exactly one goroutine runs the exponential DP/DPS search and
// the others share its result (or its error) instead of racing N
// identical planners.
func (s *Server) plan(ctx context.Context, snap *gdb.Snap, p *pattern.Pattern, algo exec.Algorithm) (*optimizer.Plan, bool, error) {
	key := planKey{epoch: snap.Epoch(), rest: algo.String() + "|" + p.Canonical()}
	if e, ok := s.plans.get(key); ok {
		s.met.planHits.Add(1)
		return e, true, nil
	}
	s.flightMu.Lock()
	if c, ok := s.flight[key]; ok {
		s.flightMu.Unlock()
		s.met.planCoalesced.Add(1)
		select {
		case <-c.done:
			// The waiter skipped planning, same as a cache hit.
			return c.plan, true, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	// Re-check the cache under the flight lock: a previous leader may have
	// filled it between our miss and claiming the slot.
	if e, ok := s.plans.get(key); ok {
		s.flightMu.Unlock()
		s.met.planHits.Add(1)
		return e, true, nil
	}
	c := &planCall{done: make(chan struct{})}
	s.flight[key] = c
	s.flightMu.Unlock()

	s.met.planMisses.Add(1)
	if s.planBuildHook != nil {
		s.planBuildHook()
	}
	c.plan, c.err = exec.BuildPlanSnapConfig(snap, p, algo, exec.PlanConfig{NoFastPath: s.cfg.NoFastPath})
	if c.err != nil {
		// Bind/plan failures are malformed or unanswerable queries —
		// client faults, and shared verbatim with coalesced waiters.
		c.err = badQuery(c.err)
	} else {
		s.plans.put(key, c.plan)
	}
	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(c.done)
	return c.plan, false, c.err
}

// InFlight reports the number of queries currently executing.
func (s *Server) InFlight() int { return len(s.sem) }
