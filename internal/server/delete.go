package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// DeleteRequest is the JSON body of POST /delete: a batch of directed
// edges, each a [from, to] node-ID pair, removed in order.
type DeleteRequest struct {
	Edges [][2]graph.NodeID `json:"edges"`
}

// DeleteResult aggregates one delete batch's effect on the index.
type DeleteResult struct {
	// Applied counts edges that were present and got removed.
	Applied int `json:"applied"`
	// Noops counts edges that were absent (including an edge listed twice
	// in the batch — the first occurrence removes it).
	Noops int `json:"noops"`
	// RemovedLabelEntries / AddedLabelEntries are the stale 2-hop label
	// entries the repair removed and the entries it re-added for pairs
	// still reachable without the deleted edges.
	RemovedLabelEntries int `json:"removed_label_entries"`
	AddedLabelEntries   int `json:"added_label_entries"`
	// DroppedCenters counts centers retired because their subclusters
	// emptied; NewCenters the centers the re-cover elected.
	DroppedCenters int `json:"dropped_centers"`
	NewCenters     int `json:"new_centers"`
	// RemovedWPairs / NewWPairs count W-table entries that lost / gained a
	// center.
	RemovedWPairs int `json:"removed_w_pairs"`
	NewWPairs     int `json:"new_w_pairs"`
}

// DeleteEdges applies a batch of edge deletes through the database's
// incremental repair path. Like inserts, the batch builds one private
// copy-on-write snapshot and publishes it as a single new epoch — unless
// it changed nothing (every edge absent), in which case no epoch is
// published. Concurrent queries keep the epoch they pinned and observe
// either no delete of the batch or all of them.
//
// A malformed edge (endpoint out of range) aborts the batch at that edge
// with ErrBadQuery; earlier edges stay applied (and published), and the
// returned result counts them.
func (s *Server) DeleteEdges(ctx context.Context, edges [][2]graph.NodeID) (DeleteResult, error) {
	var res DeleteResult
	if s.db.Closed() {
		return res, gdb.ErrClosed
	}
	if err := ctx.Err(); err != nil {
		s.met.recordError(err)
		return res, err
	}
	stats, err := s.db.ApplyEdgeDeletes(edges)
	for _, st := range stats {
		if st.Missing {
			res.Noops++
			continue
		}
		res.Applied++
		res.RemovedLabelEntries += st.RemovedLabelEntries
		res.AddedLabelEntries += st.AddedLabelEntries
		res.DroppedCenters += st.DroppedCenters
		res.NewCenters += st.NewCenters
		res.RemovedWPairs += st.RemovedWPairs
		res.NewWPairs += st.NewWPairs
	}
	s.met.edgeDeletes.Add(int64(res.Applied))
	s.met.deleteNoops.Add(int64(res.Noops))
	s.met.deleteLabelEntries.Add(int64(res.RemovedLabelEntries + res.AddedLabelEntries))
	if err != nil {
		s.met.deleteErrors.Add(1)
		if errors.Is(err, gdb.ErrBadDelete) {
			err = badQuery(err)
		}
		return res, err
	}
	return res, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DeleteRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing \"edges\""))
		return
	}
	res, err := s.DeleteEdges(r.Context(), req.Edges)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
