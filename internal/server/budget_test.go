package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fastmatch/internal/gdb"
	"fastmatch/internal/rjoin"
)

// TestStatusFor: client faults map to 4xx, budget kills to 422, and —
// the bug this PR fixes — anything unclassified is a server fault (500),
// not a blanket 400.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrOverloaded, http.StatusTooManyRequests},
		{fmt.Errorf("wrapped: %w", ErrOverloaded), http.StatusTooManyRequests},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 499},
		{gdb.ErrClosed, http.StatusServiceUnavailable},
		{badQuery(errors.New("no such label")), http.StatusBadRequest},
		{rjoin.ErrRowLimit, http.StatusUnprocessableEntity},
		{rjoin.ErrBudgetExceeded, http.StatusUnprocessableEntity},
		{fmt.Errorf("exec: step 2 (Fetch): %w", rjoin.ErrRowLimit), http.StatusUnprocessableEntity},
		// Internal faults must NOT leak out as client errors.
		{errors.New("storage: page checksum mismatch"), http.StatusInternalServerError},
		{io.ErrUnexpectedEOF, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestRequestBodyLimits: oversized bodies answer 413 and bodies with
// unknown fields 400, both before any planning or execution.
func TestRequestBodyLimits(t *testing.T) {
	s := testServer(t, Config{MaxRequestBytes: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	big := `{"pattern": "A->B", "algorithm": "` + strings.Repeat("x", 256) + `"}`
	if got := post(big); got != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", got)
	}
	if got := post(`{"pattern": "A->B", "bogus_field": 1}`); got != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", got)
	}
	if got := post(`{"pattern": "A->B", "limit": -1}`); got != http.StatusBadRequest {
		t.Fatalf("negative limit: %d, want 400", got)
	}
	if got := post(`{"pattern": "A->B", "limit": 2}`); got != http.StatusOK {
		t.Fatalf("healthy query: %d, want 200", got)
	}
	if s.Stats().Queries != 1 {
		t.Fatalf("rejected bodies reached execution: %+v", s.Stats())
	}
}

// TestPlanSingleflight: concurrent misses for the same pattern run DP/DPS
// once; the rest coalesce onto the leader's in-flight planning.
func TestPlanSingleflight(t *testing.T) {
	const waiters = 8
	s := testServer(t, Config{MaxInFlight: waiters + 1})

	// The hook parks the planning leader until every other goroutine has
	// had time to reach the flight map, making the race deterministic.
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	s.planBuildHook = func() {
		close(leaderIn)
		<-release
	}

	var wg sync.WaitGroup
	errs := make([]error, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[waiters] = s.Query(context.Background(), "A->B; B->C", "")
	}()
	<-leaderIn
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Query(context.Background(), "A->B; B->C", "")
		}(i)
	}
	// Let every waiter either coalesce or (losing a tiny race with the
	// leader's registration) miss the flight map; then free the leader.
	for s.met.planCoalesced.Load() < waiters {
		if s.met.planMisses.Load() > 1 {
			break
		}
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.PlanCacheMisses != 1 {
		t.Fatalf("plan built %d times, want 1 (coalesced=%d hits=%d)",
			st.PlanCacheMisses, st.PlanCoalesced, st.PlanCacheHits)
	}
	if st.PlanCoalesced != waiters {
		t.Fatalf("coalesced %d, want %d", st.PlanCoalesced, waiters)
	}
}

// TestPlanSingleflightError: a failed build is shared with coalesced
// waiters and never cached, and classifies as a client fault.
func TestPlanSingleflightError(t *testing.T) {
	s := testServer(t, Config{})
	_, err := s.Query(context.Background(), "A->Z; Z->B", "")
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unknown label: %v, want ErrBadQuery", err)
	}
	if statusFor(err) != http.StatusBadRequest {
		t.Fatalf("unknown label status %d, want 400", statusFor(err))
	}
	if n := s.plans.len(); n != 0 {
		t.Fatalf("failed plan cached: %d entries", n)
	}
}

// TestPlanCacheZeroCapacity: newPlanCache treats zero capacity as disabled
// (Config maps 0 to the 256 default before it gets here, so only an
// explicit negative — or a direct zero — disables).
func TestPlanCacheZeroCapacity(t *testing.T) {
	c := newPlanCache(0)
	k := planKey{epoch: 0, rest: "k"}
	c.put(k, nil)
	if _, ok := c.get(k); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d, want 0", c.len())
	}
	if cfg := (Config{}).withDefaults(); cfg.PlanCacheSize != 256 {
		t.Fatalf("Config zero PlanCacheSize → %d, want 256", cfg.PlanCacheSize)
	}
	if cfg := (Config{PlanCacheSize: -1}).withDefaults(); cfg.PlanCacheSize != -1 {
		t.Fatalf("Config negative PlanCacheSize → %d, want -1 (disabled)", cfg.PlanCacheSize)
	}
}

// TestBudgetEndToEnd is the PR's acceptance test: a pattern whose full
// result exceeds the row budget comes back Truncated without the full
// table ever materialising, a table-row cap kills the query with 422, and
// /stats exposes the governor counters.
func TestBudgetEndToEnd(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (int, QueryResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var qr QueryResponse
		json.Unmarshal(raw, &qr)
		return resp.StatusCode, qr
	}

	// Reference: the full result, to size the budgets below.
	code, full := post(`{"pattern": "A->B; B->C"}`)
	if code != http.StatusOK || full.Truncated || full.RowCount < 3 {
		t.Fatalf("full query: %d %+v", code, full)
	}

	// Row-limit pushdown: the truncated result is the full run's prefix.
	code, cut := post(`{"pattern": "A->B; B->C", "limit": 2}`)
	if code != http.StatusOK || !cut.Truncated || cut.RowCount != 2 {
		t.Fatalf("limited query: %d %+v", code, cut)
	}
	for i, row := range cut.Rows {
		if fmt.Sprint(row) != fmt.Sprint(full.Rows[i]) {
			t.Fatalf("row %d: %v != full prefix %v", i, row, full.Rows[i])
		}
	}
	// A limit the result fits inside must not set Truncated.
	code, all := post(fmt.Sprintf(`{"pattern": "A->B; B->C", "limit": %d}`, full.RowCount))
	if code != http.StatusOK || all.Truncated || all.RowCount != full.RowCount {
		t.Fatalf("fitting limit: %d %+v", code, all)
	}

	st := s.Stats()
	if st.TruncatedQueries != 1 {
		t.Fatalf("truncated_queries = %d, want 1", st.TruncatedQueries)
	}
	if st.IntermediateBytes <= 0 || st.PeakIntermediateBytes <= 0 || st.PeakIntermediateRows < int64(full.RowCount) {
		t.Fatalf("governor accounting missing from stats: %+v", st)
	}
	if st.BudgetKills != 0 {
		t.Fatalf("budget_kills = %d before any kill", st.BudgetKills)
	}

	// The truncated run materialised strictly less than the full run:
	// two fresh servers over the same (deterministic) graph, one serving
	// only the limited query, compared on the /stats high-water marks.
	sFull, sCut := testServer(t, Config{}), testServer(t, Config{})
	if _, err := sFull.Query(context.Background(), "A->B; B->C", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sCut.QueryOpts(context.Background(), "A->B; B->C", "", QueryOptions{Limit: 2}); err != nil {
		t.Fatal(err)
	}
	fullPeak, cutPeak := sFull.Stats(), sCut.Stats()
	if cutPeak.PeakIntermediateRows >= fullPeak.PeakIntermediateRows {
		t.Fatalf("pushdown did not cut materialisation: peak rows %d (limit 2) vs %d (full)",
			cutPeak.PeakIntermediateRows, fullPeak.PeakIntermediateRows)
	}
	if cutPeak.PeakIntermediateBytes >= fullPeak.PeakIntermediateBytes {
		t.Fatalf("pushdown did not cut allocation: peak bytes %d (limit 2) vs %d (full)",
			cutPeak.PeakIntermediateBytes, fullPeak.PeakIntermediateBytes)
	}

	// A server whose table-row budget is below the query's needs kills it
	// with 422 and counts the kill.
	tight := testServer(t, Config{MaxTableRows: 1})
	tts := httptest.NewServer(tight.Handler())
	defer tts.Close()
	resp, err := http.Post(tts.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"pattern": "A->B; B->C"}`)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("budget kill: %d %s, want 422", resp.StatusCode, raw)
	}
	if ks := tight.Stats().BudgetKills; ks != 1 {
		t.Fatalf("budget_kills = %d, want 1", ks)
	}

	// Same for the byte budget, through the library API.
	tightB := testServer(t, Config{MaxIntermediateBytes: 8})
	_, err = tightB.Query(context.Background(), "A->B; B->C", "")
	if !errors.Is(err, rjoin.ErrBudgetExceeded) {
		t.Fatalf("byte budget: %v, want ErrBudgetExceeded", err)
	}
	if ks := tightB.Stats().BudgetKills; ks != 1 {
		t.Fatalf("byte budget_kills = %d, want 1", ks)
	}
}
