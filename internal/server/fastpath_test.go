package server

import (
	"context"
	"math/rand"
	"testing"

	"fastmatch/internal/gdb"
	"fastmatch/internal/graph"
)

// fastpathTestServer builds a server over a layered DAG plus one isolated
// Z-labeled node, so the battery below can hit all three tiers: Z
// participates in no edge, making any pattern touching it provably empty.
func fastpathTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder()
	labels := []string{"A", "B", "C", "D"}
	n := 60
	for i := 0; i < n; i++ {
		b.AddNode(labels[i%len(labels)])
	}
	for i := 0; i < 2*n; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	b.AddNode("Z")
	db, err := gdb.Build(b.Build(), gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db, cfg)
}

// TestStatsTierCounters: /stats attributes each served query to the tier
// the router chose — index-only answers, signature prunes, and pipeline
// queries — with per-tier latency sums.
func TestStatsTierCounters(t *testing.T) {
	s := fastpathTestServer(t, Config{})
	ctx := context.Background()

	if _, err := s.Query(ctx, "A->B", ""); err != nil { // single edge → tier 1
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, "B->C", ""); err != nil { // single edge → tier 1
		t.Fatal(err)
	}
	res, err := s.Query(ctx, "A->Z", "") // signature-refuted → tier 2
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("impossible pattern returned %d rows", len(res.Rows))
	}
	if _, err := s.Query(ctx, "A->B; B->C; C->A", ""); err != nil { // cyclic → tier 3
		t.Fatal(err)
	}

	st := s.Stats()
	if st.FastpathTier1Queries != 2 || st.FastpathTier2Prunes != 1 || st.Tier3Queries != 1 {
		t.Fatalf("tier counters = %d/%d/%d, want 2/1/1",
			st.FastpathTier1Queries, st.FastpathTier2Prunes, st.Tier3Queries)
	}
	if st.FastpathTier1LatencyMs < 0 || st.FastpathTier2LatencyMs < 0 || st.Tier3LatencyMs < 0 {
		t.Fatalf("negative tier latency sums: %+v", st)
	}
}

// TestNoFastPathConfig: the -no-fastpath escape hatch forces every query
// down the pipeline — results unchanged, tier counters all tier 3.
func TestNoFastPathConfig(t *testing.T) {
	tiered := fastpathTestServer(t, Config{})
	forced := fastpathTestServer(t, Config{NoFastPath: true})
	ctx := context.Background()

	for _, q := range []string{"A->B", "A->Z", "A->B; B->C"} {
		rt, err := tiered.Query(ctx, q, "")
		if err != nil {
			t.Fatalf("%s tiered: %v", q, err)
		}
		rf, err := forced.Query(ctx, q, "")
		if err != nil {
			t.Fatalf("%s forced: %v", q, err)
		}
		if len(rt.Rows) != len(rf.Rows) {
			t.Fatalf("%s: tiered %d rows, forced %d rows", q, len(rt.Rows), len(rf.Rows))
		}
	}
	st := forced.Stats()
	if st.FastpathTier1Queries != 0 || st.FastpathTier2Prunes != 0 {
		t.Fatalf("NoFastPath server still fast-pathed: %+v", st)
	}
	if st.Tier3Queries != 3 {
		t.Fatalf("NoFastPath tier-3 count = %d, want 3", st.Tier3Queries)
	}
}
