package server

import (
	"container/list"
	"sync"

	"fastmatch/internal/optimizer"
)

// planCache is a bounded LRU of optimized plans keyed by (snapshot epoch,
// algorithm, canonical pattern). Cached *optimizer.Plan values are
// immutable after optimization (the executor only reads them), so one plan
// is shared by any number of concurrent runs. Entries keyed by superseded
// epochs are never invalidated explicitly — they just stop being looked up
// and fall off the LRU tail.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // of *planCacheEntry, front = most recently used
	items map[string]*list.Element
}

type planCacheEntry struct {
	key  string
	plan *optimizer.Plan
}

// newPlanCache returns a cache bounded to capacity entries; capacity <= 0
// disables caching (every get misses). Note the distinction from
// Config.PlanCacheSize, where 0 means "use the default size" — only an
// explicitly negative Config value reaches here as disabled.
func newPlanCache(capacity int) *planCache {
	c := &planCache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[string]*list.Element, capacity)
	}
	return c
}

func (c *planCache) get(key string) (*optimizer.Plan, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).plan, true
}

func (c *planCache) put(key string, plan *optimizer.Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planCacheEntry).plan = plan
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planCacheEntry{key: key, plan: plan})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*planCacheEntry).key)
	}
}

func (c *planCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
