package server

import (
	"container/list"
	"sync"

	"fastmatch/internal/optimizer"
)

// planKey identifies one cached plan: the snapshot epoch it was costed
// against plus "algorithm|canonical pattern". Keeping the epoch as a
// structured field (rather than folded into one string) lets the cache
// purge everything below a retirement horizon without parsing keys.
type planKey struct {
	epoch uint64
	rest  string
}

// planCache is a bounded LRU of optimized plans keyed by (snapshot epoch,
// algorithm, canonical pattern). Cached *optimizer.Plan values are
// immutable after optimization (the executor only reads them), so one plan
// is shared by any number of concurrent runs. Entries keyed by superseded
// epochs stop being looked up once the epoch retires; purgeBefore — driven
// by the epoch manager's retire callback — evicts them eagerly so they
// cannot sit in the LRU displacing live-epoch plans under write churn.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // of *planCacheEntry, front = most recently used
	items map[planKey]*list.Element
}

type planCacheEntry struct {
	key  planKey
	plan *optimizer.Plan
}

// newPlanCache returns a cache bounded to capacity entries; capacity <= 0
// disables caching (every get misses). Note the distinction from
// Config.PlanCacheSize, where 0 means "use the default size" — only an
// explicitly negative Config value reaches here as disabled.
func newPlanCache(capacity int) *planCache {
	c := &planCache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[planKey]*list.Element, capacity)
	}
	return c
}

func (c *planCache) get(key planKey) (*optimizer.Plan, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).plan, true
}

func (c *planCache) put(key planKey, plan *optimizer.Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planCacheEntry).plan = plan
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planCacheEntry{key: key, plan: plan})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*planCacheEntry).key)
	}
}

// purgeBefore evicts every entry whose epoch is below minLive. Epochs
// below the horizon have retired: no pin can reach them again, so their
// plans can never be served and only occupy capacity.
func (c *planCache) purgeBefore(minLive uint64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*planCacheEntry)
		if e.key.epoch < minLive {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
	}
}

func (c *planCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
