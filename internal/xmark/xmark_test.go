package xmark

import (
	"testing"

	"fastmatch/internal/graph"
)

func TestGenerateBudget(t *testing.T) {
	d := Generate(Config{Nodes: 20000, Seed: 1})
	n := d.Graph.NumNodes()
	if n < 20000 || n > 22000 {
		t.Fatalf("nodes = %d, want ≈20000 (one document of slack)", n)
	}
	if d.Docs < 15 {
		t.Fatalf("docs = %d, suspiciously few", d.Docs)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Nodes: 5000, Seed: 42})
	b := Generate(Config{Nodes: 5000, Seed: 42})
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed produced different graphs: %v vs %v", a.Graph, b.Graph)
	}
	c := Generate(Config{Nodes: 5000, Seed: 43})
	if a.Graph.NumEdges() == c.Graph.NumEdges() && a.Graph.NumNodes() == c.Graph.NumNodes() {
		t.Log("different seeds gave identical sizes (possible but unusual)")
	}
}

func TestEdgeNodeRatio(t *testing.T) {
	// The paper's Table 2 reports |E|/|V| ≈ 1.18 for all five datasets;
	// our substitute should be in the same band.
	d := Generate(Config{Nodes: 30000, Seed: 2})
	ratio := float64(d.Graph.NumEdges()) / float64(d.Graph.NumNodes())
	if ratio < 1.0 || ratio > 1.4 {
		t.Fatalf("|E|/|V| = %.3f, want ≈1.1–1.3", ratio)
	}
}

func TestSchemaLabelsPresent(t *testing.T) {
	d := Generate(Config{Nodes: 10000, Seed: 3})
	g := d.Graph
	for _, l := range []string{
		"site", "regions", "item", "person", "open_auction", "closed_auction",
		"category", "itemref", "personref", "seller", "buyer", "incategory",
		"interest", "bidder", "annotation", "author", "address", "city",
	} {
		if g.Labels().Lookup(l) == graph.InvalidLabel || g.ExtentSize(g.Labels().Lookup(l)) == 0 {
			t.Fatalf("label %q missing or empty", l)
		}
	}
}

func TestDAGMode(t *testing.T) {
	d := Generate(Config{Nodes: 8000, Seed: 4, DAG: true})
	if !graph.IsDAG(d.Graph) {
		t.Fatal("DAG mode produced a cyclic graph")
	}
}

func TestNonDAGHasCycles(t *testing.T) {
	// In-document person↔open_auction reference loops make the default
	// mode cyclic with overwhelming probability at this size.
	d := Generate(Config{Nodes: 30000, Seed: 5})
	if graph.IsDAG(d.Graph) {
		t.Fatal("expected cycles in default mode")
	}
}

func TestReachabilityShapes(t *testing.T) {
	d := Generate(Config{Nodes: 6000, Seed: 6})
	g := d.Graph
	// Every site must reach items (own document's at minimum).
	site := g.Extent(g.Labels().Lookup("site"))[0]
	reach := graph.ReachableFrom(g, site)
	foundItem := false
	itemLbl := g.Labels().Lookup("item")
	for _, it := range g.Extent(itemLbl) {
		if reach[it] {
			foundItem = true
			break
		}
	}
	if !foundItem {
		t.Fatal("site does not reach any item")
	}
	// Some open_auction reaches a person (via personref/seller).
	oaLbl := g.Labels().Lookup("open_auction")
	personLbl := g.Labels().Lookup("person")
	found := false
	for _, oa := range g.Extent(oaLbl)[:10] {
		r := graph.ReachableFrom(g, oa)
		for _, p := range g.Extent(personLbl) {
			if r[p] {
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no open_auction reaches a person")
	}
}

func TestFactorScaling(t *testing.T) {
	small := Generate(Config{Factor: 0.002, Seed: 7})
	large := Generate(Config{Factor: 0.004, Seed: 7})
	ratio := float64(large.Graph.NumNodes()) / float64(small.Graph.NumNodes())
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("doubling the factor scaled nodes by %.2f, want ≈2", ratio)
	}
}

func BenchmarkGenerate20K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Config{Nodes: 20000, Seed: int64(i)})
	}
}
