// Package xmark generates synthetic XMark-shaped data graphs — the
// substitute for the XMark XML benchmark generator [25] the paper builds
// its datasets from (Section 6; see DESIGN.md for the substitution note).
//
// Each document is a tree following the XMark DTD skeleton
// (site/regions/item/person/open_auction/closed_auction/category/…), and
// ID/IDREF elements (itemref, personref, seller, buyer, author, interest,
// incategory, watch, catgraph edges) contribute extra edges, exactly as the
// paper "treats both document-internal links (parent-child) and
// cross-document links (ID/IDREF) as edges in the same manner".
//
// The generator is deterministic for a given Config. In DAG mode, reference
// edges only target strictly later documents, so the result is acyclic —
// the "DAG obtained from the XMark dataset" used for the TSD comparison.
package xmark

import (
	"math/rand"

	"fastmatch/internal/graph"
)

// FactorNodes is the approximate node count of XMark factor 1.0 in the
// paper's Table 2 (dataset 100M: 1,666,315 nodes).
const FactorNodes = 1666315

// Config parameterises generation.
type Config struct {
	// Factor is the XMark scale factor: 1.0 ≈ 1.67M nodes (Table 2's 100M
	// dataset). The paper's five datasets use 0.2, 0.4, 0.6, 0.8, 1.0.
	Factor float64
	// Nodes, when positive, overrides Factor with an approximate node
	// budget.
	Nodes int
	// Seed seeds the generator (default 0 is a valid seed).
	Seed int64
	// DAG restricts reference edges to strictly later documents, producing
	// an acyclic graph (for the TwigStackD comparison).
	DAG bool
	// CrossDocFraction is the fraction of references resolved against a
	// uniformly random document in non-DAG mode; the rest stay in their own
	// document. XMark is a single document whose IDREFs are uniform over
	// the whole dataset, so the faithful default is 1.0. Negative disables
	// cross-document references entirely.
	CrossDocFraction float64
}

// Dataset is a generated data graph plus generation metadata.
type Dataset struct {
	Graph *graph.Graph
	// Docs is the number of generated documents.
	Docs int
}

// Entity counts per document, scaled from XMark's factor-1.0 proportions
// (1000 categories : 21750 items : 25500 persons : 12000 open auctions :
// 9750 closed auctions).
const (
	docCategories     = 8
	docItems          = 22
	docPersons        = 25
	docOpenAuctions   = 12
	docClosedAuctions = 10
)

// refKind enumerates IDREF targets.
type refKind int

const (
	refItem refKind = iota
	refPerson
	refCategory
	refOpenAuction
)

// pendingRef is an IDREF edge awaiting target resolution.
type pendingRef struct {
	src  graph.NodeID
	kind refKind
	doc  int
}

// docEntities records the referencable nodes of one document.
type docEntities struct {
	items        []graph.NodeID
	persons      []graph.NodeID
	categories   []graph.NodeID
	openAuctions []graph.NodeID
}

type generator struct {
	cfg  Config
	rng  *rand.Rand
	b    *graph.Builder
	docs []docEntities
	refs []pendingRef
	doc  int
}

// Generate builds a dataset.
func Generate(cfg Config) *Dataset {
	if cfg.CrossDocFraction == 0 {
		cfg.CrossDocFraction = 1.0
	}
	if cfg.CrossDocFraction < 0 {
		cfg.CrossDocFraction = 0
	}
	budget := cfg.Nodes
	if budget <= 0 {
		budget = int(cfg.Factor * FactorNodes)
	}
	if budget < 100 {
		budget = 100
	}
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		b:   graph.NewBuilder(),
	}
	for g.b.NumNodes() < budget {
		g.genDocument()
		g.doc++
	}
	g.resolveRefs()
	return &Dataset{Graph: g.b.Build(), Docs: g.doc}
}

// child adds a node labeled name under parent and returns it.
func (g *generator) child(parent graph.NodeID, name string) graph.NodeID {
	v := g.b.AddNode(name)
	g.b.AddEdge(parent, v)
	return v
}

// ref adds a reference element under parent whose IDREF edge is resolved
// later.
func (g *generator) ref(parent graph.NodeID, name string, kind refKind) {
	v := g.child(parent, name)
	g.refs = append(g.refs, pendingRef{src: v, kind: kind, doc: g.doc})
}

func (g *generator) genDocument() {
	ents := docEntities{}
	site := g.b.AddNode("site")

	// Categories.
	cats := g.child(site, "categories")
	for i := 0; i < docCategories; i++ {
		c := g.child(cats, "category")
		g.child(c, "name")
		g.child(c, "description")
		ents.categories = append(ents.categories, c)
	}
	// Category graph: sparse edges among this document's categories
	// (bounded closure). XMark's catgraph is an arbitrary graph, so in the
	// general (non-DAG) mode one back edge per document keeps the data
	// graph cyclic, exercising the SCC condensation.
	catgraph := g.child(site, "catgraph")
	for i := 0; i+1 < len(ents.categories); i += 2 {
		e := g.child(catgraph, "edge")
		g.b.AddEdge(e, ents.categories[i])
		g.b.AddEdge(ents.categories[i], ents.categories[i+1])
	}
	if !g.cfg.DAG && len(ents.categories) >= 2 {
		g.b.AddEdge(ents.categories[1], ents.categories[0])
	}

	// Regions and items.
	regions := g.child(site, "regions")
	regionNames := [6]string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	var regionNodes [6]graph.NodeID
	for i, rn := range regionNames {
		regionNodes[i] = g.child(regions, rn)
	}
	for i := 0; i < docItems; i++ {
		item := g.child(regionNodes[g.rng.Intn(6)], "item")
		ents.items = append(ents.items, item)
		g.child(item, "location")
		g.child(item, "quantity")
		g.child(item, "name")
		g.child(item, "payment")
		g.child(item, "description")
		g.child(item, "shipping")
		g.ref(item, "incategory", refCategory)
		if g.rng.Intn(2) == 0 {
			g.ref(item, "incategory", refCategory)
		}
		mailbox := g.child(item, "mailbox")
		for m := g.rng.Intn(2); m > 0; m-- {
			mail := g.child(mailbox, "mail")
			g.child(mail, "from")
			g.child(mail, "to")
			g.child(mail, "date")
			g.child(mail, "text")
		}
	}

	// People.
	people := g.child(site, "people")
	for i := 0; i < docPersons; i++ {
		p := g.child(people, "person")
		ents.persons = append(ents.persons, p)
		g.child(p, "name")
		g.child(p, "emailaddress")
		if g.rng.Intn(2) == 0 {
			g.child(p, "phone")
		}
		addr := g.child(p, "address")
		g.child(addr, "street")
		g.child(addr, "city")
		g.child(addr, "country")
		g.child(addr, "zipcode")
		prof := g.child(p, "profile")
		g.ref(prof, "interest", refCategory)
		if g.rng.Intn(3) == 0 {
			g.ref(prof, "interest", refCategory)
		}
		g.child(prof, "education")
		g.child(prof, "gender")
		g.child(prof, "business")
		g.child(prof, "age")
		// The person → watch → open_auction → personref → person chain is
		// the one reference loop that can percolate; each open_auction
		// carries ≈3.5 person references, so the watch probability is kept
		// at 1/10 to hold the closure branching factor well below 1
		// (bounded, stable reachability sets — near-critical branching
		// produces heavy-tailed closure sizes that make result counts
		// non-monotone across dataset scales).
		watches := g.child(p, "watches")
		if g.rng.Intn(10) == 0 {
			g.ref(watches, "watch", refOpenAuction)
		}
	}

	// Open auctions.
	oas := g.child(site, "open_auctions")
	for i := 0; i < docOpenAuctions; i++ {
		oa := g.child(oas, "open_auction")
		ents.openAuctions = append(ents.openAuctions, oa)
		g.child(oa, "initial")
		g.child(oa, "reserve")
		for bid := 1 + g.rng.Intn(2); bid > 0; bid-- {
			b := g.child(oa, "bidder")
			g.child(b, "date")
			g.child(b, "time")
			g.ref(b, "personref", refPerson)
			g.child(b, "increase")
		}
		g.child(oa, "current")
		if g.rng.Intn(5) == 0 { // privacy is optional in the XMark DTD
			g.child(oa, "privacy")
		}
		g.ref(oa, "itemref", refItem)
		g.ref(oa, "seller", refPerson)
		g.child(oa, "quantity")
		g.child(oa, "type")
		ann := g.child(oa, "annotation")
		g.ref(ann, "author", refPerson)
		g.child(ann, "description")
		g.child(ann, "happiness")
	}

	// Closed auctions.
	cas := g.child(site, "closed_auctions")
	for i := 0; i < docClosedAuctions; i++ {
		ca := g.child(cas, "closed_auction")
		g.ref(ca, "seller", refPerson)
		g.ref(ca, "buyer", refPerson)
		g.ref(ca, "itemref", refItem)
		g.child(ca, "price")
		g.child(ca, "date")
		g.child(ca, "quantity")
		g.child(ca, "type")
		ann := g.child(ca, "annotation")
		g.ref(ann, "author", refPerson)
		g.child(ann, "description")
		g.child(ann, "happiness")
	}

	g.docs = append(g.docs, ents)
}

// resolveRefs turns pending references into edges. In DAG mode targets come
// from strictly later documents (references from the last document are
// dropped); otherwise most references stay in-document with
// CrossDocFraction going to a random other document.
func (g *generator) resolveRefs() {
	nDocs := len(g.docs)
	for _, r := range g.refs {
		targetDoc := r.doc
		if g.cfg.DAG {
			if r.doc+1 >= nDocs {
				continue // drop: no later document to point at
			}
			targetDoc = r.doc + 1 + g.rng.Intn(nDocs-r.doc-1)
		} else if nDocs > 1 && g.rng.Float64() < g.cfg.CrossDocFraction {
			targetDoc = g.rng.Intn(nDocs)
		}
		ents := &g.docs[targetDoc]
		var pool []graph.NodeID
		switch r.kind {
		case refItem:
			pool = ents.items
		case refPerson:
			pool = ents.persons
		case refCategory:
			pool = ents.categories
		case refOpenAuction:
			pool = ents.openAuctions
		}
		if len(pool) == 0 {
			continue
		}
		g.b.AddEdge(r.src, pool[g.rng.Intn(len(pool))])
	}
}
